// Package analysis implements the data analysis algorithms underlying the
// paper's eleven workloads (Section II-C): multinomial Naive Bayes, a linear
// SVM, K-means and fuzzy K-means clustering, item-based collaborative
// filtering, a hidden Markov model with Viterbi decoding, PageRank and text
// utilities. These are the library equivalents of the Mahout/Hadoop-example
// implementations the paper measures; internal/workloads distributes them
// over the MapReduce engine.
package analysis

import "math"

// NaiveBayes is a multinomial Naive Bayes text classifier with Laplace
// smoothing.
type NaiveBayes struct {
	Classes    int
	Vocab      map[string]int
	classDocs  []float64 // documents per class
	classWords []float64 // total words per class
	wordCounts []map[int]float64
	totalDocs  float64
}

// NewNaiveBayes creates an untrained classifier over nClasses classes.
func NewNaiveBayes(nClasses int) *NaiveBayes {
	nb := &NaiveBayes{
		Classes:    nClasses,
		Vocab:      make(map[string]int),
		classDocs:  make([]float64, nClasses),
		classWords: make([]float64, nClasses),
		wordCounts: make([]map[int]float64, nClasses),
	}
	for i := range nb.wordCounts {
		nb.wordCounts[i] = make(map[int]float64)
	}
	return nb
}

func (nb *NaiveBayes) wordID(w string, grow bool) (int, bool) {
	if id, ok := nb.Vocab[w]; ok {
		return id, true
	}
	if !grow {
		return 0, false
	}
	id := len(nb.Vocab)
	nb.Vocab[w] = id
	return id, true
}

// Observe adds one labelled document (a bag of words) to the model.
func (nb *NaiveBayes) Observe(words []string, class int) {
	nb.classDocs[class]++
	nb.totalDocs++
	for _, w := range words {
		id, _ := nb.wordID(w, true)
		nb.wordCounts[class][id]++
		nb.classWords[class]++
	}
}

// Merge folds another partial model into nb, enabling distributed training:
// each map task trains on its shard and the reduce side merges. Both models
// must have been built with the same class count.
func (nb *NaiveBayes) Merge(other *NaiveBayes) {
	if other.Classes != nb.Classes {
		panic("analysis: merging NaiveBayes with different class counts")
	}
	nb.totalDocs += other.totalDocs
	for c := 0; c < nb.Classes; c++ {
		nb.classDocs[c] += other.classDocs[c]
		nb.classWords[c] += other.classWords[c]
		for w, id := range other.Vocab {
			n := other.wordCounts[c][id]
			if n == 0 {
				continue
			}
			myID, _ := nb.wordID(w, true)
			nb.wordCounts[c][myID] += n
		}
	}
}

// AddClassDocs loads a pre-aggregated document count for a class, as the
// distributed trainer's reduce output supplies it.
func (nb *NaiveBayes) AddClassDocs(class int, n float64) {
	nb.classDocs[class] += n
	nb.totalDocs += n
}

// AddWordCount loads a pre-aggregated (class, word) occurrence count.
func (nb *NaiveBayes) AddWordCount(class int, word string, n float64) {
	id, _ := nb.wordID(word, true)
	nb.wordCounts[class][id] += n
	nb.classWords[class] += n
}

// LogPosterior returns the unnormalised log-probability of class c for doc.
func (nb *NaiveBayes) LogPosterior(words []string, c int) float64 {
	v := float64(len(nb.Vocab))
	lp := math.Log((nb.classDocs[c] + 1) / (nb.totalDocs + float64(nb.Classes)))
	for _, w := range words {
		id, known := nb.wordID(w, false)
		var count float64
		if known {
			count = nb.wordCounts[c][id]
		}
		lp += math.Log((count + 1) / (nb.classWords[c] + v))
	}
	return lp
}

// Predict returns the most probable class for a document.
func (nb *NaiveBayes) Predict(words []string) int {
	best, bestLP := 0, math.Inf(-1)
	for c := 0; c < nb.Classes; c++ {
		if lp := nb.LogPosterior(words, c); lp > bestLP {
			best, bestLP = c, lp
		}
	}
	return best
}
