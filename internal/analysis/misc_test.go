package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"dcbench/internal/datagen"
)

// --- ItemCF ---

func TestItemCFCosineProperties(t *testing.T) {
	cf := NewItemCF(10)
	cf.Add(0, 1, 5)
	cf.Add(0, 2, 5)
	cf.Add(1, 1, 3)
	cf.Add(1, 2, 3)
	cf.Add(2, 3, 4)
	// Items 1 and 2 share identical raters: cosine 1.
	if s := cf.Cosine(1, 2); math.Abs(s-1) > 1e-12 {
		t.Fatalf("cosine(1,2) = %v, want 1", s)
	}
	// No co-raters: cosine 0.
	if s := cf.Cosine(1, 3); s != 0 {
		t.Fatalf("cosine(1,3) = %v, want 0", s)
	}
	// Symmetry.
	if cf.Cosine(1, 2) != cf.Cosine(2, 1) {
		t.Fatal("cosine not symmetric")
	}
}

func TestItemCFPredictsLatentStructure(t *testing.T) {
	ratings := datagen.Ratings(6, 60, 80, 20)
	cf := NewItemCF(20)
	// Hold out every 10th rating for evaluation.
	var held []datagen.Rating
	for i, r := range ratings {
		if i%10 == 0 {
			held = append(held, r)
		} else {
			cf.Add(r.User, r.Item, r.Score)
		}
	}
	var absErr, n float64
	for _, r := range held {
		if p, ok := cf.Predict(r.User, r.Item); ok {
			absErr += math.Abs(p - r.Score)
			n++
		}
	}
	if n == 0 {
		t.Fatal("no predictions possible")
	}
	if mae := absErr / n; mae > 1.2 {
		t.Fatalf("MAE = %v, want <= 1.2 on latent-structured data", mae)
	}
}

func TestItemCFRecommendExcludesSeen(t *testing.T) {
	ratings := datagen.Ratings(7, 30, 40, 10)
	cf := NewItemCF(10)
	seen := map[int]bool{}
	for _, r := range ratings {
		cf.Add(r.User, r.Item, r.Score)
		if r.User == 0 {
			seen[r.Item] = true
		}
	}
	for _, rec := range cf.Recommend(0, 5) {
		if seen[rec.Item] {
			t.Fatalf("recommended already-rated item %d", rec.Item)
		}
	}
}

func TestItemCFSimilarCapped(t *testing.T) {
	cf := NewItemCF(3)
	for u := 0; u < 10; u++ {
		for it := 0; it < 8; it++ {
			cf.Add(u, it, float64(1+(u+it)%5))
		}
	}
	if got := len(cf.Similar(0)); got > 3 {
		t.Fatalf("similar list = %d, want <= 3", got)
	}
}

// --- HMM ---

func TestViterbiRecoversStickyPath(t *testing.T) {
	obs, hidden := datagen.ObservationSeq(8, 3, 30, 2000)
	h := TrainSupervised(3, 30, [][]int{obs}, [][]int{hidden})
	path, _ := h.Viterbi(obs)
	right := 0
	for i := range path {
		if path[i] == hidden[i] {
			right++
		}
	}
	if acc := float64(right) / float64(len(path)); acc < 0.6 {
		t.Fatalf("viterbi accuracy = %v, want >= 0.6", acc)
	}
}

func TestViterbiDeterministicChain(t *testing.T) {
	// Two states, each deterministically emitting its own symbol.
	h := NewHMM(2, 2)
	// Emissions dominate transitions so the decoded path must follow the
	// observations exactly (no tie between staying and switching).
	eBig, eSmall := math.Log(0.99), math.Log(0.01)
	aBig, aSmall := math.Log(0.9), math.Log(0.1)
	h.LogPi = []float64{math.Log(0.5), math.Log(0.5)}
	h.LogA = [][]float64{{aBig, aSmall}, {aSmall, aBig}}
	h.LogB = [][]float64{{eBig, eSmall}, {eSmall, eBig}}
	obs := []int{0, 0, 1, 1, 1, 0}
	path, lp := h.Viterbi(obs)
	want := []int{0, 0, 1, 1, 1, 0}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	if lp >= 0 {
		t.Fatalf("log-prob = %v, want negative", lp)
	}
}

func TestViterbiPathAtLeastAsLikelyAsTruth(t *testing.T) {
	// Property: the Viterbi path's joint log-prob >= the true path's.
	if err := quick.Check(func(seed uint64) bool {
		obs, hidden := datagen.ObservationSeq(seed, 3, 12, 60)
		h := TrainSupervised(3, 12, [][]int{obs}, [][]int{hidden})
		path, lp := h.Viterbi(obs)
		return lp >= h.jointLogProb(obs, hidden)-1e-9 && len(path) == len(obs)
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestForwardLikelihoodGEViterbi(t *testing.T) {
	obs, hidden := datagen.ObservationSeq(4, 3, 20, 100)
	h := TrainSupervised(3, 20, [][]int{obs}, [][]int{hidden})
	_, viterbiLP := h.Viterbi(obs)
	if total := h.LogLikelihood(obs); total < viterbiLP-1e-9 {
		t.Fatalf("forward LL %v < viterbi %v", total, viterbiLP)
	}
}

func TestEmptyObservation(t *testing.T) {
	h := NewHMM(2, 3)
	if path, lp := h.Viterbi(nil); path != nil || lp != 0 {
		t.Fatal("empty observation should be trivial")
	}
}

// jointLogProb scores a specific path for the property test.
func (h *HMM) jointLogProb(obs, path []int) float64 {
	lp := h.LogPi[path[0]] + h.LogB[path[0]][obs[0]]
	for t := 1; t < len(obs); t++ {
		lp += h.LogA[path[t-1]][path[t]] + h.LogB[path[t]][obs[t]]
	}
	return lp
}

// --- PageRank ---

func TestPageRankSumsToOne(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		g := datagen.WebGraph(seed, 150, 3)
		ranks, _ := PageRank(g, 0.85, 50, 1e-10)
		sum := 0.0
		for _, r := range ranks {
			if r < 0 {
				return false
			}
			sum += r
		}
		return math.Abs(sum-1) < 1e-6
	}, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestPageRankHubsRankHigher(t *testing.T) {
	g := datagen.WebGraph(2, 500, 4)
	ranks, _ := PageRank(g, 0.85, 100, 1e-12)
	indeg := make([]int, len(g))
	for _, outs := range g {
		for _, t2 := range outs {
			indeg[t2]++
		}
	}
	maxIn, maxNode := 0, 0
	for i, d := range indeg {
		if d > maxIn {
			maxIn, maxNode = d, i
		}
	}
	// The highest in-degree node should rank above the median node.
	above := 0
	for _, r := range ranks {
		if ranks[maxNode] > r {
			above++
		}
	}
	if frac := float64(above) / float64(len(ranks)); frac < 0.95 {
		t.Fatalf("hub only above %v of nodes", frac)
	}
}

func TestPageRankConvergesOnCycle(t *testing.T) {
	g := [][]int{{1}, {2}, {0}}
	ranks, iters := PageRank(g, 0.85, 200, 1e-12)
	for _, r := range ranks {
		if math.Abs(r-1.0/3) > 1e-6 {
			t.Fatalf("cycle ranks = %v, want uniform", ranks)
		}
	}
	if iters >= 200 {
		t.Fatal("did not converge")
	}
}

func TestPageRankDanglingMassConserved(t *testing.T) {
	g := [][]int{{1}, {}} // node 1 dangles
	ranks := []float64{0.5, 0.5}
	next := PageRankStep(g, ranks, 0.85)
	sum := next[0] + next[1]
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("mass leaked: sum = %v", sum)
	}
}

// --- Text ---

func TestTokenizeStripsMarkup(t *testing.T) {
	toks := Tokenize("<html><p>Hello, World 42!</p></html>")
	want := []string{"hello", "world", "42"}
	if len(toks) != len(want) {
		t.Fatalf("tokens = %v", toks)
	}
	for i := range want {
		if toks[i] != want[i] {
			t.Fatalf("tokens = %v, want %v", toks, want)
		}
	}
}

func TestTokenizeEmptyAndPunctuation(t *testing.T) {
	if toks := Tokenize("...!!!"); len(toks) != 0 {
		t.Fatalf("tokens = %v, want none", toks)
	}
	if toks := Tokenize(""); len(toks) != 0 {
		t.Fatalf("tokens = %v, want none", toks)
	}
}

func TestHashFeaturesUnitNorm(t *testing.T) {
	if err := quick.Check(func(words []string) bool {
		var clean []string
		for _, w := range words {
			if w != "" {
				clean = append(clean, w)
			}
		}
		v := HashFeatures(clean, 64)
		var n float64
		for _, x := range v {
			n += x * x
		}
		if len(clean) == 0 {
			return n == 0
		}
		return math.Abs(n-1) < 1e-9
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTermFrequencies(t *testing.T) {
	tf := TermFrequencies([]string{"a", "b", "a"})
	if tf["a"] != 2 || tf["b"] != 1 {
		t.Fatalf("tf = %v", tf)
	}
}
