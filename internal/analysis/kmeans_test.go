package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"dcbench/internal/datagen"
)

func TestKMeansRecoversClusters(t *testing.T) {
	pts, labels := datagen.Vectors(5, 400, 6, 3)
	centroids, assign, iters := KMeans(pts, 3, 50, 1e-6)
	if iters < 1 {
		t.Fatal("no iterations")
	}
	if len(centroids) != 3 {
		t.Fatal("wrong k")
	}
	// Cluster purity: each found cluster should be dominated by one true label.
	for c := 0; c < 3; c++ {
		counts := map[int]int{}
		total := 0
		for i := range pts {
			if assign[i] == c {
				counts[labels[i]]++
				total++
			}
		}
		if total == 0 {
			continue
		}
		max := 0
		for _, n := range counts {
			if n > max {
				max = n
			}
		}
		if purity := float64(max) / float64(total); purity < 0.9 {
			t.Fatalf("cluster %d purity = %v, want >= 0.9", c, purity)
		}
	}
}

func TestKMeansObjectiveMonotone(t *testing.T) {
	pts, _ := datagen.Vectors(9, 300, 4, 4)
	centroids := [][]float64{pts[0], pts[1], pts[2], pts[3]}
	prev := math.Inf(1)
	for i := 0; i < 10; i++ {
		var cost float64
		centroids, _, cost = KMeansStep(pts, centroids)
		if cost > prev+1e-9 {
			t.Fatalf("objective rose: %v -> %v at iter %d", prev, cost, i)
		}
		prev = cost
	}
}

func TestKMeansAssignmentIsNearest(t *testing.T) {
	// Property: after a step, every point's recorded assignment is its
	// true nearest centroid among the *input* centroids.
	if err := quick.Check(func(seed uint64) bool {
		pts, _ := datagen.Vectors(seed, 60, 3, 3)
		cents := [][]float64{pts[0], pts[1], pts[2]}
		_, assign, _ := KMeansStep(pts, cents)
		for i, p := range pts {
			want, _ := NearestCentroid(p, cents)
			if assign[i] != want {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestKMeansEmptyClusterPreserved(t *testing.T) {
	pts := [][]float64{{0, 0}, {0.1, 0}, {0.2, 0}}
	cents := [][]float64{{0, 0}, {100, 100}}
	next, _, _ := KMeansStep(pts, cents)
	if next[1][0] != 100 || next[1][1] != 100 {
		t.Fatalf("empty cluster moved: %v", next[1])
	}
}

func TestKMeansPanicsOnTooFewPoints(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	KMeans([][]float64{{1}}, 2, 5, 0)
}

func TestFuzzyMembershipsSumToOne(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		pts, _ := datagen.Vectors(seed, 50, 3, 3)
		cents := [][]float64{pts[0], pts[1], pts[2]}
		_, memb, _ := FuzzyKMeansStep(pts, cents, 2.0)
		for _, u := range memb {
			sum := 0.0
			for _, v := range u {
				if v < -1e-12 || v > 1+1e-12 {
					return false
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestFuzzyKMeansConvergesToHardClustersOnSeparatedData(t *testing.T) {
	pts, _ := datagen.Vectors(3, 300, 4, 2)
	_, memb, _ := FuzzyKMeans(pts, 2, 2.0, 40, 1e-9)
	// On well-separated data most memberships should be decisive.
	decisive := 0
	for _, u := range memb {
		for _, v := range u {
			if v > 0.9 {
				decisive++
			}
		}
	}
	if frac := float64(decisive) / float64(len(memb)); frac < 0.8 {
		t.Fatalf("decisive fraction = %v, want >= 0.8", frac)
	}
}

func TestFuzzyCoincidentPoint(t *testing.T) {
	pts := [][]float64{{1, 1}, {5, 5}}
	cents := [][]float64{{1, 1}, {5, 5}}
	_, memb, _ := FuzzyKMeansStep(pts, cents, 2.0)
	if memb[0][0] != 1 || memb[1][1] != 1 {
		t.Fatalf("coincident points not fully assigned: %v", memb)
	}
}

func TestNearestCentroid(t *testing.T) {
	cents := [][]float64{{0, 0}, {10, 0}, {0, 10}}
	idx, d := NearestCentroid([]float64{9, 1}, cents)
	if idx != 1 {
		t.Fatalf("nearest = %d, want 1", idx)
	}
	if math.Abs(d-2) > 1e-12 {
		t.Fatalf("distance = %v, want 2", d)
	}
}
