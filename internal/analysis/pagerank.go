package analysis

import "math"

// PageRankStep performs one power iteration of PageRank with damping d over
// a directed graph in adjacency-list form (adj[i] = nodes i links to).
// Dangling mass is redistributed uniformly, keeping ranks a probability
// distribution.
func PageRankStep(adj [][]int, ranks []float64, d float64) []float64 {
	n := len(adj)
	next := make([]float64, n)
	base := (1 - d) / float64(n)
	dangling := 0.0
	for i, outs := range adj {
		if len(outs) == 0 {
			dangling += ranks[i]
			continue
		}
		share := d * ranks[i] / float64(len(outs))
		for _, t := range outs {
			next[t] += share
		}
	}
	extra := d * dangling / float64(n)
	for i := range next {
		next[i] += base + extra
	}
	return next
}

// PageRank iterates until the L1 change is below tol or maxIters is
// reached, returning the ranks and the iteration count.
func PageRank(adj [][]int, d float64, maxIters int, tol float64) ([]float64, int) {
	n := len(adj)
	ranks := make([]float64, n)
	for i := range ranks {
		ranks[i] = 1 / float64(n)
	}
	for it := 1; it <= maxIters; it++ {
		next := PageRankStep(adj, ranks, d)
		delta := 0.0
		for i := range next {
			delta += math.Abs(next[i] - ranks[i])
		}
		ranks = next
		if delta < tol {
			return ranks, it
		}
	}
	return ranks, maxIters
}
