package analysis

import "math"

// HMM is a discrete hidden Markov model used for the paper's word
// segmentation workload (Section II-C.4). Probabilities are stored as logs.
type HMM struct {
	States  int
	Symbols int
	LogPi   []float64   // initial state log-probabilities
	LogA    [][]float64 // transition log-probabilities
	LogB    [][]float64 // emission log-probabilities
}

// NewHMM allocates a model with uniform distributions.
func NewHMM(states, symbols int) *HMM {
	h := &HMM{States: states, Symbols: symbols}
	h.LogPi = make([]float64, states)
	h.LogA = make([][]float64, states)
	h.LogB = make([][]float64, states)
	lpi := -math.Log(float64(states))
	lb := -math.Log(float64(symbols))
	for s := 0; s < states; s++ {
		h.LogPi[s] = lpi
		h.LogA[s] = make([]float64, states)
		h.LogB[s] = make([]float64, symbols)
		for t := 0; t < states; t++ {
			h.LogA[s][t] = lpi
		}
		for o := 0; o < symbols; o++ {
			h.LogB[s][o] = lb
		}
	}
	return h
}

// TrainSupervised estimates the model from observation/state pairs by
// smoothed maximum likelihood counting — the map-side of the distributed
// trainer counts, the reduce-side normalises.
func TrainSupervised(states, symbols int, seqs [][]int, paths [][]int) *HMM {
	h := NewHMM(states, symbols)
	pi := make([]float64, states)
	a := make([][]float64, states)
	b := make([][]float64, states)
	for s := range a {
		a[s] = make([]float64, states)
		b[s] = make([]float64, symbols)
	}
	for i, obs := range seqs {
		path := paths[i]
		pi[path[0]]++
		for t, o := range obs {
			b[path[t]][o]++
			if t > 0 {
				a[path[t-1]][path[t]]++
			}
		}
	}
	h.SetFromCounts(pi, a, b)
	return h
}

// SetFromCounts loads the model from raw counts with add-one smoothing.
func (h *HMM) SetFromCounts(pi []float64, a, b [][]float64) {
	var piSum float64
	for _, v := range pi {
		piSum += v
	}
	for s := 0; s < h.States; s++ {
		h.LogPi[s] = math.Log((pi[s] + 1) / (piSum + float64(h.States)))
		var aSum, bSum float64
		for _, v := range a[s] {
			aSum += v
		}
		for _, v := range b[s] {
			bSum += v
		}
		for t := 0; t < h.States; t++ {
			h.LogA[s][t] = math.Log((a[s][t] + 1) / (aSum + float64(h.States)))
		}
		for o := 0; o < h.Symbols; o++ {
			h.LogB[s][o] = math.Log((b[s][o] + 1) / (bSum + float64(h.Symbols)))
		}
	}
}

// Viterbi returns the most probable hidden state path for obs and its
// log-probability.
func (h *HMM) Viterbi(obs []int) ([]int, float64) {
	n := len(obs)
	if n == 0 {
		return nil, 0
	}
	delta := make([][]float64, n)
	back := make([][]int, n)
	for t := range delta {
		delta[t] = make([]float64, h.States)
		back[t] = make([]int, h.States)
	}
	for s := 0; s < h.States; s++ {
		delta[0][s] = h.LogPi[s] + h.LogB[s][obs[0]]
	}
	for t := 1; t < n; t++ {
		for s := 0; s < h.States; s++ {
			bestPrev, bestLP := 0, math.Inf(-1)
			for q := 0; q < h.States; q++ {
				if lp := delta[t-1][q] + h.LogA[q][s]; lp > bestLP {
					bestPrev, bestLP = q, lp
				}
			}
			delta[t][s] = bestLP + h.LogB[s][obs[t]]
			back[t][s] = bestPrev
		}
	}
	best, bestLP := 0, math.Inf(-1)
	for s := 0; s < h.States; s++ {
		if delta[n-1][s] > bestLP {
			best, bestLP = s, delta[n-1][s]
		}
	}
	path := make([]int, n)
	path[n-1] = best
	for t := n - 1; t > 0; t-- {
		path[t-1] = back[t][path[t]]
	}
	return path, bestLP
}

// LogLikelihood computes the forward-algorithm log-likelihood of obs.
func (h *HMM) LogLikelihood(obs []int) float64 {
	n := len(obs)
	if n == 0 {
		return 0
	}
	alpha := make([]float64, h.States)
	for s := 0; s < h.States; s++ {
		alpha[s] = h.LogPi[s] + h.LogB[s][obs[0]]
	}
	next := make([]float64, h.States)
	for t := 1; t < n; t++ {
		for s := 0; s < h.States; s++ {
			acc := math.Inf(-1)
			for q := 0; q < h.States; q++ {
				acc = logAdd(acc, alpha[q]+h.LogA[q][s])
			}
			next[s] = acc + h.LogB[s][obs[t]]
		}
		alpha, next = next, alpha
	}
	total := math.Inf(-1)
	for s := 0; s < h.States; s++ {
		total = logAdd(total, alpha[s])
	}
	return total
}

func logAdd(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log1p(math.Exp(b-a))
}
