package analysis

import (
	"math"
	"sort"
)

// ItemCF is an item-based collaborative filtering recommender (the paper's
// IBCF workload): it computes item-item cosine similarities from a rating
// matrix and predicts a user's rating for an unseen item as the
// similarity-weighted mean of the user's ratings on similar items.
type ItemCF struct {
	// byItem[item][user] = rating
	byItem map[int]map[int]float64
	// byUser[user][item] = rating
	byUser map[int]map[int]float64
	// sims caches the top-K similarity lists per item.
	sims map[int][]ItemSim
	topK int
}

// ItemSim is one entry of an item's similarity list.
type ItemSim struct {
	Item int
	Sim  float64
}

// NewItemCF builds the recommender from ratings, keeping topK neighbours
// per item.
func NewItemCF(topK int) *ItemCF {
	return &ItemCF{
		byItem: make(map[int]map[int]float64),
		byUser: make(map[int]map[int]float64),
		sims:   make(map[int][]ItemSim),
		topK:   topK,
	}
}

// Add inserts one rating.
func (cf *ItemCF) Add(user, item int, score float64) {
	if cf.byItem[item] == nil {
		cf.byItem[item] = make(map[int]float64)
	}
	cf.byItem[item][user] = score
	if cf.byUser[user] == nil {
		cf.byUser[user] = make(map[int]float64)
	}
	cf.byUser[user][item] = score
	delete(cf.sims, item) // invalidate cache
}

// Cosine computes the cosine similarity between two items' rating vectors
// over their co-rating users.
func (cf *ItemCF) Cosine(a, b int) float64 {
	ra, rb := cf.byItem[a], cf.byItem[b]
	if len(ra) > len(rb) {
		ra, rb = rb, ra
	}
	var dot float64
	for u, va := range ra {
		if vb, ok := rb[u]; ok {
			dot += va * vb
		}
	}
	if dot == 0 {
		return 0
	}
	var na, nb float64
	for _, v := range cf.byItem[a] {
		na += v * v
	}
	for _, v := range cf.byItem[b] {
		nb += v * v
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// Items returns all item ids in ascending order.
func (cf *ItemCF) Items() []int {
	items := make([]int, 0, len(cf.byItem))
	for it := range cf.byItem {
		items = append(items, it)
	}
	sort.Ints(items)
	return items
}

// Similar returns the top-K most similar items to item, computing and
// caching the list on first use.
func (cf *ItemCF) Similar(item int) []ItemSim {
	if s, ok := cf.sims[item]; ok {
		return s
	}
	var list []ItemSim
	for _, other := range cf.Items() {
		if other == item {
			continue
		}
		if s := cf.Cosine(item, other); s > 0 {
			list = append(list, ItemSim{Item: other, Sim: s})
		}
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].Sim != list[j].Sim {
			return list[i].Sim > list[j].Sim
		}
		return list[i].Item < list[j].Item
	})
	if len(list) > cf.topK {
		list = list[:cf.topK]
	}
	cf.sims[item] = list
	return list
}

// Predict estimates user's rating for item. The second return is false when
// no co-rated neighbours exist.
func (cf *ItemCF) Predict(user, item int) (float64, bool) {
	urs := cf.byUser[user]
	if len(urs) == 0 {
		return 0, false
	}
	var num, den float64
	for _, is := range cf.Similar(item) {
		if r, ok := urs[is.Item]; ok {
			num += is.Sim * r
			den += is.Sim
		}
	}
	if den == 0 {
		return 0, false
	}
	return num / den, true
}

// Recommend returns up to n unseen items ranked by predicted rating.
func (cf *ItemCF) Recommend(user, n int) []ItemSim {
	urs := cf.byUser[user]
	var recs []ItemSim
	for _, item := range cf.Items() {
		if _, seen := urs[item]; seen {
			continue
		}
		if p, ok := cf.Predict(user, item); ok {
			recs = append(recs, ItemSim{Item: item, Sim: p})
		}
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Sim != recs[j].Sim {
			return recs[i].Sim > recs[j].Sim
		}
		return recs[i].Item < recs[j].Item
	})
	if len(recs) > n {
		recs = recs[:n]
	}
	return recs
}
