package analysis

import "dcbench/internal/sim"

// SVM is a linear support vector machine trained with the Pegasos
// stochastic sub-gradient method (hinge loss, L2 regularisation). Labels
// are +1 / -1.
type SVM struct {
	W      []float64
	Bias   float64
	Lambda float64
	// Step is the Pegasos step counter. It persists across TrainEpochs
	// calls so that warm-started training (e.g. distributed parameter
	// averaging) does not re-enter the degenerate t=1 step, whose decay
	// factor 1-eta*lambda = 0 erases the warm-start weights.
	Step int
}

// NewSVM creates an SVM over dim features with regularisation lambda.
func NewSVM(dim int, lambda float64) *SVM {
	return &SVM{W: make([]float64, dim), Lambda: lambda}
}

// Margin returns w·x + b.
func (s *SVM) Margin(x []float64) float64 {
	m := s.Bias
	for i, xi := range x {
		m += s.W[i] * xi
	}
	return m
}

// Predict returns +1 or -1.
func (s *SVM) Predict(x []float64) int {
	if s.Margin(x) >= 0 {
		return 1
	}
	return -1
}

// TrainEpochs runs Pegasos over the data set for the given number of
// epochs, visiting examples in a deterministic shuffled order per epoch
// (plain SGD diverges on adversarially ordered data). Returns the number of
// margin violations in the final epoch, a cheap convergence signal for the
// distributed driver.
func (s *SVM) TrainEpochs(x [][]float64, y []int, epochs int) int {
	t := s.Step
	if t < 1 {
		t = 1
	}
	violations := 0
	rng := sim.NewRNG(uint64(len(x))*2654435761 + 1)
	for e := 0; e < epochs; e++ {
		violations = 0
		for _, i := range rng.Perm(len(x)) {
			eta := 1 / (s.Lambda * float64(t))
			t++
			yi := float64(y[i])
			decay := 1 - eta*s.Lambda
			for j := range s.W {
				s.W[j] *= decay
			}
			// The bias is trained as a regularised weight on a constant
			// feature: an unregularised bias can settle far off-centre
			// after the huge early Pegasos steps.
			s.Bias *= decay
			if yi*s.Margin(x[i]) < 1 {
				violations++
				for j, xj := range x[i] {
					s.W[j] += eta * yi * xj
				}
				s.Bias += eta * yi
			}
		}
	}
	s.Step = t
	return violations
}

// SubGradient computes the Pegasos batch sub-gradient for a data shard,
// enabling map-side gradient computation with reduce-side averaging.
// It returns dW (same length as w) and the hinge-loss violation count.
func SubGradient(w []float64, bias, lambda float64, x [][]float64, y []int) ([]float64, int) {
	dw := make([]float64, len(w))
	violations := 0
	for j := range w {
		dw[j] = lambda * w[j]
	}
	for i := range x {
		m := bias
		for j, xj := range x[i] {
			m += w[j] * xj
		}
		if float64(y[i])*m < 1 {
			violations++
			for j, xj := range x[i] {
				dw[j] -= float64(y[i]) * xj / float64(len(x))
			}
		}
	}
	return dw, violations
}

// Accuracy returns the fraction of correctly classified examples.
func (s *SVM) Accuracy(x [][]float64, y []int) float64 {
	if len(x) == 0 {
		return 0
	}
	right := 0
	for i := range x {
		if s.Predict(x[i]) == y[i] {
			right++
		}
	}
	return float64(right) / float64(len(x))
}
