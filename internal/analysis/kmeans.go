package analysis

import "math"

// SquaredDistance returns the squared Euclidean distance between a and b.
func SquaredDistance(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// NearestCentroid returns the index of the closest centroid and the squared
// distance to it.
func NearestCentroid(p []float64, centroids [][]float64) (int, float64) {
	best, bestD := 0, math.Inf(1)
	for c, cen := range centroids {
		if d := SquaredDistance(p, cen); d < bestD {
			best, bestD = c, d
		}
	}
	return best, bestD
}

// KMeansStep performs one Lloyd iteration: assign every point to its nearest
// centroid and return the new centroids, the assignment, and the total
// within-cluster squared distance (the objective).
func KMeansStep(points, centroids [][]float64) (next [][]float64, assign []int, cost float64) {
	k := len(centroids)
	dim := len(centroids[0])
	sums := make([][]float64, k)
	for c := range sums {
		sums[c] = make([]float64, dim)
	}
	counts := make([]int, k)
	assign = make([]int, len(points))
	for i, p := range points {
		c, d := NearestCentroid(p, centroids)
		assign[i] = c
		cost += d
		counts[c]++
		for j, v := range p {
			sums[c][j] += v
		}
	}
	next = make([][]float64, k)
	for c := range next {
		next[c] = make([]float64, dim)
		if counts[c] == 0 {
			copy(next[c], centroids[c]) // keep empty clusters in place
			continue
		}
		for j := range next[c] {
			next[c][j] = sums[c][j] / float64(counts[c])
		}
	}
	return next, assign, cost
}

// KMeans runs Lloyd's algorithm from the first k points until the objective
// improves by less than tol or maxIters is reached. It returns centroids,
// the final assignment and the iteration count.
func KMeans(points [][]float64, k, maxIters int, tol float64) ([][]float64, []int, int) {
	if k <= 0 || len(points) < k {
		panic("analysis: KMeans needs at least k points")
	}
	centroids := make([][]float64, k)
	for i := range centroids {
		centroids[i] = append([]float64(nil), points[i]...)
	}
	prev := math.Inf(1)
	var assign []int
	for it := 1; it <= maxIters; it++ {
		var cost float64
		centroids, assign, cost = KMeansStep(points, centroids)
		if prev-cost < tol {
			return centroids, assign, it
		}
		prev = cost
	}
	return centroids, assign, maxIters
}

// FuzzyKMeansStep performs one fuzzy C-means iteration with fuzziness m:
// soft memberships u_ic ∝ (1/d_ic)^(1/(m-1)), centroids as membership-
// weighted means. Returns new centroids, the membership matrix and the
// fuzzy objective.
func FuzzyKMeansStep(points, centroids [][]float64, m float64) ([][]float64, [][]float64, float64) {
	k := len(centroids)
	dim := len(centroids[0])
	memb := make([][]float64, len(points))
	exp := 1 / (m - 1)
	cost := 0.0
	for i, p := range points {
		u := make([]float64, k)
		// Handle coincident points: full membership to the first zero-
		// distance centroid.
		hit := -1
		for c := range centroids {
			if d := SquaredDistance(p, centroids[c]); d == 0 {
				hit = c
				break
			}
		}
		if hit >= 0 {
			u[hit] = 1
		} else {
			sum := 0.0
			for c := range centroids {
				w := math.Pow(1/SquaredDistance(p, centroids[c]), exp)
				u[c] = w
				sum += w
			}
			for c := range u {
				u[c] /= sum
			}
		}
		memb[i] = u
		for c := range centroids {
			cost += math.Pow(u[c], m) * SquaredDistance(p, centroids[c])
		}
	}
	next := make([][]float64, k)
	for c := range next {
		next[c] = make([]float64, dim)
		den := 0.0
		for i, p := range points {
			w := math.Pow(memb[i][c], m)
			den += w
			for j, v := range p {
				next[c][j] += w * v
			}
		}
		if den == 0 {
			copy(next[c], centroids[c])
			continue
		}
		for j := range next[c] {
			next[c][j] /= den
		}
	}
	return next, memb, cost
}

// FuzzyKMeans iterates fuzzy C-means until the objective stabilises.
func FuzzyKMeans(points [][]float64, k int, m float64, maxIters int, tol float64) ([][]float64, [][]float64, int) {
	centroids := make([][]float64, k)
	for i := range centroids {
		centroids[i] = append([]float64(nil), points[i]...)
	}
	prev := math.Inf(1)
	var memb [][]float64
	for it := 1; it <= maxIters; it++ {
		var cost float64
		centroids, memb, cost = FuzzyKMeansStep(points, centroids, m)
		if math.Abs(prev-cost) < tol {
			return centroids, memb, it
		}
		prev = cost
	}
	return centroids, memb, maxIters
}
