package analysis

import (
	"math"
	"strings"
)

// Tokenize splits text into lowercase word tokens, dropping markup and
// punctuation. It is the shared tokenizer of the text workloads
// (WordCount, Grep, Naive Bayes, SVM-on-HTML).
func Tokenize(text string) []string {
	var out []string
	var b strings.Builder
	inTag := false
	flush := func() {
		if b.Len() > 0 {
			out = append(out, b.String())
			b.Reset()
		}
	}
	for _, r := range text {
		switch {
		case r == '<':
			inTag = true
			flush()
		case r == '>':
			inTag = false
		case inTag:
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
		case r >= 'A' && r <= 'Z':
			b.WriteRune(r + ('a' - 'A'))
		default:
			flush()
		}
	}
	flush()
	return out
}

// TermFrequencies counts token occurrences.
func TermFrequencies(tokens []string) map[string]int {
	tf := make(map[string]int, len(tokens))
	for _, t := range tokens {
		tf[t]++
	}
	return tf
}

// HashFeatures maps a bag of words into a fixed-length feature vector by
// feature hashing, the representation the distributed SVM trains on.
func HashFeatures(tokens []string, dim int) []float64 {
	v := make([]float64, dim)
	for _, t := range tokens {
		h := uint32(2166136261)
		for i := 0; i < len(t); i++ {
			h ^= uint32(t[i])
			h *= 16777619
		}
		v[h%uint32(dim)]++
	}
	// L2 normalise so SGD step sizes are comparable across documents.
	var n float64
	for _, x := range v {
		n += x * x
	}
	if n > 0 {
		n = 1 / math.Sqrt(n)
		for i := range v {
			v[i] *= n
		}
	}
	return v
}
