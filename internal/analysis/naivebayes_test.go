package analysis

import (
	"strings"
	"testing"

	"dcbench/internal/datagen"
)

func TestNaiveBayesLearnsSeparableClasses(t *testing.T) {
	c := datagen.NewCorpus(1, 2000)
	nb := NewNaiveBayes(3)
	for i := 0; i < 300; i++ {
		class := i % 3
		nb.Observe(strings.Fields(c.LabeledSentence(class, 3, 40)), class)
	}
	right := 0
	for i := 0; i < 90; i++ {
		class := i % 3
		if nb.Predict(strings.Fields(c.LabeledSentence(class, 3, 40))) == class {
			right++
		}
	}
	if acc := float64(right) / 90; acc < 0.8 {
		t.Fatalf("accuracy = %v, want >= 0.8", acc)
	}
}

func TestNaiveBayesMergeEquivalence(t *testing.T) {
	c := datagen.NewCorpus(2, 1000)
	var docs [][]string
	var labels []int
	for i := 0; i < 100; i++ {
		docs = append(docs, strings.Fields(c.LabeledSentence(i%2, 2, 30)))
		labels = append(labels, i%2)
	}
	// Single model.
	whole := NewNaiveBayes(2)
	for i := range docs {
		whole.Observe(docs[i], labels[i])
	}
	// Sharded models merged, as the distributed trainer does.
	a, b := NewNaiveBayes(2), NewNaiveBayes(2)
	for i := range docs {
		if i < 50 {
			a.Observe(docs[i], labels[i])
		} else {
			b.Observe(docs[i], labels[i])
		}
	}
	a.Merge(b)
	// Same predictions on held-out documents.
	for i := 0; i < 40; i++ {
		doc := strings.Fields(c.LabeledSentence(i%2, 2, 30))
		if whole.Predict(doc) != a.Predict(doc) {
			t.Fatal("merged model disagrees with monolithic model")
		}
	}
}

func TestNaiveBayesMergeClassMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewNaiveBayes(2).Merge(NewNaiveBayes(3))
}

func TestNaiveBayesUnknownWordsHandled(t *testing.T) {
	nb := NewNaiveBayes(2)
	nb.Observe([]string{"alpha", "beta"}, 0)
	nb.Observe([]string{"gamma", "delta"}, 1)
	// Entirely unseen vocabulary should not crash and should fall back to
	// the prior (both classes equal here, so either answer is fine).
	got := nb.Predict([]string{"zzz", "qqq"})
	if got != 0 && got != 1 {
		t.Fatalf("predict = %d", got)
	}
}

func TestSVMLearnsLinearlySeparableData(t *testing.T) {
	// Points in 2D separated by x0 + x1 = 0.
	var x [][]float64
	var y []int
	rngVals := []float64{-3, -2, -1.5, 1.5, 2, 3}
	for _, a := range rngVals {
		for _, b := range rngVals {
			if a+b == 0 {
				continue // keep a clear margin around the separator
			}
			x = append(x, []float64{a, b})
			if a+b > 0 {
				y = append(y, 1)
			} else {
				y = append(y, -1)
			}
		}
	}
	s := NewSVM(2, 0.001)
	s.TrainEpochs(x, y, 300)
	if acc := s.Accuracy(x, y); acc < 0.95 {
		t.Fatalf("accuracy = %v, want >= 0.95", acc)
	}
}

func TestSVMTextClassification(t *testing.T) {
	c := datagen.NewCorpus(4, 2000)
	dim := 256
	var x [][]float64
	var y []int
	for i := 0; i < 200; i++ {
		class := i % 2
		feats := HashFeatures(strings.Fields(c.LabeledSentence(class, 2, 50)), dim)
		x = append(x, feats)
		y = append(y, 2*class-1)
	}
	s := NewSVM(dim, 0.001)
	s.TrainEpochs(x, y, 30)
	if acc := s.Accuracy(x, y); acc < 0.85 {
		t.Fatalf("text accuracy = %v, want >= 0.85", acc)
	}
}

func TestSubGradientDirection(t *testing.T) {
	// On misclassified data the sub-gradient step must reduce hinge loss.
	x := [][]float64{{1, 0}, {-1, 0}}
	y := []int{1, -1}
	w := []float64{-1, 0} // wrong direction
	dw, violations := SubGradient(w, 0, 0.01, x, y)
	if violations != 2 {
		t.Fatalf("violations = %d, want 2", violations)
	}
	// Applying a step against dw should raise the margin of example 0.
	eta := 0.5
	w2 := []float64{w[0] - eta*dw[0], w[1] - eta*dw[1]}
	if w2[0] <= w[0] {
		t.Fatalf("gradient step moved w the wrong way: %v -> %v", w, w2)
	}
}
