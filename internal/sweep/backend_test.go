package sweep_test

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"dcbench/internal/sweep"
	"dcbench/internal/uarch"
)

// memBackend is an in-memory MemoBackend that counts traffic, standing in
// for the persistent store.
type memBackend struct {
	mu     sync.Mutex
	m      map[sweep.Key]*uarch.Counters
	hits   int
	misses int
	stores int
}

func newMemBackend() *memBackend { return &memBackend{m: map[sweep.Key]*uarch.Counters{}} }

func (b *memBackend) Load(_ context.Context, k sweep.Key) (*uarch.Counters, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	c, ok := b.m[k]
	if ok {
		b.hits++
	} else {
		b.misses++
	}
	return c, ok
}

func (b *memBackend) Store(_ context.Context, k sweep.Key, c *uarch.Counters) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.m[k] = c
	b.stores++
}

func (b *memBackend) counts() (hits, misses, stores int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.hits, b.misses, b.stores
}

// TestMemoBackendRoundTrip pins the backend contract: a cold engine fills
// the backend (one Store per key), and a second, fresh engine sharing the
// backend serves every job from it without simulating — the restart
// scenario dcserved's persistent store builds on.
func TestMemoBackendRoundTrip(t *testing.T) {
	jobs := testJobs(5)
	cfg := uarch.DefaultConfig()
	cfg.Warmup = 10_000
	b := newMemBackend()

	cold := sweep.NewEngine()
	cold.SetMemoBackend(b)
	first, err := cold.Run(context.Background(), jobs, cfg, 0, sweep.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses, stores := b.counts(); hits != 0 || misses != len(jobs) || stores != len(jobs) {
		t.Fatalf("cold run: hits=%d misses=%d stores=%d, want 0/%d/%d", hits, misses, stores, len(jobs), len(jobs))
	}

	// A second run on the same engine resolves in-memory: no new traffic.
	if _, err := cold.Run(context.Background(), jobs, cfg, 0, sweep.RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if hits, misses, stores := b.counts(); hits != 0 || misses != len(jobs) || stores != len(jobs) {
		t.Fatalf("warm memo run touched the backend: hits=%d misses=%d stores=%d", hits, misses, stores)
	}

	// A fresh engine ("restarted process") loads everything, stores nothing.
	warm := sweep.NewEngine()
	warm.SetMemoBackend(b)
	second, err := warm.Run(context.Background(), jobs, cfg, 0, sweep.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if hits, _, stores := b.counts(); hits != len(jobs) || stores != len(jobs) {
		t.Fatalf("warm-backend run: hits=%d stores=%d, want %d/%d", hits, stores, len(jobs), len(jobs))
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("backend-served counters diverge from the simulated ones")
	}
}

// TestNoMemoBypassesBackend: NoMemo runs must not read or write the
// backend (benchmarks depend on forcing real simulations).
func TestNoMemoBypassesBackend(t *testing.T) {
	jobs := testJobs(3)
	cfg := uarch.DefaultConfig()
	b := newMemBackend()
	e := sweep.NewEngine()
	e.SetMemoBackend(b)
	if _, err := e.Run(context.Background(), jobs, cfg, 0, sweep.RunOptions{NoMemo: true}); err != nil {
		t.Fatal(err)
	}
	if hits, misses, stores := b.counts(); hits+misses+stores != 0 {
		t.Fatalf("NoMemo touched the backend: hits=%d misses=%d stores=%d", hits, misses, stores)
	}
}
