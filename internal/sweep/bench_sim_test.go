package sweep_test

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"dcbench/internal/core"
	"dcbench/internal/memtrace"
	"dcbench/internal/memtrace/tracecache"
	"dcbench/internal/sweep"
	"dcbench/internal/uarch"
)

// TestBenchArtifact writes the CI perf artifact (BENCH_sim.json): the
// cost of sweeping one real workload across several machine
// configurations with the trace regenerated per config (the cold path)
// versus replayed from the trace cache, plus the bare step-loop
// throughput and the encoded trace density. Gated on BENCH_SIM_OUT so
// ordinary test runs skip it.
func TestBenchArtifact(t *testing.T) {
	out := os.Getenv("BENCH_SIM_OUT")
	if out == "" {
		t.Skip("set BENCH_SIM_OUT=<path> to write the perf artifact")
	}
	job := core.RegistryJobs()[0]
	const instrs = 400_000
	cfgs := sweepConfigs(6)
	totalInstrs := int64(instrs) * int64(len(cfgs))

	runAll := func(e *sweep.Engine) time.Duration {
		start := time.Now()
		for _, cfg := range cfgs {
			if _, err := e.Run(context.Background(), []sweep.Job{job}, cfg, instrs,
				sweep.RunOptions{Workers: 1, NoMemo: true}); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}

	// Cold: every config regenerates the workload's trace.
	cold := runAll(sweep.NewEngine())

	// Replay: capture once outside the timed window, then every config
	// decodes the cached segments.
	warm := sweep.NewEngine()
	warm.SetTraceCache(tracecache.New(tracecache.DefaultMaxBytes))
	if _, err := warm.Run(context.Background(), []sweep.Job{job}, cfgs[0], instrs,
		sweep.RunOptions{Workers: 1, NoMemo: true}); err != nil {
		t.Fatal(err)
	}
	replay := runAll(warm)
	ts, _ := warm.TraceCacheStats()
	if ts.Captures != 1 || ts.Hits != int64(len(cfgs)) {
		t.Fatalf("trace cache stats = %+v, want captures=1 hits=%d (replay benchmark mis-primed)", ts, len(cfgs))
	}

	// Bare step throughput: the core loop over an in-memory trace, no
	// generation and no decode — the floor replay is approaching.
	p := job.Profile
	p.MaxInstrs = instrs
	trace := memtrace.Collect(memtrace.NewReader(p, job.Gen), instrs)
	cfg := cfgs[0]
	c := uarch.NewCore(cfg)
	stepStart := time.Now()
	const stepRounds = 3
	for i := 0; i < stepRounds; i++ {
		c.Reset(cfg)
		c.Run(memtrace.NewSliceReader(trace))
	}
	stepNS := float64(time.Since(stepStart).Nanoseconds()) / float64(stepRounds*len(trace))

	artifact := map[string]any{
		"schema":               1,
		"workload":             job.Name,
		"configs":              len(cfgs),
		"instrs_per_config":    instrs,
		"cold_ns_per_instr":    float64(cold.Nanoseconds()) / float64(totalInstrs),
		"replay_ns_per_instr":  float64(replay.Nanoseconds()) / float64(totalInstrs),
		"replay_speedup":       float64(cold.Nanoseconds()) / float64(replay.Nanoseconds()),
		"step_ns_per_instr":    stepNS,
		"trace_bytes":          ts.Bytes,
		"trace_bytes_per_inst": float64(ts.Bytes) / float64(len(trace)),
	}
	data, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("wrote %s: %s\n", out, data)
}
