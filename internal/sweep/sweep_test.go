package sweep_test

import (
	"context"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dcbench/internal/core"
	"dcbench/internal/memtrace"
	"dcbench/internal/sweep"
	"dcbench/internal/uarch"
)

// testJobs builds small synthetic workloads with distinct profiles.
func testJobs(n int) []sweep.Job {
	jobs := make([]sweep.Job, n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = sweep.Job{
			Name: "job-" + string(rune('A'+i)),
			Profile: memtrace.Profile{
				Seed:      uint64(1000 + i),
				MaxInstrs: 40_000,
				CodeKB:    64 + 32*i,
				HeapMB:    4,
			},
			Gen: func(t *memtrace.Tracer) {
				base := t.Alloc(1 << 20)
				for {
					for off := uint64(0); off < 1<<20; off += 64 {
						t.Load(base + off)
						t.BranchSite(i, off%128 == 0)
					}
				}
			},
		}
	}
	return jobs
}

// TestParallelMatchesSerial is the engine's core guarantee: at a fixed seed
// the fanned-out sweep produces counters bit-identical to one worker.
func TestParallelMatchesSerial(t *testing.T) {
	jobs := testJobs(6)
	cfg := uarch.DefaultConfig()
	cfg.Warmup = 10_000

	serial, err := sweep.NewEngine().Run(context.Background(), jobs, cfg, 0,
		sweep.RunOptions{Workers: 1, NoMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := sweep.NewEngine().Run(context.Background(), jobs, cfg, 0,
		sweep.RunOptions{Workers: 4, NoMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("%s: parallel counters diverge from serial\nserial:   %+v\nparallel: %+v",
				jobs[i].Name, serial[i], parallel[i])
		}
	}
}

// TestRegistrySerialVsParallel runs the real 26-workload registry serially
// and with 4 workers at the default seed and asserts bit-identical
// uarch.Counters per workload — the -j determinism contract of the CLI.
func TestRegistrySerialVsParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry sweep")
	}
	jobs := core.RegistryJobs()
	cfg := uarch.DefaultConfig()
	cfg.Warmup = 40_000
	const instrs = 120_000

	serial, err := sweep.NewEngine().Run(context.Background(), jobs, cfg, instrs,
		sweep.RunOptions{Workers: 1, NoMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := sweep.NewEngine().Run(context.Background(), jobs, cfg, instrs,
		sweep.RunOptions{Workers: 4, NoMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range jobs {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("%s: -j 4 counters diverge from serial\nserial:   %+v\nparallel: %+v",
				j.Name, serial[i], parallel[i])
		}
	}
}

// TestMemoization: a second Run with identical inputs must not re-simulate,
// and NoMemo must.
func TestMemoization(t *testing.T) {
	var gens atomic.Int64
	jobs := testJobs(3)
	for i := range jobs {
		inner := jobs[i].Gen
		jobs[i].Gen = func(tr *memtrace.Tracer) {
			gens.Add(1)
			inner(tr)
		}
	}
	cfg := uarch.DefaultConfig()
	eng := sweep.NewEngine()

	first, err := eng.Run(context.Background(), jobs, cfg, 0, sweep.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := gens.Load(); got != 3 {
		t.Fatalf("first run: %d generator invocations, want 3", got)
	}
	second, err := eng.Run(context.Background(), jobs, cfg, 0, sweep.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := gens.Load(); got != 3 {
		t.Errorf("memoized rerun re-simulated: %d generator invocations, want 3", got)
	}
	for i := range jobs {
		if first[i] != second[i] {
			t.Errorf("%s: memoized rerun returned a different counter file", jobs[i].Name)
		}
	}
	if _, err := eng.Run(context.Background(), jobs, cfg, 0, sweep.RunOptions{NoMemo: true}); err != nil {
		t.Fatal(err)
	}
	if got := gens.Load(); got != 6 {
		t.Errorf("NoMemo run did not re-simulate: %d generator invocations, want 6", got)
	}

	// A different trace length is a different key.
	if _, err := eng.Run(context.Background(), jobs, cfg, 20_000, sweep.RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := gens.Load(); got != 9 {
		t.Errorf("shorter trace reused the full-length memo entry: %d invocations, want 9", got)
	}
}

// TestCancellation: a cancelled context aborts the sweep with ctx.Err().
func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := sweep.NewEngine().Run(ctx, testJobs(4), uarch.DefaultConfig(), 0, sweep.RunOptions{})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// cancelSpyBackend records the context the engine hands to Load — the
// singleflight cell's run context — so a test can assert the simulation
// side observes refcounted cancellation. Stores counts write-throughs.
type cancelSpyBackend struct {
	mu      sync.Mutex
	loadCtx context.Context
	stores  atomic.Int64
}

func (b *cancelSpyBackend) Load(ctx context.Context, _ sweep.Key) (*uarch.Counters, bool) {
	b.mu.Lock()
	b.loadCtx = ctx
	b.mu.Unlock()
	return nil, false
}

func (b *cancelSpyBackend) Store(context.Context, sweep.Key, *uarch.Counters) {
	b.stores.Add(1)
}

// TestCancelMidSimulationStopsCore: cancelling every caller of an
// in-flight simulation cancels the run's own context (observed through the
// backend's Load ctx), stops the core mid-trace, discards the partial
// counters — never cached, never written through — and a later Run
// re-simulates from scratch.
func TestCancelMidSimulationStopsCore(t *testing.T) {
	spy := &cancelSpyBackend{}
	eng := sweep.NewEngine()
	eng.SetMemoBackend(spy)

	var gens atomic.Int64
	started := make(chan struct{})
	var once sync.Once
	job := sweep.Job{
		Name: "long-haul",
		// Big enough that an uncancelled run takes seconds: the quick
		// return below is the cancellation working.
		Profile: memtrace.Profile{Seed: 11, MaxInstrs: 50_000_000, CodeKB: 64, HeapMB: 4},
		Gen: func(tr *memtrace.Tracer) {
			gens.Add(1)
			once.Do(func() { close(started) })
			base := tr.Alloc(1 << 20)
			for {
				for off := uint64(0); off < 1<<20; off += 64 {
					tr.Load(base + off)
				}
			}
		},
	}
	cfg := uarch.DefaultConfig()

	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() {
		_, err := eng.Run(ctx, []sweep.Job{job}, cfg, 0, sweep.RunOptions{Workers: 1})
		runDone <- err
	}()
	<-started
	cancel()
	select {
	case err := <-runDone:
		if err != context.Canceled {
			t.Fatalf("Run err = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}

	// The simulation's own context — the one the backend Load saw — must
	// observe the cancellation once the last caller has left.
	spy.mu.Lock()
	loadCtx := spy.loadCtx
	spy.mu.Unlock()
	if loadCtx == nil {
		t.Fatal("backend Load never ran")
	}
	select {
	case <-loadCtx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("simulation context never observed the cancellation")
	}
	if got := spy.stores.Load(); got != 0 {
		t.Fatalf("cancelled run wrote %d records through; partial counters must be discarded", got)
	}

	// Nothing was cached: a fresh Run re-simulates and succeeds.
	out, err := eng.Run(context.Background(), []sweep.Job{job}, cfg, 100_000, sweep.RunOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] == nil || out[0].Instructions == 0 {
		t.Fatal("post-cancel rerun produced no counters")
	}
	if got := gens.Load(); got != 2 {
		t.Fatalf("generator ran %d times, want 2 (cancelled + fresh)", got)
	}
	if got := spy.stores.Load(); got != 1 {
		t.Fatalf("successful rerun stored %d records, want 1", got)
	}
}

// TestErrorCapture: a panicking generator becomes a per-job error carrying
// the job name, and the other jobs still produce counters.
func TestErrorCapture(t *testing.T) {
	jobs := testJobs(3)
	jobs[1].Name = "exploding"
	jobs[1].Gen = func(tr *memtrace.Tracer) {
		tr.ALU(100)
		panic("boom")
	}
	out, err := sweep.NewEngine().Run(context.Background(), jobs, uarch.DefaultConfig(), 0,
		sweep.RunOptions{Workers: 2})
	if err == nil || !strings.Contains(err.Error(), "exploding") || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want panic from job %q", err, "exploding")
	}
	if out[1] != nil {
		t.Errorf("failed job returned counters")
	}
	for _, i := range []int{0, 2} {
		if out[i] == nil || out[i].Instructions == 0 {
			t.Errorf("job %d did not complete despite sibling failure", i)
		}
	}
}

// TestExplicitPredictorFallsBackToSerial: a shared predictor instance must
// not be fanned out; the legacy serial semantics (state carried across jobs
// in order) are preserved instead.
func TestExplicitPredictorFallsBackToSerial(t *testing.T) {
	jobs := testJobs(3)
	mkCfg := func() uarch.Config {
		c := uarch.DefaultConfig()
		c.Predictor = newCountingPredictor()
		return c
	}

	cfgA := mkCfg()
	got, err := sweep.NewEngine().Run(context.Background(), jobs, cfgA, 0,
		sweep.RunOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Legacy comparison: NewCore per job with the same shared instance.
	cfgB := mkCfg()
	want := make([]*uarch.Counters, len(jobs))
	for i, j := range jobs {
		p := j.Profile
		c := uarch.NewCore(cfgB)
		want[i] = c.Run(memtrace.NewReader(p, j.Gen))
	}
	for i := range jobs {
		if !reflect.DeepEqual(*got[i], *want[i]) {
			t.Errorf("%s: explicit-predictor sweep diverges from legacy serial path", jobs[i].Name)
		}
	}
}

// countingPredictor is a minimal deterministic stateful predictor.
type countingPredictor struct{ n uint64 }

func newCountingPredictor() *countingPredictor { return &countingPredictor{} }

func (p *countingPredictor) Predict(pc uint64) bool { return (pc>>2+p.n)%3 == 0 }
func (p *countingPredictor) Update(pc uint64, taken bool) {
	if taken {
		p.n++
	}
}
func (p *countingPredictor) Name() string { return "counting" }
func (p *countingPredictor) Reset()       { p.n = 0 }

// TestEach checks ordering-independence and bounded fan-out of the pool
// primitive.
func TestEach(t *testing.T) {
	const n = 100
	seen := make([]int32, n)
	var inFlight, peak atomic.Int32
	err := sweep.Each(context.Background(), 4, n, func(i int) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		atomic.AddInt32(&seen[i], 1)
		inFlight.Add(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
	if p := peak.Load(); p > 4 {
		t.Errorf("peak concurrency %d exceeds 4 workers", p)
	}
}
