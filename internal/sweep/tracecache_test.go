package sweep_test

import (
	"context"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"dcbench/internal/core"
	"dcbench/internal/memtrace"
	"dcbench/internal/memtrace/tracecache"
	"dcbench/internal/sweep"
	"dcbench/internal/uarch"
)

// sweepConfigs returns n distinct machine configurations — the shape of a
// design-space sweep over one workload (L3 sizing à la Figure 10, plus
// back-end width) at a fixed warmup.
func sweepConfigs(n int) []uarch.Config {
	cfgs := make([]uarch.Config, n)
	for i := range cfgs {
		cfg := uarch.DefaultConfig()
		cfg.Warmup = 10_000
		cfg.L3Size = (3 + 6*i) << 20
		cfg.ROB = 64 + 32*i
		cfgs[i] = cfg
	}
	return cfgs
}

// TestTraceCacheSweepGeneratesOnce is the tentpole's acceptance criterion:
// sweeping one workload across N configs with the trace cache installed
// runs its generator exactly once — the cache counters say so, and so does
// the instrumented generator — and every config's Counters are
// bit-identical to the uncached path.
func TestTraceCacheSweepGeneratesOnce(t *testing.T) {
	const nConfigs = 5
	var gens atomic.Int64
	job := testJobs(1)[0]
	inner := job.Gen
	job.Gen = func(tr *memtrace.Tracer) {
		gens.Add(1)
		inner(tr)
	}
	cfgs := sweepConfigs(nConfigs)

	cached := sweep.NewEngine()
	cached.SetTraceCache(tracecache.New(tracecache.DefaultMaxBytes))
	var got []*uarch.Counters
	for _, cfg := range cfgs {
		out, err := cached.Run(context.Background(), []sweep.Job{job}, cfg, 0, sweep.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, out[0])
	}

	if n := gens.Load(); n != 1 {
		t.Fatalf("generator ran %d times across %d configs, want exactly 1", n, nConfigs)
	}
	s, ok := cached.TraceCacheStats()
	if !ok {
		t.Fatal("TraceCacheStats reports no cache installed")
	}
	if s.Captures != 1 || s.Misses != 1 || s.Hits != int64(nConfigs-1) || s.Fallbacks != 0 {
		t.Fatalf("cache stats = %+v, want captures=1 misses=1 hits=%d fallbacks=0", s, nConfigs-1)
	}

	// The uncached engine re-generates per config; results must match bit
	// for bit anyway.
	uncached := sweep.NewEngine()
	for i, cfg := range cfgs {
		want, err := uncached.Run(context.Background(), []sweep.Job{job}, cfg, 0, sweep.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want[0], got[i]) {
			t.Errorf("config %d: replayed counters diverge from generated\nreplay:   %+v\ngenerate: %+v",
				i, got[i], want[0])
		}
	}
}

// TestTraceCacheRegistryReplayDeterminism sweeps the real 26-workload
// registry at two machine configurations with and without the trace cache
// and asserts bit-identical uarch.Counters everywhere — the replay path's
// determinism contract, exercised concurrently (the race detector sees
// the shared segment decode under -race).
func TestTraceCacheRegistryReplayDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry sweep")
	}
	jobs := core.RegistryJobs()
	const instrs = 120_000
	cfgA := uarch.DefaultConfig()
	cfgA.Warmup = 40_000
	cfgB := cfgA
	cfgB.L3Size = 3 << 20
	cfgB.ROB = 64

	cached := sweep.NewEngine()
	cached.SetTraceCache(tracecache.New(tracecache.DefaultMaxBytes))
	plain := sweep.NewEngine()
	for _, cfg := range []uarch.Config{cfgA, cfgB} {
		got, err := cached.Run(context.Background(), jobs, cfg, instrs, sweep.RunOptions{Workers: 4, NoMemo: true})
		if err != nil {
			t.Fatal(err)
		}
		want, err := plain.Run(context.Background(), jobs, cfg, instrs, sweep.RunOptions{Workers: 4, NoMemo: true})
		if err != nil {
			t.Fatal(err)
		}
		for i, j := range jobs {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Errorf("%s: replayed counters diverge from generated\nreplay:   %+v\ngenerate: %+v",
					j.Name, got[i], want[i])
			}
		}
	}
	s, _ := cached.TraceCacheStats()
	if s.Captures != int64(len(jobs)) {
		t.Errorf("captures = %d, want one per workload (%d)", s.Captures, len(jobs))
	}
	if s.Hits != int64(len(jobs)) {
		t.Errorf("hits = %d, want one per workload on the second config (%d)", s.Hits, len(jobs))
	}
}

// TestTraceCacheErrorSurfaces: a generator that panics during capture
// fails its job with the same error text as the live path, and healthy
// sibling jobs still complete.
func TestTraceCacheErrorSurfaces(t *testing.T) {
	jobs := testJobs(3)
	jobs[1].Name = "exploding"
	jobs[1].Gen = func(tr *memtrace.Tracer) {
		tr.ALU(100)
		panic("boom")
	}
	e := sweep.NewEngine()
	e.SetTraceCache(tracecache.New(tracecache.DefaultMaxBytes))
	out, err := e.Run(context.Background(), jobs, uarch.DefaultConfig(), 0, sweep.RunOptions{Workers: 2})
	if err == nil || !containsAll(err.Error(), "exploding", "boom", "trace generation panicked") {
		t.Fatalf("err = %v, want capture panic attributed to job %q", err, "exploding")
	}
	if out[1] != nil {
		t.Errorf("failed job returned counters")
	}
	for _, i := range []int{0, 2} {
		if out[i] == nil || out[i].Instructions == 0 {
			t.Errorf("job %d did not complete despite sibling failure", i)
		}
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		if !strings.Contains(s, sub) {
			return false
		}
	}
	return true
}
