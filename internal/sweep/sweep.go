// Package sweep is the concurrent characterization pipeline: it fans a set
// of workload traces out over a worker pool of reusable core models,
// returning counter files in deterministic input order.
//
// The paper's evaluation is one big sweep — 26 registry workloads through
// the uarch core model for Figures 3-12 — and the engine makes that sweep
// scale with the host instead of running on one goroutine. Three mechanisms
// carry the speedup without changing results:
//
//   - a bounded worker pool (Each) hands jobs to GOMAXPROCS workers by
//     index, so results land in registry order no matter which worker
//     finishes first;
//   - a per-configuration pool of uarch.Core instances recycled with
//     (*Core).Reset, so workers reuse ~13 MB of simulated cache/TLB/
//     predictor state instead of reallocating it per workload;
//   - a memo table keyed by (workload name, profile, config fingerprint,
//     trace length), so repeated figure and table renders share one sweep
//     instead of re-simulating.
//
// Every job runs its own tracer with its own seeded RNG against a core that
// Reset has returned to the fresh-core state, so at a fixed seed the
// parallel sweep is bit-identical to the serial one (the equivalence test
// in this package pins that down).
package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"dcbench/internal/memo"
	"dcbench/internal/memtrace"
	"dcbench/internal/memtrace/tracecache"
	"dcbench/internal/obs"
	"dcbench/internal/uarch"
)

// Job is one unit of sweep work: a named workload trace to run through the
// core model. core.Workload entries map to Jobs one-to-one.
//
// (Name, Profile) must uniquely identify the generated trace: the engine's
// memo table cannot hash the Gen closure, so two Jobs sharing a name and
// profile but generating different traces would share one cached result.
type Job struct {
	Name    string
	Profile memtrace.Profile
	Gen     func(*memtrace.Tracer)
}

// RunOptions tunes one engine run.
type RunOptions struct {
	// Workers is the fan-out width; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// NoMemo bypasses the result cache, forcing a full re-simulation
	// (benchmarks measuring sweep cost set this).
	NoMemo bool
}

func (o RunOptions) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// Key identifies one simulation's full input: the workload (name plus its
// entire trace profile, which embeds the seed; the Gen closure itself is
// not hashable, hence Job's uniqueness contract) and the machine (config
// fingerprint, which embeds the warmup) at a given trace length. It is the
// engine's memo key and the address a MemoBackend persists results under.
type Key struct {
	Name      string
	Profile   memtrace.Profile
	ConfigFP  uint64
	MaxInstrs int64
}

// MemoBackend is a second-level result cache behind the engine's in-memory
// memo table — a persistent store shared across processes, a remote
// dispatch layer forwarding misses to worker nodes, or both stacked. The
// engine consults it only on an in-memory miss and writes through after
// each successful simulation, both under the key's singleflight cell, so a
// backend sees at most one Load and one Store per key per process while
// the key stays memoized (a failed simulation forgets the key, so a retry
// consults the backend again).
//
// Backends swallow their own failures (a broken store must degrade to
// re-simulation, not break the sweep): Load reports a miss, Store drops the
// write. Counters handed to and from the backend are shared with the memo
// table — treat them as read-only.
//
// The context carries the obs trace of whichever request is paying for
// the miss, so a backend that does real work (a store read, a dispatched
// RPC) records its spans into that request's timeline and propagates the
// trace ID across processes. Its cancellation is refcounted, not
// per-caller: the engine calls backends inside a singleflight cell, and
// the context is cancelled only when every caller sharing the cell has
// left — a backend seeing ctx.Done() may abort the load, because nobody
// wants the result anymore.
type MemoBackend interface {
	Load(context.Context, Key) (*uarch.Counters, bool)
	Store(context.Context, Key, *uarch.Counters)
}

// BackendStats is a point-in-time snapshot of a MemoBackend's store-level
// counters: current size and geometry plus the monotonic traffic counters.
// The hit/miss split tells an operator how warm the store is; a nonzero
// Corrupt count flags disk trouble the backend silently degraded around.
// A backend that forwards misses to worker nodes fills the Dispatch block;
// plain stores leave it nil.
type BackendStats struct {
	Records   int64 `json:"records"`
	Bytes     int64 `json:"bytes"`
	Shards    int64 `json:"shards"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Writes    int64 `json:"writes"`
	Evictions int64 `json:"evictions"`
	Corrupt   int64 `json:"corrupt"`
	// Adopted counts records installed from a replica peer (write-through
	// push or anti-entropy pull) rather than simulated here — the split
	// that lets "writes" keep meaning "computed on this node", which the
	// zero-re-simulation oracles depend on. Omitted while zero, so
	// replication-off output is byte-identical to older builds.
	Adopted  int64          `json:"adopted,omitempty"`
	Dispatch *DispatchStats `json:"dispatch,omitempty"`
	// Replication reports the replica subsystem when one is wired in
	// (write-through fan-out and anti-entropy between store peers);
	// standalone nodes leave it nil.
	Replication *ReplicationStats `json:"replication,omitempty"`
	// TraceCache reports the engine's trace capture/replay layer when one
	// is installed; engines running without one leave it nil.
	TraceCache *tracecache.Stats `json:"trace_cache,omitempty"`
}

// ReplicationStats is the replica subsystem's slice of BackendStats: the
// write-through fan-out's traffic (pushed/push_errors/dropped/queue_depth),
// the anti-entropy loop's (digest_rounds/pulled/pull_errors/repaired), and
// the aggregated cluster-wide gauge the last digest exchange observed
// (cluster_records/cluster_bytes — every peer's record count and bytes
// summed with this node's own, the cluster view the per-process budgets
// lack). Dropped > 0 means the push queue overflowed and anti-entropy is
// carrying the slack; Repaired counts records a digest round actually
// pulled in, so a steady nonzero rate flags a peer that keeps diverging.
type ReplicationStats struct {
	Peers          int64 `json:"peers"`
	Factor         int64 `json:"factor"`
	Pushed         int64 `json:"pushed"`
	PushErrors     int64 `json:"push_errors"`
	Dropped        int64 `json:"dropped"`
	QueueDepth     int64 `json:"queue_depth"`
	DigestRounds   int64 `json:"digest_rounds"`
	Pulled         int64 `json:"pulled"`
	PullErrors     int64 `json:"pull_errors"`
	Repaired       int64 `json:"repaired"`
	ClusterRecords int64 `json:"cluster_records"`
	ClusterBytes   int64 `json:"cluster_bytes"`
}

// DispatchStats is the remote-dispatch slice of BackendStats: how much
// compute work left this process, how much of it came back, and how often
// the process had to degrade to simulating locally. Fallbacks > 0 with a
// nonzero worker set is the operator's signal that the cluster is dark;
// Shed > 0 says workers are answering but saturated (429), so the set is
// undersized for the load, not broken. The aggregate counters sum over
// job kinds; PerKind splits them so a cluster-job problem cannot hide
// behind healthy counter traffic.
type DispatchStats struct {
	Workers    int64               `json:"workers"`
	Healthy    int64               `json:"healthy"`
	Dispatched int64               `json:"dispatched"`
	RemoteHits int64               `json:"remote_hits"`
	Fallbacks  int64               `json:"fallbacks"`
	Errors     int64               `json:"errors"`
	Shed       int64               `json:"shed"`
	InFlight   int64               `json:"in_flight"`
	PerKind    []DispatchKindStats `json:"per_kind,omitempty"`
	PerWorker  []WorkerStats       `json:"per_worker,omitempty"`
}

// DispatchKindStats is one job kind's slice of the dispatch counters.
// Kind names match the store's record kinds ("counters", "cluster").
type DispatchKindStats struct {
	Kind       string `json:"kind"`
	Dispatched int64  `json:"dispatched"`
	RemoteHits int64  `json:"remote_hits"`
	Fallbacks  int64  `json:"fallbacks"`
	Errors     int64  `json:"errors"`
	Shed       int64  `json:"shed"`
}

// WorkerStats is one worker's traffic and health as seen by the dispatch
// layer. Shedding means the worker's last answer was a 429 and its
// Retry-After window has not yet passed — it is demoted in ranking but,
// unlike an open circuit, still counts as alive.
type WorkerStats struct {
	Addr        string `json:"addr"`
	Sent        int64  `json:"sent"`
	Errors      int64  `json:"errors"`
	Shed        int64  `json:"shed"`
	CircuitOpen bool   `json:"circuit_open"`
	Shedding    bool   `json:"shedding"`
	// ConsecutiveFails is the worker's current failure streak (the circuit
	// opens at the dispatch layer's threshold) and LastError the text of
	// its most recent failed attempt — enough to diagnose a dark replica
	// from /healthz without grepping front-end logs. Both are omitted
	// while the worker is clean, so healthy output is unchanged.
	ConsecutiveFails int    `json:"consecutive_fails,omitempty"`
	LastError        string `json:"last_error,omitempty"`
}

// StatsReporter is the optional MemoBackend extension for observability:
// backends that keep store-level counters implement it, and consumers
// (dcserved's /healthz and /metrics) discover it by type assertion, so
// plain backends and test shims stay two-method simple.
type StatsReporter interface {
	BackendStats() BackendStats
}

// Engine runs characterization sweeps. It is safe for concurrent use; the
// memo table and core pools are shared across runs, so a long-lived engine
// amortises both simulation and allocation across every figure render.
type Engine struct {
	mu      sync.Mutex
	memo    *memo.Memo[Key, *uarch.Counters] // retaining: one simulation per key, shared forever
	pools   map[uint64]*sync.Pool            // reusable cores keyed by config fingerprint
	backend MemoBackend
	traces  *tracecache.Cache // optional capture/replay layer; nil = live generation
}

// NewEngine returns an empty engine.
func NewEngine() *Engine {
	e := &Engine{
		memo:  memo.New[Key, *uarch.Counters](),
		pools: make(map[uint64]*sync.Pool),
	}
	e.memo.SetName("sweep")
	return e
}

// SetMemoBackend installs (or, with nil, removes) the engine's second-level
// result cache. Keys already resolved through the in-memory memo are not
// re-read from the backend, so install it before the first Run.
func (e *Engine) SetMemoBackend(b MemoBackend) {
	e.mu.Lock()
	e.backend = b
	e.mu.Unlock()
}

// SetTraceCache installs (or, with nil, removes) a trace capture/replay
// cache. With one installed, each (workload, profile, trace length) is
// generated once and every other config in a sweep replays the cached
// columnar encoding — the same instruction stream bit for bit, so results
// are unchanged; only the generator work disappears. A nil-safe
// tracecache.New(0) also counts as absent.
func (e *Engine) SetTraceCache(c *tracecache.Cache) {
	e.mu.Lock()
	e.traces = c
	e.mu.Unlock()
}

// TraceCacheStats snapshots the installed trace cache's counters; ok is
// false when the engine runs without one.
func (e *Engine) TraceCacheStats() (s tracecache.Stats, ok bool) {
	e.mu.Lock()
	tc := e.traces
	e.mu.Unlock()
	if tc == nil {
		return tracecache.Stats{}, false
	}
	return tc.Stats(), true
}

// pool returns the core pool for the given config fingerprint. Pooled cores
// always carry the fingerprint's geometry, so Reset never rebuilds.
func (e *Engine) pool(fp uint64) *sync.Pool {
	e.mu.Lock()
	defer e.mu.Unlock()
	p, ok := e.pools[fp]
	if !ok {
		p = &sync.Pool{}
		e.pools[fp] = p
	}
	return p
}

// Run characterizes every job under cfg, capping each trace at maxInstrs
// (0 keeps each profile's own cap), and returns one counter file per job in
// job order. Cancellation is per-workload: a cancelled context stops new
// jobs from starting and Run returns ctx.Err(); in-flight jobs finish
// first. A job that fails (a panicking generator, say) yields a nil entry
// and its error — wrapped with the job name — joined into the returned
// error, while the remaining jobs still run.
//
// Returned counters may be shared with other callers through the memo
// table: treat them as read-only.
//
// A cfg carrying an explicit Predictor instance cannot be fanned out (every
// core would share, and race on, that one instance), so such sweeps run on
// a single worker with unpooled cores and no memo, preserving the legacy
// serial semantics exactly.
func (e *Engine) Run(ctx context.Context, jobs []Job, cfg uarch.Config, maxInstrs int64, opt RunOptions) ([]*uarch.Counters, error) {
	out := make([]*uarch.Counters, len(jobs))
	errs := make([]error, len(jobs))
	if cfg.Predictor != nil {
		for i, j := range jobs {
			if err := ctx.Err(); err != nil {
				return out, err
			}
			out[i], errs[i] = e.simulate(ctx, j, cfg, maxInstrs, nil)
		}
		return out, joinJobErrors(jobs, errs)
	}
	fp := cfg.Fingerprint()
	pool := e.pool(fp)
	err := Each(ctx, opt.workers(), len(jobs), func(i int) {
		if opt.NoMemo {
			out[i], errs[i] = e.simulate(ctx, jobs[i], cfg, maxInstrs, pool)
		} else {
			out[i], errs[i] = e.memoized(ctx, jobs[i], cfg, fp, maxInstrs, pool)
		}
	})
	if err != nil {
		return out, err
	}
	return out, joinJobErrors(jobs, errs)
}

// joinJobErrors wraps each failed job's error with its name.
func joinJobErrors(jobs []Job, errs []error) error {
	var wrapped []error
	for i, err := range errs {
		if err != nil {
			wrapped = append(wrapped, fmt.Errorf("%s: %w", jobs[i].Name, err))
		}
	}
	return errors.Join(wrapped...)
}

// Join waits for key's memoized or in-flight result without ever starting
// a simulation: ok is false immediately when the engine is not already
// computing (and has never computed) the key. This is the admission
// layer's shed-or-join peek — a saturated worker can still answer a
// request for a key it is already simulating. The wait is cancellable and
// refcounted like any other shared join.
func (e *Engine) Join(ctx context.Context, key Key) (*uarch.Counters, error, bool) {
	return e.memo.Join(ctx, key)
}

// memoized returns the cached counters for the job, simulating at most once
// per key even under concurrent callers. On an in-memory miss the backend
// (when installed) is consulted first, and a fresh simulation is written
// through to it — both inside the key's singleflight cell. A failed
// simulation is not retained (the shared memo's contract), so a later Run
// retries the job instead of replaying the failure.
//
// The cell runs under DoShared: callers whose contexts are cancelled leave
// the flight individually, and the simulation's own context is cancelled
// only when the last of them has gone — at which point simulate's reader
// wrapper stops the core between batches and the partial result is
// discarded, never cached and never written through.
func (e *Engine) memoized(ctx context.Context, job Job, cfg uarch.Config, fp uint64, maxInstrs int64, pool *sync.Pool) (*uarch.Counters, error) {
	key := Key{Name: job.Name, Profile: job.Profile, ConfigFP: fp, MaxInstrs: maxInstrs}
	e.mu.Lock()
	backend := e.backend
	e.mu.Unlock()
	return e.memo.DoShared(ctx, key, func(ctx context.Context) (*uarch.Counters, error) {
		if backend != nil {
			sp := obs.Start(ctx, "backend.load", "workload", job.Name)
			c, ok := backend.Load(ctx, key)
			sp.End("hit", strconv.FormatBool(ok))
			if ok {
				return c, nil
			}
		}
		c, err := e.simulate(ctx, job, cfg, maxInstrs, pool)
		if backend != nil && err == nil {
			sp := obs.Start(ctx, "backend.store", "workload", job.Name)
			backend.Store(ctx, key, c)
			sp.End()
		}
		return c, err
	})
}

// simulate runs one job through a core drawn from pool (or a fresh core
// when pool is nil), returning a private copy of the counter file so the
// core can be recycled immediately. With a trace cache installed the
// instruction stream comes from a cached capture (replayed zero-copy, no
// generator goroutine) whenever the cache can hold it; otherwise — no
// cache, over-budget trace — it is generated live. Panics come back as
// errors: a generator panic arrives wrapped in memtrace.TracePanic after
// its goroutine has exited (the cache surfaces capture-time panics as
// plain errors with the same text), while a core-model panic over a live
// stream leaves the generator goroutine mid-trace, so the abandoned
// reader is drained in the background to let that goroutine finish and be
// collected; a replayed stream has no goroutine to drain. A cancelled
// context stops the core between read batches (the trace is truncated to
// an EOF), the partial counters are discarded, and ctx.Err() is returned.
func (e *Engine) simulate(ctx context.Context, job Job, cfg uarch.Config, maxInstrs int64, pool *sync.Pool) (counters *uarch.Counters, err error) {
	p := job.Profile
	if maxInstrs > 0 {
		p.MaxInstrs = maxInstrs
	}
	e.mu.Lock()
	tc := e.traces
	e.mu.Unlock()
	var r memtrace.Reader
	live := true
	source := "live"
	if tc != nil {
		var replay bool
		r, replay, err = tc.Reader(ctx, job.Name, p, job.Gen)
		if err != nil {
			return nil, err
		}
		live = !replay
		if replay {
			source = "replay"
		}
	} else {
		r = memtrace.NewReader(p, job.Gen)
	}
	sp := obs.Start(ctx, "simulate", "workload", job.Name, "source", source)
	defer sp.End()
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		// Either way the core is abandoned rather than repooled: it may
		// hold partial state, and Reset on next Get would not run.
		if tp, ok := rec.(memtrace.TracePanic); ok {
			err = fmt.Errorf("trace generation panicked: %v", tp.Val)
			return
		}
		if live {
			go drain(r)
		}
		err = fmt.Errorf("core model panicked: %v", rec)
	}()
	// The core consumes the trace through a cancellation-aware wrapper:
	// between batches it checks ctx and, once cancelled, feeds the core an
	// EOF — the only clean way to stop a simulation mid-trace without
	// teaching the core model about contexts.
	cr := &cancelReader{ctx: ctx, r: r}
	var c *uarch.Core
	if pool != nil {
		if v := pool.Get(); v != nil {
			c = v.(*uarch.Core)
			c.Reset(cfg)
		}
	}
	if c == nil {
		c = uarch.NewCore(cfg)
	}
	snap := *c.Run(cr)
	if cr.stopped {
		// Cancelled mid-trace: the truncated counters are garbage, the
		// live generator goroutine (if any) is still parked mid-stream,
		// and the core holds partial state — drain the one, abandon the
		// other, and surface the cancellation instead of a result.
		if live {
			go drain(r)
		}
		return nil, ctx.Err()
	}
	if pool != nil {
		pool.Put(c)
	}
	return &snap, nil
}

// cancelReader feeds a trace to the core until its context is cancelled,
// at which point Read reports EOF and stopped latches. Used only from a
// single simulation goroutine; no locking needed.
type cancelReader struct {
	ctx     context.Context
	r       memtrace.Reader
	stopped bool
}

func (cr *cancelReader) Read(buf []memtrace.Inst) int {
	if cr.stopped {
		return 0
	}
	if cr.ctx.Err() != nil {
		cr.stopped = true
		return 0
	}
	return cr.r.Read(buf)
}

// drain consumes an abandoned trace to completion (bounded by the
// profile's MaxInstrs cap) so the generator goroutine can exit instead of
// blocking forever on a full channel.
func drain(r memtrace.Reader) {
	defer func() { recover() }() // the generator may itself panic at the end
	var buf [512]memtrace.Inst
	for r.Read(buf[:]) != 0 {
	}
}

// Each runs fn(i) for i in [0, n) on a pool of at most workers goroutines,
// handing out indices in order. A cancelled ctx stops new indices from
// being claimed and Each returns ctx.Err() once in-flight calls finish;
// per-index failures belong in caller-side slices, not in fn's control
// flow. Each returns nil when every index ran.
func Each(ctx context.Context, workers, n int, fn func(i int)) error {
	if n == 0 {
		return ctx.Err()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return ctx.Err()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// Collect fans fn(i) for i in [0, n) over at most workers goroutines
// (<= 0 means runtime.GOMAXPROCS(0), matching the engine's and the -j
// flag's convention) and gathers results in index order. Cancellation
// returns ctx.Err() alone; otherwise every index runs and the first
// per-index error (by index) is returned alongside the partial results.
func Collect[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([]T, n)
	errs := make([]error, n)
	if err := Each(ctx, workers, n, func(i int) {
		out[i], errs[i] = fn(i)
	}); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}
