// Package dfs models an HDFS-like distributed file system on the simulated
// cluster: fixed-size blocks, n-way replication, locality-aware reads and
// pipelined writes. Files carry sizes and placement only — record contents
// are produced by the MapReduce input formats — so the package's job is to
// charge realistic disk and network time and to answer locality queries for
// the scheduler.
package dfs

import (
	"fmt"

	"dcbench/internal/cluster"
	"dcbench/internal/sim"
)

// Block is one replicated unit of a file.
type Block struct {
	ID       int
	Size     int64
	Replicas []int // node IDs; Replicas[0] is the primary
}

// File is an immutable sequence of blocks.
type File struct {
	Name   string
	Size   int64
	Blocks []Block
}

// DFS is the file-system name node plus data-node accounting.
type DFS struct {
	Cluster     *cluster.Cluster
	BlockSize   int64
	Replication int

	files     map[string]*File
	nextBlock int
	nextNode  int
	rng       *sim.RNG
}

// New creates a DFS over the cluster. Replication is capped at the node
// count.
func New(c *cluster.Cluster, blockSize int64, replication int, seed uint64) *DFS {
	if blockSize <= 0 {
		panic("dfs: block size must be positive")
	}
	if replication < 1 {
		replication = 1
	}
	if replication > len(c.Nodes) {
		replication = len(c.Nodes)
	}
	return &DFS{
		Cluster:     c,
		BlockSize:   blockSize,
		Replication: replication,
		files:       make(map[string]*File),
		rng:         sim.NewRNG(seed),
	}
}

// Lookup returns a file by name.
func (d *DFS) Lookup(name string) (*File, bool) {
	f, ok := d.files[name]
	return f, ok
}

// placeReplicas picks Replication distinct nodes, the first by round-robin
// (or pinned to primary if >= 0), the rest pseudo-randomly.
func (d *DFS) placeReplicas(primary int) []int {
	n := len(d.Cluster.Nodes)
	if primary < 0 {
		primary = d.nextNode % n
		d.nextNode++
	}
	replicas := []int{primary}
	for len(replicas) < d.Replication {
		cand := d.rng.Intn(n)
		dup := false
		for _, r := range replicas {
			if r == cand {
				dup = true
				break
			}
		}
		if !dup {
			replicas = append(replicas, cand)
		}
	}
	return replicas
}

func (d *DFS) newBlocks(size int64, primary int) []Block {
	var blocks []Block
	for off := int64(0); off < size; off += d.BlockSize {
		bs := d.BlockSize
		if size-off < bs {
			bs = size - off
		}
		blocks = append(blocks, Block{
			ID:       d.nextBlock,
			Size:     bs,
			Replicas: d.placeReplicas(primary),
		})
		d.nextBlock++
	}
	return blocks
}

// AddFile registers a pre-existing input file of the given size without
// charging any I/O (it models data loaded before the measured run, as the
// paper's inputs are). Blocks are spread round-robin across nodes.
func (d *DFS) AddFile(name string, size int64) *File {
	if _, ok := d.files[name]; ok {
		panic(fmt.Sprintf("dfs: file %q already exists", name))
	}
	f := &File{Name: name, Size: size, Blocks: d.newBlocks(size, -1)}
	d.files[name] = f
	return f
}

// Write creates a file of the given size written from writerNode, charging
// the local disk write synchronously and the replication pipeline (network
// hop plus remote disk write per extra replica) asynchronously, as HDFS's
// write pipeline overlaps with the writer.
func (d *DFS) Write(p *sim.Process, name string, size int64, writerNode int) *File {
	if old, ok := d.files[name]; ok {
		// Overwrite: keep it simple, replace metadata.
		_ = old
		delete(d.files, name)
	}
	f := &File{Name: name, Size: size, Blocks: d.newBlocks(size, writerNode)}
	d.files[name] = f
	c := d.Cluster
	for _, b := range f.Blocks {
		b := b
		c.Node(b.Replicas[0]).WriteDisk(p, b.Size)
		if len(b.Replicas) > 1 {
			c.Eng.Go(func(bp *sim.Process) {
				prev := b.Replicas[0]
				for _, r := range b.Replicas[1:] {
					c.Send(bp, prev, r, b.Size)
					c.Node(r).WriteDisk(bp, b.Size)
					prev = r
				}
			})
		}
	}
	return f
}

// HasLocalReplica reports whether block i of f has a replica on node.
func (d *DFS) HasLocalReplica(f *File, i, node int) bool {
	for _, r := range f.Blocks[i].Replicas {
		if r == node {
			return true
		}
	}
	return false
}

// ReadBlock charges reading block i of f from readerNode: a local disk read
// when a replica is local, otherwise a remote disk read plus a network
// transfer from the first replica.
func (d *DFS) ReadBlock(p *sim.Process, f *File, i, readerNode int) {
	b := f.Blocks[i]
	if d.HasLocalReplica(f, i, readerNode) {
		d.Cluster.Node(readerNode).ReadDisk(p, b.Size)
		return
	}
	src := b.Replicas[0]
	d.Cluster.Node(src).ReadDisk(p, b.Size)
	d.Cluster.Send(p, src, readerNode, b.Size)
}
