package dfs

import (
	"testing"
	"testing/quick"

	"dcbench/internal/cluster"
	"dcbench/internal/sim"
)

func newTestDFS(nodes int, blockSize int64, repl int) *DFS {
	c := cluster.New(cluster.DefaultConfig(nodes), 99)
	return New(c, blockSize, repl, 7)
}

func TestAddFileBlockCount(t *testing.T) {
	d := newTestDFS(4, 100, 3)
	f := d.AddFile("in", 250)
	if len(f.Blocks) != 3 {
		t.Fatalf("blocks = %d, want 3", len(f.Blocks))
	}
	if f.Blocks[0].Size != 100 || f.Blocks[2].Size != 50 {
		t.Fatalf("block sizes = %d,%d,%d", f.Blocks[0].Size, f.Blocks[1].Size, f.Blocks[2].Size)
	}
}

func TestReplicasDistinct(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		c := cluster.New(cluster.DefaultConfig(5), 1)
		d := New(c, 64, 3, seed)
		f := d.AddFile("f", 64*20)
		for _, b := range f.Blocks {
			if len(b.Replicas) != 3 {
				return false
			}
			seen := map[int]bool{}
			for _, r := range b.Replicas {
				if r < 0 || r >= 5 || seen[r] {
					return false
				}
				seen[r] = true
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReplicationCappedByNodes(t *testing.T) {
	d := newTestDFS(2, 64, 3)
	if d.Replication != 2 {
		t.Fatalf("replication = %d, want capped to 2", d.Replication)
	}
}

func TestRoundRobinSpread(t *testing.T) {
	d := newTestDFS(4, 64, 1)
	f := d.AddFile("in", 64*8)
	counts := map[int]int{}
	for _, b := range f.Blocks {
		counts[b.Replicas[0]]++
	}
	for n := 0; n < 4; n++ {
		if counts[n] != 2 {
			t.Fatalf("primary spread = %v, want 2 per node", counts)
		}
	}
}

func TestWriteChargesLocalDiskAndReplication(t *testing.T) {
	d := newTestDFS(3, 1000, 3)
	c := d.Cluster
	c.Eng.Go(func(p *sim.Process) {
		d.Write(p, "out", 1000, 0)
	})
	c.Eng.Run()
	// All three nodes should have written one block.
	var totalBytes int64
	for _, n := range c.Nodes {
		totalBytes += n.DiskWriteBytes
	}
	if totalBytes != 3000 {
		t.Fatalf("replicated write bytes = %d, want 3000", totalBytes)
	}
	if c.Node(0).DiskWriteBytes != 1000 {
		t.Fatalf("writer local bytes = %d, want 1000", c.Node(0).DiskWriteBytes)
	}
	if c.TotalNetBytes() != 2000 { // two pipeline hops
		t.Fatalf("pipeline net bytes = %d, want 2000", c.TotalNetBytes())
	}
}

func TestLocalReadUsesNoNetwork(t *testing.T) {
	d := newTestDFS(4, 100, 1)
	f := d.AddFile("in", 400)
	c := d.Cluster
	// Block 1 primary is node 1 under round-robin with replication 1.
	c.Eng.Go(func(p *sim.Process) {
		d.ReadBlock(p, f, 1, 1)
	})
	c.Eng.Run()
	if c.TotalNetBytes() != 0 {
		t.Fatalf("local read used network: %d bytes", c.TotalNetBytes())
	}
	if c.Node(1).DiskReadBytes != 100 {
		t.Fatalf("local read bytes = %d, want 100", c.Node(1).DiskReadBytes)
	}
}

func TestRemoteReadUsesNetwork(t *testing.T) {
	d := newTestDFS(4, 100, 1)
	f := d.AddFile("in", 400)
	c := d.Cluster
	c.Eng.Go(func(p *sim.Process) {
		d.ReadBlock(p, f, 0, 3) // block 0 lives on node 0
	})
	c.Eng.Run()
	if c.TotalNetBytes() != 100 {
		t.Fatalf("remote read net bytes = %d, want 100", c.TotalNetBytes())
	}
	if c.Node(0).DiskReadBytes != 100 {
		t.Fatalf("remote source disk bytes = %d", c.Node(0).DiskReadBytes)
	}
}

func TestHasLocalReplica(t *testing.T) {
	d := newTestDFS(4, 100, 2)
	f := d.AddFile("in", 100)
	found := 0
	for n := 0; n < 4; n++ {
		if d.HasLocalReplica(f, 0, n) {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("local replica count = %d, want 2", found)
	}
}

func TestLookup(t *testing.T) {
	d := newTestDFS(2, 100, 1)
	d.AddFile("a", 50)
	if _, ok := d.Lookup("a"); !ok {
		t.Fatal("Lookup(a) failed")
	}
	if _, ok := d.Lookup("b"); ok {
		t.Fatal("Lookup(b) should fail")
	}
}
