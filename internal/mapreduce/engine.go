package mapreduce

import (
	"fmt"
	"sort"

	"dcbench/internal/cluster"
	"dcbench/internal/dfs"
	"dcbench/internal/sim"
)

// RuntimeConfig holds the Hadoop deployment knobs from the paper's Section
// III-B: 24 map and 12 reduce task slots per slave, plus task startup and
// heartbeat costs typical of Hadoop 1.x.
type RuntimeConfig struct {
	MapSlotsPerNode    int
	ReduceSlotsPerNode int
	TaskStartup        float64 // seconds: JVM spawn + task init
	Heartbeat          float64 // seconds: scheduling delay per assignment
}

// DefaultRuntimeConfig mirrors the paper's Hadoop settings.
func DefaultRuntimeConfig() RuntimeConfig {
	return RuntimeConfig{
		MapSlotsPerNode:    24,
		ReduceSlotsPerNode: 12,
		TaskStartup:        1.0,
		Heartbeat:          0.3,
	}
}

// Job describes one MapReduce job.
type Job struct {
	Name        string
	Input       InputFormat
	InputFile   *dfs.File // optional: block placement for locality; nil = no locality
	Mapper      Mapper
	Combiner    Reducer // optional, applied to per-task map output
	Reducer     Reducer // nil means identity
	NumReducers int
	OutputFile  string // DFS output name; empty = keep output in memory only
	Partition   Partitioner
	Cost        CostModel
}

// Counters aggregates a finished job's accounting.
type Counters struct {
	MapTasks         int
	ReduceTasks      int
	DataLocalMaps    int
	MapInputRecords  int64
	MapOutputRecords int64
	OutputRecords    int64
	InputSimBytes    int64
	ShuffleSimBytes  int64
	OutputSimBytes   int64
}

// Result is a finished job: real output records plus simulated accounting.
type Result struct {
	Job      *Job
	Output   [][]KV // output per reducer, each sorted by key
	Start    float64
	Finish   float64
	Counters Counters
}

// Makespan is the job's simulated duration.
func (r *Result) Makespan() float64 { return r.Finish - r.Start }

// Flat returns all output records merged in reducer order.
func (r *Result) Flat() []KV {
	var out []KV
	for _, part := range r.Output {
		out = append(out, part...)
	}
	return out
}

// Runtime runs jobs on one cluster + DFS pair. Jobs run sequentially on the
// shared virtual clock, so multi-job workloads (Hive plans, iterative
// algorithms) accumulate a combined makespan.
type Runtime struct {
	C   *cluster.Cluster
	D   *dfs.DFS
	Cfg RuntimeConfig
}

// NewRuntime creates a runtime with the given deployment configuration.
func NewRuntime(c *cluster.Cluster, d *dfs.DFS, cfg RuntimeConfig) *Runtime {
	return &Runtime{C: c, D: d, Cfg: cfg}
}

// mapTaskOut is a map task's partitioned, locally "spilled" output.
type mapTaskOut struct {
	node       int
	partitions [][]KV  // real records per reduce partition
	simBytes   []int64 // simulated bytes per partition
}

// Run executes the job to completion and returns its result. It drives the
// cluster's event engine until the job (and background DFS replication)
// drains, so it must not be called concurrently with another Run on the same
// cluster.
func (rt *Runtime) Run(job *Job) (*Result, error) {
	if job.Input == nil || job.Mapper == nil {
		return nil, fmt.Errorf("mapreduce: job %q needs input and mapper", job.Name)
	}
	if job.NumReducers <= 0 {
		job.NumReducers = len(rt.C.Nodes)
	}
	if job.Partition == nil {
		job.Partition = HashPartition
	}
	reducer := job.Reducer
	if reducer == nil {
		reducer = IdentityReducer
	}

	res := &Result{Job: job, Start: rt.C.Eng.Now()}
	nSplits := job.Input.NumSplits()
	res.Counters.MapTasks = nSplits
	res.Counters.ReduceTasks = job.NumReducers

	// ---- Map phase ----
	mapOuts := make([]*mapTaskOut, nSplits)
	pendingMaps := make([]int, nSplits)
	for i := range pendingMaps {
		pendingMaps[i] = i
	}
	var mapWG sim.WaitGroup
	mapWG.Add(nSplits)

	takeMap := func(node int) (int, bool) {
		if len(pendingMaps) == 0 {
			return 0, false
		}
		pick := 0
		if job.InputFile != nil {
			for idx, split := range pendingMaps {
				if split < len(job.InputFile.Blocks) && rt.D.HasLocalReplica(job.InputFile, split, node) {
					pick = idx
					res.Counters.DataLocalMaps++
					break
				}
			}
		}
		split := pendingMaps[pick]
		pendingMaps = append(pendingMaps[:pick], pendingMaps[pick+1:]...)
		return split, true
	}

	runMapTask := func(p *sim.Process, node, split int) {
		n := rt.C.Node(node)
		p.Sleep(rt.Cfg.TaskStartup)
		records, simBytes := job.Input.Split(split)
		res.Counters.InputSimBytes += simBytes

		// Read the split: local disk or remote replica via DFS.
		if job.InputFile != nil && split < len(job.InputFile.Blocks) {
			rt.D.ReadBlock(p, job.InputFile, split, node)
		} else {
			n.ReadDisk(p, simBytes)
		}

		// Charge CPU, then run the real mapper.
		n.Compute(p, float64(simBytes)*job.Cost.MapCPUPerByte)

		parts := make([][]KV, job.NumReducers)
		var realIn, realOut int64
		for _, kv := range records {
			realIn += kv.Bytes()
			job.Mapper.Map(kv, func(k, v string) {
				r := job.Partition(k, job.NumReducers)
				parts[r] = append(parts[r], KV{k, v})
			})
		}
		res.Counters.MapInputRecords += int64(len(records))
		if job.Combiner != nil {
			for r := range parts {
				parts[r] = combine(parts[r], job.Combiner)
			}
		}
		simOut := make([]int64, job.NumReducers)
		for r := range parts {
			var pb int64
			for _, kv := range parts[r] {
				pb += kv.Bytes()
			}
			realOut += pb
			simOut[r] = pb
		}
		res.Counters.MapOutputRecords += countRecords(parts)

		// Scale the real output bytes up to simulated bytes.
		var scale float64
		switch {
		case job.Cost.OutputRatio > 0 && realOut > 0:
			scale = float64(simBytes) * job.Cost.OutputRatio / float64(realOut)
		case realIn > 0 && realOut > 0:
			scale = float64(simBytes) / float64(realIn)
		default:
			scale = 1
		}
		var totalSimOut int64
		for r := range simOut {
			simOut[r] = int64(float64(simOut[r]) * scale)
			totalSimOut += simOut[r]
		}
		// Spill the map output to the local disk, as Hadoop does.
		if totalSimOut > 0 {
			n.WriteDisk(p, totalSimOut)
		}
		mapOuts[split] = &mapTaskOut{node: node, partitions: parts, simBytes: simOut}
		mapWG.Done(rt.C.Eng)
	}

	// Map workers: one process per map slot per node. Workers are
	// registered slot-by-slot across nodes (not node-by-node) so that
	// same-instant task grabs spread over the cluster the way Hadoop's
	// heartbeat-driven assignment does, letting the locality preference
	// in takeMap actually bite.
	for s := 0; s < rt.Cfg.MapSlotsPerNode; s++ {
		for nodeID := range rt.C.Nodes {
			nodeID := nodeID
			rt.C.Eng.Go(func(p *sim.Process) {
				for {
					p.Sleep(rt.Cfg.Heartbeat)
					split, ok := takeMap(nodeID)
					if !ok {
						return
					}
					runMapTask(p, nodeID, split)
				}
			})
		}
	}

	// ---- Reduce phase ----
	output := make([][]KV, job.NumReducers)
	pendingReduces := make([]int, job.NumReducers)
	for i := range pendingReduces {
		pendingReduces[i] = i
	}
	var reduceWG sim.WaitGroup
	reduceWG.Add(job.NumReducers)

	takeReduce := func() (int, bool) {
		if len(pendingReduces) == 0 {
			return 0, false
		}
		r := pendingReduces[0]
		pendingReduces = pendingReduces[1:]
		return r, true
	}

	runReduceTask := func(p *sim.Process, node, r int) {
		n := rt.C.Node(node)
		p.Sleep(rt.Cfg.TaskStartup)

		// Shuffle: fetch partition r of every map task's output.
		var recs []KV
		var simIn int64
		for _, mo := range mapOuts {
			recs = append(recs, mo.partitions[r]...)
			sb := mo.simBytes[r]
			simIn += sb
			if sb > 0 {
				rt.C.Node(mo.node).ReadDisk(p, sb)
				rt.C.Send(p, mo.node, node, sb)
			}
		}
		res.Counters.ShuffleSimBytes += simIn

		// Merge-sort and group for real; charge the reduce CPU.
		sort.SliceStable(recs, func(i, j int) bool { return recs[i].Key < recs[j].Key })
		n.Compute(p, float64(simIn)*job.Cost.ReduceCPUPerByte)

		var out []KV
		var realIn, realOut int64
		for _, kv := range recs {
			realIn += kv.Bytes()
		}
		groupedReduce(recs, reducer, func(k, v string) {
			out = append(out, KV{k, v})
			realOut += int64(len(k) + len(v))
		})
		output[r] = out
		res.Counters.OutputRecords += int64(len(out))

		var simOut int64
		if realIn > 0 {
			simOut = int64(float64(simIn) * float64(realOut) / float64(realIn))
		}
		res.Counters.OutputSimBytes += simOut
		if job.OutputFile != "" && simOut > 0 {
			rt.D.Write(p, fmt.Sprintf("%s.part-%05d", job.OutputFile, r), simOut, node)
		}
		reduceWG.Done(rt.C.Eng)
	}

	// Reduce workers start once all maps finish (slowstart = 1.0).
	rt.C.Eng.Go(func(p *sim.Process) {
		mapWG.Wait(p)
		for s := 0; s < rt.Cfg.ReduceSlotsPerNode; s++ {
			for nodeID := range rt.C.Nodes {
				nodeID := nodeID
				rt.C.Eng.Go(func(rp *sim.Process) {
					for {
						rp.Sleep(rt.Cfg.Heartbeat)
						r, ok := takeReduce()
						if !ok {
							return
						}
						runReduceTask(rp, nodeID, r)
					}
				})
			}
		}
	})

	rt.C.Eng.Run()
	res.Output = output
	res.Finish = rt.C.Eng.Now()
	return res, nil
}

func countRecords(parts [][]KV) int64 {
	var n int64
	for _, p := range parts {
		n += int64(len(p))
	}
	return n
}

// combine groups records by key and applies the combiner, preserving
// deterministic key order.
func combine(recs []KV, c Reducer) []KV {
	if len(recs) == 0 {
		return recs
	}
	sorted := make([]KV, len(recs))
	copy(sorted, recs)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var out []KV
	groupedReduce(sorted, c, func(k, v string) { out = append(out, KV{k, v}) })
	return out
}

// groupedReduce walks key-sorted records, invoking the reducer once per key.
func groupedReduce(sorted []KV, r Reducer, emit Emit) {
	i := 0
	for i < len(sorted) {
		j := i
		for j < len(sorted) && sorted[j].Key == sorted[i].Key {
			j++
		}
		values := make([]string, 0, j-i)
		for k := i; k < j; k++ {
			values = append(values, sorted[k].Value)
		}
		r.Reduce(sorted[i].Key, values, emit)
		i = j
	}
}
