package mapreduce

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"dcbench/internal/cluster"
	"dcbench/internal/dfs"
)

// testRuntime builds a small cluster+dfs+runtime for unit tests.
func testRuntime(nodes int) *Runtime {
	c := cluster.New(cluster.DefaultConfig(nodes), 42)
	d := dfs.New(c, 64<<20, 3, 42)
	cfg := DefaultRuntimeConfig()
	cfg.MapSlotsPerNode = 4
	cfg.ReduceSlotsPerNode = 2
	return NewRuntime(c, d, cfg)
}

// wordsInput produces text splits for word counting.
func wordsInput(splits int, text ...string) *SliceInput {
	in := &SliceInput{}
	for i := 0; i < splits; i++ {
		var recs []KV
		for j, line := range text {
			recs = append(recs, KV{fmt.Sprintf("s%d-l%d", i, j), line})
		}
		in.Splits = append(in.Splits, recs)
	}
	return in
}

var wordCountMapper = MapperFunc(func(kv KV, emit Emit) {
	for _, w := range strings.Fields(kv.Value) {
		emit(w, "1")
	}
})

var sumReducer = ReducerFunc(func(key string, values []string, emit Emit) {
	total := 0
	for _, v := range values {
		n, _ := strconv.Atoi(v)
		total += n
	}
	emit(key, strconv.Itoa(total))
})

func TestWordCountCorrectness(t *testing.T) {
	rt := testRuntime(4)
	job := &Job{
		Name:        "wordcount",
		Input:       wordsInput(3, "a b a", "b c"),
		Mapper:      wordCountMapper,
		Combiner:    sumReducer,
		Reducer:     sumReducer,
		NumReducers: 2,
	}
	res, err := rt.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, kv := range res.Flat() {
		got[kv.Key] = kv.Value
	}
	want := map[string]string{"a": "6", "b": "6", "c": "3"}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("count[%s] = %s, want %s (all: %v)", k, got[k], v, got)
		}
	}
}

func TestMakespanPositiveAndOrdered(t *testing.T) {
	rt := testRuntime(2)
	job := &Job{
		Name:   "j1",
		Input:  wordsInput(2, "x y"),
		Mapper: wordCountMapper,
	}
	r1, err := rt.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Makespan() <= 0 {
		t.Fatalf("makespan = %v, want > 0", r1.Makespan())
	}
	job2 := &Job{Name: "j2", Input: wordsInput(1, "z"), Mapper: wordCountMapper}
	r2, err := rt.Run(job2)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Start < r1.Finish {
		t.Fatalf("second job started at %v before first finished at %v", r2.Start, r1.Finish)
	}
}

func TestIdentityReducerDefault(t *testing.T) {
	rt := testRuntime(2)
	job := &Job{
		Name:        "identity",
		Input:       &SliceInput{Splits: [][]KV{{{"k1", "v1"}, {"k2", "v2"}}}},
		Mapper:      MapperFunc(func(kv KV, emit Emit) { emit(kv.Key, kv.Value) }),
		NumReducers: 1,
	}
	res, err := rt.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Flat()
	if len(out) != 2 {
		t.Fatalf("output = %v, want 2 records", out)
	}
	if out[0].Key != "k1" || out[1].Key != "k2" {
		t.Fatalf("output not key-sorted: %v", out)
	}
}

func TestHashPartitionStableAndInRange(t *testing.T) {
	if err := quick.Check(func(key string, rr uint8) bool {
		r := int(rr%16) + 1
		p1 := HashPartition(key, r)
		p2 := HashPartition(key, r)
		return p1 == p2 && p1 >= 0 && p1 < r
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCustomPartitioner(t *testing.T) {
	rt := testRuntime(2)
	job := &Job{
		Name:        "range",
		Input:       &SliceInput{Splits: [][]KV{{{"a", ""}, {"z", ""}, {"m", ""}}}},
		Mapper:      MapperFunc(func(kv KV, emit Emit) { emit(kv.Key, kv.Value) }),
		NumReducers: 2,
		Partition: func(key string, r int) int {
			if key < "n" {
				return 0
			}
			return 1
		},
	}
	res, err := rt.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output[0]) != 2 || len(res.Output[1]) != 1 {
		t.Fatalf("partition sizes = %d,%d want 2,1", len(res.Output[0]), len(res.Output[1]))
	}
	// Total order: everything in partition 0 < everything in partition 1.
	if res.Output[0][1].Key >= res.Output[1][0].Key {
		t.Fatal("range partitioning violated total order")
	}
}

func TestCombinerReducesShuffleRecords(t *testing.T) {
	mk := func(withCombiner bool) *Result {
		rt := testRuntime(2)
		job := &Job{
			Name:        "comb",
			Input:       wordsInput(2, "w w w w w w w w"),
			Mapper:      wordCountMapper,
			Reducer:     sumReducer,
			NumReducers: 1,
		}
		if withCombiner {
			job.Combiner = sumReducer
		}
		res, err := rt.Run(job)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	with, without := mk(true), mk(false)
	if with.Counters.MapOutputRecords >= without.Counters.MapOutputRecords {
		t.Fatalf("combiner did not shrink map output: %d vs %d",
			with.Counters.MapOutputRecords, without.Counters.MapOutputRecords)
	}
	if with.Flat()[0].Value != without.Flat()[0].Value {
		t.Fatal("combiner changed the result")
	}
}

func TestDistributedMatchesSequential(t *testing.T) {
	// Property: the engine's answer equals a straightforward sequential
	// map+group+reduce, regardless of node/reducer counts.
	texts := []string{"the quick brown fox", "jumps over the lazy dog", "the end"}
	seq := map[string]int{}
	for _, line := range texts {
		for _, w := range strings.Fields(line) {
			seq[w]++
		}
	}
	for _, nodes := range []int{1, 3, 5} {
		for _, reducers := range []int{1, 2, 7} {
			rt := testRuntime(nodes)
			job := &Job{
				Name:        "wc",
				Input:       wordsInput(1, texts...),
				Mapper:      wordCountMapper,
				Reducer:     sumReducer,
				NumReducers: reducers,
			}
			res, err := rt.Run(job)
			if err != nil {
				t.Fatal(err)
			}
			got := map[string]int{}
			for _, kv := range res.Flat() {
				n, _ := strconv.Atoi(kv.Value)
				got[kv.Key] = n
			}
			if len(got) != len(seq) {
				t.Fatalf("nodes=%d reducers=%d: %d keys, want %d", nodes, reducers, len(got), len(seq))
			}
			for k, v := range seq {
				if got[k] != v {
					t.Fatalf("nodes=%d reducers=%d: count[%s]=%d, want %d", nodes, reducers, k, got[k], v)
				}
			}
		}
	}
}

func TestSimulatedBytesScale(t *testing.T) {
	rt := testRuntime(2)
	// One split of tiny real records standing for 1 GB.
	in := &SliceInput{
		Splits:   [][]KV{{{"k", strings.Repeat("v", 100)}}},
		SimBytes: []int64{1 << 30},
	}
	job := &Job{
		Name:        "scaled",
		Input:       in,
		Mapper:      MapperFunc(func(kv KV, emit Emit) { emit(kv.Key, kv.Value) }),
		NumReducers: 1,
	}
	res, err := rt.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.InputSimBytes != 1<<30 {
		t.Fatalf("sim input bytes = %d, want 1 GiB", res.Counters.InputSimBytes)
	}
	// Identity pipeline: shuffle should carry roughly the input size.
	if res.Counters.ShuffleSimBytes < (1<<30)*9/10 {
		t.Fatalf("shuffle sim bytes = %d, want ~1 GiB", res.Counters.ShuffleSimBytes)
	}
}

func TestDiskActivityRecorded(t *testing.T) {
	rt := testRuntime(2)
	in := &SliceInput{
		Splits:   [][]KV{{{"k", "v"}}},
		SimBytes: []int64{10 << 20},
	}
	job := &Job{
		Name:        "io",
		Input:       in,
		Mapper:      MapperFunc(func(kv KV, emit Emit) { emit(kv.Key, kv.Value) }),
		NumReducers: 1,
		OutputFile:  "out",
	}
	if _, err := rt.Run(job); err != nil {
		t.Fatal(err)
	}
	if rt.C.TotalDiskWriteBytes() == 0 {
		t.Fatal("no disk writes recorded")
	}
	if _, ok := rt.D.Lookup("out.part-00000"); !ok {
		t.Fatal("output file not created in DFS")
	}
}

func TestLocalityPreferred(t *testing.T) {
	c := cluster.New(cluster.DefaultConfig(4), 42)
	d := dfs.New(c, 10<<20, 1, 42)
	f := d.AddFile("input", 8*(10<<20)) // 8 blocks round-robin over 4 nodes
	cfg := DefaultRuntimeConfig()
	cfg.MapSlotsPerNode = 2
	cfg.ReduceSlotsPerNode = 1
	rt := NewRuntime(c, d, cfg)

	in := &SliceInput{}
	for i := 0; i < 8; i++ {
		in.Splits = append(in.Splits, []KV{{fmt.Sprintf("k%d", i), "v"}})
		in.SimBytes = append(in.SimBytes, 10<<20)
	}
	job := &Job{
		Name:        "local",
		Input:       in,
		InputFile:   f,
		Mapper:      MapperFunc(func(kv KV, emit Emit) { emit(kv.Key, kv.Value) }),
		NumReducers: 1,
	}
	res, err := rt.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.DataLocalMaps < 6 {
		t.Fatalf("data-local maps = %d of 8, want >= 6", res.Counters.DataLocalMaps)
	}
}

func TestMissingMapperRejected(t *testing.T) {
	rt := testRuntime(1)
	if _, err := rt.Run(&Job{Name: "bad", Input: wordsInput(1, "x")}); err == nil {
		t.Fatal("expected error for missing mapper")
	}
}

func TestOutputSortedWithinReducer(t *testing.T) {
	rt := testRuntime(2)
	job := &Job{
		Name:        "sorted",
		Input:       wordsInput(2, "d c b a e g f"),
		Mapper:      wordCountMapper,
		Reducer:     sumReducer,
		NumReducers: 1,
	}
	res, err := rt.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 0)
	for _, kv := range res.Output[0] {
		keys = append(keys, kv.Key)
	}
	if !sort.StringsAreSorted(keys) {
		t.Fatalf("reducer output not sorted: %v", keys)
	}
}
