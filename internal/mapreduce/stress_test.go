package mapreduce

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"dcbench/internal/cluster"
	"dcbench/internal/dfs"
	"dcbench/internal/sim"
)

// TestSkewedKeysSingleHotReducer: one key holding most records must not
// break grouping or counting (the classic reducer-skew case).
func TestSkewedKeysSingleHotReducer(t *testing.T) {
	rt := testRuntime(4)
	var recs []KV
	for i := 0; i < 500; i++ {
		recs = append(recs, KV{"hot", "1"})
	}
	recs = append(recs, KV{"cold", "1"})
	job := &Job{
		Name:        "skew",
		Input:       &SliceInput{Splits: [][]KV{recs}},
		Mapper:      MapperFunc(func(kv KV, emit Emit) { emit(kv.Key, kv.Value) }),
		Reducer:     sumReducer,
		NumReducers: 8,
	}
	res, err := rt.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, kv := range res.Flat() {
		got[kv.Key] = kv.Value
	}
	if got["hot"] != "500" || got["cold"] != "1" {
		t.Fatalf("skewed counts = %v", got)
	}
}

// TestEmptySplitsTolerated: splits that yield no records must not wedge the
// barrier logic.
func TestEmptySplitsTolerated(t *testing.T) {
	rt := testRuntime(3)
	in := &SliceInput{
		Splits:   [][]KV{nil, {{"k", "v"}}, nil, nil},
		SimBytes: []int64{1 << 20, 1 << 20, 1 << 20, 1 << 20},
	}
	res, err := rt.Run(&Job{
		Name:        "empties",
		Input:       in,
		Mapper:      MapperFunc(func(kv KV, emit Emit) { emit(kv.Key, kv.Value) }),
		NumReducers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Flat()) != 1 {
		t.Fatalf("output = %v", res.Flat())
	}
	if res.Counters.MapTasks != 4 {
		t.Fatalf("map tasks = %d, want 4", res.Counters.MapTasks)
	}
}

// TestMoreReducersThanKeys: surplus reducers produce empty partitions, not
// errors.
func TestMoreReducersThanKeys(t *testing.T) {
	rt := testRuntime(2)
	res, err := rt.Run(&Job{
		Name:        "surplus",
		Input:       &SliceInput{Splits: [][]KV{{{"a", "1"}, {"b", "2"}}}},
		Mapper:      MapperFunc(func(kv KV, emit Emit) { emit(kv.Key, kv.Value) }),
		NumReducers: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 16 {
		t.Fatalf("partitions = %d", len(res.Output))
	}
	if n := len(res.Flat()); n != 2 {
		t.Fatalf("records = %d, want 2", n)
	}
}

// TestMapperExplosion: a mapper emitting many records per input must be
// combined down correctly.
func TestMapperExplosion(t *testing.T) {
	rt := testRuntime(2)
	res, err := rt.Run(&Job{
		Name:  "explode",
		Input: &SliceInput{Splits: [][]KV{{{"seed", "64"}}}},
		Mapper: MapperFunc(func(kv KV, emit Emit) {
			n, _ := strconv.Atoi(kv.Value)
			for i := 0; i < n; i++ {
				emit(fmt.Sprintf("k%d", i%4), "1")
			}
		}),
		Combiner:    sumReducer,
		Reducer:     sumReducer,
		NumReducers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, kv := range res.Flat() {
		n, _ := strconv.Atoi(kv.Value)
		total += n
	}
	if total != 64 {
		t.Fatalf("total = %d, want 64", total)
	}
}

// TestChainedJobsAccumulateTime: job N+1 starts no earlier than job N ends
// and the DFS carries state across jobs.
func TestChainedJobsAccumulateTime(t *testing.T) {
	rt := testRuntime(3)
	var prevFinish float64
	for i := 0; i < 4; i++ {
		res, err := rt.Run(&Job{
			Name:        fmt.Sprintf("chain-%d", i),
			Input:       wordsInput(2, "a b c"),
			Mapper:      wordCountMapper,
			Reducer:     sumReducer,
			NumReducers: 2,
			OutputFile:  fmt.Sprintf("out-%d", i),
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Start < prevFinish {
			t.Fatalf("job %d started at %v before %v", i, res.Start, prevFinish)
		}
		prevFinish = res.Finish
		if _, ok := rt.D.Lookup(fmt.Sprintf("out-%d.part-00000", i)); !ok {
			t.Fatalf("job %d left no output file", i)
		}
	}
}

// TestDistributedEqualsSequentialProperty: for random record sets, the
// engine's word counts equal a direct sequential fold, across random node
// and reducer counts.
func TestDistributedEqualsSequentialProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep")
	}
	check := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		nodes := 1 + rng.Intn(5)
		reducers := 1 + rng.Intn(9)
		splits := 1 + rng.Intn(4)
		vocab := []string{"ab", "cd", "ef", "gh", "ij"}
		in := &SliceInput{}
		seq := map[string]int{}
		for s := 0; s < splits; s++ {
			var recs []KV
			for r := 0; r < rng.Intn(30); r++ {
				var words []string
				for w := 0; w < 1+rng.Intn(8); w++ {
					words = append(words, vocab[rng.Intn(len(vocab))])
				}
				for _, w := range words {
					seq[w]++
				}
				recs = append(recs, KV{fmt.Sprintf("r%d-%d", s, r), strings.Join(words, " ")})
			}
			in.Splits = append(in.Splits, recs)
		}
		rt := testRuntime(nodes)
		res, err := rt.Run(&Job{
			Name:        "prop",
			Input:       in,
			Mapper:      wordCountMapper,
			Combiner:    sumReducer,
			Reducer:     sumReducer,
			NumReducers: reducers,
		})
		if err != nil {
			return false
		}
		got := map[string]int{}
		for _, kv := range res.Flat() {
			n, _ := strconv.Atoi(kv.Value)
			got[kv.Key] = n
		}
		if len(got) != len(seq) {
			return false
		}
		for k, v := range seq {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestDeterministicAcrossRuns: the same job twice on fresh clusters gives
// bit-identical makespans and counters.
func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() (*Result, *Runtime) {
		rt := testRuntime(4)
		res, err := rt.Run(&Job{
			Name:        "det",
			Input:       wordsInput(3, "x y z", "x x"),
			Mapper:      wordCountMapper,
			Combiner:    sumReducer,
			Reducer:     sumReducer,
			NumReducers: 4,
			OutputFile:  "det-out",
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, rt
	}
	a, art := run()
	b, brt := run()
	if a.Makespan() != b.Makespan() {
		t.Fatalf("makespans differ: %v vs %v", a.Makespan(), b.Makespan())
	}
	if art.C.TotalDiskWriteOps() != brt.C.TotalDiskWriteOps() {
		t.Fatal("disk ops differ")
	}
	if a.Counters != b.Counters {
		t.Fatalf("counters differ: %+v vs %+v", a.Counters, b.Counters)
	}
}

// TestSlotConfigChangesTimingNotOutput: fewer slots slow the job but never
// change the answer.
func TestSlotConfigChangesTimingNotOutput(t *testing.T) {
	build := func(mapSlots int) (*Result, error) {
		c := cluster.New(cluster.DefaultConfig(2), 42)
		d := dfs.New(c, 64<<20, 2, 42)
		cfg := DefaultRuntimeConfig()
		cfg.MapSlotsPerNode = mapSlots
		cfg.ReduceSlotsPerNode = 1
		rt := NewRuntime(c, d, cfg)
		in := &SliceInput{}
		for s := 0; s < 8; s++ {
			in.Splits = append(in.Splits, []KV{{fmt.Sprintf("k%d", s), "v v v"}})
			in.SimBytes = append(in.SimBytes, 64<<20)
		}
		return rt.Run(&Job{
			Name:        "slots",
			Input:       in,
			Mapper:      wordCountMapper,
			Reducer:     sumReducer,
			NumReducers: 2,
		})
	}
	narrow, err := build(1)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := build(8)
	if err != nil {
		t.Fatal(err)
	}
	if narrow.Makespan() <= wide.Makespan() {
		t.Fatalf("1 slot (%v) should be slower than 8 slots (%v)",
			narrow.Makespan(), wide.Makespan())
	}
	na, wa := narrow.Flat(), wide.Flat()
	if len(na) != len(wa) {
		t.Fatal("outputs differ in size")
	}
	sort.Slice(na, func(i, j int) bool { return na[i].Key < na[j].Key })
	sort.Slice(wa, func(i, j int) bool { return wa[i].Key < wa[j].Key })
	for i := range na {
		if na[i] != wa[i] {
			t.Fatalf("outputs differ at %d: %v vs %v", i, na[i], wa[i])
		}
	}
}

// TestShuffleBytesScaleWithOutputRatio: the OutputRatio override governs
// simulated shuffle volume.
func TestShuffleBytesScaleWithOutputRatio(t *testing.T) {
	run := func(ratio float64) int64 {
		rt := testRuntime(2)
		in := &SliceInput{
			Splits:   [][]KV{{{"k", "vvvv"}}},
			SimBytes: []int64{100 << 20},
		}
		res, err := rt.Run(&Job{
			Name:        "ratio",
			Input:       in,
			Mapper:      MapperFunc(func(kv KV, emit Emit) { emit(kv.Key, kv.Value) }),
			NumReducers: 1,
			Cost:        CostModel{OutputRatio: ratio},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Counters.ShuffleSimBytes
	}
	small, big := run(0.01), run(2.0)
	if small >= big {
		t.Fatalf("shuffle bytes: ratio 0.01 -> %d, ratio 2 -> %d", small, big)
	}
	if big < 150<<20 {
		t.Fatalf("ratio 2 shuffle = %d, want ~200 MB", big)
	}
}
