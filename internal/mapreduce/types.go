// Package mapreduce implements a Hadoop 1.x-style MapReduce engine on top of
// the simulated cluster and DFS. Map and reduce functions execute for real
// over real records — outputs are genuine, testable data — while the engine
// charges simulated time for task startup, scheduling, disk, network and CPU
// so that cluster-level results (job makespan, speedup, disk write rates)
// reproduce the paper's Figures 2 and 5.
//
// Data scale is decoupled from time scale: input formats supply real records
// for a split together with the simulated byte size of that split (e.g. a
// 64 MB HDFS block realised by 64 KB of generated records). All I/O and CPU
// charges use simulated bytes, so makespans correspond to the paper's
// 147-187 GB inputs while the in-memory computation stays laptop-sized.
package mapreduce

import "hash/fnv"

// KV is one key-value record.
type KV struct {
	Key   string
	Value string
}

// Bytes returns the record's real payload size.
func (kv KV) Bytes() int64 { return int64(len(kv.Key) + len(kv.Value)) }

// Emit passes one output record out of a map or reduce function.
type Emit func(key, value string)

// Mapper transforms one input record into zero or more output records.
type Mapper interface {
	Map(kv KV, emit Emit)
}

// MapperFunc adapts a function to the Mapper interface.
type MapperFunc func(kv KV, emit Emit)

// Map calls f.
func (f MapperFunc) Map(kv KV, emit Emit) { f(kv, emit) }

// Reducer folds all values of one key into zero or more output records.
type Reducer interface {
	Reduce(key string, values []string, emit Emit)
}

// ReducerFunc adapts a function to the Reducer interface.
type ReducerFunc func(key string, values []string, emit Emit)

// Reduce calls f.
func (f ReducerFunc) Reduce(key string, values []string, emit Emit) { f(key, values, emit) }

// IdentityReducer re-emits every value under its key.
var IdentityReducer = ReducerFunc(func(key string, values []string, emit Emit) {
	for _, v := range values {
		emit(key, v)
	}
})

// Partitioner routes a key to one of r reduce partitions.
type Partitioner func(key string, r int) int

// HashPartition is the default FNV-1a hash partitioner.
func HashPartition(key string, r int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(r))
}

// InputFormat supplies the splits of a job's input. Records must be
// deterministic per split: the engine may materialise them while simulating
// the corresponding block read.
type InputFormat interface {
	// NumSplits returns the number of input splits (== map tasks).
	NumSplits() int
	// Split returns the real records of split i and the simulated byte
	// size that split stands for.
	Split(i int) (records []KV, simBytes int64)
}

// SliceInput is an in-memory InputFormat over pre-partitioned records,
// useful for iterative jobs whose input is a previous job's output.
type SliceInput struct {
	Splits   [][]KV
	SimBytes []int64 // simulated size per split; if nil, real sizes are used
}

// NumSplits implements InputFormat.
func (s *SliceInput) NumSplits() int { return len(s.Splits) }

// Split implements InputFormat.
func (s *SliceInput) Split(i int) ([]KV, int64) {
	recs := s.Splits[i]
	if s.SimBytes != nil {
		return recs, s.SimBytes[i]
	}
	var b int64
	for _, kv := range recs {
		b += kv.Bytes()
	}
	return recs, b
}

// CostModel translates simulated bytes into CPU seconds. Rates are
// per-workload calibration constants: e.g. a Grep map scans ~100 MB/s/core
// (1e-8 s/B) while a K-means map does distance math at ~5 MB/s/core.
type CostModel struct {
	MapCPUPerByte    float64 // CPU seconds per simulated input byte in map
	ReduceCPUPerByte float64 // CPU seconds per simulated shuffle byte in reduce
	OutputRatio      float64 // optional override: simulated map-output bytes per input byte; 0 means "use real ratio"
}
