// Package hpcc implements the seven HPC Challenge benchmarks the paper
// compares against (Section III-C.1): HPL, DGEMM, STREAM, PTRANS,
// RandomAccess, FFT and COMM. Each benchmark exists twice over the same
// code: a pure kernel (unit-tested for numerical correctness) and a traced
// variant that performs the same computation while emitting its memory
// access pattern through a memtrace.Tracer, so the core simulator sees the
// genuine algorithm behaviour — dense FP streams for HPL/DGEMM, pure
// bandwidth for STREAM, dependent random updates for RandomAccess.
package hpcc

import (
	"math"

	"dcbench/internal/memtrace"
	"dcbench/internal/sim"
)

// --- DGEMM ---

// DGEMM computes C = A*B for n x n row-major matrices.
func DGEMM(a, b []float64, n int) []float64 {
	c := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			aik := a[i*n+k]
			for j := 0; j < n; j++ {
				c[i*n+j] += aik * b[k*n+j]
			}
		}
	}
	return c
}

// TraceDGEMM emits the ikj-order DGEMM access pattern: streaming rows of B
// and C with A cached, the classic high-ILP dense kernel.
func TraceDGEMM(t *memtrace.Tracer, n int) {
	aBase := t.Alloc(int64(n * n * 8))
	bBase := t.Alloc(int64(n * n * 8))
	cBase := t.Alloc(int64(n * n * 8))
	for {
		for i := 0; i < n; i++ {
			for k := 0; k < n; k++ {
				t.Load(aBase + uint64(i*n+k)*8)
				for j := 0; j < n; j += 8 { // one line of B/C per iteration
					t.Load(bBase + uint64(k*n+j)*8)
					t.FPU(4) // fused multiply-adds over the line
					t.Store(cBase + uint64(i*n+j)*8)
				}
			}
		}
	}
}

// --- HPL (LU factorisation with partial pivoting) ---

// LUSolve solves Ax=b by in-place LU decomposition with partial pivoting,
// returning x. A is n x n row-major and is overwritten.
func LUSolve(a []float64, b []float64, n int) []float64 {
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	for col := 0; col < n; col++ {
		// Pivot.
		best, bestAbs := col, math.Abs(a[piv[col]*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[piv[r]*n+col]); v > bestAbs {
				best, bestAbs = r, v
			}
		}
		piv[col], piv[best] = piv[best], piv[col]
		pc := piv[col]
		for r := col + 1; r < n; r++ {
			pr := piv[r]
			f := a[pr*n+col] / a[pc*n+col]
			a[pr*n+col] = f
			for j := col + 1; j < n; j++ {
				a[pr*n+j] -= f * a[pc*n+j]
			}
		}
	}
	// Forward substitution (Ly = Pb).
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		y[i] = b[piv[i]]
		for j := 0; j < i; j++ {
			y[i] -= a[piv[i]*n+j] * y[j]
		}
	}
	// Back substitution (Ux = y).
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		x[i] = y[i]
		for j := i + 1; j < n; j++ {
			x[i] -= a[piv[i]*n+j] * x[j]
		}
		x[i] /= a[piv[i]*n+i]
	}
	return x
}

// TraceHPL emits the LU elimination access pattern: row-streaming updates
// with high FP intensity and very regular branches.
func TraceHPL(t *memtrace.Tracer, n int) {
	aBase := t.Alloc(int64(n * n * 8))
	for {
		for col := 0; col < n; col++ {
			for r := col + 1; r < n; r++ {
				t.Load(aBase + uint64(r*n+col)*8)
				for j := col + 1; j < n; j += 8 {
					t.Load(aBase + uint64(col*n+j)*8)
					t.Load(aBase + uint64(r*n+j)*8)
					t.FPU(4)
					t.Store(aBase + uint64(r*n+j)*8)
				}
			}
		}
	}
}

// --- STREAM (triad) ---

// StreamTriad computes a[i] = b[i] + s*c[i], returning a checksum.
func StreamTriad(b, c []float64, s float64) float64 {
	sum := 0.0
	for i := range b {
		v := b[i] + s*c[i]
		sum += v
	}
	return sum
}

// TraceStream emits the triad pattern over arrays far larger than the LLC:
// pure memory bandwidth, no reuse, minimal branching.
func TraceStream(t *memtrace.Tracer, elems int) {
	aBase := t.Alloc(int64(elems * 8))
	bBase := t.Alloc(int64(elems * 8))
	cBase := t.Alloc(int64(elems * 8))
	for {
		for i := 0; i < elems; i++ {
			t.Load(bBase + uint64(i)*8)
			t.Load(cBase + uint64(i)*8)
			t.FPU(1)
			t.Store(aBase + uint64(i)*8)
		}
	}
}

// --- PTRANS (matrix transpose) ---

// Transpose returns the transpose of an n x n row-major matrix.
func Transpose(a []float64, n int) []float64 {
	out := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out[j*n+i] = a[i*n+j]
		}
	}
	return out
}

// TracePTRANS emits the blocked transpose pattern real PTRANS
// implementations use (8x8 tiles): line-granular reads and writes whose
// column strides still defeat L2/L3 and the DTLB on large matrices.
func TracePTRANS(t *memtrace.Tracer, n int) {
	aBase := t.Alloc(int64(n * n * 8))
	bBase := t.Alloc(int64(n * n * 8))
	const tile = 8
	for {
		for bi := 0; bi < n; bi += tile {
			for bj := 0; bj < n; bj += tile {
				// Read 8 row segments, write 8 column segments.
				for i := 0; i < tile; i++ {
					t.Load(aBase + uint64((bi+i)*n+bj)*8)
					t.ALU(45) // register-blocked shuffles and packing
					t.Store(bBase + uint64((bj+i)*n+bi)*8)
				}
			}
		}
	}
}

// --- RandomAccess (GUPS) ---

// GUPS performs the HPCC random-access update loop over table (a power of
// two length), returning the table for verification.
func GUPS(table []uint64, updates int) []uint64 {
	mask := uint64(len(table) - 1)
	x := uint64(1)
	for i := 0; i < updates; i++ {
		x = x<<1 ^ (uint64(int64(x)>>63) & 7)
		table[x&mask] ^= x
	}
	return table
}

// TraceGUPS emits the dependent random update pattern — the worst case for
// every cache and TLB level — with the heavy kernel involvement the paper
// observes (~31% kernel instructions from copy_user string operations).
func TraceGUPS(t *memtrace.Tracer, tableBytes int64) {
	base := t.Alloc(tableBytes)
	mask := uint64(tableBytes-1) &^ 7
	x := uint64(1)
	n := 0
	for {
		// Generate and bucket a batch of updates (the reference code
		// batches 1024 updates for the MPI exchange), then apply.
		x = x<<1 ^ (uint64(int64(x)>>63) & 7)
		t.ALU(10) // generator + bucketing
		addr := base + (x & mask)
		t.Load(addr)
		t.Store(addr)
		n++
		// The MPI-style remote-update exchange: batched syscalls.
		if n%32 == 0 {
			t.Syscall(300, 8<<10)
		}
	}
}

// --- FFT ---

// FFT computes an in-place radix-2 Cooley-Tukey FFT of complex data given
// as interleaved re/im pairs. Length must be a power of two.
func FFT(re, im []float64) {
	n := len(re)
	if n&(n-1) != 0 {
		panic("hpcc: FFT length must be a power of two")
	}
	// Bit reversal.
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
		m := n >> 1
		for m >= 1 && j&m != 0 {
			j ^= m
			m >>= 1
		}
		j |= m
	}
	for span := 1; span < n; span <<= 1 {
		ang := -math.Pi / float64(span)
		for start := 0; start < n; start += span << 1 {
			for k := 0; k < span; k++ {
				wre, wim := math.Cos(ang*float64(k)), math.Sin(ang*float64(k))
				i, j := start+k, start+k+span
				tre := wre*re[j] - wim*im[j]
				tim := wre*im[j] + wim*re[j]
				re[j], im[j] = re[i]-tre, im[i]-tim
				re[i], im[i] = re[i]+tre, im[i]+tim
			}
		}
	}
}

// TraceFFT emits the butterfly access pattern: strided pairs with
// log-depth reuse, intermediate locality between DGEMM and STREAM.
func TraceFFT(t *memtrace.Tracer, n int) {
	reBase := t.Alloc(int64(n * 8))
	imBase := t.Alloc(int64(n * 8))
	for {
		for span := 1; span < n; span <<= 1 {
			for start := 0; start < n; start += span << 1 {
				for k := 0; k < span; k++ {
					i, j := start+k, start+k+span
					t.Load(reBase + uint64(j)*8)
					t.Load(imBase + uint64(j)*8)
					t.FPU(12) // butterfly + twiddle evaluation
					t.ALU(6)
					t.Store(reBase + uint64(i)*8)
					t.Store(imBase + uint64(i)*8)
				}
			}
		}
	}
}

// --- COMM (interconnect ping-pong) ---

// TraceCOMM emits the b_eff-style communication pattern: small compute
// bursts between message syscalls copying buffers in and out.
func TraceCOMM(t *memtrace.Tracer) {
	rng := sim.NewRNG(97)
	buf := t.Alloc(2 << 20)
	for {
		// Pack the message buffer, then hand it to the transport.
		for i := uint64(0); i < 48; i++ {
			t.Load(buf + (i*64)%(2<<20))
		}
		t.ALU(150)
		size := int64(1) << (6 + rng.Intn(8)) // 64 B .. 8 KB messages
		t.Syscall(180, size)
	}
}
