package hpcc

import (
	"math"
	"testing"
	"testing/quick"

	"dcbench/internal/memtrace"
	"dcbench/internal/sim"
)

func TestDGEMMIdentity(t *testing.T) {
	n := 8
	a := make([]float64, n*n)
	id := make([]float64, n*n)
	rng := sim.NewRNG(3)
	for i := range a {
		a[i] = rng.Float64()
	}
	for i := 0; i < n; i++ {
		id[i*n+i] = 1
	}
	c := DGEMM(a, id, n)
	for i := range a {
		if math.Abs(c[i]-a[i]) > 1e-12 {
			t.Fatalf("A*I != A at %d: %v vs %v", i, c[i], a[i])
		}
	}
}

func TestDGEMMAssociatesWithManual(t *testing.T) {
	// 2x2 hand check.
	a := []float64{1, 2, 3, 4}
	b := []float64{5, 6, 7, 8}
	c := DGEMM(a, b, 2)
	want := []float64{19, 22, 43, 50}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("c = %v, want %v", c, want)
		}
	}
}

func TestLUSolveRecoversSolution(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		n := 12
		rng := sim.NewRNG(seed)
		a := make([]float64, n*n)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		// Diagonally dominate to guarantee solvability.
		for i := 0; i < n; i++ {
			a[i*n+i] += 10
		}
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		// b = A * xTrue.
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				b[i] += a[i*n+j] * xTrue[j]
			}
		}
		aCopy := append([]float64(nil), a...)
		x := LUSolve(aCopy, b, n)
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-8 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestLUSolvePivots(t *testing.T) {
	// Zero leading diagonal demands pivoting.
	a := []float64{0, 1, 1, 0}
	b := []float64{2, 3}
	x := LUSolve(append([]float64(nil), a...), b, 2)
	if math.Abs(x[0]-3) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Fatalf("x = %v, want [3 2]", x)
	}
}

func TestStreamTriad(t *testing.T) {
	b := []float64{1, 2, 3}
	c := []float64{10, 20, 30}
	if got := StreamTriad(b, c, 2); got != 1+20+2+40+3+60 {
		t.Fatalf("triad sum = %v", got)
	}
}

func TestTransposeInvolution(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		n := 9
		rng := sim.NewRNG(seed)
		a := make([]float64, n*n)
		for i := range a {
			a[i] = rng.Float64()
		}
		tt := Transpose(Transpose(a, n), n)
		for i := range a {
			if tt[i] != a[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestGUPSDeterministicAndTouches(t *testing.T) {
	t1 := GUPS(make([]uint64, 1024), 10000)
	t2 := GUPS(make([]uint64, 1024), 10000)
	touched := 0
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatal("GUPS nondeterministic")
		}
		if t1[i] != 0 {
			touched++
		}
	}
	if touched < 512 {
		t.Fatalf("GUPS touched only %d/1024 slots", touched)
	}
}

func TestFFTRoundTripViaParseval(t *testing.T) {
	n := 256
	rng := sim.NewRNG(5)
	re := make([]float64, n)
	im := make([]float64, n)
	var timeEnergy float64
	for i := range re {
		re[i] = rng.NormFloat64()
		timeEnergy += re[i] * re[i]
	}
	FFT(re, im)
	var freqEnergy float64
	for i := range re {
		freqEnergy += re[i]*re[i] + im[i]*im[i]
	}
	// Parseval: sum |X|^2 = N * sum |x|^2.
	if math.Abs(freqEnergy/float64(n)-timeEnergy) > 1e-6*timeEnergy {
		t.Fatalf("Parseval violated: %v vs %v", freqEnergy/float64(n), timeEnergy)
	}
}

func TestFFTImpulse(t *testing.T) {
	// FFT of a unit impulse is all-ones.
	n := 16
	re := make([]float64, n)
	im := make([]float64, n)
	re[0] = 1
	FFT(re, im)
	for i := range re {
		if math.Abs(re[i]-1) > 1e-12 || math.Abs(im[i]) > 1e-12 {
			t.Fatalf("impulse FFT wrong at %d: %v+%vi", i, re[i], im[i])
		}
	}
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FFT(make([]float64, 12), make([]float64, 12))
}

func TestTraceGeneratorsProduceMemoryOps(t *testing.T) {
	cases := map[string]func(tr *memtrace.Tracer){
		"dgemm":  func(tr *memtrace.Tracer) { TraceDGEMM(tr, 64) },
		"hpl":    func(tr *memtrace.Tracer) { TraceHPL(tr, 64) },
		"stream": func(tr *memtrace.Tracer) { TraceStream(tr, 1<<20) },
		"ptrans": func(tr *memtrace.Tracer) { TracePTRANS(tr, 256) },
		"gups":   func(tr *memtrace.Tracer) { TraceGUPS(tr, 1<<26) },
		"fft":    func(tr *memtrace.Tracer) { TraceFFT(tr, 1<<14) },
		"comm":   TraceCOMM,
	}
	for name, gen := range cases {
		insts := memtrace.Collect(memtrace.NewReader(memtrace.Profile{MaxInstrs: 20000}, gen), 20000)
		if len(insts) != 20000 {
			t.Fatalf("%s: trace length %d", name, len(insts))
		}
		mem := 0
		for _, in := range insts {
			if in.Op == memtrace.OpLoad || in.Op == memtrace.OpStore {
				mem++
			}
		}
		if mem == 0 {
			t.Fatalf("%s: no memory operations", name)
		}
	}
}
