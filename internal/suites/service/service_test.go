package service

import (
	"testing"

	"dcbench/internal/memtrace"
)

func collect(gen func(t *memtrace.Tracer), p memtrace.Profile) []memtrace.Inst {
	p.MaxInstrs = 30000
	return memtrace.Collect(memtrace.NewReader(p, gen), 30000)
}

func kernelShare(insts []memtrace.Inst) float64 {
	k := 0
	for _, in := range insts {
		if in.Kernel {
			k++
		}
	}
	return float64(k) / float64(len(insts))
}

func TestServicesAreKernelHeavy(t *testing.T) {
	// The paper's Figure 4: service workloads run >40% kernel
	// instructions; Software Testing is the exception (user-mode compute).
	for name, gen := range map[string]func(tr *memtrace.Tracer){
		"dataserving":    TraceDataServing,
		"mediastreaming": TraceMediaStreaming,
		"webserving":     TraceWebServing,
		"specweb":        TraceSPECWeb,
	} {
		insts := collect(gen, memtrace.Profile{})
		if ks := kernelShare(insts); ks < 0.3 {
			t.Fatalf("%s kernel share = %v, want >= 0.3", name, ks)
		}
	}
	if ks := kernelShare(collect(TraceSoftwareTesting, memtrace.Profile{})); ks > 0.1 {
		t.Fatalf("software testing kernel share = %v, want low", ks)
	}
}

func TestServicesTouchLargeHeaps(t *testing.T) {
	insts := collect(TraceDataServing, memtrace.Profile{})
	pages := map[uint64]bool{}
	for _, in := range insts {
		if in.Op == memtrace.OpLoad && !in.Kernel {
			pages[in.Addr>>12] = true
		}
	}
	if len(pages) < 100 {
		t.Fatalf("data serving touched only %d pages", len(pages))
	}
}

func TestAllServiceTracesComplete(t *testing.T) {
	for name, gen := range map[string]func(tr *memtrace.Tracer){
		"dataserving":     TraceDataServing,
		"mediastreaming":  TraceMediaStreaming,
		"websearch":       TraceWebSearch,
		"webserving":      TraceWebServing,
		"softwaretesting": TraceSoftwareTesting,
		"specweb":         TraceSPECWeb,
	} {
		insts := collect(gen, memtrace.Profile{Seed: 5})
		if len(insts) != 30000 {
			t.Fatalf("%s: trace length %d", name, len(insts))
		}
	}
}

func TestDeterministicServiceTraces(t *testing.T) {
	a := collect(TraceWebSearch, memtrace.Profile{Seed: 2})
	b := collect(TraceWebSearch, memtrace.Profile{Seed: 2})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("service trace nondeterministic")
		}
	}
}
