// Package service provides trace models for the paper's service-class
// comparison workloads: the four scale-out CloudSuite services (Data
// Serving, Media Streaming, Web Search, Web Serving), CloudSuite's Software
// Testing, and the traditional SPECweb2005 bank application.
//
// The class-defining behaviour the paper measures (Sections IV-A to IV-E):
// enormous instruction footprints from deep software stacks (the largest
// L1I miss and ITLB walk rates — Media Streaming about 3x the data analysis
// average), more than 40% kernel-mode instructions from network and disk
// request handling, poor data locality from per-request heaps (the highest
// L2 MPKI of the comparison), front-end-bound stall profiles dominated by
// RAT and fetch stalls, and more irregular request-dependent branches than
// the data analysis class.
package service

import (
	"dcbench/internal/memtrace"
	"dcbench/internal/sim"
)

// requestLoop is the shared skeleton: per request, parse (branchy compute),
// touch session/heap state, do work, then answer through the kernel.
//
// The heap model is a Zipf-popular set of session/object regions: the hot
// head stays cache- and TLB-resident while the tail supplies the L2 misses
// that almost always hit the L3 (the paper's Figure 10: services' L2
// misses are served 94.9% by L3).
type requestLoop struct {
	heap      uint64
	heapBytes uint64
	rng       *sim.RNG
	zipf      *sim.Zipf
	bctr      int
}

const regionBytes = 32 << 10

func newRequestLoop(t *memtrace.Tracer, heapMB int, seed uint64) *requestLoop {
	r := &requestLoop{
		heapBytes: uint64(heapMB) << 20,
		rng:       sim.NewRNG(seed),
	}
	r.heap = t.Alloc(int64(r.heapBytes))
	r.zipf = sim.NewZipf(r.rng, int(r.heapBytes/regionBytes), 1.05)
	return r
}

// touch loads n object fields from Zipf-popular heap regions.
func (r *requestLoop) touch(t *memtrace.Tracer, n int) {
	for i := 0; i < n; i++ {
		region := uint64(r.zipf.Next()) * regionBytes
		off := r.rng.Uint64() % regionBytes &^ 7
		t.Load(r.heap + (region+off)%r.heapBytes)
	}
}

// parse emits header-parsing work: short compares whose branches are
// mostly regular (protocol structure) with occasional data-driven
// surprises.
func (r *requestLoop) parse(t *memtrace.Tracer, branches int) {
	for i := 0; i < branches; i++ {
		t.ALU(3)
		r.bctr++
		if r.bctr%24 == 0 {
			t.BranchSite(300+i, r.rng.Float64() < 0.5) // value-dependent
		} else {
			t.BranchSite(340+i, i%5 != 4) // protocol-structured per site
		}
	}
}

// TraceDataServing models the Cassandra/YCSB column store: zipf-keyed
// reads and updates over a big heap with heavy kernel I/O per request.
func TraceDataServing(t *memtrace.Tracer) {
	r := newRequestLoop(t, 6, 11)
	for {
		r.parse(t, 12)
		// Key lookup: memtable + SSTable index probes.
		r.touch(t, 34)
		t.ALU(30) // comparator and serialisation work
		if r.rng.Float64() < 0.5 {
			// Update path: write the row and the commit log.
			t.Store(t.RNG().Uint64()%r.heapBytes&^7 + r.heap)
			t.Syscall(160, 2048) // commit log append
		}
		t.Syscall(220, 1500) // network reply
	}
}

// TraceMediaStreaming models the Darwin streaming server: long sequential
// buffer reads chunked out through the kernel, with the largest
// instruction footprint of the suite.
func TraceMediaStreaming(t *memtrace.Tracer) {
	r := newRequestLoop(t, 4, 13)
	media := t.Alloc(4 << 20) // recently served content, LLC-resident
	pos := uint64(0)
	for {
		r.parse(t, 8)
		// Packetise one chunk: read media sequentially, build RTP
		// headers, send.
		for pkt := 0; pkt < 4; pkt++ {
			for i := 0; i < 6; i++ {
				t.Load(media + pos)
				pos = (pos + 64) % (4 << 20)
			}
			t.ALU(45)            // header construction, rate control
			t.Syscall(140, 1500) // one packet out
		}
		r.touch(t, 3) // session bookkeeping
	}
}

// TraceWebSearch models the Nutch index server: posting-list traversals
// (sequential bursts over a large index) and score accumulation, with less
// kernel time than the other services.
func TraceWebSearch(t *memtrace.Tracer) {
	r := newRequestLoop(t, 6, 17)
	index := t.Alloc(5 << 20)
	for {
		r.parse(t, 10)
		terms := 2 + r.rng.Intn(3)
		for q := 0; q < terms; q++ {
			start := r.rng.Uint64() % (5 << 20) &^ 63
			for i := uint64(0); i < 24; i++ { // posting list scan
				t.Load(index + (start+i*64)%(5<<20))
				t.ALU(4)
				r.bctr++
				if r.bctr%24 == 0 {
					t.BranchSite(400, r.rng.Float64() < 0.5) // score threshold
				} else {
					t.BranchSite(401, i < 23) // next posting
				}
			}
		}
		r.touch(t, 6)        // result heap
		t.Syscall(700, 2048) // reply
	}
}

// TraceWebServing models the Olio PHP front end: interpreter-style big
// code, many small object touches, DB round trips through the kernel.
func TraceWebServing(t *memtrace.Tracer) {
	r := newRequestLoop(t, 6, 19)
	for {
		r.parse(t, 22) // template/interpreter dispatch
		r.touch(t, 26)
		t.Syscall(240, 1024) // memcached/DB round trip
		r.parse(t, 14)
		t.ALU(40)
		t.Syscall(260, 4096) // page response
	}
}

// TraceSoftwareTesting models Cloud9 symbolic execution: state-queue
// search with irregular branches and object graph walks, mostly user mode.
func TraceSoftwareTesting(t *memtrace.Tracer) {
	r := newRequestLoop(t, 6, 23)
	states := t.Alloc(5 << 20)
	for {
		// Pop a state and interpret a few instructions symbolically.
		s := r.rng.Uint64() % (5 << 20) &^ 63
		for i := 0; i < 10; i++ {
			t.Load(states + (s+uint64(i)*64)%(5<<20))
			t.ALU(8)
			r.bctr++
			if r.bctr%20 == 0 {
				t.BranchSite(500, r.rng.Float64() < 0.5) // path feasibility
			} else {
				t.BranchSite(501+i, i < 9) // interpreter dispatch
			}
		}
		// Constraint solving burst: compute heavy.
		t.ALU(120)
		r.touch(t, 4)
	}
}

// TraceSPECWeb models the SPECweb2005 bank server: request parsing,
// session state, dynamic page generation and kernel-heavy responses —
// the traditional-server twin of the scale-out services.
func TraceSPECWeb(t *memtrace.Tracer) {
	r := newRequestLoop(t, 6, 29)
	for {
		r.parse(t, 16)
		r.touch(t, 22)
		t.ALU(60) // page templating
		t.Syscall(300, 6144)
	}
}
