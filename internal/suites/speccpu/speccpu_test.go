package speccpu

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"dcbench/internal/memtrace"
)

func TestRLERoundTrip(t *testing.T) {
	if err := quick.Check(func(data []byte) bool {
		return bytes.Equal(RLEDecompress(RLECompress(data)), data)
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRLECompresses(t *testing.T) {
	data := bytes.Repeat([]byte{7}, 1000)
	if enc := RLECompress(data); len(enc) >= len(data)/10 {
		t.Fatalf("RLE on runs: %d bytes from %d", len(enc), len(data))
	}
}

func TestListSum(t *testing.T) {
	next := []int{1, 2, 0}
	vals := []int64{10, 20, 30}
	if got := ListSum(next, vals, 0, 6); got != 120 {
		t.Fatalf("list sum = %d, want 120", got)
	}
}

func TestStencilConvergesToMean(t *testing.T) {
	n := 16
	grid := make([]float64, n*n)
	for i := range grid {
		grid[i] = float64(i % 7)
	}
	// Repeated Jacobi sweeps with zero boundary must decay the interior.
	for it := 0; it < 500; it++ {
		grid = Stencil2D(grid, n)
	}
	for i := 1; i < n-1; i++ {
		for j := 1; j < n-1; j++ {
			if math.Abs(grid[i*n+j]) > 0.01 {
				t.Fatalf("stencil did not decay: grid[%d][%d] = %v", i, j, grid[i*n+j])
			}
		}
	}
}

func TestStencilPreservesConstant(t *testing.T) {
	// One sweep of a constant interior with matching boundary keeps the
	// deep interior constant.
	n := 8
	grid := make([]float64, n*n)
	for i := range grid {
		grid[i] = 3
	}
	out := Stencil2D(grid, n)
	for i := 2; i < n-2; i++ {
		for j := 2; j < n-2; j++ {
			if out[i*n+j] != 3 {
				t.Fatalf("constant not preserved at %d,%d: %v", i, j, out[i*n+j])
			}
		}
	}
}

func TestTraceGenerators(t *testing.T) {
	for name, gen := range map[string]func(tr *memtrace.Tracer){
		"specint": TraceSPECINT,
		"specfp":  func(tr *memtrace.Tracer) { TraceSPECFP(tr, 512) },
	} {
		insts := memtrace.Collect(memtrace.NewReader(memtrace.Profile{MaxInstrs: 20000}, gen), 20000)
		if len(insts) != 20000 {
			t.Fatalf("%s: short trace", name)
		}
		branches := 0
		for _, in := range insts {
			if in.Op == memtrace.OpBranch {
				branches++
			}
		}
		if branches == 0 {
			t.Fatalf("%s: no branches", name)
		}
	}
}
