// Package speccpu provides proxy kernels for the SPEC CPU2006 comparison
// columns (SPECINT and SPECFP in Figures 3-12). The proxies capture the
// class-defining properties the paper relies on: statically-compiled small
// code footprints (near-zero L1I misses and ITLB walks), large data
// footprints (noticeable DTLB walks), branchy integer control flow for
// SPECINT (the highest mispredict ratio of the compared suites) and
// regular, high-ILP floating-point loops for SPECFP.
package speccpu

import (
	"dcbench/internal/memtrace"
	"dcbench/internal/sim"
)

// --- Real kernels (unit-tested) ---

// RLECompress run-length encodes data as (count, byte) pairs.
func RLECompress(data []byte) []byte {
	var out []byte
	for i := 0; i < len(data); {
		j := i
		for j < len(data) && data[j] == data[i] && j-i < 255 {
			j++
		}
		out = append(out, byte(j-i), data[i])
		i = j
	}
	return out
}

// RLEDecompress inverts RLECompress.
func RLEDecompress(enc []byte) []byte {
	var out []byte
	for i := 0; i+1 < len(enc); i += 2 {
		for k := byte(0); k < enc[i]; k++ {
			out = append(out, enc[i+1])
		}
	}
	return out
}

// ListSum walks a linked list encoded as a next-index array, summing
// values; it is the mcf-like pointer-chasing kernel.
func ListSum(next []int, vals []int64, start, steps int) int64 {
	var sum int64
	i := start
	for s := 0; s < steps; s++ {
		sum += vals[i]
		i = next[i]
	}
	return sum
}

// Stencil2D applies one Jacobi sweep over an n x n grid, returning the new
// grid (the lbm/milc-like SPECFP kernel).
func Stencil2D(grid []float64, n int) []float64 {
	out := make([]float64, n*n)
	for i := 1; i < n-1; i++ {
		for j := 1; j < n-1; j++ {
			out[i*n+j] = 0.25 * (grid[(i-1)*n+j] + grid[(i+1)*n+j] +
				grid[i*n+j-1] + grid[i*n+j+1])
		}
	}
	return out
}

// --- Trace generators ---

// TraceSPECINT emits a gcc/bzip2/mcf-like integer mix: compression scans,
// hash lookups into a multi-MB table and pointer chasing, with frequent
// data-dependent branches.
func TraceSPECINT(t *memtrace.Tracer) {
	rng := sim.NewRNG(41)
	data := t.Alloc(16 << 20)   // input being scanned
	table := t.Alloc(512 << 10) // hash/state table
	list := t.Alloc(3 << 19)    // pointer-chased structure (1.5 MB)
	pos := uint64(0)
	ptr := uint64(0)
	bc := 0
	for {
		// Compression-like scan: sequential bytes, branchy run detection.
		// Roughly one branch in nine is genuinely data-random, yielding
		// the ~5% mispredict rate SPECINT shows in Figure 12.
		for i := 0; i < 64; i++ {
			t.Load(data + pos)
			pos = (pos + 4) % (16 << 20)
			t.ALU(6)
			bc++
			if bc%9 == 0 {
				t.BranchSite(600, rng.Float64() < 0.5)
			} else {
				t.BranchSite(601+i%8, i%4 != 3)
			}
			if i%8 == 0 {
				h := rng.Uint64() % (512 << 10)
				t.Load(table + h&^7)
				t.Store(table + h&^7)
			}
		}
		// mcf-like pointer chase: dependent loads over a mid-size graph.
		for i := 0; i < 8; i++ {
			ptr = (ptr*2654435761 + 977) % (3 << 19)
			t.Load(list + ptr&^7)
			t.ALU(5)
			bc++
			if bc%9 == 0 {
				t.BranchSite(620, rng.Float64() < 0.5)
			} else {
				t.BranchSite(621, i < 7)
			}
		}
	}
}

// TraceSPECFP mixes the class's two signature phases: a cache-resident
// Jacobi stencil (the dense compute of milc/lbm inner tiles) and streaming
// triad passes alternating between an L3-resident field and a cold
// multi-GB field — together giving SPECFP's moderate L2 miss rate, mixed
// L3 hit ratio and noticeable DTLB pressure over a tiny code footprint.
func TraceSPECFP(t *memtrace.Tracer, n int) {
	grid := t.Alloc(int64(n * n * 8))
	out := t.Alloc(int64(n * n * 8))
	warmField := t.Alloc(8 << 20)
	coldField := t.Alloc(256 << 20)
	var coldPos uint64
	sweep := 0
	for {
		// Stencil sweep over the resident grid.
		for i := 1; i < n-1; i++ {
			for j := 1; j < n-1; j += 4 {
				idx := uint64(i*n + j)
				t.Load(grid + (idx-uint64(n))*8)
				t.Load(grid + (idx+uint64(n))*8)
				t.Load(grid + (idx-1)*8)
				t.Load(grid + (idx+1)*8)
				t.FPU(14)
				t.ALU(6)
				t.Store(out + idx*8)
			}
		}
		grid, out = out, grid
		sweep++
		// Triad pass: even sweeps stream the L3-resident field, odd
		// sweeps advance through the cold field.
		base, size := warmField, uint64(8<<20)
		if sweep%2 == 1 {
			base, size = coldField, uint64(256<<20)
		}
		for k := 0; k < 24576; k++ {
			t.Load(base + coldPos%size)
			t.FPU(2)
			t.Store(base + (coldPos+size/2)%size)
			coldPos += 8
		}
		// Gather phase: page-strided accesses (sparse matrix indices).
		for k := uint64(0); k < 512; k++ {
			t.Load(coldField + (coldPos+k*4168)%(256<<20))
		}
	}
}
