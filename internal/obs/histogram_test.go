package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramBuckets pins bucket placement against explicit bounds,
// including the inclusive-upper-bound (le) edge Prometheus semantics
// require: an observation exactly on a bound lands in that bound's bucket.
func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1})
	h.Observe(500 * time.Microsecond) // bucket le=0.001
	h.Observe(time.Millisecond)       // exactly on the bound: still le=0.001
	h.Observe(5 * time.Millisecond)   // le=0.01
	h.Observe(50 * time.Millisecond)  // le=0.1
	h.Observe(500 * time.Millisecond) // +Inf only

	d := h.Snapshot()
	if want := []int64{2, 3, 4}; fmt.Sprint(d.Cumulative) != fmt.Sprint(want) {
		t.Errorf("cumulative = %v, want %v", d.Cumulative, want)
	}
	if d.Count != 5 {
		t.Errorf("count = %d, want 5", d.Count)
	}
	if want := 0.5565; d.Sum < want-1e-9 || d.Sum > want+1e-9 {
		t.Errorf("sum = %v s, want %v", d.Sum, want)
	}
}

// TestHistogramSetWriteProm pins the rendered exposition: one family
// header, labels in sorted order, a full bucket ladder per label ending in
// +Inf, and _sum/_count lines. An empty set still announces the family.
func TestHistogramSetWriteProm(t *testing.T) {
	s := NewHistogramSet([]float64{0.01, 0.1})
	s.Observe("cluster", 5*time.Millisecond)
	s.Observe("counters", 50*time.Millisecond)
	s.Observe("counters", 50*time.Millisecond)

	var b strings.Builder
	s.WriteProm(&b, "job_seconds", "kind", "Job latency.")
	want := strings.Join([]string{
		"# HELP job_seconds Job latency.",
		"# TYPE job_seconds histogram",
		`job_seconds_bucket{kind="cluster",le="0.01"} 1`,
		`job_seconds_bucket{kind="cluster",le="0.1"} 1`,
		`job_seconds_bucket{kind="cluster",le="+Inf"} 1`,
		`job_seconds_sum{kind="cluster"} 0.005`,
		`job_seconds_count{kind="cluster"} 1`,
		`job_seconds_bucket{kind="counters",le="0.01"} 0`,
		`job_seconds_bucket{kind="counters",le="0.1"} 2`,
		`job_seconds_bucket{kind="counters",le="+Inf"} 2`,
		`job_seconds_sum{kind="counters"} 0.1`,
		`job_seconds_count{kind="counters"} 2`,
	}, "\n") + "\n"
	if b.String() != want {
		t.Errorf("WriteProm output:\n%s\nwant:\n%s", b.String(), want)
	}

	var empty strings.Builder
	NewHistogramSet(nil).WriteProm(&empty, "req_seconds", "endpoint", "h")
	if got := empty.String(); got != "# HELP req_seconds h\n# TYPE req_seconds histogram\n" {
		t.Errorf("empty set rendered %q, want just the family header", got)
	}
}

// TestHistogramSetCount: Count reads through to the label's _count and is
// 0 (not a panic) for labels never observed.
func TestHistogramSetCount(t *testing.T) {
	s := NewHistogramSet(nil)
	if s.Count("ghost") != 0 {
		t.Error("unobserved label should count 0")
	}
	s.Observe("k", time.Millisecond)
	s.Observe("k", time.Millisecond)
	if got := s.Count("k"); got != 2 {
		t.Errorf("Count = %d, want 2", got)
	}
	if got := s.Labels(); fmt.Sprint(got) != "[k]" {
		t.Errorf("Labels = %v", got)
	}
}

// TestHistogramConcurrent must be clean under -race: Observe is called
// from many goroutines against both a shared label and fresh ones.
func TestHistogramConcurrent(t *testing.T) {
	const workers, perWorker = 8, 200
	s := NewHistogramSet(nil)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				s.Observe("shared", time.Millisecond)
				s.Observe(fmt.Sprintf("w%d", w), time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if got := s.Count("shared"); got != workers*perWorker {
		t.Errorf("shared count = %d, want %d", got, workers*perWorker)
	}
	if got := len(s.Labels()); got != workers+1 {
		t.Errorf("labels = %d, want %d", got, workers+1)
	}
	d := s.Get("shared").Snapshot()
	if d.Cumulative[len(d.Cumulative)-1] != d.Count {
		t.Errorf("last bound cumulative %d != count %d", d.Cumulative[len(d.Cumulative)-1], d.Count)
	}
}
