package obs

import (
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultLatencyBounds are the fixed histogram bucket upper bounds, in
// seconds, shared by the per-endpoint and per-job-kind latency
// histograms: half a millisecond (a warm memo hit) up through ten
// seconds (a cold cluster cell on a loaded worker), roughly 2.5x apart.
// Fixed buckets keep the /metrics surface golden-testable and let
// histograms from different processes be summed by a scraper.
var DefaultLatencyBounds = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket latency histogram with lock-free Observe,
// rendered in the Prometheus text exposition's _bucket/_sum/_count shape.
type Histogram struct {
	bounds []float64      // upper bounds in seconds, ascending
	counts []atomic.Int64 // len(bounds)+1; the last bucket is +Inf
	sumNS  atomic.Int64
	count  atomic.Int64
}

// NewHistogram returns a histogram over the given ascending upper bounds
// (nil uses DefaultLatencyBounds).
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBounds
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	s := d.Seconds()
	i := sort.SearchFloat64s(h.bounds, s) // first bound >= s, len(bounds) = +Inf
	h.counts[i].Add(1)
	h.sumNS.Add(d.Nanoseconds())
	h.count.Add(1)
}

// HistogramData is a point-in-time snapshot: cumulative counts per bound
// (the +Inf bucket equals Count), total seconds and total observations.
type HistogramData struct {
	Bounds     []float64
	Cumulative []int64
	Sum        float64
	Count      int64
}

// Snapshot returns the histogram's current state with counts made
// cumulative, the shape the Prometheus text format wants.
func (h *Histogram) Snapshot() HistogramData {
	d := HistogramData{
		Bounds:     h.bounds,
		Cumulative: make([]int64, len(h.bounds)),
		Sum:        float64(h.sumNS.Load()) / 1e9,
		Count:      h.count.Load(),
	}
	var cum int64
	for i := range h.bounds {
		cum += h.counts[i].Load()
		d.Cumulative[i] = cum
	}
	return d
}

// HistogramSet is a family of histograms keyed by one label value —
// per-endpoint request latency, per-kind job latency. Labels are created
// on first observation; all histograms share one bounds slice.
type HistogramSet struct {
	bounds []float64
	mu     sync.Mutex
	m      map[string]*Histogram
}

// NewHistogramSet returns an empty set over bounds (nil uses
// DefaultLatencyBounds).
func NewHistogramSet(bounds []float64) *HistogramSet {
	if bounds == nil {
		bounds = DefaultLatencyBounds
	}
	return &HistogramSet{bounds: bounds, m: make(map[string]*Histogram)}
}

// Observe records one duration under the given label value.
func (s *HistogramSet) Observe(label string, d time.Duration) {
	s.mu.Lock()
	h, ok := s.m[label]
	if !ok {
		h = NewHistogram(s.bounds)
		s.m[label] = h
	}
	s.mu.Unlock()
	h.Observe(d)
}

// Labels returns the observed label values, sorted — the deterministic
// iteration order the /metrics rendering (and its golden test) needs.
func (s *HistogramSet) Labels() []string {
	s.mu.Lock()
	out := make([]string, 0, len(s.m))
	for l := range s.m {
		out = append(out, l)
	}
	s.mu.Unlock()
	sort.Strings(out)
	return out
}

// Get returns the label's histogram, or nil if it was never observed.
func (s *HistogramSet) Get(label string) *Histogram {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[label]
}

// Count returns the label's observation count (0 if never observed) —
// the _count sample, used directly by consistency checks.
func (s *HistogramSet) Count(label string) int64 {
	if h := s.Get(label); h != nil {
		return h.count.Load()
	}
	return 0
}

// WriteProm renders the set as one Prometheus histogram family: HELP and
// TYPE lines, then per label (sorted) the cumulative _bucket samples with
// le="..." bounds plus +Inf, _sum and _count. An empty set still emits
// the family header so scrapers learn the metric exists.
func (s *HistogramSet) WriteProm(b *strings.Builder, name, labelName, help string) {
	b.WriteString("# HELP " + name + " " + help + "\n")
	b.WriteString("# TYPE " + name + " histogram\n")
	for _, label := range s.Labels() {
		d := s.Get(label).Snapshot()
		lp := labelName + "=" + strconv.Quote(label)
		for i, bound := range d.Bounds {
			b.WriteString(name + "_bucket{" + lp + ",le=\"" +
				strconv.FormatFloat(bound, 'g', -1, 64) + "\"} " +
				strconv.FormatInt(d.Cumulative[i], 10) + "\n")
		}
		b.WriteString(name + "_bucket{" + lp + ",le=\"+Inf\"} " +
			strconv.FormatInt(d.Count, 10) + "\n")
		b.WriteString(name + "_sum{" + lp + "} " +
			strconv.FormatFloat(d.Sum, 'g', -1, 64) + "\n")
		b.WriteString(name + "_count{" + lp + "} " +
			strconv.FormatInt(d.Count, 10) + "\n")
	}
}
