// Package obs is the cluster's request-scoped tracing layer: zero
// external dependencies, one trace per inbound request (or per dispatched
// job), spans for every instrumented phase, and a fixed-size per-process
// ring buffer of finished traces served as JSON at GET /debug/traces.
//
// The paper this repo reproduces is an exercise in answering "where do
// the cycles go" for datacenter workloads; obs answers the same question
// about the reproduction itself. A slow /v1/jobs request hops
// front-end → dispatch → worker → trace-cache → simulator, and before
// this package existed its time vanished into monotonic counters. Now:
//
//   - every inbound request gets a trace ID — fresh, or propagated from
//     the X-Dcs-Trace header, so a dispatched job's worker-side trace
//     carries the front-end's ID and one grep over two /debug/traces
//     documents the full cross-process life of the job;
//   - instrumented code starts spans off the request context
//     (obs.Start(ctx, ...)); contexts without a trace make every call a
//     no-op, so library code is instrumented unconditionally;
//   - finished traces land in a Recorder — a fixed-size ring that
//     overwrites oldest-first, snapshotted by /debug/traces with an
//     optional ?min_ms= floor for "show me the slow ones".
//
// The companion histogram.go holds the fixed-bucket latency histograms
// /metrics exports per endpoint and per job kind; debug.go mounts both
// the trace dump and net/http/pprof behind one mux for -debug-addr.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// TraceHeader is the HTTP header that carries a trace ID between
// processes: a front-end stamps it on every dispatched job request, and a
// server adopts an inbound ID instead of generating one. Responses echo
// it so a client that did not send an ID still learns which trace its
// request produced.
const TraceHeader = "X-Dcs-Trace"

// DefaultRingSize is how many finished traces a Recorder keeps when the
// caller does not say otherwise: enough to hold the recent past of a busy
// server (a full e2e run is a few hundred requests) at a few KB per
// trace.
const DefaultRingSize = 512

// maxIDLen bounds an inbound trace ID; anything longer (or containing
// bytes outside the ID alphabet) is replaced with a fresh ID rather than
// stored and re-emitted.
const maxIDLen = 64

// Attrs are a span's (or trace's) key/value annotations.
type Attrs map[string]string

// SpanData is one finished span as /debug/traces serves it: a named phase
// with its offset from the trace start and its duration, both in
// milliseconds (the unit an operator eyeballing a slow request thinks
// in).
type SpanData struct {
	Name    string  `json:"name"`
	StartMS float64 `json:"start_ms"`
	DurMS   float64 `json:"dur_ms"`
	Attrs   Attrs   `json:"attrs,omitempty"`
}

// TraceData is one finished trace: identity, wall-clock start, total
// duration, and the recorded spans in completion order.
type TraceData struct {
	ID    string     `json:"id"`
	Name  string     `json:"name"`
	Start time.Time  `json:"start"`
	DurMS float64    `json:"dur_ms"`
	Attrs Attrs      `json:"attrs,omitempty"`
	Spans []SpanData `json:"spans,omitempty"`
}

// Trace accumulates spans for one request (or one traced unit of work).
// All methods are nil-safe — code holding a *Trace from a context that
// never had one just records nothing — and safe for concurrent use:
// spans land from whichever goroutines the work fanned out to.
type Trace struct {
	rec      *Recorder
	observer func(SpanEvent)

	mu       sync.Mutex
	data     TraceData
	finished bool
}

// SpanEvent is one span-lifecycle notification delivered to a trace's
// observer: End is false when a span opens (Attrs holds its start
// attributes) and true when it records (Attrs holds the merged start+end
// attributes). Events (instantaneous spans) arrive once, with End true.
// The Attrs map is shared with the span — observers must not retain or
// mutate it.
type SpanEvent struct {
	Name  string
	Attrs Attrs
	End   bool
}

// OnSpan registers fn to be called synchronously at every span start and
// end on this trace — the hook a job-state machine derives progress from
// without the instrumented code knowing jobs exist. Set it before the
// trace is shared across goroutines (like a Memo's OnJoin, it is not
// synchronized against concurrent spans); fn itself must be safe for
// concurrent calls. Nil-safe.
func (t *Trace) OnSpan(fn func(SpanEvent)) {
	if t == nil {
		return
	}
	t.observer = fn
}

// observe delivers one span event to the observer, if any. Called outside
// t.mu so observers may inspect the trace.
func (t *Trace) observe(ev SpanEvent) {
	if t == nil || t.observer == nil {
		return
	}
	t.observer(ev)
}

// ID returns the trace ID ("" on a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.data.ID
}

// SetAttr annotates the trace itself (status code, byte count, ...).
func (t *Trace) SetAttr(k, v string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if !t.finished {
		if t.data.Attrs == nil {
			t.data.Attrs = Attrs{}
		}
		t.data.Attrs[k] = v
	}
	t.mu.Unlock()
}

// addSpan appends one finished span; spans arriving after Finish are
// dropped — the trace has already been snapshotted into the ring (a
// straggling hedge attempt, say, outliving the request that spawned it).
func (t *Trace) addSpan(sd SpanData) {
	if t == nil {
		return
	}
	t.mu.Lock()
	recorded := !t.finished
	if recorded {
		t.data.Spans = append(t.data.Spans, sd)
	}
	t.mu.Unlock()
	if recorded {
		t.observe(SpanEvent{Name: sd.Name, Attrs: sd.Attrs, End: true})
	}
}

// Finish seals the trace, computes its duration and records it into the
// Recorder that started it. Idempotent; spans ending afterwards are
// dropped.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.finished {
		t.mu.Unlock()
		return
	}
	t.finished = true
	t.data.DurMS = ms(time.Since(t.data.Start))
	snap := t.data
	snap.Spans = append([]SpanData(nil), t.data.Spans...)
	if t.data.Attrs != nil {
		snap.Attrs = Attrs{}
		for k, v := range t.data.Attrs {
			snap.Attrs[k] = v
		}
	}
	rec := t.rec
	t.mu.Unlock()
	if rec != nil {
		rec.record(snap)
	}
}

// Span is one in-flight phase of a trace. Obtain with Start; End records
// it. A nil Span (Start on an untraced context) ignores every call.
type Span struct {
	t     *Trace
	name  string
	start time.Time
	attrs Attrs
}

// ctxKey is the context key for the current *Trace.
type ctxKey struct{}

// With returns ctx carrying t. A nil t returns ctx unchanged.
func With(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// From returns the context's trace, or nil when there is none.
func From(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

// Start opens a span named name on the context's trace, annotated with
// the given key/value pairs. On a context without a trace it returns nil,
// and every Span method on nil is a no-op — instrument unconditionally.
func Start(ctx context.Context, name string, kv ...string) *Span {
	t := From(ctx)
	if t == nil {
		return nil
	}
	s := &Span{t: t, name: name, start: time.Now()}
	s.attrs = kvAttrs(nil, kv)
	t.observe(SpanEvent{Name: name, Attrs: s.attrs})
	return s
}

// End records the span (with any extra key/value pairs) into its trace.
func (s *Span) End(kv ...string) {
	if s == nil {
		return
	}
	s.t.addSpan(SpanData{
		Name:    s.name,
		StartMS: ms(s.start.Sub(s.t.data.Start)),
		DurMS:   ms(time.Since(s.start)),
		Attrs:   kvAttrs(s.attrs, kv),
	})
}

// Event records an instantaneous (zero-duration) span — a fact worth a
// line on the timeline that has no meaningful extent of its own.
func Event(ctx context.Context, name string, kv ...string) {
	t := From(ctx)
	if t == nil {
		return
	}
	t.addSpan(SpanData{
		Name:    name,
		StartMS: ms(time.Since(t.data.Start)),
		Attrs:   kvAttrs(nil, kv),
	})
}

// kvAttrs folds alternating key/value strings into base (allocating it on
// first use); a trailing odd key is ignored.
func kvAttrs(base Attrs, kv []string) Attrs {
	for i := 0; i+1 < len(kv); i += 2 {
		if base == nil {
			base = Attrs{}
		}
		base[kv[i]] = kv[i+1]
	}
	return base
}

// ms converts a duration to float milliseconds.
func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// Recorder is a fixed-size ring of finished traces. Safe for concurrent
// use; once full, each new trace overwrites the oldest.
type Recorder struct {
	mu    sync.Mutex
	ring  []TraceData
	next  int
	total int64
}

// NewRecorder returns a Recorder keeping the last size finished traces
// (size <= 0 uses DefaultRingSize).
func NewRecorder(size int) *Recorder {
	if size <= 0 {
		size = DefaultRingSize
	}
	return &Recorder{ring: make([]TraceData, 0, size)}
}

// StartTrace opens a trace named name under id. An empty or malformed id
// gets a freshly generated one, so a hostile header cannot inject
// arbitrary bytes into the trace dump. Nil-safe: a nil Recorder returns a
// nil trace and the whole instrumentation chain no-ops.
func (r *Recorder) StartTrace(name, id string) *Trace {
	if r == nil {
		return nil
	}
	if !ValidID(id) {
		id = NewID()
	}
	return &Trace{rec: r, data: TraceData{ID: id, Name: name, Start: time.Now()}}
}

// record appends one finished trace, overwriting the oldest once the ring
// is full.
func (r *Recorder) record(td TraceData) {
	r.mu.Lock()
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, td)
	} else {
		r.ring[r.next] = td
		r.next = (r.next + 1) % cap(r.ring)
	}
	r.total++
	r.mu.Unlock()
}

// Total reports how many traces have ever been recorded (recorded, not
// retained: the ring keeps only the most recent cap).
func (r *Recorder) Total() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Traces returns the recorded traces at or above the duration floor,
// newest first.
func (r *Recorder) Traces(min time.Duration) []TraceData {
	if r == nil {
		return nil
	}
	floor := ms(min)
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceData, 0, len(r.ring))
	// Walk backwards from the newest entry: the ring is ordered at r.next
	// (oldest) through r.next-1 (newest), modulo its length.
	for i := 0; i < len(r.ring); i++ {
		idx := (r.next - 1 - i + 2*len(r.ring)) % len(r.ring)
		if td := r.ring[idx]; td.DurMS >= floor {
			out = append(out, td)
		}
	}
	return out
}

// NewID returns a fresh 16-hex-digit trace ID.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; a constant ID keeps
		// tracing functional (IDs are correlation hints, not security).
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// ValidID reports whether id is acceptable as a propagated trace ID:
// 1..64 bytes drawn from [A-Za-z0-9_-].
func ValidID(id string) bool {
	if len(id) == 0 || len(id) > maxIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}
