package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// TracesHandler serves a Recorder's ring as JSON at GET /debug/traces:
// the most recent finished traces, newest first, filtered to those at
// least ?min_ms= milliseconds long and capped at ?limit= entries
// (default 64). The shape is {"total": N, "traces": [TraceData...]}.
func TracesHandler(rec *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		var min time.Duration
		if v := q.Get("min_ms"); v != "" {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f < 0 {
				http.Error(w, "min_ms must be a non-negative number of milliseconds", http.StatusBadRequest)
				return
			}
			min = time.Duration(f * float64(time.Millisecond))
		}
		limit := 64
		if v := q.Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				http.Error(w, "limit must be a positive integer", http.StatusBadRequest)
				return
			}
			limit = n
		}
		traces := rec.Traces(min)
		if len(traces) > limit {
			traces = traces[:limit]
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Total  int64       `json:"total"`
			Traces []TraceData `json:"traces"`
		}{rec.Total(), traces})
	})
}

// DebugMux mounts the full debug plane on one mux: the trace ring at
// /debug/traces and net/http/pprof at /debug/pprof/ — the handler the
// -debug-addr flag serves on its own listener, kept off the service
// port's handler chain so profiling a drowning server does not compete
// with the traffic drowning it.
func DebugMux(rec *Recorder) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("GET /debug/traces", TracesHandler(rec))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
