package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilSafety pins the contract that makes unconditional instrumentation
// possible: every method on a nil Trace, nil Span or nil Recorder — and
// Start/Event on a context that never carried a trace — is a no-op.
func TestNilSafety(t *testing.T) {
	var tr *Trace
	if got := tr.ID(); got != "" {
		t.Errorf("nil trace ID = %q, want empty", got)
	}
	tr.SetAttr("k", "v")
	tr.Finish()

	ctx := context.Background()
	if With(ctx, nil) != ctx {
		t.Error("With(ctx, nil) should return ctx unchanged")
	}
	if From(ctx) != nil {
		t.Error("From on a bare context should be nil")
	}
	sp := Start(ctx, "phase")
	if sp != nil {
		t.Error("Start on an untraced context should return nil")
	}
	sp.End("k", "v")
	Event(ctx, "event")

	var rec *Recorder
	if rec.StartTrace("x", "") != nil {
		t.Error("nil recorder should start nil traces")
	}
	if rec.Total() != 0 || rec.Traces(0) != nil {
		t.Error("nil recorder should report nothing")
	}
}

// TestTraceRoundTrip drives the full life of one trace — spans with start
// and end attrs, an event, a trace attr — and checks the snapshot the
// recorder keeps.
func TestTraceRoundTrip(t *testing.T) {
	rec := NewRecorder(8)
	tr := rec.StartTrace("GET /v1/x", "")
	if !ValidID(tr.ID()) {
		t.Fatalf("generated ID %q is not valid", tr.ID())
	}
	ctx := With(context.Background(), tr)
	if From(ctx) != tr {
		t.Fatal("With/From did not round-trip the trace")
	}

	sp := Start(ctx, "simulate", "workload", "Sort")
	time.Sleep(time.Millisecond)
	sp.End("source", "live")
	Event(ctx, "trace.fallback", "reason", "budget")
	tr.SetAttr("status", "200")
	tr.Finish()

	traces := rec.Traces(0)
	if len(traces) != 1 {
		t.Fatalf("recorded %d traces, want 1", len(traces))
	}
	td := traces[0]
	if td.ID != tr.ID() || td.Name != "GET /v1/x" {
		t.Errorf("trace identity = %q %q", td.ID, td.Name)
	}
	if td.Attrs["status"] != "200" {
		t.Errorf("trace attrs = %v, want status=200", td.Attrs)
	}
	if len(td.Spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(td.Spans))
	}
	sim := td.Spans[0]
	if sim.Name != "simulate" || sim.Attrs["workload"] != "Sort" || sim.Attrs["source"] != "live" {
		t.Errorf("span 0 = %+v, want simulate with merged start+end attrs", sim)
	}
	if sim.DurMS <= 0 {
		t.Errorf("span duration %v ms, want > 0", sim.DurMS)
	}
	if ev := td.Spans[1]; ev.Name != "trace.fallback" || ev.DurMS != 0 || ev.Attrs["reason"] != "budget" {
		t.Errorf("event span = %+v", ev)
	}
	if td.DurMS < sim.DurMS {
		t.Errorf("trace dur %v ms < span dur %v ms", td.DurMS, sim.DurMS)
	}
}

// TestFinishSeals: Finish is idempotent, and spans or attrs arriving after
// it (a straggling hedge attempt outliving its request) are dropped rather
// than mutating the already-snapshotted ring entry.
func TestFinishSeals(t *testing.T) {
	rec := NewRecorder(8)
	tr := rec.StartTrace("r", "")
	ctx := With(context.Background(), tr)
	sp := Start(ctx, "early")
	sp.End()
	late := Start(ctx, "straggler")
	tr.Finish()
	tr.Finish()
	late.End()
	tr.SetAttr("after", "finish")
	Event(ctx, "too-late")

	if rec.Total() != 1 {
		t.Fatalf("double Finish recorded %d traces, want 1", rec.Total())
	}
	td := rec.Traces(0)[0]
	if len(td.Spans) != 1 || td.Spans[0].Name != "early" {
		t.Errorf("sealed trace spans = %+v, want just [early]", td.Spans)
	}
	if len(td.Attrs) != 0 {
		t.Errorf("sealed trace attrs = %v, want none", td.Attrs)
	}
}

// TestIDAdoption pins header propagation at the Recorder level: a valid
// inbound ID is adopted verbatim; empty or hostile IDs are replaced with a
// fresh generated one.
func TestIDAdoption(t *testing.T) {
	rec := NewRecorder(8)
	if got := rec.StartTrace("r", "e2e0123456789abc").ID(); got != "e2e0123456789abc" {
		t.Errorf("valid inbound ID not adopted: got %q", got)
	}
	for _, bad := range []string{"", "has space", "quote\"", strings.Repeat("a", 65), "ünïcode"} {
		got := rec.StartTrace("r", bad).ID()
		if got == bad || !ValidID(got) {
			t.Errorf("StartTrace(%q) ID = %q, want a fresh valid ID", bad, got)
		}
	}
	a, b := NewID(), NewID()
	if len(a) != 16 || !ValidID(a) {
		t.Errorf("NewID() = %q, want 16 valid chars", a)
	}
	if a == b {
		t.Errorf("two NewID() calls collided: %q", a)
	}
}

func TestValidID(t *testing.T) {
	for id, want := range map[string]bool{
		"abc123":                true,
		"A-Z_09":                true,
		strings.Repeat("a", 64): true,
		"":                      false,
		strings.Repeat("a", 65): false,
		"with space":            false,
		"semi;colon":            false,
		"new\nline":             false,
	} {
		if got := ValidID(id); got != want {
			t.Errorf("ValidID(%q) = %v, want %v", id, got, want)
		}
	}
}

// TestRingWrap fills a small ring past capacity and checks eviction order:
// oldest traces fall out, Traces walks newest-first, Total keeps counting.
func TestRingWrap(t *testing.T) {
	rec := NewRecorder(4)
	for i := 0; i < 7; i++ {
		rec.record(TraceData{ID: fmt.Sprintf("t%d", i)})
	}
	if rec.Total() != 7 {
		t.Errorf("Total = %d, want 7", rec.Total())
	}
	var got []string
	for _, td := range rec.Traces(0) {
		got = append(got, td.ID)
	}
	want := []string{"t6", "t5", "t4", "t3"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("ring after wrap = %v, want %v (newest first, oldest evicted)", got, want)
	}
}

// TestTracesMinFilter: the duration floor keeps only traces at least that
// slow, preserving newest-first order.
func TestTracesMinFilter(t *testing.T) {
	rec := NewRecorder(8)
	rec.record(TraceData{ID: "fast", DurMS: 1})
	rec.record(TraceData{ID: "mid", DurMS: 5})
	rec.record(TraceData{ID: "slow", DurMS: 50})
	var got []string
	for _, td := range rec.Traces(4 * time.Millisecond) {
		got = append(got, td.ID)
	}
	if fmt.Sprint(got) != fmt.Sprint([]string{"slow", "mid"}) {
		t.Errorf("Traces(4ms) = %v, want [slow mid]", got)
	}
	if n := len(rec.Traces(time.Second)); n != 0 {
		t.Errorf("Traces(1s) = %d entries, want 0", n)
	}
}

// TestConcurrentSpans hammers one trace from many goroutines (the shape of
// a dispatched request fanning across retry/hedge goroutines) and must be
// clean under -race; every span lands exactly once.
func TestConcurrentSpans(t *testing.T) {
	const workers, perWorker = 8, 50
	rec := NewRecorder(8)
	tr := rec.StartTrace("fanout", "")
	ctx := With(context.Background(), tr)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sp := Start(ctx, "phase", "worker", fmt.Sprint(w))
				sp.End()
				Event(ctx, "event")
				tr.SetAttr(fmt.Sprintf("w%d", w), fmt.Sprint(i))
			}
		}(w)
	}
	wg.Wait()
	tr.Finish()
	td := rec.Traces(0)[0]
	if want := workers * perWorker * 2; len(td.Spans) != want {
		t.Errorf("concurrent writers recorded %d spans, want %d", len(td.Spans), want)
	}
	if len(td.Attrs) != workers {
		t.Errorf("trace attrs = %d keys, want %d", len(td.Attrs), workers)
	}
}

// TestConcurrentRecorder: many goroutines finishing whole traces into one
// ring concurrently; the ring stays consistent and Total exact.
func TestConcurrentRecorder(t *testing.T) {
	const workers, perWorker = 8, 100
	rec := NewRecorder(16)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tr := rec.StartTrace("r", "")
				Start(With(context.Background(), tr), "p").End()
				tr.Finish()
			}
		}()
	}
	wg.Wait()
	if rec.Total() != workers*perWorker {
		t.Errorf("Total = %d, want %d", rec.Total(), workers*perWorker)
	}
	if n := len(rec.Traces(0)); n != 16 {
		t.Errorf("retained %d traces, want full ring of 16", n)
	}
}

// TestTracesHandler drives GET /debug/traces end to end: JSON shape,
// newest-first order, the ?min_ms= floor, the ?limit= cap, and 400s on
// malformed parameters.
func TestTracesHandler(t *testing.T) {
	rec := NewRecorder(8)
	rec.record(TraceData{ID: "fast", DurMS: 1})
	rec.record(TraceData{ID: "slow", DurMS: 100})
	h := TracesHandler(rec)

	get := func(query string) (int, struct {
		Total  int64       `json:"total"`
		Traces []TraceData `json:"traces"`
	}) {
		t.Helper()
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("GET", "/debug/traces"+query, nil))
		var doc struct {
			Total  int64       `json:"total"`
			Traces []TraceData `json:"traces"`
		}
		if w.Code == 200 {
			if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil {
				t.Fatalf("GET %s: bad JSON: %v\n%s", query, err, w.Body)
			}
		}
		return w.Code, doc
	}

	code, doc := get("")
	if code != 200 || doc.Total != 2 || len(doc.Traces) != 2 || doc.Traces[0].ID != "slow" {
		t.Errorf("plain dump: code=%d total=%d traces=%+v", code, doc.Total, doc.Traces)
	}
	if code, doc := get("?min_ms=50"); code != 200 || len(doc.Traces) != 1 || doc.Traces[0].ID != "slow" {
		t.Errorf("?min_ms=50 should keep only the slow trace, got %+v", doc.Traces)
	}
	if code, doc := get("?limit=1"); code != 200 || len(doc.Traces) != 1 || doc.Total != 2 {
		t.Errorf("?limit=1: code=%d total=%d len=%d", code, doc.Total, len(doc.Traces))
	}
	for _, bad := range []string{"?min_ms=nope", "?min_ms=-1", "?limit=0", "?limit=x"} {
		if code, _ := get(bad); code != 400 {
			t.Errorf("GET %s = %d, want 400", bad, code)
		}
	}
}

// TestOnSpan pins the observer contract: every span start arrives with
// End=false, every recorded span (End and Event alike) with End=true and
// the merged attributes, and span ends after Finish notify nothing.
func TestOnSpan(t *testing.T) {
	rec := NewRecorder(4)
	tr := rec.StartTrace("job", "")
	var mu sync.Mutex
	var got []SpanEvent
	tr.OnSpan(func(ev SpanEvent) {
		mu.Lock()
		// Attrs are shared with the span; copy what the assertion needs.
		got = append(got, SpanEvent{Name: ev.Name, Attrs: Attrs{"shed": ev.Attrs["shed"]}, End: ev.End})
		mu.Unlock()
	})
	ctx := With(context.Background(), tr)

	sp := Start(ctx, "admission", "shed", "maybe")
	sp.End("shed", "false")
	Event(ctx, "note")
	tr.Finish()
	// After Finish the span is dropped, so its End notifies nothing; the
	// open still does (harmless for observers whose terminal states latch).
	Start(ctx, "late").End()

	want := []SpanEvent{
		{Name: "admission", Attrs: Attrs{"shed": "maybe"}, End: false},
		{Name: "admission", Attrs: Attrs{"shed": "false"}, End: true},
		{Name: "note", Attrs: Attrs{"shed": ""}, End: true},
		{Name: "late", Attrs: Attrs{"shed": ""}, End: false},
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != len(want) {
		t.Fatalf("observer saw %d events %+v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i].Name != want[i].Name || got[i].End != want[i].End || got[i].Attrs["shed"] != want[i].Attrs["shed"] {
			t.Errorf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}
