package tenant

import (
	"context"
	"encoding/json"
	"log/slog"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func quietLog() *slog.Logger {
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelError}))
}

// writeKeys writes a keys file and returns its path.
func writeKeys(t *testing.T, dir string, keys ...KeyConfig) string {
	t.Helper()
	path := filepath.Join(dir, "keys.json")
	data, err := json.Marshal(keysFile{Keys: keys})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestValidID(t *testing.T) {
	for id, want := range map[string]bool{
		"alice": true, "a-b_C9": true, "": false, "a b": false,
		"x/y": false, "ok": true,
	} {
		if got := ValidID(id); got != want {
			t.Errorf("ValidID(%q) = %v, want %v", id, got, want)
		}
	}
	long := make([]byte, maxIDLen+1)
	for i := range long {
		long[i] = 'a'
	}
	if ValidID(string(long)) {
		t.Error("ValidID accepted an over-long id")
	}
	if !ValidID(string(long[:maxIDLen])) {
		t.Error("ValidID refused a max-length id")
	}
}

func TestAuthenticate(t *testing.T) {
	dir := t.TempDir()
	path := writeKeys(t, dir,
		KeyConfig{ID: "alice", Secret: "alice-secret"},
		KeyConfig{ID: "bob", Secret: "bob-secret", Disabled: true},
	)
	reg, err := Open(path, quietLog())
	if err != nil {
		t.Fatal(err)
	}
	if !reg.Enabled() {
		t.Fatal("registry with a keys file should be enabled")
	}

	cases := []struct {
		name, header, value string
		wantTenant          string
		wantErr             error
	}{
		{"bearer ok", "Authorization", "Bearer alice-secret", "alice", nil},
		{"api key header ok", "X-Dcs-Api-Key", "alice-secret", "alice", nil},
		{"missing", "", "", "", ErrNoKey},
		{"wrong secret", "Authorization", "Bearer nope", "", ErrBadKey},
		{"revoked key", "Authorization", "Bearer bob-secret", "", ErrBadKey},
		{"non-bearer scheme", "Authorization", "Basic alice-secret", "", ErrNoKey},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest("GET", "/v1/workloads", nil)
			if tc.header != "" {
				req.Header.Set(tc.header, tc.value)
			}
			tn, err := reg.Authenticate(req)
			if err != tc.wantErr {
				t.Fatalf("err = %v, want %v", err, tc.wantErr)
			}
			if tn.ID() != tc.wantTenant {
				t.Fatalf("tenant = %q, want %q", tn.ID(), tc.wantTenant)
			}
		})
	}
}

func TestBucketRefill(t *testing.T) {
	// A fake clock drives the bucket deterministically: 2 req/s, burst 2.
	now := time.Unix(1000, 0)
	tn := newTenant("alice")
	tn.SetLimits(Limits{RatePerSec: 2, Burst: 2})

	steps := []struct {
		advance time.Duration
		want    bool
	}{
		{0, true},                       // burst token 1
		{0, true},                       // burst token 2
		{0, false},                      // bucket dry
		{250 * time.Millisecond, false}, // 0.5 tokens — still short
		{250 * time.Millisecond, true},  // refilled to 1
		{0, false},                      // spent again
		{5 * time.Second, true},         // long idle refills to burst, not beyond
		{0, true},
		{0, false}, // ...so exactly burst(2) tokens accumulated
	}
	for i, st := range steps {
		now = now.Add(st.advance)
		ok, retry := tn.Allow(now)
		if ok != st.want {
			t.Fatalf("step %d: Allow = %v, want %v", i, ok, st.want)
		}
		if !ok && st.want == false && retry <= 0 {
			t.Fatalf("step %d: rate denial should carry a positive retryAfter, got %v", i, retry)
		}
	}
	u := tn.Usage()
	if u.Requests != 5 || u.RateLimited != 4 {
		t.Fatalf("usage = %+v, want 5 requests / 4 rate_limited", u)
	}
}

func TestRequestQuota(t *testing.T) {
	now := time.Unix(1000, 0)
	tn := newTenant("alice")
	tn.SetLimits(Limits{MaxRequests: 2})
	for i := 0; i < 2; i++ {
		if ok, _ := tn.Allow(now); !ok {
			t.Fatalf("request %d should pass", i)
		}
	}
	ok, retry := tn.Allow(now)
	if ok {
		t.Fatal("third request should exceed MaxRequests")
	}
	if retry != 0 {
		t.Fatalf("a spent cumulative quota has no retry horizon, got %v", retry)
	}
	if u := tn.Usage(); u.QuotaDenied != 1 {
		t.Fatalf("usage = %+v, want 1 quota_denied", u)
	}
}

func TestJobQuotas(t *testing.T) {
	tn := newTenant("alice")
	tn.SetLimits(Limits{MaxJobs: map[string]int64{"counters": 1}, MaxInstructions: 100})
	if !tn.CheckJob("counters", 60) {
		t.Fatal("first counters job should fit")
	}
	tn.ChargeJob("counters", 60)
	if tn.CheckJob("counters", 10) {
		t.Fatal("second counters job should exceed MaxJobs")
	}
	// Cluster jobs are not capped by kind, but instructions still are.
	if !tn.CheckJob("cluster", 40) {
		t.Fatal("cluster job within the instruction budget should fit")
	}
	if tn.CheckJob("cluster", 41) {
		t.Fatal("41 more instructions should exceed MaxInstructions=100 after 60 spent")
	}
	u := tn.Usage()
	if u.Jobs["counters"] != 1 || u.Instructions != 60 || u.QuotaDenied != 2 {
		t.Fatalf("usage = %+v", u)
	}
}

func TestNilTenantIsNoOp(t *testing.T) {
	var tn *Tenant
	if ok, _ := tn.Allow(time.Now()); !ok {
		t.Fatal("nil tenant must allow")
	}
	if !tn.CheckJob("counters", 1e9) {
		t.Fatal("nil tenant must pass job checks")
	}
	tn.ChargeJob("counters", 1)
	tn.ChargeRequest()
	if tn.ID() != "" {
		t.Fatal("nil tenant id must be empty")
	}
	ctx := With(context.Background(), nil)
	if From(ctx) != nil || IDFrom(ctx) != "" {
		t.Fatal("nil tenant must not ride the context")
	}
}

func TestContextRoundTrip(t *testing.T) {
	tn := newTenant("alice")
	ctx := With(context.Background(), tn)
	if From(ctx) != tn || IDFrom(ctx) != "alice" {
		t.Fatal("tenant should round-trip through the context")
	}
}

func TestReloadPreservesUsage(t *testing.T) {
	dir := t.TempDir()
	path := writeKeys(t, dir, KeyConfig{ID: "alice", Secret: "s1"})
	reg, err := Open(path, quietLog())
	if err != nil {
		t.Fatal(err)
	}
	alice, _ := reg.Lookup("alice")
	alice.ChargeRequest()
	alice.ChargeRequest()

	// Rotate alice's secret, revoke nothing, add carol, drop nobody.
	writeKeys(t, dir, KeyConfig{ID: "alice", Secret: "s2"}, KeyConfig{ID: "carol", Secret: "s3"})
	if err := reg.Reload(); err != nil {
		t.Fatal(err)
	}

	req := httptest.NewRequest("GET", "/", nil)
	req.Header.Set("Authorization", "Bearer s1")
	if _, err := reg.Authenticate(req); err != ErrBadKey {
		t.Fatalf("old secret should stop authenticating, got %v", err)
	}
	req.Header.Set("Authorization", "Bearer s2")
	tn, err := reg.Authenticate(req)
	if err != nil || tn.ID() != "alice" {
		t.Fatalf("rotated secret: tenant %q err %v", tn.ID(), err)
	}
	if tn != alice {
		t.Fatal("reload must keep the same tenant object (usage continuity)")
	}
	if u := tn.Usage(); u.Requests != 2 {
		t.Fatalf("usage lost across reload: %+v", u)
	}
	req.Header.Set("Authorization", "Bearer s3")
	if tn, err := reg.Authenticate(req); err != nil || tn.ID() != "carol" {
		t.Fatalf("new key: tenant %q err %v", tn.ID(), err)
	}
}

func TestReloadDropsVanishedKeys(t *testing.T) {
	dir := t.TempDir()
	path := writeKeys(t, dir,
		KeyConfig{ID: "alice", Secret: "s1"}, KeyConfig{ID: "bob", Secret: "s2"})
	reg, err := Open(path, quietLog())
	if err != nil {
		t.Fatal(err)
	}
	writeKeys(t, dir, KeyConfig{ID: "alice", Secret: "s1"})
	if err := reg.Reload(); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("GET", "/", nil)
	req.Header.Set("Authorization", "Bearer s2")
	if _, err := reg.Authenticate(req); err != ErrBadKey {
		t.Fatalf("vanished key should stop authenticating, got %v", err)
	}
	// Bob's usage history is still reportable (attribution-only now).
	snaps := reg.Snapshots()
	ids := map[string]Snapshot{}
	for _, s := range snaps {
		ids[s.ID] = s
	}
	if s, ok := ids["bob"]; !ok || s.Keyed {
		t.Fatalf("bob should survive as attribution-only, got %+v", snaps)
	}
}

func TestMtimeReload(t *testing.T) {
	dir := t.TempDir()
	path := writeKeys(t, dir, KeyConfig{ID: "alice", Secret: "s1"})
	reg, err := Open(path, quietLog())
	if err != nil {
		t.Fatal(err)
	}
	// A fake clock jumps past the poll interval; the rewritten file must
	// be picked up on the next Authenticate without SIGHUP or Reload.
	now := time.Now()
	reg.SetClock(func() time.Time { return now })
	writeKeys(t, dir, KeyConfig{ID: "alice", Secret: "s2"})
	// Ensure the file's mtime moved even on coarse filesystems.
	future := time.Now().Add(2 * time.Second)
	os.Chtimes(path, future, future)
	now = now.Add(2 * reloadPoll)

	req := httptest.NewRequest("GET", "/", nil)
	req.Header.Set("Authorization", "Bearer s2")
	tn, err := reg.Authenticate(req)
	if err != nil || tn.ID() != "alice" {
		t.Fatalf("mtime reload should pick up the new secret: tenant %q err %v", tn.ID(), err)
	}
}

func TestBadReloadKeepsOldKeys(t *testing.T) {
	dir := t.TempDir()
	path := writeKeys(t, dir, KeyConfig{ID: "alice", Secret: "s1"})
	reg, err := Open(path, quietLog())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("{not json"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := reg.Reload(); err == nil {
		t.Fatal("reloading a corrupt file should error")
	}
	req := httptest.NewRequest("GET", "/", nil)
	req.Header.Set("Authorization", "Bearer s1")
	if _, err := reg.Authenticate(req); err != nil {
		t.Fatalf("old keys must stay in force after a bad reload, got %v", err)
	}
}

func TestAttribute(t *testing.T) {
	reg := NewRegistry(quietLog())
	if reg.Enabled() {
		t.Fatal("registry without a keys file must not enable auth")
	}
	tn := reg.Attribute("alice")
	if tn == nil || tn.ID() != "alice" {
		t.Fatal("Attribute should create the tenant")
	}
	if reg.Attribute("alice") != tn {
		t.Fatal("Attribute should return the same tenant")
	}
	if reg.Attribute("not a valid id!") != nil {
		t.Fatal("invalid ids must not be attributed")
	}
	tn.ChargeJob("counters", 42)
	snaps := reg.Snapshots()
	if len(snaps) != 1 || snaps[0].Keyed || snaps[0].Usage.Jobs["counters"] != 1 {
		t.Fatalf("snapshot = %+v", snaps)
	}
}

func TestCreateRevokeAndPersist(t *testing.T) {
	dir := t.TempDir()
	path := writeKeys(t, dir, KeyConfig{ID: "alice", Secret: "s1"})
	reg, err := Open(path, quietLog())
	if err != nil {
		t.Fatal(err)
	}
	created, err := reg.CreateKey(KeyConfig{ID: "bob", Limits: Limits{RatePerSec: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if created.Secret == "" {
		t.Fatal("CreateKey should generate a secret")
	}
	if _, err := reg.CreateKey(KeyConfig{ID: "bob"}); err == nil {
		t.Fatal("re-creating an existing key must be refused")
	}
	req := httptest.NewRequest("GET", "/", nil)
	req.Header.Set("Authorization", "Bearer "+created.Secret)
	if tn, err := reg.Authenticate(req); err != nil || tn.ID() != "bob" {
		t.Fatalf("minted key should authenticate: %q %v", tn.ID(), err)
	}
	if err := reg.RevokeKey("bob"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Authenticate(req); err != ErrBadKey {
		t.Fatalf("revoked key should stop authenticating, got %v", err)
	}
	if err := reg.SetKeyLimits("alice", Limits{MaxRequests: 7}); err != nil {
		t.Fatal(err)
	}

	// Everything above must be durable: a fresh registry over the same
	// file sees the created (revoked) bob and alice's new limits.
	reg2, err := Open(path, quietLog())
	if err != nil {
		t.Fatal(err)
	}
	alice, ok := reg2.Lookup("alice")
	if !ok || alice.Limits().MaxRequests != 7 {
		t.Fatalf("persisted limits lost: %+v", alice.Limits())
	}
	bob, ok := reg2.Lookup("bob")
	if !ok || !bob.Snapshot().Disabled {
		t.Fatal("persisted revocation lost")
	}
}

func TestOpenErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(filepath.Join(dir, "missing.json"), quietLog()); err == nil {
		t.Fatal("missing keys file must fail Open")
	}
	path := writeKeys(t, dir, KeyConfig{ID: "alice", Secret: ""})
	if _, err := Open(path, quietLog()); err == nil {
		t.Fatal("empty secret must fail validation")
	}
	path = writeKeys(t, dir, KeyConfig{ID: "a", Secret: "x"}, KeyConfig{ID: "a", Secret: "y"})
	if _, err := Open(path, quietLog()); err == nil {
		t.Fatal("duplicate ids must fail validation")
	}
}
