package tenant

import (
	"context"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// KeyConfig is one entry of the keys file: the durable form of a
// tenant's key. The file is JSON on purpose — ops edit it by hand, the
// admin plane rewrites it atomically, and both produce the same bytes:
//
//	{
//	  "keys": [
//	    {"id": "alice", "secret": "dck_...", "limits": {"rate_per_sec": 50}},
//	    {"id": "bob", "secret": "dck_...", "disabled": true}
//	  ]
//	}
type KeyConfig struct {
	ID     string `json:"id"`
	Secret string `json:"secret"`
	// Disabled revokes the key without deleting the entry: the tenant's
	// usage history survives for the admin report, but the secret stops
	// authenticating.
	Disabled bool   `json:"disabled,omitempty"`
	Limits   Limits `json:"limits,omitempty"`
}

// keysFile is the on-disk shape.
type keysFile struct {
	Keys []KeyConfig `json:"keys"`
}

// reloadPoll is how often Authenticate is willing to stat the keys file:
// a hot-path request never waits on more than one Stat every poll
// interval, and a hand-edited file is live within it (SIGHUP is
// immediate).
const reloadPoll = 2 * time.Second

// maxTenants bounds the attribution table: hostile or garbage
// X-Dcs-Tenant headers must not grow per-tenant state without bound.
// Keyed tenants (from the file) are exempt — the file is the bound.
const maxTenants = 4096

// secretBytes sizes generated secrets (hex-encoded, so twice this many
// characters on the wire).
const secretBytes = 24

// Authentication errors. Both map to 401 unauthorized at the HTTP layer;
// the split exists for logs and tests, not for the wire — a prober must
// not learn whether a key exists.
var (
	ErrNoKey  = errors.New("missing API key (Authorization: Bearer or X-Dcs-Api-Key)")
	ErrBadKey = errors.New("unknown or revoked API key")
)

// Registry is the tenant table: the keyed tenants loaded from a keys
// file plus attribution-only tenants created for forwarded ids. Safe for
// concurrent use.
type Registry struct {
	log *slog.Logger
	now func() time.Time

	// enabled mirrors "a keys file is configured" for the request hot
	// path: one atomic load decides whether auth applies at all.
	enabled atomic.Bool

	mu        sync.Mutex
	path      string
	tenants   map[string]*Tenant
	order     []string // stable iteration for constant-time auth and sorted reports
	mtime     time.Time
	checkedAt time.Time
}

// NewRegistry returns an attribution-only registry: no keys file, auth
// disabled, but forwarded tenant ids still accumulate per-tenant usage
// (the worker side of the dispatch hop).
func NewRegistry(log *slog.Logger) *Registry {
	if log == nil {
		log = slog.Default()
	}
	return &Registry{log: log, now: time.Now, tenants: make(map[string]*Tenant)}
}

// Open loads the keys file at path and returns a Registry enforcing it.
// The file must exist and parse — a typo in the auth config must fail
// the boot loudly, not silently run an open server.
func Open(path string, log *slog.Logger) (*Registry, error) {
	r := NewRegistry(log)
	r.path = path
	cfgs, mtime, err := readKeysFile(path)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.applyLocked(cfgs)
	r.mtime = mtime
	r.checkedAt = r.now()
	r.mu.Unlock()
	r.enabled.Store(true)
	return r, nil
}

// SetClock overrides the registry's time source — tests drive bucket
// refill and reload polling with a fake clock.
func (r *Registry) SetClock(now func() time.Time) { r.now = now }

// Enabled reports whether API-key auth is on (a keys file is loaded).
func (r *Registry) Enabled() bool { return r.enabled.Load() }

// readKeysFile parses and validates one keys file.
func readKeysFile(path string) ([]KeyConfig, time.Time, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, time.Time{}, fmt.Errorf("keys file: %w", err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		return nil, time.Time{}, fmt.Errorf("keys file: %w", err)
	}
	var kf keysFile
	if err := json.Unmarshal(data, &kf); err != nil {
		return nil, time.Time{}, fmt.Errorf("keys file %s: %w", path, err)
	}
	seen := make(map[string]bool, len(kf.Keys))
	for _, k := range kf.Keys {
		if !ValidID(k.ID) {
			return nil, time.Time{}, fmt.Errorf("keys file %s: invalid tenant id %q", path, k.ID)
		}
		if k.Secret == "" {
			return nil, time.Time{}, fmt.Errorf("keys file %s: tenant %q has no secret", path, k.ID)
		}
		if seen[k.ID] {
			return nil, time.Time{}, fmt.Errorf("keys file %s: duplicate tenant id %q", path, k.ID)
		}
		seen[k.ID] = true
	}
	return kf.Keys, fi.ModTime(), nil
}

// applyLocked installs a parsed keys file: existing tenants keep their
// accumulated usage (a reload is a config change, not an amnesty), keys
// that vanished from the file stop authenticating.
func (r *Registry) applyLocked(cfgs []KeyConfig) {
	seen := make(map[string]bool, len(cfgs))
	for _, c := range cfgs {
		r.installLocked(c)
		seen[c.ID] = true
	}
	for id, t := range r.tenants {
		if t.isKeyed() && !seen[id] {
			t.clearKey()
		}
	}
}

// installLocked installs one keys-file entry, creating the tenant if it
// does not exist (or upgrading an attribution-only one in place).
func (r *Registry) installLocked(c KeyConfig) {
	t, ok := r.tenants[c.ID]
	if !ok {
		t = newTenant(c.ID)
		r.tenants[c.ID] = t
		r.order = append(r.order, c.ID)
	}
	t.setKey(c.Secret, c.Disabled, c.Limits)
}

// Reload re-reads the keys file now. On a parse error the previous keys
// stay in force — a half-written edit must not lock every tenant out (or
// let everyone in).
func (r *Registry) Reload() error {
	r.mu.Lock()
	path := r.path
	r.mu.Unlock()
	if path == "" {
		return nil
	}
	cfgs, mtime, err := readKeysFile(path)
	if err != nil {
		return err
	}
	r.mu.Lock()
	r.applyLocked(cfgs)
	r.mtime = mtime
	r.checkedAt = r.now()
	r.mu.Unlock()
	r.log.Info("tenant keys reloaded", "path", path, "keys", len(cfgs))
	return nil
}

// maybeReload stats the keys file (at most once per reloadPoll) and
// reloads when its mtime moved — the hands-off half of hot reload;
// WatchSIGHUP is the immediate half.
func (r *Registry) maybeReload() {
	r.mu.Lock()
	path := r.path
	if path == "" || r.now().Sub(r.checkedAt) < reloadPoll {
		r.mu.Unlock()
		return
	}
	r.checkedAt = r.now()
	mtime := r.mtime
	r.mu.Unlock()
	fi, err := os.Stat(path)
	if err != nil || !fi.ModTime().After(mtime) {
		return
	}
	if err := r.Reload(); err != nil {
		r.log.Error("tenant keys reload failed; previous keys stay in force", "path", path, "err", err)
	}
}

// WatchSIGHUP reloads the keys file on SIGHUP until ctx ends — the
// conventional "re-read your config" signal, so key rotation needs no
// restart and no admin-plane round trip.
func (r *Registry) WatchSIGHUP(ctx context.Context) {
	if !r.Enabled() {
		return
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGHUP)
	go func() {
		defer signal.Stop(ch)
		for {
			select {
			case <-ctx.Done():
				return
			case <-ch:
				if err := r.Reload(); err != nil {
					r.log.Error("tenant keys reload failed; previous keys stay in force", "err", err)
				}
			}
		}
	}()
}

// Authenticate resolves the request's API key (Authorization: Bearer
// first, X-Dcs-Api-Key as the curl-friendly fallback) to its tenant.
// The presented secret is digested once and compared against every
// tenant — constant work per tenant regardless of match position,
// disabled state or keyedness, so response timing leaks nothing about
// the key table.
func (r *Registry) Authenticate(req *http.Request) (*Tenant, error) {
	r.maybeReload()
	secret := BearerToken(req)
	if secret == "" {
		return nil, ErrNoKey
	}
	digest := sha256.Sum256([]byte(secret))
	r.mu.Lock()
	list := make([]*Tenant, 0, len(r.order))
	for _, id := range r.order {
		list = append(list, r.tenants[id])
	}
	r.mu.Unlock()
	var found *Tenant
	usable := false
	for _, t := range list {
		if m, u := t.matches(&digest); m && found == nil {
			found, usable = t, u
		}
	}
	if found == nil || !usable {
		return nil, ErrBadKey
	}
	return found, nil
}

// BearerToken extracts a request's presented credential: the
// Authorization: Bearer value, else the X-Dcs-Api-Key header.
func BearerToken(req *http.Request) string {
	if auth := req.Header.Get("Authorization"); auth != "" {
		if tok, ok := strings.CutPrefix(auth, "Bearer "); ok {
			return strings.TrimSpace(tok)
		}
		return ""
	}
	return strings.TrimSpace(req.Header.Get("X-Dcs-Api-Key"))
}

// Attribute returns (creating if needed) the tenant for a forwarded id —
// worker-side accounting for jobs the dispatch hop labelled with
// X-Dcs-Tenant. Invalid ids and table overflow return nil: the work
// still runs, just unattributed.
func (r *Registry) Attribute(id string) *Tenant {
	if !ValidID(id) {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.tenants[id]; ok {
		return t
	}
	if len(r.tenants) >= maxTenants {
		return nil
	}
	t := newTenant(id)
	r.tenants[id] = t
	r.order = append(r.order, id)
	return t
}

// Lookup returns the tenant with this id, if any.
func (r *Registry) Lookup(id string) (*Tenant, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.tenants[id]
	return t, ok
}

// Allow spends one request against t's budget at the registry's clock.
// Nil t always allows.
func (r *Registry) Allow(t *Tenant) (ok bool, retryAfter time.Duration) {
	return t.Allow(r.now())
}

// Snapshots reports every tenant, sorted by id — the /healthz block, the
// admin usage report, and the stable ordering of the dcserved_tenant_*
// metric families.
func (r *Registry) Snapshots() []Snapshot {
	r.mu.Lock()
	list := make([]*Tenant, 0, len(r.order))
	for _, id := range r.order {
		list = append(list, r.tenants[id])
	}
	r.mu.Unlock()
	out := make([]Snapshot, 0, len(list))
	for _, t := range list {
		out = append(out, t.Snapshot())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// CreateKey mints (or re-keys) a tenant through the admin plane and
// persists the keys file. An empty Secret generates one; the returned
// KeyConfig carries it — the only time a secret leaves the registry.
// Creating over an existing keyed tenant is refused (revoke first);
// creating over an attribution-only tenant upgrades it in place, keeping
// its usage.
func (r *Registry) CreateKey(cfg KeyConfig) (KeyConfig, error) {
	if !ValidID(cfg.ID) {
		return KeyConfig{}, fmt.Errorf("invalid tenant id %q", cfg.ID)
	}
	if cfg.Secret == "" {
		buf := make([]byte, secretBytes)
		if _, err := rand.Read(buf); err != nil {
			return KeyConfig{}, err
		}
		cfg.Secret = "dck_" + hex.EncodeToString(buf)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.path == "" {
		return KeyConfig{}, errors.New("no keys file configured (-keys-file)")
	}
	if t, ok := r.tenants[cfg.ID]; ok && t.isKeyed() {
		return KeyConfig{}, fmt.Errorf("tenant %q already has a key", cfg.ID)
	}
	r.installLocked(cfg)
	if err := r.persistLocked(); err != nil {
		return KeyConfig{}, err
	}
	return cfg, nil
}

// RevokeKey disables a tenant's key and persists. The entry stays in the
// file (usage history survives); re-enabling is an edit or re-create.
func (r *Registry) RevokeKey(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.tenants[id]
	if !ok || !t.isKeyed() {
		return fmt.Errorf("no key for tenant %q", id)
	}
	t.mu.Lock()
	t.disabled = true
	t.mu.Unlock()
	return r.persistLocked()
}

// SetKeyLimits replaces a keyed tenant's limits and persists.
func (r *Registry) SetKeyLimits(id string, l Limits) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.tenants[id]
	if !ok || !t.isKeyed() {
		return fmt.Errorf("no key for tenant %q", id)
	}
	t.SetLimits(l)
	return r.persistLocked()
}

// persistLocked rewrites the keys file from the keyed tenants, atomically
// and durably (temp file + fsync + rename + directory fsync, the store's
// own durability idiom — a rename alone survives a crash of the process
// but not necessarily of the machine), and adopts the new mtime so the
// poll loop does not immediately re-read our own write.
func (r *Registry) persistLocked() error {
	if r.path == "" {
		return errors.New("no keys file configured (-keys-file)")
	}
	var kf keysFile
	for _, id := range r.order {
		if cfg, ok := r.tenants[id].keyConfig(); ok {
			kf.Keys = append(kf.Keys, cfg)
		}
	}
	sort.Slice(kf.Keys, func(i, j int) bool { return kf.Keys[i].ID < kf.Keys[j].ID })
	data, err := json.MarshalIndent(kf, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	dir := filepath.Dir(r.path)
	tmp, err := os.CreateTemp(dir, ".keys-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o600); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), r.path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	// Best-effort directory sync so the rename itself is on disk; some
	// filesystems refuse to sync directories, which is not worth failing a
	// successfully persisted mutation over.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	if fi, err := os.Stat(r.path); err == nil {
		r.mtime = fi.ModTime()
	}
	return nil
}
