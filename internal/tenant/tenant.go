// Package tenant is the identity layer of the multi-tenant front door:
// API keys, per-tenant token-bucket rate limits, cumulative quotas, and
// the usage accounting the admin plane reports.
//
// The capacity controls built in PRs 5–8 (admission, adaptive
// Retry-After, shed-or-join, async jobs) treat every caller as the same
// anonymous crowd; this package names them. A Registry loads API keys
// from a JSON keys file (hot-reloaded on SIGHUP or mtime change),
// authenticates requests by constant-time digest comparison, and tracks
// one Tenant per key — plus attribution-only tenants for work that
// arrives over the dispatch hop already labelled with the originating
// tenant's id (the X-Dcs-Tenant header, riding beside X-Dcs-Trace).
//
// Two different 429s come out of this layer's accounting, and keeping
// them distinguishable is the point: "you are over YOUR budget"
// (error code quota_exceeded, from a tenant's rate or quota limits) is
// actionable by the caller alone, while "the worker is saturated"
// (error code overloaded, from -max-inflight admission) is actionable
// only by retrying elsewhere or later. The serve layer maps this
// package's denials to the former and its own admission sheds to the
// latter.
//
// Everything here is nil-safe the way internal/obs is: a nil *Tenant
// (anonymous traffic with auth disabled) makes every method a cheap
// no-op, so call sites need no guards and the auth-off request path
// stays at today's cost.
package tenant

import (
	"context"
	"crypto/sha256"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Header carries a tenant id between processes, the identity analogue of
// obs.TraceHeader: a front-end dispatching a tenant's job stamps it on
// the worker request, so worker-side admission and job registries
// attribute the work to the originating tenant rather than to the
// front-end's own service key.
const Header = "X-Dcs-Tenant"

// maxIDLen bounds a tenant id, same rationale as trace ids: anything
// longer (or outside the alphabet) is refused rather than stored and
// re-emitted.
const maxIDLen = 64

// ValidID reports whether id is usable as a tenant identifier: 1..64
// bytes of [A-Za-z0-9_-], the same alphabet as trace ids, so ids are
// safe in URLs, metric labels and log lines without quoting.
func ValidID(id string) bool {
	if id == "" || len(id) > maxIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// Limits are one tenant's admission budget. The zero value of every
// field means "unlimited" — a keys file that names only ids and secrets
// authenticates without constraining, and limits can be tightened later
// through the admin plane without re-issuing keys.
type Limits struct {
	// RatePerSec refills the tenant's token bucket: sustained requests
	// per second across every endpoint. 0 = no rate limit.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Burst is the bucket depth — how far above the sustained rate a
	// tenant may spike. 0 with a positive rate defaults to
	// max(1, ceil(rate)).
	Burst int `json:"burst,omitempty"`
	// MaxRequests is a cumulative request quota (lifetime of the
	// process, or until an admin resets usage by re-creating the key).
	MaxRequests int64 `json:"max_requests,omitempty"`
	// MaxJobs caps cumulative compute jobs by kind ("counters",
	// "cluster"). Kinds absent from the map are unlimited.
	MaxJobs map[string]int64 `json:"max_jobs,omitempty"`
	// MaxInstructions caps cumulative simulated instructions across the
	// tenant's counters jobs — the actual cost unit of this service.
	MaxInstructions int64 `json:"max_instructions,omitempty"`
}

// Usage is one tenant's cumulative consumption, the admin plane's
// reporting unit and the source of the dcserved_tenant_* metric
// families.
type Usage struct {
	Requests     int64            `json:"requests"`
	RateLimited  int64            `json:"rate_limited"`
	QuotaDenied  int64            `json:"quota_denied"`
	Jobs         map[string]int64 `json:"jobs,omitempty"`
	Instructions int64            `json:"instructions"`
}

// Snapshot is one tenant's externally visible state: what /healthz
// embeds per tenant and GET /admin/v1/usage reports. Secrets never
// appear in snapshots.
type Snapshot struct {
	ID string `json:"id"`
	// Keyed distinguishes tenants backed by an API key from
	// attribution-only tenants (work labelled via the dispatch hop's
	// X-Dcs-Tenant header on a server without that key).
	Keyed    bool   `json:"keyed"`
	Disabled bool   `json:"disabled,omitempty"`
	Limits   Limits `json:"limits"`
	Usage    Usage  `json:"usage"`
}

// Tenant is one identified caller: the runtime state behind an API key,
// or an attribution-only label for dispatched work. Create through a
// Registry; all methods are safe for concurrent use and nil-safe.
type Tenant struct {
	id string

	// mu guards the key material, limits and bucket state. Usage
	// counters are atomics so charging never contends with
	// authentication.
	mu       sync.Mutex
	keyed    bool
	disabled bool
	secret   string // retained to persist the keys file; compared only by digest
	digest   [sha256.Size]byte
	tokens   float64
	last     time.Time

	requests     atomic.Int64
	rateLimited  atomic.Int64
	quotaDenied  atomic.Int64
	instructions atomic.Int64
	limits       atomic.Pointer[Limits]

	jobsMu sync.Mutex
	jobs   map[string]int64
}

func newTenant(id string) *Tenant {
	t := &Tenant{id: id}
	t.limits.Store(&Limits{})
	return t
}

// ID returns the tenant's identifier ("" for nil — anonymous).
func (t *Tenant) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Limits returns the tenant's current limits (zero value for nil).
func (t *Tenant) Limits() Limits {
	if t == nil {
		return Limits{}
	}
	return *t.limits.Load()
}

// SetLimits replaces the tenant's limits. The bucket is reset to the new
// burst so a loosened limit takes effect immediately.
func (t *Tenant) SetLimits(l Limits) {
	if t == nil {
		return
	}
	t.limits.Store(&l)
	t.mu.Lock()
	t.tokens = float64(burstOf(l))
	t.mu.Unlock()
}

// burstOf resolves a Limits' effective bucket depth.
func burstOf(l Limits) int {
	if l.Burst > 0 {
		return l.Burst
	}
	if l.RatePerSec <= 0 {
		return 0
	}
	b := int(l.RatePerSec)
	if float64(b) < l.RatePerSec {
		b++
	}
	if b < 1 {
		b = 1
	}
	return b
}

// Allow spends one request against the tenant's budget at time now: the
// cumulative request quota first, then the token bucket. A granted
// request is charged; a denied one increments the matching denial
// counter instead. retryAfter is positive only for rate denials — a
// bucket refills on a known schedule, a spent cumulative quota does not.
// A nil tenant always allows (anonymous traffic, auth off).
func (t *Tenant) Allow(now time.Time) (ok bool, retryAfter time.Duration) {
	if t == nil {
		return true, 0
	}
	l := t.limits.Load()
	if l.MaxRequests > 0 && t.requests.Load() >= l.MaxRequests {
		t.quotaDenied.Add(1)
		return false, 0
	}
	if l.RatePerSec > 0 {
		burst := float64(burstOf(*l))
		t.mu.Lock()
		if t.last.IsZero() {
			// First sighting: a full bucket, so a fresh tenant can burst.
			t.tokens = burst
		} else if dt := now.Sub(t.last).Seconds(); dt > 0 {
			t.tokens += dt * l.RatePerSec
			if t.tokens > burst {
				t.tokens = burst
			}
		}
		t.last = now
		if t.tokens < 1 {
			need := (1 - t.tokens) / l.RatePerSec
			t.mu.Unlock()
			t.rateLimited.Add(1)
			return false, time.Duration(need * float64(time.Second))
		}
		t.tokens--
		t.mu.Unlock()
	}
	t.requests.Add(1)
	return true, 0
}

// ChargeRequest counts one request against the tenant without enforcing
// limits — how the originating tenant's usage is attributed when the
// enforcement already happened under a different identity (a keyed
// front-end forwarding a tenant's job to a keyed worker).
func (t *Tenant) ChargeRequest() {
	if t == nil {
		return
	}
	t.requests.Add(1)
}

// CheckJob reports whether one more job of this kind, costing instrs
// simulated instructions, fits the tenant's cumulative job quotas. A
// refusal is counted as a quota denial. Nil allows.
func (t *Tenant) CheckJob(kind string, instrs int64) bool {
	if t == nil {
		return true
	}
	l := t.limits.Load()
	if max, capped := l.MaxJobs[kind]; capped && max > 0 {
		t.jobsMu.Lock()
		done := t.jobs[kind]
		t.jobsMu.Unlock()
		if done >= max {
			t.quotaDenied.Add(1)
			return false
		}
	}
	if l.MaxInstructions > 0 && t.instructions.Load()+instrs > l.MaxInstructions {
		t.quotaDenied.Add(1)
		return false
	}
	return true
}

// ChargeJob records one executed job of this kind and its instruction
// cost. Charged on execution, not admission: a shed or failed job costs
// the cluster nothing lasting, so it costs the tenant nothing either.
func (t *Tenant) ChargeJob(kind string, instrs int64) {
	if t == nil {
		return
	}
	t.jobsMu.Lock()
	if t.jobs == nil {
		t.jobs = make(map[string]int64)
	}
	t.jobs[kind]++
	t.jobsMu.Unlock()
	if instrs > 0 {
		t.instructions.Add(instrs)
	}
}

// Usage snapshots the tenant's cumulative consumption (zero for nil).
func (t *Tenant) Usage() Usage {
	if t == nil {
		return Usage{}
	}
	u := Usage{
		Requests:     t.requests.Load(),
		RateLimited:  t.rateLimited.Load(),
		QuotaDenied:  t.quotaDenied.Load(),
		Instructions: t.instructions.Load(),
	}
	t.jobsMu.Lock()
	if len(t.jobs) > 0 {
		u.Jobs = make(map[string]int64, len(t.jobs))
		for k, v := range t.jobs {
			u.Jobs[k] = v
		}
	}
	t.jobsMu.Unlock()
	return u
}

// Snapshot returns the tenant's reportable state.
func (t *Tenant) Snapshot() Snapshot {
	if t == nil {
		return Snapshot{}
	}
	t.mu.Lock()
	keyed, disabled := t.keyed, t.disabled
	t.mu.Unlock()
	return Snapshot{ID: t.id, Keyed: keyed, Disabled: disabled, Limits: t.Limits(), Usage: t.Usage()}
}

// setKey installs (or refreshes) the tenant's key material from one
// keys-file entry, preserving accumulated usage — a reload must not
// amnesty a tenant's consumption.
func (t *Tenant) setKey(secret string, disabled bool, l Limits) {
	t.mu.Lock()
	t.keyed = true
	t.disabled = disabled
	if secret != t.secret {
		t.secret = secret
		t.digest = sha256.Sum256([]byte(secret))
	}
	t.mu.Unlock()
	t.limits.Store(&l)
}

// clearKey demotes the tenant to attribution-only: its key vanished from
// the keys file, so it must stop authenticating, but its usage history
// stays reportable.
func (t *Tenant) clearKey() {
	t.mu.Lock()
	t.keyed = false
	t.secret = ""
	t.digest = [sha256.Size]byte{}
	t.mu.Unlock()
}

// matches reports whether digest is this tenant's key digest. The
// comparison cost is constant whether or not the tenant is keyed or
// disabled — Authenticate walks every tenant unconditionally, so a
// probe's timing reveals neither which ids exist nor which are revoked.
func (t *Tenant) matches(digest *[sha256.Size]byte) (match, usable bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	eq := constantTimeEq(&t.digest, digest)
	return eq && t.keyed, t.keyed && !t.disabled
}

func (t *Tenant) isKeyed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.keyed
}

// keyConfig rebuilds the tenant's keys-file entry (persisting admin
// mutations); ok is false for attribution-only tenants.
func (t *Tenant) keyConfig() (KeyConfig, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.keyed {
		return KeyConfig{}, false
	}
	return KeyConfig{ID: t.id, Secret: t.secret, Disabled: t.disabled, Limits: t.Limits()}, true
}

// constantTimeEq compares two digests without data-dependent early exit.
func constantTimeEq(a, b *[sha256.Size]byte) bool {
	var diff byte
	for i := range a {
		diff |= a[i] ^ b[i]
	}
	return diff == 0
}

// ctxKey keys the tenant in a request context.
type ctxKey struct{}

// With returns ctx carrying t. A nil t returns ctx unchanged.
func With(ctx context.Context, t *Tenant) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// From returns the tenant carried by ctx, or nil.
func From(ctx context.Context) *Tenant {
	t, _ := ctx.Value(ctxKey{}).(*Tenant)
	return t
}

// IDFrom returns the id of the tenant carried by ctx ("" when none) —
// what the dispatch layer stamps into the X-Dcs-Tenant header.
func IDFrom(ctx context.Context) string {
	return From(ctx).ID()
}

// String renders limits compactly for log lines.
func (l Limits) String() string {
	return fmt.Sprintf("rate=%g burst=%d max_requests=%d max_jobs=%v max_instructions=%d",
		l.RatePerSec, l.Burst, l.MaxRequests, l.MaxJobs, l.MaxInstructions)
}
