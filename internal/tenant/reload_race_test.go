package tenant

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestReloadRace interleaves every way the key table can change — SIGHUP
// reloads, explicit reloads, mtime-triggered reloads behind Authenticate,
// on-disk rewrites, and admin mutations that persist — with the
// constant-time authentication walk and the snapshot reporters. It exists
// to run under -race: the assertions are deliberately weak (the
// interleaving decides whether a given key is live at a given instant),
// the data-race detector is the oracle.
func TestReloadRace(t *testing.T) {
	dir := t.TempDir()
	path := writeKeys(t, dir,
		KeyConfig{ID: "alice", Secret: "dck_alice", Limits: Limits{RatePerSec: 1000}},
		KeyConfig{ID: "bob", Secret: "dck_bob"},
	)
	r, err := Open(path, quietLog())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r.WatchSIGHUP(ctx)

	authReq := func(secret string) *Tenant {
		req := httptest.NewRequest("GET", "/v1/workloads", nil)
		req.Header.Set("Authorization", "Bearer "+secret)
		tn, _ := r.Authenticate(req)
		return tn
	}

	const iters = 200
	stop := make(chan struct{})
	var wg sync.WaitGroup
	spawn := func(f func(i int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				f(i)
			}
		}()
	}
	// Authenticators: a key that stays in the file, one that churns, and
	// garbage. alice is never mutated or rewritten away, so her key must
	// authenticate at every instant of the storm.
	spawn(func(int) {
		if authReq("dck_alice") == nil {
			t.Error("alice's stable key failed to authenticate mid-reload")
		}
	})
	spawn(func(int) { authReq("dck_bob") })
	spawn(func(int) { authReq("dck_nope") })
	// Explicit reloads and the SIGHUP path.
	spawn(func(int) { r.Reload() })
	spawn(func(int) {
		syscall.Kill(os.Getpid(), syscall.SIGHUP)
		time.Sleep(time.Millisecond)
	})
	// On-disk rewrites: bob's limits flap, alice stays put. Racing the
	// admin plane's persistLocked is the point — both sides rename
	// atomically, so every Reload sees one side or the other whole.
	spawn(func(i int) {
		writeKeys(t, dir,
			KeyConfig{ID: "alice", Secret: "dck_alice", Limits: Limits{RatePerSec: 1000}},
			KeyConfig{ID: "bob", Secret: "dck_bob", Limits: Limits{RatePerSec: float64(i%50 + 1)}},
		)
	})
	// Admin mutations: mint, limit, revoke a churn tenant, persisting on
	// every step.
	spawn(func(i int) {
		id := fmt.Sprintf("churn%d", i%4)
		if _, err := r.CreateKey(KeyConfig{ID: id, Secret: "dck_" + id}); err == nil {
			r.SetKeyLimits(id, Limits{RatePerSec: 7})
			r.RevokeKey(id)
		}
	})
	// Reporters.
	spawn(func(int) { r.Snapshots() })
	spawn(func(int) { r.Enabled() })

	// Let the storm run a fixed slice of real time — iters Authenticate
	// calls from the stable-key goroutine is plenty of interleaving.
	deadline := time.After(500 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < iters; i++ {
			if authReq("dck_alice") == nil {
				t.Error("alice's stable key failed to authenticate mid-reload")
			}
		}
	}()
	select {
	case <-done:
	case <-deadline:
	}
	// Stop the SIGHUP senders (and everything else) BEFORE cancelling the
	// watcher: a straggler SIGHUP after signal.Stop would kill the test
	// process via the default disposition.
	close(stop)
	wg.Wait()
	time.Sleep(10 * time.Millisecond)
	cancel()

	// The table settles to something coherent: a final reload re-reads
	// whatever rewrite landed last, and alice still authenticates.
	if err := r.Reload(); err != nil {
		t.Fatalf("final reload: %v", err)
	}
	if authReq("dck_alice") == nil {
		t.Fatal("alice's key lost after the storm settled")
	}
}
