package datagen

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCorpusDeterministic(t *testing.T) {
	a, b := NewCorpus(5, 1000), NewCorpus(5, 1000)
	if a.Sentence(50) != b.Sentence(50) {
		t.Fatal("same seed produced different text")
	}
}

func TestCorpusZipfSkew(t *testing.T) {
	c := NewCorpus(1, 5000)
	counts := map[string]int{}
	for i := 0; i < 20000; i++ {
		counts[c.Word()]++
	}
	top := c.WordAt(0)
	deep := c.WordAt(4000)
	if counts[top] <= counts[deep] {
		t.Fatalf("no skew: top=%d deep=%d", counts[top], counts[deep])
	}
}

func TestLabeledSentencesSeparable(t *testing.T) {
	c := NewCorpus(3, 1000)
	// Class 0 sentences should use early-vocabulary words far more often
	// than class 4 sentences do.
	early := func(s string) int {
		n := 0
		for _, w := range strings.Fields(s) {
			for i := 0; i < 200; i++ {
				if w == c.WordAt(i) {
					n++
					break
				}
			}
		}
		return n
	}
	e0, e4 := 0, 0
	for i := 0; i < 20; i++ {
		e0 += early(c.LabeledSentence(0, 5, 30))
		e4 += early(c.LabeledSentence(4, 5, 30))
	}
	if e0 <= e4 {
		t.Fatalf("classes not separable: e0=%d e4=%d", e0, e4)
	}
}

func TestHTMLPageStructure(t *testing.T) {
	c := NewCorpus(9, 100)
	page := c.HTMLPage(3, 5)
	if !strings.HasPrefix(page, "<html>") || !strings.HasSuffix(page, "</html>") {
		t.Fatal("malformed page")
	}
	if strings.Count(page, "<p>") != 3 {
		t.Fatalf("paragraphs = %d, want 3", strings.Count(page, "<p>"))
	}
}

func TestVectorsClustered(t *testing.T) {
	pts, labels := Vectors(7, 500, 8, 4)
	if len(pts) != 500 || len(labels) != 500 {
		t.Fatal("wrong counts")
	}
	// Mean intra-cluster distance must be well below inter-cluster.
	centroid := func(c int) []float64 {
		m := make([]float64, 8)
		n := 0
		for i, p := range pts {
			if labels[i] == c {
				for d := range m {
					m[d] += p[d]
				}
				n++
			}
		}
		for d := range m {
			m[d] /= float64(n)
		}
		return m
	}
	d2 := func(a, b []float64) float64 {
		s := 0.0
		for i := range a {
			s += (a[i] - b[i]) * (a[i] - b[i])
		}
		return s
	}
	c0, c1 := centroid(0), centroid(1)
	intra := 0.0
	n := 0
	for i, p := range pts {
		if labels[i] == 0 {
			intra += d2(p, c0)
			n++
		}
	}
	intra /= float64(n)
	if inter := d2(c0, c1); inter < 4*intra {
		t.Fatalf("clusters overlap: inter=%v intra=%v", inter, intra)
	}
}

func TestRatingsBounds(t *testing.T) {
	rs := Ratings(11, 50, 200, 10)
	if len(rs) != 500 {
		t.Fatalf("ratings = %d, want 500", len(rs))
	}
	for _, r := range rs {
		if r.Score < 1 || r.Score > 5 {
			t.Fatalf("score out of range: %v", r.Score)
		}
		if r.User < 0 || r.User >= 50 || r.Item < 0 || r.Item >= 200 {
			t.Fatalf("bad ids: %+v", r)
		}
	}
}

func TestRatingsNoDuplicatePerUser(t *testing.T) {
	rs := Ratings(13, 20, 100, 15)
	seen := map[[2]int]bool{}
	for _, r := range rs {
		k := [2]int{r.User, r.Item}
		if seen[k] {
			t.Fatalf("duplicate rating %v", k)
		}
		seen[k] = true
	}
}

func TestWebGraphShape(t *testing.T) {
	g := WebGraph(17, 300, 4)
	if len(g) != 300 {
		t.Fatal("wrong node count")
	}
	indeg := make([]int, 300)
	for i, outs := range g {
		if i >= 4 && len(outs) != 4 {
			t.Fatalf("node %d out-degree %d, want 4", i, len(outs))
		}
		seen := map[int]bool{}
		for _, t2 := range outs {
			if t2 >= i {
				t.Fatalf("forward edge %d->%d", i, t2)
			}
			if seen[t2] {
				t.Fatalf("duplicate edge from %d", i)
			}
			seen[t2] = true
			indeg[t2]++
		}
	}
	// Preferential attachment: max in-degree far above average.
	maxIn, sum := 0, 0
	for _, d := range indeg {
		sum += d
		if d > maxIn {
			maxIn = d
		}
	}
	avg := float64(sum) / 300
	if float64(maxIn) < 4*avg {
		t.Fatalf("degree distribution not heavy-tailed: max=%d avg=%v", maxIn, avg)
	}
}

func TestWebGraphDeterministic(t *testing.T) {
	a := WebGraph(21, 100, 3)
	b := WebGraph(21, 100, 3)
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatal("nondeterministic graph")
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("nondeterministic edge order")
			}
		}
	}
}

func TestWarehouseTablesReferentialIntegrity(t *testing.T) {
	ranks, visits := WarehouseTables(23, 100, 1000)
	urls := map[string]bool{}
	for _, r := range ranks {
		urls[r.PageURL] = true
	}
	for _, v := range visits {
		if !urls[v.DestURL] {
			t.Fatalf("visit references unknown URL %s", v.DestURL)
		}
	}
}

func TestObservationSeqProperties(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		obs, hidden := ObservationSeq(seed, 4, 40, 200)
		if len(obs) != 200 || len(hidden) != 200 {
			return false
		}
		for t2 := range obs {
			if obs[t2] < 0 || obs[t2] >= 40 || hidden[t2] < 0 || hidden[t2] >= 4 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestObservationSeqSticky(t *testing.T) {
	_, hidden := ObservationSeq(31, 4, 40, 5000)
	stays := 0
	for i := 1; i < len(hidden); i++ {
		if hidden[i] == hidden[i-1] {
			stays++
		}
	}
	frac := float64(stays) / float64(len(hidden)-1)
	if frac < 0.6 {
		t.Fatalf("chain not sticky: stay fraction %v", frac)
	}
}
