// Package datagen produces the synthetic inputs standing in for the paper's
// 147-187 GB data sets (Table I): Zipf-distributed text corpora, HTML pages,
// Gaussian-mixture vectors, Zipf-skewed rating matrices, preferential-
// attachment web graphs and data-warehouse tables. All generators are
// deterministic in their seed so every experiment is reproducible.
package datagen

import (
	"fmt"
	"strings"

	"dcbench/internal/sim"
)

// Corpus generates natural-language-like text with a Zipf word frequency
// distribution, the standard model for document collections.
type Corpus struct {
	rng   *sim.RNG
	zipf  *sim.Zipf
	vocab []string
}

// NewCorpus builds a corpus with the given vocabulary size.
func NewCorpus(seed uint64, vocabSize int) *Corpus {
	rng := sim.NewRNG(seed)
	c := &Corpus{
		rng:   rng,
		zipf:  sim.NewZipf(rng, vocabSize, 1.05),
		vocab: make([]string, vocabSize),
	}
	letters := "abcdefghijklmnopqrstuvwxyz"
	for i := range c.vocab {
		// Word length grows slowly with rank, like real vocabularies.
		n := 2 + i%9
		var b strings.Builder
		x := i
		for j := 0; j < n; j++ {
			b.WriteByte(letters[(x+7*j)%26])
			x /= 3
		}
		c.vocab[i] = b.String()
	}
	return c
}

// VocabSize returns the number of distinct words.
func (c *Corpus) VocabSize() int { return len(c.vocab) }

// Word draws one Zipf-distributed word.
func (c *Corpus) Word() string { return c.vocab[c.zipf.Next()] }

// WordAt returns the rank-i word, for targeted queries in tests.
func (c *Corpus) WordAt(i int) string { return c.vocab[i] }

// Sentence returns n space-separated Zipf words.
func (c *Corpus) Sentence(n int) string {
	words := make([]string, n)
	for i := range words {
		words[i] = c.Word()
	}
	return strings.Join(words, " ")
}

// LabeledSentence returns a sentence biased toward a class-specific region
// of the vocabulary, so Naive Bayes and SVM have signal to learn.
func (c *Corpus) LabeledSentence(class, nClasses, n int) string {
	words := make([]string, n)
	seg := len(c.vocab) / nClasses
	for i := range words {
		if c.rng.Float64() < 0.5 {
			// Class-specific word from the class's vocabulary segment.
			words[i] = c.vocab[class*seg+c.rng.Intn(seg)]
		} else {
			words[i] = c.Word()
		}
	}
	return strings.Join(words, " ")
}

// HTMLPage wraps sentences in minimal markup, modelling the crawled pages
// used as SVM and HMM input in Table I.
func (c *Corpus) HTMLPage(sentences, wordsPer int) string {
	var b strings.Builder
	b.WriteString("<html><body>")
	for i := 0; i < sentences; i++ {
		b.WriteString("<p>")
		b.WriteString(c.Sentence(wordsPer))
		b.WriteString("</p>")
	}
	b.WriteString("</body></html>")
	return b.String()
}

// Vectors draws n points of the given dimension from k spherical Gaussian
// clusters with well-separated means; returns points and true cluster ids.
func Vectors(seed uint64, n, dim, k int) ([][]float64, []int) {
	rng := sim.NewRNG(seed)
	centers := make([][]float64, k)
	for c := range centers {
		centers[c] = make([]float64, dim)
		for d := range centers[c] {
			centers[c][d] = 10 * rng.NormFloat64()
		}
	}
	points := make([][]float64, n)
	labels := make([]int, n)
	for i := range points {
		c := rng.Intn(k)
		labels[i] = c
		p := make([]float64, dim)
		for d := range p {
			p[d] = centers[c][d] + rng.NormFloat64()
		}
		points[i] = p
	}
	return points, labels
}

// Rating is one user-item preference.
type Rating struct {
	User, Item int
	Score      float64
}

// Ratings generates a Zipf-skewed rating matrix: popular items attract most
// ratings, and each user has a latent taste that makes scores predictable,
// so collaborative filtering is meaningful rather than noise.
func Ratings(seed uint64, users, items, perUser int) []Rating {
	rng := sim.NewRNG(seed)
	zipf := sim.NewZipf(rng, items, 1.0)
	// Latent 2-factor model.
	uf := make([][2]float64, users)
	for i := range uf {
		uf[i] = [2]float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	itf := make([][2]float64, items)
	for i := range itf {
		itf[i] = [2]float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	var out []Rating
	for u := 0; u < users; u++ {
		seen := map[int]bool{}
		for len(seen) < perUser {
			it := zipf.Next()
			if seen[it] {
				continue
			}
			seen[it] = true
			score := 3 + uf[u][0]*itf[it][0] + uf[u][1]*itf[it][1] + 0.3*rng.NormFloat64()
			if score < 1 {
				score = 1
			}
			if score > 5 {
				score = 5
			}
			out = append(out, Rating{User: u, Item: it, Score: score})
		}
	}
	return out
}

// WebGraph builds a directed graph with preferential attachment, the
// standard heavy-tailed model of the web link structure PageRank runs on.
// Node i links to edgesPer earlier nodes chosen proportionally to in-degree.
func WebGraph(seed uint64, n, edgesPer int) [][]int {
	rng := sim.NewRNG(seed)
	adj := make([][]int, n)
	// targets is a repeated-node list implementing preferential attachment.
	targets := []int{0}
	for i := 1; i < n; i++ {
		m := edgesPer
		if m > i {
			m = i
		}
		seen := map[int]bool{}
		var picked []int
		for len(picked) < m {
			var t int
			if rng.Float64() < 0.15 {
				t = rng.Intn(i) // uniform escape keeps the graph connected
			} else {
				t = targets[rng.Intn(len(targets))]
			}
			if t == i || seen[t] {
				continue
			}
			seen[t] = true
			picked = append(picked, t)
		}
		adj[i] = picked
		targets = append(targets, picked...)
		targets = append(targets, i)
	}
	return adj
}

// Visit is one row of the UserVisits warehouse table (after Pavlo et al.,
// the schema Hive-bench uses).
type Visit struct {
	SourceIP  string
	DestURL   string
	VisitDate int // days since epoch
	AdRevenue float64
}

// PageRankRow is one row of the Rankings table.
type PageRankRow struct {
	PageURL  string
	PageRank int
	Duration int
}

// WarehouseTables generates correlated Rankings and UserVisits tables:
// visits reference existing page URLs with Zipf skew.
func WarehouseTables(seed uint64, pages, visits int) ([]PageRankRow, []Visit) {
	rng := sim.NewRNG(seed)
	zipf := sim.NewZipf(rng, pages, 0.8)
	ranks := make([]PageRankRow, pages)
	for i := range ranks {
		ranks[i] = PageRankRow{
			PageURL:  fmt.Sprintf("url-%06d", i),
			PageRank: rng.Intn(100),
			Duration: 1 + rng.Intn(600),
		}
	}
	vs := make([]Visit, visits)
	for i := range vs {
		vs[i] = Visit{
			SourceIP:  fmt.Sprintf("10.%d.%d.%d", rng.Intn(256), rng.Intn(256), rng.Intn(256)),
			DestURL:   ranks[zipf.Next()].PageURL,
			VisitDate: rng.Intn(365),
			AdRevenue: rng.Float64() * 10,
		}
	}
	return ranks, vs
}

// ObservationSeq emits a hidden-Markov observation sequence plus its hidden
// state path, for HMM training and segmentation tests. States follow a
// sticky chain (stay probability 0.8); each state prefers a distinct symbol
// region.
func ObservationSeq(seed uint64, states, symbols, length int) (obs, hidden []int) {
	rng := sim.NewRNG(seed)
	obs = make([]int, length)
	hidden = make([]int, length)
	s := rng.Intn(states)
	seg := symbols / states
	for t := 0; t < length; t++ {
		if rng.Float64() > 0.8 {
			s = rng.Intn(states)
		}
		hidden[t] = s
		if rng.Float64() < 0.7 {
			obs[t] = s*seg + rng.Intn(seg)
		} else {
			obs[t] = rng.Intn(symbols)
		}
	}
	return obs, hidden
}
