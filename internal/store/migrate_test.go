package store

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"testing"

	"dcbench/internal/memtrace"
	"dcbench/internal/sweep"
	"dcbench/internal/uarch"
)

// writeV1Record plants one record in the PR 2 flat v1 layout — the exact
// bytes the previous store build wrote — so these tests exercise a true
// historical store, not one this build produced for itself.
func writeV1Record(t *testing.T, dir string, k sweep.Key, c *uarch.Counters) {
	t.Helper()
	canon, err := json.Marshal(keyJSON{k.Name, k.Profile, k.ConfigFP, k.MaxInstrs})
	if err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	h.Write(canon)
	addr := fmt.Sprintf("%016x", h.Sum64())
	rec, err := json.Marshal(struct {
		Schema   int             `json:"schema"`
		Key      json.RawMessage `json:"key"`
		Counters uarch.Counters  `json:"counters"`
	}{1, canon, *c})
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, "v1", addr[:2], addr+".json")
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, append(rec, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// newV1Store creates an empty v1-layout store directory.
func newV1Store(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "SCHEMA"), []byte("1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func migrateKey(name string, seed uint64) sweep.Key {
	return sweep.Key{
		Name:      name,
		Profile:   memtrace.Profile{Seed: seed, MaxInstrs: 50_000, CodeKB: 128},
		ConfigFP:  uarch.DefaultConfig().Fingerprint(),
		MaxInstrs: 50_000,
	}
}

func TestMigrateV1(t *testing.T) {
	dir := newV1Store(t)
	keys := make([]sweep.Key, 10)
	for i := range keys {
		keys[i] = migrateKey(fmt.Sprintf("w%d", i), uint64(i))
		writeV1Record(t, dir, keys[i], &uarch.Counters{Cycles: int64(100 + i), Instructions: int64(i)})
	}
	s, err := OpenWith(dir, OpenOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if n := s.Len(); n != len(keys) {
		t.Fatalf("Len after migration = %d, want %d", n, len(keys))
	}
	for i, k := range keys {
		c, ok, err := s.Get(k)
		if err != nil || !ok {
			t.Fatalf("migrated key %d: ok=%v err=%v", i, ok, err)
		}
		if c.Cycles != int64(100+i) || c.Instructions != int64(i) {
			t.Fatalf("migrated key %d = %+v", i, c)
		}
	}
	// The migration committed: schema marker advanced, v1 tree gone.
	if got, _ := os.ReadFile(filepath.Join(dir, "SCHEMA")); string(got) != "2\n" {
		t.Fatalf("SCHEMA after migration = %q, want \"2\\n\"", got)
	}
	if _, err := os.Stat(filepath.Join(dir, "v1")); !os.IsNotExist(err) {
		t.Fatalf("v1 tree survived migration (stat err = %v)", err)
	}
	// A reopen is a plain v2 open — no second migration, same contents.
	s.Close()
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if n := s2.Len(); n != len(keys) {
		t.Fatalf("Len after reopen = %d, want %d", n, len(keys))
	}
	if got := s2.ShardCount(); got != 4 {
		t.Fatalf("migrated store ShardCount = %d, want the 4 chosen at migration", got)
	}
}

func TestMigrateV1SkipsCorrupt(t *testing.T) {
	dir := newV1Store(t)
	good := migrateKey("good", 1)
	writeV1Record(t, dir, good, &uarch.Counters{Cycles: 7})
	bad := filepath.Join(dir, "v1", "ff", "ffffffffffffffff.json")
	if err := os.MkdirAll(filepath.Dir(bad), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bad, []byte(`{"schema":1,"key`), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if n := s.Len(); n != 1 {
		t.Fatalf("Len = %d, want the 1 readable record", n)
	}
	if c, ok, _ := s.Get(good); !ok || c.Cycles != 7 {
		t.Fatalf("good record after migration = %+v ok=%v", c, ok)
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Fatalf("Stats.Corrupt = %d, want the skipped v1 record counted", st.Corrupt)
	}
	// The skipped record's only copy must survive, set aside for recovery.
	preserved := filepath.Join(dir, "v1-preserved", "ff", "ffffffffffffffff.json")
	if _, err := os.Stat(preserved); err != nil {
		t.Fatalf("skipped corrupt record was not preserved at %s: %v", preserved, err)
	}
	if _, err := os.Stat(filepath.Join(dir, "v1")); !os.IsNotExist(err) {
		t.Fatalf("v1 tree left in place would read as a crash leftover (stat err = %v)", err)
	}
}

// TestMigrateV1SkipsUnreadable: one unreadable record file must not brick
// the store — it is skipped and counted, and the v1 tree is preserved for
// manual recovery instead of being deleted with data still inside.
func TestMigrateV1SkipsUnreadable(t *testing.T) {
	dir := newV1Store(t)
	good := migrateKey("good", 1)
	writeV1Record(t, dir, good, &uarch.Counters{Cycles: 7})
	bad := filepath.Join(dir, "v1", "aa", "aaaaaaaaaaaaaaaa.json")
	if err := os.MkdirAll(filepath.Dir(bad), 0o755); err != nil {
		t.Fatal(err)
	}
	// A symlink to a directory: ReadFile fails with EISDIR — a genuine read
	// error, unlike ENOENT, which migration treats as a concurrent
	// migrator having disposed of the tree.
	if err := os.Symlink(dir, bad); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("an unreadable v1 record bricked the store: %v", err)
	}
	defer s.Close()
	if c, ok, _ := s.Get(good); !ok || c.Cycles != 7 {
		t.Fatalf("good record after migration = %+v ok=%v", c, ok)
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Fatalf("Stats.Corrupt = %d, want the unreadable record counted", st.Corrupt)
	}
	preserved := filepath.Join(dir, "v1-preserved", "aa", "aaaaaaaaaaaaaaaa.json")
	if _, err := os.Lstat(preserved); err != nil {
		t.Fatalf("unreadable record was not preserved at %s: %v", preserved, err)
	}
	if got, _ := os.ReadFile(filepath.Join(dir, "SCHEMA")); string(got) != "2\n" {
		t.Fatalf("SCHEMA = %q, want the migration committed regardless", got)
	}
}

// TestOpenCleansInterruptedV1Cleanup: a crash between the migration's
// SCHEMA advance and its RemoveAll leaves a fully-migrated v1 tree under a
// schema-2 store; the next Open must finish the cleanup instead of leaking
// it forever. (Deliberately preserved unmigrated records live under
// v1-preserved and are never touched.)
func TestOpenCleansInterruptedV1Cleanup(t *testing.T) {
	dir := newV1Store(t)
	k := migrateKey("w", 1)
	writeV1Record(t, dir, k, &uarch.Counters{Cycles: 5})
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Simulate the interrupted cleanup: the v1 tree reappears post-commit.
	writeV1Record(t, dir, k, &uarch.Counters{Cycles: 5})
	preserved := filepath.Join(dir, "v1-preserved")
	if err := os.MkdirAll(preserved, 0o755); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := os.Stat(filepath.Join(dir, "v1")); !os.IsNotExist(err) {
		t.Fatalf("interrupted v1 cleanup not finished (stat err = %v)", err)
	}
	if _, err := os.Stat(preserved); err != nil {
		t.Fatalf("v1-preserved must never be cleaned up automatically: %v", err)
	}
	if c, ok, _ := s2.Get(k); !ok || c.Cycles != 5 {
		t.Fatalf("migrated record lost during leftover cleanup: %+v ok=%v", c, ok)
	}
}

// TestMigrateV1Resumes models a crash mid-migration: some records already
// rewritten into v2, the SCHEMA marker still at 1. The next Open must
// finish the job without losing or duplicating anything.
func TestMigrateV1Resumes(t *testing.T) {
	dir := newV1Store(t)
	keys := make([]sweep.Key, 6)
	for i := range keys {
		keys[i] = migrateKey(fmt.Sprintf("w%d", i), uint64(i))
		writeV1Record(t, dir, keys[i], &uarch.Counters{Cycles: int64(i)})
	}
	// First migration half-done: run it, then wind SCHEMA back to 1 and
	// restore the v1 tree for two of the keys, as if the process had died
	// before the commit point.
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := os.WriteFile(filepath.Join(dir, "SCHEMA"), []byte("1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys[:2] {
		writeV1Record(t, dir, k, &uarch.Counters{Cycles: -1}) // stale pre-crash bytes
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if n := s2.Len(); n != len(keys) {
		t.Fatalf("Len after resumed migration = %d, want %d", n, len(keys))
	}
	// The re-run overwrote with the v1 tree's bytes — last writer wins, no
	// duplicates, nothing lost.
	for i, k := range keys {
		c, ok, _ := s2.Get(k)
		if !ok {
			t.Fatalf("key %d missing after resumed migration", i)
		}
		want := int64(i)
		if i < 2 {
			want = -1
		}
		if c.Cycles != want {
			t.Fatalf("key %d = %+v, want Cycles %d", i, c, want)
		}
	}
}
