package store

import (
	"bytes"
	"encoding/json"
	"testing"

	"dcbench/internal/memtrace"
	"dcbench/internal/sweep"
	"dcbench/internal/uarch"
)

// fuzzBase builds one canonical encoded record plus its parts.
func fuzzBase(t testing.TB) (data, key, payload []byte) {
	t.Helper()
	k, err := counterKey(sweep.Key{
		Name:      "Sort",
		Profile:   memtrace.Profile{Seed: 42, MaxInstrs: 50_000, CodeKB: 128, HeapMB: 8},
		ConfigFP:  0x1234_5678_9abc_def0,
		MaxInstrs: 50_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := json.Marshal(uarch.Counters{
		Cycles: 1_000_003, Instructions: 780_001, KernelInstructions: 90_000,
		Branches: 120_000, BranchMispredicts: 7_000,
		L1IAccesses: 700_000, L1IMisses: 21_000, L2Accesses: 50_000, L2Misses: 9_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := encodeRecord(KindCounters, k, p)
	if err != nil {
		t.Fatal(err)
	}
	return d, k, p
}

// FuzzRecordRoundTrip: whatever key and counter values a record is encoded
// from, decoding its exact bytes must return them unchanged.
func FuzzRecordRoundTrip(f *testing.F) {
	f.Add("Sort", uint64(42), int64(50_000), int64(1_000_003), int64(780_001))
	f.Add("", uint64(0), int64(0), int64(-1), int64(1<<62))
	f.Add("K-means\n\"quoted\"", uint64(1<<63), int64(-5), int64(7), int64(7))
	f.Fuzz(func(t *testing.T, name string, seed uint64, maxInstrs, cycles, instrs int64) {
		key, err := counterKey(sweep.Key{
			Name:      name,
			Profile:   memtrace.Profile{Seed: seed, MaxInstrs: maxInstrs},
			ConfigFP:  seed ^ 0xdead_beef,
			MaxInstrs: maxInstrs,
		})
		if err != nil {
			t.Fatal(err)
		}
		payload, err := json.Marshal(uarch.Counters{Cycles: cycles, Instructions: instrs})
		if err != nil {
			t.Fatal(err)
		}
		data, err := encodeRecord(KindCounters, key, payload)
		if err != nil {
			t.Fatal(err)
		}
		kind, gotKey, gotPayload, err := decodeRecord(data)
		if err != nil {
			t.Fatalf("decode of a fresh record failed: %v", err)
		}
		if kind != KindCounters || !bytes.Equal(gotKey, key) || !bytes.Equal(gotPayload, payload) {
			t.Fatalf("round trip changed the record:\nkind %q\nkey  %s -> %s\npay  %s -> %s",
				kind, key, gotKey, payload, gotPayload)
		}
	})
}

// FuzzRecordCorruption: a mutated record must never decode into different
// content — it is either rejected (the counted-miss path) or, when the
// mutation happens to be semantically inert (an unused byte value equal to
// the original, say), returns exactly the original parts. Valid counters
// can therefore never come out of corrupt bytes.
func FuzzRecordCorruption(f *testing.F) {
	base, baseKey, basePayload := fuzzBase(f)
	f.Add(0, byte(0))
	f.Add(10, byte('}'))
	f.Add(len(base)-2, byte('0'))
	f.Add(len(base)/2, byte('9'))
	f.Fuzz(func(t *testing.T, pos int, val byte) {
		data := bytes.Clone(base)
		i := pos % len(data)
		if i < 0 {
			i += len(data)
		}
		orig := data[i]
		data[i] = val
		kind, key, payload, err := decodeRecord(data)
		if orig == val {
			if err != nil {
				t.Fatalf("untouched record rejected: %v", err)
			}
			return
		}
		if err != nil {
			return // detected — the store counts it and reports a miss
		}
		if kind != KindCounters || !bytes.Equal(key, baseKey) || !bytes.Equal(payload, basePayload) {
			t.Fatalf("mutation at %d (%q -> %q) decoded as valid but different content:\nkind %q\nkey  %s\npay  %s",
				i, orig, val, kind, key, payload)
		}
	})
}

// TestRecordSingleByteMutationsDetected is the deterministic floor under
// FuzzRecordCorruption: every position, a handful of substitute bytes, no
// corpus required. It runs on every `go test`, so a codec regression cannot
// hide behind an unlucky fuzz schedule.
func TestRecordSingleByteMutationsDetected(t *testing.T) {
	base, baseKey, basePayload := fuzzBase(t)
	for i := range base {
		for _, val := range []byte{0x00, '0', '9', 'z', '"', '}'} {
			if base[i] == val {
				continue
			}
			data := bytes.Clone(base)
			data[i] = val
			kind, key, payload, err := decodeRecord(data)
			if err != nil {
				continue
			}
			if kind != KindCounters || !bytes.Equal(key, baseKey) || !bytes.Equal(payload, basePayload) {
				t.Fatalf("mutation at %d (%q -> %q) decoded as valid but different content", i, base[i], val)
			}
		}
	}
}
