package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
)

// Record kinds. The kind is part of a record's address and its checksum, so
// two payload types can never collide into one record even if their key
// encodings happened to match.
const (
	// KindCounters records hold uarch.Counters keyed by the sweep memo key.
	KindCounters = "counters"
	// KindCluster records hold workloads.Stats keyed by the cluster run key
	// (workload, slave count, scale, seed).
	KindCluster = "cluster"
)

// record is the on-disk form of one result. Key and Payload stay raw so the
// codec is kind-agnostic; Sum is an fnv64a over (schema, kind, key, payload)
// so a flipped byte anywhere in the meaningful content is detected instead
// of being returned as valid counters — json.Unmarshal alone would happily
// accept a mutated digit.
type record struct {
	Schema  int             `json:"schema"`
	Kind    string          `json:"kind"`
	Key     json.RawMessage `json:"key"`
	Payload json.RawMessage `json:"payload"`
	Sum     string          `json:"sum"`
}

// errCorrupt tags every codec-level failure; callers count and skip these.
var errCorrupt = errors.New("corrupt record")

// recordSum hashes the record content the checksum covers. The NUL
// separators keep (kind="ab", key=`"c"`) and (kind="a", key=`"bc"`) apart.
func recordSum(kind string, key, payload []byte) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d\x00%s\x00", SchemaVersion, kind)
	h.Write(key)
	h.Write([]byte{0})
	h.Write(payload)
	return fmt.Sprintf("%016x", h.Sum64())
}

// encodeRecord serialises one record. Key and payload are compacted first so
// the checksum is always computed over the exact bytes a decoder will see
// (json.Marshal compacts RawMessage content when embedding it).
func encodeRecord(kind string, key, payload []byte) ([]byte, error) {
	var ck, cp bytes.Buffer
	if err := json.Compact(&ck, key); err != nil {
		return nil, fmt.Errorf("store: encode key: %w", err)
	}
	if err := json.Compact(&cp, payload); err != nil {
		return nil, fmt.Errorf("store: encode payload: %w", err)
	}
	data, err := json.Marshal(record{
		Schema:  SchemaVersion,
		Kind:    kind,
		Key:     ck.Bytes(),
		Payload: cp.Bytes(),
		Sum:     recordSum(kind, ck.Bytes(), cp.Bytes()),
	})
	if err != nil {
		return nil, fmt.Errorf("store: encode record: %w", err)
	}
	return append(data, '\n'), nil
}

// decodeRecord parses and verifies one record. Any failure — unparseable
// bytes, a foreign schema, a checksum mismatch — comes back wrapped in
// errCorrupt; a successful decode guarantees kind, key and payload are the
// bytes the record was encoded from.
func decodeRecord(data []byte) (kind string, key, payload []byte, err error) {
	var rec record
	if uerr := json.Unmarshal(data, &rec); uerr != nil {
		return "", nil, nil, fmt.Errorf("%w: %v", errCorrupt, uerr)
	}
	if rec.Schema != SchemaVersion {
		return "", nil, nil, fmt.Errorf("%w: schema %d", errCorrupt, rec.Schema)
	}
	if rec.Sum != recordSum(rec.Kind, rec.Key, rec.Payload) {
		return "", nil, nil, fmt.Errorf("%w: checksum mismatch", errCorrupt)
	}
	return rec.Kind, rec.Key, rec.Payload, nil
}
