package store

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"os"
	"sort"
	"strconv"
)

// This file is the store's replication surface: per-shard index digests a
// peer can compare against its own, raw record export, and idempotent
// adoption of a peer's record bytes. The record codec already embeds kind,
// key and checksum, and results are deterministic (the same key simulates
// to the same bytes on every node), so existence is identity: two shards
// holding the same address set hold the same records, and a digest over
// the sorted address list is a complete divergence test — no per-record
// hashing, no merkle tree, one fnv64a over strings the index already
// holds in memory.

// ShardDigest summarises one shard's contents for anti-entropy: the live
// record count and bytes plus a digest over the sorted record addresses.
// Two replicas whose digests match for a shard hold identical record sets
// there; a mismatch is repaired by pulling the missing addresses.
type ShardDigest struct {
	Shard  int    `json:"shard"`
	Count  int64  `json:"count"`
	Bytes  int64  `json:"bytes"`
	Digest string `json:"digest"`
}

// ShardDigests snapshots every shard's digest, in shard order.
func (s *Store) ShardDigests() []ShardDigest {
	out := make([]ShardDigest, len(s.shards))
	for i, sh := range s.shards {
		addrs, bytes := sh.addrs()
		h := fnv.New64a()
		for _, a := range addrs {
			h.Write([]byte(a))
			h.Write([]byte{'\n'})
		}
		out[i] = ShardDigest{
			Shard:  i,
			Count:  int64(len(addrs)),
			Bytes:  bytes,
			Digest: fmt.Sprintf("%016x", h.Sum64()),
		}
	}
	return out
}

// ShardAddrs lists one shard's record addresses, sorted — what a peer
// pulls after a digest mismatch to compute the set difference.
func (s *Store) ShardAddrs(shard int) ([]string, error) {
	if shard < 0 || shard >= len(s.shards) {
		return nil, fmt.Errorf("store: shard %d outside [0, %d)", shard, len(s.shards))
	}
	addrs, _ := s.shards[shard].addrs()
	return addrs, nil
}

// addrs snapshots the shard's sorted address list and total record bytes.
func (sh *shard) addrs() ([]string, int64) {
	sh.mu.Lock()
	out := make([]string, 0, len(sh.index))
	var bytes int64
	for a, e := range sh.index {
		out = append(out, a)
		bytes += e.size
	}
	sh.mu.Unlock()
	sort.Strings(out)
	return out, bytes
}

// GetRecord reads the record stored at addr exactly as persisted — the
// checksummed wire bytes a replica peer adopts verbatim. The record is
// decode-verified and its address recomputed from the embedded (kind, key)
// before it is served, so a corrupt or misfiled record is a counted miss
// (false, nil error), never exported to a peer.
func (s *Store) GetRecord(addr string) ([]byte, bool, error) {
	sh, err := s.shardFor(addr)
	if err != nil {
		return nil, false, err
	}
	data, err := os.ReadFile(sh.recordPath(addr))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("store: %w", err)
	}
	kind, key, _, derr := decodeRecord(data)
	if derr != nil {
		s.corrupt.Add(1)
		return nil, false, nil
	}
	if got, _ := s.locate(kind, key); got != addr {
		s.corrupt.Add(1)
		return nil, false, nil
	}
	return data, true, nil
}

// AdoptRecord installs a peer's record bytes verbatim under their content
// address: the record is decode-verified (checksum, schema) and addressed
// from its embedded kind and key, so a mangled or misdirected push cannot
// land, and the same bytes land at the same address on every replica —
// byte-identical convergence by construction. Adoption is idempotent (an
// address already indexed is left untouched and reported false) and
// counted separately from writes, so "writes" keeps meaning "simulated on
// this node". The count/age/bytes budgets are enforced after the install,
// exactly as for a local Put.
func (s *Store) AdoptRecord(data []byte) (bool, error) {
	kind, key, _, err := decodeRecord(data)
	if err != nil {
		s.corrupt.Add(1)
		return false, fmt.Errorf("store: adopt: %w", err)
	}
	addr, sh := s.locate(kind, key)
	sh.mu.Lock()
	_, have := sh.index[addr]
	sh.mu.Unlock()
	if have {
		return false, nil
	}
	if err := sh.install(s, addr, data, s.now().UnixNano()); err != nil {
		return false, fmt.Errorf("store: adopt: %w", err)
	}
	s.adopted.Add(1)
	s.enforceBudgets()
	return true, nil
}

// RecordAddr parses and verifies an encoded record and returns its content
// address — the name replication ranks peers by. The address depends only
// on the record's kind and key, never on a store's shard count, so every
// node computes the same address for the same record.
func RecordAddr(data []byte) (string, error) {
	kind, key, _, err := decodeRecord(data)
	if err != nil {
		return "", err
	}
	h := fnv.New64a()
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write(key)
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

// shardFor maps a record address to its shard — the same low-bits routing
// locate uses, recovered from the address itself.
func (s *Store) shardFor(addr string) (*shard, error) {
	if len(addr) != 16 {
		return nil, fmt.Errorf("store: malformed record address %q", addr)
	}
	a, err := strconv.ParseUint(addr, 16, 64)
	if err != nil {
		return nil, fmt.Errorf("store: malformed record address %q", addr)
	}
	return s.shards[a&uint64(len(s.shards)-1)], nil
}
