package store

import (
	"strings"
	"testing"

	"dcbench/internal/memtrace"
	"dcbench/internal/sweep"
	"dcbench/internal/uarch"
)

// TestWireRoundTrip: the dispatch wire format carries key and counters
// bit-exactly, and the decoded bytes are the same record a store Get would
// have verified.
func TestWireRoundTrip(t *testing.T) {
	k := sweep.Key{
		Name:      "Sort",
		Profile:   memtrace.Profile{Seed: 42, MaxInstrs: 900_000, CodeKB: 128, FPUShare: 0.25},
		ConfigFP:  0xabcdef0123456789,
		MaxInstrs: 900_000,
	}
	c := &uarch.Counters{Cycles: 123456, Instructions: 654321, L2Misses: 42}
	data, err := EncodeCounters(k, c)
	if err != nil {
		t.Fatal(err)
	}
	gotKey, gotC, err := DecodeCounters(data)
	if err != nil {
		t.Fatal(err)
	}
	if gotKey != k {
		t.Fatalf("key round trip: got %+v, want %+v", gotKey, k)
	}
	if *gotC != *c {
		t.Fatalf("counters round trip: got %+v, want %+v", gotC, c)
	}
}

// TestWireRejectsMutation: the checksum that protects records on disk
// protects them on the wire — any single flipped byte decodes to an error,
// never to silently wrong counters.
func TestWireRejectsMutation(t *testing.T) {
	k := sweep.Key{Name: "Grep", Profile: memtrace.Profile{Seed: 7}, ConfigFP: 1, MaxInstrs: 100}
	data, err := EncodeCounters(k, &uarch.Counters{Cycles: 99})
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x20
		if string(mut) == string(data) {
			continue
		}
		gotKey, c, err := DecodeCounters(mut)
		if err == nil && gotKey == k && c != nil && *c == (uarch.Counters{Cycles: 99}) {
			continue // decoded to the identical result: mutation was JSON-insignificant whitespace-level noise, still safe
		}
		if err == nil {
			t.Fatalf("byte %d mutated: decode returned key=%+v counters=%+v without error", i, gotKey, c)
		}
	}
}

// TestWireRejectsWrongKind: a cluster record must not decode as counters
// even though it passes the checksum.
func TestWireRejectsWrongKind(t *testing.T) {
	key := []byte(`{"workload":"Sort","slaves":4,"scale":0.05,"seed":42}`)
	rec, err := encodeRecord(KindCluster, key, []byte(`{"Jobs":3}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeCounters(rec); err == nil || !strings.Contains(err.Error(), "kind") {
		t.Fatalf("cluster record decoded as counters: err=%v", err)
	}
}
