package store

import (
	"strings"
	"testing"

	"dcbench/internal/memtrace"
	"dcbench/internal/sweep"
	"dcbench/internal/uarch"
	"dcbench/internal/workloads"
)

// TestWireRoundTrip: the dispatch wire format carries key and counters
// bit-exactly, and the decoded bytes are the same record a store Get would
// have verified.
func TestWireRoundTrip(t *testing.T) {
	k := sweep.Key{
		Name:      "Sort",
		Profile:   memtrace.Profile{Seed: 42, MaxInstrs: 900_000, CodeKB: 128, FPUShare: 0.25},
		ConfigFP:  0xabcdef0123456789,
		MaxInstrs: 900_000,
	}
	c := &uarch.Counters{Cycles: 123456, Instructions: 654321, L2Misses: 42}
	data, err := EncodeCounters(k, c)
	if err != nil {
		t.Fatal(err)
	}
	gotKey, gotC, err := DecodeCounters(data)
	if err != nil {
		t.Fatal(err)
	}
	if gotKey != k {
		t.Fatalf("key round trip: got %+v, want %+v", gotKey, k)
	}
	if *gotC != *c {
		t.Fatalf("counters round trip: got %+v, want %+v", gotC, c)
	}
}

// TestWireRejectsMutation: the checksum that protects records on disk
// protects them on the wire — any single flipped byte decodes to an error,
// never to silently wrong counters.
func TestWireRejectsMutation(t *testing.T) {
	k := sweep.Key{Name: "Grep", Profile: memtrace.Profile{Seed: 7}, ConfigFP: 1, MaxInstrs: 100}
	data, err := EncodeCounters(k, &uarch.Counters{Cycles: 99})
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x20
		if string(mut) == string(data) {
			continue
		}
		gotKey, c, err := DecodeCounters(mut)
		if err == nil && gotKey == k && c != nil && *c == (uarch.Counters{Cycles: 99}) {
			continue // decoded to the identical result: mutation was JSON-insignificant whitespace-level noise, still safe
		}
		if err == nil {
			t.Fatalf("byte %d mutated: decode returned key=%+v counters=%+v without error", i, gotKey, c)
		}
	}
}

// TestStatsWireRoundTrip: the cluster-job wire format carries key and
// stats bit-exactly, including the Quality map.
func TestStatsWireRoundTrip(t *testing.T) {
	k := workloads.StatsKey{Workload: "Sort", Slaves: 8, Scale: 0.05, Seed: 42}
	st := &workloads.Stats{
		Workload: "Sort", Slaves: 8, Makespan: 321.25, Jobs: 3,
		InputSimBytes: 1 << 30, DiskWriteOps: 777, NetBytes: 555,
		CoreSeconds: 12.5, Quality: map[string]float64{"sorted": 1},
	}
	data, err := EncodeStats(k, st)
	if err != nil {
		t.Fatal(err)
	}
	gotKey, gotSt, err := DecodeStats(data)
	if err != nil {
		t.Fatal(err)
	}
	if gotKey != k {
		t.Fatalf("key round trip: got %+v, want %+v", gotKey, k)
	}
	if gotSt.Workload != st.Workload || gotSt.Makespan != st.Makespan ||
		gotSt.DiskWriteOps != st.DiskWriteOps || gotSt.Quality["sorted"] != 1 {
		t.Fatalf("stats round trip: got %+v, want %+v", gotSt, st)
	}
}

// TestWireRejectsWrongKind: a cluster record must not decode as counters
// (and vice versa) even though each passes the checksum.
func TestWireRejectsWrongKind(t *testing.T) {
	key := []byte(`{"workload":"Sort","slaves":4,"scale":0.05,"seed":42}`)
	rec, err := encodeRecord(KindCluster, key, []byte(`{"Jobs":3}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeCounters(rec); err == nil || !strings.Contains(err.Error(), "kind") {
		t.Fatalf("cluster record decoded as counters: err=%v", err)
	}
	crec, err := EncodeCounters(sweep.Key{Name: "Grep", MaxInstrs: 1}, &uarch.Counters{Cycles: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeStats(crec); err == nil || !strings.Contains(err.Error(), "kind") {
		t.Fatalf("counters record decoded as cluster stats: err=%v", err)
	}
}

// TestWireFormatGolden pins the exact bytes of both wire codecs — field
// names, field order, the schema tag and the checksum — to the format
// PR 4-era nodes read and write. A diff here is a wire break: old
// front-ends and workers would stop interoperating with new ones during
// a rollout, so change it deliberately (with a schema bump and migration
// story), never as a side effect.
func TestWireFormatGolden(t *testing.T) {
	k := sweep.Key{
		Name:      "Sort",
		Profile:   memtrace.Profile{Seed: 42, MaxInstrs: 40000, CodeKB: 128, FPUShare: 0.25},
		ConfigFP:  0xabcdef0123456789,
		MaxInstrs: 40000,
	}
	c := &uarch.Counters{Cycles: 123456, Instructions: 654321, L2Misses: 42}
	data, err := EncodeCounters(k, c)
	if err != nil {
		t.Fatal(err)
	}
	wantCounters := `{"schema":2,"kind":"counters","key":{"name":"Sort","profile":{"Seed":42,"MaxInstrs":40000,"CodeKB":128,"HotCodeKB":0,"KernelKB":0,"BlockLen":0,"ColdJumpP":0,"FrameworkEvery":0,"FrameworkInstrs":0,"FrameworkJump":0,"GCEvery":0,"GCInstrs":0,"HeapMB":0,"ALUPerMem":0,"FPUShare":0.25,"NSrc2P":0,"NSrc3P":0,"ChainProb":0},"config_fp":12379813738877118345,"max_instrs":40000},"payload":{"Cycles":123456,"Instructions":654321,"KernelInstructions":0,"Branches":0,"BranchMispredicts":0,"L1IAccesses":0,"L1IMisses":0,"L1DAccesses":0,"L1DMisses":0,"L2Accesses":0,"L2Misses":42,"L3Accesses":0,"L3Misses":0,"ITLBWalks":0,"DTLBWalks":0,"FetchStall":0,"RATStall":0,"LoadBufStall":0,"StoreBufStall":0,"RSStall":0,"ROBStall":0},"sum":"004fa50e7727baac"}` + "\n"
	if string(data) != wantCounters {
		t.Errorf("counters wire format drifted from the PR 4 bytes\ngot:  %s\nwant: %s", data, wantCounters)
	}

	sk := workloads.StatsKey{Workload: "Sort", Slaves: 4, Scale: 0.05, Seed: 42}
	st := &workloads.Stats{Workload: "Sort", Slaves: 4, Makespan: 123.5, Jobs: 3, DiskWriteOps: 777}
	sdata, err := EncodeStats(sk, st)
	if err != nil {
		t.Fatal(err)
	}
	wantStats := `{"schema":2,"kind":"cluster","key":{"workload":"Sort","slaves":4,"scale":0.05,"seed":42},"payload":{"Workload":"Sort","Slaves":4,"Makespan":123.5,"Jobs":3,"InputSimBytes":0,"DiskWriteOps":777,"DiskWriteBytes":0,"NetBytes":0,"CoreSeconds":0,"Quality":null},"sum":"a18d112e7286306f"}` + "\n"
	if string(sdata) != wantStats {
		t.Errorf("cluster wire format drifted\ngot:  %s\nwant: %s", sdata, wantStats)
	}
}
