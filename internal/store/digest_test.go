package store_test

import (
	"bytes"
	"testing"

	"dcbench/internal/store"
	"dcbench/internal/uarch"
)

// allAddrs flattens a store's shard address lists.
func allAddrs(t *testing.T, s *store.Store) []string {
	t.Helper()
	var out []string
	for i := 0; i < s.ShardCount(); i++ {
		addrs, err := s.ShardAddrs(i)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, addrs...)
	}
	return out
}

// digestsEqual compares two stores' full digest vectors.
func digestsEqual(a, b []store.ShardDigest) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestShardDigestsReflectContents(t *testing.T) {
	s1, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	s2, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	if !digestsEqual(s1.ShardDigests(), s2.ShardDigests()) {
		t.Fatal("two empty stores disagree on digests")
	}
	for i := 0; i < 8; i++ {
		k := testKey("w", uint64(i))
		if err := s1.Put(k, &uarch.Counters{Cycles: int64(i) + 1}); err != nil {
			t.Fatal(err)
		}
	}
	if digestsEqual(s1.ShardDigests(), s2.ShardDigests()) {
		t.Fatal("a full and an empty store agree on digests")
	}
	if got := len(allAddrs(t, s1)); got != 8 {
		t.Fatalf("shard addrs list %d records, want 8", got)
	}
	var count, b int64
	for _, d := range s1.ShardDigests() {
		count += d.Count
		b += d.Bytes
	}
	if count != 8 || b != s1.Bytes() {
		t.Fatalf("digest totals = %d records / %d bytes, want 8 / %d", count, b, s1.Bytes())
	}
	// Same puts in a different order converge to the same digests: the
	// digest is over the sorted address set, not insertion history.
	for i := 7; i >= 0; i-- {
		k := testKey("w", uint64(i))
		if err := s2.Put(k, &uarch.Counters{Cycles: int64(i) + 1}); err != nil {
			t.Fatal(err)
		}
	}
	if !digestsEqual(s1.ShardDigests(), s2.ShardDigests()) {
		t.Fatal("stores with identical contents disagree on digests")
	}
}

func TestGetRecordAdoptRoundTrip(t *testing.T) {
	src, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	dst, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()

	k := testKey("sort", 42)
	want := &uarch.Counters{Cycles: 99, Instructions: 1234}
	if err := src.Put(k, want); err != nil {
		t.Fatal(err)
	}
	addrs := allAddrs(t, src)
	if len(addrs) != 1 {
		t.Fatalf("src holds %d records, want 1", len(addrs))
	}
	data, ok, err := src.GetRecord(addrs[0])
	if err != nil || !ok {
		t.Fatalf("GetRecord = ok=%v err=%v", ok, err)
	}
	// The exported address matches what RecordAddr derives from the bytes.
	if a, err := store.RecordAddr(data); err != nil || a != addrs[0] {
		t.Fatalf("RecordAddr = %q/%v, want %q", a, err, addrs[0])
	}
	if _, ok, err := src.GetRecord("0123456789abcdef"); ok || err != nil {
		t.Fatalf("GetRecord of absent addr = ok=%v err=%v, want miss", ok, err)
	}
	if _, _, err := src.GetRecord("nope"); err == nil {
		t.Fatal("GetRecord accepted a malformed address")
	}

	adopted, err := dst.AdoptRecord(data)
	if err != nil || !adopted {
		t.Fatalf("AdoptRecord = %v, %v; want adopted", adopted, err)
	}
	got, ok, err := dst.Get(k)
	if err != nil || !ok || *got != *want {
		t.Fatalf("Get after adopt = %+v ok=%v err=%v, want %+v", got, ok, err, want)
	}
	// Byte-identical on disk: the adopter serves the exact bytes it took.
	data2, ok, err := dst.GetRecord(addrs[0])
	if err != nil || !ok || !bytes.Equal(data, data2) {
		t.Fatal("adopted record is not byte-identical to the source's")
	}
	if !digestsEqual(src.ShardDigests(), dst.ShardDigests()) {
		t.Fatal("digests diverge after adopting the only record")
	}
	// Idempotent: a repeated push is a no-op, not a double count.
	if again, err := dst.AdoptRecord(data); err != nil || again {
		t.Fatalf("second AdoptRecord = %v, %v; want no-op", again, err)
	}
	st := dst.Stats()
	if st.Adopted != 1 || st.Writes != 0 {
		t.Fatalf("Stats after adopt = adopted %d writes %d, want 1 and 0", st.Adopted, st.Writes)
	}

	// A mangled record is refused and counted, never stored.
	bad := bytes.Replace(data, []byte(`"sum"`), []byte(`"sim"`), 1)
	if _, err := dst.AdoptRecord(bad); err == nil {
		t.Fatal("AdoptRecord accepted a mangled record")
	}
	if dst.Stats().Corrupt == 0 {
		t.Fatal("mangled adopt not counted as corrupt")
	}
}

// TestAdoptAcrossShardCounts proves the record address is geometry-free:
// bytes exported by a 4-shard store land correctly in a 64-shard store.
func TestAdoptAcrossShardCounts(t *testing.T) {
	src, err := store.OpenWith(t.TempDir(), store.OpenOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	dst, err := store.OpenWith(t.TempDir(), store.OpenOptions{Shards: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	for i := 0; i < 16; i++ {
		k := testKey("w", uint64(i))
		if err := src.Put(k, &uarch.Counters{Cycles: int64(i) + 1}); err != nil {
			t.Fatal(err)
		}
	}
	for _, addr := range allAddrs(t, src) {
		data, ok, err := src.GetRecord(addr)
		if err != nil || !ok {
			t.Fatal("export failed")
		}
		if _, err := dst.AdoptRecord(data); err != nil {
			t.Fatal(err)
		}
	}
	if dst.Len() != 16 {
		t.Fatalf("dst holds %d records, want 16", dst.Len())
	}
	for i := 0; i < 16; i++ {
		k := testKey("w", uint64(i))
		got, ok, err := dst.Get(k)
		if err != nil || !ok || got.Cycles != int64(i)+1 {
			t.Fatalf("key %d: got %+v ok=%v err=%v", i, got, ok, err)
		}
	}
}

// TestAdoptUnderBudgets proves adopted records obey the same LRU budgets
// as local puts: replication cannot inflate a bounded store.
func TestAdoptUnderBudgets(t *testing.T) {
	src, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	dst, err := store.OpenWith(t.TempDir(), store.OpenOptions{MaxRecords: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	for i := 0; i < 6; i++ {
		k := testKey("w", uint64(i))
		if err := src.Put(k, &uarch.Counters{Cycles: 1}); err != nil {
			t.Fatal(err)
		}
	}
	for _, addr := range allAddrs(t, src) {
		data, _, _ := src.GetRecord(addr)
		if _, err := dst.AdoptRecord(data); err != nil {
			t.Fatal(err)
		}
	}
	if n := dst.Len(); n > 2 {
		t.Fatalf("budgeted store holds %d records after adopts, want <= 2", n)
	}
	if dst.Stats().Evictions == 0 {
		t.Fatal("no evictions counted for over-budget adopts")
	}
}
