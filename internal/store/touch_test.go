package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dcbench/internal/memtrace"
	"dcbench/internal/sweep"
	"dcbench/internal/uarch"
)

// touchKey builds a distinct counters key for in-package tests.
func touchKey(i int) sweep.Key {
	return sweep.Key{
		Name:      "touch-w",
		Profile:   memtrace.Profile{Seed: uint64(100 + i), MaxInstrs: 1000},
		ConfigFP:  0xfeed,
		MaxInstrs: 500,
	}
}

// readIndexLines returns the single shard's index log, one line per entry.
func readIndexLines(t *testing.T, dir string) []string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, "v2", "shard-00", indexName))
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, l := range strings.Split(string(data), "\n") {
		if l != "" {
			out = append(out, l)
		}
	}
	return out
}

func countPrefix(lines []string, prefix string) int {
	n := 0
	for _, l := range lines {
		if strings.HasPrefix(l, prefix) {
			n++
		}
	}
	return n
}

// TestTouchBatchingCoalesces: warm Gets do not append a T line per read.
// The batch holds the latest stamp per address, Flush writes the whole
// batch as one append, and repeated reads of one record cost one line —
// this is the syscall cut on the hot read path.
func TestTouchBatchingCoalesces(t *testing.T) {
	dir := t.TempDir()
	clock := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	s, err := OpenWith(dir, OpenOptions{Shards: 1, Now: func() time.Time { return clock }})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 3; i++ {
		if err := s.Put(touchKey(i), &uarch.Counters{Cycles: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	base := len(readIndexLines(t, dir))

	// Ten warm reads of one record plus one of another: nothing on disk yet.
	for i := 0; i < 10; i++ {
		clock = clock.Add(time.Second)
		if _, ok, err := s.Get(touchKey(0)); !ok || err != nil {
			t.Fatalf("Get 0: ok=%v err=%v", ok, err)
		}
	}
	clock = clock.Add(time.Second)
	if _, ok, err := s.Get(touchKey(1)); !ok || err != nil {
		t.Fatalf("Get 1: ok=%v err=%v", ok, err)
	}
	if got := len(readIndexLines(t, dir)); got != base {
		t.Fatalf("warm Gets appended %d index lines before any flush", got-base)
	}

	s.Flush()
	lines := readIndexLines(t, dir)
	if got := len(lines) - base; got != 2 {
		t.Fatalf("flushed %d T lines, want 2 (one per touched address, latest stamp only):\n%s",
			got, strings.Join(lines, "\n"))
	}
	if countPrefix(lines[base:], "T ") != 2 {
		t.Fatalf("flushed lines are not all touches:\n%s", strings.Join(lines[base:], "\n"))
	}
	// A second flush with nothing pending is a no-op.
	s.Flush()
	if got := len(readIndexLines(t, dir)); got != base+2 {
		t.Fatalf("empty flush appended lines (total %d)", got)
	}
}

// TestTouchBatchFlushesAtMax: the batch flushes itself once touchBatchMax
// addresses are pending, without Flush or timer.
func TestTouchBatchFlushesAtMax(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenWith(dir, OpenOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < touchBatchMax; i++ {
		if err := s.Put(touchKey(i), &uarch.Counters{}); err != nil {
			t.Fatal(err)
		}
	}
	base := len(readIndexLines(t, dir))
	for i := 0; i < touchBatchMax; i++ {
		if _, ok, err := s.Get(touchKey(i)); !ok || err != nil {
			t.Fatalf("Get %d: ok=%v err=%v", i, ok, err)
		}
	}
	lines := readIndexLines(t, dir)
	if got := countPrefix(lines[base:], "T "); got != touchBatchMax {
		t.Fatalf("batch at max size flushed %d T lines, want %d", got, touchBatchMax)
	}
}

// TestTouchBatchFlushesOnTimer: a lone touch reaches the log within the
// flush delay even if nothing else happens.
func TestTouchBatchFlushesOnTimer(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenWith(dir, OpenOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put(touchKey(0), &uarch.Counters{}); err != nil {
		t.Fatal(err)
	}
	base := len(readIndexLines(t, dir))
	if _, ok, err := s.Get(touchKey(0)); !ok || err != nil {
		t.Fatalf("Get: ok=%v err=%v", ok, err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if countPrefix(readIndexLines(t, dir)[base:], "T ") == 1 {
			break // the timer flushed
		}
		if time.Now().After(deadline) {
			t.Fatal("batched touch never reached the index log")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCloseFlushesTouches: stamps pending at Close survive to the next
// open — a clean shutdown loses no recency.
func TestCloseFlushesTouches(t *testing.T) {
	dir := t.TempDir()
	clock := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	now := func() time.Time { return clock }
	s, err := OpenWith(dir, OpenOptions{Shards: 1, Now: now})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(touchKey(0), &uarch.Counters{}); err != nil {
		t.Fatal(err)
	}
	clock = clock.Add(time.Hour)
	if _, ok, err := s.Get(touchKey(0)); !ok || err != nil {
		t.Fatalf("Get: ok=%v err=%v", ok, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenWith(dir, OpenOptions{Shards: 1, Now: now})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	sh := s2.shards[0]
	sh.mu.Lock()
	var last int64
	for _, e := range sh.index {
		last = e.lastAccess
	}
	sh.mu.Unlock()
	if want := clock.UnixNano(); last != want {
		t.Fatalf("replayed lastAccess = %d, want the touched stamp %d (Close lost the batch)", last, want)
	}
}
