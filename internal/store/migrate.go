package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"dcbench/internal/uarch"
)

// v1Record is the PR 2 flat-layout record: one JSON file per key under
// root/v1/<first hash byte>/<fnv64a>.json, no kind, no checksum.
type v1Record struct {
	Schema   int            `json:"schema"`
	Key      keyJSON        `json:"key"`
	Counters uarch.Counters `json:"counters"`
}

// migrateV1 rewrites a v1 flat store into the sharded v2 layout in place:
// every readable v1 record is re-encoded (gaining its kind and checksum)
// through the normal put path, corrupt records are skipped and counted,
// and only after every record has landed is the SCHEMA marker advanced and
// the v1 tree removed. A crash anywhere before the marker rewrite leaves
// SCHEMA at 1, so the next Open simply migrates again — puts are
// idempotent, so a partial first pass costs nothing but repeated work.
func (s *Store) migrateV1(marker string) error {
	v1 := filepath.Join(s.dir, "v1")
	migrated, skipped, unreadable := 0, 0, 0
	err := filepath.WalkDir(v1, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				return nil // an empty v1 store has no data directory
			}
			return err
		}
		if d.IsDir() || !strings.HasSuffix(p, ".json") {
			return nil
		}
		data, err := os.ReadFile(p)
		if errors.Is(err, fs.ErrNotExist) {
			// A concurrent migrator sharing the directory finished first
			// and disposed of the tree under our walk; the records it
			// carried into v2 are the same ones we were about to write.
			return nil
		}
		if err != nil {
			// One unreadable record must not brick the store: skip it,
			// count it, and preserve the v1 tree below so nothing is
			// deleted that was never carried over.
			unreadable++
			s.corrupt.Add(1)
			s.log.Warn("store: skipping unreadable v1 record", "path", p, "err", err)
			return nil
		}
		var rec v1Record
		if json.Unmarshal(data, &rec) != nil || rec.Schema != 1 {
			skipped++
			s.corrupt.Add(1)
			s.log.Warn("store: skipping corrupt v1 record", "path", p)
			return nil
		}
		key, err := json.Marshal(rec.Key)
		if err != nil {
			return fmt.Errorf("re-encode key: %w", err)
		}
		payload, err := json.Marshal(rec.Counters)
		if err != nil {
			return fmt.Errorf("re-encode counters: %w", err)
		}
		if err := s.put(KindCounters, key, payload); err != nil {
			return err
		}
		migrated++
		return nil
	})
	if err != nil {
		return fmt.Errorf("store: migrating v1 layout: %w", err)
	}
	// Dispose of the v1 tree BEFORE advancing the marker, so the commit can
	// never outrun the preservation of unmigrated records: a crash anywhere
	// up to the marker write re-runs the (idempotent) migration.
	if skipped+unreadable > 0 {
		// Those records were never carried into v2; deleting the tree would
		// destroy their only copy, so set it aside for manual recovery. The
		// atomic rename also disambiguates: a plain v1 dir under a schema-2
		// store can only be a fully-migrated leftover (the RemoveAll branch
		// failing or dying partway), so Open may delete it safely.
		preserved := v1 + "-preserved"
		switch err := os.Rename(v1, preserved); {
		case err == nil:
			s.log.Warn("store: unmigrated v1 records preserved for manual recovery",
				"skipped", skipped, "unreadable", unreadable, "path", preserved)
		case errors.Is(err, fs.ErrNotExist):
			// A concurrent migrator disposed of the tree already; its
			// disposition (preserve or remove) stands.
		default:
			return fmt.Errorf("store: setting aside unmigrated v1 records: %w", err)
		}
	} else if err := os.RemoveAll(v1); err != nil {
		s.log.Warn("store: migrated v1 tree not fully removed", "err", err)
	}
	if err := writeFileAtomic(marker, []byte(fmt.Sprintf("%d\n", SchemaVersion))); err != nil {
		return fmt.Errorf("store: committing migration: %w", err)
	}
	s.log.Info("store: migrated v1 layout", "records", migrated, "skipped", skipped, "unreadable", unreadable)
	return nil
}
