package store_test

import (
	"fmt"
	"sync"
	"testing"

	"dcbench/internal/store"
	"dcbench/internal/sweep"
	"dcbench/internal/uarch"
)

// stressValue is the deterministic counter file goroutine g writes for its
// key i at revision rev — the serial oracle the concurrent runs are checked
// against.
func stressValue(g, i, rev int) *uarch.Counters {
	return &uarch.Counters{
		Cycles:       int64(1_000_000*g + 1_000*i + rev),
		Instructions: int64(g ^ i),
		L2Misses:     int64(rev),
	}
}

// TestConcurrentStress hammers one store from many goroutines — mixed
// Put/Get/Len/Evict across shards, each goroutine owning a disjoint key
// range — and then replays a serial oracle over the final state: no lost
// writes, every read byte-identical to the last write. Run under -race
// (CI does) this is also the store's data-race gate.
func TestConcurrentStress(t *testing.T) {
	const (
		goroutines = 8
		keysPer    = 24
		revisions  = 3
	)
	s, err := store.OpenWith(t.TempDir(), store.OpenOptions{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	key := func(g, i int) sweep.Key { return testKey(fmt.Sprintf("g%d-k%d", g, i), uint64(i)) }
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	done := make(chan struct{})

	// A chaos goroutine keeps the maintenance paths busy: Len snapshots and
	// (budget-free, hence removal-free) eviction passes interleave with the
	// writers, so their locking is exercised against every other operation.
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				s.Len()
				s.Evict()
				s.Stats()
			}
		}
	}()

	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rev := 0; rev < revisions; rev++ {
				for i := 0; i < keysPer; i++ {
					k := key(g, i)
					if err := s.Put(k, stressValue(g, i, rev)); err != nil {
						errs <- fmt.Errorf("g%d put: %w", g, err)
						return
					}
					c, ok, err := s.Get(k)
					if err != nil || !ok {
						errs <- fmt.Errorf("g%d read-own-write %d: ok=%v err=%v", g, i, ok, err)
						return
					}
					if *c != *stressValue(g, i, rev) {
						errs <- fmt.Errorf("g%d key %d rev %d: got %+v", g, i, rev, c)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(done)
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Serial oracle over the final state.
	if n := s.Len(); n != goroutines*keysPer {
		t.Fatalf("Len = %d, want %d (lost or duplicated writes)", n, goroutines*keysPer)
	}
	for g := 0; g < goroutines; g++ {
		for i := 0; i < keysPer; i++ {
			c, ok, err := s.Get(key(g, i))
			if err != nil || !ok {
				t.Fatalf("final read g%d key %d: ok=%v err=%v", g, i, ok, err)
			}
			if want := stressValue(g, i, revisions-1); *c != *want {
				t.Fatalf("final read g%d key %d = %+v, want %+v", g, i, c, want)
			}
		}
	}
	if st := s.Stats(); st.Writes != goroutines*keysPer*revisions || st.Corrupt != 0 {
		t.Fatalf("Stats = %+v, want %d writes and no corruption", st, goroutines*keysPer*revisions)
	}
}

// TestConcurrentStressWithEviction repeats the mix with a tight record
// budget: under concurrent LRU eviction a Get may miss, but it must never
// return anything other than the exact last value written for its key.
func TestConcurrentStressWithEviction(t *testing.T) {
	const (
		goroutines = 8
		keysPer    = 20
		budget     = 40
	)
	s, err := store.OpenWith(t.TempDir(), store.OpenOptions{Shards: 4, MaxRecords: budget})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	key := func(g, i int) sweep.Key { return testKey(fmt.Sprintf("e%d-k%d", g, i), uint64(i)) }
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rev := 0; rev < 2; rev++ {
				for i := 0; i < keysPer; i++ {
					k := key(g, i)
					want := stressValue(g, i, rev)
					if err := s.Put(k, want); err != nil {
						errs <- fmt.Errorf("g%d put: %w", g, err)
						return
					}
					c, ok, err := s.Get(k)
					if err != nil {
						errs <- fmt.Errorf("g%d get: %w", g, err)
						return
					}
					if ok && *c != *want {
						errs <- fmt.Errorf("g%d key %d rev %d: eviction corrupted a read: %+v", g, i, rev, c)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	s.Evict()
	if n := s.Len(); n > budget {
		t.Fatalf("Len = %d, want <= budget %d", n, budget)
	}
	if st := s.Stats(); st.Evictions == 0 || st.Corrupt != 0 {
		t.Fatalf("Stats = %+v, want evictions > 0 and no corruption", st)
	}
}
