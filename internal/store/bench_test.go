package store_test

import (
	"fmt"
	"sync/atomic"
	"testing"

	"dcbench/internal/store"
	"dcbench/internal/uarch"
)

// fill writes n records spread across the keyspace.
func fill(b *testing.B, s *store.Store, n int) {
	b.Helper()
	for i := 0; i < n; i++ {
		if err := s.Put(testKey(fmt.Sprintf("bench-%d", i), uint64(i)), &uarch.Counters{Cycles: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLen pins the acceptance criterion that Len is O(1): its cost
// must stay flat as the record count grows 10x. The v1 store walked the
// whole tree here; the v2 store reads a counter maintained by the index.
func BenchmarkLen(b *testing.B) {
	for _, n := range []int{500, 5000} {
		b.Run(fmt.Sprintf("records=%d", n), func(b *testing.B) {
			s, err := store.Open(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			fill(b, s, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := s.Len(); got != n {
					b.Fatalf("Len = %d, want %d", got, n)
				}
			}
		})
	}
}

// BenchmarkOpenWarm measures the startup scan over a warm store: replaying
// the per-shard index logs, never stat-ing a record file.
func BenchmarkOpenWarm(b *testing.B) {
	for _, n := range []int{500, 5000} {
		b.Run(fmt.Sprintf("records=%d", n), func(b *testing.B) {
			dir := b.TempDir()
			s, err := store.Open(dir)
			if err != nil {
				b.Fatal(err)
			}
			fill(b, s, n)
			s.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w, err := store.Open(dir)
				if err != nil {
					b.Fatal(err)
				}
				if got := w.Len(); got != n {
					b.Fatalf("warm Len = %d, want %d", got, n)
				}
				w.Close()
			}
		})
	}
}

// BenchmarkPutParallel exercises the per-shard locking under a write-heavy
// parallel load — the sweep write-through pattern.
func BenchmarkPutParallel(b *testing.B) {
	s, err := store.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	var seq atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		g := seq.Add(1) // distinct keyspace per goroutine: cross-shard writes
		i := 0
		for pb.Next() {
			i++
			k := testKey(fmt.Sprintf("p-%d-%d", g, i), uint64(i))
			if err := s.Put(k, &uarch.Counters{Cycles: int64(i)}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGetHit is the warm-read path: one record fetch plus the LRU
// touch.
func BenchmarkGetHit(b *testing.B) {
	s, err := store.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	k := testKey("hot", 1)
	if err := s.Put(k, &uarch.Counters{Cycles: 1}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := s.Get(k); !ok || err != nil {
			b.Fatalf("ok=%v err=%v", ok, err)
		}
	}
}
