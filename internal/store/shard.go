package store

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"
)

// indexName is the per-shard append-only index file. Each line is one of
//
//	P <addr> <lastAccessUnixNano> <size>   record written (or adopted)
//	T <addr> <lastAccessUnixNano>          record read (LRU touch)
//	D <addr>                               record removed
//
// Replaying the log at Open rebuilds the shard's in-memory view in
// O(index lines) — no directory walk, no per-record stat — and makes Len an
// O(1) counter read. A torn final line (a crash mid-append) is skipped and
// counted as corruption, never fatal: the records themselves stay the
// source of truth and Get falls back to disk on an index miss.
const indexName = "index.log"

// compactSlack: the log is rewritten once its line count exceeds this many
// times the live entry count (plus a floor so tiny shards never churn).
const compactSlack = 4

// Touch batching: warm Gets are the hot path, and one write syscall per
// Get just to refresh an LRU stamp is the store's dominant cost once it is
// warm. T lines are therefore coalesced per shard — latest stamp per
// address — and flushed as one append when touchBatchMax addresses are
// pending or touchBatchDelay after the first one, whichever comes first.
// The in-memory stamp (which drives eviction in this process) updates
// immediately; only the on-disk line is delayed, so the cost is a slightly
// stale LRU view in a process that opens the directory within the delay —
// and the LRU only needs approximate recency. P and D lines still append
// immediately: they carry existence, not just recency.
const (
	touchBatchMax   = 64
	touchBatchDelay = 100 * time.Millisecond
)

// entry is one record's index state.
type entry struct {
	lastAccess int64 // unix nanoseconds of the last Put or Get
	size       int64 // record file size in bytes
}

// shard is one hash shard: a directory of record files plus its index. Each
// shard has its own lock, so concurrent sweep write-through across shards
// never serialises on a store-wide mutex.
type shard struct {
	dir string

	mu        sync.Mutex
	index     map[string]*entry
	logf      *os.File // nil after a failed reopen; lazily reopened
	closed    bool     // Store.Close called: stay shut for good
	lines     int      // log lines since the last rewrite, live or not
	compactAt int      // backoff floor after a failed compaction (0 = none)

	pending    map[string]int64 // batched T stamps (addr → latest) not yet appended
	touchTimer *time.Timer      // armed while pending is non-empty
}

// open creates the shard directory if needed, replays the index log into
// memory and opens the log for appending. It reports how many malformed
// index lines were skipped.
func (sh *shard) open() (corrupt int, err error) {
	if err := os.MkdirAll(sh.dir, 0o755); err != nil {
		return 0, err
	}
	sh.index = make(map[string]*entry)
	path := filepath.Join(sh.dir, indexName)
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return 0, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" {
			continue
		}
		sh.lines++
		if !sh.replay(line) {
			corrupt++
		}
	}
	if err := sh.reconcile(); err != nil {
		return corrupt, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return corrupt, err
	}
	sh.logf = f
	return corrupt, nil
}

// reconcile squares the replayed index with the shard directory: a record
// whose index line was lost (a crash between the record rename and the
// append, or a compaction racing another process's appends) is adopted so
// it stays counted and evictable, and an index entry whose record file is
// gone is dropped. The listing reads names only; just the rare orphan pays
// a stat (for its size and an mtime-based LRU stamp).
func (sh *shard) reconcile() error {
	entries, err := os.ReadDir(sh.dir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil
		}
		return err
	}
	present := make(map[string]bool, len(entries))
	for _, de := range entries {
		name, ok := strings.CutSuffix(de.Name(), ".json")
		if de.IsDir() || !ok || len(name) != 16 {
			// A stale temp file (a crash between CreateTemp and rename)
			// has no other owner; clean it up once it is old enough that
			// no live process can still be about to rename it.
			if !de.IsDir() && strings.HasPrefix(de.Name(), ".") {
				if info, err := de.Info(); err == nil && time.Since(info.ModTime()) > time.Hour {
					os.Remove(filepath.Join(sh.dir, de.Name()))
				}
			}
			continue
		}
		present[name] = true
		if _, indexed := sh.index[name]; indexed {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue // vanished mid-listing: it was being removed anyway
		}
		sh.index[name] = &entry{lastAccess: info.ModTime().UnixNano(), size: info.Size()}
	}
	for addr := range sh.index {
		if !present[addr] {
			delete(sh.index, addr)
		}
	}
	return nil
}

// replay applies one index line, reporting whether it parsed.
func (sh *shard) replay(line string) bool {
	f := strings.Fields(line)
	switch {
	case len(f) == 4 && f[0] == "P":
		last, err1 := strconv.ParseInt(f[2], 10, 64)
		size, err2 := strconv.ParseInt(f[3], 10, 64)
		if err1 != nil || err2 != nil {
			return false
		}
		sh.index[f[1]] = &entry{lastAccess: last, size: size}
	case len(f) == 3 && f[0] == "T":
		last, err := strconv.ParseInt(f[2], 10, 64)
		if err != nil {
			return false
		}
		if e, ok := sh.index[f[1]]; ok {
			e.lastAccess = last
		}
	case len(f) == 2 && f[0] == "D":
		delete(sh.index, f[1])
	default:
		return false
	}
	return true
}

// appendLocked writes one or more index lines in a single syscall and
// compacts the log when it has grown too far past the live entry count.
// Callers hold sh.mu. Append failures are returned for logging but never
// corrupt state: the in-memory index stays right for this process, and a
// lost line only costs a reopened process one disk fallback or a slightly
// stale LRU stamp.
func (sh *shard) appendLocked(line string) error {
	if sh.closed {
		return errors.New("index log closed")
	}
	if sh.logf == nil {
		// A prior reopen failed (fd pressure, say): retry here rather than
		// freezing the on-disk index for the rest of the process lifetime.
		f, err := os.OpenFile(filepath.Join(sh.dir, indexName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		sh.logf = f
	}
	_, err := sh.logf.WriteString(line)
	sh.lines += strings.Count(line, "\n")
	if sh.lines > compactSlack*len(sh.index)+64 && sh.lines >= sh.compactAt {
		if rerr := sh.rewriteLocked(); rerr != nil {
			// Back off until the log doubles: a failing disk must not turn
			// every subsequent append into a full rewrite attempt.
			sh.compactAt = sh.lines * 2
			if err == nil {
				err = rerr
			}
		} else {
			sh.compactAt = 0
		}
	}
	return err
}

// rewriteLocked compacts the log to one P line per live record. Batched
// touches are dropped rather than flushed: the in-memory stamps they carry
// are already in the index, so the P lines written here subsume them.
func (sh *shard) rewriteLocked() error {
	clear(sh.pending)
	path := filepath.Join(sh.dir, indexName)
	var b strings.Builder
	for addr, e := range sh.index {
		fmt.Fprintf(&b, "P %s %d %d\n", addr, e.lastAccess, e.size)
	}
	if err := writeFileAtomic(path, []byte(b.String())); err != nil {
		return err
	}
	old := sh.logf
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		sh.logf = nil
		old.Close()
		return err
	}
	sh.logf = f
	sh.lines = len(sh.index)
	return old.Close()
}

// recordPath is the record file for an address within this shard.
func (sh *shard) recordPath(addr string) string {
	return filepath.Join(sh.dir, addr+".json")
}

// install writes data as addr's record: the temp file is prepared outside
// the lock, but the rename into place and the index registration happen
// under it — an eviction pass (which also holds sh.mu to remove) can
// therefore never delete a freshly installed record on the basis of a
// stale last-access snapshot taken before the write.
func (sh *shard) install(s *Store, addr string, data []byte, now int64) error {
	tmp, err := os.CreateTemp(sh.dir, ".write-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := os.Rename(tmp.Name(), sh.recordPath(addr)); err != nil {
		return err
	}
	if old, ok := sh.index[addr]; ok {
		s.bytes.Add(int64(len(data)) - old.size)
	} else {
		s.live.Add(1)
		s.bytes.Add(int64(len(data)))
	}
	sh.index[addr] = &entry{lastAccess: now, size: int64(len(data))}
	if err := sh.appendLocked(fmt.Sprintf("P %s %d %d\n", addr, now, int64(len(data)))); err != nil {
		s.log.Warn("store: index append failed", "shard", filepath.Base(sh.dir), "err", err)
	}
	return nil
}

// touch stamps a read for LRU, adopting records this process's index has
// never seen (written by another process sharing the directory). Known
// records batch their T line (see the touch-batching comment up top);
// adoptions append a P line immediately, because they change Len and
// existence, not just recency.
func (sh *shard) touch(s *Store, addr string, now, size int64) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.index[addr]; ok {
		e.lastAccess = now
		if sh.pending == nil {
			sh.pending = make(map[string]int64)
		}
		sh.pending[addr] = now
		if len(sh.pending) >= touchBatchMax {
			sh.flushTouchesLocked(s)
		} else if sh.touchTimer == nil && !sh.closed {
			sh.touchTimer = time.AfterFunc(touchBatchDelay, func() {
				sh.mu.Lock()
				defer sh.mu.Unlock()
				sh.flushTouchesLocked(s)
			})
		}
		return
	}
	// The record may be gone already: an eviction pass can remove it
	// between the caller's read and this adoption (both hold no lock in
	// between), and evict holds sh.mu — so a stat here is race-free.
	if _, err := os.Stat(sh.recordPath(addr)); err != nil {
		return
	}
	s.live.Add(1)
	s.bytes.Add(size)
	sh.index[addr] = &entry{lastAccess: now, size: size}
	if err := sh.appendLocked(fmt.Sprintf("P %s %d %d\n", addr, now, size)); err != nil {
		s.log.Warn("store: index append failed", "shard", filepath.Base(sh.dir), "err", err)
	}
}

// flushTouchesLocked appends every batched T line in one write and disarms
// the flush timer. Callers hold sh.mu.
func (sh *shard) flushTouchesLocked(s *Store) {
	if sh.touchTimer != nil {
		sh.touchTimer.Stop()
		sh.touchTimer = nil
	}
	if len(sh.pending) == 0 {
		return
	}
	var b strings.Builder
	for addr, ts := range sh.pending {
		fmt.Fprintf(&b, "T %s %d\n", addr, ts)
	}
	clear(sh.pending)
	if err := sh.appendLocked(b.String()); err != nil {
		s.log.Warn("store: index append failed", "shard", filepath.Base(sh.dir), "err", err)
	}
}

// flushTouches is flushTouchesLocked for callers not holding sh.mu.
func (sh *shard) flushTouches(s *Store) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.flushTouchesLocked(s)
}

// forget drops an index entry whose record file has vanished (evicted or
// deleted by another process).
func (sh *shard) forget(s *Store, addr string) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.index[addr]
	if !ok {
		return
	}
	// Re-check under the lock: a Put may have installed a fresh record
	// between the caller's failed read and this cleanup (install holds
	// sh.mu, so a stat here cannot race it) — that record must stay
	// indexed.
	if _, err := os.Stat(sh.recordPath(addr)); err == nil {
		return
	}
	delete(sh.index, addr)
	delete(sh.pending, addr) // a batched touch for a dead record is noise
	s.live.Add(-1)
	s.bytes.Add(-e.size)
	if err := sh.appendLocked(fmt.Sprintf("D %s\n", addr)); err != nil {
		s.log.Warn("store: index append failed", "shard", filepath.Base(sh.dir), "err", err)
	}
}

// evict removes one record if its index entry still carries the last-access
// stamp the eviction pass snapshotted — a record touched or rewritten since
// the snapshot is spared. It reports whether the record was removed.
func (sh *shard) evict(s *Store, addr string, lastSeen int64) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.index[addr]
	if !ok || e.lastAccess != lastSeen {
		return false
	}
	if err := os.Remove(sh.recordPath(addr)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		s.log.Warn("store: evict remove failed", "addr", addr, "err", err)
		return false
	}
	delete(sh.index, addr)
	delete(sh.pending, addr)
	s.live.Add(-1)
	s.bytes.Add(-e.size)
	if err := sh.appendLocked(fmt.Sprintf("D %s\n", addr)); err != nil {
		s.log.Warn("store: index append failed", "shard", filepath.Base(sh.dir), "err", err)
	}
	return true
}

// close flushes batched touches, then releases the index log handle; later
// appends fail harmlessly.
func (sh *shard) close(s *Store) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.flushTouchesLocked(s)
	sh.closed = true
	if sh.logf == nil {
		return nil
	}
	err := sh.logf.Close()
	sh.logf = nil
	return err
}
