package store_test

import (
	"context"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"dcbench/internal/memtrace"
	"dcbench/internal/store"
	"dcbench/internal/sweep"
	"dcbench/internal/uarch"
	"dcbench/internal/workloads"
)

func testKey(name string, seed uint64) sweep.Key {
	return sweep.Key{
		Name:      name,
		Profile:   memtrace.Profile{Seed: seed, MaxInstrs: 50_000, CodeKB: 128},
		ConfigFP:  uarch.DefaultConfig().Fingerprint(),
		MaxInstrs: 50_000,
	}
}

// quietLog keeps expected-failure warnings out of test output.
func quietLog(t *testing.T) *slog.Logger {
	t.Helper()
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// fakeClock is an injectable time source for LRU tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time { return c.t }
func (c *fakeClock) advance(d time.Duration) {
	c.t = c.t.Add(d)
}

func newClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)}
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	k := testKey("sort", 42)
	want := &uarch.Counters{Cycles: 123, Instructions: 456, L2Misses: 7}
	if _, ok, err := s.Get(k); err != nil || ok {
		t.Fatalf("empty store Get = ok=%v err=%v, want miss", ok, err)
	}
	if err := s.Put(k, want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(k)
	if err != nil || !ok {
		t.Fatalf("Get after Put: ok=%v err=%v", ok, err)
	}
	if *got != *want {
		t.Fatalf("Get = %+v, want %+v", got, want)
	}
	// A different key — even differing only in seed — must miss.
	if _, ok, _ := s.Get(testKey("sort", 43)); ok {
		t.Fatal("Get with different seed hit the wrong record")
	}
	if n := s.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Writes != 1 || st.Records != 1 {
		t.Fatalf("Stats = %+v, want 1 hit, 2 misses, 1 write, 1 record", st)
	}
}

// TestSharedAcrossOpens is the cross-process contract, approximated with
// two Store handles on one directory.
func TestSharedAcrossOpens(t *testing.T) {
	dir := t.TempDir()
	a, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	k := testKey("grep", 1)
	if err := a.Put(k, &uarch.Counters{Cycles: 9}); err != nil {
		t.Fatal(err)
	}
	b, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if c, ok, err := b.Get(k); err != nil || !ok || c.Cycles != 9 {
		t.Fatalf("second handle Get = %+v ok=%v err=%v", c, ok, err)
	}
	if n := b.Len(); n != 1 {
		t.Fatalf("reopened Len = %d, want 1 (index replay)", n)
	}
	// A record written by one live handle is visible to another opened
	// before the write: Get falls back to disk and adopts it.
	k2 := testKey("grep", 2)
	if err := a.Put(k2, &uarch.Counters{Cycles: 11}); err != nil {
		t.Fatal(err)
	}
	if c, ok, _ := b.Get(k2); !ok || c.Cycles != 11 {
		t.Fatalf("cross-handle Get = %+v ok=%v, want adoption of foreign record", c, ok)
	}
	if n := b.Len(); n != 2 {
		t.Fatalf("Len after adoption = %d, want 2", n)
	}
}

func TestSchemaMismatchRefusedUntouched(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "SCHEMA"), []byte("99\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Open(dir); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("Open on schema 99 = %v, want schema error", err)
	}
	// Refusal must leave no side effects: a future-schema store must not
	// grow this build's layout inside it.
	for _, planted := range []string{"v2", "MANIFEST.json"} {
		if _, err := os.Stat(filepath.Join(dir, planted)); !os.IsNotExist(err) {
			t.Fatalf("Open planted %s inside a refused store (stat err = %v)", planted, err)
		}
	}
}

func TestForeignDirRefusedUntouched(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Open(dir); err == nil || !strings.Contains(err.Error(), "SCHEMA") {
		t.Fatalf("Open on a non-empty non-store dir = %v, want refusal", err)
	}
	for _, planted := range []string{"SCHEMA", "MANIFEST.json", "v2"} {
		if _, err := os.Stat(filepath.Join(dir, planted)); !os.IsNotExist(err) {
			t.Fatalf("Open planted %s in a refused directory", planted)
		}
	}
}

// recordFiles returns every record file under the store's data directory
// (the index logs are not records).
func recordFiles(t *testing.T, dir string) []string {
	t.Helper()
	var out []string
	filepath.Walk(filepath.Join(dir, "v2"), func(p string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && strings.HasSuffix(p, ".json") {
			out = append(out, p)
		}
		return nil
	})
	return out
}

func TestCorruptRecordIsAMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	k := testKey("hmm", 5)
	if err := s.Put(k, &uarch.Counters{Cycles: 1}); err != nil {
		t.Fatal(err)
	}
	recs := recordFiles(t, dir)
	if len(recs) != 1 {
		t.Fatalf("record files = %d, want 1", len(recs))
	}
	// Truncate the record in place: Get must degrade to a counted miss.
	if err := os.WriteFile(recs[0], []byte(`{"schema":2,"kind"`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get(k); err != nil || ok {
		t.Fatalf("corrupt record Get = ok=%v err=%v, want clean miss", ok, err)
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Fatalf("Stats.Corrupt = %d, want 1", st.Corrupt)
	}
	// A flipped payload byte that still parses as JSON must also be caught
	// (the checksum, not the parser, is the last line of defense).
	if err := s.Put(k, &uarch.Counters{Cycles: 1}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(recs[0])
	if err != nil {
		t.Fatal(err)
	}
	mutated := strings.Replace(string(data), `"Cycles":1`, `"Cycles":7`, 1)
	if mutated == string(data) {
		t.Fatal("test setup: payload byte not found")
	}
	if err := os.WriteFile(recs[0], []byte(mutated), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get(k); ok {
		t.Fatal("checksum failed to catch a mutated payload digit")
	}
	if st := s.Stats(); st.Corrupt != 2 {
		t.Fatalf("Stats.Corrupt = %d, want 2", st.Corrupt)
	}
	// And Put must repair it.
	if err := s.Put(k, &uarch.Counters{Cycles: 2}); err != nil {
		t.Fatal(err)
	}
	if c, ok, _ := s.Get(k); !ok || c.Cycles != 2 {
		t.Fatalf("Get after repair = %+v ok=%v", c, ok)
	}
}

// TestBackendSwallowsFailure: the MemoBackend adapter must degrade a broken
// store to plain misses, never break the sweep.
func TestBackendSwallowsFailure(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	b := s.Backend(quietLog(t))
	// Remove the data directory out from under the store: Store fails
	// internally, Load reports a miss; neither panics nor errors out.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
	k := testKey("pagerank", 2)
	b.Store(context.Background(), k, &uarch.Counters{Cycles: 3})
	if _, ok := b.Load(context.Background(), k); ok {
		t.Fatal("Load on a broken store reported a hit")
	}
}

func TestShardCountPinnedByManifest(t *testing.T) {
	dir := t.TempDir()
	s, err := store.OpenWith(dir, store.OpenOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.ShardCount(); got != 4 {
		t.Fatalf("ShardCount = %d, want 4", got)
	}
	keys := make([]sweep.Key, 20)
	for i := range keys {
		keys[i] = testKey("w", uint64(i))
		if err := s.Put(keys[i], &uarch.Counters{Cycles: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	// Reopening with a different requested width must keep the manifest's
	// count, or every address would route to the wrong shard.
	s2, err := store.OpenWith(dir, store.OpenOptions{Shards: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.ShardCount(); got != 4 {
		t.Fatalf("reopened ShardCount = %d, want the manifest's 4", got)
	}
	for i, k := range keys {
		if c, ok, err := s2.Get(k); err != nil || !ok || c.Cycles != int64(i) {
			t.Fatalf("key %d after reopen: c=%+v ok=%v err=%v", i, c, ok, err)
		}
	}
	if _, err := store.OpenWith(t.TempDir(), store.OpenOptions{Shards: 3}); err == nil {
		t.Fatal("OpenWith accepted a non-power-of-two shard count")
	}
	// A lost manifest must be recovered from the shard directories, never
	// fabricated from the flags: that would re-route every key.
	s2.Close()
	if err := os.Remove(filepath.Join(dir, "MANIFEST.json")); err != nil {
		t.Fatal(err)
	}
	s3, err := store.OpenWith(dir, store.OpenOptions{Shards: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if got := s3.ShardCount(); got != 4 {
		t.Fatalf("ShardCount after manifest loss = %d, want the 4 inferred from shard dirs", got)
	}
	for i, k := range keys {
		if c, ok, err := s3.Get(k); err != nil || !ok || c.Cycles != int64(i) {
			t.Fatalf("key %d after manifest recovery: c=%+v ok=%v err=%v", i, c, ok, err)
		}
	}
}

func TestEvictionLRU(t *testing.T) {
	clock := newClock()
	s, err := store.OpenWith(t.TempDir(), store.OpenOptions{
		Shards: 4, MaxRecords: 8, Now: clock.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	keys := make([]sweep.Key, 12)
	for i := range keys {
		keys[i] = testKey("w", uint64(i))
		if err := s.Put(keys[i], &uarch.Counters{Cycles: int64(i)}); err != nil {
			t.Fatal(err)
		}
		clock.advance(time.Second)
	}
	if n := s.Len(); n != 8 {
		t.Fatalf("Len after capped puts = %d, want 8", n)
	}
	if st := s.Stats(); st.Evictions != 4 {
		t.Fatalf("Evictions = %d, want 4", st.Evictions)
	}
	// The four oldest writes are the victims.
	for i, k := range keys {
		_, ok, err := s.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		if want := i >= 4; ok != want {
			t.Fatalf("key %d present=%v, want %v (LRU order)", i, ok, want)
		}
	}
	// A Get refreshes recency: key 4 must now outlive fresher-but-untouched
	// keys when the next eviction pass runs.
	clock.advance(time.Second)
	if _, ok, _ := s.Get(keys[4]); !ok {
		t.Fatal("key 4 vanished early")
	}
	for i := 12; i < 15; i++ {
		clock.advance(time.Second)
		if err := s.Put(testKey("w", uint64(i)), &uarch.Counters{}); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok, _ := s.Get(keys[4]); !ok {
		t.Fatal("recently read key 4 was evicted before stale keys")
	}
	if _, ok, _ := s.Get(keys[5]); ok {
		t.Fatal("stale key 5 survived eviction ahead of fresher keys")
	}
}

func TestEvictionMaxBytes(t *testing.T) {
	// Calibrate one record's on-disk size: the keys differ only in a seed
	// digit, so every record is the same width.
	calib, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := calib.Put(testKey("w", 0), &uarch.Counters{Cycles: 1}); err != nil {
		t.Fatal(err)
	}
	recSize := calib.Bytes()
	calib.Close()
	if recSize <= 0 {
		t.Fatalf("calibration Bytes = %d, want > 0", recSize)
	}

	clock := newClock()
	dir := t.TempDir()
	budget := 8*recSize + recSize/2 // room for 8 records, not 9
	s, err := store.OpenWith(dir, store.OpenOptions{
		Shards: 4, MaxBytes: budget, Now: clock.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]sweep.Key, 12)
	for i := range keys {
		keys[i] = testKey("w", uint64(i))
		if err := s.Put(keys[i], &uarch.Counters{Cycles: 1}); err != nil {
			t.Fatal(err)
		}
		clock.advance(time.Second)
	}
	if got := s.Bytes(); got > budget {
		t.Fatalf("Bytes after capped puts = %d, want <= the %d budget", got, budget)
	}
	if st := s.Stats(); st.Evictions == 0 || st.Bytes != s.Bytes() {
		t.Fatalf("Stats = %+v, want nonzero evictions and Bytes matching", st)
	}
	// LRU order: the oldest writes are the victims, the newest survive.
	if _, ok, _ := s.Get(keys[0]); ok {
		t.Fatal("oldest key survived the byte budget")
	}
	if _, ok, _ := s.Get(keys[11]); !ok {
		t.Fatal("newest key was evicted")
	}
	// The byte ledger survives a reopen: replayed index sizes must sum to
	// the same total (Get above refreshed stamps, so flush them first).
	want := s.Bytes()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := store.OpenWith(dir, store.OpenOptions{Now: clock.now})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Bytes(); got != want {
		t.Fatalf("Bytes after reopen = %d, want %d", got, want)
	}

	// An explicit Evict with a tighter budget trims to it exactly.
	s3, err := store.OpenWith(t.TempDir(), store.OpenOptions{
		Shards: 4, MaxBytes: 2 * recSize, Now: clock.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	for i := 0; i < 2; i++ {
		if err := s3.Put(testKey("w", uint64(i)), &uarch.Counters{Cycles: 1}); err != nil {
			t.Fatal(err)
		}
		clock.advance(time.Second)
	}
	if got := s3.Len(); got != 2 {
		t.Fatalf("Len under exact budget = %d, want 2 (no eviction below the cap)", got)
	}
}

func TestEvictionMaxAge(t *testing.T) {
	clock := newClock()
	dir := t.TempDir()
	s, err := store.OpenWith(dir, store.OpenOptions{MaxAge: time.Hour, Now: clock.now})
	if err != nil {
		t.Fatal(err)
	}
	old, fresh := testKey("old", 1), testKey("fresh", 2)
	if err := s.Put(old, &uarch.Counters{Cycles: 1}); err != nil {
		t.Fatal(err)
	}
	clock.advance(2 * time.Hour)
	if err := s.Put(fresh, &uarch.Counters{Cycles: 2}); err != nil {
		t.Fatal(err)
	}
	if n := s.Evict(); n != 1 {
		t.Fatalf("Evict removed %d records, want 1", n)
	}
	if _, ok, _ := s.Get(old); ok {
		t.Fatal("expired record survived the age pass")
	}
	if _, ok, _ := s.Get(fresh); !ok {
		t.Fatal("fresh record was age-evicted")
	}
	s.Close()
	// The age pass also runs at Open.
	clock.advance(2 * time.Hour)
	s2, err := store.OpenWith(dir, store.OpenOptions{MaxAge: time.Hour, Now: clock.now})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if n := s2.Len(); n != 0 {
		t.Fatalf("Len after aged reopen = %d, want 0", n)
	}
}

// TestOpenReconcilesIndexWithDirectory: the index is a cache, the record
// files are the truth. A record whose index line was lost (crash between
// rename and append, compaction racing another process) must be re-adopted
// at Open — counted and evictable — and an index entry whose record file
// is gone must be dropped.
func TestOpenReconcilesIndexWithDirectory(t *testing.T) {
	dir := t.TempDir()
	s, err := store.OpenWith(dir, store.OpenOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]sweep.Key, 3)
	for i := range keys {
		keys[i] = testKey("r", uint64(i))
		if err := s.Put(keys[i], &uarch.Counters{Cycles: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	shardDir := filepath.Join(dir, "v2", "shard-00")
	// Lost index: wipe the log entirely.
	if err := os.Remove(filepath.Join(shardDir, "index.log")); err != nil {
		t.Fatal(err)
	}
	s2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n := s2.Len(); n != 3 {
		t.Fatalf("Len after index loss = %d, want 3 (records re-adopted from the directory)", n)
	}
	for i, k := range keys {
		if c, ok, _ := s2.Get(k); !ok || c.Cycles != int64(i) {
			t.Fatalf("re-adopted key %d = %+v ok=%v", i, c, ok)
		}
	}
	s2.Close()
	// Lost record: the index references a file that is gone.
	recs := recordFiles(t, dir)
	if err := os.Remove(recs[0]); err != nil {
		t.Fatal(err)
	}
	s3, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if n := s3.Len(); n != 2 {
		t.Fatalf("Len after record loss = %d, want 2 (stale index entry dropped)", n)
	}
}

// TestOpenCleansStaleTempFiles: a crash between CreateTemp and rename
// leaves a .write-* file no other pass owns; Open removes it once it is
// old enough that no live process can still be about to rename it.
func TestOpenCleansStaleTempFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := store.OpenWith(dir, store.OpenOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testKey("t", 1), &uarch.Counters{Cycles: 1}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	shardDir := filepath.Join(dir, "v2", "shard-00")
	stale := filepath.Join(shardDir, ".write-stale")
	fresh := filepath.Join(shardDir, ".write-fresh")
	for _, p := range []string{stale, fresh} {
		if err := os.WriteFile(p, []byte("half a record"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	s2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale temp file survived Open (stat err = %v)", err)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatalf("fresh temp file (possibly a live process's in-flight write) was removed: %v", err)
	}
	if n := s2.Len(); n != 1 {
		t.Fatalf("Len = %d, want temp files never counted as records", n)
	}
}

func TestClusterStatsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := workloads.StatsKey{Workload: "Sort", Slaves: 4, Scale: 0.004, Seed: 42}
	want := &workloads.Stats{
		Workload: "Sort", Slaves: 4, Makespan: 123.456, Jobs: 3,
		InputSimBytes: 1 << 30, DiskWriteOps: 777, DiskWriteBytes: 1 << 20,
		NetBytes: 42, CoreSeconds: 9.875,
		Quality: map[string]float64{"sorted_fraction": 1},
	}
	if _, ok, err := s.GetClusterStats(k); err != nil || ok {
		t.Fatalf("empty GetClusterStats = ok=%v err=%v", ok, err)
	}
	if err := s.PutClusterStats(k, want); err != nil {
		t.Fatal(err)
	}
	// Counters and cluster records share the store but never each other's
	// namespace.
	if _, ok, _ := s.Get(testKey("Sort", 42)); ok {
		t.Fatal("a cluster record answered a counters Get")
	}
	s.Close()
	s2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, ok, err := s2.GetClusterStats(k)
	if err != nil || !ok {
		t.Fatalf("GetClusterStats after reopen: ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("GetClusterStats = %+v, want %+v", got, want)
	}
	if _, ok, _ := s2.GetClusterStats(workloads.StatsKey{Workload: "Sort", Slaves: 8, Scale: 0.004, Seed: 42}); ok {
		t.Fatal("GetClusterStats hit the wrong slave count")
	}
}

// TestStatsBackendRoundTrip pins the workloads.StatsBackend adapter and its
// interplay with the StatsCache: a fresh cache over a warm store loads
// every run from disk instead of re-running.
func TestStatsBackendRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	b := s.StatsBackend(quietLog(t))
	k := workloads.StatsKey{Workload: "Grep", Slaves: 4, Scale: 0.01, Seed: 7}
	ran := 0
	run := func() (*workloads.Stats, error) {
		ran++
		return &workloads.Stats{Workload: "Grep", Slaves: 4, Makespan: 5}, nil
	}
	cold := workloads.NewStatsCache(b)
	if _, err := cold.Do(context.Background(), k, run); err != nil {
		t.Fatal(err)
	}
	if _, err := cold.Do(context.Background(), k, run); err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Fatalf("cold cache ran %d times, want 1", ran)
	}
	warm := workloads.NewStatsCache(b) // the restart: fresh L1, same store
	st, err := warm.Do(context.Background(), k, run)
	if err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Fatalf("warm cache re-ran the experiment (%d runs)", ran)
	}
	if st.Makespan != 5 {
		t.Fatalf("warm stats = %+v", st)
	}
}
