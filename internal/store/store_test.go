package store_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dcbench/internal/memtrace"
	"dcbench/internal/store"
	"dcbench/internal/sweep"
	"dcbench/internal/uarch"
)

func testKey(name string, seed uint64) sweep.Key {
	return sweep.Key{
		Name:      name,
		Profile:   memtrace.Profile{Seed: seed, MaxInstrs: 50_000, CodeKB: 128},
		ConfigFP:  uarch.DefaultConfig().Fingerprint(),
		MaxInstrs: 50_000,
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("sort", 42)
	want := &uarch.Counters{Cycles: 123, Instructions: 456, L2Misses: 7}
	if _, ok, err := s.Get(k); err != nil || ok {
		t.Fatalf("empty store Get = ok=%v err=%v, want miss", ok, err)
	}
	if err := s.Put(k, want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(k)
	if err != nil || !ok {
		t.Fatalf("Get after Put: ok=%v err=%v", ok, err)
	}
	if *got != *want {
		t.Fatalf("Get = %+v, want %+v", got, want)
	}
	// A different key — even differing only in seed — must miss.
	if _, ok, _ := s.Get(testKey("sort", 43)); ok {
		t.Fatal("Get with different seed hit the wrong record")
	}
	if n, err := s.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v; want 1", n, err)
	}
}

// TestSharedAcrossOpens is the cross-process contract, approximated with
// two Store handles on one directory.
func TestSharedAcrossOpens(t *testing.T) {
	dir := t.TempDir()
	a, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("grep", 1)
	if err := a.Put(k, &uarch.Counters{Cycles: 9}); err != nil {
		t.Fatal(err)
	}
	b, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c, ok, err := b.Get(k); err != nil || !ok || c.Cycles != 9 {
		t.Fatalf("second handle Get = %+v ok=%v err=%v", c, ok, err)
	}
}

func TestSchemaMismatchRefusedUntouched(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "SCHEMA"), []byte("99\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Open(dir); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("Open on schema 99 = %v, want schema error", err)
	}
	// Refusal must leave no side effects: a future-schema store must not
	// grow this build's v1 directory inside it.
	if _, err := os.Stat(filepath.Join(dir, "v1")); !os.IsNotExist(err) {
		t.Fatalf("Open planted v1/ inside a refused store (stat err = %v)", err)
	}
}

func TestForeignDirRefusedUntouched(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Open(dir); err == nil || !strings.Contains(err.Error(), "SCHEMA") {
		t.Fatalf("Open on a non-empty non-store dir = %v, want refusal", err)
	}
	for _, planted := range []string{"SCHEMA", "v1"} {
		if _, err := os.Stat(filepath.Join(dir, planted)); !os.IsNotExist(err) {
			t.Fatalf("Open planted %s in a refused directory", planted)
		}
	}
}

func TestCorruptRecordIsAMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("hmm", 5)
	if err := s.Put(k, &uarch.Counters{Cycles: 1}); err != nil {
		t.Fatal(err)
	}
	// Truncate the record in place: Get must degrade to a miss, not fail.
	var recPath string
	filepath.Walk(filepath.Join(dir, "v1"), func(p string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && strings.HasSuffix(p, ".json") {
			recPath = p
		}
		return nil
	})
	if recPath == "" {
		t.Fatal("no record file written")
	}
	if err := os.WriteFile(recPath, []byte(`{"schema":1,"key"`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get(k); err != nil || ok {
		t.Fatalf("corrupt record Get = ok=%v err=%v, want clean miss", ok, err)
	}
	// And Put must repair it.
	if err := s.Put(k, &uarch.Counters{Cycles: 2}); err != nil {
		t.Fatal(err)
	}
	if c, ok, _ := s.Get(k); !ok || c.Cycles != 2 {
		t.Fatalf("Get after repair = %+v ok=%v", c, ok)
	}
}

// TestBackendSwallowsFailure: the MemoBackend adapter must degrade a broken
// store to plain misses, never break the sweep.
func TestBackendSwallowsFailure(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	b := s.Backend(nil)
	// Remove the data directory out from under the store: Store fails
	// internally, Load reports a miss; neither panics nor errors out.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
	k := testKey("pagerank", 2)
	b.Store(k, &uarch.Counters{Cycles: 3})
	if _, ok := b.Load(k); ok {
		t.Fatal("Load on a broken store reported a hit")
	}
}
