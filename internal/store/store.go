// Package store is a persistent, content-addressed result store for
// characterization sweeps: it persists uarch.Counters keyed by the sweep
// memo key (workload name, trace profile, config fingerprint, trace
// length) to an on-disk layout with a versioned schema, so warm results
// survive process restarts and are shared across processes.
//
// Layout under the root directory:
//
//	root/SCHEMA            the schema version ("1\n"); a mismatch refuses
//	                       to open rather than misread old bytes
//	root/v1/ab/<hash>.json one record per key, sharded by the first hash
//	                       byte; <hash> is the fnv64a of the canonical
//	                       (JSON) key encoding
//
// Records are written to a temp file and renamed into place, so concurrent
// readers — including other processes — observe either the whole record or
// none of it. Each record embeds its full key; Get verifies the stored key
// against the requested one, so a (vanishingly unlikely) hash collision or
// a corrupted record degrades to a miss instead of returning the wrong
// workload's counters.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"log/slog"
	"os"
	"path/filepath"
	"strings"

	"dcbench/internal/memtrace"
	"dcbench/internal/sweep"
	"dcbench/internal/uarch"
)

// SchemaVersion is the on-disk schema this package reads and writes.
// Records carry it too, so a future reader can tell v1 bytes apart without
// trusting the directory name.
const SchemaVersion = 1

// Store is an on-disk result store. It is safe for concurrent use by any
// number of goroutines and processes sharing one root directory.
type Store struct {
	root string // the versioned data directory, root/v1
}

// Open opens (creating if needed) the store rooted at dir. Validation runs
// before any write: a directory holding a different schema version, or a
// non-empty directory that is not a store at all (a mistyped -store path,
// say), is refused untouched — refusing is safer than guessing, and the
// caller can point at a fresh directory.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty root directory")
	}
	marker := filepath.Join(dir, "SCHEMA")
	want := fmt.Sprintf("%d\n", SchemaVersion)
	switch got, err := os.ReadFile(marker); {
	case err == nil:
		if strings.TrimSpace(string(got)) != strings.TrimSpace(want) {
			return nil, fmt.Errorf("store: %s holds schema version %q, this build reads %q",
				dir, strings.TrimSpace(string(got)), strings.TrimSpace(want))
		}
	case errors.Is(err, fs.ErrNotExist):
		if entries, derr := os.ReadDir(dir); derr == nil && len(entries) > 0 {
			return nil, fmt.Errorf("store: %s is non-empty but carries no SCHEMA marker; refusing to initialise a store over it", dir)
		} else if derr != nil && !errors.Is(derr, fs.ErrNotExist) {
			return nil, fmt.Errorf("store: %w", derr)
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		if err := os.WriteFile(marker, []byte(want), 0o644); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	default:
		return nil, fmt.Errorf("store: %w", err)
	}
	versioned := filepath.Join(dir, fmt.Sprintf("v%d", SchemaVersion))
	if err := os.MkdirAll(versioned, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{root: versioned}, nil
}

// keyJSON is sweep.Key with stable wire names; it doubles as the canonical
// encoding the content address is hashed from. memtrace.Profile is a flat
// struct of scalars, so its default JSON encoding is deterministic.
type keyJSON struct {
	Name      string           `json:"name"`
	Profile   memtrace.Profile `json:"profile"`
	ConfigFP  uint64           `json:"config_fp"`
	MaxInstrs int64            `json:"max_instrs"`
}

// record is the on-disk form of one result.
type record struct {
	Schema   int            `json:"schema"`
	Key      keyJSON        `json:"key"`
	Counters uarch.Counters `json:"counters"`
}

// path returns the record path for a key: sharded by the first address
// byte so a large store does not pile every record into one directory.
func (s *Store) path(k sweep.Key) (string, error) {
	canon, err := json.Marshal(keyJSON{k.Name, k.Profile, k.ConfigFP, k.MaxInstrs})
	if err != nil {
		return "", fmt.Errorf("store: encode key: %w", err)
	}
	h := fnv.New64a()
	h.Write(canon)
	addr := fmt.Sprintf("%016x", h.Sum64())
	return filepath.Join(s.root, addr[:2], addr+".json"), nil
}

// Get loads the counters stored under k. A missing, corrupt, or
// key-mismatched record is a plain miss (false, nil error); an error means
// the store itself misbehaved (unreadable file, bad permissions).
func (s *Store) Get(k sweep.Key) (*uarch.Counters, bool, error) {
	p, err := s.path(k)
	if err != nil {
		return nil, false, err
	}
	data, err := os.ReadFile(p)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("store: %w", err)
	}
	var rec record
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, false, nil // torn or corrupt record: treat as a miss
	}
	if rec.Schema != SchemaVersion ||
		rec.Key != (keyJSON{k.Name, k.Profile, k.ConfigFP, k.MaxInstrs}) {
		return nil, false, nil // collision or foreign record: miss
	}
	c := rec.Counters
	return &c, true, nil
}

// Put persists counters under k, atomically replacing any prior record.
func (s *Store) Put(k sweep.Key, c *uarch.Counters) error {
	p, err := s.path(k)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	data, err := json.Marshal(record{
		Schema:   SchemaVersion,
		Key:      keyJSON{k.Name, k.Profile, k.ConfigFP, k.MaxInstrs},
		Counters: *c,
	})
	if err != nil {
		return fmt.Errorf("store: encode record: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), ".put-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Len walks the store and counts records — an observability helper for
// tests and the service's health endpoint, not a hot path.
func (s *Store) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(s.root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".json") {
			n++
		}
		return nil
	})
	return n, err
}

// Backend adapts the store to the sweep engine's MemoBackend contract:
// failures are logged and swallowed, so a broken disk degrades the engine
// to plain re-simulation instead of failing sweeps.
func (s *Store) Backend(log *slog.Logger) sweep.MemoBackend {
	if log == nil {
		log = slog.Default()
	}
	return &backend{s: s, log: log}
}

type backend struct {
	s   *Store
	log *slog.Logger
}

func (b *backend) Load(k sweep.Key) (*uarch.Counters, bool) {
	c, ok, err := b.s.Get(k)
	if err != nil {
		b.log.Warn("store load failed; re-simulating", "workload", k.Name, "err", err)
		return nil, false
	}
	return c, ok
}

func (b *backend) Store(k sweep.Key, c *uarch.Counters) {
	if err := b.s.Put(k, c); err != nil {
		b.log.Warn("store put failed; result not persisted", "workload", k.Name, "err", err)
	}
}
