// Package store is a persistent, content-addressed result store for
// characterization sweeps: it persists uarch.Counters keyed by the sweep
// memo key and workloads.Stats keyed by the cluster run key to an on-disk
// layout with a versioned schema, so warm results survive process restarts
// and are shared across processes.
//
// Layout under the root directory:
//
//	root/SCHEMA               the schema version ("2\n"); an unknown version
//	                          refuses to open rather than misread old bytes
//	root/MANIFEST.json        {"schema":2,"shards":N}; the shard count is
//	                          fixed here when the store is created, so every
//	                          later open — whatever its flags say — routes
//	                          keys identically
//	root/v2/shard-??/         one directory per hash shard (N power of two)
//	root/v2/shard-??/index.log   the shard's append-only index (see shard.go)
//	root/v2/shard-??/<addr>.json one record per key; <addr> is the fnv64a of
//	                          (kind, canonical key JSON)
//
// Records are written to a temp file and renamed into place, so concurrent
// readers — including other processes — observe either the whole record or
// none of it. Each record embeds its kind, its full key and a checksum; Get
// verifies all three, so a hash collision, a torn write or a flipped byte
// degrades to a counted miss instead of returning the wrong workload's
// counters.
//
// The in-memory index (rebuilt at Open by replaying the per-shard logs
// plus one name-only directory listing per shard to re-adopt records whose
// index line was lost — never a per-record read or stat) makes Len an O(1)
// counter read and carries each record's last-access time, which drives the
// LRU eviction pass: with MaxRecords or MaxAge set, Evict removes the
// least-recently-used records beyond the budget and every record idle past
// the age limit. Within one process the store is safe for any number of
// goroutines (per-shard locking); across processes the record files stay
// coherent (Get falls back to disk and adopts foreign records into the
// index), while Len and LRU stamps are per-process views that converge on
// the next Open.
//
// A directory holding the PR 2 flat v1 layout is migrated in place on Open:
// every readable v1 record is rewritten into the sharded v2 layout, corrupt
// ones are skipped and counted, and only then is the SCHEMA marker advanced
// and the v1 tree removed — a crash mid-migration re-runs it idempotently.
package store

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"io/fs"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dcbench/internal/memtrace"
	"dcbench/internal/obs"
	"dcbench/internal/sweep"
	"dcbench/internal/uarch"
	"dcbench/internal/workloads"
)

// SchemaVersion is the on-disk schema this package reads and writes (and
// migrates version 1 up to).
const SchemaVersion = 2

// DefaultShards is the shard count for newly created stores: wide enough
// that a full-width sweep's write-through rarely contends on one shard
// lock, small enough that an empty store is a handful of directories.
const DefaultShards = 16

// maxShards bounds the manifest: shard directories are named by one hex
// byte.
const maxShards = 256

const manifestName = "MANIFEST.json"

// manifest pins the store's immutable geometry.
type manifest struct {
	Schema int `json:"schema"`
	Shards int `json:"shards"`
}

// OpenOptions tunes OpenWith. The zero value matches Open.
type OpenOptions struct {
	// Shards is the shard count for a store being created (or migrated from
	// v1); it must be a power of two in [1, 256]. 0 means DefaultShards.
	// Opening an existing v2 store always uses the manifest's count.
	Shards int
	// MaxRecords, when positive, caps the store: a Put pushing the record
	// count past it triggers an LRU eviction pass trimming to 10% below the
	// cap (so a sustained write load evicts per batch, not per Put); an
	// explicit Evict trims to the cap exactly.
	MaxRecords int
	// MaxBytes, when positive, caps the total record bytes on disk with the
	// same LRU policy and hysteresis as MaxRecords; the two budgets compose
	// (eviction runs until both are satisfied).
	MaxBytes int64
	// MaxAge, when positive, makes eviction passes (including the one at
	// Open) remove records not written or read for longer than this.
	MaxAge time.Duration
	// Now supplies timestamps for LRU stamps and age checks; nil means
	// time.Now. Tests inject a fake clock here.
	Now func() time.Time
	// Log defaults to slog.Default().
	Log *slog.Logger
}

// RegisterFlags declares the store tuning flags on fs, defaulted from *o
// and written back on Parse — the single definition shared by dcbench and
// dcserved, so the flag surface cannot drift between the binaries.
func RegisterFlags(fs *flag.FlagSet, o *OpenOptions) {
	if o.Shards == 0 {
		o.Shards = DefaultShards
	}
	fs.IntVar(&o.Shards, "store-shards", o.Shards, "shard count when creating a store (power of two; existing stores keep their manifest's count)")
	fs.IntVar(&o.MaxRecords, "store-max-records", o.MaxRecords, "evict least-recently-used records beyond this count; 0 = unlimited")
	fs.Int64Var(&o.MaxBytes, "store-max-bytes", o.MaxBytes, "evict least-recently-used records once total record bytes exceed this; 0 = unlimited")
	fs.DurationVar(&o.MaxAge, "store-max-age", o.MaxAge, "evict records unused for longer than this; 0 = keep forever")
}

// Stats is a snapshot of the store's monotonic counters plus its current
// size and geometry. It aliases sweep.BackendStats — the engine-facing
// observability type — so the two surfaces can never drift apart.
type Stats = sweep.BackendStats

// Store is an on-disk result store. It is safe for concurrent use by any
// number of goroutines; see the package comment for the cross-process
// contract.
type Store struct {
	dir        string
	shards     []*shard
	maxRecords int
	maxBytes   int64
	maxAge     time.Duration
	now        func() time.Time
	log        *slog.Logger

	live      atomic.Int64 // current record count across shards
	bytes     atomic.Int64 // current record bytes across shards
	hits      atomic.Int64
	misses    atomic.Int64
	writes    atomic.Int64
	adopted   atomic.Int64 // records installed verbatim from a replica peer
	evictions atomic.Int64
	corrupt   atomic.Int64
	evictMu   sync.Mutex // one eviction pass at a time
}

// Open opens (creating if needed) the store rooted at dir with default
// options.
func Open(dir string) (*Store, error) { return OpenWith(dir, OpenOptions{}) }

// OpenWith opens (creating, or migrating from the v1 layout, if needed) the
// store rooted at dir. Validation runs before any write: a directory
// holding an unknown schema version, or a non-empty directory that is not a
// store at all (a mistyped -store path, say), is refused untouched —
// refusing is safer than guessing, and the caller can point at a fresh
// directory.
func OpenWith(dir string, opt OpenOptions) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty root directory")
	}
	if opt.Shards == 0 {
		opt.Shards = DefaultShards
	}
	if opt.Shards < 1 || opt.Shards > maxShards || opt.Shards&(opt.Shards-1) != 0 {
		return nil, fmt.Errorf("store: shard count %d is not a power of two in [1, %d]", opt.Shards, maxShards)
	}
	if opt.Now == nil {
		opt.Now = time.Now
	}
	if opt.Log == nil {
		opt.Log = slog.Default()
	}

	marker := filepath.Join(dir, "SCHEMA")
	migrate := false
	switch got, err := os.ReadFile(marker); {
	case err == nil:
		switch v := strings.TrimSpace(string(got)); v {
		case "2":
		case "1":
			migrate = true
		default:
			return nil, fmt.Errorf("store: %s holds schema version %q, this build reads \"1\" (migrating) or \"2\"", dir, v)
		}
	case errors.Is(err, fs.ErrNotExist):
		if entries, derr := os.ReadDir(dir); derr == nil && len(entries) > 0 {
			return nil, fmt.Errorf("store: %s is non-empty but carries no SCHEMA marker; refusing to initialise a store over it", dir)
		} else if derr != nil && !errors.Is(derr, fs.ErrNotExist) {
			return nil, fmt.Errorf("store: %w", derr)
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		if err := writeFileAtomic(marker, []byte(fmt.Sprintf("%d\n", SchemaVersion))); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	default:
		return nil, fmt.Errorf("store: %w", err)
	}

	m, err := loadManifest(dir, opt.Shards)
	if err != nil {
		return nil, err
	}
	s := &Store{
		dir:        dir,
		maxRecords: opt.MaxRecords,
		maxBytes:   opt.MaxBytes,
		maxAge:     opt.MaxAge,
		now:        opt.Now,
		log:        opt.Log,
	}
	root := filepath.Join(dir, fmt.Sprintf("v%d", SchemaVersion))
	for i := 0; i < m.Shards; i++ {
		sh := &shard{dir: filepath.Join(root, fmt.Sprintf("shard-%02x", i))}
		torn, err := sh.open()
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("store: %w", err)
		}
		if torn > 0 {
			// A torn tail line is normal after a crash mid-append and the
			// record behind it is intact (reconcile re-adopts it) — not a
			// corrupt *record*, so it must not trip disk-trouble alerts on
			// the corrupt counter.
			opt.Log.Debug("store: skipped malformed index lines", "shard", i, "lines", torn)
		}
		s.live.Add(int64(len(sh.index)))
		for _, e := range sh.index {
			s.bytes.Add(e.size)
		}
		s.shards = append(s.shards, sh)
	}
	if migrate {
		if err := s.migrateV1(marker); err != nil {
			s.Close()
			return nil, err
		}
	} else if _, serr := os.Stat(filepath.Join(dir, "v1")); serr == nil {
		// A v1 tree under a schema-2 store is the leftover of a finished
		// migration whose RemoveAll failed or died partway (migrateV1
		// disposes of the tree before advancing the marker, and unmigrated
		// records live under v1-preserved) — every record in it was
		// already carried over, so finish the cleanup.
		if rerr := os.RemoveAll(filepath.Join(dir, "v1")); rerr != nil {
			opt.Log.Warn("store: migrated v1 leftovers not removed", "err", rerr)
		} else {
			opt.Log.Info("store: removed migrated v1 leftovers from an interrupted cleanup")
		}
	}
	if s.maxAge > 0 ||
		(s.maxRecords > 0 && int(s.live.Load()) > s.maxRecords) ||
		(s.maxBytes > 0 && s.bytes.Load() > s.maxBytes) {
		s.Evict()
	}
	return s, nil
}

// loadManifest reads the manifest, creating it with the requested shard
// count on first open.
func loadManifest(dir string, shards int) (manifest, error) {
	path := filepath.Join(dir, manifestName)
	var m manifest
	switch data, err := os.ReadFile(path); {
	case err == nil:
		if jerr := json.Unmarshal(data, &m); jerr != nil {
			return m, fmt.Errorf("store: unreadable %s: %w", manifestName, jerr)
		}
		if m.Schema != SchemaVersion {
			return m, fmt.Errorf("store: %s declares schema %d, this build reads %d", manifestName, m.Schema, SchemaVersion)
		}
		if m.Shards < 1 || m.Shards > maxShards || m.Shards&(m.Shards-1) != 0 {
			return m, fmt.Errorf("store: %s declares invalid shard count %d", manifestName, m.Shards)
		}
		return m, nil
	case errors.Is(err, fs.ErrNotExist):
		// The manifest is the only record of the shard width; fabricating a
		// fresh one over existing data would silently re-route every key.
		// Recover the width from the shard directories themselves, and
		// refuse anything that does not form a clean power-of-two layout.
		if n, derr := countShardDirs(dir); derr != nil {
			return m, derr
		} else if n > 0 {
			if n > maxShards || n&(n-1) != 0 {
				return m, fmt.Errorf("store: %s is missing and the %d shard directories do not form a power-of-two layout; restore the manifest", manifestName, n)
			}
			shards = n
		}
		m = manifest{Schema: SchemaVersion, Shards: shards}
		data, _ := json.Marshal(m)
		if werr := writeFileAtomic(path, append(data, '\n')); werr != nil {
			return m, fmt.Errorf("store: %w", werr)
		}
		return m, nil
	default:
		return m, fmt.Errorf("store: %w", err)
	}
}

// countShardDirs counts existing shard-?? directories under the versioned
// data root — the fallback source of truth for a lost manifest.
func countShardDirs(dir string) (int, error) {
	entries, err := os.ReadDir(filepath.Join(dir, fmt.Sprintf("v%d", SchemaVersion)))
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	n := 0
	for _, de := range entries {
		name, ok := strings.CutPrefix(de.Name(), "shard-")
		if de.IsDir() && ok && len(name) == 2 {
			n++
		}
	}
	return n, nil
}

// writeFileAtomic replaces path via a temp file, fsync and rename. The
// fsync matters for the files this is used on — SCHEMA, MANIFEST.json,
// index compaction — where a power loss making the rename durable but not
// the content would leave a truncated marker that refuses every later
// Open. (Record writes go through shard.install instead and skip the
// fsync: counters are re-simulable, so losing one to a power cut is a
// cache miss, not corruption — the checksum catches the torn bytes.)
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".write-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	// Best-effort directory sync so the rename itself is durable too.
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// Close flushes batched index touches and releases the per-shard index log
// handles. The store must not be used after Close; a long-lived server
// never needs to call it.
func (s *Store) Close() error {
	var first error
	for _, sh := range s.shards {
		if err := sh.close(s); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Flush appends every batched touch line to the per-shard index logs now,
// instead of waiting for the batch size or timer. Useful before handing
// the directory to another process that should see exact LRU stamps; Close
// flushes implicitly.
func (s *Store) Flush() {
	for _, sh := range s.shards {
		sh.flushTouches(s)
	}
}

// ShardCount reports the manifest-pinned shard count.
func (s *Store) ShardCount() int { return len(s.shards) }

// Len is the current record count — an O(1) counter read off the in-memory
// index, not a directory walk (and, unlike v1's, infallible).
func (s *Store) Len() int { return int(s.live.Load()) }

// Bytes is the current total record bytes — the value the MaxBytes budget
// is enforced against, an O(1) counter read like Len.
func (s *Store) Bytes() int64 { return s.bytes.Load() }

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	return Stats{
		Records:   s.live.Load(),
		Bytes:     s.bytes.Load(),
		Shards:    int64(len(s.shards)),
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Writes:    s.writes.Load(),
		Adopted:   s.adopted.Load(),
		Evictions: s.evictions.Load(),
		Corrupt:   s.corrupt.Load(),
	}
}

// BackendStats is Stats under the sweep engine's observability contract.
func (s *Store) BackendStats() sweep.BackendStats { return s.Stats() }

// locate addresses a (kind, canonical key) pair: the fnv64a address names
// the record file, its low bits pick the shard.
func (s *Store) locate(kind string, key []byte) (string, *shard) {
	h := fnv.New64a()
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write(key)
	a := h.Sum64()
	return fmt.Sprintf("%016x", a), s.shards[a&uint64(len(s.shards)-1)]
}

// get loads the record stored under (kind, key), unmarshalling its payload
// into `into`. A missing, corrupt, or key-mismatched record is a counted
// miss (false, nil error) — validation runs before the hit is counted or
// the LRU stamp refreshed, so an unusable record never masquerades as a
// hit or climbs the eviction order. An error means the store itself
// misbehaved (unreadable file, bad permissions).
func (s *Store) get(kind string, key []byte, into any) (bool, error) {
	addr, sh := s.locate(kind, key)
	data, err := os.ReadFile(sh.recordPath(addr))
	if errors.Is(err, fs.ErrNotExist) {
		sh.forget(s, addr) // another process may have evicted it
		s.misses.Add(1)
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("store: %w", err)
	}
	gotKind, gotKey, payload, derr := decodeRecord(data)
	if derr != nil {
		s.corrupt.Add(1)
		s.misses.Add(1)
		return false, nil // torn or mutated record: a counted miss
	}
	if gotKind != kind || string(gotKey) != string(key) {
		s.misses.Add(1)
		return false, nil // hash collision or foreign record: miss
	}
	if err := json.Unmarshal(payload, into); err != nil {
		s.corrupt.Add(1)
		s.misses.Add(1)
		return false, nil // checksum-valid but untypeable: a counted miss
	}
	s.hits.Add(1)
	sh.touch(s, addr, s.now().UnixNano(), int64(len(data)))
	return true, nil
}

// put persists payload under (kind, key), atomically replacing any prior
// record, then enforces the record budget.
func (s *Store) put(kind string, key, payload []byte) error {
	data, err := encodeRecord(kind, key, payload)
	if err != nil {
		return err
	}
	addr, sh := s.locate(kind, key)
	if err := sh.install(s, addr, data, s.now().UnixNano()); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.writes.Add(1)
	s.enforceBudgets()
	return nil
}

// enforceBudgets runs the post-install eviction check every record
// installation shares (a simulated Put or an adopted replica record): when
// a budget is exceeded, trim below the exceeded cap(s) with hysteresis.
func (s *Store) enforceBudgets() {
	overRecords := s.maxRecords > 0 && int(s.live.Load()) > s.maxRecords
	overBytes := s.maxBytes > 0 && s.bytes.Load() > s.maxBytes
	if !overRecords && !overBytes {
		return
	}
	// Trim below the exceeded cap(s) (10% hysteresis, at least one
	// record) so a sustained write load triggers a pass per batch, not
	// a full snapshot-and-sort per Put. A budget that is not exceeded
	// keeps its exact cap: hysteresis on it would evict warm records
	// nothing required evicting.
	recTarget := s.maxRecords
	if overRecords {
		slack := s.maxRecords / 10
		if slack < 1 {
			slack = 1
		}
		recTarget = s.maxRecords - slack
		if recTarget < 1 {
			recTarget = 1 // a zero target would mean "no budget" to evict
		}
	}
	byteTarget := s.maxBytes
	if overBytes {
		byteTarget = s.maxBytes - s.maxBytes/10
		if byteTarget < 1 {
			byteTarget = 1
		}
	}
	s.evict(recTarget, byteTarget)
}

// Evict runs one eviction-and-compaction pass: every record idle past
// MaxAge goes, then the least-recently-used records beyond MaxRecords and
// beyond the MaxBytes byte budget. It returns how many records were
// removed. Records touched after the pass snapshots the index are spared,
// so a concurrent hit never has its record yanked on the basis of a stale
// stamp.
func (s *Store) Evict() int { return s.evict(s.maxRecords, s.maxBytes) }

// evict removes age-expired records and the least-recently-used records
// beyond maxRecords (0 = no count budget) and beyond maxBytes (0 = no
// byte budget).
func (s *Store) evict(maxRecords int, maxBytes int64) int {
	s.evictMu.Lock()
	defer s.evictMu.Unlock()
	type candidate struct {
		sh   *shard
		addr string
		last int64
		size int64
	}
	var all []candidate
	var totalBytes int64
	for _, sh := range s.shards {
		sh.mu.Lock()
		for addr, e := range sh.index {
			all = append(all, candidate{sh, addr, e.lastAccess, e.size})
			totalBytes += e.size
		}
		sh.mu.Unlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].last < all[j].last })
	var cutoff int64
	if s.maxAge > 0 {
		cutoff = s.now().Add(-s.maxAge).UnixNano()
	}
	over := 0
	if maxRecords > 0 && len(all) > maxRecords {
		over = len(all) - maxRecords
	}
	var bytesOver int64
	if maxBytes > 0 && totalBytes > maxBytes {
		bytesOver = totalBytes - maxBytes
	}
	evicted := 0
	for i, c := range all {
		if i >= over && c.last >= cutoff && bytesOver <= 0 {
			break // sorted by last access: everything after is younger
		}
		if c.sh.evict(s, c.addr, c.last) {
			evicted++
			bytesOver -= c.size
		}
	}
	if evicted > 0 {
		s.evictions.Add(int64(evicted))
		s.log.Debug("store: evicted records", "count", evicted)
	}
	return evicted
}

// --- typed record APIs ---

// keyJSON is sweep.Key with stable wire names; it doubles as the canonical
// encoding the content address is hashed from. memtrace.Profile is a flat
// struct of scalars, so its default JSON encoding is deterministic.
type keyJSON struct {
	Name      string           `json:"name"`
	Profile   memtrace.Profile `json:"profile"`
	ConfigFP  uint64           `json:"config_fp"`
	MaxInstrs int64            `json:"max_instrs"`
}

func counterKey(k sweep.Key) ([]byte, error) {
	canon, err := json.Marshal(keyJSON{k.Name, k.Profile, k.ConfigFP, k.MaxInstrs})
	if err != nil {
		return nil, fmt.Errorf("store: encode key: %w", err)
	}
	return canon, nil
}

// Get loads the counters stored under k.
func (s *Store) Get(k sweep.Key) (*uarch.Counters, bool, error) {
	key, err := counterKey(k)
	if err != nil {
		return nil, false, err
	}
	var c uarch.Counters
	ok, err := s.get(KindCounters, key, &c)
	if !ok || err != nil {
		return nil, false, err
	}
	return &c, true, nil
}

// Put persists counters under k, atomically replacing any prior record.
func (s *Store) Put(k sweep.Key, c *uarch.Counters) error {
	key, err := counterKey(k)
	if err != nil {
		return err
	}
	payload, err := json.Marshal(c)
	if err != nil {
		return fmt.Errorf("store: encode counters: %w", err)
	}
	return s.put(KindCounters, key, payload)
}

// statsKeyJSON is workloads.StatsKey with stable wire names.
type statsKeyJSON struct {
	Workload string  `json:"workload"`
	Slaves   int     `json:"slaves"`
	Scale    float64 `json:"scale"`
	Seed     uint64  `json:"seed"`
}

func clusterKey(k workloads.StatsKey) ([]byte, error) {
	canon, err := json.Marshal(statsKeyJSON{k.Workload, k.Slaves, k.Scale, k.Seed})
	if err != nil {
		return nil, fmt.Errorf("store: encode cluster key: %w", err)
	}
	return canon, nil
}

// GetClusterStats loads the cluster run stats stored under k.
func (s *Store) GetClusterStats(k workloads.StatsKey) (*workloads.Stats, bool, error) {
	key, err := clusterKey(k)
	if err != nil {
		return nil, false, err
	}
	var st workloads.Stats
	ok, err := s.get(KindCluster, key, &st)
	if !ok || err != nil {
		return nil, false, err
	}
	return &st, true, nil
}

// PutClusterStats persists one cluster run's stats under k.
func (s *Store) PutClusterStats(k workloads.StatsKey, st *workloads.Stats) error {
	key, err := clusterKey(k)
	if err != nil {
		return err
	}
	payload, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("store: encode stats: %w", err)
	}
	return s.put(KindCluster, key, payload)
}

// --- backend adapters ---

// Backend adapts the store to the sweep engine's MemoBackend contract:
// failures are logged and swallowed, so a broken disk degrades the engine
// to plain re-simulation instead of failing sweeps. The returned backend
// also implements sweep.StatsReporter, surfacing the store's counters to
// the serving layer.
func (s *Store) Backend(log *slog.Logger) sweep.MemoBackend {
	if log == nil {
		log = slog.Default()
	}
	return &backend{s: s, log: log}
}

type backend struct {
	s   *Store
	log *slog.Logger
}

func (b *backend) Load(ctx context.Context, k sweep.Key) (*uarch.Counters, bool) {
	sp := obs.Start(ctx, "store.read", "workload", k.Name)
	c, ok, err := b.s.Get(k)
	sp.End("hit", strconv.FormatBool(ok && err == nil))
	if err != nil {
		b.log.Warn("store load failed; re-simulating", "workload", k.Name, "err", err)
		return nil, false
	}
	return c, ok
}

func (b *backend) Store(ctx context.Context, k sweep.Key, c *uarch.Counters) {
	sp := obs.Start(ctx, "store.write", "workload", k.Name)
	err := b.s.Put(k, c)
	sp.End()
	if err != nil {
		b.log.Warn("store put failed; result not persisted", "workload", k.Name, "err", err)
	}
}

func (b *backend) BackendStats() sweep.BackendStats { return b.s.BackendStats() }

// StatsBackend adapts the store to the cluster memo's StatsBackend
// contract with the same swallow-failures degradation as Backend.
func (s *Store) StatsBackend(log *slog.Logger) workloads.StatsBackend {
	if log == nil {
		log = slog.Default()
	}
	return &statsBackend{s: s, log: log}
}

type statsBackend struct {
	s   *Store
	log *slog.Logger
}

func (b *statsBackend) LoadStats(ctx context.Context, k workloads.StatsKey) (*workloads.Stats, bool) {
	sp := obs.Start(ctx, "store.read", "workload", k.Workload)
	st, ok, err := b.s.GetClusterStats(k)
	sp.End("hit", strconv.FormatBool(ok && err == nil))
	if err != nil {
		b.log.Warn("store load failed; re-running cluster experiment", "workload", k.Workload, "err", err)
		return nil, false
	}
	return st, ok
}

func (b *statsBackend) StoreStats(ctx context.Context, k workloads.StatsKey, st *workloads.Stats) {
	sp := obs.Start(ctx, "store.write", "workload", k.Workload)
	err := b.s.PutClusterStats(k, st)
	sp.End()
	if err != nil {
		b.log.Warn("store put failed; cluster stats not persisted", "workload", k.Workload, "err", err)
	}
}
