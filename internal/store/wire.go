package store

import (
	"encoding/json"
	"fmt"

	"dcbench/internal/sweep"
	"dcbench/internal/uarch"
	"dcbench/internal/workloads"
)

// The dispatch layer ships job results between nodes in exactly the
// bytes this package persists them in: a checksummed, kind-tagged,
// key-embedding record. Reusing the record codec as the wire format means
// one set of integrity guarantees covers both disk and network — a torn
// response, a proxy mangling bytes, or a worker answering for the wrong
// key all fail the same decode-and-verify the store already runs on every
// Get, and a front-end can trust a decoded record enough to write it
// straight through to its own store. One codec per record kind: counters
// records answer counter-sweep jobs, cluster records answer cluster
// experiment jobs, and any future job kind rides the same envelope.

// EncodeCounters serialises one sweep result as a checksummed counters
// record — the wire format a worker answers /v1/sweep with.
func EncodeCounters(k sweep.Key, c *uarch.Counters) ([]byte, error) {
	key, err := counterKey(k)
	if err != nil {
		return nil, err
	}
	payload, err := json.Marshal(c)
	if err != nil {
		return nil, fmt.Errorf("store: encode counters: %w", err)
	}
	return encodeRecord(KindCounters, key, payload)
}

// DecodeCounters parses and verifies a counters record, returning the key
// it was encoded under alongside the counters. Any failure — unparseable
// bytes, a checksum mismatch, a record of another kind — is an error; the
// caller must additionally check the returned key against the key it asked
// for before trusting the counters.
func DecodeCounters(data []byte) (sweep.Key, *uarch.Counters, error) {
	var zero sweep.Key
	kind, key, payload, err := decodeRecord(data)
	if err != nil {
		return zero, nil, err
	}
	if kind != KindCounters {
		return zero, nil, fmt.Errorf("%w: record kind %q, want %q", errCorrupt, kind, KindCounters)
	}
	var kj keyJSON
	if err := json.Unmarshal(key, &kj); err != nil {
		return zero, nil, fmt.Errorf("%w: unreadable key: %v", errCorrupt, err)
	}
	var c uarch.Counters
	if err := json.Unmarshal(payload, &c); err != nil {
		return zero, nil, fmt.Errorf("%w: unreadable counters: %v", errCorrupt, err)
	}
	return sweep.Key{Name: kj.Name, Profile: kj.Profile, ConfigFP: kj.ConfigFP, MaxInstrs: kj.MaxInstrs}, &c, nil
}

// EncodeStats serialises one cluster experiment result as a checksummed
// cluster record — the wire format a worker answers a cluster job with.
func EncodeStats(k workloads.StatsKey, st *workloads.Stats) ([]byte, error) {
	key, err := clusterKey(k)
	if err != nil {
		return nil, err
	}
	payload, err := json.Marshal(st)
	if err != nil {
		return nil, fmt.Errorf("store: encode stats: %w", err)
	}
	return encodeRecord(KindCluster, key, payload)
}

// DecodeStats parses and verifies a cluster record, returning the key it
// was encoded under alongside the stats. Any failure — unparseable bytes,
// a checksum mismatch, a record of another kind — is an error; the caller
// must additionally check the returned key against the key it asked for
// before trusting the stats.
func DecodeStats(data []byte) (workloads.StatsKey, *workloads.Stats, error) {
	var zero workloads.StatsKey
	kind, key, payload, err := decodeRecord(data)
	if err != nil {
		return zero, nil, err
	}
	if kind != KindCluster {
		return zero, nil, fmt.Errorf("%w: record kind %q, want %q", errCorrupt, kind, KindCluster)
	}
	var kj statsKeyJSON
	if err := json.Unmarshal(key, &kj); err != nil {
		return zero, nil, fmt.Errorf("%w: unreadable key: %v", errCorrupt, err)
	}
	var st workloads.Stats
	if err := json.Unmarshal(payload, &st); err != nil {
		return zero, nil, fmt.Errorf("%w: unreadable stats: %v", errCorrupt, err)
	}
	return workloads.StatsKey{Workload: kj.Workload, Slaves: kj.Slaves, Scale: kj.Scale, Seed: kj.Seed}, &st, nil
}
