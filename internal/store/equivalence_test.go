package store_test

import (
	"context"
	"reflect"
	"testing"

	"dcbench/internal/memtrace"
	"dcbench/internal/store"
	"dcbench/internal/sweep"
	"dcbench/internal/uarch"
)

// equivJobs builds a few small deterministic sweep jobs.
func equivJobs() []sweep.Job {
	jobs := make([]sweep.Job, 3)
	for i := range jobs {
		i := i
		jobs[i] = sweep.Job{
			Name: "equiv-" + string(rune('A'+i)),
			Profile: memtrace.Profile{
				Seed:      uint64(2000 + i),
				MaxInstrs: 30_000,
				CodeKB:    64 + 16*i,
				HeapMB:    4,
			},
			Gen: func(tr *memtrace.Tracer) {
				base := tr.Alloc(1 << 18)
				for {
					for off := uint64(0); off < 1<<18; off += 64 {
						tr.Load(base + off)
						tr.BranchSite(i, off%192 == 0)
					}
				}
			},
		}
	}
	return jobs
}

// TestShardedVsUnshardedEquivalence: the shard count is pure layout — a
// 1-shard and a 32-shard store behind identical sweeps must produce
// identical counters, cold and warm, and a warm engine over either store
// re-simulates nothing.
func TestShardedVsUnshardedEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs small simulations")
	}
	jobs := equivJobs()
	cfg := uarch.DefaultConfig()
	cfg.Warmup = 5_000

	runOn := func(s *store.Store) []*uarch.Counters {
		t.Helper()
		e := sweep.NewEngine()
		e.SetMemoBackend(s.Backend(quietLog(t)))
		out, err := e.Run(context.Background(), jobs, cfg, 0, sweep.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	baseline := func() []*uarch.Counters {
		t.Helper()
		out, err := sweep.NewEngine().Run(context.Background(), jobs, cfg, 0, sweep.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}()

	dir1, dir32 := t.TempDir(), t.TempDir()
	s1, err := store.OpenWith(dir1, store.OpenOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	s32, err := store.OpenWith(dir32, store.OpenOptions{Shards: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer s32.Close()

	cold1, cold32 := runOn(s1), runOn(s32)
	if !reflect.DeepEqual(cold1, baseline) || !reflect.DeepEqual(cold32, baseline) {
		t.Fatal("store-backed sweep diverged from the storeless baseline")
	}
	// Warm pass through fresh engines ("restarted processes"): every result
	// comes off disk, still byte-for-byte the baseline's.
	warm1, warm32 := runOn(s1), runOn(s32)
	if !reflect.DeepEqual(warm1, baseline) || !reflect.DeepEqual(warm32, baseline) {
		t.Fatal("warm store read diverged from the simulated results")
	}
	for _, s := range []*store.Store{s1, s32} {
		st := s.Stats()
		if st.Writes != int64(len(jobs)) {
			t.Fatalf("shards=%d: %d writes, want %d (warm pass must not re-simulate)", st.Shards, st.Writes, len(jobs))
		}
		if st.Hits < int64(len(jobs)) {
			t.Fatalf("shards=%d: %d hits, want >= %d", st.Shards, st.Hits, len(jobs))
		}
	}
}
