package dispatch_test

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"dcbench/internal/core"
	"dcbench/internal/dispatch"
	"dcbench/internal/store"
	"dcbench/internal/sweep"
	"dcbench/internal/workloads"
)

// TestBenchArtifact writes the CI perf artifact (BENCH_jobs.json) for the
// unified jobs dispatch path, covering both job kinds: cold dispatched
// wall time (every counter key and cluster cell computed on the worker,
// over HTTP), warm dispatched wall time (every key answered from the
// front-end store) and the dark-cluster fallback detection cost — the
// perf trajectory of the dispatch path per commit. Gated on
// BENCH_JOBS_OUT so ordinary test runs skip it.
func TestBenchArtifact(t *testing.T) {
	out := os.Getenv("BENCH_JOBS_OUT")
	if out == "" {
		t.Skip("set BENCH_JOBS_OUT=<path> to write the perf artifact")
	}
	opts := e2eOptions()
	cfg := opts.CoreConfig()
	keys := make([]sweep.Key, 0, len(core.Registry()))
	jobs := make([]sweep.Job, 0, len(core.Registry()))
	for _, wl := range core.Registry() {
		keys = append(keys, sweep.Key{
			Name: wl.Name, Profile: wl.Profile,
			ConfigFP: cfg.Fingerprint(), MaxInstrs: opts.Warmup + opts.Instrs,
		})
		jobs = append(jobs, sweep.Job{Name: wl.Name, Profile: wl.Profile, Gen: wl.Gen})
	}
	statsKeys := make([]workloads.StatsKey, 0, clusterKeyCount())
	for _, w := range workloads.All() {
		for _, slaves := range []int{1, 4, 8} {
			statsKeys = append(statsKeys, workloads.StatsKey{
				Workload: w.Name, Slaves: slaves, Scale: opts.Scale, Seed: opts.Seed,
			})
		}
	}

	workerAddr := newWorkerServer(t)
	frontStore, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { frontStore.Close() })
	remote, err := dispatch.New(dispatch.Options{Workers: []string{workerAddr}},
		opts.Warmup, frontStore.Backend(quiet), frontStore.StatsBackend(quiet), quiet)
	if err != nil {
		t.Fatal(err)
	}

	loadCounters := func() time.Duration {
		start := time.Now()
		for _, k := range keys {
			if _, ok := remote.Load(context.Background(), k); !ok {
				t.Fatalf("%s: dispatched load missed", k.Name)
			}
		}
		return time.Since(start)
	}
	loadCluster := func() time.Duration {
		start := time.Now()
		for _, k := range statsKeys {
			if _, ok := remote.LoadStats(context.Background(), k); !ok {
				t.Fatalf("%s/%d: dispatched cluster load missed", k.Workload, k.Slaves)
			}
		}
		return time.Since(start)
	}
	coldCounters := loadCounters() // worker simulates every sweep key
	warmCounters := loadCounters() // front-end store answers every key
	coldCluster := loadCluster()   // worker runs every cluster cell
	warmCluster := loadCluster()   // front-end store answers every cell

	// Local-simulation reference at the same trace length, for the
	// dispatch-overhead ratio.
	start := time.Now()
	e := sweep.NewEngine()
	if _, err := e.Run(context.Background(), jobs, cfg, opts.Warmup+opts.Instrs,
		sweep.RunOptions{NoMemo: true, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	localSerial := time.Since(start)

	// Dark cluster: how long one key takes to be detected as a fallback.
	dead, err := dispatch.New(dispatch.Options{Workers: []string{"127.0.0.1:1"}, Timeout: 5 * time.Second},
		opts.Warmup, nil, nil, quiet)
	if err != nil {
		t.Fatal(err)
	}
	start = time.Now()
	if _, ok := dead.Load(context.Background(), keys[0]); ok {
		t.Fatal("dead worker answered")
	}
	fallbackDetect := time.Since(start)

	artifact := map[string]any{
		"schema":              2,
		"keys":                len(keys),
		"cluster_keys":        len(statsKeys),
		"instrs_per_workload": opts.Warmup + opts.Instrs,
		"cold_dispatch_ms":    float64(coldCounters.Microseconds()) / 1e3,
		"warm_store_ms":       float64(warmCounters.Microseconds()) / 1e3,
		"cold_cluster_ms":     float64(coldCluster.Microseconds()) / 1e3,
		"warm_cluster_ms":     float64(warmCluster.Microseconds()) / 1e3,
		"local_serial_ms":     float64(localSerial.Microseconds()) / 1e3,
		"fallback_detect_us":  float64(fallbackDetect.Microseconds()),
		"per_key_dispatch_us": float64(coldCounters.Microseconds()) / float64(len(keys)),
		"per_key_warm_hit_us": float64(warmCounters.Microseconds()) / float64(len(keys)),
		"per_cluster_job_us":  float64(coldCluster.Microseconds()) / float64(len(statsKeys)),
	}
	data, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("wrote %s: %s\n", out, data)
}
