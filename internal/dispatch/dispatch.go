// Package dispatch fans compute jobs out over worker nodes: a
// RemoteBackend forwards memo misses to a configured set of dcserved
// workers over HTTP, turning a front-end's caches into the head of a
// compute cluster. One engine carries every job kind: the same
// rendezvous ranking, retry walk, hedging, circuit state and admission
// push-back serves characterization sweeps (sweep.MemoBackend, kind
// "counters") and cluster experiments (workloads.StatsBackend, kind
// "cluster"), and a future kind is a typed wrapper plus a store codec,
// not a new backend.
//
// The design rides the memo seams end to end. The engines consult their
// backends only inside a key's singleflight cell, so the dispatch layer
// sees each key at most once per process while it stays memoized; below
// that, a load checks the local store first (warm results never leave
// the process), then picks workers by rendezvous hashing — every
// front-end sharing a worker set routes a key to the same worker, so the
// cluster simulates each key once — and forwards the miss as a
// kind-tagged POST /v1/jobs with per-attempt timeouts, retries on the
// next-ranked workers, and optional hedging (a second request launched
// when the first dawdles; first answer wins).
//
// Failure and saturation are first-class inputs. Every worker carries
// consecutive-failure circuit state (an open circuit demotes it to last
// resort until a cooldown passes). A worker that sheds a job with 429
// is not failing — it is pushing back — so its Retry-After hint demotes
// it in ranking for exactly that window without touching its circuit,
// and the attempt moves to the next-ranked worker. A response is trusted
// only after the store codec's checksum-and-key verification, and when
// every worker is dark (or shedding) a load reports a plain miss — the
// engine simulates locally and the front-end degrades to exactly the
// single-process behaviour, counted per kind in the Fallbacks stat
// rather than silent.
//
// Remote results are written through to the local store, so a front-end
// restart serves them without touching the cluster.
package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dcbench/internal/memo"
	"dcbench/internal/obs"
	"dcbench/internal/store"
	"dcbench/internal/sweep"
	"dcbench/internal/tenant"
	"dcbench/internal/uarch"
	"dcbench/internal/workloads"
)

// Defaults for Options' zero fields.
const (
	DefaultTimeout  = 120 * time.Second // a cold job on a loaded worker is slow, not dead
	DefaultRetries  = 2                 // attempts beyond the first, each on the next-ranked worker
	DefaultCooldown = 30 * time.Second  // circuit-open duration
	failThreshold   = 3                 // consecutive failures that open a worker's circuit
)

// maxShedDemotion caps how long a Retry-After hint can demote a worker: a
// buggy or hostile worker must not bench itself for an hour with one
// header.
const maxShedDemotion = time.Minute

// defaultRetryAfter is the demotion window when a 429 carries no usable
// Retry-After header.
const defaultRetryAfter = time.Second

// legacyRecheck is how long a worker detected as a pre-jobs build is
// taken at its word before /v1/jobs is probed again — long enough that a
// fleet of old workers is not 404-probed per fetch, short enough that an
// upgraded worker's cluster capacity comes back without restarting the
// front-end.
const legacyRecheck = 5 * time.Minute

// maxResponse bounds a worker response; counters records are a few KB and
// cluster records smaller still.
const maxResponse = 8 << 20

// Options configures a RemoteBackend. The zero value of every field but
// Workers is usable: New fills defaults for Timeout and Cooldown, whose
// zero values would be meaningless; Retries 0 genuinely means "no
// retries" and Hedge 0 "no hedging" (RegisterFlags defaults Retries to
// DefaultRetries for the flag surface both binaries share).
type Options struct {
	// Workers are the worker addresses (host:port); an empty list means
	// dispatch is off and the caller should not build a backend at all.
	Workers []string
	// Timeout bounds each attempt, connection to last byte.
	Timeout time.Duration
	// Retries is how many additional attempts a failed fetch gets, each on
	// the next worker in the key's rendezvous order. 0 means one attempt
	// total; the -dispatch-retries flag defaults it to DefaultRetries.
	Retries int
	// Hedge, when positive, launches a duplicate request on the next-ranked
	// worker once the current one has been silent this long; the first
	// response wins. 0 (the default) disables hedging — a hedged cold
	// job is duplicated cluster work, so only enable it with a delay
	// comfortably above your slowest legitimate simulation.
	Hedge time.Duration
	// Cooldown is how long an open circuit keeps a worker demoted.
	Cooldown time.Duration
	// APIKey, when non-empty, authenticates every dispatched request as
	// `Authorization: Bearer <APIKey>` — the front-end's own service key
	// on keyed workers. Independently of it, the originating tenant's id
	// rides the X-Dcs-Tenant header, so a keyed worker enforces the
	// service key's limits while attributing the work to the tenant that
	// caused it (and an unkeyed worker still gets the attribution).
	APIKey string
	// Replicas is how many copies of each key the worker cluster keeps
	// (the store replication factor, see internal/replica). Above 1, a
	// fetch's first attempt rotates across the key's top Replicas healthy
	// workers instead of always hitting the owner — any replica serves a
	// warm key locally, so reads spread and a dead owner costs nothing.
	// The retry walk still covers the full rendezvous order, owner
	// included. 0 or 1 preserves owner-only routing.
	Replicas int
}

// RegisterFlags declares the dispatch flags on fs, defaulted from *o and
// written back on Parse — the single definition shared by dcbench and
// dcserved, so the flag surface cannot drift between the binaries.
func RegisterFlags(fs *flag.FlagSet, o *Options) {
	if o.Timeout == 0 {
		o.Timeout = DefaultTimeout
	}
	if o.Retries == 0 {
		o.Retries = DefaultRetries
	}
	if o.Cooldown == 0 {
		o.Cooldown = DefaultCooldown
	}
	fs.Var((*workerList)(&o.Workers), "workers", "comma-separated job worker addresses (host:port,...); empty = simulate locally")
	fs.DurationVar(&o.Timeout, "dispatch-timeout", o.Timeout, "per-attempt timeout for dispatched jobs")
	fs.IntVar(&o.Retries, "dispatch-retries", o.Retries, "extra attempts on other workers after a failed dispatch")
	fs.DurationVar(&o.Hedge, "dispatch-hedge", o.Hedge, "hedge a silent dispatch onto the next worker after this long; 0 disables (a hedged job is duplicated work)")
	fs.DurationVar(&o.Cooldown, "dispatch-cooldown", o.Cooldown, "how long a repeatedly failing worker stays demoted")
	fs.StringVar(&o.APIKey, "dispatch-api-key", o.APIKey, "API key presented to workers as a bearer token; empty = unauthenticated dispatch")
	if o.Replicas == 0 {
		o.Replicas = 1
	}
	fs.IntVar(&o.Replicas, "dispatch-replicas", o.Replicas, "store copies per key in the worker cluster; above 1, reads rotate across a key's replicas instead of always asking the owner")
}

// workerList is the -workers flag value: a comma-separated address list.
type workerList []string

func (l *workerList) String() string { return strings.Join(*l, ",") }

func (l *workerList) Set(v string) error {
	*l = nil
	for _, a := range strings.Split(v, ",") {
		if a = strings.TrimSpace(a); a != "" {
			*l = append(*l, a)
		}
	}
	return nil
}

// worker is one remote node's address, traffic counters, circuit state
// and admission (shed) state.
type worker struct {
	addr     string
	url      string // POST /v1/jobs
	sweepURL string // POST /v1/sweep — the pre-jobs alias legacy workers speak

	sent atomic.Int64
	errs atomic.Int64
	shed atomic.Int64

	mu        sync.Mutex
	fails     int       // consecutive failures
	lastErr   string    // most recent failure, cleared on success — /healthz's why
	openUntil time.Time // circuit open (worker demoted) until then
	shedUntil time.Time // worker asked for back-off (429 Retry-After) until then
	// legacyUntil marks a worker whose mux answered "404 page not found"
	// for /v1/jobs: a pre-jobs build that only speaks /v1/sweep. Until it
	// expires, counters jobs go out in the alias shape (byte-compatible
	// either way) and kinds with no legacy shape skip the worker; past it
	// the next fetch probes /v1/jobs again, so an upgraded worker's
	// cluster capacity returns without a front-end restart.
	legacyUntil time.Time
}

// healthy reports whether the worker's circuit is closed at t.
func (w *worker) healthy(t time.Time) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return !t.Before(w.openUntil)
}

// shedding reports whether the worker's last 429's Retry-After window is
// still open at t.
func (w *worker) shedding(t time.Time) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return t.Before(w.shedUntil)
}

// isLegacy reports whether the worker is currently taken to be a
// pre-jobs build at t.
func (w *worker) isLegacy(t time.Time) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return t.Before(w.legacyUntil)
}

// markLegacy records a /v1/jobs route miss: the worker is a pre-jobs
// build for the next legacyRecheck window.
func (w *worker) markLegacy(t time.Time) {
	w.mu.Lock()
	w.legacyUntil = t.Add(legacyRecheck)
	w.mu.Unlock()
}

func (w *worker) succeeded() {
	w.mu.Lock()
	w.fails = 0
	w.lastErr = ""
	w.openUntil = time.Time{}
	w.shedUntil = time.Time{}
	w.mu.Unlock()
}

func (w *worker) failed(t time.Time, cooldown time.Duration, errText string) {
	w.errs.Add(1)
	w.mu.Lock()
	w.fails++
	w.lastErr = errText
	if w.fails >= failThreshold {
		w.openUntil = t.Add(cooldown)
	}
	w.mu.Unlock()
}

// failState snapshots the mu-guarded failure diagnostics for /healthz:
// the consecutive-failure count behind the circuit and the most recent
// error text, so a dark worker explains itself without a log grep.
func (w *worker) failState() (fails int, lastErr string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.fails, w.lastErr
}

// shedded records a 429: the worker is saturated, not broken, so it is
// demoted for the Retry-After window it asked for without touching its
// circuit state.
func (w *worker) shedded(t time.Time, retryAfter time.Duration) {
	w.shed.Add(1)
	w.mu.Lock()
	if until := t.Add(retryAfter); until.After(w.shedUntil) {
		w.shedUntil = until
	}
	w.mu.Unlock()
}

// errShed tags a 429 attempt so the fetch loop can count it as push-back
// rather than failure.
var errShed = errors.New("worker shedding load")

// kindStats is one job kind's slice of the dispatch counters.
type kindStats struct {
	dispatched atomic.Int64
	remoteHits atomic.Int64
	fallbacks  atomic.Int64
	errs       atomic.Int64
	shed       atomic.Int64
}

func (k *kindStats) snapshot(kind string) sweep.DispatchKindStats {
	return sweep.DispatchKindStats{
		Kind:       kind,
		Dispatched: k.dispatched.Load(),
		RemoteHits: k.remoteHits.Load(),
		Fallbacks:  k.fallbacks.Load(),
		Errors:     k.errs.Load(),
		Shed:       k.shed.Load(),
	}
}

// RemoteBackend forwards job memo misses to worker nodes. It implements
// sweep.MemoBackend and workloads.StatsBackend (so it slots into the
// sweep engine and the cluster cache untouched) plus sweep.StatsReporter
// (store counters from the wrapped local backend plus the dispatch
// block).
type RemoteBackend struct {
	opts       Options
	warmup     int64
	local      sweep.MemoBackend      // consulted first for counters, written through; may be nil
	localStats workloads.StatsBackend // consulted first for cluster jobs, written through; may be nil
	workers    []*worker
	client     *http.Client
	log        *slog.Logger
	now        func() time.Time

	flight      *memo.Memo[sweep.Key, *uarch.Counters]           // coalesces identical concurrent counter fetches
	statsFlight *memo.Memo[workloads.StatsKey, *workloads.Stats] // ... and cluster fetches

	rr atomic.Int64 // round-robin cursor for replica read rotation

	counters kindStats
	cluster  kindStats
	inFlight atomic.Int64
}

// New builds a RemoteBackend over the given worker set. warmup is the
// run's ramp-up instruction count — the parameter the sweep keys' config
// fingerprint is derived from, shipped with every counters job so workers
// can rebuild and verify the machine config. local and localStats, when
// non-nil, are the backends remote results are written through to (and
// checked before any dispatch) — typically the persistent store's two
// backend adapters.
func New(opts Options, warmup int64, local sweep.MemoBackend, localStats workloads.StatsBackend, log *slog.Logger) (*RemoteBackend, error) {
	if len(opts.Workers) == 0 {
		return nil, errors.New("dispatch: no workers configured")
	}
	if opts.Timeout <= 0 {
		opts.Timeout = DefaultTimeout
	}
	if opts.Retries < 0 {
		opts.Retries = 0
	}
	if opts.Cooldown <= 0 {
		opts.Cooldown = DefaultCooldown
	}
	if log == nil {
		log = slog.Default()
	}
	b := &RemoteBackend{
		opts:        opts,
		warmup:      warmup,
		local:       local,
		localStats:  localStats,
		client:      &http.Client{},
		log:         log,
		now:         time.Now,
		flight:      memo.NewFlight[sweep.Key, *uarch.Counters](),
		statsFlight: memo.NewFlight[workloads.StatsKey, *workloads.Stats](),
	}
	b.flight.SetName("dispatch")
	b.statsFlight.SetName("dispatch")
	for _, addr := range opts.Workers {
		b.workers = append(b.workers, &worker{
			addr:     addr,
			url:      "http://" + addr + "/v1/jobs",
			sweepURL: "http://" + addr + "/v1/sweep",
		})
	}
	return b, nil
}

// kindOf maps a record kind to its counter block.
func (b *RemoteBackend) kindOf(kind string) *kindStats {
	if kind == store.KindCluster {
		return &b.cluster
	}
	return &b.counters
}

// --- sweep.MemoBackend (counters jobs) ---

// Load resolves a sweep key: local backend first, then the worker set. A
// remote result is written through to the local backend before it is
// returned. Total remote failure is a counted fallback and a plain miss —
// the engine then simulates locally, preserving single-process behaviour.
func (b *RemoteBackend) Load(ctx context.Context, k sweep.Key) (*uarch.Counters, bool) {
	if b.local != nil {
		if c, ok := b.local.Load(ctx, k); ok {
			return c, true
		}
	}
	c, err := b.flight.DoShared(ctx, k, func(ctx context.Context) (*uarch.Counters, error) { return b.fetchCounters(ctx, k) })
	if err != nil {
		if ctx.Err() != nil {
			// The caller itself was cancelled (every sharer of the engine's
			// memo cell has left): not a cluster failure, and the engine
			// will abort rather than simulate, so no fallback is counted.
			return nil, false
		}
		b.counters.fallbacks.Add(1)
		b.log.Warn("dispatch failed; falling back to local simulation", "kind", store.KindCounters, "workload", k.Name, "err", err)
		return nil, false
	}
	return c, true
}

// Store writes a locally simulated result through to the local backend.
// Workers are not told: the cluster's copy lives wherever the key's
// rendezvous owner keeps its store.
func (b *RemoteBackend) Store(ctx context.Context, k sweep.Key, c *uarch.Counters) {
	if b.local != nil {
		b.local.Store(ctx, k, c)
	}
}

// fetchCounters runs one dispatched counters job inside the key's flight
// cell: encode the kind-tagged request, walk the workers, verify the
// response record against the key, write through.
func (b *RemoteBackend) fetchCounters(ctx context.Context, k sweep.Key) (*uarch.Counters, error) {
	body, err := jobBody(store.KindCounters, k, b.warmup)
	if err != nil {
		return nil, err
	}
	// The same job in the pre-jobs /v1/sweep shape, for workers that turn
	// out not to speak /v1/jobs yet (see worker.legacy).
	legacyBody, err := json.Marshal(struct {
		Key    sweep.Key `json:"key"`
		Warmup int64     `json:"warmup"`
	}{k, b.warmup})
	if err != nil {
		return nil, err
	}
	v, err := b.fetch(ctx, store.KindCounters, counterHash(k), body, legacyBody, func(data []byte) (any, error) {
		gotKey, c, err := store.DecodeCounters(data)
		if err != nil {
			return nil, fmt.Errorf("unverifiable response: %w", err)
		}
		if gotKey != k {
			return nil, fmt.Errorf("response is for key %q/%016x, want %q/%016x",
				gotKey.Name, gotKey.ConfigFP, k.Name, k.ConfigFP)
		}
		return c, nil
	})
	if err != nil {
		return nil, err
	}
	out := v.(*uarch.Counters)
	if b.local != nil {
		b.local.Store(ctx, k, out) // write through: restarts stay warm
	}
	return out, nil
}

// --- workloads.StatsBackend (cluster jobs) ---

// LoadStats resolves a cluster experiment key the same way Load resolves
// a sweep key: local stats backend first, then the worker set, write
// through, counted per-kind fallback on total failure (the cluster cache
// then simulates locally).
func (b *RemoteBackend) LoadStats(ctx context.Context, k workloads.StatsKey) (*workloads.Stats, bool) {
	if b.localStats != nil {
		if st, ok := b.localStats.LoadStats(ctx, k); ok {
			return st, true
		}
	}
	st, err := b.statsFlight.DoShared(ctx, k, func(ctx context.Context) (*workloads.Stats, error) { return b.fetchStats(ctx, k) })
	if err != nil {
		if ctx.Err() != nil {
			return nil, false // caller cancelled, not a cluster failure
		}
		b.cluster.fallbacks.Add(1)
		b.log.Warn("dispatch failed; falling back to local simulation", "kind", store.KindCluster, "workload", k.Workload, "err", err)
		return nil, false
	}
	return st, true
}

// StoreStats writes a locally simulated cluster result through to the
// local stats backend.
func (b *RemoteBackend) StoreStats(ctx context.Context, k workloads.StatsKey, st *workloads.Stats) {
	if b.localStats != nil {
		b.localStats.StoreStats(ctx, k, st)
	}
}

// fetchStats is fetchCounters for cluster jobs.
func (b *RemoteBackend) fetchStats(ctx context.Context, k workloads.StatsKey) (*workloads.Stats, error) {
	body, err := jobBody(store.KindCluster, k, 0)
	if err != nil {
		return nil, err
	}
	v, err := b.fetch(ctx, store.KindCluster, statsHash(k), body, nil, func(data []byte) (any, error) {
		gotKey, st, err := store.DecodeStats(data)
		if err != nil {
			return nil, fmt.Errorf("unverifiable response: %w", err)
		}
		if gotKey != k {
			return nil, fmt.Errorf("response is for cluster key %+v, want %+v", gotKey, k)
		}
		return st, nil
	})
	if err != nil {
		return nil, err
	}
	out := v.(*workloads.Stats)
	if b.localStats != nil {
		b.localStats.StoreStats(ctx, k, out)
	}
	return out, nil
}

// counterHash is the rendezvous hash input for a sweep key — unchanged
// from the sweep-only wire, so a mixed-version worker set keeps routing
// counter keys to the same owners during a rollout.
func counterHash(k sweep.Key) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%d|%d", k.Name, k.Profile.Seed, k.ConfigFP, k.MaxInstrs)
	return h.Sum64()
}

// statsHash is the rendezvous hash input for a cluster experiment key;
// the kind prefix keeps it disjoint from every counter key's.
func statsHash(k workloads.StatsKey) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "cluster|%s|%d|%g|%d", k.Workload, k.Slaves, k.Scale, k.Seed)
	return h.Sum64()
}

// jobBody encodes one kind-tagged /v1/jobs request.
func jobBody(kind string, key any, warmup int64) ([]byte, error) {
	rawKey, err := json.Marshal(key)
	if err != nil {
		return nil, err
	}
	return json.Marshal(struct {
		Kind   string          `json:"kind"`
		Key    json.RawMessage `json:"key"`
		Warmup int64           `json:"warmup,omitempty"`
	}{kind, rawKey, warmup})
}

// --- the kind-agnostic dispatch engine ---

// fetch runs one dispatched job: attempts walk the key's rendezvous order
// (healthy workers first, shedding ones demoted behind them, open
// circuits last), each bounded by the per-attempt timeout, with a hedged
// duplicate launched when the current attempt has been silent for the
// hedge delay. decode must be a pure verification of the response bytes —
// it runs in each attempt's goroutine (so even a straggler's success
// resets its worker's circuit, and a straggler's garbage is charged), and
// its failure fails the attempt, so a mangled record never wins over a
// retry. legacyBody, when non-nil, is the job in the pre-jobs /v1/sweep
// shape for workers that turn out not to speak /v1/jobs; a kind with no
// legacy shape skips known-legacy workers instead of failing them. Runs
// inside the key's flight cell, so concurrent engine misses for one key
// cost one remote round trip. ctx carries the trace (each attempt records
// a "dispatch" span and forwards the trace ID to the worker) and the
// flight's refcounted cancellation: it fires only when every caller
// sharing the cell has left, aborting the worker HTTP request so the
// worker sees its own request context die and can release the slot.
func (b *RemoteBackend) fetch(ctx context.Context, kind string, keyHash uint64, body, legacyBody []byte, decode func([]byte) (any, error)) (any, error) {
	ks := b.kindOf(kind)
	ks.dispatched.Add(1)
	b.inFlight.Add(1)
	defer b.inFlight.Add(-1)

	order, alive := b.rank(keyHash)
	if legacyBody == nil {
		// This kind has no pre-jobs shape: a known-legacy worker cannot
		// serve it, ever. Skip such workers — an incapable worker is not an
		// unhealthy one, and failing it here would open the circuit its
		// counters traffic depends on.
		now := b.now()
		capable := order[:0:0]
		alive = 0
		for _, w := range order {
			if w.isLegacy(now) {
				continue
			}
			capable = append(capable, w)
			if w.healthy(now) {
				alive++
			}
		}
		if order = capable; len(order) == 0 {
			return nil, fmt.Errorf("no worker speaks /v1/jobs for kind %q (all pre-jobs builds)", kind)
		}
	}
	if alive == 0 {
		// Every circuit is open: fail fast instead of paying a full
		// timeout per key against workers already known to be dark. The
		// cluster is probed again once a cooldown expires (healthy() turns
		// true by itself), so recovery needs no traffic while open.
		return nil, errors.New("every worker's circuit is open")
	}
	if b.opts.Replicas > 1 {
		// Replicated stores: the key is warm on its top Replicas workers,
		// not just the owner, so rotate the first attempt across the
		// healthy prefix of that replica set. rank puts healthy workers
		// first in score order, so the prefix below the first non-healthy
		// worker is exactly the healthy replicas; rotating within it (and
		// only it) spreads reads without ever preferring a demoted worker.
		// The retry walk still visits everything in order, owner included.
		now := b.now()
		h := 0
		for h < len(order) && h < b.opts.Replicas &&
			order[h].healthy(now) && !order[h].shedding(now) {
			h++
		}
		if h > 1 {
			off := int(uint64(b.rr.Add(1)) % uint64(h))
			rot := make([]*worker, 0, len(order))
			rot = append(rot, order[off:h]...)
			rot = append(rot, order[:off]...)
			rot = append(rot, order[h:]...)
			order = rot
		}
	}
	attempts := b.opts.Retries + 1
	if attempts > len(order) {
		attempts = len(order)
	}
	// One parent context for the whole fetch: a win by any attempt cancels
	// the stragglers' HTTP requests. The incoming ctx is the flight cell's
	// run context (memo.DoShared), already severed from any single caller —
	// it dies only when every caller sharing the cell has left, at which
	// point aborting the worker request is exactly right: the worker's own
	// request context cancels, its simulation joiner leaves, and (if it was
	// the last) the worker's simulation stops and frees its slot. This
	// replaced an earlier blanket WithoutCancel that kept a remote job
	// burning a worker slot after every caller had hung up.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type result struct {
		w   *worker
		val any
		err error
	}
	resc := make(chan result, attempts)
	launch := func(w *worker) {
		go func() {
			sp := obs.Start(ctx, "dispatch", "worker", w.addr, "kind", kind)
			data, err := b.post(ctx, w, kind, body, legacyBody)
			var val any
			if err == nil {
				// Verify in the attempt's own goroutine: a garbage 200 is
				// charged to the worker that produced it, and a valid one
				// resets its circuit — whether or not this attempt wins.
				if val, err = decode(data); err != nil {
					b.workerFailed(w, kind, err)
				} else {
					w.succeeded()
				}
			}
			switch {
			case err == nil:
				sp.End("outcome", "ok")
			case errors.Is(err, errShed):
				sp.End("outcome", "shed")
			default:
				sp.End("outcome", "error")
			}
			resc <- result{w, val, err}
		}()
	}
	launch(order[0])
	launched, pending := 1, 1
	var errs []error
	for pending > 0 {
		var hedge <-chan time.Time
		var timer *time.Timer
		if b.opts.Hedge > 0 && launched < attempts {
			timer = time.NewTimer(b.opts.Hedge)
			hedge = timer.C
		}
		select {
		case r := <-resc:
			if timer != nil {
				timer.Stop() // this iteration's hedge is moot
			}
			pending--
			if r.err == nil {
				ks.remoteHits.Add(1)
				return r.val, nil // stragglers drain into the buffered channel
			}
			errs = append(errs, fmt.Errorf("%s: %w", r.w.addr, r.err))
			if launched < attempts {
				launch(order[launched])
				launched++
				pending++
			}
		case <-hedge:
			launch(order[launched])
			launched++
			pending++
		}
	}
	return nil, errors.Join(errs...)
}

// workerFailed records one failed attempt in both ledgers at once — the
// worker's own counter/circuit state and the backend's per-kind aggregate
// — so per_worker[].errors always sums to at least dispatch.errors, even
// for stragglers that fail after their fetch has already been won
// elsewhere.
func (b *RemoteBackend) workerFailed(w *worker, kind string, err error) {
	b.kindOf(kind).errs.Add(1)
	msg := err.Error()
	if len(msg) > 200 {
		msg = msg[:200]
	}
	w.failed(b.now(), b.opts.Cooldown, msg)
}

// post sends one /v1/jobs request and returns the raw response bytes of a
// 200, the caller verifying them with the store codec. A 429 demotes the
// worker for its Retry-After window without touching circuit state; a
// 404 on /v1/jobs downgrades the worker to the /v1/sweep alias when the
// job has a legacy shape (pre-jobs workers in a mixed-version rollout);
// any other failure feeds the circuit.
func (b *RemoteBackend) post(parent context.Context, w *worker, kind string, body, legacyBody []byte) ([]byte, error) {
	w.sent.Add(1)
	url, payload := w.url, body
	useLegacy := legacyBody != nil && w.isLegacy(b.now())
	if useLegacy {
		url, payload = w.sweepURL, legacyBody
	}
	ctx, cancel := context.WithTimeout(parent, b.opts.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if id := obs.From(parent).ID(); id != "" {
		// Forward the trace so the worker's spans for this job land in a
		// trace with the same ID — one request, one timeline, two rings.
		req.Header.Set(obs.TraceHeader, id)
	}
	if b.opts.APIKey != "" {
		req.Header.Set("Authorization", "Bearer "+b.opts.APIKey)
	}
	if id := tenant.IDFrom(parent); id != "" {
		// Beside the trace rides the tenant: the worker attributes the
		// job to the tenant that caused it, not to this front-end's
		// service key, so per-tenant usage is coherent cluster-wide.
		req.Header.Set(tenant.Header, id)
	}
	resp, err := b.client.Do(req)
	if err != nil {
		if parent.Err() != nil {
			// The fetch already won elsewhere, or every caller left: either
			// way, not this worker's fault.
			return nil, parent.Err()
		}
		b.workerFailed(w, kind, err)
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxResponse))
	if err != nil {
		if parent.Err() != nil {
			return nil, parent.Err()
		}
		b.workerFailed(w, kind, err)
		return nil, err
	}
	if resp.StatusCode == http.StatusNotFound && !useLegacy &&
		strings.TrimSpace(string(data)) == "404 page not found" {
		// A mux route miss (net/http's fixed text, so a handler's
		// unknown-key 404 never trips this): the worker has no /v1/jobs at
		// all — a pre-jobs build. Remember that for legacyRecheck. A
		// counters job downgrades to the byte-compatible /v1/sweep alias
		// and retries this attempt there; a kind with no legacy shape
		// reports the incapability without charging the circuit its
		// counters traffic depends on (later fetches skip the worker).
		w.markLegacy(b.now())
		if legacyBody != nil {
			return b.post(parent, w, kind, body, legacyBody)
		}
		return nil, fmt.Errorf("worker has no /v1/jobs route (pre-jobs build)")
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		// Push-back, not failure: honor the worker's Retry-After hint as a
		// ranking demotion and move on to the next-ranked worker.
		b.kindOf(kind).shed.Add(1)
		w.shedded(b.now(), retryAfter(resp))
		return nil, errShed
	}
	if resp.StatusCode != http.StatusOK {
		msg := strings.TrimSpace(string(data))
		if len(msg) > 200 {
			msg = msg[:200]
		}
		err := fmt.Errorf("worker returned %d: %s", resp.StatusCode, msg)
		b.workerFailed(w, kind, err)
		return nil, err
	}
	return data, nil
}

// retryAfter parses a 429's Retry-After seconds, clamped to
// [defaultRetryAfter, maxShedDemotion]; an absent or unreadable header
// gets the default.
func retryAfter(resp *http.Response) time.Duration {
	secs, err := strconv.Atoi(strings.TrimSpace(resp.Header.Get("Retry-After")))
	if err != nil || secs < 1 {
		return defaultRetryAfter
	}
	d := time.Duration(secs) * time.Second
	if d > maxShedDemotion {
		return maxShedDemotion
	}
	return d
}

// rank orders the workers for a key hash — rendezvous (highest-random-
// weight) hashing in three classes: healthy workers first, shedding ones
// (saturated but alive) behind them, circuit-open ones last, score order
// preserved within each class. It reports how many workers are alive
// (circuit closed, shedding or not), so the caller can fail fast on a
// fully dark cluster while still attempting a merely saturated one.
func (b *RemoteBackend) rank(keyHash uint64) ([]*worker, int) {
	type scored struct {
		w     *worker
		score uint64
	}
	now := b.now()
	ss := make([]scored, len(b.workers))
	for i, w := range b.workers {
		h := fnv.New64a()
		fmt.Fprintf(h, "%s|%016x", w.addr, keyHash)
		ss[i] = scored{w, h.Sum64()}
	}
	sort.Slice(ss, func(i, j int) bool { return ss[i].score > ss[j].score })
	out := make([]*worker, 0, len(ss))
	var shedding, demoted []*worker
	for _, s := range ss {
		switch {
		case !s.w.healthy(now):
			demoted = append(demoted, s.w)
		case s.w.shedding(now):
			shedding = append(shedding, s.w)
		default:
			out = append(out, s.w)
		}
	}
	alive := len(out) + len(shedding)
	return append(append(out, shedding...), demoted...), alive
}

// BackendStats reports the wrapped local backend's store counters (zero
// when there is none) with the dispatch block filled in — the shape
// /healthz and /metrics render. The aggregate counters are per-kind sums.
func (b *RemoteBackend) BackendStats() sweep.BackendStats {
	var bs sweep.BackendStats
	if sr, ok := b.local.(sweep.StatsReporter); ok {
		bs = sr.BackendStats()
	}
	now := b.now()
	perKind := []sweep.DispatchKindStats{
		b.counters.snapshot(store.KindCounters),
		b.cluster.snapshot(store.KindCluster),
	}
	d := &sweep.DispatchStats{
		Workers:  int64(len(b.workers)),
		InFlight: b.inFlight.Load(),
		PerKind:  perKind,
	}
	for _, k := range perKind {
		d.Dispatched += k.Dispatched
		d.RemoteHits += k.RemoteHits
		d.Fallbacks += k.Fallbacks
		d.Errors += k.Errors
		d.Shed += k.Shed
	}
	for _, w := range b.workers {
		healthy := w.healthy(now)
		if healthy {
			d.Healthy++
		}
		fails, lastErr := w.failState()
		d.PerWorker = append(d.PerWorker, sweep.WorkerStats{
			Addr:             w.addr,
			Sent:             w.sent.Load(),
			Errors:           w.errs.Load(),
			Shed:             w.shed.Load(),
			CircuitOpen:      !healthy,
			Shedding:         w.shedding(now),
			ConsecutiveFails: fails,
			LastError:        lastErr,
		})
	}
	bs.Dispatch = d
	return bs
}
