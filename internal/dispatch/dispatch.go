// Package dispatch fans characterization sweeps out over worker nodes: a
// RemoteBackend implements sweep.MemoBackend by forwarding memo misses to
// a configured set of dcserved workers over HTTP, turning a front-end's
// sweep engine into the head of a sweep cluster.
//
// The design rides the memo seam end to end. The engine consults its
// backend only inside a key's singleflight cell, so the dispatch layer
// sees each key at most once per process while it stays memoized; below
// that, Load checks the local store first (warm results never leave the
// process), then picks workers by rendezvous hashing — every front-end
// sharing a worker set routes a key to the same worker, so the cluster
// simulates each key once — and forwards the miss with per-attempt
// timeouts, retries on the next-ranked workers, and optional hedging
// (a second request launched when the first dawdles; first answer wins).
//
// Failure is a first-class input: every worker carries consecutive-failure
// circuit state (an open circuit demotes it to last resort until a
// cooldown passes), a response is trusted only after the store codec's
// checksum-and-key verification, and when every worker is dark Load
// reports a plain miss — the engine simulates locally and the front-end
// degrades to exactly the single-process behaviour, counted in the
// Fallbacks stat rather than silent.
//
// Remote results are written through to the local store, so a front-end
// restart serves them without touching the cluster.
package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dcbench/internal/memo"
	"dcbench/internal/store"
	"dcbench/internal/sweep"
	"dcbench/internal/uarch"
)

// Defaults for Options' zero fields.
const (
	DefaultTimeout  = 120 * time.Second // a cold sweep on a loaded worker is slow, not dead
	DefaultRetries  = 2                 // attempts beyond the first, each on the next-ranked worker
	DefaultCooldown = 30 * time.Second  // circuit-open duration
	failThreshold   = 3                 // consecutive failures that open a worker's circuit
)

// maxResponse bounds a worker response; a counters record is a few KB.
const maxResponse = 8 << 20

// Options configures a RemoteBackend. The zero value of every field but
// Workers is usable: New fills defaults for Timeout and Cooldown, whose
// zero values would be meaningless; Retries 0 genuinely means "no
// retries" and Hedge 0 "no hedging" (RegisterFlags defaults Retries to
// DefaultRetries for the flag surface both binaries share).
type Options struct {
	// Workers are the worker addresses (host:port); an empty list means
	// dispatch is off and the caller should not build a backend at all.
	Workers []string
	// Timeout bounds each attempt, connection to last byte.
	Timeout time.Duration
	// Retries is how many additional attempts a failed fetch gets, each on
	// the next worker in the key's rendezvous order. 0 means one attempt
	// total; the -dispatch-retries flag defaults it to DefaultRetries.
	Retries int
	// Hedge, when positive, launches a duplicate request on the next-ranked
	// worker once the current one has been silent this long; the first
	// response wins. 0 (the default) disables hedging — a hedged cold
	// sweep is duplicated cluster work, so only enable it with a delay
	// comfortably above your slowest legitimate simulation.
	Hedge time.Duration
	// Cooldown is how long an open circuit keeps a worker demoted.
	Cooldown time.Duration
}

// RegisterFlags declares the dispatch flags on fs, defaulted from *o and
// written back on Parse — the single definition shared by dcbench and
// dcserved, so the flag surface cannot drift between the binaries.
func RegisterFlags(fs *flag.FlagSet, o *Options) {
	if o.Timeout == 0 {
		o.Timeout = DefaultTimeout
	}
	if o.Retries == 0 {
		o.Retries = DefaultRetries
	}
	if o.Cooldown == 0 {
		o.Cooldown = DefaultCooldown
	}
	fs.Var((*workerList)(&o.Workers), "workers", "comma-separated sweep worker addresses (host:port,...); empty = simulate locally")
	fs.DurationVar(&o.Timeout, "dispatch-timeout", o.Timeout, "per-attempt timeout for dispatched sweeps")
	fs.IntVar(&o.Retries, "dispatch-retries", o.Retries, "extra attempts on other workers after a failed dispatch")
	fs.DurationVar(&o.Hedge, "dispatch-hedge", o.Hedge, "hedge a silent dispatch onto the next worker after this long; 0 disables (a hedged sweep is duplicated work)")
	fs.DurationVar(&o.Cooldown, "dispatch-cooldown", o.Cooldown, "how long a repeatedly failing worker stays demoted")
}

// workerList is the -workers flag value: a comma-separated address list.
type workerList []string

func (l *workerList) String() string { return strings.Join(*l, ",") }

func (l *workerList) Set(v string) error {
	*l = nil
	for _, a := range strings.Split(v, ",") {
		if a = strings.TrimSpace(a); a != "" {
			*l = append(*l, a)
		}
	}
	return nil
}

// worker is one remote node's address, traffic counters and circuit state.
type worker struct {
	addr string
	url  string

	sent atomic.Int64
	errs atomic.Int64

	mu        sync.Mutex
	fails     int       // consecutive failures
	openUntil time.Time // circuit open (worker demoted) until then
}

// healthy reports whether the worker's circuit is closed at t.
func (w *worker) healthy(t time.Time) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return !t.Before(w.openUntil)
}

func (w *worker) succeeded() {
	w.mu.Lock()
	w.fails = 0
	w.openUntil = time.Time{}
	w.mu.Unlock()
}

func (w *worker) failed(t time.Time, cooldown time.Duration) {
	w.errs.Add(1)
	w.mu.Lock()
	w.fails++
	if w.fails >= failThreshold {
		w.openUntil = t.Add(cooldown)
	}
	w.mu.Unlock()
}

// RemoteBackend forwards sweep memo misses to worker nodes. It implements
// sweep.MemoBackend (so it slots into the engine untouched) and
// sweep.StatsReporter (store counters from the wrapped local backend plus
// the dispatch block).
type RemoteBackend struct {
	opts    Options
	warmup  int64
	local   sweep.MemoBackend // consulted first, written through; may be nil
	workers []*worker
	client  *http.Client
	log     *slog.Logger
	now     func() time.Time
	flight  *memo.Memo[sweep.Key, *uarch.Counters] // coalesces identical concurrent fetches

	dispatched atomic.Int64
	remoteHits atomic.Int64
	fallbacks  atomic.Int64
	errsTotal  atomic.Int64
	inFlight   atomic.Int64
}

// New builds a RemoteBackend over the given worker set. warmup is the
// run's ramp-up instruction count — the parameter the sweep keys' config
// fingerprint is derived from, shipped with every request so workers can
// rebuild and verify the machine config. local, when non-nil, is the
// backend remote results are written through to (and checked before any
// dispatch) — typically the persistent store's backend.
func New(opts Options, warmup int64, local sweep.MemoBackend, log *slog.Logger) (*RemoteBackend, error) {
	if len(opts.Workers) == 0 {
		return nil, errors.New("dispatch: no workers configured")
	}
	if opts.Timeout <= 0 {
		opts.Timeout = DefaultTimeout
	}
	if opts.Retries < 0 {
		opts.Retries = 0
	}
	if opts.Cooldown <= 0 {
		opts.Cooldown = DefaultCooldown
	}
	if log == nil {
		log = slog.Default()
	}
	b := &RemoteBackend{
		opts:   opts,
		warmup: warmup,
		local:  local,
		client: &http.Client{},
		log:    log,
		now:    time.Now,
		flight: memo.NewFlight[sweep.Key, *uarch.Counters](),
	}
	for _, addr := range opts.Workers {
		b.workers = append(b.workers, &worker{addr: addr, url: "http://" + addr + "/v1/sweep"})
	}
	return b, nil
}

// Load resolves a sweep key: local backend first, then the worker set. A
// remote result is written through to the local backend before it is
// returned. Total remote failure is a counted fallback and a plain miss —
// the engine then simulates locally, preserving single-process behaviour.
func (b *RemoteBackend) Load(k sweep.Key) (*uarch.Counters, bool) {
	if b.local != nil {
		if c, ok := b.local.Load(k); ok {
			return c, true
		}
	}
	c, err := b.flight.Do(k, func() (*uarch.Counters, error) { return b.fetch(k) })
	if err != nil {
		b.fallbacks.Add(1)
		b.log.Warn("dispatch failed; falling back to local simulation", "workload", k.Name, "err", err)
		return nil, false
	}
	return c, true
}

// Store writes a locally simulated result through to the local backend.
// Workers are not told: the cluster's copy lives wherever the key's
// rendezvous owner keeps its store.
func (b *RemoteBackend) Store(k sweep.Key, c *uarch.Counters) {
	if b.local != nil {
		b.local.Store(k, c)
	}
}

// fetch runs one dispatched lookup: attempts walk the key's rendezvous
// order (healthy workers first), each bounded by the per-attempt timeout,
// with a hedged duplicate launched when the current attempt has been
// silent for the hedge delay. Runs inside the key's flight cell, so
// concurrent engine misses for one key cost one remote round trip.
func (b *RemoteBackend) fetch(k sweep.Key) (*uarch.Counters, error) {
	b.dispatched.Add(1)
	b.inFlight.Add(1)
	defer b.inFlight.Add(-1)

	order, healthy := b.rank(k)
	if healthy == 0 {
		// Every circuit is open: fail fast instead of paying a full
		// timeout per key against workers already known to be dark. The
		// cluster is probed again once a cooldown expires (healthy() turns
		// true by itself), so recovery needs no traffic while open.
		return nil, errors.New("every worker's circuit is open")
	}
	attempts := b.opts.Retries + 1
	if attempts > len(order) {
		attempts = len(order)
	}
	// One parent context for the whole fetch: a win by any attempt cancels
	// the stragglers' HTTP requests. Note this only frees the front-end's
	// wait — a worker runs simulations under its own base context (so
	// coalesced callers survive any one client's disconnect), so a hedged
	// simulation already started runs to completion there. A hedge
	// therefore costs a duplicate simulation, which is why it is off by
	// default.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type result struct {
		w   *worker
		c   *uarch.Counters
		err error
	}
	resc := make(chan result, attempts)
	launch := func(w *worker) {
		go func() {
			c, err := b.post(ctx, w, k)
			resc <- result{w, c, err}
		}()
	}
	launch(order[0])
	launched, pending := 1, 1
	var errs []error
	for pending > 0 {
		var hedge <-chan time.Time
		var timer *time.Timer
		if b.opts.Hedge > 0 && launched < attempts {
			timer = time.NewTimer(b.opts.Hedge)
			hedge = timer.C
		}
		select {
		case r := <-resc:
			if timer != nil {
				timer.Stop() // this iteration's hedge is moot
			}
			pending--
			if r.err == nil {
				b.remoteHits.Add(1)
				if b.local != nil {
					b.local.Store(k, r.c) // write through: restarts stay warm
				}
				return r.c, nil // stragglers drain into the buffered channel
			}
			errs = append(errs, fmt.Errorf("%s: %w", r.w.addr, r.err))
			if launched < attempts {
				launch(order[launched])
				launched++
				pending++
			}
		case <-hedge:
			launch(order[launched])
			launched++
			pending++
		}
	}
	return nil, errors.Join(errs...)
}

// workerFailed records one failed attempt in both ledgers at once — the
// worker's own counter/circuit state and the backend's aggregate — so
// per_worker[].errors always sums to at least dispatch.errors, even for
// stragglers that fail after their fetch has already been won elsewhere.
func (b *RemoteBackend) workerFailed(w *worker) {
	b.errsTotal.Add(1)
	w.failed(b.now(), b.opts.Cooldown)
}

// post sends one /v1/sweep request and verifies the response record: the
// store codec's checksum plus an exact key match, so a worker answering
// for the wrong key (or a mangled response) is an error, never counters.
func (b *RemoteBackend) post(parent context.Context, w *worker, k sweep.Key) (*uarch.Counters, error) {
	w.sent.Add(1)
	body, err := json.Marshal(struct {
		Key    sweep.Key `json:"key"`
		Warmup int64     `json:"warmup"`
	}{k, b.warmup})
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(parent, b.opts.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := b.client.Do(req)
	if err != nil {
		if parent.Err() != nil {
			return nil, parent.Err() // the fetch already won elsewhere: not this worker's fault
		}
		b.workerFailed(w)
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxResponse))
	if err != nil {
		if parent.Err() != nil {
			return nil, parent.Err()
		}
		b.workerFailed(w)
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		b.workerFailed(w)
		msg := strings.TrimSpace(string(data))
		if len(msg) > 200 {
			msg = msg[:200]
		}
		return nil, fmt.Errorf("worker returned %d: %s", resp.StatusCode, msg)
	}
	gotKey, c, err := store.DecodeCounters(data)
	if err != nil {
		b.workerFailed(w)
		return nil, fmt.Errorf("unverifiable response: %w", err)
	}
	if gotKey != k {
		b.workerFailed(w)
		return nil, fmt.Errorf("response is for key %q/%016x, want %q/%016x",
			gotKey.Name, gotKey.ConfigFP, k.Name, k.ConfigFP)
	}
	w.succeeded()
	return c, nil
}

// rank orders the workers for a key — rendezvous (highest-random-weight)
// hashing, with circuit-open workers demoted behind every healthy one,
// score order preserved within each class — and reports how many are
// healthy, so the caller can fail fast on a fully dark cluster.
func (b *RemoteBackend) rank(k sweep.Key) ([]*worker, int) {
	kh := fnv.New64a()
	fmt.Fprintf(kh, "%s|%d|%d|%d", k.Name, k.Profile.Seed, k.ConfigFP, k.MaxInstrs)
	keyHash := kh.Sum64()
	type scored struct {
		w     *worker
		score uint64
	}
	now := b.now()
	ss := make([]scored, len(b.workers))
	for i, w := range b.workers {
		h := fnv.New64a()
		fmt.Fprintf(h, "%s|%016x", w.addr, keyHash)
		ss[i] = scored{w, h.Sum64()}
	}
	sort.Slice(ss, func(i, j int) bool { return ss[i].score > ss[j].score })
	out := make([]*worker, 0, len(ss))
	var demoted []*worker
	for _, s := range ss {
		if s.w.healthy(now) {
			out = append(out, s.w)
		} else {
			demoted = append(demoted, s.w)
		}
	}
	return append(out, demoted...), len(out)
}

// BackendStats reports the wrapped local backend's store counters (zero
// when there is none) with the dispatch block filled in — the shape
// /healthz and /metrics render.
func (b *RemoteBackend) BackendStats() sweep.BackendStats {
	var bs sweep.BackendStats
	if sr, ok := b.local.(sweep.StatsReporter); ok {
		bs = sr.BackendStats()
	}
	now := b.now()
	d := &sweep.DispatchStats{
		Workers:    int64(len(b.workers)),
		Dispatched: b.dispatched.Load(),
		RemoteHits: b.remoteHits.Load(),
		Fallbacks:  b.fallbacks.Load(),
		Errors:     b.errsTotal.Load(),
		InFlight:   b.inFlight.Load(),
	}
	for _, w := range b.workers {
		healthy := w.healthy(now)
		if healthy {
			d.Healthy++
		}
		d.PerWorker = append(d.PerWorker, sweep.WorkerStats{
			Addr:        w.addr,
			Sent:        w.sent.Load(),
			Errors:      w.errs.Load(),
			CircuitOpen: !healthy,
		})
	}
	bs.Dispatch = d
	return bs
}
