package dispatch_test

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"dcbench/internal/core"
	"dcbench/internal/dispatch"
	"dcbench/internal/report"
	"dcbench/internal/serve"
	"dcbench/internal/store"
	"dcbench/internal/sweep"
	"dcbench/internal/uarch"
	"dcbench/internal/workloads"
)

var quiet = slog.New(slog.NewTextHandler(io.Discard, nil))

// e2eOptions keeps the distributed sweeps small enough for CI while still
// covering the full registry.
func e2eOptions() report.Options {
	o := report.DefaultOptions()
	o.Instrs = 20_000
	o.Warmup = 5_000
	o.Scale = 0.003
	return o
}

// v1Paths is every read endpoint the byte-parity criterion covers: all
// figures, all tables (plus a CSV variant), the registry and one counters
// file.
func v1Paths() []string {
	var paths []string
	for i := 1; i <= 12; i++ {
		paths = append(paths, fmt.Sprintf("/v1/figures/%d", i))
	}
	paths = append(paths,
		"/v1/figures/3?format=csv",
		"/v1/tables/1", "/v1/tables/1?format=csv", "/v1/tables/2", "/v1/tables/3",
		"/v1/workloads", "/v1/workloads/Sort/counters",
	)
	return paths
}

func fetch(t *testing.T, ts *httptest.Server, path string) []byte {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: status %d: %s", path, resp.StatusCode, body)
	}
	return body
}

// newWorkerServer boots a store-backed dcserved acting as a sweep worker
// and returns its host:port.
func newWorkerServer(t *testing.T) string {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	srv := serve.New(serve.Config{Options: e2eOptions(), Store: st, Logger: quiet})
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return strings.TrimPrefix(ts.URL, "http://")
}

// countingShim wraps the dispatch backend's two faces and counts the
// engines' write-throughs — each one is a local simulation the front-end
// performed itself — split by job kind.
type countingShim struct {
	inner *dispatch.RemoteBackend
	mu    sync.Mutex
	sims  int // counter sweeps simulated locally
	hits  int // counter loads answered (local store or remote)

	statsSims int // cluster experiments simulated locally
	statsHits int
}

func (c *countingShim) Load(ctx context.Context, k sweep.Key) (*uarch.Counters, bool) {
	v, ok := c.inner.Load(ctx, k)
	if ok {
		c.mu.Lock()
		c.hits++
		c.mu.Unlock()
	}
	return v, ok
}

func (c *countingShim) Store(ctx context.Context, k sweep.Key, v *uarch.Counters) {
	c.mu.Lock()
	c.sims++
	c.mu.Unlock()
	c.inner.Store(ctx, k, v)
}

func (c *countingShim) LoadStats(ctx context.Context, k workloads.StatsKey) (*workloads.Stats, bool) {
	v, ok := c.inner.LoadStats(ctx, k)
	if ok {
		c.mu.Lock()
		c.statsHits++
		c.mu.Unlock()
	}
	return v, ok
}

func (c *countingShim) StoreStats(ctx context.Context, k workloads.StatsKey, v *workloads.Stats) {
	c.mu.Lock()
	c.statsSims++
	c.mu.Unlock()
	c.inner.StoreStats(ctx, k, v)
}

func (c *countingShim) counts() (sims, hits int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sims, c.hits
}

func (c *countingShim) statsCounts() (sims, hits int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.statsSims, c.statsHits
}

// newFrontEnd assembles a front-end server: a dispatch backend over the
// given workers for both job kinds, writing through to its own store,
// with the engines' write-throughs counted (those are front-end local
// simulations).
func newFrontEnd(t *testing.T, frontStore *store.Store, workers ...string) (*httptest.Server, *dispatch.RemoteBackend, *countingShim) {
	t.Helper()
	opts := e2eOptions()
	remote, err := dispatch.New(dispatch.Options{Workers: workers, Retries: 2}, opts.Warmup,
		frontStore.Backend(quiet), frontStore.StatsBackend(quiet), quiet)
	if err != nil {
		t.Fatal(err)
	}
	shim := &countingShim{inner: remote}
	srv := serve.New(serve.Config{Options: opts, Store: frontStore, Backend: shim, Cluster: shim, Logger: quiet})
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, remote, shim
}

// clusterKeyCount is the number of distinct cluster experiment cells the
// full endpoint walk renders: every Table I workload at the Figure 2
// slave counts (Figure 5 and Table I reuse the 4-slave column).
func clusterKeyCount() int { return 3 * len(workloads.All()) }

// TestDistributedByteParityAndWarmRestart is the PR's acceptance walk: a
// front-end with one worker serves every /v1 endpoint byte-identically to
// a single-process dcserved without simulating a single sweep key or
// cluster experiment itself (both job kinds land on the worker); a
// restarted front-end over the same store re-simulates and re-dispatches
// nothing of either kind.
func TestDistributedByteParityAndWarmRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full registry sweeps")
	}
	// Single-process baseline.
	local := serve.New(serve.Config{Options: e2eOptions(), Logger: quiet})
	t.Cleanup(local.Close)
	localTS := httptest.NewServer(local.Handler())
	t.Cleanup(localTS.Close)
	baseline := map[string][]byte{}
	for _, p := range v1Paths() {
		baseline[p] = fetch(t, localTS, p)
	}

	// Front-end over one worker.
	workerAddr := newWorkerServer(t)
	frontStore, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { frontStore.Close() })
	frontTS, remote, shim := newFrontEnd(t, frontStore, workerAddr)
	for _, p := range v1Paths() {
		if got := fetch(t, frontTS, p); string(got) != string(baseline[p]) {
			t.Errorf("%s: front-end bytes diverge from single-process dcserved", p)
		}
	}
	nkeys := len(core.Registry())
	ncluster := clusterKeyCount()
	if sims, _ := shim.counts(); sims != 0 {
		t.Fatalf("front-end simulated %d sweep keys itself; the worker must do all of them", sims)
	}
	if sims, _ := shim.statsCounts(); sims != 0 {
		t.Fatalf("front-end simulated %d cluster experiments itself; the worker must do all of them", sims)
	}
	d := remote.BackendStats().Dispatch
	if d.RemoteHits != int64(nkeys+ncluster) || d.Fallbacks != 0 {
		t.Fatalf("dispatch stats = %+v, want %d remote hits (both kinds) and no fallbacks", d, nkeys+ncluster)
	}
	for _, pk := range d.PerKind {
		want := int64(nkeys)
		if pk.Kind == store.KindCluster {
			want = int64(ncluster)
		}
		if pk.RemoteHits != want || pk.Fallbacks != 0 {
			t.Fatalf("kind %s stats = %+v, want %d remote hits and no fallbacks", pk.Kind, pk, want)
		}
	}

	// Restart: same store, but the "worker" address now refuses
	// connections. Everything must come from the write-through store —
	// zero simulations AND zero dispatches, for both kinds.
	deadTS := httptest.NewServer(http.NotFoundHandler())
	deadAddr := strings.TrimPrefix(deadTS.URL, "http://")
	deadTS.Close()
	front2TS, remote2, shim2 := newFrontEnd(t, frontStore, deadAddr)
	for _, p := range v1Paths() {
		if got := fetch(t, front2TS, p); string(got) != string(baseline[p]) {
			t.Errorf("%s: restarted front-end bytes diverge", p)
		}
	}
	if sims, hits := shim2.counts(); sims != 0 || hits != nkeys {
		t.Fatalf("restart: sims=%d hits=%d, want 0 simulations and %d store hits", sims, hits, nkeys)
	}
	if sims, hits := shim2.statsCounts(); sims != 0 || hits != ncluster {
		t.Fatalf("restart: cluster sims=%d hits=%d, want 0 re-simulations and %d store hits", sims, hits, ncluster)
	}
	if d := remote2.BackendStats().Dispatch; d.Dispatched != 0 {
		t.Fatalf("restarted front-end dispatched %d jobs; the store should have answered all of them", d.Dispatched)
	}
}

// TestWorkerKilledMidSweep: one worker dies partway through the sweep (it
// answers a few keys, then every request fails); the front-end retries the
// survivor and still serves bytes identical to a single-process render,
// with no local fallback.
func TestWorkerKilledMidSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full registry sweeps")
	}
	local := serve.New(serve.Config{Options: e2eOptions(), Logger: quiet})
	t.Cleanup(local.Close)
	localTS := httptest.NewServer(local.Handler())
	t.Cleanup(localTS.Close)
	want := fetch(t, localTS, "/v1/figures/3")

	// The doomed worker: a real worker that dies after 5 answers.
	doomedSrv := serve.New(serve.Config{Options: e2eOptions(), Logger: quiet})
	t.Cleanup(doomedSrv.Close)
	doomedH := doomedSrv.Handler()
	var answered atomic.Int64
	doomedTS := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if answered.Add(1) > 5 {
			http.Error(w, "worker killed mid-sweep", http.StatusInternalServerError)
			return
		}
		doomedH.ServeHTTP(w, r)
	}))
	t.Cleanup(doomedTS.Close)
	survivor := newWorkerServer(t)

	frontStore, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { frontStore.Close() })
	frontTS, remote, shim := newFrontEnd(t, frontStore, strings.TrimPrefix(doomedTS.URL, "http://"), survivor)

	if got := fetch(t, frontTS, "/v1/figures/3"); string(got) != string(want) {
		t.Fatal("bytes diverge after a worker died mid-sweep")
	}
	if sims, _ := shim.counts(); sims != 0 {
		t.Fatalf("front-end fell back to %d local simulations; the survivor should have absorbed the sweep", sims)
	}
	d := remote.BackendStats().Dispatch
	if d.Fallbacks != 0 || d.RemoteHits != int64(len(core.Registry())) {
		t.Fatalf("dispatch stats = %+v, want every key remote with no fallbacks", d)
	}
}

// TestAllWorkersDarkFallsBackLocally: with every worker blackholed the
// front-end degrades to local simulation — counted, and byte-identical.
func TestAllWorkersDarkFallsBackLocally(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full registry sweeps")
	}
	local := serve.New(serve.Config{Options: e2eOptions(), Logger: quiet})
	t.Cleanup(local.Close)
	localTS := httptest.NewServer(local.Handler())
	t.Cleanup(localTS.Close)
	want := fetch(t, localTS, "/v1/figures/4")

	deadTS := httptest.NewServer(http.NotFoundHandler())
	deadAddr := strings.TrimPrefix(deadTS.URL, "http://")
	deadTS.Close()
	frontStore, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { frontStore.Close() })
	frontTS, remote, shim := newFrontEnd(t, frontStore, deadAddr)

	if got := fetch(t, frontTS, "/v1/figures/4"); string(got) != string(want) {
		t.Fatal("local-fallback bytes diverge from single-process dcserved")
	}
	nkeys := len(core.Registry())
	if sims, _ := shim.counts(); sims != nkeys {
		t.Fatalf("front-end simulated %d keys, want all %d locally", sims, nkeys)
	}
	d := remote.BackendStats().Dispatch
	if d.Fallbacks != int64(nkeys) || d.RemoteHits != 0 {
		t.Fatalf("dispatch stats = %+v, want %d counted fallbacks", d, nkeys)
	}
}
