package dispatch

import (
	"encoding/json"
	"flag"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dcbench/internal/memtrace"
	"dcbench/internal/store"
	"dcbench/internal/sweep"
	"dcbench/internal/uarch"
)

var quietLog = slog.New(slog.NewTextHandler(io.Discard, nil))

func testKey(name string, seed uint64) sweep.Key {
	return sweep.Key{
		Name:      name,
		Profile:   memtrace.Profile{Seed: seed, MaxInstrs: 1000},
		ConfigFP:  0xc0ffee,
		MaxInstrs: 1000,
	}
}

// addrOf strips the scheme off an httptest server URL — the host:port form
// the -workers flag takes.
func addrOf(ts *httptest.Server) string { return strings.TrimPrefix(ts.URL, "http://") }

// mapBackend is an in-memory local backend.
type mapBackend struct {
	mu sync.Mutex
	m  map[sweep.Key]*uarch.Counters
}

func newMapBackend() *mapBackend { return &mapBackend{m: map[sweep.Key]*uarch.Counters{}} }

func (b *mapBackend) Load(k sweep.Key) (*uarch.Counters, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	c, ok := b.m[k]
	return c, ok
}

func (b *mapBackend) Store(k sweep.Key, c *uarch.Counters) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.m[k] = c
}

// fakeWorker answers /v1/sweep with a well-formed record for the requested
// key (Cycles = the key's seed, so responses are checkable), counting
// requests. broken makes it 500 instead.
func fakeWorker(t *testing.T, broken bool) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var served atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		if broken {
			http.Error(w, "synthetic failure", http.StatusInternalServerError)
			return
		}
		var req struct {
			Key    sweep.Key `json:"key"`
			Warmup int64     `json:"warmup"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		data, err := store.EncodeCounters(req.Key, &uarch.Counters{Cycles: int64(req.Key.Profile.Seed)})
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(data)
	}))
	t.Cleanup(ts.Close)
	return ts, &served
}

func newTestBackend(t *testing.T, local sweep.MemoBackend, addrs ...string) *RemoteBackend {
	t.Helper()
	b, err := New(Options{Workers: addrs, Timeout: 5 * time.Second, Retries: 2}, 0, local, quietLog)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestLoadPrefersLocal: a warm local backend answers without any dispatch.
func TestLoadPrefersLocal(t *testing.T) {
	ts, served := fakeWorker(t, false)
	local := newMapBackend()
	k := testKey("w", 1)
	want := &uarch.Counters{Cycles: 77}
	local.Store(k, want)

	b := newTestBackend(t, local, addrOf(ts))
	c, ok := b.Load(k)
	if !ok || c != want {
		t.Fatalf("Load = %v, %v; want the local pointer", c, ok)
	}
	if served.Load() != 0 {
		t.Fatalf("local hit still dispatched %d requests", served.Load())
	}
	if d := b.BackendStats().Dispatch; d.Dispatched != 0 {
		t.Fatalf("Dispatched = %d, want 0", d.Dispatched)
	}
}

// TestRemoteHitWritesThrough: a remote answer lands in the local backend,
// so the next Load never leaves the process — the restart-warm property.
func TestRemoteHitWritesThrough(t *testing.T) {
	ts, served := fakeWorker(t, false)
	local := newMapBackend()
	b := newTestBackend(t, local, addrOf(ts))
	k := testKey("w", 9)

	c, ok := b.Load(k)
	if !ok || c.Cycles != 9 {
		t.Fatalf("Load = %+v, %v", c, ok)
	}
	if got, ok := local.Load(k); !ok || got.Cycles != 9 {
		t.Fatal("remote result was not written through to the local backend")
	}
	if _, ok := b.Load(k); !ok {
		t.Fatal("second Load missed")
	}
	if served.Load() != 1 {
		t.Fatalf("worker served %d requests, want 1 (second Load must hit local)", served.Load())
	}
	d := b.BackendStats().Dispatch
	if d.Dispatched != 1 || d.RemoteHits != 1 || d.Fallbacks != 0 {
		t.Fatalf("stats = %+v, want 1 dispatched / 1 remote hit / 0 fallbacks", d)
	}
}

// TestRetryOnFailingWorker: a 500ing worker is retried past onto the
// surviving one and every fetch still succeeds.
func TestRetryOnFailingWorker(t *testing.T) {
	bad, _ := fakeWorker(t, true)
	good, goodServed := fakeWorker(t, false)
	b := newTestBackend(t, nil, addrOf(bad), addrOf(good))

	// Whatever the rendezvous order, with retries both workers get a shot.
	for seed := uint64(0); seed < 4; seed++ {
		c, ok := b.Load(testKey("w", seed))
		if !ok || c.Cycles != int64(seed) {
			t.Fatalf("seed %d: Load = %+v, %v; the surviving worker must answer", seed, c, ok)
		}
	}
	if goodServed.Load() < 4 {
		t.Fatalf("surviving worker served %d, want >= 4", goodServed.Load())
	}
	d := b.BackendStats().Dispatch
	if d.RemoteHits != 4 || d.Fallbacks != 0 {
		t.Fatalf("stats = %+v, want 4 remote hits and 0 fallbacks", d)
	}
}

// TestFallbackWhenAllWorkersDark: every worker unreachable → Load is a
// counted fallback miss, so the engine simulates locally; the local
// simulation's write-through still works.
func TestFallbackWhenAllWorkersDark(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // bound then closed: connection refused immediately
	local := newMapBackend()
	b := newTestBackend(t, local, addrOf(dead))
	k := testKey("w", 3)

	if _, ok := b.Load(k); ok {
		t.Fatal("Load succeeded against a dead worker set")
	}
	d := b.BackendStats().Dispatch
	if d.Fallbacks != 1 || d.RemoteHits != 0 {
		t.Fatalf("stats = %+v, want exactly 1 fallback", d)
	}
	// The engine's write-through path after a local simulation.
	sim := &uarch.Counters{Cycles: 42}
	b.Store(k, sim)
	if got, ok := local.Load(k); !ok || got != sim {
		t.Fatal("Store did not write through to the local backend")
	}
}

// TestHedgeRescuesSilentWorker: a worker that accepts the connection and
// then goes silent is hedged around — the next-ranked worker answers long
// before the silent one's timeout.
func TestHedgeRescuesSilentWorker(t *testing.T) {
	release := make(chan struct{})
	silent := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select { // hold the request until the client gives up or the test ends
		case <-r.Context().Done():
		case <-release:
		}
	}))
	t.Cleanup(silent.Close)
	t.Cleanup(func() { close(release) }) // LIFO: releases the handler before Close waits on it
	good, goodServed := fakeWorker(t, false)
	b, err := New(Options{
		Workers: []string{addrOf(silent), addrOf(good)},
		Timeout: 30 * time.Second, // far beyond the test: only the hedge can save us
		Retries: 1,
		Hedge:   30 * time.Millisecond,
	}, 0, nil, quietLog)
	if err != nil {
		t.Fatal(err)
	}

	// Find a key whose rendezvous order puts the silent worker first, so
	// the hedge is what rescues the fetch.
	var k sweep.Key
	for seed := uint64(0); ; seed++ {
		k = testKey("w", seed)
		if order, _ := b.rank(k); order[0].addr == addrOf(silent) {
			break
		}
	}
	start := time.Now()
	c, ok := b.Load(k)
	if !ok || c.Cycles != int64(k.Profile.Seed) {
		t.Fatalf("Load = %+v, %v", c, ok)
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("hedged fetch took %v; the hedge did not fire", d)
	}
	if goodServed.Load() != 1 {
		t.Fatalf("hedge target served %d requests, want 1", goodServed.Load())
	}
}

// TestCircuitOpensAndRecovers: failThreshold consecutive failures demote a
// worker behind healthy ones; after the cooldown it is probed again.
func TestCircuitOpensAndRecovers(t *testing.T) {
	bad, _ := fakeWorker(t, true)
	good, _ := fakeWorker(t, false)
	b := newTestBackend(t, nil, addrOf(bad), addrOf(good))
	clock := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	b.now = func() time.Time { return clock }

	// Drive keys that rank the bad worker first until its circuit opens.
	opened := false
	for seed := uint64(0); seed < 256 && !opened; seed++ {
		k := testKey("w", seed)
		if order, _ := b.rank(k); order[0].addr != addrOf(bad) {
			continue
		}
		if _, ok := b.Load(k); !ok {
			t.Fatalf("seed %d: fetch failed with a healthy worker present", seed)
		}
		opened = b.BackendStats().Dispatch.Healthy == 1
	}
	if !opened {
		t.Fatal("bad worker's circuit never opened")
	}
	d := b.BackendStats().Dispatch
	var badStats sweep.WorkerStats
	for _, w := range d.PerWorker {
		if w.Addr == addrOf(bad) {
			badStats = w
		}
	}
	if !badStats.CircuitOpen || badStats.Errors < int64(failThreshold) {
		t.Fatalf("bad worker stats = %+v, want an open circuit after >= %d errors", badStats, failThreshold)
	}

	// With the circuit open, the good worker ranks first for every key:
	// fetches succeed first-try and the demoted worker sees no traffic.
	sentBefore := badStats.Sent
	for seed := uint64(300); seed < 308; seed++ {
		if _, ok := b.Load(testKey("w", seed)); !ok {
			t.Fatalf("seed %d: fetch failed while circuit open", seed)
		}
	}
	for _, w := range b.BackendStats().Dispatch.PerWorker {
		if w.Addr == addrOf(bad) && w.Sent != sentBefore {
			t.Fatalf("circuit-open worker still saw %d new requests", w.Sent-sentBefore)
		}
	}

	// Past the cooldown the worker counts as healthy and is probed again.
	clock = clock.Add(DefaultCooldown + time.Second)
	if got := b.BackendStats().Dispatch.Healthy; got != 2 {
		t.Fatalf("healthy after cooldown = %d, want 2", got)
	}
}

// TestDarkClusterFailsFast: once every worker's circuit is open, a fetch
// returns a counted fallback without contacting anyone — no per-key
// timeout against workers already known dark — and the cooldown's expiry
// alone restores probing.
func TestDarkClusterFailsFast(t *testing.T) {
	bad, _ := fakeWorker(t, true)
	b := newTestBackend(t, nil, addrOf(bad))
	clock := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	b.now = func() time.Time { return clock }

	for seed := uint64(0); seed < uint64(failThreshold); seed++ {
		if _, ok := b.Load(testKey("w", seed)); ok {
			t.Fatal("broken worker answered")
		}
	}
	sentBefore := b.BackendStats().Dispatch.PerWorker[0].Sent
	if _, ok := b.Load(testKey("w", 99)); ok {
		t.Fatal("dark cluster answered")
	}
	d := b.BackendStats().Dispatch
	if d.PerWorker[0].Sent != sentBefore {
		t.Fatalf("circuit-open worker was contacted (%d new requests); want fail-fast", d.PerWorker[0].Sent-sentBefore)
	}
	if d.Fallbacks != int64(failThreshold)+1 {
		t.Fatalf("fallbacks = %d, want %d (every miss counted)", d.Fallbacks, failThreshold+1)
	}

	// The cooldown restores probing by itself.
	clock = clock.Add(DefaultCooldown + time.Second)
	if _, ok := b.Load(testKey("w", 100)); ok {
		t.Fatal("broken worker answered after cooldown")
	}
	if got := b.BackendStats().Dispatch.PerWorker[0].Sent; got != sentBefore+1 {
		t.Fatalf("post-cooldown probe count = %d, want %d", got, sentBefore+1)
	}
}

// TestRendezvousStableAndSpread: one key always ranks the workers in the
// same order (so a shared worker set simulates each key once), and
// different keys spread across the set.
func TestRendezvousStableAndSpread(t *testing.T) {
	b, err := New(Options{Workers: []string{"a:1", "b:1", "c:1"}}, 0, nil, quietLog)
	if err != nil {
		t.Fatal(err)
	}
	first := map[string]int{}
	for seed := uint64(0); seed < 64; seed++ {
		k := testKey("w", seed)
		r1, _ := b.rank(k)
		r2, _ := b.rank(k)
		for i := range r1 {
			if r1[i] != r2[i] {
				t.Fatalf("seed %d: rank is not deterministic", seed)
			}
		}
		first[r1[0].addr]++
	}
	if len(first) != 3 {
		t.Fatalf("64 keys landed on %d workers, want all 3 (distribution %v)", len(first), first)
	}
}

// TestRegisterFlagsParsesWorkerList pins the shared flag surface both
// binaries mount: the list flag splits and trims, unset flags keep their
// defaults, and an empty worker set refuses to build a backend.
func TestRegisterFlagsParsesWorkerList(t *testing.T) {
	var o Options
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	RegisterFlags(fs, &o)
	if err := fs.Parse([]string{
		"-workers", "n1:8337, n2:8337,,n3:8337",
		"-dispatch-retries", "5",
	}); err != nil {
		t.Fatal(err)
	}
	if strings.Join(o.Workers, "|") != "n1:8337|n2:8337|n3:8337" {
		t.Fatalf("Workers = %v", o.Workers)
	}
	if o.Retries != 5 || o.Timeout != DefaultTimeout || o.Hedge != 0 || o.Cooldown != DefaultCooldown {
		t.Fatalf("parsed options = %+v, want defaults where unset (hedging off)", o)
	}
	if _, err := New(Options{}, 0, nil, nil); err == nil {
		t.Fatal("New accepted an empty worker set")
	}
}
