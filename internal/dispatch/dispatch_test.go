package dispatch

import (
	"context"
	"encoding/json"
	"flag"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dcbench/internal/memtrace"
	"dcbench/internal/store"
	"dcbench/internal/sweep"
	"dcbench/internal/uarch"
	"dcbench/internal/workloads"
)

var quietLog = slog.New(slog.NewTextHandler(io.Discard, nil))

// testCtx is the untraced context every backend call in these tests runs
// under; tracing has its own tests.
var testCtx = context.Background()

func testKey(name string, seed uint64) sweep.Key {
	return sweep.Key{
		Name:      name,
		Profile:   memtrace.Profile{Seed: seed, MaxInstrs: 1000},
		ConfigFP:  0xc0ffee,
		MaxInstrs: 1000,
	}
}

func testStatsKey(name string, slaves int) workloads.StatsKey {
	return workloads.StatsKey{Workload: name, Slaves: slaves, Scale: 0.01, Seed: 7}
}

// addrOf strips the scheme off an httptest server URL — the host:port form
// the -workers flag takes.
func addrOf(ts *httptest.Server) string { return strings.TrimPrefix(ts.URL, "http://") }

// mapBackend is an in-memory local backend for both job kinds.
type mapBackend struct {
	mu sync.Mutex
	m  map[sweep.Key]*uarch.Counters
	st map[workloads.StatsKey]*workloads.Stats
}

func newMapBackend() *mapBackend {
	return &mapBackend{
		m:  map[sweep.Key]*uarch.Counters{},
		st: map[workloads.StatsKey]*workloads.Stats{},
	}
}

func (b *mapBackend) Load(_ context.Context, k sweep.Key) (*uarch.Counters, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	c, ok := b.m[k]
	return c, ok
}

func (b *mapBackend) Store(_ context.Context, k sweep.Key, c *uarch.Counters) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.m[k] = c
}

func (b *mapBackend) LoadStats(_ context.Context, k workloads.StatsKey) (*workloads.Stats, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	st, ok := b.st[k]
	return st, ok
}

func (b *mapBackend) StoreStats(_ context.Context, k workloads.StatsKey, st *workloads.Stats) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.st[k] = st
}

// fakeWorker answers /v1/jobs for both kinds with a well-formed record for
// the requested key (counters: Cycles = the key's seed; cluster: Jobs =
// the key's slave count — so responses are checkable), counting requests.
// broken makes it 500 instead.
func fakeWorker(t *testing.T, broken bool) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var served atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		if broken {
			http.Error(w, "synthetic failure", http.StatusInternalServerError)
			return
		}
		var req struct {
			Kind   string          `json:"kind"`
			Key    json.RawMessage `json:"key"`
			Warmup int64           `json:"warmup"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var data []byte
		var err error
		switch req.Kind {
		case store.KindCounters:
			var key sweep.Key
			if err := json.Unmarshal(req.Key, &key); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			data, err = store.EncodeCounters(key, &uarch.Counters{Cycles: int64(key.Profile.Seed)})
		case store.KindCluster:
			var key workloads.StatsKey
			if err := json.Unmarshal(req.Key, &key); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			data, err = store.EncodeStats(key, &workloads.Stats{Workload: key.Workload, Jobs: key.Slaves})
		default:
			http.Error(w, "unknown kind "+req.Kind, http.StatusBadRequest)
			return
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(data)
	}))
	t.Cleanup(ts.Close)
	return ts, &served
}

// sheddingWorker answers every job with 429 and the given Retry-After.
func sheddingWorker(t *testing.T, retryAfter string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var served atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		if retryAfter != "" {
			w.Header().Set("Retry-After", retryAfter)
		}
		http.Error(w, "worker saturated", http.StatusTooManyRequests)
	}))
	t.Cleanup(ts.Close)
	return ts, &served
}

func newTestBackend(t *testing.T, local *mapBackend, addrs ...string) *RemoteBackend {
	t.Helper()
	var memoLocal sweep.MemoBackend
	var statsLocal workloads.StatsBackend
	if local != nil {
		memoLocal, statsLocal = local, local
	}
	b, err := New(Options{Workers: addrs, Timeout: 5 * time.Second, Retries: 2}, 0, memoLocal, statsLocal, quietLog)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestLoadPrefersLocal: a warm local backend answers without any dispatch.
func TestLoadPrefersLocal(t *testing.T) {
	ts, served := fakeWorker(t, false)
	local := newMapBackend()
	k := testKey("w", 1)
	want := &uarch.Counters{Cycles: 77}
	local.Store(testCtx, k, want)

	b := newTestBackend(t, local, addrOf(ts))
	c, ok := b.Load(testCtx, k)
	if !ok || c != want {
		t.Fatalf("Load = %v, %v; want the local pointer", c, ok)
	}
	if served.Load() != 0 {
		t.Fatalf("local hit still dispatched %d requests", served.Load())
	}
	if d := b.BackendStats().Dispatch; d.Dispatched != 0 {
		t.Fatalf("Dispatched = %d, want 0", d.Dispatched)
	}
}

// TestRemoteHitWritesThrough: a remote answer lands in the local backend,
// so the next Load never leaves the process — the restart-warm property.
func TestRemoteHitWritesThrough(t *testing.T) {
	ts, served := fakeWorker(t, false)
	local := newMapBackend()
	b := newTestBackend(t, local, addrOf(ts))
	k := testKey("w", 9)

	c, ok := b.Load(testCtx, k)
	if !ok || c.Cycles != 9 {
		t.Fatalf("Load = %+v, %v", c, ok)
	}
	if got, ok := local.Load(testCtx, k); !ok || got.Cycles != 9 {
		t.Fatal("remote result was not written through to the local backend")
	}
	if _, ok := b.Load(testCtx, k); !ok {
		t.Fatal("second Load missed")
	}
	if served.Load() != 1 {
		t.Fatalf("worker served %d requests, want 1 (second Load must hit local)", served.Load())
	}
	d := b.BackendStats().Dispatch
	if d.Dispatched != 1 || d.RemoteHits != 1 || d.Fallbacks != 0 {
		t.Fatalf("stats = %+v, want 1 dispatched / 1 remote hit / 0 fallbacks", d)
	}
}

// TestClusterJobDispatch: the same backend dispatches cluster experiment
// keys through workloads.StatsBackend — remote hit, write-through, and a
// per-kind stats split that keeps the two kinds' ledgers apart.
func TestClusterJobDispatch(t *testing.T) {
	ts, served := fakeWorker(t, false)
	local := newMapBackend()
	b := newTestBackend(t, local, addrOf(ts))
	k := testStatsKey("Sort", 8)

	st, ok := b.LoadStats(testCtx, k)
	if !ok || st.Jobs != 8 {
		t.Fatalf("LoadStats = %+v, %v", st, ok)
	}
	if got, ok := local.LoadStats(testCtx, k); !ok || got.Jobs != 8 {
		t.Fatal("remote cluster result was not written through to the local stats backend")
	}
	if _, ok := b.LoadStats(testCtx, k); !ok {
		t.Fatal("second LoadStats missed")
	}
	if served.Load() != 1 {
		t.Fatalf("worker served %d requests, want 1 (second LoadStats must hit local)", served.Load())
	}
	// A warm local stats entry must not dispatch either.
	d := b.BackendStats().Dispatch
	if d.Dispatched != 1 || d.RemoteHits != 1 {
		t.Fatalf("aggregate stats = %+v, want 1 dispatched / 1 remote hit", d)
	}
	var cluster, counters sweep.DispatchKindStats
	for _, pk := range d.PerKind {
		switch pk.Kind {
		case store.KindCluster:
			cluster = pk
		case store.KindCounters:
			counters = pk
		}
	}
	if cluster.Dispatched != 1 || cluster.RemoteHits != 1 {
		t.Fatalf("cluster kind stats = %+v, want 1/1", cluster)
	}
	if counters.Dispatched != 0 {
		t.Fatalf("counters kind stats = %+v, want untouched", counters)
	}

	// StoreStats writes through like Store.
	k2 := testStatsKey("Grep", 2)
	sim := &workloads.Stats{Workload: "Grep", Jobs: 2}
	b.StoreStats(testCtx, k2, sim)
	if got, ok := local.LoadStats(testCtx, k2); !ok || got != sim {
		t.Fatal("StoreStats did not write through to the local stats backend")
	}
}

// legacyWorker is a PR 4-era worker: it mounts only POST /v1/sweep (the
// old request shape) and 404s everything else, like a real pre-jobs
// dcserved mux.
func legacyWorker(t *testing.T) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var served atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweep", func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		var req struct {
			Key    sweep.Key `json:"key"`
			Warmup int64     `json:"warmup"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		data, err := store.EncodeCounters(req.Key, &uarch.Counters{Cycles: int64(req.Key.Profile.Seed)})
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(data)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, &served
}

// TestLegacyWorkerDowngrade: a front-end built for /v1/jobs meeting a
// PR 4 worker (404 on /v1/jobs) downgrades that worker to the /v1/sweep
// alias and keeps dispatching counters jobs to it — the other half of the
// rollout story the alias exists for. Cluster jobs, which a legacy worker
// genuinely cannot run, degrade to counted local fallback without opening
// the worker's circuit wide enough to starve the counters path.
func TestLegacyWorkerDowngrade(t *testing.T) {
	ts, served := legacyWorker(t)
	local := newMapBackend()
	b := newTestBackend(t, local, addrOf(ts))

	for seed := uint64(0); seed < 4; seed++ {
		k := testKey("w", seed)
		c, ok := b.Load(testCtx, k)
		if !ok || c.Cycles != int64(seed) {
			t.Fatalf("seed %d: Load = %+v, %v; the legacy worker must answer via the alias", seed, c, ok)
		}
	}
	if served.Load() != 4 {
		t.Fatalf("legacy worker served %d sweep requests, want 4", served.Load())
	}
	d := b.BackendStats().Dispatch
	if d.RemoteHits != 4 || d.Fallbacks != 0 {
		t.Fatalf("stats = %+v, want 4 remote hits and no fallbacks", d)
	}
	// The downgrade is charged one 404 probe, not a circuit failure spiral:
	// after the first key the worker is known legacy and only one request
	// per key goes out.
	if d.PerWorker[0].Sent != 5 {
		t.Fatalf("sent = %d, want 5 (one /v1/jobs probe + 4 alias posts)", d.PerWorker[0].Sent)
	}

	// A cluster job is beyond a legacy worker: counted fallback, no
	// request sent (the known-legacy worker is skipped, not failed), no
	// circuit charge — and counters keep flowing afterwards.
	sentBefore := b.BackendStats().Dispatch.PerWorker[0].Sent
	if _, ok := b.LoadStats(testCtx, testStatsKey("Sort", 4)); ok {
		t.Fatal("legacy worker answered a cluster job")
	}
	d = b.BackendStats().Dispatch
	if d.PerWorker[0].Sent != sentBefore || d.PerWorker[0].Errors != 0 || d.PerWorker[0].CircuitOpen {
		t.Fatalf("cluster job against a known-legacy worker: per-worker = %+v, want untouched", d.PerWorker[0])
	}
	if _, ok := b.Load(testCtx, testKey("w", 9)); !ok {
		t.Fatal("counters dispatch broke after a cluster-job failure")
	}
}

// TestLegacyWorkerClusterFirst: the legacy discovery also works when the
// first job a worker sees is a cluster job — the mux route miss marks it
// legacy without opening its circuit, so the counters path stays healthy.
func TestLegacyWorkerClusterFirst(t *testing.T) {
	ts, served := legacyWorker(t)
	b := newTestBackend(t, nil, addrOf(ts))

	for slaves := 1; slaves <= 4; slaves++ {
		if _, ok := b.LoadStats(testCtx, testStatsKey("Sort", slaves)); ok {
			t.Fatal("legacy worker answered a cluster job")
		}
	}
	d := b.BackendStats().Dispatch
	if d.PerWorker[0].CircuitOpen || d.PerWorker[0].Errors != 0 {
		t.Fatalf("per-worker after cluster-first discovery = %+v, want a closed circuit and no errors", d.PerWorker[0])
	}
	if d.PerWorker[0].Sent != 1 {
		t.Fatalf("sent = %d, want exactly 1 discovery probe for 4 cluster keys", d.PerWorker[0].Sent)
	}
	c, ok := b.Load(testCtx, testKey("w", 7))
	if !ok || c.Cycles != 7 {
		t.Fatalf("counters Load after cluster-first discovery = %+v, %v", c, ok)
	}
	if served.Load() != 1 {
		t.Fatalf("legacy worker served %d sweep requests, want 1", served.Load())
	}
}

// TestLegacyWorkerRecheck: a worker correctly detected as pre-jobs is
// re-probed once legacyRecheck expires, so its cluster capacity returns
// after an in-place upgrade without restarting the front-end.
func TestLegacyWorkerRecheck(t *testing.T) {
	var upgraded atomic.Bool
	full, _ := fakeWorker(t, false) // the post-upgrade behaviour
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if upgraded.Load() {
			full.Config.Handler.ServeHTTP(w, r)
			return
		}
		if r.URL.Path != "/v1/sweep" {
			http.Error(w, "404 page not found", http.StatusNotFound) // the mux route-miss text
			return
		}
		http.Error(w, "pre-upgrade sweep not exercised here", http.StatusInternalServerError)
	}))
	t.Cleanup(ts.Close)
	b := newTestBackend(t, nil, addrOf(ts))
	clock := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	b.now = func() time.Time { return clock }

	k := testStatsKey("Sort", 4)
	if _, ok := b.LoadStats(testCtx, k); ok {
		t.Fatal("pre-upgrade worker answered a cluster job")
	}
	upgraded.Store(true)
	// Within the recheck window the worker is still taken as legacy.
	if _, ok := b.LoadStats(testCtx, testStatsKey("Sort", 8)); ok {
		t.Fatal("cluster job dispatched inside the legacy window")
	}
	clock = clock.Add(legacyRecheck + time.Second)
	st, ok := b.LoadStats(testCtx, testStatsKey("Sort", 16))
	if !ok || st.Jobs != 16 {
		t.Fatalf("post-recheck LoadStats = %+v, %v; the upgraded worker must answer", st, ok)
	}
}

// TestRetryOnFailingWorker: a 500ing worker is retried past onto the
// surviving one and every fetch still succeeds.
func TestRetryOnFailingWorker(t *testing.T) {
	bad, _ := fakeWorker(t, true)
	good, goodServed := fakeWorker(t, false)
	b := newTestBackend(t, nil, addrOf(bad), addrOf(good))

	// Whatever the rendezvous order, with retries both workers get a shot.
	for seed := uint64(0); seed < 4; seed++ {
		c, ok := b.Load(testCtx, testKey("w", seed))
		if !ok || c.Cycles != int64(seed) {
			t.Fatalf("seed %d: Load = %+v, %v; the surviving worker must answer", seed, c, ok)
		}
	}
	if goodServed.Load() < 4 {
		t.Fatalf("surviving worker served %d, want >= 4", goodServed.Load())
	}
	d := b.BackendStats().Dispatch
	if d.RemoteHits != 4 || d.Fallbacks != 0 {
		t.Fatalf("stats = %+v, want 4 remote hits and 0 fallbacks", d)
	}
}

// TestFallbackWhenAllWorkersDark: every worker unreachable → Load is a
// counted fallback miss, so the engine simulates locally; the local
// simulation's write-through still works.
func TestFallbackWhenAllWorkersDark(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // bound then closed: connection refused immediately
	local := newMapBackend()
	b := newTestBackend(t, local, addrOf(dead))
	k := testKey("w", 3)

	if _, ok := b.Load(testCtx, k); ok {
		t.Fatal("Load succeeded against a dead worker set")
	}
	d := b.BackendStats().Dispatch
	if d.Fallbacks != 1 || d.RemoteHits != 0 {
		t.Fatalf("stats = %+v, want exactly 1 fallback", d)
	}
	// The engine's write-through path after a local simulation.
	sim := &uarch.Counters{Cycles: 42}
	b.Store(testCtx, k, sim)
	if got, ok := local.Load(testCtx, k); !ok || got != sim {
		t.Fatal("Store did not write through to the local backend")
	}
}

// TestShedWorkerDemotedAndRecovers: a 429 demotes the worker in ranking
// for exactly its Retry-After window — without opening its circuit — and
// the fetch lands on the next-ranked worker.
func TestShedWorkerDemotedAndRecovers(t *testing.T) {
	shed, shedServed := sheddingWorker(t, "5")
	good, _ := fakeWorker(t, false)
	b := newTestBackend(t, nil, addrOf(shed), addrOf(good))
	clock := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	b.now = func() time.Time { return clock }

	// A key that ranks the shedding worker first: the 429 must move the
	// attempt to the good worker, not fail the fetch.
	var k sweep.Key
	for seed := uint64(0); ; seed++ {
		k = testKey("w", seed)
		if order, _ := b.rank(counterHash(k)); order[0].addr == addrOf(shed) {
			break
		}
	}
	c, ok := b.Load(testCtx, k)
	if !ok || c.Cycles != int64(k.Profile.Seed) {
		t.Fatalf("Load = %+v, %v; the un-saturated worker must answer", c, ok)
	}
	if shedServed.Load() != 1 {
		t.Fatalf("shedding worker saw %d requests, want 1", shedServed.Load())
	}

	d := b.BackendStats().Dispatch
	if d.Shed != 1 || d.Healthy != 2 {
		t.Fatalf("stats = %+v, want 1 shed and both workers healthy (429 is not a circuit failure)", d)
	}
	var shedStats sweep.WorkerStats
	for _, w := range d.PerWorker {
		if w.Addr == addrOf(shed) {
			shedStats = w
		}
	}
	if !shedStats.Shedding || shedStats.CircuitOpen || shedStats.Shed != 1 || shedStats.Errors != 0 {
		t.Fatalf("shedding worker stats = %+v, want shedding, circuit closed, 1 shed, 0 errors", shedStats)
	}

	// While the Retry-After window is open the shedding worker ranks last.
	if order, alive := b.rank(counterHash(k)); order[len(order)-1].addr != addrOf(shed) || alive != 2 {
		t.Fatalf("shedding worker not demoted (order[last] = %s, alive = %d)", order[len(order)-1].addr, alive)
	}
	// Past the window it is back in its rendezvous slot.
	clock = clock.Add(6 * time.Second)
	if order, _ := b.rank(counterHash(k)); order[0].addr != addrOf(shed) {
		t.Fatal("worker still demoted after its Retry-After window passed")
	}
	if b.BackendStats().Dispatch.PerWorker[0].Shedding {
		t.Fatal("worker still reported shedding after its Retry-After window passed")
	}
}

// TestFullySheddingClusterFallsBack: when every worker sheds, a fetch
// exhausts its attempts on 429s and degrades to a counted local fallback
// — circuits stay closed (the workers are saturated, not broken), so the
// next key probes them again instead of failing fast for a cooldown.
func TestFullySheddingClusterFallsBack(t *testing.T) {
	s1, served1 := sheddingWorker(t, "1")
	s2, served2 := sheddingWorker(t, "1")
	local := newMapBackend()
	b := newTestBackend(t, local, addrOf(s1), addrOf(s2))

	if _, ok := b.Load(testCtx, testKey("w", 3)); ok {
		t.Fatal("Load succeeded against a fully shedding worker set")
	}
	if _, ok := b.LoadStats(testCtx, testStatsKey("Sort", 4)); ok {
		t.Fatal("LoadStats succeeded against a fully shedding worker set")
	}
	if served1.Load()+served2.Load() == 0 {
		t.Fatal("no worker was ever attempted")
	}
	d := b.BackendStats().Dispatch
	if d.Fallbacks != 2 || d.Healthy != 2 || d.Shed == 0 {
		t.Fatalf("stats = %+v, want 2 fallbacks, 2 healthy workers, nonzero shed", d)
	}
	for _, pk := range d.PerKind {
		if pk.Fallbacks != 1 {
			t.Fatalf("kind %s fallbacks = %d, want 1 (one per kind)", pk.Kind, pk.Fallbacks)
		}
	}
	// Saturation is not failure: no circuit opened, no error charged.
	for _, w := range d.PerWorker {
		if w.CircuitOpen || w.Errors != 0 {
			t.Fatalf("worker %s: circuit_open=%v errors=%d after shedding only", w.Addr, w.CircuitOpen, w.Errors)
		}
	}
}

// TestHedgeRescuesSilentWorker: a worker that accepts the connection and
// then goes silent is hedged around — the next-ranked worker answers long
// before the silent one's timeout.
func TestHedgeRescuesSilentWorker(t *testing.T) {
	release := make(chan struct{})
	silent := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select { // hold the request until the client gives up or the test ends
		case <-r.Context().Done():
		case <-release:
		}
	}))
	t.Cleanup(silent.Close)
	t.Cleanup(func() { close(release) }) // LIFO: releases the handler before Close waits on it
	good, goodServed := fakeWorker(t, false)
	b, err := New(Options{
		Workers: []string{addrOf(silent), addrOf(good)},
		Timeout: 30 * time.Second, // far beyond the test: only the hedge can save us
		Retries: 1,
		Hedge:   30 * time.Millisecond,
	}, 0, nil, nil, quietLog)
	if err != nil {
		t.Fatal(err)
	}

	// Find a key whose rendezvous order puts the silent worker first, so
	// the hedge is what rescues the fetch.
	var k sweep.Key
	for seed := uint64(0); ; seed++ {
		k = testKey("w", seed)
		if order, _ := b.rank(counterHash(k)); order[0].addr == addrOf(silent) {
			break
		}
	}
	start := time.Now()
	c, ok := b.Load(testCtx, k)
	if !ok || c.Cycles != int64(k.Profile.Seed) {
		t.Fatalf("Load = %+v, %v", c, ok)
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("hedged fetch took %v; the hedge did not fire", d)
	}
	if goodServed.Load() != 1 {
		t.Fatalf("hedge target served %d requests, want 1", goodServed.Load())
	}
}

// TestCircuitOpensAndRecovers: failThreshold consecutive failures demote a
// worker behind healthy ones; after the cooldown it is probed again.
func TestCircuitOpensAndRecovers(t *testing.T) {
	bad, _ := fakeWorker(t, true)
	good, _ := fakeWorker(t, false)
	b := newTestBackend(t, nil, addrOf(bad), addrOf(good))
	clock := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	b.now = func() time.Time { return clock }

	// Drive keys that rank the bad worker first until its circuit opens.
	opened := false
	for seed := uint64(0); seed < 256 && !opened; seed++ {
		k := testKey("w", seed)
		if order, _ := b.rank(counterHash(k)); order[0].addr != addrOf(bad) {
			continue
		}
		if _, ok := b.Load(testCtx, k); !ok {
			t.Fatalf("seed %d: fetch failed with a healthy worker present", seed)
		}
		opened = b.BackendStats().Dispatch.Healthy == 1
	}
	if !opened {
		t.Fatal("bad worker's circuit never opened")
	}
	d := b.BackendStats().Dispatch
	var badStats sweep.WorkerStats
	for _, w := range d.PerWorker {
		if w.Addr == addrOf(bad) {
			badStats = w
		}
	}
	if !badStats.CircuitOpen || badStats.Errors < int64(failThreshold) {
		t.Fatalf("bad worker stats = %+v, want an open circuit after >= %d errors", badStats, failThreshold)
	}

	// With the circuit open, the good worker ranks first for every key:
	// fetches succeed first-try and the demoted worker sees no traffic.
	sentBefore := badStats.Sent
	for seed := uint64(300); seed < 308; seed++ {
		if _, ok := b.Load(testCtx, testKey("w", seed)); !ok {
			t.Fatalf("seed %d: fetch failed while circuit open", seed)
		}
	}
	for _, w := range b.BackendStats().Dispatch.PerWorker {
		if w.Addr == addrOf(bad) && w.Sent != sentBefore {
			t.Fatalf("circuit-open worker still saw %d new requests", w.Sent-sentBefore)
		}
	}

	// Past the cooldown the worker counts as healthy and is probed again.
	clock = clock.Add(DefaultCooldown + time.Second)
	if got := b.BackendStats().Dispatch.Healthy; got != 2 {
		t.Fatalf("healthy after cooldown = %d, want 2", got)
	}
}

// TestDarkClusterFailsFast: once every worker's circuit is open, a fetch
// returns a counted fallback without contacting anyone — no per-key
// timeout against workers already known dark — and the cooldown's expiry
// alone restores probing.
func TestDarkClusterFailsFast(t *testing.T) {
	bad, _ := fakeWorker(t, true)
	b := newTestBackend(t, nil, addrOf(bad))
	clock := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	b.now = func() time.Time { return clock }

	for seed := uint64(0); seed < uint64(failThreshold); seed++ {
		if _, ok := b.Load(testCtx, testKey("w", seed)); ok {
			t.Fatal("broken worker answered")
		}
	}
	sentBefore := b.BackendStats().Dispatch.PerWorker[0].Sent
	if _, ok := b.Load(testCtx, testKey("w", 99)); ok {
		t.Fatal("dark cluster answered")
	}
	d := b.BackendStats().Dispatch
	if d.PerWorker[0].Sent != sentBefore {
		t.Fatalf("circuit-open worker was contacted (%d new requests); want fail-fast", d.PerWorker[0].Sent-sentBefore)
	}
	if d.Fallbacks != int64(failThreshold)+1 {
		t.Fatalf("fallbacks = %d, want %d (every miss counted)", d.Fallbacks, failThreshold+1)
	}

	// The cooldown restores probing by itself.
	clock = clock.Add(DefaultCooldown + time.Second)
	if _, ok := b.Load(testCtx, testKey("w", 100)); ok {
		t.Fatal("broken worker answered after cooldown")
	}
	if got := b.BackendStats().Dispatch.PerWorker[0].Sent; got != sentBefore+1 {
		t.Fatalf("post-cooldown probe count = %d, want %d", got, sentBefore+1)
	}
}

// TestRendezvousStableAndSpread: one key always ranks the workers in the
// same order (so a shared worker set simulates each key once), and
// different keys spread across the set — for both job kinds.
func TestRendezvousStableAndSpread(t *testing.T) {
	b, err := New(Options{Workers: []string{"a:1", "b:1", "c:1"}}, 0, nil, nil, quietLog)
	if err != nil {
		t.Fatal(err)
	}
	first := map[string]int{}
	for seed := uint64(0); seed < 64; seed++ {
		k := testKey("w", seed)
		r1, _ := b.rank(counterHash(k))
		r2, _ := b.rank(counterHash(k))
		for i := range r1 {
			if r1[i] != r2[i] {
				t.Fatalf("seed %d: rank is not deterministic", seed)
			}
		}
		first[r1[0].addr]++
	}
	if len(first) != 3 {
		t.Fatalf("64 keys landed on %d workers, want all 3 (distribution %v)", len(first), first)
	}
	clusterFirst := map[string]int{}
	for slaves := 1; slaves <= 64; slaves++ {
		k := testStatsKey("Sort", slaves)
		r1, _ := b.rank(statsHash(k))
		r2, _ := b.rank(statsHash(k))
		if r1[0] != r2[0] {
			t.Fatalf("slaves %d: cluster rank is not deterministic", slaves)
		}
		clusterFirst[r1[0].addr]++
	}
	if len(clusterFirst) != 3 {
		t.Fatalf("64 cluster keys landed on %d workers, want all 3 (%v)", len(clusterFirst), clusterFirst)
	}
}

// TestRegisterFlagsParsesWorkerList pins the shared flag surface both
// binaries mount: the list flag splits and trims, unset flags keep their
// defaults, and an empty worker set refuses to build a backend.
func TestRegisterFlagsParsesWorkerList(t *testing.T) {
	var o Options
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	RegisterFlags(fs, &o)
	if err := fs.Parse([]string{
		"-workers", "n1:8337, n2:8337,,n3:8337",
		"-dispatch-retries", "5",
	}); err != nil {
		t.Fatal(err)
	}
	if strings.Join(o.Workers, "|") != "n1:8337|n2:8337|n3:8337" {
		t.Fatalf("Workers = %v", o.Workers)
	}
	if o.Retries != 5 || o.Timeout != DefaultTimeout || o.Hedge != 0 || o.Cooldown != DefaultCooldown {
		t.Fatalf("parsed options = %+v, want defaults where unset (hedging off)", o)
	}
	if _, err := New(Options{}, 0, nil, nil, nil); err == nil {
		t.Fatal("New accepted an empty worker set")
	}
}

// TestCancelAbortsWorkerRequest: when every caller of a dispatched fetch
// cancels, the in-flight HTTP request to the worker is aborted (the
// refcounted run context reaches the wire) and the cancellation is NOT
// counted as a cluster fallback — the engine aborts instead of simulating.
func TestCancelAbortsWorkerRequest(t *testing.T) {
	var started, aborted atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body first: the server only watches for a client
		// disconnect (and cancels r.Context) once the request is consumed.
		io.Copy(io.Discard, r.Body)
		started.Add(1)
		<-r.Context().Done() // park until the dispatcher hangs up
		aborted.Add(1)
	}))
	t.Cleanup(ts.Close)
	b := newTestBackend(t, nil, addrOf(ts))

	ctx, cancel := context.WithCancel(context.Background())
	loadDone := make(chan bool, 1)
	go func() {
		_, ok := b.Load(ctx, testKey("w", 3))
		loadDone <- ok
	}()
	deadline := time.Now().Add(10 * time.Second)
	for started.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never saw the dispatched request")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case ok := <-loadDone:
		if ok {
			t.Fatal("cancelled Load reported a hit")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Load did not return after cancellation")
	}
	// Every attempt the dispatcher had in flight (retries and hedges
	// included) must observe the abort.
	for aborted.Load() != started.Load() {
		if time.Now().After(deadline) {
			t.Fatalf("%d/%d worker requests aborted", aborted.Load(), started.Load())
		}
		time.Sleep(time.Millisecond)
	}
	d := b.BackendStats().Dispatch
	if d.Fallbacks != 0 {
		t.Fatalf("caller cancellation counted %d fallbacks, want 0", d.Fallbacks)
	}
	if d.InFlight != 0 {
		t.Fatalf("dispatch still reports %d in flight", d.InFlight)
	}
}

// TestReplicaRotationSpreadsReads: with -dispatch-replicas 3 over three
// healthy workers, repeated reads of the SAME key rotate across all three
// instead of pinning the owner, with zero fallbacks — the replicated
// store makes every copy answer identically, so the front-end is free to
// spread read load. With the default (owner-only) the same reads all land
// on one worker.
func TestReplicaRotationSpreadsReads(t *testing.T) {
	var counts []*atomic.Int64
	var addrs []string
	for i := 0; i < 3; i++ {
		ts, served := fakeWorker(t, false)
		counts = append(counts, served)
		addrs = append(addrs, addrOf(ts))
	}
	k := testKey("w", 7)

	// Owner-only first: all reads land on exactly one worker.
	solo, err := New(Options{Workers: addrs, Timeout: 5 * time.Second, Retries: 2}, 0, nil, nil, quietLog)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if c, ok := solo.Load(context.Background(), k); !ok || c.Cycles != int64(k.Profile.Seed) {
			t.Fatalf("load %d: got %+v ok=%v", i, c, ok)
		}
	}
	touched := 0
	for _, c := range counts {
		if c.Load() > 0 {
			touched++
		}
	}
	if touched != 1 {
		t.Fatalf("owner-only reads touched %d workers, want 1", touched)
	}
	for _, c := range counts {
		c.Store(0)
	}

	// Rotation: the same key's reads spread across all three replicas.
	rot, err := New(Options{Workers: addrs, Timeout: 5 * time.Second, Retries: 2, Replicas: 3}, 0, nil, nil, quietLog)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		if c, ok := rot.Load(context.Background(), k); !ok || c.Cycles != int64(k.Profile.Seed) {
			t.Fatalf("rotated load %d: got %+v ok=%v", i, c, ok)
		}
	}
	for i, c := range counts {
		if c.Load() == 0 {
			t.Fatalf("worker %d never served under rotation (counts %d %d %d)",
				i, counts[0].Load(), counts[1].Load(), counts[2].Load())
		}
	}
	d := rot.BackendStats().Dispatch
	if d.Fallbacks != 0 {
		t.Fatalf("rotation counted %d fallbacks, want 0", d.Fallbacks)
	}
	if d.RemoteHits != 9 {
		t.Fatalf("rotation remote hits = %d, want 9", d.RemoteHits)
	}
}

// TestWorkerDiagnosticsSurface pins the /healthz worker fields: a failing
// worker reports its consecutive-failure count and last error string, and
// one success clears both.
func TestWorkerDiagnosticsSurface(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	good, _ := fakeWorker(t, false)
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failing.Load() {
			http.Error(w, "synthetic failure", http.StatusInternalServerError)
			return
		}
		// Delegate to the well-formed worker once healthy.
		resp, err := http.Post(good.URL+r.URL.Path, "application/json", r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
	}))
	t.Cleanup(flaky.Close)

	b, err := New(Options{Workers: []string{addrOf(flaky)}, Timeout: 5 * time.Second, Retries: 0}, 0, nil, nil, quietLog)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("w", 3)
	if _, ok := b.Load(context.Background(), k); ok {
		t.Fatal("load against a failing worker reported a hit")
	}
	ws := b.BackendStats().Dispatch.PerWorker[0]
	if ws.ConsecutiveFails == 0 {
		t.Fatal("failing worker reports zero consecutive fails")
	}
	if ws.LastError == "" {
		t.Fatal("failing worker reports no last error")
	}

	failing.Store(false)
	if c, ok := b.Load(context.Background(), k); !ok || c.Cycles != int64(k.Profile.Seed) {
		t.Fatalf("recovered load: got %+v ok=%v", c, ok)
	}
	ws = b.BackendStats().Dispatch.PerWorker[0]
	if ws.ConsecutiveFails != 0 || ws.LastError != "" {
		t.Fatalf("success did not clear diagnostics: fails=%d lastErr=%q", ws.ConsecutiveFails, ws.LastError)
	}
}
