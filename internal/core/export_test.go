package core

import (
	"encoding/json"
	"testing"

	"dcbench/internal/memtrace"
	"dcbench/internal/uarch"
)

func TestExportJSONRoundTrip(t *testing.T) {
	w, err := ByName("Grep")
	if err != nil {
		t.Fatal(err)
	}
	res := Characterize(w, uarch.DefaultConfig(), 60_000)
	data, err := ExportJSON([]*Result{res})
	if err != nil {
		t.Fatal(err)
	}
	var records []Record
	if err := json.Unmarshal(data, &records); err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 {
		t.Fatalf("records = %d", len(records))
	}
	r := records[0]
	if r.Workload != "Grep" || r.Class != "data-analysis" || r.Suite != "DCBench" {
		t.Fatalf("identity fields wrong: %+v", r)
	}
	if r.IPC != res.Counters.IPC() {
		t.Fatalf("IPC mismatch: %v vs %v", r.IPC, res.Counters.IPC())
	}
	if r.Counters.Instructions != 60_000 {
		t.Fatalf("raw counters not carried: %+v", r.Counters)
	}
	sum := 0.0
	for _, v := range r.StallBreakdown {
		sum += v
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("stall breakdown sums to %v", sum)
	}
}

// TestRegistrySmoke runs every registry workload briefly and checks its
// counters are sane — the per-workload safety net under the shape tests.
func TestRegistrySmoke(t *testing.T) {
	cfg := uarch.DefaultConfig()
	for _, w := range Registry() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			res := Characterize(w, cfg, 50_000)
			c := res.Counters
			if c.Instructions != 50_000 {
				t.Fatalf("instructions = %d", c.Instructions)
			}
			if c.IPC() <= 0 || c.IPC() > 4 {
				t.Fatalf("IPC = %v", c.IPC())
			}
			if c.Cycles <= 0 {
				t.Fatal("no cycles")
			}
			if c.L1IAccesses == 0 || c.L1DAccesses == 0 {
				t.Fatal("no cache activity")
			}
			if w.Class != HPC && c.Branches == 0 {
				t.Fatal("no branches")
			}
		})
	}
}

// TestTraceProfilesIndependent: two workloads sharing the same generator
// seed space must still produce different traces (profiles differ).
func TestTraceProfilesIndependent(t *testing.T) {
	a, _ := ByName("K-means")
	b, _ := ByName("Fuzzy K-means")
	ra := memtrace.Collect(memtrace.NewReader(a.Profile, a.Gen), 5000)
	rb := memtrace.Collect(memtrace.NewReader(b.Profile, b.Gen), 5000)
	same := 0
	for i := range ra {
		if ra[i] == rb[i] {
			same++
		}
	}
	if same == len(ra) {
		t.Fatal("two different workloads produced identical traces")
	}
}
