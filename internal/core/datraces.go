package core

import (
	"dcbench/internal/memtrace"
)

// daProfile is the shared trace profile of the JVM/Hadoop data analysis
// stack: a megabyte-class code footprint (Hadoop + Mahout + JDK) of which
// the algorithm's own loop is a small hot subset, periodic framework
// excursions (record readers, serialisation, task bookkeeping) and GC
// sweeps over a large heap. These parameters give the class its signature
// front-end behaviour (L1I MPKI around 23, Figure 7) while the per-workload
// kernels below supply the algorithm-specific data locality and branch
// behaviour.
func daProfile(seed uint64) memtrace.Profile {
	return memtrace.Profile{
		Seed:            seed,
		CodeKB:          768,
		HotCodeKB:       32,
		ColdJumpP:       0.02,
		KernelKB:        256,
		FrameworkEvery:  500,
		FrameworkInstrs: 60,
		GCEvery:         800_000,
		GCInstrs:        2_000,
		HeapMB:          4,
		ALUPerMem:       2,
		ChainProb:       0.45,
		NSrc2P:          0.35,
		NSrc3P:          0.05,
	}
}

// daSpec parameterises one data analysis kernel's record loop. The
// magnitudes encode the paper's Table I economics: data analysis code
// spends hundreds to thousands of instructions per input byte (Naive Bayes
// 463 instr/B, WordCount 23 instr/B), so the input stream advances slowly
// while most memory traffic goes to working-state tiers sized against the
// cache hierarchy:
//
//   - hot: L1/L2-resident state (current record fields, small model rows);
//   - warm: an L3-resident megabyte-class table — the main source of the
//     class's L2 misses that mostly hit L3 (Figures 9 and 10);
//   - cold: a large region whose rare touches are the DRAM/DTLB tail.
type daSpec struct {
	hotKB    int
	warmKB   int
	coldMB   int
	streamMB int

	recordBytes  int // stream advance per record
	hotOps       int // hot loads per record
	warmOps      int // warm loads per burst (see warmEvery)
	warmEvery    int // records between warm bursts (default 1)
	coldOpsPer16 int // cold random touches per 16 records
	storeOps     int // hot stores per record
	alu, fpu     int // extra compute per record

	branchK     int     // patterned branch: not-taken every Kth
	branches    int     // patterned branches per record
	randBranchP float64 // chance of one 50/50 data branch per record

	syscallEvery int // records per syscall (0 = none)
	syscallInstr int
	syscallBytes int64
}

// runDA executes the record loop forever (the trace cap ends it).
func runDA(t *memtrace.Tracer, s daSpec) {
	rng := t.RNG()
	stream := t.Alloc(int64(s.streamMB) << 20)
	hot := t.Alloc(int64(s.hotKB) << 10)
	warm := t.Alloc(int64(s.warmKB) << 10)
	var cold uint64
	if s.coldMB > 0 {
		cold = t.Alloc(int64(s.coldMB) << 20)
	}
	streamBytes := uint64(s.streamMB) << 20
	hotBytes := uint64(s.hotKB) << 10
	warmBytes := uint64(s.warmKB) << 10
	coldBytes := uint64(s.coldMB) << 20

	// Prewarm the working-state tiers so the measured window reflects
	// steady state, matching the paper's ramp-up methodology. The stream
	// and cold tiers stay cold by design.
	for a := uint64(0); a < hotBytes; a += 64 {
		t.Load(hot + a)
	}
	for a := uint64(0); a < warmBytes; a += 64 {
		t.Load(warm + a)
	}

	pos := uint64(0)
	rec := 0
	bctr := 0
	for {
		rec++
		// Read the record from the input stream (sequential).
		t.Load(stream + pos%streamBytes)
		if s.recordBytes > 64 {
			t.Load(stream + (pos+64)%streamBytes)
		}
		pos += uint64(s.recordBytes)

		// Process: hot-state ops inside an inner loop whose branches are
		// site-stable and mostly fixed-outcome, like compiled loop code:
		// each iteration's loop branch is taken except the final exit,
		// and every Kth record takes a different data path.
		for i := 0; i < s.hotOps; i++ {
			t.Load(hot + rng.Uint64()%hotBytes&^7)
			t.BranchSite(16+i, i < s.hotOps-1) // loop continuation
			if s.branches > 0 && i < s.branches {
				bctr++
				t.BranchSite(128+i, bctr%s.branchK != 0)
			}
		}
		for i := 0; i < s.storeOps; i++ {
			t.Store(hot + rng.Uint64()%hotBytes&^7)
		}
		warmEvery := s.warmEvery
		if warmEvery < 1 {
			warmEvery = 1
		}
		if rec%warmEvery == 0 {
			for i := 0; i < s.warmOps; i++ {
				t.Load(warm + rng.Uint64()%warmBytes&^7)
			}
		}
		if s.coldOpsPer16 > 0 && rec%16 == 0 {
			for i := 0; i < s.coldOpsPer16; i++ {
				addr := cold + rng.Uint64()%coldBytes&^7
				t.Load(addr)
				t.Store(addr)
			}
		}
		if s.alu > 0 {
			t.ALU(s.alu)
		}
		if s.fpu > 0 {
			t.FPU(s.fpu)
		}
		if s.randBranchP > 0 && rng.Float64() < s.randBranchP {
			t.BranchSite(255, rng.Float64() < 0.5) // data-dependent compare
		}
		if s.syscallEvery > 0 && rec%s.syscallEvery == 0 {
			t.Syscall(s.syscallInstr, s.syscallBytes)
		}
	}
}

// The eleven kernels. Relative magnitudes follow Table I (instructions per
// byte) and the per-workload observations in Sections IV-A..IV-E.

// traceSort: trivial compare-and-copy per record, highest I/O share of the
// class (~24% kernel instructions, Figure 4), 50/50 merge comparisons.
func traceSort(t *memtrace.Tracer) {
	runDA(t, daSpec{
		hotKB: 64, warmKB: 768, coldMB: 48, streamMB: 48,
		recordBytes: 24, hotOps: 10, warmOps: 1, storeOps: 4, coldOpsPer16: 2,
		alu: 12, branchK: 8, branches: 3, randBranchP: 0.6,
		syscallEvery: 6, syscallInstr: 150, syscallBytes: 1024,
	})
}

// traceWordCount: tokenisation scan plus combiner hash updates.
func traceWordCount(t *memtrace.Tracer) {
	runDA(t, daSpec{
		hotKB: 64, warmKB: 768, streamMB: 48,
		recordBytes: 12, hotOps: 22, warmOps: 1, storeOps: 4,
		alu: 24, branchK: 7, branches: 6, randBranchP: 0.12,
		syscallEvery: 64, syscallInstr: 450, syscallBytes: 1024,
	})
}

// traceGrep: the leanest scan; fewer instructions per byte than any other
// workload (Table I), almost-never-taken match branches.
func traceGrep(t *memtrace.Tracer) {
	runDA(t, daSpec{
		hotKB: 64, warmKB: 640, streamMB: 96,
		recordBytes: 16, hotOps: 18, warmOps: 1, warmEvery: 2,
		alu: 20, branchK: 9, branches: 6, randBranchP: 0.12,
		syscallEvery: 80, syscallInstr: 450, syscallBytes: 2048,
	})
}

// traceNaiveBayes: dependent hash-probe chains into per-class count tables
// with a cold dictionary tail — the class outlier: lowest IPC (0.52),
// highest DTLB pressure, smallest instruction footprint.
func traceNaiveBayes(t *memtrace.Tracer) {
	runDA(t, daSpec{
		hotKB: 96, warmKB: 1024, coldMB: 64, streamMB: 32,
		recordBytes: 8, hotOps: 18, warmOps: 1, coldOpsPer16: 6, storeOps: 3,
		alu: 10, fpu: 4, branchK: 10, branches: 4, randBranchP: 0.1,
		syscallEvery: 256, syscallInstr: 500, syscallBytes: 1024,
	})
}

// traceSVM: dot-product streaming over feature vectors with an L1-resident
// weight vector.
func traceSVM(t *memtrace.Tracer) {
	runDA(t, daSpec{
		hotKB: 16, warmKB: 640, streamMB: 96,
		recordBytes: 16, hotOps: 20, warmOps: 1, warmEvery: 2,
		alu: 6, fpu: 14, branchK: 12, branches: 4, randBranchP: 0.12,
		syscallEvery: 96, syscallInstr: 450, syscallBytes: 1024,
	})
}

// traceKMeans: distance loops against cache-resident centroids; the most
// regular and predictable of the class.
func traceKMeans(t *memtrace.Tracer) {
	runDA(t, daSpec{
		hotKB: 8, warmKB: 512, streamMB: 96,
		recordBytes: 12, hotOps: 24, warmOps: 1, warmEvery: 2,
		alu: 4, fpu: 16, branchK: 16, branches: 4, randBranchP: 0.1,
		syscallEvery: 96, syscallInstr: 400, syscallBytes: 1024,
	})
}

// traceFuzzyKMeans: K-means plus pow()-heavy membership math (~5x the
// instructions per point, Table I).
func traceFuzzyKMeans(t *memtrace.Tracer) {
	runDA(t, daSpec{
		hotKB: 8, warmKB: 512, streamMB: 96,
		recordBytes: 12, hotOps: 20, warmOps: 1, warmEvery: 2, storeOps: 4,
		alu: 6, fpu: 40, branchK: 16, branches: 4, randBranchP: 0.1,
		syscallEvery: 128, syscallInstr: 400, syscallBytes: 1024,
	})
}

// tracePageRank: adjacency streaming with scattered rank accumulations —
// the weakest locality after IBCF/Bayes.
func tracePageRank(t *memtrace.Tracer) {
	runDA(t, daSpec{
		hotKB: 96, warmKB: 1024, coldMB: 48, streamMB: 96,
		recordBytes: 24, hotOps: 14, warmOps: 1, coldOpsPer16: 4, storeOps: 4,
		alu: 10, fpu: 4, branchK: 6, branches: 4, randBranchP: 0.12,
		syscallEvery: 64, syscallInstr: 450, syscallBytes: 2048,
	})
}

// traceIBCF: quadratic pair products accumulating into a very large
// co-occurrence map; the heaviest live data of the class.
func traceIBCF(t *memtrace.Tracer) {
	runDA(t, daSpec{
		hotKB: 96, warmKB: 1024, coldMB: 96, streamMB: 48,
		recordBytes: 8, hotOps: 16, warmOps: 1, coldOpsPer16: 5, storeOps: 4,
		alu: 12, fpu: 4, branchK: 8, branches: 4, randBranchP: 0.1,
		syscallEvery: 128, syscallInstr: 450, syscallBytes: 1024,
	})
}

// traceHMM: the states^2 Viterbi recurrence over small resident tables.
func traceHMM(t *memtrace.Tracer) {
	runDA(t, daSpec{
		hotKB: 64, warmKB: 512, streamMB: 64,
		recordBytes: 8, hotOps: 24, warmOps: 1, warmEvery: 2,
		alu: 6, fpu: 14, branchK: 5, branches: 6, randBranchP: 0.1,
		syscallEvery: 128, syscallInstr: 400, syscallBytes: 1024,
	})
}

// traceHiveBench: table scans with selective filters, hash-join probes and
// aggregation updates, plus shuffle I/O.
func traceHiveBench(t *memtrace.Tracer) {
	runDA(t, daSpec{
		hotKB: 96, warmKB: 1024, coldMB: 32, streamMB: 96,
		recordBytes: 32, hotOps: 16, warmOps: 1, coldOpsPer16: 3, storeOps: 3,
		alu: 14, branchK: 3, branches: 5, randBranchP: 0.12,
		syscallEvery: 32, syscallInstr: 300, syscallBytes: 2048,
	})
}
