// Package core is the paper's primary contribution rebuilt as a library:
// the characterization methodology of "Characterizing Data Analysis
// Workloads in Data Centers" (IISWC 2013) and the DCBench workload
// registry it produced.
//
// The registry holds all 26 workloads of the paper's evaluation: the eleven
// DCBench data analysis workloads (Table I), the five CloudSuite service
// workloads, SPECFP/SPECINT/SPECweb, and the seven HPCC benchmarks. Each
// entry couples a memtrace generator (the workload's genuine inner-loop
// behaviour plus its software-stack model) with the paper's approximate
// measured values, so every figure of Section IV can be regenerated and
// compared against the original.
package core

import (
	"context"
	"fmt"

	"dcbench/internal/memtrace"
	"dcbench/internal/sweep"
	"dcbench/internal/uarch"
)

// Class is a workload class in the paper's taxonomy.
type Class int

// Workload classes.
const (
	DataAnalysis Class = iota // DCBench data analysis workloads
	Service                   // scale-out and traditional services
	Desktop                   // SPEC CPU2006
	HPC                       // HPCC
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case DataAnalysis:
		return "data-analysis"
	case Service:
		return "service"
	case Desktop:
		return "desktop"
	case HPC:
		return "hpc"
	default:
		return "?"
	}
}

// PaperRef records the approximate values the paper reports for one
// workload, read from Figures 3-12 and the explicit numbers in the text.
// They calibrate expectations, not absolute targets: the reproduction aims
// at the same ordering and rough factors.
type PaperRef struct {
	IPC           float64
	KernelPct     float64
	L1IMPKI       float64
	ITLBWalksPKI  float64
	L2MPKI        float64
	L3HitPct      float64
	DTLBWalksPKI  float64
	BranchMispPct float64
}

// Workload is one registry entry.
type Workload struct {
	Name    string
	Suite   string
	Class   Class
	Profile memtrace.Profile
	Gen     func(t *memtrace.Tracer)
	Paper   PaperRef
}

// Result pairs a workload with its simulated counters.
type Result struct {
	Workload *Workload
	Counters *uarch.Counters
}

// Characterize runs the workload's trace through a fresh core model,
// capping the trace at maxInstrs (0 keeps the profile's own cap).
func Characterize(w *Workload, cfg uarch.Config, maxInstrs int64) *Result {
	p := w.Profile
	if maxInstrs > 0 {
		p.MaxInstrs = maxInstrs
	}
	c := uarch.NewCore(cfg)
	counters := c.Run(memtrace.NewReader(p, w.Gen))
	return &Result{Workload: w, Counters: counters}
}

// defaultEngine backs CharacterizeAll: one process-wide sweep engine, so
// every figure render, table render and benchmark in a process shares the
// same memoized sweeps and pooled cores.
var defaultEngine = sweep.NewEngine()

// DefaultEngine returns the process-wide sweep engine.
func DefaultEngine() *sweep.Engine { return defaultEngine }

// RegistryJobs maps the registry onto sweep jobs, in registry order.
func RegistryJobs() []sweep.Job {
	ws := Registry()
	jobs := make([]sweep.Job, len(ws))
	for i, w := range ws {
		jobs[i] = sweep.Job{Name: w.Name, Profile: w.Profile, Gen: w.Gen}
	}
	return jobs
}

// CharacterizeSweep runs the full registry through the process-wide sweep
// engine: fanned out over opt.Workers goroutines, memoized across calls
// (unless opt.NoMemo), results in registry order. At a fixed seed the
// counters are bit-identical to a serial CharacterizeAll.
func CharacterizeSweep(ctx context.Context, cfg uarch.Config, maxInstrs int64, opt sweep.RunOptions) ([]*Result, error) {
	return CharacterizeSweepOn(ctx, nil, cfg, maxInstrs, opt)
}

// CharacterizeSweepOn is CharacterizeSweep on a caller-owned engine (nil
// falls back to the process-wide one) — long-lived services run their own
// engine so a persistent memo backend and a private memo table can be
// attached without leaking into unrelated callers.
func CharacterizeSweepOn(ctx context.Context, e *sweep.Engine, cfg uarch.Config, maxInstrs int64, opt sweep.RunOptions) ([]*Result, error) {
	if e == nil {
		e = defaultEngine
	}
	ws := Registry()
	counters, err := e.Run(ctx, RegistryJobs(), cfg, maxInstrs, opt)
	if err != nil {
		return nil, err
	}
	out := make([]*Result, len(ws))
	for i, w := range ws {
		out[i] = &Result{Workload: w, Counters: counters[i]}
	}
	return out, nil
}

// CharacterizeAll runs the full registry, delegating to the sweep engine at
// full host parallelism. The counters are shared with the engine's memo
// table: treat them as read-only.
func CharacterizeAll(cfg uarch.Config, maxInstrs int64) []*Result {
	out, err := CharacterizeSweep(context.Background(), cfg, maxInstrs, sweep.RunOptions{})
	if err != nil {
		// Registry generators do not fail and the context cannot be
		// cancelled, so this mirrors the panic the serial path would have
		// propagated from a broken generator.
		panic(err)
	}
	return out
}

// ByName returns the registry entry with the given name.
func ByName(name string) (*Workload, error) {
	for _, w := range Registry() {
		if w.Name == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("core: unknown workload %q", name)
}

// DataAnalysisAverage averages a metric over the data analysis class, the
// "avg" bar the paper adds to every figure.
func DataAnalysisAverage(results []*Result, metric func(*uarch.Counters) float64) float64 {
	sum, n := 0.0, 0
	for _, r := range results {
		if r.Workload.Class == DataAnalysis {
			sum += metric(r.Counters)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// ClassAverage averages a metric over an arbitrary class.
func ClassAverage(results []*Result, class Class, metric func(*uarch.Counters) float64) float64 {
	sum, n := 0.0, 0
	for _, r := range results {
		if r.Workload.Class == class {
			sum += metric(r.Counters)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
