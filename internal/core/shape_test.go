package core

import (
	"sync"
	"testing"

	"dcbench/internal/uarch"
)

// sharedResults runs the full registry once per test binary — the shape
// tests all read from the same characterization sweep.
var (
	resultsOnce sync.Once
	results     []*Result
)

func characterized(t *testing.T) []*Result {
	t.Helper()
	resultsOnce.Do(func() {
		cfg := uarch.DefaultConfig()
		cfg.Warmup = 250_000
		results = CharacterizeAll(cfg, 650_000)
	})
	return results
}

func metric(t *testing.T, rs []*Result, name string, f func(*uarch.Counters) float64) float64 {
	t.Helper()
	for _, r := range rs {
		if r.Workload.Name == name {
			return f(r.Counters)
		}
	}
	t.Fatalf("workload %q not in registry", name)
	return 0
}

func classAvg(rs []*Result, class Class, f func(*uarch.Counters) float64) float64 {
	return ClassAverage(rs, class, f)
}

func TestRegistryComplete(t *testing.T) {
	rs := Registry()
	if len(rs) != 26 {
		// 11 data analysis + 5 CloudSuite + SPECFP/SPECINT/SPECweb +
		// 7 HPCC: the 26 workloads of Figures 3-12.
		t.Fatalf("registry = %d workloads, want 26", len(rs))
	}
	counts := map[Class]int{}
	seen := map[string]bool{}
	for _, w := range rs {
		if seen[w.Name] {
			t.Fatalf("duplicate %s", w.Name)
		}
		seen[w.Name] = true
		counts[w.Class]++
		if w.Gen == nil {
			t.Fatalf("%s has no generator", w.Name)
		}
	}
	if counts[DataAnalysis] != 11 {
		t.Fatalf("data analysis workloads = %d, want 11", counts[DataAnalysis])
	}
	if counts[Service] != 6 { // 5 CloudSuite + SPECweb
		t.Fatalf("service-class workloads = %d, want 6", counts[Service])
	}
	if counts[HPC] != 7 {
		t.Fatalf("HPCC workloads = %d, want 7", counts[HPC])
	}
	if counts[Desktop] != 2 {
		t.Fatalf("SPEC CPU workloads = %d, want 2", counts[Desktop])
	}
	if _, err := ByName("Sort"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName should fail for unknown workloads")
	}
}

// TestFigure3IPCShape asserts the paper's headline IPC ordering: services
// below the data analysis class, which sits below the compute-bound HPCC
// kernels; STREAM-like memory-bound kernels at the bottom of HPCC.
func TestFigure3IPCShape(t *testing.T) {
	rs := characterized(t)
	ipc := func(c *uarch.Counters) float64 { return c.IPC() }
	daAvg := classAvg(rs, DataAnalysis, ipc)
	svcAvg := classAvg(rs, Service, ipc)
	if svcAvg >= daAvg {
		t.Fatalf("service IPC %v >= data analysis IPC %v", svcAvg, daAvg)
	}
	hpl := metric(t, rs, "HPCC-HPL", ipc)
	dgemm := metric(t, rs, "HPCC-DGEMM", ipc)
	if hpl <= daAvg || dgemm <= daAvg {
		t.Fatalf("compute-bound HPCC (%v, %v) should beat data analysis (%v)", hpl, dgemm, daAvg)
	}
	if stream := metric(t, rs, "HPCC-STREAM", ipc); stream >= daAvg {
		t.Fatalf("STREAM IPC %v should be below data analysis %v", stream, daAvg)
	}
	if ra := metric(t, rs, "HPCC-RandomAccess", ipc); ra >= 0.5 {
		t.Fatalf("RandomAccess IPC %v should be very low", ra)
	}
}

// TestFigure4KernelShape asserts Figure 4: services run >30% kernel
// instructions, data analysis ~4% with Sort the outlier near 24%, and
// RandomAccess the HPCC outlier.
func TestFigure4KernelShape(t *testing.T) {
	rs := characterized(t)
	ks := func(c *uarch.Counters) float64 { return c.KernelShare() }
	for _, name := range []string{"Media Streaming", "Data Serving", "Web Serving", "SPECWeb"} {
		if v := metric(t, rs, name, ks); v < 0.30 {
			t.Fatalf("%s kernel share %v, want >= 0.30", name, v)
		}
	}
	sort := metric(t, rs, "Sort", ks)
	if sort < 0.15 || sort > 0.35 {
		t.Fatalf("Sort kernel share %v, want ~0.24", sort)
	}
	for _, name := range []string{"K-means", "Naive Bayes", "IBCF", "HMM"} {
		if v := metric(t, rs, name, ks); v > 0.10 {
			t.Fatalf("%s kernel share %v, want <= 0.10", name, v)
		}
	}
	if ra := metric(t, rs, "HPCC-RandomAccess", ks); ra < 0.2 {
		t.Fatalf("RandomAccess kernel share %v, want ~0.31", ra)
	}
	if d := metric(t, rs, "HPCC-DGEMM", ks); d > 0.02 {
		t.Fatalf("DGEMM kernel share %v, want ~0", d)
	}
}

// TestFigure6StallShape asserts the paper's key pipeline finding: data
// analysis workloads stall mostly in the out-of-order part (RS+ROB), while
// service workloads stall mostly before it (fetch+RAT).
func TestFigure6StallShape(t *testing.T) {
	rs := characterized(t)
	frontEnd := func(c *uarch.Counters) float64 {
		b := c.StallBreakdown()
		return b[0] + b[1] // fetch + RAT
	}
	backEnd := func(c *uarch.Counters) float64 {
		b := c.StallBreakdown()
		return b[2] + b[3] + b[4] + b[5] // LB + RS + SB + ROB
	}
	daBack := classAvg(rs, DataAnalysis, backEnd)
	svcFront := classAvg(rs, Service, frontEnd)
	svcBack := classAvg(rs, Service, backEnd)
	if svcFront <= svcBack {
		t.Fatalf("services should be front-end bound: front %v vs back %v", svcFront, svcBack)
	}
	if daBack < 0.35 {
		t.Fatalf("data analysis back-end stall share %v, want >= 0.35", daBack)
	}
	// RAT pressure must be clearly higher for services than data analysis.
	rat := func(c *uarch.Counters) float64 { return c.StallBreakdown()[1] }
	if svcRAT, daRAT := classAvg(rs, Service, rat), classAvg(rs, DataAnalysis, rat); svcRAT <= daRAT {
		t.Fatalf("service RAT share %v <= data analysis %v", svcRAT, daRAT)
	}
}

// TestFigure7L1IShape asserts Figure 7: data analysis instruction-miss
// rates far above SPEC/HPCC, below the worst services; Media Streaming the
// maximum; Naive Bayes the data analysis minimum.
func TestFigure7L1IShape(t *testing.T) {
	rs := characterized(t)
	mpki := func(c *uarch.Counters) float64 { return c.L1IMPKI() }
	daAvg := classAvg(rs, DataAnalysis, mpki)
	if daAvg < 8 || daAvg > 40 {
		t.Fatalf("data analysis L1I MPKI %v, want ~23", daAvg)
	}
	for _, name := range []string{"SPECFP", "SPECINT", "HPCC-DGEMM", "HPCC-HPL", "HPCC-STREAM"} {
		if v := metric(t, rs, name, mpki); v > 3 {
			t.Fatalf("%s L1I MPKI %v, want ~0", name, v)
		}
	}
	ms := metric(t, rs, "Media Streaming", mpki)
	if ms < 1.3*daAvg {
		t.Fatalf("Media Streaming L1I MPKI %v should far exceed DA average %v", ms, daAvg)
	}
	// Naive Bayes is the paper's noted outlier... its footprint is the
	// largest hot share of the class, so it must not be the class maximum.
	nb := metric(t, rs, "Naive Bayes", mpki)
	max := 0.0
	for _, r := range rs {
		if r.Workload.Class == DataAnalysis {
			if v := mpki(r.Counters); v > max {
				max = v
			}
		}
	}
	if nb >= max {
		t.Fatalf("Naive Bayes L1I MPKI %v should not be the class maximum %v", nb, max)
	}
}

// TestFigure9L2Shape asserts Figure 9: services miss L2 far more than data
// analysis, which misses more than the dense HPCC kernels.
func TestFigure9L2Shape(t *testing.T) {
	rs := characterized(t)
	mpki := func(c *uarch.Counters) float64 { return c.L2MPKI() }
	daAvg := classAvg(rs, DataAnalysis, mpki)
	svcAvg := classAvg(rs, Service, mpki)
	if svcAvg <= 1.5*daAvg {
		t.Fatalf("service L2 MPKI %v should far exceed data analysis %v", svcAvg, daAvg)
	}
	for _, name := range []string{"HPCC-DGEMM", "HPCC-HPL"} {
		if v := metric(t, rs, name, mpki); v >= daAvg {
			t.Fatalf("%s L2 MPKI %v should be below data analysis %v", name, v, daAvg)
		}
	}
	// The memory-stressing HPCC kernels are the suite's exceptions.
	if v := metric(t, rs, "HPCC-STREAM", mpki); v < daAvg {
		t.Fatalf("STREAM L2 MPKI %v should exceed data analysis %v", v, daAvg)
	}
}

// TestFigure10L3Shape asserts Figure 10's contrast: for the cache-friendly
// classes most L2 misses are served by L3, while the bandwidth kernels
// (STREAM, RandomAccess, PTRANS) mostly miss it.
func TestFigure10L3Shape(t *testing.T) {
	rs := characterized(t)
	hit := func(c *uarch.Counters) float64 { return c.L3HitRatio() }
	daAvg := classAvg(rs, DataAnalysis, hit)
	if daAvg < 0.5 {
		t.Fatalf("data analysis L3 hit ratio %v, want majority", daAvg)
	}
	for _, name := range []string{"HPCC-STREAM", "HPCC-RandomAccess", "HPCC-PTRANS"} {
		if v := metric(t, rs, name, hit); v >= daAvg {
			t.Fatalf("%s L3 hit %v should be below data analysis %v", name, v, daAvg)
		}
	}
}

// TestFigure8And11TLBShape asserts the TLB claims: near-zero walks for
// SPEC/HPCC code (Fig. 8), data analysis below services, RandomAccess the
// HPCC data-walk outlier (Fig. 11), Naive Bayes the data analysis outlier.
func TestFigure8And11TLBShape(t *testing.T) {
	rs := characterized(t)
	iw := func(c *uarch.Counters) float64 { return c.ITLBWalksPKI() }
	dw := func(c *uarch.Counters) float64 { return c.DTLBWalksPKI() }
	if daI, svcI := classAvg(rs, DataAnalysis, iw), classAvg(rs, Service, iw); daI >= svcI {
		t.Fatalf("DA ITLB walks %v >= services %v", daI, svcI)
	}
	for _, name := range []string{"HPCC-DGEMM", "HPCC-HPL", "HPCC-STREAM", "SPECFP", "SPECINT"} {
		if v := metric(t, rs, name, iw); v > 0.05 {
			t.Fatalf("%s ITLB walks %v, want ~0", name, v)
		}
	}
	ra := metric(t, rs, "HPCC-RandomAccess", dw)
	for _, name := range []string{"HPCC-DGEMM", "HPCC-HPL", "HPCC-STREAM", "HPCC-FFT", "HPCC-COMM"} {
		if v := metric(t, rs, name, dw); v >= ra {
			t.Fatalf("%s DTLB walks %v >= RandomAccess %v", name, v, ra)
		}
	}
	// Naive Bayes leads the data analysis class in data page walks.
	nb := metric(t, rs, "Naive Bayes", dw)
	for _, name := range []string{"K-means", "Fuzzy K-means", "HMM", "SVM", "Grep", "WordCount"} {
		if v := metric(t, rs, name, dw); v >= nb {
			t.Fatalf("%s DTLB walks %v >= Naive Bayes %v", name, v, nb)
		}
	}
}

// TestFigure12BranchShape asserts Figure 12: data analysis mispredicts
// below the services, HPCC essentially perfectly predicted, SPECINT the
// worst of the native suites.
func TestFigure12BranchShape(t *testing.T) {
	rs := characterized(t)
	br := func(c *uarch.Counters) float64 { return c.BranchMispredictRatio() }
	daAvg := classAvg(rs, DataAnalysis, br)
	svcAvg := classAvg(rs, Service, br)
	if daAvg >= svcAvg {
		t.Fatalf("DA mispredicts %v >= services %v", daAvg, svcAvg)
	}
	if daAvg > 0.10 {
		t.Fatalf("DA mispredict ratio %v, want low (paper: 1-3%%)", daAvg)
	}
	for _, name := range []string{"HPCC-DGEMM", "HPCC-HPL", "HPCC-STREAM", "HPCC-PTRANS"} {
		if v := metric(t, rs, name, br); v > 0.02 {
			t.Fatalf("%s mispredicts %v, want ~0", name, v)
		}
	}
	if si, sf := metric(t, rs, "SPECINT", br), metric(t, rs, "SPECFP", br); si <= sf {
		t.Fatalf("SPECINT mispredicts %v <= SPECFP %v", si, sf)
	}
}

// TestCharacterizeDeterministic: identical configs give identical counters.
func TestCharacterizeDeterministic(t *testing.T) {
	w, err := ByName("Grep")
	if err != nil {
		t.Fatal(err)
	}
	cfg := uarch.DefaultConfig()
	a := Characterize(w, cfg, 100_000)
	b := Characterize(w, cfg, 100_000)
	if *a.Counters != *b.Counters {
		t.Fatal("characterization not deterministic")
	}
}

// TestClassAverages sanity-checks the helper used by the figure harness.
func TestClassAverages(t *testing.T) {
	rs := characterized(t)
	if v := DataAnalysisAverage(rs, func(c *uarch.Counters) float64 { return c.IPC() }); v <= 0 {
		t.Fatalf("DA average IPC %v", v)
	}
	if v := ClassAverage(rs, HPC, func(c *uarch.Counters) float64 { return c.IPC() }); v <= 0 {
		t.Fatalf("HPC average IPC %v", v)
	}
	if v := ClassAverage(nil, HPC, func(c *uarch.Counters) float64 { return c.IPC() }); v != 0 {
		t.Fatalf("empty average = %v, want 0", v)
	}
}
