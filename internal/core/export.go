package core

import (
	"encoding/json"

	"dcbench/internal/uarch"
)

// Record is the flat, serialisable form of one characterization result —
// the derived metrics of Figures 3-12 plus the raw counter file — for
// downstream analysis outside this repository.
type Record struct {
	Workload string `json:"workload"`
	Suite    string `json:"suite"`
	Class    string `json:"class"`

	IPC             float64 `json:"ipc"`
	KernelShare     float64 `json:"kernel_share"`
	L1IMPKI         float64 `json:"l1i_mpki"`
	ITLBWalksPKI    float64 `json:"itlb_walks_pki"`
	L2MPKI          float64 `json:"l2_mpki"`
	L3HitRatio      float64 `json:"l3_hit_ratio"`
	DTLBWalksPKI    float64 `json:"dtlb_walks_pki"`
	BranchMispRatio float64 `json:"branch_mispredict_ratio"`
	// StallBreakdown is fetch, RAT, load buffer, RS, store buffer, ROB,
	// normalised to 1.
	StallBreakdown [6]float64 `json:"stall_breakdown"`

	Counters uarch.Counters `json:"counters"`
	Paper    PaperRef       `json:"paper_approx"`
}

// ToRecord flattens a result.
func (r *Result) ToRecord() Record {
	c := r.Counters
	return Record{
		Workload:        r.Workload.Name,
		Suite:           r.Workload.Suite,
		Class:           r.Workload.Class.String(),
		IPC:             c.IPC(),
		KernelShare:     c.KernelShare(),
		L1IMPKI:         c.L1IMPKI(),
		ITLBWalksPKI:    c.ITLBWalksPKI(),
		L2MPKI:          c.L2MPKI(),
		L3HitRatio:      c.L3HitRatio(),
		DTLBWalksPKI:    c.DTLBWalksPKI(),
		BranchMispRatio: c.BranchMispredictRatio(),
		StallBreakdown:  c.StallBreakdown(),
		Counters:        *c,
		Paper:           r.Workload.Paper,
	}
}

// ExportJSON serialises a sweep as indented JSON.
func ExportJSON(results []*Result) ([]byte, error) {
	records := make([]Record, len(results))
	for i, r := range results {
		records[i] = r.ToRecord()
	}
	return json.MarshalIndent(records, "", "  ")
}
