package core

import (
	"dcbench/internal/memtrace"
	"dcbench/internal/suites/hpcc"
	"dcbench/internal/suites/service"
	"dcbench/internal/suites/speccpu"
)

// serviceProfile is the shared stack model of the service workloads:
// an even larger code footprint than the analysis stacks (full server
// stacks: JVM/C++ server + TLS + kernel paths), busier cold-code
// excursions per request, and the operand/register pressure that shows up
// as RAT-dominated stalls in the paper's Figure 6.
func serviceProfile(seed uint64, codeKB int) memtrace.Profile {
	return memtrace.Profile{
		Seed:            seed,
		CodeKB:          codeKB,
		HotCodeKB:       24,
		ColdJumpP:       0.10,
		KernelKB:        512,
		BlockLen:        5,
		FrameworkEvery:  250,
		FrameworkInstrs: 160,
		GCEvery:         300_000,
		GCInstrs:        5_000,
		HeapMB:          4,
		ALUPerMem:       3,
		ChainProb:       0.35,
		NSrc2P:          0.35,
		NSrc3P:          0.50,
	}
}

// nativeProfile is the statically compiled, small-binary model shared by
// SPEC CPU and HPCC: hot loops that fit in the L1I, no framework, no GC.
func nativeProfile(seed uint64, codeKB int, fpu float64) memtrace.Profile {
	return memtrace.Profile{
		Seed:      seed,
		CodeKB:    codeKB,
		HotCodeKB: codeKB,
		KernelKB:  192,
		FPUShare:  fpu,
		ALUPerMem: 2,
		ChainProb: 0.30,
		NSrc2P:    0.30,
	}
}

// Registry returns the paper's 27 evaluation workloads in Figure 3's
// order: the eleven data analysis workloads, the five CloudSuite
// workloads, the SPEC suites, and the seven HPCC benchmarks.
func Registry() []*Workload {
	return []*Workload{
		// --- DCBench data analysis (Table I) ---
		{
			Name: "Naive Bayes", Suite: "DCBench", Class: DataAnalysis,
			Profile: func() memtrace.Profile {
				p := daProfile(101)
				// The paper notes Bayes is the outlier: the smallest
				// instruction footprint and I-side pressure of the class.
				p.CodeKB = 128
				p.HotCodeKB = 20
				p.FrameworkEvery = 1500
				p.ChainProb = 0.75 // dependent probe chains
				return p
			}(),
			Gen:   traceNaiveBayes,
			Paper: PaperRef{IPC: 0.52, KernelPct: 3, L1IMPKI: 6, ITLBWalksPKI: 0.02, L2MPKI: 18, L3HitPct: 80, DTLBWalksPKI: 2.0, BranchMispPct: 2.0},
		},
		{
			Name: "SVM", Suite: "DCBench", Class: DataAnalysis,
			Profile: func() memtrace.Profile {
				p := daProfile(102)
				p.FPUShare = 0.2
				return p
			}(),
			Gen:   traceSVM,
			Paper: PaperRef{IPC: 0.85, KernelPct: 3, L1IMPKI: 20, ITLBWalksPKI: 0.12, L2MPKI: 8, L3HitPct: 88, DTLBWalksPKI: 0.4, BranchMispPct: 1.5},
		},
		{
			Name: "Grep", Suite: "DCBench", Class: DataAnalysis,
			Profile: daProfile(103),
			Gen:     traceGrep,
			Paper:   PaperRef{IPC: 0.90, KernelPct: 5, L1IMPKI: 22, ITLBWalksPKI: 0.15, L2MPKI: 8, L3HitPct: 88, DTLBWalksPKI: 0.3, BranchMispPct: 1.5},
		},
		{
			Name: "WordCount", Suite: "DCBench", Class: DataAnalysis,
			Profile: daProfile(104),
			Gen:     traceWordCount,
			Paper:   PaperRef{IPC: 0.85, KernelPct: 3, L1IMPKI: 25, ITLBWalksPKI: 0.15, L2MPKI: 10, L3HitPct: 85, DTLBWalksPKI: 0.4, BranchMispPct: 2.0},
		},
		{
			Name: "K-means", Suite: "DCBench", Class: DataAnalysis,
			Profile: func() memtrace.Profile {
				p := daProfile(105)
				p.FPUShare = 0.25
				return p
			}(),
			Gen:   traceKMeans,
			Paper: PaperRef{IPC: 0.95, KernelPct: 2, L1IMPKI: 18, ITLBWalksPKI: 0.10, L2MPKI: 6, L3HitPct: 88, DTLBWalksPKI: 0.3, BranchMispPct: 1.0},
		},
		{
			Name: "Fuzzy K-means", Suite: "DCBench", Class: DataAnalysis,
			Profile: func() memtrace.Profile {
				p := daProfile(106)
				p.FPUShare = 0.35
				return p
			}(),
			Gen:   traceFuzzyKMeans,
			Paper: PaperRef{IPC: 0.90, KernelPct: 2, L1IMPKI: 20, ITLBWalksPKI: 0.10, L2MPKI: 8, L3HitPct: 88, DTLBWalksPKI: 0.3, BranchMispPct: 1.0},
		},
		{
			Name: "PageRank", Suite: "DCBench", Class: DataAnalysis,
			Profile: daProfile(107),
			Gen:     tracePageRank,
			Paper:   PaperRef{IPC: 0.70, KernelPct: 4, L1IMPKI: 28, ITLBWalksPKI: 0.20, L2MPKI: 15, L3HitPct: 85, DTLBWalksPKI: 0.6, BranchMispPct: 2.5},
		},
		{
			Name: "Sort", Suite: "DCBench", Class: DataAnalysis,
			Profile: daProfile(108),
			Gen:     traceSort,
			Paper:   PaperRef{IPC: 0.65, KernelPct: 24, L1IMPKI: 30, ITLBWalksPKI: 0.20, L2MPKI: 12, L3HitPct: 85, DTLBWalksPKI: 0.5, BranchMispPct: 3.0},
		},
		{
			Name: "Hive-bench", Suite: "DCBench", Class: DataAnalysis,
			Profile: daProfile(109),
			Gen:     traceHiveBench,
			Paper:   PaperRef{IPC: 0.80, KernelPct: 6, L1IMPKI: 30, ITLBWalksPKI: 0.20, L2MPKI: 14, L3HitPct: 85, DTLBWalksPKI: 0.5, BranchMispPct: 2.5},
		},
		{
			Name: "IBCF", Suite: "DCBench", Class: DataAnalysis,
			Profile: daProfile(110),
			Gen:     traceIBCF,
			Paper:   PaperRef{IPC: 0.75, KernelPct: 3, L1IMPKI: 25, ITLBWalksPKI: 0.15, L2MPKI: 16, L3HitPct: 83, DTLBWalksPKI: 0.8, BranchMispPct: 2.0},
		},
		{
			Name: "HMM", Suite: "DCBench", Class: DataAnalysis,
			Profile: func() memtrace.Profile {
				p := daProfile(111)
				p.FPUShare = 0.2
				return p
			}(),
			Gen:   traceHMM,
			Paper: PaperRef{IPC: 0.90, KernelPct: 3, L1IMPKI: 22, ITLBWalksPKI: 0.12, L2MPKI: 6, L3HitPct: 88, DTLBWalksPKI: 0.3, BranchMispPct: 1.5},
		},

		// --- CloudSuite (Section III-C.2) ---
		{
			Name: "Software Testing", Suite: "CloudSuite", Class: Service,
			Profile: func() memtrace.Profile {
				p := serviceProfile(201, 384)
				// Cloud9 is compute-bound user code, not a request server.
				p.NSrc3P = 0.15
				p.FrameworkEvery = 600
				return p
			}(),
			Gen:   service.TraceSoftwareTesting,
			Paper: PaperRef{IPC: 0.55, KernelPct: 5, L1IMPKI: 15, ITLBWalksPKI: 0.10, L2MPKI: 20, L3HitPct: 92, DTLBWalksPKI: 0.8, BranchMispPct: 4.0},
		},
		{
			Name: "Media Streaming", Suite: "CloudSuite", Class: Service,
			Profile: func() memtrace.Profile {
				p := serviceProfile(202, 4096)
				// The deepest stack of the suite: ~3x the analysis-class
				// instruction footprint pressure (Figure 7).
				p.FrameworkEvery = 120
				p.FrameworkInstrs = 220
				p.ColdJumpP = 0.30
				return p
			}(),
			Gen:   service.TraceMediaStreaming,
			Paper: PaperRef{IPC: 0.50, KernelPct: 45, L1IMPKI: 70, ITLBWalksPKI: 0.30, L2MPKI: 60, L3HitPct: 95, DTLBWalksPKI: 1.0, BranchMispPct: 4.0},
		},
		{
			Name: "Data Serving", Suite: "CloudSuite", Class: Service,
			Profile: serviceProfile(203, 1536),
			Gen:     service.TraceDataServing,
			Paper:   PaperRef{IPC: 0.45, KernelPct: 50, L1IMPKI: 40, ITLBWalksPKI: 0.30, L2MPKI: 90, L3HitPct: 95, DTLBWalksPKI: 1.5, BranchMispPct: 5.0},
		},
		{
			Name: "Web Search", Suite: "CloudSuite", Class: Service,
			Profile: serviceProfile(204, 768),
			Gen:     service.TraceWebSearch,
			Paper:   PaperRef{IPC: 0.55, KernelPct: 40, L1IMPKI: 25, ITLBWalksPKI: 0.15, L2MPKI: 30, L3HitPct: 94, DTLBWalksPKI: 0.8, BranchMispPct: 4.5},
		},
		{
			Name: "Web Serving", Suite: "CloudSuite", Class: Service,
			Profile: serviceProfile(205, 1792),
			Gen:     service.TraceWebServing,
			Paper:   PaperRef{IPC: 0.40, KernelPct: 55, L1IMPKI: 45, ITLBWalksPKI: 0.25, L2MPKI: 80, L3HitPct: 96, DTLBWalksPKI: 1.2, BranchMispPct: 6.0},
		},

		// --- SPEC (Section III-C.1) ---
		{
			Name: "SPECFP", Suite: "SPEC CPU2006", Class: Desktop,
			Profile: func() memtrace.Profile {
				p := nativeProfile(301, 24, 0.5)
				p.ChainProb = 0.25
				return p
			}(),
			Gen:   func(t *memtrace.Tracer) { speccpu.TraceSPECFP(t, 128) },
			Paper: PaperRef{IPC: 1.10, KernelPct: 1, L1IMPKI: 0.5, ITLBWalksPKI: 0.01, L2MPKI: 12, L3HitPct: 60, DTLBWalksPKI: 1.8, BranchMispPct: 2.0},
		},
		{
			Name: "SPECINT", Suite: "SPEC CPU2006", Class: Desktop,
			Profile: nativeProfile(302, 32, 0),
			Gen:     speccpu.TraceSPECINT,
			Paper:   PaperRef{IPC: 1.00, KernelPct: 1, L1IMPKI: 2, ITLBWalksPKI: 0.02, L2MPKI: 10, L3HitPct: 70, DTLBWalksPKI: 1.5, BranchMispPct: 5.5},
		},
		{
			Name: "SPECWeb", Suite: "SPECweb2005", Class: Service,
			Profile: serviceProfile(303, 1536),
			Gen:     service.TraceSPECWeb,
			Paper:   PaperRef{IPC: 0.45, KernelPct: 50, L1IMPKI: 40, ITLBWalksPKI: 0.25, L2MPKI: 70, L3HitPct: 95, DTLBWalksPKI: 1.2, BranchMispPct: 5.5},
		},

		// --- HPCC (Section III-C.1) ---
		{
			Name: "HPCC-COMM", Suite: "HPCC", Class: HPC,
			Profile: func() memtrace.Profile {
				p := nativeProfile(401, 16, 0.2)
				p.ChainProb = 0.65 // serialised message packing
				return p
			}(),
			Gen:   hpcc.TraceCOMM,
			Paper: PaperRef{IPC: 0.80, KernelPct: 25, L1IMPKI: 1, ITLBWalksPKI: 0.01, L2MPKI: 5, L3HitPct: 60, DTLBWalksPKI: 0.3, BranchMispPct: 1.0},
		},
		{
			Name: "HPCC-DGEMM", Suite: "HPCC", Class: HPC,
			Profile: nativeProfile(402, 8, 0.7),
			Gen:     func(t *memtrace.Tracer) { hpcc.TraceDGEMM(t, 96) },
			Paper:   PaperRef{IPC: 1.20, KernelPct: 1, L1IMPKI: 0.1, ITLBWalksPKI: 0.005, L2MPKI: 2, L3HitPct: 85, DTLBWalksPKI: 0.1, BranchMispPct: 0.5},
		},
		{
			Name: "HPCC-FFT", Suite: "HPCC", Class: HPC,
			Profile: nativeProfile(403, 12, 0.6),
			Gen:     func(t *memtrace.Tracer) { hpcc.TraceFFT(t, 1<<16) },
			Paper:   PaperRef{IPC: 0.90, KernelPct: 1, L1IMPKI: 0.2, ITLBWalksPKI: 0.005, L2MPKI: 8, L3HitPct: 50, DTLBWalksPKI: 0.4, BranchMispPct: 0.8},
		},
		{
			Name: "HPCC-HPL", Suite: "HPCC", Class: HPC,
			Profile: nativeProfile(404, 8, 0.7),
			Gen:     func(t *memtrace.Tracer) { hpcc.TraceHPL(t, 144) },
			Paper:   PaperRef{IPC: 1.20, KernelPct: 1, L1IMPKI: 0.1, ITLBWalksPKI: 0.005, L2MPKI: 2, L3HitPct: 80, DTLBWalksPKI: 0.1, BranchMispPct: 0.5},
		},
		{
			Name: "HPCC-PTRANS", Suite: "HPCC", Class: HPC,
			Profile: nativeProfile(405, 8, 0.3),
			Gen:     func(t *memtrace.Tracer) { hpcc.TracePTRANS(t, 1024) },
			Paper:   PaperRef{IPC: 0.55, KernelPct: 2, L1IMPKI: 0.1, ITLBWalksPKI: 0.005, L2MPKI: 25, L3HitPct: 20, DTLBWalksPKI: 1.5, BranchMispPct: 0.5},
		},
		{
			Name: "HPCC-RandomAccess", Suite: "HPCC", Class: HPC,
			Profile: func() memtrace.Profile {
				p := nativeProfile(406, 8, 0)
				p.ChainProb = 0.7 // the update chain is serial
				return p
			}(),
			Gen:   func(t *memtrace.Tracer) { hpcc.TraceGUPS(t, 192<<20) },
			Paper: PaperRef{IPC: 0.30, KernelPct: 31, L1IMPKI: 0.5, ITLBWalksPKI: 0.01, L2MPKI: 35, L3HitPct: 5, DTLBWalksPKI: 2.5, BranchMispPct: 1.0},
		},
		{
			Name: "HPCC-STREAM", Suite: "HPCC", Class: HPC,
			Profile: nativeProfile(407, 8, 0.4),
			Gen:     func(t *memtrace.Tracer) { hpcc.TraceStream(t, 1<<24) },
			Paper:   PaperRef{IPC: 0.45, KernelPct: 1, L1IMPKI: 0.1, ITLBWalksPKI: 0.005, L2MPKI: 30, L3HitPct: 5, DTLBWalksPKI: 0.5, BranchMispPct: 0.3},
		},
	}
}
