package core

import (
	"fmt"
	"testing"

	"dcbench/internal/uarch"
)

// TestCalibrationReport prints every workload's simulated metrics next to
// the paper's approximate values. Run with -v to inspect calibration; the
// assertions themselves live in the shape tests.
func TestCalibrationReport(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep")
	}
	cfg := uarch.DefaultConfig()
	cfg.Warmup = 250_000
	results := CharacterizeAll(cfg, 650_000)
	fmt.Printf("%-18s %5s/%5s %5s/%5s %6s/%6s %6s/%6s %6s/%6s %5s/%5s %6s/%6s %5s/%5s | stalls f/rat/lb/rs/sb/rob\n",
		"workload", "ipc", "ref", "krn%", "ref", "l1i", "ref", "itlbw", "ref", "l2", "ref", "l3h%", "ref", "dtlbw", "ref", "br%", "ref")
	for _, r := range results {
		c := r.Counters
		p := r.Workload.Paper
		b := c.StallBreakdown()
		fmt.Printf("%-18s %5.2f/%5.2f %5.1f/%5.1f %6.1f/%6.1f %6.3f/%6.3f %6.1f/%6.1f %5.1f/%5.1f %6.2f/%6.2f %5.1f/%5.1f | %.2f %.2f %.2f %.2f %.2f %.2f\n",
			r.Workload.Name,
			c.IPC(), p.IPC,
			100*c.KernelShare(), p.KernelPct,
			c.L1IMPKI(), p.L1IMPKI,
			c.ITLBWalksPKI(), p.ITLBWalksPKI,
			c.L2MPKI(), p.L2MPKI,
			100*c.L3HitRatio(), p.L3HitPct,
			c.DTLBWalksPKI(), p.DTLBWalksPKI,
			100*c.BranchMispredictRatio(), p.BranchMispPct,
			b[0], b[1], b[2], b[3], b[4], b[5])
	}
}
