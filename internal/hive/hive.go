// Package hive is a miniature data-warehouse engine — typed tables and the
// relational operators (scan, filter, project, hash join, group-by
// aggregation, order-by, limit) needed to run the Hive-bench query suite the
// paper uses as its data-warehouse workload (Section II-C.6). It plays the
// role Hive 0.6 plays in the paper; internal/workloads compiles its query
// plans onto the MapReduce engine.
package hive

import (
	"fmt"
	"sort"
	"strings"
)

// Kind is a column type.
type Kind int

// Column kinds.
const (
	String Kind = iota
	Int
	Float
)

// Col is one column definition.
type Col struct {
	Name string
	Kind Kind
}

// Schema is an ordered column list.
type Schema []Col

// Index returns the position of the named column, or -1.
func (s Schema) Index(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// MustIndex is Index but panics on unknown columns — schema errors are
// programming errors in this engine.
func (s Schema) MustIndex(name string) int {
	i := s.Index(name)
	if i < 0 {
		panic(fmt.Sprintf("hive: unknown column %q", name))
	}
	return i
}

// Row is one tuple; entries are string, int64 or float64 per the schema.
type Row []any

// Relation is a materialised intermediate result.
type Relation struct {
	Schema Schema
	Rows   []Row
}

// Table is a named base relation.
type Table struct {
	Name string
	Relation
}

// NewTable creates an empty table.
func NewTable(name string, schema Schema) *Table {
	return &Table{Name: name, Relation: Relation{Schema: schema}}
}

// Append adds a row, validating arity.
func (t *Table) Append(vals ...any) {
	if len(vals) != len(t.Schema) {
		panic(fmt.Sprintf("hive: row arity %d != schema %d for %s", len(vals), len(t.Schema), t.Name))
	}
	t.Rows = append(t.Rows, Row(vals))
}

// Scan starts a query over the table (a shallow copy; operators never
// mutate their input).
func (t *Table) Scan() *Relation {
	return &Relation{Schema: t.Schema, Rows: t.Rows}
}

// Filter keeps rows satisfying pred.
func (r *Relation) Filter(pred func(Row) bool) *Relation {
	out := &Relation{Schema: r.Schema}
	for _, row := range r.Rows {
		if pred(row) {
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// FilterLike keeps rows whose string column contains substr — the LIKE
// '%substr%' predicate of the Hive-bench grep query.
func (r *Relation) FilterLike(col, substr string) *Relation {
	i := r.Schema.MustIndex(col)
	return r.Filter(func(row Row) bool {
		s, _ := row[i].(string)
		return strings.Contains(s, substr)
	})
}

// Project keeps only the named columns, in the given order.
func (r *Relation) Project(cols ...string) *Relation {
	idx := make([]int, len(cols))
	schema := make(Schema, len(cols))
	for j, c := range cols {
		idx[j] = r.Schema.MustIndex(c)
		schema[j] = r.Schema[idx[j]]
	}
	out := &Relation{Schema: schema, Rows: make([]Row, len(r.Rows))}
	for i, row := range r.Rows {
		nr := make(Row, len(idx))
		for j, k := range idx {
			nr[j] = row[k]
		}
		out.Rows[i] = nr
	}
	return out
}

// Join hash-joins r with other on r.leftCol == other.rightCol (equi-join,
// inner). The output schema is r's columns followed by other's with the
// join key deduplicated on the right side.
func (r *Relation) Join(other *Relation, leftCol, rightCol string) *Relation {
	li := r.Schema.MustIndex(leftCol)
	ri := other.Schema.MustIndex(rightCol)
	// Build side: the smaller relation, as a real engine would pick.
	build, probe := other, r
	bi, pi := ri, li
	swapped := false
	if len(r.Rows) < len(other.Rows) {
		build, probe = r, other
		bi, pi = li, ri
		swapped = true
	}
	ht := make(map[any][]Row, len(build.Rows))
	for _, row := range build.Rows {
		ht[row[bi]] = append(ht[row[bi]], row)
	}
	var schema Schema
	appendCols := func(s Schema, skip int) {
		for i, c := range s {
			if i == skip {
				continue
			}
			schema = append(schema, c)
		}
	}
	schema = append(schema, r.Schema...)
	appendCols(other.Schema, ri)
	out := &Relation{Schema: schema}
	emit := func(left, right Row) {
		nr := make(Row, 0, len(schema))
		nr = append(nr, left...)
		for i, v := range right {
			if i == ri {
				continue
			}
			nr = append(nr, v)
		}
		out.Rows = append(out.Rows, nr)
	}
	for _, prow := range probe.Rows {
		for _, brow := range ht[prow[pi]] {
			if swapped {
				emit(brow, prow)
			} else {
				emit(prow, brow)
			}
		}
	}
	return out
}

// AggOp is an aggregation operator.
type AggOp int

// Aggregation operators.
const (
	Count AggOp = iota
	Sum
	Avg
	Min
	Max
)

// Agg is one aggregate expression: Op(Col) AS As.
type Agg struct {
	Op  AggOp
	Col string // ignored for Count
	As  string
}

type aggState struct {
	n    int64
	sum  float64
	min  float64
	max  float64
	seen bool
}

func toFloat(v any) float64 {
	switch x := v.(type) {
	case int64:
		return float64(x)
	case float64:
		return x
	default:
		panic(fmt.Sprintf("hive: non-numeric value %T in aggregate", v))
	}
}

// GroupBy groups by the key columns and evaluates the aggregates. Output
// rows are ordered by group key for determinism. An empty key list yields a
// single global group.
func (r *Relation) GroupBy(keys []string, aggs []Agg) *Relation {
	keyIdx := make([]int, len(keys))
	for i, k := range keys {
		keyIdx[i] = r.Schema.MustIndex(k)
	}
	aggIdx := make([]int, len(aggs))
	for i, a := range aggs {
		if a.Op == Count {
			aggIdx[i] = -1
			continue
		}
		aggIdx[i] = r.Schema.MustIndex(a.Col)
	}
	groups := make(map[string][]*aggState)
	order := make(map[string]Row) // key string -> key values
	var keyStrings []string
	for _, row := range r.Rows {
		var kb strings.Builder
		keyVals := make(Row, len(keyIdx))
		for i, ki := range keyIdx {
			keyVals[i] = row[ki]
			fmt.Fprintf(&kb, "%v\x00", row[ki])
		}
		ks := kb.String()
		st, ok := groups[ks]
		if !ok {
			st = make([]*aggState, len(aggs))
			for i := range st {
				st[i] = &aggState{}
			}
			groups[ks] = st
			order[ks] = keyVals
			keyStrings = append(keyStrings, ks)
		}
		for i := range aggs {
			s := st[i]
			s.n++
			if aggIdx[i] < 0 {
				continue
			}
			v := toFloat(row[aggIdx[i]])
			s.sum += v
			if !s.seen || v < s.min {
				s.min = v
			}
			if !s.seen || v > s.max {
				s.max = v
			}
			s.seen = true
		}
	}
	sort.Strings(keyStrings)

	schema := make(Schema, 0, len(keys)+len(aggs))
	for i, k := range keys {
		schema = append(schema, Col{Name: k, Kind: r.Schema[keyIdx[i]].Kind})
	}
	for _, a := range aggs {
		kind := Float
		if a.Op == Count {
			kind = Int
		}
		schema = append(schema, Col{Name: a.As, Kind: kind})
	}
	out := &Relation{Schema: schema}
	for _, ks := range keyStrings {
		st := groups[ks]
		row := make(Row, 0, len(schema))
		row = append(row, order[ks]...)
		for i, a := range aggs {
			switch a.Op {
			case Count:
				row = append(row, st[i].n)
			case Sum:
				row = append(row, st[i].sum)
			case Avg:
				row = append(row, st[i].sum/float64(st[i].n))
			case Min:
				row = append(row, st[i].min)
			case Max:
				row = append(row, st[i].max)
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// OrderBy sorts by the named column (stable), descending if desc.
func (r *Relation) OrderBy(col string, desc bool) *Relation {
	i := r.Schema.MustIndex(col)
	out := &Relation{Schema: r.Schema, Rows: make([]Row, len(r.Rows))}
	copy(out.Rows, r.Rows)
	less := func(a, b Row) bool {
		switch av := a[i].(type) {
		case string:
			return av < b[i].(string)
		case int64:
			return av < b[i].(int64)
		case float64:
			return av < b[i].(float64)
		default:
			panic(fmt.Sprintf("hive: unorderable type %T", a[i]))
		}
	}
	sort.SliceStable(out.Rows, func(x, y int) bool {
		if desc {
			return less(out.Rows[y], out.Rows[x])
		}
		return less(out.Rows[x], out.Rows[y])
	})
	return out
}

// Limit keeps the first n rows.
func (r *Relation) Limit(n int) *Relation {
	if n > len(r.Rows) {
		n = len(r.Rows)
	}
	return &Relation{Schema: r.Schema, Rows: r.Rows[:n]}
}

// Bytes estimates the relation's payload size, used by the MapReduce
// compiler to charge simulated I/O.
func (r *Relation) Bytes() int64 {
	var b int64
	for _, row := range r.Rows {
		for _, v := range row {
			switch x := v.(type) {
			case string:
				b += int64(len(x))
			default:
				b += 8
			}
		}
	}
	return b
}
