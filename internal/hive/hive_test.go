package hive

import (
	"math"
	"testing"
	"testing/quick"
)

func rankings() *Table {
	t := NewTable("rankings", Schema{
		{Name: "pageurl", Kind: String},
		{Name: "pagerank", Kind: Int},
	})
	t.Append("a.com", int64(30))
	t.Append("b.com", int64(55))
	t.Append("c.com", int64(12))
	t.Append("d.com", int64(80))
	return t
}

func visits() *Table {
	t := NewTable("uservisits", Schema{
		{Name: "sourceip", Kind: String},
		{Name: "desturl", Kind: String},
		{Name: "adrevenue", Kind: Float},
	})
	t.Append("1.1.1.1", "a.com", 2.0)
	t.Append("1.1.1.1", "b.com", 3.5)
	t.Append("2.2.2.2", "b.com", 1.0)
	t.Append("2.2.2.2", "zz.com", 9.0) // no matching ranking
	return t
}

func TestFilterAndProject(t *testing.T) {
	r := rankings().Scan().
		Filter(func(row Row) bool { return row[1].(int64) > 20 }).
		Project("pageurl")
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(r.Rows))
	}
	if len(r.Schema) != 1 || r.Schema[0].Name != "pageurl" {
		t.Fatalf("schema = %v", r.Schema)
	}
}

func TestFilterLike(t *testing.T) {
	r := rankings().Scan().FilterLike("pageurl", ".com")
	if len(r.Rows) != 4 {
		t.Fatalf("LIKE %%.com%% matched %d, want 4", len(r.Rows))
	}
	r = rankings().Scan().FilterLike("pageurl", "b.")
	if len(r.Rows) != 1 || r.Rows[0][0].(string) != "b.com" {
		t.Fatalf("LIKE %%b.%% = %v", r.Rows)
	}
}

func TestJoinInner(t *testing.T) {
	j := visits().Scan().Join(rankings().Scan(), "desturl", "pageurl")
	if len(j.Rows) != 3 { // zz.com drops out
		t.Fatalf("join rows = %d, want 3", len(j.Rows))
	}
	// Schema: sourceip, desturl, adrevenue, pagerank.
	if j.Schema.Index("pagerank") < 0 || j.Schema.Index("sourceip") < 0 {
		t.Fatalf("join schema = %v", j.Schema)
	}
	// Verify a joined value: visit to b.com must carry pagerank 55.
	pr := j.Schema.MustIndex("pagerank")
	du := j.Schema.MustIndex("desturl")
	for _, row := range j.Rows {
		if row[du].(string) == "b.com" && row[pr].(int64) != 55 {
			t.Fatalf("b.com joined with pagerank %v", row[pr])
		}
	}
}

func TestJoinBuildSideChoiceIrrelevant(t *testing.T) {
	// Joining in either direction yields the same multiset of
	// (desturl, pagerank) pairs.
	j1 := visits().Scan().Join(rankings().Scan(), "desturl", "pageurl")
	j2 := rankings().Scan().Join(visits().Scan(), "pageurl", "desturl")
	if len(j1.Rows) != len(j2.Rows) {
		t.Fatalf("asymmetric join: %d vs %d", len(j1.Rows), len(j2.Rows))
	}
}

func TestGroupByAggregates(t *testing.T) {
	g := visits().Scan().GroupBy([]string{"sourceip"}, []Agg{
		{Op: Sum, Col: "adrevenue", As: "rev"},
		{Op: Count, As: "n"},
		{Op: Max, Col: "adrevenue", As: "maxrev"},
	})
	if len(g.Rows) != 2 {
		t.Fatalf("groups = %d, want 2", len(g.Rows))
	}
	// Rows sorted by key: 1.1.1.1 first.
	if g.Rows[0][0].(string) != "1.1.1.1" {
		t.Fatalf("group order = %v", g.Rows)
	}
	if got := g.Rows[0][1].(float64); math.Abs(got-5.5) > 1e-12 {
		t.Fatalf("sum = %v, want 5.5", got)
	}
	if g.Rows[0][2].(int64) != 2 {
		t.Fatalf("count = %v", g.Rows[0][2])
	}
	if got := g.Rows[1][3].(float64); got != 9.0 {
		t.Fatalf("max = %v, want 9", got)
	}
}

func TestGroupByGlobal(t *testing.T) {
	g := visits().Scan().GroupBy(nil, []Agg{{Op: Avg, Col: "adrevenue", As: "avg"}})
	if len(g.Rows) != 1 {
		t.Fatalf("global group rows = %d", len(g.Rows))
	}
	if got := g.Rows[0][0].(float64); math.Abs(got-3.875) > 1e-12 {
		t.Fatalf("avg = %v, want 3.875", got)
	}
}

func TestOrderByAndLimit(t *testing.T) {
	r := rankings().Scan().OrderBy("pagerank", true).Limit(2)
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.Rows[0][1].(int64) != 80 || r.Rows[1][1].(int64) != 55 {
		t.Fatalf("top-2 = %v", r.Rows)
	}
}

func TestOrderByString(t *testing.T) {
	r := rankings().Scan().OrderBy("pageurl", false)
	prev := ""
	for _, row := range r.Rows {
		if row[0].(string) < prev {
			t.Fatal("not sorted")
		}
		prev = row[0].(string)
	}
}

func TestUnknownColumnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	rankings().Scan().Project("nope")
}

func TestArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	rankings().Append("only-one-value")
}

func TestGroupSumMatchesManual(t *testing.T) {
	// Property: SUM over GroupBy equals a manual accumulation.
	if err := quick.Check(func(vals []float64, keys []uint8) bool {
		n := len(vals)
		if len(keys) < n {
			n = len(keys)
		}
		tab := NewTable("t", Schema{{Name: "k", Kind: Int}, {Name: "v", Kind: Float}})
		manual := map[int64]float64{}
		for i := 0; i < n; i++ {
			if math.IsNaN(vals[i]) || math.IsInf(vals[i], 0) {
				continue
			}
			k := int64(keys[i] % 8)
			tab.Append(k, vals[i])
			manual[k] += vals[i]
		}
		g := tab.Scan().GroupBy([]string{"k"}, []Agg{{Op: Sum, Col: "v", As: "s"}})
		if len(g.Rows) != len(manual) {
			return false
		}
		for _, row := range g.Rows {
			want := manual[row[0].(int64)]
			got := row[1].(float64)
			if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBytesEstimate(t *testing.T) {
	tab := NewTable("t", Schema{{Name: "s", Kind: String}, {Name: "n", Kind: Int}})
	tab.Append("abc", int64(1))
	if got := tab.Scan().Bytes(); got != 11 { // 3 + 8
		t.Fatalf("bytes = %d, want 11", got)
	}
}
