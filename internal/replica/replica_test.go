package replica_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"dcbench/internal/core"
	"dcbench/internal/replica"
	"dcbench/internal/report"
	"dcbench/internal/serve"
	"dcbench/internal/store"
	"dcbench/internal/sweep"
)

var quietLog = slog.New(slog.NewTextHandler(io.Discard, nil))

// testOptions keeps the per-key simulations small: the oracle is about
// replication, the workloads just need distinct keys.
func testOptions() report.Options {
	o := report.DefaultOptions()
	o.Instrs = 4_000
	o.Warmup = 2_000
	return o
}

// node is one in-process replica: a persistent store, a serving layer on
// a real listener, and a replicator over the other nodes.
type node struct {
	dir  string
	addr string
	ts   *httptest.Server
	st   *store.Store
	srv  *serve.Server
	repl *replica.Replicator
}

// startNode opens (or reopens) a node's store in dir and serves it on l,
// replicating against peers. The anti-entropy loop is disabled — the test
// drives rounds explicitly so convergence is observable, not timed.
func startNode(t *testing.T, ctx context.Context, dir, addr string, l net.Listener, peers []string, opts report.Options) *node {
	t.Helper()
	st, err := store.OpenWith(dir, store.OpenOptions{Log: quietLog})
	if err != nil {
		t.Fatal(err)
	}
	repl, err := replica.New(replica.Options{
		Peers:    peers,
		Factor:   3,
		Interval: -1, // rounds driven by hand
		Timeout:  5 * time.Second,
	}, st, quietLog)
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New(serve.Config{
		Options: opts,
		Store:   st,
		Backend: repl.WrapMemo(st.Backend(quietLog)),
		Cluster: repl.WrapStats(st.StatsBackend(quietLog)),
		Logger:  quietLog,
	})
	repl.SetRecorder(srv.Recorder())
	repl.Start(ctx)
	ts := &httptest.Server{Listener: l, Config: &http.Server{Handler: srv.Handler()}}
	ts.Start()
	return &node{dir: dir, addr: addr, ts: ts, st: st, srv: srv, repl: repl}
}

// stop tears the node down the way a crash-then-restart sequence would:
// listener first (requests stop landing), then the replicator (queued
// pushes drain), then the server and store.
func (n *node) stop() {
	n.ts.Close()
	n.repl.Close()
	n.srv.Close()
	n.st.Close()
}

// listenOrReuse binds addr, retrying briefly — a restarted node must come
// back on the address its peers know it by.
func listenOrReuse(t *testing.T, addr string) net.Listener {
	t.Helper()
	var lastErr error
	for i := 0; i < 50; i++ {
		l, err := net.Listen("tcp", addr)
		if err == nil {
			return l
		}
		lastErr = err
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("could not rebind %s: %v", addr, lastErr)
	return nil
}

// postJob submits one counters job and returns the status and body.
func postJob(t *testing.T, addr string, key sweep.Key, warmup int64) (int, []byte) {
	t.Helper()
	raw, err := json.Marshal(key)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(struct {
		Kind   string          `json:"kind"`
		Key    json.RawMessage `json:"key"`
		Warmup int64           `json:"warmup"`
	}{store.KindCounters, raw, warmup})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post("http://"+addr+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// digestsEqual reports whether every node's shard digest vector matches
// the first's.
func digestsEqual(nodes []*node) bool {
	ref := nodes[0].st.ShardDigests()
	for _, n := range nodes[1:] {
		ds := n.st.ShardDigests()
		if len(ds) != len(ref) {
			return false
		}
		for i := range ds {
			if ds[i] != ref[i] {
				return false
			}
		}
	}
	return true
}

// converge drives anti-entropy rounds on every node until the digests
// agree (or the deadline passes).
func converge(t *testing.T, ctx context.Context, nodes []*node, deadline time.Duration) {
	t.Helper()
	stop := time.Now().Add(deadline)
	for !digestsEqual(nodes) {
		if time.Now().After(stop) {
			for _, n := range nodes {
				t.Logf("node %s: len=%d digests=%v stats=%+v", n.addr, n.st.Len(), n.st.ShardDigests(), n.repl.Stats())
			}
			t.Fatal("replicas did not converge before the deadline")
		}
		for _, n := range nodes {
			n.repl.RunAntiEntropy(ctx)
		}
	}
}

// TestConvergenceOracle is the acceptance oracle for the replication
// subsystem: three in-process replicas take a randomized interleaving of
// unique counters jobs, one node is killed and restarted (missing the
// writes that landed meanwhile), and the cluster must converge to
// byte-identical store contents — same digests, same record bytes, same
// /v1/jobs responses from every node — with the total simulation count
// exactly the number of unique keys. Runs under -race in CI.
func TestConvergenceOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations across three replicas")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := testOptions()
	cfgFP := opts.CoreConfig().Fingerprint()

	// Three listeners first: every node needs its peers' addresses at
	// build time, and addresses only exist once the sockets do.
	listeners := make([]net.Listener, 3)
	addrs := make([]string, 3)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		addrs[i] = l.Addr().String()
	}
	dirs := make([]string, 3)
	nodes := make([]*node, 3)
	for i := range nodes {
		dirs[i] = t.TempDir()
		peers := make([]string, 0, 2)
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		nodes[i] = startNode(t, ctx, dirs[i], addrs[i], listeners[i], peers, opts)
	}
	defer func() {
		for _, n := range nodes {
			n.stop()
		}
	}()

	// Unique keys from the characterization registry, each posted to one
	// randomly chosen node, concurrently — the randomized interleaving.
	registry := core.Registry()
	const phase1, phase2 = 9, 3
	if len(registry) < phase1+phase2 {
		t.Fatalf("registry has %d workloads, need %d", len(registry), phase1+phase2)
	}
	key := func(i int) sweep.Key {
		wl := registry[i]
		return sweep.Key{Name: wl.Name, Profile: wl.Profile, ConfigFP: cfgFP, MaxInstrs: opts.Warmup + opts.Instrs}
	}
	rng := rand.New(rand.NewSource(7))
	targets := make([]int, phase1+phase2)
	for i := range targets {
		targets[i] = rng.Intn(3)
	}
	var wg sync.WaitGroup
	for i := 0; i < phase1; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if code, body := postJob(t, nodes[targets[i]].addr, key(i), opts.Warmup); code != http.StatusOK {
				t.Errorf("job %d on node %d: status %d: %s", i, targets[i], code, body)
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	converge(t, ctx, nodes, 30*time.Second)

	// Kill node 2. The writes that land meanwhile replicate only between
	// the survivors; the victim's disk keeps what it had.
	victim := nodes[2]
	victimWrites := victim.st.Stats().Writes
	victim.stop()
	for i := phase1; i < phase1+phase2; i++ {
		target := nodes[rng.Intn(2)] // survivors only
		if code, body := postJob(t, target.addr, key(i), opts.Warmup); code != http.StatusOK {
			t.Fatalf("job %d during outage: status %d: %s", i, code, body)
		}
	}

	// Restart it on the same address: anti-entropy must deliver exactly
	// the missed records, with zero re-simulation.
	l := listenOrReuse(t, addrs[2])
	nodes[2] = startNode(t, ctx, dirs[2], addrs[2], l, []string{addrs[0], addrs[1]}, opts)
	converge(t, ctx, nodes, 30*time.Second)

	total := phase1 + phase2
	for _, n := range nodes {
		if n.st.Len() != total {
			t.Fatalf("node %s holds %d records after convergence, want %d", n.addr, n.st.Len(), total)
		}
	}
	rs := nodes[2].repl.Stats()
	if rs.Repaired == 0 {
		t.Fatal("restarted node converged without adopting anything — the oracle is not exercising anti-entropy")
	}

	// Byte-identical contents: every record's persisted bytes match on
	// every node.
	for shard := 0; shard < nodes[0].st.ShardCount(); shard++ {
		addrsList, err := nodes[0].st.ShardAddrs(shard)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range addrsList {
			ref, ok, err := nodes[0].st.GetRecord(a)
			if err != nil || !ok {
				t.Fatalf("node 0 cannot export %s: ok=%v err=%v", a, ok, err)
			}
			for _, n := range nodes[1:] {
				got, ok, err := n.st.GetRecord(a)
				if err != nil || !ok || !bytes.Equal(ref, got) {
					t.Fatalf("record %s differs on node %s (ok=%v err=%v)", a, n.addr, ok, err)
				}
			}
		}
	}

	// Simulation count == unique keys: every key was simulated exactly
	// once across the cluster, counting the victim's first life.
	writes := victimWrites
	for _, n := range nodes {
		writes += n.st.Stats().Writes
	}
	if writes != int64(total) {
		t.Fatalf("cluster simulated %d times for %d unique keys", writes, total)
	}

	// Same /v1/* responses from every node, still with zero simulation:
	// each key answers byte-identically wherever it is asked.
	for i := 0; i < total; i++ {
		var ref []byte
		for ni, n := range nodes {
			code, body := postJob(t, n.addr, key(i), opts.Warmup)
			if code != http.StatusOK {
				t.Fatalf("warm job %d on node %d: status %d: %s", i, ni, code, body)
			}
			if ni == 0 {
				ref = body
			} else if !bytes.Equal(ref, body) {
				t.Fatalf("job %d answers different bytes on node %d", i, ni)
			}
		}
	}
	after := victimWrites
	for _, n := range nodes {
		after += n.st.Stats().Writes
	}
	if after != writes {
		t.Fatalf("serving warm keys re-simulated: writes %d -> %d", writes, after)
	}
	if got := fmt.Sprintf("%d", nodes[2].st.Stats().Writes); got != "0" {
		t.Fatalf("restarted node simulated %s times, want 0", got)
	}
}

// TestPushFanOut pins the write-through path alone: a record stored on
// one node shows up on its peers without any anti-entropy round.
func TestPushFanOut(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real simulation")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := testOptions()

	listeners := make([]net.Listener, 3)
	addrs := make([]string, 3)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		addrs[i] = l.Addr().String()
	}
	nodes := make([]*node, 3)
	for i := range nodes {
		peers := make([]string, 0, 2)
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		nodes[i] = startNode(t, ctx, t.TempDir(), addrs[i], listeners[i], peers, opts)
	}
	defer func() {
		for _, n := range nodes {
			n.stop()
		}
	}()

	wl := core.Registry()[0]
	k := sweep.Key{Name: wl.Name, Profile: wl.Profile, ConfigFP: opts.CoreConfig().Fingerprint(), MaxInstrs: opts.Warmup + opts.Instrs}
	if code, body := postJob(t, nodes[0].addr, k, opts.Warmup); code != http.StatusOK {
		t.Fatalf("job: status %d: %s", code, body)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if nodes[1].st.Len() == 1 && nodes[2].st.Len() == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("push fan-out did not land: peers hold %d and %d records; stats %+v",
				nodes[1].st.Len(), nodes[2].st.Len(), nodes[0].repl.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if rs := nodes[0].repl.Stats(); rs.Pushed < 2 {
		t.Fatalf("pushed = %d, want >= 2", rs.Pushed)
	}
	// The pushes landed as adoptions, not writes: peers never simulated.
	if w := nodes[1].st.Stats().Writes + nodes[2].st.Stats().Writes; w != 0 {
		t.Fatalf("peers simulated %d times for a pushed record", w)
	}
}
