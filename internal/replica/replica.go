// Package replica keeps a cluster of dcserved result stores coherent: any
// node can serve any warm key locally, and losing a key's rendezvous owner
// costs nothing that was already simulated.
//
// Two mechanisms, layered:
//
//   - Write-through fan-out: after a node stores a freshly simulated
//     record, the same checksummed, kind-tagged record bytes the store
//     persists (and the dispatch layer already ships) are pushed to the
//     record's next R−1 rendezvous-ranked peers via POST
//     /v1/replica/records — asynchronously, through a bounded queue with
//     retries, so replication latency never sits on the simulation path
//     and a slow peer sheds pushes instead of backing the cluster up.
//   - Background anti-entropy: every interval, the node fetches each
//     peer's per-shard index digests (GET /v1/replica/digest — a digest
//     over sorted record addresses, which identifies contents because
//     records are deterministic), pulls the address lists of divergent
//     shards only, and adopts the records it lacks. A node that restarted
//     empty, missed pushes while partitioned, or dropped queue overflow
//     converges back to the union without re-simulating anything.
//
// Both paths end in store.AdoptRecord: the incoming bytes are
// checksum-verified, installed verbatim under their content address
// (byte-identical convergence by construction), idempotent on repeats,
// and subject to the store's count/age/bytes budgets. Adopted records are
// never re-pushed — fan-out starts only at the node that simulated the
// record — so the push graph cannot loop.
//
// The replicator wraps the store's backend adapters (WrapMemo/WrapStats)
// to see fresh writes, and surfaces its counters as
// sweep.BackendStats.Replication through the same StatsReporter chain the
// store and dispatch layers already ride into /healthz and /metrics.
package replica

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dcbench/internal/obs"
	"dcbench/internal/store"
	"dcbench/internal/sweep"
	"dcbench/internal/uarch"
	"dcbench/internal/workloads"
)

// Defaults for Options' zero fields.
const (
	// DefaultFactor is the total number of copies of each fresh record,
	// the writing node included: 2 survives any single node loss.
	DefaultFactor = 2
	// DefaultInterval paces the background anti-entropy loop.
	DefaultInterval = 30 * time.Second
	// DefaultQueueLen bounds the async push queue; overflow is counted
	// and dropped (anti-entropy repairs it later) rather than blocking
	// the simulation path.
	DefaultQueueLen = 256
	// DefaultRetries is how many extra attempts a failed push gets.
	DefaultRetries = 2
	// DefaultTimeout bounds each peer HTTP call.
	DefaultTimeout = 10 * time.Second
)

// pushWorkers is the sender fan-out draining the push queue.
const pushWorkers = 2

// retryBackoff spaces push retry attempts (linear: attempt × backoff).
const retryBackoff = 200 * time.Millisecond

// maxRecord bounds a pulled record — the same cap the dispatch layer puts
// on a worker response.
const maxRecord = 8 << 20

// Options configures a Replicator.
type Options struct {
	// Peers are the other replicas' service addresses (host:port); empty
	// means replication is off and the caller should not build a
	// Replicator at all.
	Peers []string
	// Factor is the total copy count per fresh record, this node
	// included; fan-out pushes to the Factor−1 top rendezvous-ranked
	// peers. Clamped to the cluster size.
	Factor int
	// Interval paces the background anti-entropy loop; <0 disables the
	// loop (rounds can still be driven explicitly via RunAntiEntropy).
	Interval time.Duration
	// APIKey, when non-empty, authenticates every peer call as
	// `Authorization: Bearer <APIKey>` — the same service key the
	// dispatch layer presents (-dispatch-api-key), so one key admits a
	// node to both planes of a keyed cluster.
	APIKey string
	// QueueLen bounds the push queue; 0 means DefaultQueueLen.
	QueueLen int
	// Retries is how many extra attempts a failed push gets; negative
	// means none.
	Retries int
	// Timeout bounds each peer HTTP call; 0 means DefaultTimeout.
	Timeout time.Duration
}

// RegisterFlags declares the replication flags on fs, defaulted from *o
// and written back on Parse — the single definition shared by dcbench and
// dcserved, so the flag surface cannot drift between the binaries. The
// service key is not a flag here: callers reuse -dispatch-api-key, which
// already names the node's credential on its peers.
func RegisterFlags(fs *flag.FlagSet, o *Options) {
	if o.Factor == 0 {
		o.Factor = DefaultFactor
	}
	if o.Interval == 0 {
		o.Interval = DefaultInterval
	}
	fs.Var((*peerList)(&o.Peers), "replicas", "comma-separated replica peer addresses (host:port,...) to fan fresh store records out to; empty = replication off")
	fs.IntVar(&o.Factor, "replication-factor", o.Factor, "total copies of each fresh record across the cluster, this node included")
	fs.DurationVar(&o.Interval, "anti-entropy-interval", o.Interval, "how often to exchange store digests with replica peers and pull missing records; <0 disables the background loop")
}

// peerList is the -replicas flag value: a comma-separated address list.
type peerList []string

func (l *peerList) String() string { return strings.Join(*l, ",") }

func (l *peerList) Set(v string) error {
	*l = nil
	for _, a := range strings.Split(v, ",") {
		if a = strings.TrimSpace(a); a != "" {
			*l = append(*l, a)
		}
	}
	return nil
}

// DigestResponse is the body of GET /v1/replica/digest: every shard's
// digest plus the node's store totals.
type DigestResponse struct {
	Shards  []store.ShardDigest `json:"shards"`
	Records int64               `json:"records"`
	Bytes   int64               `json:"bytes"`
}

// AddrsResponse is the body of GET /v1/replica/digest?shard=n: one
// shard's sorted record addresses.
type AddrsResponse struct {
	Shard int      `json:"shard"`
	Addrs []string `json:"addrs"`
}

// pushItem is one queued fan-out push.
type pushItem struct {
	peer string
	addr string
	data []byte
}

// Replicator runs one node's side of store replication. Build with New,
// start the background workers with Start, stop (draining queued pushes)
// with Close. Safe for concurrent use.
type Replicator struct {
	opts   Options
	st     *store.Store
	client *http.Client
	log    *slog.Logger
	rec    atomic.Pointer[obs.Recorder]

	qmu      sync.RWMutex // guards closed vs enqueue's channel send
	closed   bool
	queue    chan pushItem
	wg       sync.WaitGroup
	stopLoop context.CancelFunc // ends the anti-entropy loop on Close

	pushed       atomic.Int64
	pushErrors   atomic.Int64
	dropped      atomic.Int64
	digestRounds atomic.Int64
	pulled       atomic.Int64
	pullErrors   atomic.Int64
	repaired     atomic.Int64

	clusterRecords atomic.Int64 // last digest round's cluster-wide sums
	clusterBytes   atomic.Int64
}

// New builds a Replicator for st over the given peer set.
func New(opts Options, st *store.Store, log *slog.Logger) (*Replicator, error) {
	if st == nil {
		return nil, errors.New("replica: replication requires a result store (-store)")
	}
	if len(opts.Peers) == 0 {
		return nil, errors.New("replica: no peers configured")
	}
	if opts.Factor <= 0 {
		opts.Factor = DefaultFactor
	}
	if opts.Factor > len(opts.Peers)+1 {
		opts.Factor = len(opts.Peers) + 1
	}
	if opts.Interval == 0 {
		opts.Interval = DefaultInterval
	}
	if opts.QueueLen <= 0 {
		opts.QueueLen = DefaultQueueLen
	}
	if opts.Retries < 0 {
		opts.Retries = 0
	}
	if opts.Timeout <= 0 {
		opts.Timeout = DefaultTimeout
	}
	if log == nil {
		log = slog.Default()
	}
	return &Replicator{
		opts:   opts,
		st:     st,
		client: &http.Client{},
		log:    log,
		queue:  make(chan pushItem, opts.QueueLen),
	}, nil
}

// SetRecorder installs the trace ring push and anti-entropy spans are
// recorded into — typically the serving layer's, so replication phases
// show up under /debug/traces beside request timelines.
func (r *Replicator) SetRecorder(rec *obs.Recorder) { r.rec.Store(rec) }

// Start launches the push senders and, when the interval allows, the
// background anti-entropy loop. Both run until ctx ends (the senders
// additionally drain the queue on Close).
func (r *Replicator) Start(ctx context.Context) {
	for i := 0; i < pushWorkers; i++ {
		r.wg.Add(1)
		go r.sender(ctx)
	}
	if r.opts.Interval > 0 {
		// The loop gets its own cancel, fired by Close: a caller holding a
		// long-lived ctx (dcbench's background run) can still stop cleanly,
		// and the senders keep the caller's ctx so Close drains the queue
		// instead of dropping it.
		lctx, cancel := context.WithCancel(ctx)
		r.stopLoop = cancel
		r.wg.Add(1)
		go r.antiEntropyLoop(lctx)
	}
}

// Close stops accepting pushes, drains the queue through the senders and
// waits for the background workers — so a short-lived process (dcbench)
// does not exit with replication still sitting in the queue.
func (r *Replicator) Close() {
	r.qmu.Lock()
	if !r.closed {
		r.closed = true
		close(r.queue)
	}
	r.qmu.Unlock()
	if r.stopLoop != nil {
		r.stopLoop()
	}
	r.wg.Wait()
}

// Stats snapshots the replication counters — the Replication block of
// sweep.BackendStats.
func (r *Replicator) Stats() sweep.ReplicationStats {
	return sweep.ReplicationStats{
		Peers:          int64(len(r.opts.Peers)),
		Factor:         int64(r.opts.Factor),
		Pushed:         r.pushed.Load(),
		PushErrors:     r.pushErrors.Load(),
		Dropped:        r.dropped.Load(),
		QueueDepth:     int64(len(r.queue)),
		DigestRounds:   r.digestRounds.Load(),
		Pulled:         r.pulled.Load(),
		PullErrors:     r.pullErrors.Load(),
		Repaired:       r.repaired.Load(),
		ClusterRecords: r.clusterRecords.Load(),
		ClusterBytes:   r.clusterBytes.Load(),
	}
}

// --- write-through fan-out ---

// enqueue fans one freshly stored record out to its Factor−1 top
// rendezvous-ranked peers. Queue overflow is counted and dropped — the
// record is already durable locally and anti-entropy converges the peers
// later — never blocked on.
func (r *Replicator) enqueue(data []byte) {
	addr, err := store.RecordAddr(data)
	if err != nil {
		return // we encoded these bytes ourselves; cannot happen
	}
	for _, peer := range r.rankPeers(addr)[:r.opts.Factor-1] {
		r.qmu.RLock()
		if r.closed {
			r.qmu.RUnlock()
			return
		}
		select {
		case r.queue <- pushItem{peer: peer, addr: addr, data: data}:
		default:
			r.dropped.Add(1)
		}
		r.qmu.RUnlock()
	}
}

// rankPeers orders the peer set for a record address by rendezvous
// (highest-random-weight) hashing — the same construction the dispatch
// layer ranks workers with, so every node agrees on a record's replica
// set without coordination.
func (r *Replicator) rankPeers(addr string) []string {
	type scored struct {
		peer  string
		score uint64
	}
	ss := make([]scored, len(r.opts.Peers))
	for i, p := range r.opts.Peers {
		h := fnv.New64a()
		fmt.Fprintf(h, "%s|%s", p, addr)
		ss[i] = scored{p, h.Sum64()}
	}
	sort.Slice(ss, func(i, j int) bool { return ss[i].score > ss[j].score })
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.peer
	}
	return out
}

// sender drains the push queue until it closes; a cancelled ctx stops
// sending but keeps draining, so Close never hangs on a dead peer.
func (r *Replicator) sender(ctx context.Context) {
	defer r.wg.Done()
	for it := range r.queue {
		if ctx.Err() != nil {
			r.dropped.Add(1)
			continue
		}
		r.push(ctx, it)
	}
}

// push delivers one queued record to one peer, with bounded retries.
func (r *Replicator) push(ctx context.Context, it pushItem) {
	if tr := r.startTrace("replica.push"); tr != nil {
		defer tr.Finish()
		ctx = obs.With(ctx, tr)
	}
	sp := obs.Start(ctx, "replica.push", "peer", it.peer, "addr", it.addr)
	var err error
	for attempt := 0; attempt <= r.opts.Retries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				r.pushErrors.Add(1)
				sp.End("outcome", "cancelled")
				return
			case <-time.After(time.Duration(attempt) * retryBackoff):
			}
		}
		if err = r.postRecord(ctx, it.peer, it.data); err == nil {
			r.pushed.Add(1)
			sp.End("outcome", "ok")
			return
		}
	}
	r.pushErrors.Add(1)
	sp.End("outcome", "error")
	r.log.Warn("replica push failed", "peer", it.peer, "addr", it.addr, "err", err)
}

// postRecord POSTs one record's bytes to a peer's replica endpoint.
func (r *Replicator) postRecord(ctx context.Context, peer string, data []byte) error {
	ctx, cancel := context.WithTimeout(ctx, r.opts.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		"http://"+peer+"/v1/replica/records", bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if r.opts.APIKey != "" {
		req.Header.Set("Authorization", "Bearer "+r.opts.APIKey)
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("peer answered %d", resp.StatusCode)
	}
	return nil
}

// --- anti-entropy ---

// antiEntropyLoop runs RunAntiEntropy every interval until ctx ends.
func (r *Replicator) antiEntropyLoop(ctx context.Context) {
	defer r.wg.Done()
	t := time.NewTicker(r.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			r.RunAntiEntropy(ctx)
		}
	}
}

// RunAntiEntropy runs one digest-exchange round against every peer:
// fetch its per-shard digests, pull the address lists of shards that
// differ from ours (all of them when the peer runs a different shard
// count — addresses route differently then, so per-shard comparison is
// meaningless), and adopt every record we lack. It also refreshes the
// cluster-wide records/bytes gauges from the digest totals. A dead peer
// costs one counted error and the round moves on; the next round retries.
func (r *Replicator) RunAntiEntropy(ctx context.Context) {
	if tr := r.startTrace("replica.anti-entropy"); tr != nil {
		defer tr.Finish()
		ctx = obs.With(ctx, tr)
	}
	r.digestRounds.Add(1)
	own := r.st.ShardDigests()
	var ownAddrs map[string]bool // built on the first divergent shard
	clusterRecords := int64(r.st.Len())
	clusterBytes := r.st.Bytes()
	for _, peer := range r.opts.Peers {
		if ctx.Err() != nil {
			return
		}
		sp := obs.Start(ctx, "replica.digest", "peer", peer)
		var dr DigestResponse
		err := r.getJSON(ctx, "http://"+peer+"/v1/replica/digest", &dr)
		sp.End("ok", strconv.FormatBool(err == nil))
		if err != nil {
			r.pullErrors.Add(1)
			r.log.Warn("replica digest fetch failed", "peer", peer, "err", err)
			continue
		}
		clusterRecords += dr.Records
		clusterBytes += dr.Bytes
		sameGeometry := len(dr.Shards) == len(own)
		for _, pd := range dr.Shards {
			if pd.Count == 0 {
				continue
			}
			if sameGeometry && pd.Shard >= 0 && pd.Shard < len(own) && own[pd.Shard].Digest == pd.Digest {
				continue
			}
			if ownAddrs == nil {
				ownAddrs = r.ownAddrSet()
			}
			var ar AddrsResponse
			if err := r.getJSON(ctx, fmt.Sprintf("http://%s/v1/replica/digest?shard=%d", peer, pd.Shard), &ar); err != nil {
				r.pullErrors.Add(1)
				continue
			}
			for _, addr := range ar.Addrs {
				if ownAddrs[addr] {
					continue
				}
				if r.pullRecord(ctx, peer, addr) {
					ownAddrs[addr] = true
				}
			}
		}
	}
	r.clusterRecords.Store(clusterRecords)
	r.clusterBytes.Store(clusterBytes)
}

// ownAddrSet snapshots every record address this store holds.
func (r *Replicator) ownAddrSet() map[string]bool {
	out := make(map[string]bool)
	for i := 0; i < r.st.ShardCount(); i++ {
		addrs, _ := r.st.ShardAddrs(i)
		for _, a := range addrs {
			out[a] = true
		}
	}
	return out
}

// pullRecord fetches one record from a peer and adopts it; it reports
// whether the address is now present locally.
func (r *Replicator) pullRecord(ctx context.Context, peer, addr string) bool {
	sp := obs.Start(ctx, "replica.pull", "peer", peer, "addr", addr)
	data, err := r.getRaw(ctx, "http://"+peer+"/v1/replica/records/"+addr)
	if err != nil {
		sp.End("outcome", "error")
		r.pullErrors.Add(1)
		r.log.Warn("replica pull failed", "peer", peer, "addr", addr, "err", err)
		return false
	}
	adopted, err := r.st.AdoptRecord(data)
	if err != nil {
		sp.End("outcome", "corrupt")
		r.pullErrors.Add(1)
		r.log.Warn("replica pull adopted nothing", "peer", peer, "addr", addr, "err", err)
		return false
	}
	r.pulled.Add(1)
	if adopted {
		r.repaired.Add(1)
	}
	sp.End("outcome", "ok")
	return true
}

// getJSON fetches and decodes one peer JSON response.
func (r *Replicator) getJSON(ctx context.Context, url string, into any) error {
	data, err := r.getRaw(ctx, url)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, into)
}

// getRaw fetches one peer URL's body, bounded and authenticated.
func (r *Replicator) getRaw(ctx context.Context, url string) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, r.opts.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	if r.opts.APIKey != "" {
		req.Header.Set("Authorization", "Bearer "+r.opts.APIKey)
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxRecord))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("peer answered %d", resp.StatusCode)
	}
	return data, nil
}

// startTrace opens a trace in the installed recorder, if any.
func (r *Replicator) startTrace(name string) *obs.Trace {
	if rec := r.rec.Load(); rec != nil {
		return rec.StartTrace(name, "")
	}
	return nil
}

// --- backend wrappers ---

// WrapMemo returns inner with write-through fan-out: a fresh counters
// record stored through it is re-encoded in the store's wire format and
// pushed to its replica peers. Loads pass through untouched (the store
// already holds anything replication delivered), and the wrapper forwards
// inner's BackendStats with the Replication block filled in, so the
// counters ride the existing StatsReporter chain into /healthz and
// /metrics without new plumbing.
func (r *Replicator) WrapMemo(inner sweep.MemoBackend) sweep.MemoBackend {
	return &memoWrapper{r: r, inner: inner}
}

type memoWrapper struct {
	r     *Replicator
	inner sweep.MemoBackend
}

func (w *memoWrapper) Load(ctx context.Context, k sweep.Key) (*uarch.Counters, bool) {
	return w.inner.Load(ctx, k)
}

func (w *memoWrapper) Store(ctx context.Context, k sweep.Key, c *uarch.Counters) {
	w.inner.Store(ctx, k, c)
	data, err := store.EncodeCounters(k, c)
	if err != nil {
		w.r.log.Warn("replica: counters record encode failed; not replicated", "workload", k.Name, "err", err)
		return
	}
	w.r.enqueue(data)
}

func (w *memoWrapper) BackendStats() sweep.BackendStats {
	var bs sweep.BackendStats
	if sr, ok := w.inner.(sweep.StatsReporter); ok {
		bs = sr.BackendStats()
	}
	rs := w.r.Stats()
	bs.Replication = &rs
	return bs
}

// WrapStats is WrapMemo for the cluster-experiment side: fresh cluster
// records fan out the same way.
func (r *Replicator) WrapStats(inner workloads.StatsBackend) workloads.StatsBackend {
	return &statsWrapper{r: r, inner: inner}
}

type statsWrapper struct {
	r     *Replicator
	inner workloads.StatsBackend
}

func (w *statsWrapper) LoadStats(ctx context.Context, k workloads.StatsKey) (*workloads.Stats, bool) {
	return w.inner.LoadStats(ctx, k)
}

func (w *statsWrapper) StoreStats(ctx context.Context, k workloads.StatsKey, st *workloads.Stats) {
	w.inner.StoreStats(ctx, k, st)
	data, err := store.EncodeStats(k, st)
	if err != nil {
		w.r.log.Warn("replica: cluster record encode failed; not replicated", "workload", k.Workload, "err", err)
		return
	}
	w.r.enqueue(data)
}

func (w *statsWrapper) BackendStats() sweep.BackendStats {
	var bs sweep.BackendStats
	if sr, ok := w.inner.(sweep.StatsReporter); ok {
		bs = sr.BackendStats()
	}
	rs := w.r.Stats()
	bs.Replication = &rs
	return bs
}
