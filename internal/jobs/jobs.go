// Package jobs tracks the lifecycle of asynchronous compute jobs: a
// registry of per-job state machines the serve layer exposes at
// GET /v1/jobs/{id} and cancels at DELETE /v1/jobs/{id}.
//
// A job moves through
//
//	queued → admitted → capturing/replaying → simulating → stored
//	       → done | failed | cancelled
//
// with the middle states derived from the existing obs span
// instrumentation (ObserveSpan maps span starts/ends to states), so the
// simulator, trace cache and store report progress without knowing jobs
// exist. Terminal states latch: a cancellation that races a completion is
// decided by whichever lands first, and the loser is ignored.
package jobs

import (
	"context"
	"sync"
	"time"

	"dcbench/internal/obs"
)

// State is one position in the job lifecycle.
type State string

const (
	StateQueued     State = "queued"     // accepted, waiting for an admission slot
	StateAdmitted   State = "admitted"   // holds a slot, work not yet phase-attributed
	StateCapturing  State = "capturing"  // generating the workload's instruction trace
	StateReplaying  State = "replaying"  // simulating from a cached trace
	StateSimulating State = "simulating" // simulating (live trace or cluster run)
	StateStored     State = "stored"     // result written through to the store
	StateDone       State = "done"       // terminal: result available
	StateFailed     State = "failed"     // terminal: Error() explains
	StateCancelled  State = "cancelled"  // terminal: cancelled by DELETE or disconnect
)

// Terminal reports whether s ends the lifecycle.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Transition is one recorded state change.
type Transition struct {
	State State     `json:"state"`
	At    time.Time `json:"at"`
}

// Snapshot is a job's externally visible state — the JSON body of
// GET /v1/jobs/{id}.
type Snapshot struct {
	ID   string `json:"id"`
	Kind string `json:"kind"`
	// Tenant is the id of the tenant that submitted the job ("" for
	// anonymous submissions). The serve layer scopes job visibility to
	// it, so a snapshot only ever reaches its own tenant.
	Tenant  string    `json:"tenant,omitempty"`
	State   State     `json:"state"`
	Created time.Time `json:"created"`
	// DurMS is created → terminal transition for finished jobs, created →
	// now for running ones.
	DurMS   float64      `json:"dur_ms"`
	Error   string       `json:"error,omitempty"`
	History []Transition `json:"history"`
}

// Job is one tracked job. Create through Registry.New; all methods are
// safe for concurrent use.
type Job struct {
	id      string
	kind    string
	tenant  string
	created time.Time
	cancel  context.CancelFunc

	mu       sync.Mutex
	state    State
	history  []Transition
	errMsg   string
	result   []byte
	finished time.Time
	subs     map[chan struct{}]struct{}
}

// ID returns the job's identifier (also its obs trace ID).
func (j *Job) ID() string { return j.id }

// Kind returns the job's wire kind ("counters", "cluster").
func (j *Job) Kind() string { return j.kind }

// Tenant returns the id of the tenant that submitted the job ("" for
// anonymous submissions).
func (j *Job) Tenant() string { return j.tenant }

// SetState records a state transition. Repeats of the current state and
// any transition after a terminal state are ignored, so span-derived
// progress can never resurrect a cancelled or completed job.
func (j *Job) SetState(s State) {
	j.mu.Lock()
	j.setStateLocked(s)
	j.mu.Unlock()
}

func (j *Job) setStateLocked(s State) {
	if j.state == s || j.state.Terminal() {
		return
	}
	j.state = s
	now := time.Now()
	j.history = append(j.history, Transition{State: s, At: now})
	if s.Terminal() {
		j.finished = now
		if j.cancel != nil {
			// A finished job releases its context either way: Complete/Fail
			// free the resources, Cancel stops the work.
			j.cancel()
		}
	}
	for ch := range j.subs {
		select {
		case ch <- struct{}{}:
		default: // subscriber already has a pending wakeup
		}
	}
}

// Complete marks the job done with its result record (no-op once
// terminal).
func (j *Job) Complete(result []byte) {
	j.mu.Lock()
	if !j.state.Terminal() {
		j.result = result
	}
	j.setStateLocked(StateDone)
	j.mu.Unlock()
}

// Fail marks the job failed (no-op once terminal).
func (j *Job) Fail(msg string) {
	j.mu.Lock()
	if !j.state.Terminal() {
		j.errMsg = msg
	}
	j.setStateLocked(StateFailed)
	j.mu.Unlock()
}

// Cancel moves the job to cancelled and cancels its run context. It
// reports whether this call won — false when the job was already
// terminal.
func (j *Job) Cancel() bool {
	j.mu.Lock()
	won := !j.state.Terminal()
	j.setStateLocked(StateCancelled)
	j.mu.Unlock()
	return won
}

// Result returns the finished job's record bytes; ok is false unless the
// job is done.
func (j *Job) Result() (body []byte, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone {
		return nil, false
	}
	return j.result, true
}

// State returns the job's current state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Snapshot returns the job's externally visible state. The history slice
// is a copy — safe to encode after the lock is gone.
func (j *Job) Snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snapshotLocked()
}

func (j *Job) snapshotLocked() Snapshot {
	end := j.finished
	if end.IsZero() {
		end = time.Now()
	}
	return Snapshot{
		ID:      j.id,
		Kind:    j.kind,
		Tenant:  j.tenant,
		State:   j.state,
		Created: j.created,
		DurMS:   float64(end.Sub(j.created).Nanoseconds()) / 1e6,
		Error:   j.errMsg,
		History: append([]Transition(nil), j.history...),
	}
}

// Subscribe returns the job's snapshot so far plus a wakeup channel that
// receives (with collapsing: one pending wakeup at most) after every
// subsequent transition, and a stop function releasing the subscription.
// The SSE handler's pattern: send snap.History, then on each wakeup
// re-Snapshot and send the transitions beyond the last index seen.
func (j *Job) Subscribe() (snap Snapshot, wake <-chan struct{}, stop func()) {
	ch := make(chan struct{}, 1)
	j.mu.Lock()
	if j.subs == nil {
		j.subs = make(map[chan struct{}]struct{})
	}
	j.subs[ch] = struct{}{}
	snap = j.snapshotLocked()
	j.mu.Unlock()
	return snap, ch, func() {
		j.mu.Lock()
		delete(j.subs, ch)
		j.mu.Unlock()
	}
}

// ObserveSpan derives lifecycle states from the job's obs span stream —
// the obs.Trace.OnSpan hook. Phase spans mark their state when they open
// (a long simulation is "simulating" while it runs, not after); the
// admission span marks admitted when it closes un-shed, and a store write
// marks stored when it completes.
func (j *Job) ObserveSpan(ev obs.SpanEvent) {
	if ev.End {
		switch ev.Name {
		case "admission":
			if ev.Attrs["shed"] == "false" {
				j.SetState(StateAdmitted)
			}
		case "backend.store", "store.write":
			j.SetState(StateStored)
		}
		return
	}
	switch ev.Name {
	case "trace.capture":
		j.SetState(StateCapturing)
	case "simulate":
		if ev.Attrs["source"] == "replay" {
			j.SetState(StateReplaying)
		} else {
			j.SetState(StateSimulating)
		}
	case "cluster.run":
		j.SetState(StateSimulating)
	}
}

// Registry is the process-wide table of tracked jobs, bounded by evicting
// the oldest terminal jobs once it grows past its cap (active jobs are
// never evicted). Safe for concurrent use.
type Registry struct {
	cap int

	mu    sync.Mutex
	jobs  map[string]*Job
	order []*Job // creation order, for eviction
}

// DefaultCap is how many jobs a Registry retains when the caller does not
// say otherwise: enough history for a polling client to find a finished
// job minutes later without letting the table grow without bound.
const DefaultCap = 1024

// NewRegistry returns an empty registry keeping at most cap jobs
// (cap <= 0 uses DefaultCap).
func NewRegistry(cap int) *Registry {
	if cap <= 0 {
		cap = DefaultCap
	}
	return &Registry{cap: cap, jobs: make(map[string]*Job)}
}

// New creates, registers and returns a job in state queued. id should be
// the job's obs trace ID so one identifier names both the job and its
// timeline; tenant ("" for anonymous) is the submitting tenant's id, the
// scope the serve layer restricts the job's visibility to; cancel (may
// be nil) is invoked when the job is cancelled or finishes.
func (r *Registry) New(id, kind, tenant string, cancel context.CancelFunc) *Job {
	now := time.Now()
	j := &Job{id: id, kind: kind, tenant: tenant, created: now, cancel: cancel,
		state:   StateQueued,
		history: []Transition{{State: StateQueued, At: now}},
	}
	r.mu.Lock()
	r.jobs[id] = j
	r.order = append(r.order, j)
	if len(r.order) > r.cap {
		r.evictLocked()
	}
	r.mu.Unlock()
	return j
}

// evictLocked drops the oldest terminal jobs until the registry fits its
// cap (or only active jobs remain).
func (r *Registry) evictLocked() {
	kept := r.order[:0]
	excess := len(r.order) - r.cap
	for _, j := range r.order {
		if excess > 0 && j.State().Terminal() {
			delete(r.jobs, j.id)
			excess--
			continue
		}
		kept = append(kept, j)
	}
	r.order = kept
}

// Get returns the job with the given id.
func (r *Registry) Get(id string) (*Job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	return j, ok
}

// Jobs returns every tracked job in creation order.
func (r *Registry) Jobs() []*Job {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Job(nil), r.order...)
}

// Active counts tracked jobs not yet in a terminal state.
func (r *Registry) Active() int {
	r.mu.Lock()
	order := append([]*Job(nil), r.order...)
	r.mu.Unlock()
	n := 0
	for _, j := range order {
		if !j.State().Terminal() {
			n++
		}
	}
	return n
}
