package jobs

import (
	"context"
	"fmt"
	"testing"

	"dcbench/internal/obs"
)

// TestLifecycleLatching: progress states accumulate in history, terminal
// states latch, and the loser of a cancel/complete race is ignored.
func TestLifecycleLatching(t *testing.T) {
	r := NewRegistry(0)
	j := r.New("id1", "counters", "", nil)
	if j.State() != StateQueued {
		t.Fatalf("new job state = %q, want queued", j.State())
	}
	j.SetState(StateAdmitted)
	j.SetState(StateAdmitted) // repeat: no history entry
	j.SetState(StateSimulating)
	j.Complete([]byte("rec"))
	if j.State() != StateDone {
		t.Fatalf("state = %q, want done", j.State())
	}
	if body, ok := j.Result(); !ok || string(body) != "rec" {
		t.Fatalf("Result = %q, %v", body, ok)
	}

	// Terminal latched: neither progress nor a late cancel can move it.
	j.SetState(StateStored)
	if won := j.Cancel(); won {
		t.Fatal("Cancel won against an already-done job")
	}
	if j.State() != StateDone {
		t.Fatalf("post-latch state = %q, want done", j.State())
	}

	snap := j.Snapshot()
	want := []State{StateQueued, StateAdmitted, StateSimulating, StateDone}
	if len(snap.History) != len(want) {
		t.Fatalf("history = %+v, want states %v", snap.History, want)
	}
	for i, tr := range snap.History {
		if tr.State != want[i] {
			t.Fatalf("history[%d] = %q, want %q", i, tr.State, want[i])
		}
	}
}

// TestCancelFiresContext: Cancel latches the state and cancels the job's
// run context; Complete/Fail release it too.
func TestCancelFiresContext(t *testing.T) {
	r := NewRegistry(0)
	ctx, cancel := context.WithCancel(context.Background())
	j := r.New("id1", "counters", "", cancel)
	if won := j.Cancel(); !won {
		t.Fatal("first Cancel lost")
	}
	select {
	case <-ctx.Done():
	default:
		t.Fatal("Cancel did not cancel the job's context")
	}
	if _, ok := j.Result(); ok {
		t.Fatal("cancelled job reported a result")
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	j2 := r.New("id2", "cluster", "", cancel2)
	j2.Fail("boom")
	if j2.State() != StateFailed || j2.Snapshot().Error != "boom" {
		t.Fatalf("failed job snapshot = %+v", j2.Snapshot())
	}
	select {
	case <-ctx2.Done():
	default:
		t.Fatal("Fail did not release the job's context")
	}
}

// TestSubscribe: the wakeup channel fires (collapsed) on transitions and
// the snapshot+index protocol recovers every transition exactly once.
func TestSubscribe(t *testing.T) {
	r := NewRegistry(0)
	j := r.New("id1", "counters", "", nil)
	j.SetState(StateAdmitted)

	snap, wake, stop := j.Subscribe()
	defer stop()
	seen := append([]Transition(nil), snap.History...)

	j.SetState(StateSimulating)
	j.Complete(nil)
	// Two transitions, possibly one collapsed wakeup: drain until terminal.
	for !seen[len(seen)-1].State.Terminal() {
		select {
		case <-wake:
			cur := j.Snapshot()
			seen = append(seen, cur.History[len(seen):]...)
		default:
			t.Fatalf("no wakeup pending with history at %d/%d", len(seen), len(j.Snapshot().History))
		}
	}
	want := []State{StateQueued, StateAdmitted, StateSimulating, StateDone}
	for i, tr := range seen {
		if tr.State != want[i] {
			t.Fatalf("transition %d = %q, want %q", i, tr.State, want[i])
		}
	}
}

// TestObserveSpanMapping: the span stream drives exactly the documented
// states — phase spans at start, admission and store writes at end.
func TestObserveSpanMapping(t *testing.T) {
	cases := []struct {
		ev   obs.SpanEvent
		want State
	}{
		{obs.SpanEvent{Name: "trace.capture"}, StateCapturing},
		{obs.SpanEvent{Name: "simulate", Attrs: obs.Attrs{"source": "replay"}}, StateReplaying},
		{obs.SpanEvent{Name: "simulate", Attrs: obs.Attrs{"source": "live"}}, StateSimulating},
		{obs.SpanEvent{Name: "cluster.run"}, StateSimulating},
		{obs.SpanEvent{Name: "admission", Attrs: obs.Attrs{"shed": "false"}, End: true}, StateAdmitted},
		{obs.SpanEvent{Name: "backend.store", End: true}, StateStored},
		{obs.SpanEvent{Name: "store.write", End: true}, StateStored},
	}
	r := NewRegistry(0)
	for i, tc := range cases {
		j := r.New(fmt.Sprintf("id%d", i), "counters", "", nil)
		j.ObserveSpan(tc.ev)
		if got := j.State(); got != tc.want {
			t.Errorf("span %q (end=%v) drove state %q, want %q", tc.ev.Name, tc.ev.End, got, tc.want)
		}
	}

	// Non-states: a shed admission and span starts that mean nothing.
	j := r.New("noop", "counters", "", nil)
	j.ObserveSpan(obs.SpanEvent{Name: "admission", Attrs: obs.Attrs{"shed": "true"}, End: true})
	j.ObserveSpan(obs.SpanEvent{Name: "admission"})
	j.ObserveSpan(obs.SpanEvent{Name: "render"})
	if got := j.State(); got != StateQueued {
		t.Errorf("unrelated spans drove state %q, want queued", got)
	}
}

// TestRegistryEviction: past the cap the oldest TERMINAL jobs are evicted;
// active jobs are never dropped, even when that overshoots the cap.
func TestRegistryEviction(t *testing.T) {
	r := NewRegistry(3)
	a := r.New("a", "counters", "", nil)
	b := r.New("b", "counters", "", nil)
	a.Complete(nil)
	r.New("c", "counters", "", nil)
	r.New("d", "counters", "", nil) // over cap: evicts a (terminal), keeps actives
	if _, ok := r.Get("a"); ok {
		t.Fatal("oldest terminal job survived eviction")
	}
	for _, id := range []string{"b", "c", "d"} {
		if _, ok := r.Get(id); !ok {
			t.Fatalf("job %q missing", id)
		}
	}
	if got := r.Active(); got != 3 {
		t.Fatalf("Active = %d, want 3", got)
	}

	// All actives: the registry overshoots rather than dropping live jobs.
	r.New("e", "counters", "", nil)
	if len(r.Jobs()) != 4 {
		t.Fatalf("registry dropped an active job: %d tracked, want 4", len(r.Jobs()))
	}
	_ = b
}
