package uarch

import (
	"testing"
	"testing/quick"

	"dcbench/internal/memtrace"
)

// randomTrace generates a mixed workload trace from a seed for property
// testing the core model's counter invariants.
func randomTrace(seed uint64, n int64) memtrace.Reader {
	p := memtrace.Profile{
		Seed:      seed,
		MaxInstrs: n,
		CodeKB:    int(64 + seed%512),
		HotCodeKB: int(8 + seed%32),
		ColdJumpP: float64(seed%10) / 50,
	}
	if seed%3 == 0 {
		p.FrameworkEvery = 400
		p.FrameworkInstrs = 80
		p.HeapMB = 4
	}
	return memtrace.NewReader(p, func(tr *memtrace.Tracer) {
		rng := tr.RNG()
		data := tr.Alloc(int64(1+seed%64) << 20)
		size := uint64(1+seed%64) << 20
		var pos uint64
		for i := 0; ; i++ {
			switch i % 5 {
			case 0:
				tr.Load(data + pos%size)
				pos += 64
			case 1:
				tr.Store(data + rng.Uint64()%size&^7)
			case 2:
				tr.ALU(3)
			case 3:
				tr.BranchSite(i%7, rng.Float64() < 0.7)
			case 4:
				if i%64 == 4 {
					tr.Syscall(60, 512)
				} else {
					tr.FPU(2)
				}
			}
		}
	})
}

// TestCounterInvariants checks structural relations that must hold for any
// trace whatsoever.
func TestCounterInvariants(t *testing.T) {
	check := func(seed uint64) bool {
		cfg := DefaultConfig()
		c := NewCore(cfg).Run(randomTrace(seed, 120_000))

		// Instruction accounting.
		if c.Instructions != 120_000 || c.KernelInstructions > c.Instructions {
			return false
		}
		// A 4-wide machine cannot beat 4 IPC.
		if c.IPC() <= 0 || c.IPC() > 4 {
			return false
		}
		// Cache hierarchy flow: the L3 sees exactly the L2's misses, and
		// the L2 sees the L1 misses (I-side prefetches included).
		if c.L3Accesses != c.L2Misses {
			return false
		}
		if c.L2Accesses < c.L1DMisses || c.L2Accesses < c.L1IMisses {
			return false
		}
		if c.L1IMisses > c.L1IAccesses || c.L2Misses > c.L2Accesses ||
			c.L3Misses > c.L3Accesses || c.L1DMisses > c.L1DAccesses {
			return false
		}
		// Branch accounting.
		if c.BranchMispredicts > c.Branches || c.Branches > c.Instructions {
			return false
		}
		// Stall counters are cycle counts: non-negative.
		for _, s := range []int64{c.FetchStall, c.RATStall, c.LoadBufStall,
			c.StoreBufStall, c.RSStall, c.ROBStall} {
			if s < 0 {
				return false
			}
		}
		// Ratios in range.
		if r := c.L3HitRatio(); r < 0 || r > 1 {
			return false
		}
		if r := c.BranchMispredictRatio(); r < 0 || r > 1 {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestWarmupSubtraction: with warmup, measured instructions equal the
// post-warmup count and rates reflect steady state (no cold-start misses).
func TestWarmupSubtraction(t *testing.T) {
	gen := func(tr *memtrace.Tracer) {
		a := tr.Alloc(1 << 20) // 1 MB: cold misses then steady hits in L3
		for {
			for i := uint64(0); i < (1<<20)/64; i++ {
				tr.Load(a + i*64)
			}
		}
	}
	cold := DefaultConfig()
	coldC := NewCore(cold).Run(memtrace.NewReader(memtrace.Profile{Seed: 3, MaxInstrs: 400_000}, gen))

	warm := DefaultConfig()
	warm.Warmup = 200_000
	warmC := NewCore(warm).Run(memtrace.NewReader(memtrace.Profile{Seed: 3, MaxInstrs: 400_000}, gen))

	if warmC.Instructions != 200_000 {
		t.Fatalf("measured instructions = %d, want 200000", warmC.Instructions)
	}
	// Steady state must show a better L3 hit ratio than the cold run that
	// includes compulsory misses.
	if warmC.L3HitRatio() <= coldC.L3HitRatio() {
		t.Fatalf("warmup did not improve L3 hit ratio: %v vs %v",
			warmC.L3HitRatio(), coldC.L3HitRatio())
	}
	if warmC.Cycles <= 0 || warmC.Cycles >= coldC.Cycles {
		t.Fatalf("warm cycles %d vs cold %d", warmC.Cycles, coldC.Cycles)
	}
}

// TestSmallerROBLowersIPC: structural resources must matter monotonically.
func TestSmallerROBLowersIPC(t *testing.T) {
	gen := func(tr *memtrace.Tracer) {
		a := tr.Alloc(64 << 20)
		for {
			for i := uint64(0); i < 1<<19; i++ {
				tr.Load(a + i*64) // independent long-latency misses
				tr.ALU(2)
			}
		}
	}
	big := DefaultConfig()
	big.ROB = 256
	small := DefaultConfig()
	small.ROB = 16
	bigC := NewCore(big).Run(memtrace.NewReader(memtrace.Profile{Seed: 5, MaxInstrs: 150_000}, gen))
	smallC := NewCore(small).Run(memtrace.NewReader(memtrace.Profile{Seed: 5, MaxInstrs: 150_000}, gen))
	if smallC.IPC() >= bigC.IPC() {
		t.Fatalf("ROB 16 IPC %v >= ROB 256 IPC %v", smallC.IPC(), bigC.IPC())
	}
	if smallC.ROBStall <= bigC.ROBStall {
		t.Fatalf("ROB 16 stalls %d <= ROB 256 stalls %d", smallC.ROBStall, bigC.ROBStall)
	}
}

// TestRATPortPressure: three-source-heavy traces must show more RAT stall
// events than single-source traces.
func TestRATPortPressure(t *testing.T) {
	gen := func(tr *memtrace.Tracer) {
		for {
			tr.ALU(50)
		}
	}
	lean := memtrace.Profile{Seed: 6, MaxInstrs: 100_000, NSrc2P: 0.1, NSrc3P: 0.001}
	fat := memtrace.Profile{Seed: 6, MaxInstrs: 100_000, NSrc2P: 0.3, NSrc3P: 0.6}
	leanC := NewCore(DefaultConfig()).Run(memtrace.NewReader(lean, gen))
	fatC := NewCore(DefaultConfig()).Run(memtrace.NewReader(fat, gen))
	if fatC.RATStall <= leanC.RATStall*2 {
		t.Fatalf("RAT stalls: fat %d vs lean %d, want >2x", fatC.RATStall, leanC.RATStall)
	}
}

// TestLargerL3CatchesMore: L3 sizing must monotonically improve the hit
// ratio for an L3-boundary working set.
func TestLargerL3CatchesMore(t *testing.T) {
	gen := func(tr *memtrace.Tracer) {
		a := tr.Alloc(8 << 20)
		for {
			for i := uint64(0); i < (8<<20)/64; i++ {
				tr.Load(a + i*64)
			}
		}
	}
	run := func(mb int) float64 {
		cfg := DefaultConfig()
		cfg.L3Size = mb << 20
		cfg.Warmup = 400_000
		c := NewCore(cfg).Run(memtrace.NewReader(memtrace.Profile{Seed: 7, MaxInstrs: 900_000}, gen))
		return c.L3HitRatio()
	}
	small, big := run(3), run(24)
	if big <= small {
		t.Fatalf("L3 24MB hit %v <= 3MB hit %v", big, small)
	}
}

// TestKernelCodePollutesICache: syscall-heavy traces must raise L1I misses
// relative to the same trace without syscalls (OS path pollution).
func TestKernelCodePollutesICache(t *testing.T) {
	withSys := func(tr *memtrace.Tracer) {
		for {
			tr.ALU(200)
			tr.Syscall(300, 4096)
		}
	}
	without := func(tr *memtrace.Tracer) {
		for {
			tr.ALU(200)
		}
	}
	p := memtrace.Profile{Seed: 8, MaxInstrs: 200_000, CodeKB: 48, HotCodeKB: 24, KernelKB: 512}
	a := NewCore(DefaultConfig()).Run(memtrace.NewReader(p, withSys))
	b := NewCore(DefaultConfig()).Run(memtrace.NewReader(p, without))
	if a.L1IMPKI() <= b.L1IMPKI() {
		t.Fatalf("syscalls did not pollute L1I: %v vs %v", a.L1IMPKI(), b.L1IMPKI())
	}
}
