package uarch

import (
	"reflect"
	"testing"

	"dcbench/internal/memtrace"
)

// TestRingCursorInvariants pins the wrap-around cursors that replaced the
// per-instruction modulo ring indexing: after any run, every cursor must
// equal the count of its ring's advances mod the ring length — exactly
// the index the old `%` computed — and the run must be deterministic.
// Geometries are deliberately odd-sized so a masking shortcut or an
// off-by-one in the wrap test cannot pass by accident.
func TestRingCursorInvariants(t *testing.T) {
	const n = 120_000
	for _, tc := range []struct {
		name string
		mut  func(*Config)
	}{
		{"default", func(*Config) {}},
		{"odd-rings", func(cfg *Config) {
			cfg.ROB = 97
			cfg.RS = 23
			cfg.LQ = 31
			cfg.SQ = 17
			cfg.MSHRs = 7
			cfg.IssueWidth = 5
		}},
		{"tiny-rings", func(cfg *Config) {
			cfg.ROB = 3
			cfg.RS = 2
			cfg.LQ = 2
			cfg.SQ = 2
			cfg.MSHRs = 1
			cfg.IssueWidth = 1
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mut(&cfg)

			trace := memtrace.Collect(randomTrace(9, n), n)
			var loads, stores int64
			for i := range trace {
				switch trace[i].Op {
				case memtrace.OpLoad:
					loads++
				case memtrace.OpStore:
					stores++
				}
			}

			c := NewCore(cfg)
			first := *c.Run(memtrace.NewSliceReader(trace))

			// Every-instruction rings advance once per instruction.
			if got, want := int64(c.robCur), c.idx%int64(cfg.ROB); got != want {
				t.Errorf("robCur = %d, want idx %% ROB = %d", got, want)
			}
			if got, want := int64(c.rsCur), c.idx%int64(cfg.RS); got != want {
				t.Errorf("rsCur = %d, want idx %% RS = %d", got, want)
			}
			if got, want := int64(c.winCur), c.idx%int64(cfg.IssueWidth); got != want {
				t.Errorf("winCur = %d, want idx %% IssueWidth = %d", got, want)
			}
			// Per-class rings advance once per load / store.
			if got, want := int64(c.lqCur), loads%int64(cfg.LQ); got != want {
				t.Errorf("lqCur = %d, want loads %% LQ = %d", got, want)
			}
			if got, want := int64(c.sqCur), stores%int64(cfg.SQ); got != want {
				t.Errorf("sqCur = %d, want stores %% SQ = %d", got, want)
			}
			// The MSHR ring advances once per L1D miss (loads and store
			// drains both walk dataAccess, which probes the L1D exactly
			// once per call).
			if got, want := int64(c.mshrCur), c.l1d.Misses%int64(cfg.MSHRs); got != want {
				t.Errorf("mshrCur = %d, want L1D misses %% MSHRs = %d", got, want)
			}
			if c.idx != n {
				t.Errorf("idx = %d, want %d", c.idx, n)
			}

			// Same trace, fresh core: bit-identical counters.
			second := *NewCore(cfg).Run(memtrace.NewSliceReader(trace))
			if !reflect.DeepEqual(first, second) {
				t.Errorf("repeat run diverges:\nfirst:  %+v\nsecond: %+v", first, second)
			}
		})
	}
}

// BenchmarkCoreStep measures the step loop itself — trace pre-collected,
// no generator in the timing — which is where the ring-cursor refactor
// and any future step batching land.
func BenchmarkCoreStep(b *testing.B) {
	const n = 200_000
	trace := memtrace.Collect(randomTrace(11, n), n)
	cfg := DefaultConfig()
	c := NewCore(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Reset(cfg)
		c.Run(memtrace.NewSliceReader(trace))
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(int64(b.N)*int64(len(trace))), "ns/instr")
}
