package bpred

import "testing"

func benchPredictor(b *testing.B, p Predictor) {
	b.Helper()
	x := uint64(88172645463325252)
	for i := 0; i < b.N; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		pc := 0x400000 + (x & 0x3FF0)
		taken := x&0x10000 != 0
		p.Predict(pc)
		p.Update(pc, taken)
	}
}

func BenchmarkGshare(b *testing.B)     { benchPredictor(b, NewGshare(14)) }
func BenchmarkBimodal(b *testing.B)    { benchPredictor(b, NewBimodal(14)) }
func BenchmarkTournament(b *testing.B) { benchPredictor(b, NewTournament(14)) }
