package bpred

import "testing"

func rate(p Predictor, pcs []uint64, outcomes []bool) float64 {
	wrong := 0
	for i, pc := range pcs {
		if p.Predict(pc) != outcomes[i] {
			wrong++
		}
		p.Update(pc, outcomes[i])
	}
	return float64(wrong) / float64(len(pcs))
}

func TestAlwaysTakenLearned(t *testing.T) {
	for _, p := range []Predictor{NewGshare(12), NewBimodal(12)} {
		pcs := make([]uint64, 10000)
		outs := make([]bool, 10000)
		for i := range pcs {
			pcs[i] = 0x400000
			outs[i] = true
		}
		if r := rate(p, pcs, outs); r > 0.01 {
			t.Fatalf("%s: always-taken mispredict rate %v", p.Name(), r)
		}
	}
}

func TestLoopPatternLearnedByGshare(t *testing.T) {
	// TTTN repeating: gshare with history resolves it; bimodal cannot
	// fully.
	mk := func() ([]uint64, []bool) {
		pcs := make([]uint64, 20000)
		outs := make([]bool, 20000)
		for i := range pcs {
			pcs[i] = 0x400100
			outs[i] = i%4 != 3
		}
		return pcs, outs
	}
	pcs, outs := mk()
	g := rate(NewGshare(12), pcs, outs)
	pcs, outs = mk()
	b := rate(NewBimodal(12), pcs, outs)
	if g > 0.02 {
		t.Fatalf("gshare failed the loop pattern: %v", g)
	}
	if b < g {
		t.Fatalf("bimodal (%v) should not beat gshare (%v) on patterned branches", b, g)
	}
}

func TestStaticPredictor(t *testing.T) {
	s := Static{}
	if s.Predict(0x1234) {
		t.Fatal("static-not-taken predicted taken")
	}
	s.Update(0x1234, true) // no-op, must not panic
}

func TestRandomBranchesNearChance(t *testing.T) {
	// An LCG-driven 50/50 branch should hover near 50% mispredicts for
	// any predictor (no pattern to learn).
	p := NewGshare(12)
	x := uint64(12345)
	wrong := 0
	n := 50000
	for i := 0; i < n; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		taken := x>>63 == 1
		if p.Predict(0x400200) != taken {
			wrong++
		}
		p.Update(0x400200, taken)
	}
	r := float64(wrong) / float64(n)
	if r < 0.4 || r > 0.6 {
		t.Fatalf("random-branch mispredict rate = %v, want ~0.5", r)
	}
}

func TestDistinctBranchesIsolatedInBimodal(t *testing.T) {
	b := NewBimodal(12)
	// Train pc1 taken, pc2 not-taken; they must not interfere.
	for i := 0; i < 100; i++ {
		b.Update(0x1000, true)
		b.Update(0x2000, false)
	}
	if !b.Predict(0x1000) || b.Predict(0x2000) {
		t.Fatal("bimodal entries interfered")
	}
}

func TestBTB(t *testing.T) {
	btb := NewBTB(8)
	if btb.Lookup(0x100, 0x500) {
		t.Fatal("cold BTB hit")
	}
	if !btb.Lookup(0x100, 0x500) {
		t.Fatal("warm BTB miss")
	}
	// Different target at the same pc is a miss (target changed).
	if btb.Lookup(0x100, 0x900) {
		t.Fatal("stale target treated as hit")
	}
	if btb.Hits != 1 || btb.Misses != 2 {
		t.Fatalf("counters = %d/%d", btb.Hits, btb.Misses)
	}
}
