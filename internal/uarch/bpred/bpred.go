// Package bpred implements the core model's branch direction predictors —
// gshare (the default, standing in for the Westmere predictor), bimodal and
// static-not-taken for the "would a simpler predictor do?" ablation the
// paper's Section IV-E suggests — plus a branch target buffer.
package bpred

// Predictor predicts conditional branch directions and learns outcomes.
type Predictor interface {
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc uint64) bool
	// Update trains the predictor with the actual outcome.
	Update(pc uint64, taken bool)
	// Name identifies the predictor in reports.
	Name() string
	// Reset clears all learned state, returning the predictor to its
	// just-constructed condition so a pooled core can be reused across
	// workloads without history leaking between runs.
	Reset()
}

// Gshare is a global-history predictor: 2-bit counters indexed by
// PC xor global history.
type Gshare struct {
	bits    uint
	mask    uint64
	history uint64
	table   []uint8
}

// NewGshare builds a gshare predictor with 2^bits counters.
func NewGshare(bits uint) *Gshare {
	return &Gshare{
		bits:  bits,
		mask:  (1 << bits) - 1,
		table: make([]uint8, 1<<bits),
	}
}

// Name implements Predictor.
func (g *Gshare) Name() string { return "gshare" }

func (g *Gshare) index(pc uint64) uint64 {
	return ((pc >> 2) ^ g.history) & g.mask
}

// Predict implements Predictor.
func (g *Gshare) Predict(pc uint64) bool {
	return g.table[g.index(pc)] >= 2
}

// Update implements Predictor.
func (g *Gshare) Update(pc uint64, taken bool) {
	i := g.index(pc)
	if taken {
		if g.table[i] < 3 {
			g.table[i]++
		}
	} else if g.table[i] > 0 {
		g.table[i]--
	}
	g.history = ((g.history << 1) | b2u(taken)) & g.mask
}

// Reset implements Predictor.
func (g *Gshare) Reset() {
	g.history = 0
	clear(g.table)
}

// Bimodal is a per-PC 2-bit counter table without global history.
type Bimodal struct {
	mask  uint64
	table []uint8
}

// NewBimodal builds a bimodal predictor with 2^bits counters.
func NewBimodal(bits uint) *Bimodal {
	return &Bimodal{mask: (1 << bits) - 1, table: make([]uint8, 1<<bits)}
}

// Name implements Predictor.
func (b *Bimodal) Name() string { return "bimodal" }

// Predict implements Predictor.
func (b *Bimodal) Predict(pc uint64) bool { return b.table[(pc>>2)&b.mask] >= 2 }

// Update implements Predictor.
func (b *Bimodal) Update(pc uint64, taken bool) {
	i := (pc >> 2) & b.mask
	if taken {
		if b.table[i] < 3 {
			b.table[i]++
		}
	} else if b.table[i] > 0 {
		b.table[i]--
	}
}

// Reset implements Predictor.
func (b *Bimodal) Reset() { clear(b.table) }

// Tournament combines a bimodal predictor (instant convergence on biased
// branches) with gshare (pattern capture) under a per-PC chooser, the
// structure of the hybrid predictors in Nehalem/Westmere-class cores.
type Tournament struct {
	bimodal *Bimodal
	gshare  *Gshare
	meta    []uint8 // 0-1: prefer bimodal, 2-3: prefer gshare
	mask    uint64
}

// NewTournament builds a tournament predictor with 2^bits entries per
// component.
func NewTournament(bits uint) *Tournament {
	return &Tournament{
		bimodal: NewBimodal(bits),
		gshare:  NewGshare(bits),
		meta:    make([]uint8, 1<<bits),
		mask:    (1 << bits) - 1,
	}
}

// Name implements Predictor.
func (t *Tournament) Name() string { return "tournament" }

// Predict implements Predictor.
func (t *Tournament) Predict(pc uint64) bool {
	if t.meta[(pc>>2)&t.mask] >= 2 {
		return t.gshare.Predict(pc)
	}
	return t.bimodal.Predict(pc)
}

// Update implements Predictor.
func (t *Tournament) Update(pc uint64, taken bool) {
	b := t.bimodal.Predict(pc)
	g := t.gshare.Predict(pc)
	i := (pc >> 2) & t.mask
	if b != g {
		if g == taken {
			if t.meta[i] < 3 {
				t.meta[i]++
			}
		} else if t.meta[i] > 0 {
			t.meta[i]--
		}
	}
	t.bimodal.Update(pc, taken)
	t.gshare.Update(pc, taken)
}

// Reset implements Predictor.
func (t *Tournament) Reset() {
	t.bimodal.Reset()
	t.gshare.Reset()
	clear(t.meta)
}

// Static always predicts not taken.
type Static struct{}

// Name implements Predictor.
func (Static) Name() string { return "static-not-taken" }

// Predict implements Predictor.
func (Static) Predict(uint64) bool { return false }

// Update implements Predictor.
func (Static) Update(uint64, bool) {}

// Reset implements Predictor.
func (Static) Reset() {}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// BTB is a direct-mapped branch target buffer: taken branches whose targets
// are absent cost a front-end redirect even when the direction was right.
type BTB struct {
	mask    uint64
	tags    []uint64
	targets []uint64

	Hits   int64
	Misses int64
}

// NewBTB builds a BTB with 2^bits entries.
func NewBTB(bits uint) *BTB {
	return &BTB{
		mask:    (1 << bits) - 1,
		tags:    make([]uint64, 1<<bits),
		targets: make([]uint64, 1<<bits),
	}
}

// Lookup checks whether pc's target is cached and correct.
func (b *BTB) Lookup(pc, target uint64) bool {
	i := (pc >> 2) & b.mask
	if b.tags[i] == pc+1 && b.targets[i] == target {
		b.Hits++
		return true
	}
	b.Misses++
	b.tags[i] = pc + 1
	b.targets[i] = target
	return false
}

// Reset clears all cached targets and counters.
func (b *BTB) Reset() {
	clear(b.tags)
	clear(b.targets)
	b.Hits = 0
	b.Misses = 0
}
