package uarch

import (
	"reflect"
	"testing"

	"dcbench/internal/memtrace"
	"dcbench/internal/uarch/bpred"
)

// resetTrace is a trace with enough variety to dirty every core structure:
// loads, stores, FPU ops, biased and data-dependent branches, syscalls, and
// a footprint past the L1/L2.
func resetTrace(seed uint64) (memtrace.Profile, func(*memtrace.Tracer)) {
	p := memtrace.Profile{Seed: seed, MaxInstrs: 150_000, CodeKB: 256, HotCodeKB: 16,
		HeapMB: 8, FPUShare: 0.1, ColdJumpP: 0.1}
	gen := func(t *memtrace.Tracer) {
		base := t.Alloc(6 << 20)
		var i uint64
		for {
			t.Load(base + (i*64)%(6<<20))
			if i%7 == 0 {
				t.Store(base + (i*192)%(6<<20))
			}
			t.BranchSite(3, i%5 != 0)
			if i%500 == 0 {
				t.Syscall(300, 4096)
			}
			i++
		}
	}
	return p, gen
}

// runFresh characterizes the trace on a brand-new core.
func runFresh(cfg Config, seed uint64) Counters {
	p, gen := resetTrace(seed)
	return *NewCore(cfg).Run(memtrace.NewReader(p, gen))
}

// TestResetLeavesNoState is the pooled-core contract: running trace B, then
// Reset, then trace A must give exactly the counters of trace A on a fresh
// core — no cache lines, TLB entries, predictor history or pipeline state
// may survive Reset.
func TestResetLeavesNoState(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Warmup = 20_000
	want := runFresh(cfg, 11)

	c := NewCore(cfg)
	pDirty, genDirty := resetTrace(99) // different seed: different trace
	c.Run(memtrace.NewReader(pDirty, genDirty))
	c.Reset(cfg)
	p, gen := resetTrace(11)
	got := *c.Run(memtrace.NewReader(p, gen))

	if !reflect.DeepEqual(got, want) {
		t.Errorf("reset core diverges from fresh core\nfresh: %+v\nreset: %+v", want, got)
	}
}

// TestResetAcrossGeometryChange exercises the rebuild path: Reset into a
// different cache geometry must also match a fresh core of that geometry.
func TestResetAcrossGeometryChange(t *testing.T) {
	small := DefaultConfig()
	small.L3Size = 3 << 20
	small.Warmup = 10_000
	want := runFresh(small, 7)

	big := DefaultConfig()
	c := NewCore(big)
	pDirty, genDirty := resetTrace(42)
	c.Run(memtrace.NewReader(pDirty, genDirty))
	c.Reset(small)
	p, gen := resetTrace(7)
	got := *c.Run(memtrace.NewReader(p, gen))

	if !reflect.DeepEqual(got, want) {
		t.Errorf("geometry-change reset diverges from fresh core\nfresh: %+v\nreset: %+v", want, got)
	}
}

// TestResetRepeatedReuse recycles one core many times, as the sweep pool
// does, and demands every run match the first.
func TestResetRepeatedReuse(t *testing.T) {
	cfg := DefaultConfig()
	c := NewCore(cfg)
	p, gen := resetTrace(5)
	p.MaxInstrs = 60_000
	first := *c.Run(memtrace.NewReader(p, gen))
	for i := 0; i < 3; i++ {
		c.Reset(cfg)
		got := *c.Run(memtrace.NewReader(p, gen))
		if !reflect.DeepEqual(got, first) {
			t.Fatalf("reuse %d diverges from first run\nfirst: %+v\ngot:   %+v", i, first, got)
		}
	}
}

// TestResetExplicitPredictor: Reset with a supplied predictor must clear
// its learned state and use it.
func TestResetExplicitPredictor(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Predictor = bpred.NewBimodal(14)
	want := runFresh(cfg, 13)

	dirty := DefaultConfig() // default tournament
	c := NewCore(dirty)
	pDirty, genDirty := resetTrace(21)
	c.Run(memtrace.NewReader(pDirty, genDirty))

	reuse := DefaultConfig()
	reuse.Predictor = bpred.NewBimodal(14)
	c.Reset(reuse)
	p, gen := resetTrace(13)
	got := *c.Run(memtrace.NewReader(p, gen))
	if !reflect.DeepEqual(got, want) {
		t.Errorf("explicit-predictor reset diverges from fresh core\nfresh: %+v\nreset: %+v", want, got)
	}
}
