package uarch

import (
	"testing"

	"dcbench/internal/memtrace"
	"dcbench/internal/uarch/bpred"
)

// run generates a trace from gen and simulates it.
func run(t *testing.T, p memtrace.Profile, gen func(tr *memtrace.Tracer)) *Counters {
	t.Helper()
	core := NewCore(DefaultConfig())
	return core.Run(memtrace.NewReader(p, gen))
}

func TestIPCBounds(t *testing.T) {
	c := run(t, memtrace.Profile{MaxInstrs: 200000}, func(tr *memtrace.Tracer) {
		a := tr.Alloc(8 << 10) // cache-resident
		for {
			for i := uint64(0); i < 64; i++ {
				tr.Load(a + i*64)
			}
		}
	})
	ipc := c.IPC()
	if ipc <= 0.3 || ipc > 4 {
		t.Fatalf("IPC = %v, want in (0.3, 4]", ipc)
	}
	if c.Instructions != 200000 {
		t.Fatalf("instructions = %d", c.Instructions)
	}
}

func TestCacheResidentBeatsThrashing(t *testing.T) {
	small := run(t, memtrace.Profile{Seed: 1, MaxInstrs: 300000}, func(tr *memtrace.Tracer) {
		a := tr.Alloc(16 << 10)
		for {
			for i := uint64(0); i < 256; i++ {
				tr.Load(a + i*64)
			}
		}
	})
	big := run(t, memtrace.Profile{Seed: 1, MaxInstrs: 300000}, func(tr *memtrace.Tracer) {
		a := tr.Alloc(64 << 20) // far beyond L3
		for {
			for i := uint64(0); i < 1<<20; i++ {
				tr.Load(a + i*64)
			}
		}
	})
	if small.IPC() <= big.IPC() {
		t.Fatalf("thrashing IPC %v >= resident IPC %v", big.IPC(), small.IPC())
	}
	if big.L2MPKI() <= small.L2MPKI() {
		t.Fatalf("L2 MPKI ordering wrong: %v vs %v", big.L2MPKI(), small.L2MPKI())
	}
	// The memory-bound loop must show back-end stalls dominated by
	// load-related resources.
	if big.LoadBufStall+big.RSStall+big.ROBStall == 0 {
		t.Fatal("no back-end stalls on a memory-bound loop")
	}
}

func TestDependencyChainsLowerIPC(t *testing.T) {
	chain := run(t, memtrace.Profile{Seed: 2, MaxInstrs: 200000, ChainProb: 0.99}, func(tr *memtrace.Tracer) {
		for {
			tr.ALU(100)
		}
	})
	parallel := run(t, memtrace.Profile{Seed: 2, MaxInstrs: 200000, ChainProb: 0.01}, func(tr *memtrace.Tracer) {
		for {
			tr.ALU(100)
		}
	})
	if chain.IPC() >= parallel.IPC() {
		t.Fatalf("chained IPC %v >= parallel IPC %v", chain.IPC(), parallel.IPC())
	}
}

func TestBigCodeFootprintRaisesL1IMPKI(t *testing.T) {
	smallCode := run(t, memtrace.Profile{Seed: 3, MaxInstrs: 300000, CodeKB: 16, HotCodeKB: 16},
		func(tr *memtrace.Tracer) {
			for {
				tr.ALU(100)
			}
		})
	bigCode := run(t, memtrace.Profile{Seed: 3, MaxInstrs: 300000, CodeKB: 2048, HotCodeKB: 512, ColdJumpP: 0.5},
		func(tr *memtrace.Tracer) {
			for {
				tr.ALU(100)
			}
		})
	if smallCode.L1IMPKI() > 1 {
		t.Fatalf("small code L1I MPKI = %v, want ~0", smallCode.L1IMPKI())
	}
	if bigCode.L1IMPKI() < 5 {
		t.Fatalf("big code L1I MPKI = %v, want >= 5", bigCode.L1IMPKI())
	}
	if bigCode.ITLBWalksPKI() <= smallCode.ITLBWalksPKI() {
		t.Fatalf("ITLB walks ordering wrong: %v vs %v",
			bigCode.ITLBWalksPKI(), smallCode.ITLBWalksPKI())
	}
	if bigCode.FetchStall <= smallCode.FetchStall {
		t.Fatal("big code did not raise fetch stalls")
	}
}

func TestRandomBranchesRaiseMispredictsAndStalls(t *testing.T) {
	regular := run(t, memtrace.Profile{Seed: 4, MaxInstrs: 200000}, func(tr *memtrace.Tracer) {
		for i := 0; ; i++ {
			tr.ALU(5)
			tr.Branch(i%8 != 7) // loop-like, predictable
		}
	})
	random := run(t, memtrace.Profile{Seed: 4, MaxInstrs: 200000}, func(tr *memtrace.Tracer) {
		for {
			tr.ALU(5)
			tr.Branch(tr.RNG().Float64() < 0.5)
		}
	})
	// The loop pattern is spread across many PCs by the code walk, so it
	// does not reach the near-zero rate of a single-PC loop — but it must
	// stay far below the random case.
	if regular.BranchMispredictRatio() > 0.15 {
		t.Fatalf("regular branches mispredict at %v", regular.BranchMispredictRatio())
	}
	// Half the dynamic branches are predictable block-end jumps, so the
	// overall ratio sits near half the 50% data-branch rate.
	if random.BranchMispredictRatio() < 0.2 {
		t.Fatalf("random branches mispredict at %v, want >= 0.2", random.BranchMispredictRatio())
	}
	if random.BranchMispredictRatio() < 2*regular.BranchMispredictRatio() {
		t.Fatalf("random (%v) should mispredict far more than regular (%v)",
			random.BranchMispredictRatio(), regular.BranchMispredictRatio())
	}
	if random.IPC() >= regular.IPC() {
		t.Fatalf("mispredict-heavy IPC %v >= regular %v", random.IPC(), regular.IPC())
	}
}

func TestDTLBWalksScaleWithDataFootprint(t *testing.T) {
	smallData := run(t, memtrace.Profile{Seed: 5, MaxInstrs: 200000}, func(tr *memtrace.Tracer) {
		a := tr.Alloc(64 << 10) // 16 pages: fits the DTLB
		for {
			for i := uint64(0); i < 1024; i++ {
				tr.Load(a + i*64)
			}
		}
	})
	bigData := run(t, memtrace.Profile{Seed: 5, MaxInstrs: 200000}, func(tr *memtrace.Tracer) {
		a := tr.Alloc(256 << 20)
		for {
			// Page-stride random-ish walk over 256 MB.
			for i := uint64(0); i < 4096; i++ {
				tr.Load(a + (i*2654435761%65536)*4096)
			}
		}
	})
	if smallData.DTLBWalksPKI() > 0.1 {
		t.Fatalf("small data DTLB walks = %v, want ~0", smallData.DTLBWalksPKI())
	}
	if bigData.DTLBWalksPKI() < 1 {
		t.Fatalf("big data DTLB walks = %v, want >= 1", bigData.DTLBWalksPKI())
	}
}

func TestL3CatchesModerateWorkingSet(t *testing.T) {
	// A 2 MB working set misses L2 (256 KB) but fits L3 (12 MB). The trace
	// is long enough that warm passes dominate the cold one.
	c := run(t, memtrace.Profile{Seed: 6, MaxInstrs: 1000000}, func(tr *memtrace.Tracer) {
		a := tr.Alloc(2 << 20)
		for {
			for i := uint64(0); i < (2<<20)/64; i++ {
				tr.Load(a + i*64)
			}
		}
	})
	if c.L2MPKI() < 1 {
		t.Fatalf("L2 MPKI = %v, want noticeable misses", c.L2MPKI())
	}
	if r := c.L3HitRatio(); r < 0.8 {
		t.Fatalf("L3 hit ratio = %v, want >= 0.8 for an L3-resident set", r)
	}
}

func TestKernelInstructionAccounting(t *testing.T) {
	c := run(t, memtrace.Profile{Seed: 7, MaxInstrs: 100000}, func(tr *memtrace.Tracer) {
		for {
			tr.ALU(300)
			tr.Syscall(100, 8192)
		}
	})
	share := c.KernelShare()
	if share < 0.1 || share > 0.6 {
		t.Fatalf("kernel share = %v, want moderate", share)
	}
}

func TestStallBreakdownNormalised(t *testing.T) {
	c := run(t, memtrace.Profile{Seed: 8, MaxInstrs: 100000}, func(tr *memtrace.Tracer) {
		a := tr.Alloc(64 << 20)
		for {
			for i := uint64(0); i < 1<<18; i++ {
				tr.Load(a + i*64)
				tr.Branch(i%2 == 0)
			}
		}
	})
	b := c.StallBreakdown()
	sum := 0.0
	for _, v := range b {
		if v < 0 || v > 1 {
			t.Fatalf("stall share out of range: %v", b)
		}
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("stall shares sum to %v", sum)
	}
}

func TestPredictorSwapChangesMispredicts(t *testing.T) {
	gen := func(tr *memtrace.Tracer) {
		for i := 0; ; i++ {
			tr.ALU(3)
			tr.Branch(i%4 != 3) // TTTN pattern: gshare learns, static cannot
		}
	}
	cfgG := DefaultConfig()
	gCore := NewCore(cfgG)
	g := gCore.Run(memtrace.NewReader(memtrace.Profile{Seed: 9, MaxInstrs: 150000}, gen))

	cfgS := DefaultConfig()
	cfgS.Predictor = bpred.Static{}
	sCore := NewCore(cfgS)
	s := sCore.Run(memtrace.NewReader(memtrace.Profile{Seed: 9, MaxInstrs: 150000}, gen))

	if g.BranchMispredictRatio() >= s.BranchMispredictRatio() {
		t.Fatalf("gshare (%v) should beat static (%v) on patterned branches",
			g.BranchMispredictRatio(), s.BranchMispredictRatio())
	}
}

func TestMemGapThrottlesStreaming(t *testing.T) {
	gen := func(tr *memtrace.Tracer) {
		a := tr.Alloc(256 << 20)
		for {
			for i := uint64(0); i < 1<<21; i++ {
				tr.Load(a + i*64)
			}
		}
	}
	fast := DefaultConfig()
	fast.MemGap = 1
	slow := DefaultConfig()
	slow.MemGap = 50
	f := NewCore(fast).Run(memtrace.NewReader(memtrace.Profile{Seed: 10, MaxInstrs: 150000}, gen))
	s := NewCore(slow).Run(memtrace.NewReader(memtrace.Profile{Seed: 10, MaxInstrs: 150000}, gen))
	if s.IPC() >= f.IPC() {
		t.Fatalf("low-bandwidth IPC %v >= high-bandwidth IPC %v", s.IPC(), f.IPC())
	}
}
