// Package uarch is a trace-driven timing model of a modern superscalar
// out-of-order core — the paper's Xeon E5645 (Westmere, Table III) — with
// software performance counters standing in for the hardware MSRs the paper
// reads with perf.
//
// The model processes the instruction trace in program order, computing for
// every instruction its fetch, rename, dispatch, issue, completion and
// commit times under the structural constraints of the pipeline: fetch
// width and L1I/ITLB latency in the front end, rename width and register
// read ports at the RAT, and ROB / reservation station / load buffer /
// store buffer occupancy at dispatch, with issue width, operand
// dependencies, cache/TLB latencies, MSHR-limited memory-level parallelism
// and DRAM bandwidth in the back end. Blocked cycles are attributed to the
// limiting resource, reproducing the paper's stall breakdown methodology
// (Section III-D, Figure 6): stalls that overlap are counted per source,
// exactly as the hardware counters do.
package uarch

import (
	"encoding/binary"
	"hash/fnv"

	"dcbench/internal/memtrace"
	"dcbench/internal/uarch/bpred"
	"dcbench/internal/uarch/cache"
	"dcbench/internal/uarch/mmu"
)

// Config is the core's structural description. DefaultConfig matches the
// paper's Table III.
type Config struct {
	FetchWidth      int
	RenameWidth     int
	RenameReadPorts int
	IssueWidth      int
	CommitWidth     int

	ROB int
	RS  int
	LQ  int
	SQ  int

	ALULat int
	FPULat int

	// Cache geometry: size bytes / ways, 64-byte lines.
	L1ISize, L1IWays int
	L1DSize, L1DWays int
	L2Size, L2Ways   int
	L3Size, L3Ways   int

	L1DLat, L2Lat, L3Lat, MemLat int

	ITLBEntries, DTLBEntries, L2TLBEntries, TLBWays int
	TLBL2Lat, WalkLat                               int

	MSHRs  int
	MemGap int // minimum cycles between DRAM transfers (bandwidth)

	MispredictPenalty int
	BTBPenalty        int
	BTBBits           uint

	// Warmup discards the first N instructions from the counter file —
	// caches, TLBs and predictors stay warm but counters restart — the
	// ramp-up methodology of the paper's Section III-D.
	Warmup int64

	Predictor bpred.Predictor // defaults to a 14-bit tournament
}

// ModelVersion identifies the simulator's behaviour, not its API: bump it
// whenever a change makes any workload's Counters differ at a fixed seed
// and Config. It is hashed into every Fingerprint, so bumping it atomically
// invalidates the sweep memo tables, the on-disk result store and
// dcserved's ETags — without it, a deploy that changes results would keep
// serving pre-deploy bytes out of warm stores and 304 revalidations.
const ModelVersion = 1

// Fingerprint hashes every simulation-relevant Config field (plus the
// predictor's kind and the package ModelVersion) into a stable 64-bit key,
// so sweep caches and core pools can recognise equivalent configurations. For nil-Predictor configs,
// equal fingerprints produce identical simulations for identical traces;
// new Config fields must be folded in here. An explicit Predictor is
// hashed by Name() only — two instances of the same kind but different
// capacity or training collide — so predictor-carrying configs must not be
// used as cache keys (the sweep engine routes them around its memo and
// pools for exactly this reason).
func (cfg Config) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	// ModelVersion first: a simulator change invalidates every derived
	// cache (sweep memos, the persistent store, dcserved ETags) through
	// this one hash.
	binary.LittleEndian.PutUint64(buf[:], ModelVersion)
	h.Write(buf[:])
	put := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	for _, v := range []int{
		cfg.FetchWidth, cfg.RenameWidth, cfg.RenameReadPorts, cfg.IssueWidth,
		cfg.CommitWidth, cfg.ROB, cfg.RS, cfg.LQ, cfg.SQ, cfg.ALULat,
		cfg.FPULat, cfg.L1ISize, cfg.L1IWays, cfg.L1DSize, cfg.L1DWays,
		cfg.L2Size, cfg.L2Ways, cfg.L3Size, cfg.L3Ways, cfg.L1DLat, cfg.L2Lat,
		cfg.L3Lat, cfg.MemLat, cfg.ITLBEntries, cfg.DTLBEntries,
		cfg.L2TLBEntries, cfg.TLBWays, cfg.TLBL2Lat, cfg.WalkLat, cfg.MSHRs,
		cfg.MemGap, cfg.MispredictPenalty, cfg.BTBPenalty, int(cfg.BTBBits),
	} {
		put(int64(v))
	}
	put(cfg.Warmup)
	if cfg.Predictor != nil {
		h.Write([]byte(cfg.Predictor.Name()))
	}
	return h.Sum64()
}

// DefaultConfig returns the Table III machine: 4-wide Westmere-class core,
// 32 KB L1s, 256 KB L2, 12 MB L3, 64-entry L1 TLBs with a 512-entry L2 TLB.
func DefaultConfig() Config {
	return Config{
		FetchWidth:      4,
		RenameWidth:     4,
		RenameReadPorts: 6,
		IssueWidth:      6,
		CommitWidth:     4,
		ROB:             128,
		RS:              36,
		LQ:              48,
		SQ:              32,
		ALULat:          1,
		FPULat:          3,
		L1ISize:         32 << 10, L1IWays: 4,
		L1DSize: 32 << 10, L1DWays: 8,
		L2Size: 256 << 10, L2Ways: 8,
		L3Size: 12 << 20, L3Ways: 16,
		L1DLat: 4, L2Lat: 10, L3Lat: 38, MemLat: 180,
		ITLBEntries: 64, DTLBEntries: 64, L2TLBEntries: 512, TLBWays: 4,
		TLBL2Lat: 7, WalkLat: 120,
		MSHRs: 10, MemGap: 8,
		MispredictPenalty: 15,
		BTBPenalty:        6,
		BTBBits:           11,
	}
}

// Counters is the performance counter file after a run.
type Counters struct {
	Cycles             int64
	Instructions       int64
	KernelInstructions int64

	Branches          int64
	BranchMispredicts int64

	L1IAccesses, L1IMisses int64
	L1DAccesses, L1DMisses int64
	L2Accesses, L2Misses   int64
	L3Accesses, L3Misses   int64

	ITLBWalks, DTLBWalks int64

	// Stall cycle attribution (Figure 6 categories).
	FetchStall    int64
	RATStall      int64
	LoadBufStall  int64
	StoreBufStall int64
	RSStall       int64
	ROBStall      int64
}

// IPC returns instructions per cycle.
func (c *Counters) IPC() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.Instructions) / float64(c.Cycles)
}

// KernelShare returns the kernel-mode instruction fraction (Figure 4).
func (c *Counters) KernelShare() float64 {
	if c.Instructions == 0 {
		return 0
	}
	return float64(c.KernelInstructions) / float64(c.Instructions)
}

// PKI scales a counter to events per kilo-instruction.
func (c *Counters) PKI(events int64) float64 {
	if c.Instructions == 0 {
		return 0
	}
	return 1000 * float64(events) / float64(c.Instructions)
}

// L1IMPKI is Figure 7's metric.
func (c *Counters) L1IMPKI() float64 { return c.PKI(c.L1IMisses) }

// L2MPKI is Figure 9's metric.
func (c *Counters) L2MPKI() float64 { return c.PKI(c.L2Misses) }

// L3HitRatio is Figure 10's metric: the share of L2 misses that hit in L3.
func (c *Counters) L3HitRatio() float64 {
	if c.L3Accesses == 0 {
		return 0
	}
	return float64(c.L3Accesses-c.L3Misses) / float64(c.L3Accesses)
}

// ITLBWalksPKI is Figure 8's metric.
func (c *Counters) ITLBWalksPKI() float64 { return c.PKI(c.ITLBWalks) }

// DTLBWalksPKI is Figure 11's metric.
func (c *Counters) DTLBWalksPKI() float64 { return c.PKI(c.DTLBWalks) }

// BranchMispredictRatio is Figure 12's metric.
func (c *Counters) BranchMispredictRatio() float64 {
	if c.Branches == 0 {
		return 0
	}
	return float64(c.BranchMispredicts) / float64(c.Branches)
}

// StallBreakdown returns the six stall categories normalised to their sum,
// in Figure 6's order: fetch, RAT, load buffer, RS, store buffer, ROB.
func (c *Counters) StallBreakdown() [6]float64 {
	v := [6]int64{c.FetchStall, c.RATStall, c.LoadBufStall, c.RSStall, c.StoreBufStall, c.ROBStall}
	var total int64
	for _, x := range v {
		total += x
	}
	var out [6]float64
	if total == 0 {
		return out
	}
	for i, x := range v {
		out[i] = float64(x) / float64(total)
	}
	return out
}

// Core is one simulated core plus its private cache/TLB hierarchy.
type Core struct {
	cfg Config

	l1i, l1d, l2, l3 *cache.Cache
	itlb, dtlb       mmu.Hierarchy
	pred             bpred.Predictor
	btb              *bpred.BTB

	C Counters

	// Program-order rings of per-instruction times.
	completeRing [depRing]int64 // completion times for dependency lookup
	commitRing   []int64        // ROB slots: commit times
	issueRing    []int64        // RS slots: issue times
	loadRing     []int64        // LQ slots: load completion times
	storeRing    []int64        // SQ slots: store drain times
	mshrRing     []int64        // outstanding miss completion times
	issueWin     []int64        // recent issue times for width throttling

	// Ring cursors: each ring is walked with an incrementing wrap-around
	// cursor instead of a per-instruction `%` of the running index — the
	// divides were the hottest scalar ops in step's profile. idx still
	// counts instructions (dependency distances need it); the cursors
	// track idx (or the load/store/miss counts) mod their ring length.
	idx            int64
	robCur, rsCur  int
	winCur         int
	lqCur, sqCur   int
	mshrCur        int
	lastStoreDrain int64

	frontCycle    int64
	frontCount    int
	renameTime    int64
	renameCnt     int
	renameSrc     int
	grpN          int
	grpSrc        int
	commitPrev    int64
	commitCnt     int
	lastFetchLine uint64
	lastIMissLine uint64
	memFree       int64

	defaultPred bool // predictor was built by NewCore, not supplied
	runBuf      []memtrace.Inst
}

const depRing = 64

// NewCore builds a core from cfg.
func NewCore(cfg Config) *Core {
	defaultPred := cfg.Predictor == nil
	if defaultPred {
		cfg.Predictor = bpred.NewTournament(14)
	}
	c := &Core{
		cfg:  cfg,
		l1i:  cache.New("L1I", cfg.L1ISize, cfg.L1IWays, 64),
		l1d:  cache.New("L1D", cfg.L1DSize, cfg.L1DWays, 64),
		l2:   cache.New("L2", cfg.L2Size, cfg.L2Ways, 64),
		l3:   cache.New("L3", cfg.L3Size, cfg.L3Ways, 64),
		pred: cfg.Predictor,
		btb:  bpred.NewBTB(cfg.BTBBits),
	}
	l2tlb := mmu.NewTLB(cfg.L2TLBEntries, cfg.TLBWays)
	c.itlb = mmu.Hierarchy{L1: mmu.NewTLB(cfg.ITLBEntries, cfg.TLBWays), L2: l2tlb,
		WalkLatency: cfg.WalkLat, L2Latency: cfg.TLBL2Lat}
	c.dtlb = mmu.Hierarchy{L1: mmu.NewTLB(cfg.DTLBEntries, cfg.TLBWays), L2: l2tlb,
		WalkLatency: cfg.WalkLat, L2Latency: cfg.TLBL2Lat}
	c.commitRing = make([]int64, cfg.ROB)
	c.issueRing = make([]int64, cfg.RS)
	c.loadRing = make([]int64, cfg.LQ)
	c.storeRing = make([]int64, cfg.SQ)
	c.mshrRing = make([]int64, cfg.MSHRs)
	c.issueWin = make([]int64, cfg.IssueWidth)
	c.defaultPred = defaultPred
	return c
}

// sameGeometry reports whether cfg allocates the same array shapes as the
// core's current configuration, so Reset can recycle them in place.
func (c *Core) sameGeometry(cfg Config) bool {
	o := c.cfg
	return cfg.L1ISize == o.L1ISize && cfg.L1IWays == o.L1IWays &&
		cfg.L1DSize == o.L1DSize && cfg.L1DWays == o.L1DWays &&
		cfg.L2Size == o.L2Size && cfg.L2Ways == o.L2Ways &&
		cfg.L3Size == o.L3Size && cfg.L3Ways == o.L3Ways &&
		cfg.ITLBEntries == o.ITLBEntries && cfg.DTLBEntries == o.DTLBEntries &&
		cfg.L2TLBEntries == o.L2TLBEntries && cfg.TLBWays == o.TLBWays &&
		cfg.ROB == o.ROB && cfg.RS == o.RS && cfg.LQ == o.LQ && cfg.SQ == o.SQ &&
		cfg.MSHRs == o.MSHRs && cfg.IssueWidth == o.IssueWidth &&
		cfg.BTBBits == o.BTBBits
}

// Reset returns the core to the state NewCore(cfg) would produce from a
// fresh predictor, reusing the existing cache, TLB, predictor and ring
// allocations whenever the geometry is unchanged — the default machine
// carries ~13 MB of simulated tag state, so pooled cores skip that churn
// entirely. A geometry change falls back to a full rebuild. Unlike NewCore,
// which adopts an explicitly supplied Predictor with whatever training it
// carries, Reset always clears the predictor's learned state: a reset core
// starts cold. Runs on a reset core are bit-identical to runs on a fresh
// core; reset_test pins that down.
func (c *Core) Reset(cfg Config) {
	reuseDefault := cfg.Predictor == nil && c.defaultPred
	if !c.sameGeometry(cfg) {
		if cfg.Predictor != nil {
			cfg.Predictor.Reset()
		}
		fresh := NewCore(cfg)
		fresh.runBuf = c.runBuf
		if reuseDefault {
			c.pred.Reset()
			fresh.cfg.Predictor = c.pred
			fresh.pred = c.pred
		}
		*c = *fresh
		return
	}
	if cfg.Predictor == nil {
		if c.defaultPred {
			cfg.Predictor = c.pred
		} else {
			cfg.Predictor = bpred.NewTournament(14)
		}
		c.defaultPred = true
	} else {
		c.defaultPred = false
	}
	c.cfg = cfg
	c.pred = cfg.Predictor
	c.pred.Reset()
	c.l1i.Reset()
	c.l1d.Reset()
	c.l2.Reset()
	c.l3.Reset()
	c.itlb.Reset()
	c.dtlb.Reset()
	c.itlb.L2.Reset() // shared by both hierarchies: reset exactly once
	c.itlb.WalkLatency, c.itlb.L2Latency = cfg.WalkLat, cfg.TLBL2Lat
	c.dtlb.WalkLatency, c.dtlb.L2Latency = cfg.WalkLat, cfg.TLBL2Lat
	c.btb.Reset()
	c.C = Counters{}
	clear(c.completeRing[:])
	clear(c.commitRing)
	clear(c.issueRing)
	clear(c.loadRing)
	clear(c.storeRing)
	clear(c.mshrRing)
	clear(c.issueWin)
	c.idx = 0
	c.robCur, c.rsCur, c.winCur = 0, 0, 0
	c.lqCur, c.sqCur, c.mshrCur = 0, 0, 0
	c.lastStoreDrain = 0
	c.frontCycle, c.frontCount = 0, 0
	c.renameTime, c.renameCnt, c.renameSrc = 0, 0, 0
	c.grpN, c.grpSrc = 0, 0
	c.commitPrev, c.commitCnt = 0, 0
	c.lastFetchLine, c.lastIMissLine = 0, 0
	c.memFree = 0
}

// dataAccess walks the D-side hierarchy at the given start cycle, returning
// the completion cycle.
func (c *Core) dataAccess(addr uint64, start int64) int64 {
	tlbLat, walked := c.dtlb.Translate(addr)
	if walked {
		c.C.DTLBWalks++
	}
	start += int64(tlbLat)
	if c.l1d.Access(addr) {
		return start + int64(c.cfg.L1DLat)
	}
	// L1D miss: take an MSHR (FIFO approximation of the miss queue).
	slot := c.mshrCur
	if c.mshrRing[slot] > start {
		start = c.mshrRing[slot]
	}
	var done int64
	switch {
	case c.l2.Access(addr):
		done = start + int64(c.cfg.L2Lat)
	case c.l3.Access(addr):
		done = start + int64(c.cfg.L3Lat)
	default:
		// DRAM: respect the bandwidth gap between transfers.
		if start < c.memFree {
			start = c.memFree
		}
		c.memFree = start + int64(c.cfg.MemGap)
		done = start + int64(c.cfg.MemLat)
	}
	c.mshrRing[slot] = done
	c.mshrCur++
	if c.mshrCur == len(c.mshrRing) {
		c.mshrCur = 0
	}
	return done
}

// instAccess walks the I-side hierarchy, returning added fetch latency.
// Sequential code misses are largely hidden by the L1I streaming
// prefetcher (as on Westmere): a miss on the line right after the previous
// miss costs only a short re-steer, though it still counts as a miss.
func (c *Core) instAccess(pc uint64) int64 {
	lat, walked := c.itlb.Translate(pc)
	if walked {
		c.C.ITLBWalks++
	}
	extra := int64(lat)
	if !c.l1i.Access(pc) {
		line := pc >> 6
		sequential := line == c.lastIMissLine+1
		c.lastIMissLine = line
		if sequential {
			// The prefetcher still moved the line up the hierarchy.
			if !c.l2.Access(pc) {
				c.l3.Access(pc)
			}
			return extra + 2
		}
		switch {
		case c.l2.Access(pc):
			extra += int64(c.cfg.L2Lat)
		case c.l3.Access(pc):
			extra += int64(c.cfg.L3Lat)
		default:
			if c.memFree > c.frontCycle {
				extra += c.memFree - c.frontCycle
			}
			c.memFree = c.frontCycle + extra + int64(c.cfg.MemGap)
			extra += int64(c.cfg.MemLat)
		}
	}
	return extra
}

// Run consumes the whole trace and fills the counter file. If the config
// sets Warmup, counters cover only the post-warmup portion.
func (c *Core) Run(r memtrace.Reader) *Counters {
	if c.runBuf == nil {
		c.runBuf = make([]memtrace.Inst, 8192)
	}
	buf := c.runBuf
	var warmed bool
	var base Counters
	var baseCycle int64
	for {
		n := r.Read(buf)
		if n == 0 {
			break
		}
		for i := 0; i < n; i++ {
			c.step(&buf[i])
			if !warmed && c.cfg.Warmup > 0 && c.C.Instructions >= c.cfg.Warmup {
				warmed = true
				c.syncCacheCounters()
				base = c.C
				baseCycle = c.commitPrev
			}
		}
	}
	c.C.Cycles = c.commitPrev + 1
	c.syncCacheCounters()
	if warmed {
		c.C = subtractCounters(c.C, base)
		c.C.Cycles = c.commitPrev - baseCycle
	}
	return &c.C
}

// subtractCounters returns a-b field-wise (Cycles handled by the caller).
func subtractCounters(a, b Counters) Counters {
	return Counters{
		Cycles:             a.Cycles,
		Instructions:       a.Instructions - b.Instructions,
		KernelInstructions: a.KernelInstructions - b.KernelInstructions,
		Branches:           a.Branches - b.Branches,
		BranchMispredicts:  a.BranchMispredicts - b.BranchMispredicts,
		L1IAccesses:        a.L1IAccesses - b.L1IAccesses,
		L1IMisses:          a.L1IMisses - b.L1IMisses,
		L1DAccesses:        a.L1DAccesses - b.L1DAccesses,
		L1DMisses:          a.L1DMisses - b.L1DMisses,
		L2Accesses:         a.L2Accesses - b.L2Accesses,
		L2Misses:           a.L2Misses - b.L2Misses,
		L3Accesses:         a.L3Accesses - b.L3Accesses,
		L3Misses:           a.L3Misses - b.L3Misses,
		ITLBWalks:          a.ITLBWalks - b.ITLBWalks,
		DTLBWalks:          a.DTLBWalks - b.DTLBWalks,
		FetchStall:         a.FetchStall - b.FetchStall,
		RATStall:           a.RATStall - b.RATStall,
		LoadBufStall:       a.LoadBufStall - b.LoadBufStall,
		StoreBufStall:      a.StoreBufStall - b.StoreBufStall,
		RSStall:            a.RSStall - b.RSStall,
		ROBStall:           a.ROBStall - b.ROBStall,
	}
}

func (c *Core) syncCacheCounters() {
	c.C.L1IAccesses, c.C.L1IMisses = c.l1i.Accesses, c.l1i.Misses
	c.C.L1DAccesses, c.C.L1DMisses = c.l1d.Accesses, c.l1d.Misses
	c.C.L2Accesses, c.C.L2Misses = c.l2.Accesses, c.l2.Misses
	c.C.L3Accesses, c.C.L3Misses = c.l3.Accesses, c.l3.Misses
}

// step advances the model by one instruction.
func (c *Core) step(in *memtrace.Inst) {
	cfg := &c.cfg
	c.C.Instructions++
	if in.Kernel {
		c.C.KernelInstructions++
	}

	// ---- Fetch ----
	if c.frontCount >= cfg.FetchWidth {
		c.frontCycle++
		c.frontCount = 0
	}
	if line := in.PC >> 6; line != c.lastFetchLine {
		c.lastFetchLine = line
		if extra := c.instAccess(in.PC); extra > 0 {
			// The decoupled front end's fetch/decode queues absorb short
			// bubbles; only the excess starves rename.
			extra -= 8
			if extra > 0 {
				c.C.FetchStall += extra
				c.frontCycle += extra
				c.frontCount = 0
			}
		}
	}
	fetchTime := c.frontCycle
	c.frontCount++

	// ---- Rename (RAT) ----
	if c.renameTime < fetchTime {
		c.renameTime = fetchTime
		c.renameCnt = 0
		c.renameSrc = 0
	}
	if c.renameCnt >= cfg.RenameWidth {
		c.renameTime++
		c.renameCnt = 0
		c.renameSrc = 0
	}
	if c.renameSrc+int(in.NSrc) > cfg.RenameReadPorts && c.renameCnt > 0 {
		// Register read port conflict: the group closes early.
		c.renameTime++
		c.renameCnt = 0
		c.renameSrc = 0
	}
	c.renameCnt++
	c.renameSrc += int(in.NSrc)
	renameTime := c.renameTime

	// RAT stall accounting is occupancy-style, like the hardware
	// RAT_STALLS events: every architectural rename group whose register
	// read demand exceeds the ports is charged the excess cycles, whether
	// or not rename happened to be the critical path (stall counters
	// overlap; Section III-D).
	c.grpSrc += int(in.NSrc)
	c.grpN++
	if c.grpN >= cfg.RenameWidth {
		if c.grpSrc > cfg.RenameReadPorts {
			c.C.RATStall += int64(c.grpSrc - cfg.RenameReadPorts)
		}
		c.grpN, c.grpSrc = 0, 0
	}
	if in.NSrc >= 3 {
		// Three-source ops (flag merges, partial-register reads) insert a
		// RAT serialisation bubble on this class of core.
		c.C.RATStall++
	}

	// ---- Dispatch: ROB / RS / LQ / SQ availability ----
	// Every full resource is charged for the cycles it blocks, even when
	// several block simultaneously: hardware stall counters overlap, and
	// the paper normalises by the total (Section III-D).
	dispatch := renameTime
	consider := func(free int64, counter *int64) {
		if free > renameTime {
			*counter += free - renameTime
		}
		if free > dispatch {
			dispatch = free
		}
	}
	consider(c.commitRing[c.robCur], &c.C.ROBStall)
	consider(c.issueRing[c.rsCur], &c.C.RSStall)
	isLoad := in.Op == memtrace.OpLoad
	isStore := in.Op == memtrace.OpStore
	if isLoad {
		consider(c.loadRing[c.lqCur], &c.C.LoadBufStall)
	}
	if isStore {
		consider(c.storeRing[c.sqCur], &c.C.StoreBufStall)
	}
	// Back-pressure: a blocked dispatch holds the rename stage, so later
	// instructions measure their stalls from the caught-up point rather
	// than re-counting the same gap.
	if dispatch > c.renameTime {
		c.renameTime = dispatch
	}

	// ---- Ready: operand dependencies ----
	// depRing is a power of two, so the dependency lookback masks instead
	// of dividing (Dep <= idx is guaranteed by the guard, so the index
	// stays non-negative).
	ready := dispatch + 1
	if in.Dep1 > 0 && int64(in.Dep1) <= c.idx {
		if t := c.completeRing[(c.idx-int64(in.Dep1))&(depRing-1)]; t > ready {
			ready = t
		}
	}
	if in.Dep2 > 0 && int64(in.Dep2) <= c.idx {
		if t := c.completeRing[(c.idx-int64(in.Dep2))&(depRing-1)]; t > ready {
			ready = t
		}
	}

	// ---- Issue: width-limited ----
	issue := ready
	if w := c.issueWin[c.winCur]; issue <= w {
		issue = w + 1
	}
	c.issueWin[c.winCur] = issue
	// The RS entry is held from dispatch until issue.
	c.issueRing[c.rsCur] = issue

	// ---- Execute ----
	var complete int64
	switch in.Op {
	case memtrace.OpLoad:
		complete = c.dataAccess(in.Addr, issue)
		c.loadRing[c.lqCur] = complete
		c.lqCur++
		if c.lqCur == len(c.loadRing) {
			c.lqCur = 0
		}
	case memtrace.OpStore:
		// Stores complete for dependents immediately; the cache write
		// happens at drain time, charged below against the SQ.
		complete = issue + 1
	case memtrace.OpFPU:
		complete = issue + int64(cfg.FPULat)
	case memtrace.OpBranch:
		complete = issue + int64(cfg.ALULat)
		c.C.Branches++
		pred := c.pred.Predict(in.PC)
		c.pred.Update(in.PC, in.Taken)
		if pred != in.Taken {
			c.C.BranchMispredicts++
			// Redirect: the front end refetches after resolution. The
			// wasted cycles show up as lost IPC, not as IFU stall events
			// (Figure 6 counts i-cache/iTLB fetch stalls separately from
			// speculation waste).
			redirect := complete + int64(cfg.MispredictPenalty)
			if redirect > c.frontCycle {
				c.frontCycle = redirect
				c.frontCount = 0
			}
		} else if in.Taken && !c.btb.Lookup(in.PC, in.Target) {
			// Correct direction but unknown target: short redirect.
			c.frontCycle += int64(cfg.BTBPenalty)
			c.frontCount = 0
		}
	default:
		complete = issue + int64(cfg.ALULat)
	}
	c.completeRing[c.idx&(depRing-1)] = complete

	// ---- Commit: in-order, width-limited ----
	commit := complete
	if commit <= c.commitPrev {
		commit = c.commitPrev
		c.commitCnt++
		if c.commitCnt >= cfg.CommitWidth {
			commit++
			c.commitCnt = 0
		}
	} else {
		c.commitCnt = 1
	}
	c.commitPrev = commit
	c.commitRing[c.robCur] = commit

	// Store drain: after commit, the store writes the cache, holding its
	// SQ entry until done. Drains retire in order.
	if isStore {
		drain := c.dataAccess(in.Addr, commit)
		if drain < c.lastStoreDrain {
			drain = c.lastStoreDrain
		}
		c.lastStoreDrain = drain
		c.storeRing[c.sqCur] = drain
		c.sqCur++
		if c.sqCur == len(c.storeRing) {
			c.sqCur = 0
		}
	}
	c.idx++
	c.robCur++
	if c.robCur == len(c.commitRing) {
		c.robCur = 0
	}
	c.rsCur++
	if c.rsCur == len(c.issueRing) {
		c.rsCur = 0
	}
	c.winCur++
	if c.winCur == len(c.issueWin) {
		c.winCur = 0
	}
}
