package cache

import (
	"testing"
	"testing/quick"
)

func TestColdMissThenHit(t *testing.T) {
	c := New("l1", 1024, 2, 64)
	if c.Access(0x1000) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Fatal("second access missed")
	}
	if !c.Access(0x103F) { // same 64B line
		t.Fatal("same-line access missed")
	}
	if c.Access(0x1040) { // next line
		t.Fatal("next-line access hit")
	}
	if c.Accesses != 4 || c.Misses != 2 {
		t.Fatalf("counters = %d/%d, want 4/2", c.Accesses, c.Misses)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way, 64B lines, 2 sets -> size 256.
	c := New("l1", 256, 2, 64)
	// Three lines mapping to set 0: line addresses differing by sets*line.
	a, b, d := uint64(0), uint64(128), uint64(256)
	c.Access(a)
	c.Access(b)
	c.Access(a) // a is MRU
	c.Access(d) // evicts b (LRU)
	if !c.Probe(a) {
		t.Fatal("a evicted, want b")
	}
	if c.Probe(b) {
		t.Fatal("b survived, want evicted")
	}
	if !c.Probe(d) {
		t.Fatal("d not filled")
	}
}

func TestFootprintFitsNoCapacityMisses(t *testing.T) {
	c := New("l1", 32<<10, 4, 64)
	// Touch a 16 KB footprint twice: second pass must be all hits.
	for pass := 0; pass < 2; pass++ {
		for addr := uint64(0); addr < 16<<10; addr += 64 {
			c.Access(addr)
		}
	}
	if c.Misses != 256 { // 16KB/64B cold misses only
		t.Fatalf("misses = %d, want 256 cold only", c.Misses)
	}
}

func TestFootprintExceedsThrashes(t *testing.T) {
	c := New("l1", 32<<10, 4, 64)
	// Cyclic sweep over 64 KB: with LRU every access misses after warmup.
	for pass := 0; pass < 3; pass++ {
		for addr := uint64(0); addr < 64<<10; addr += 64 {
			c.Access(addr)
		}
	}
	if r := c.MissRatio(); r < 0.9 {
		t.Fatalf("thrash miss ratio = %v, want >= 0.9", r)
	}
}

func TestProbeDoesNotMutate(t *testing.T) {
	c := New("l1", 1024, 2, 64)
	c.Probe(0x40)
	if c.Accesses != 0 || c.Misses != 0 {
		t.Fatal("probe touched counters")
	}
	if c.Access(0x40) {
		t.Fatal("probe filled the line")
	}
}

func TestHitAfterFillProperty(t *testing.T) {
	// Property: immediately re-accessing any address hits.
	if err := quick.Check(func(addrs []uint64) bool {
		c := New("p", 4096, 4, 64)
		for _, a := range addrs {
			c.Access(a)
			if !c.Access(a) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestResidencyBound(t *testing.T) {
	// Property: distinct resident lines never exceed capacity.
	if err := quick.Check(func(addrs []uint64) bool {
		c := New("p", 2048, 2, 64)
		resident := 0
		for _, a := range addrs {
			c.Access(a)
		}
		for _, a := range addrs {
			if c.Probe(a) {
				resident++
			}
		}
		_ = resident
		// Count distinct resident lines via a map.
		seen := map[uint64]bool{}
		n := 0
		for _, a := range addrs {
			ln := a >> 6
			if !seen[ln] && c.Probe(a) {
				seen[ln] = true
				n++
			}
		}
		return n <= 2048/64
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New("x", 0, 1, 64) },
		func() { New("x", 100, 2, 64) }, // not divisible into sets
		func() { New("x", 1024, 2, 60) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestReset(t *testing.T) {
	c := New("l1", 1024, 2, 64)
	c.Access(0x40)
	c.Reset()
	if c.Accesses != 0 || c.Misses != 0 {
		t.Fatal("counters survived reset")
	}
	if c.Probe(0x40) {
		t.Fatal("contents survived reset")
	}
}
