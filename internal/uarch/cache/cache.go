// Package cache implements set-associative caches with LRU replacement for
// the core model's three-level hierarchy (Table III of the paper: 32 KB
// L1I/L1D, 256 KB private L2, 12 MB shared L3, all 64-byte lines).
package cache

import "fmt"

// Cache is one set-associative cache level. Lookups are by byte address;
// the cache stores line tags only (no data), which is all timing simulation
// needs.
type Cache struct {
	name      string
	sets      int
	ways      int
	lineShift uint
	tags      []uint64 // sets*ways entries; 0 = invalid
	lru       []uint32 // per-entry last-use stamps
	stamp     uint32

	// Counters.
	Accesses int64
	Misses   int64
}

// New builds a cache of the given total size, associativity and line size.
// Size must be a multiple of ways*lineSize; the set count need not be a
// power of two (the paper's 12 MB 16-way L3 has 12288 sets).
func New(name string, size, ways, lineSize int) *Cache {
	if size <= 0 || ways <= 0 || lineSize <= 0 {
		panic("cache: non-positive geometry")
	}
	sets := size / (ways * lineSize)
	if sets == 0 || sets*ways*lineSize != size {
		panic(fmt.Sprintf("cache %s: size %d not divisible into %d-way sets of %d-byte lines",
			name, size, ways, lineSize))
	}
	shift := uint(0)
	for 1<<shift < lineSize {
		shift++
	}
	if 1<<shift != lineSize {
		panic("cache: line size not a power of two")
	}
	return &Cache{
		name:      name,
		sets:      sets,
		ways:      ways,
		lineShift: shift,
		tags:      make([]uint64, sets*ways),
		lru:       make([]uint32, sets*ways),
	}
}

// Name returns the cache's label.
func (c *Cache) Name() string { return c.name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// LineSize returns the line size in bytes.
func (c *Cache) LineSize() int { return 1 << c.lineShift }

// line converts a byte address to a line address with a nonzero sentinel
// (tag 0 marks invalid entries, so line addresses are offset by 1).
func (c *Cache) line(addr uint64) uint64 { return (addr >> c.lineShift) + 1 }

// Access looks up addr, filling the line on miss (LRU victim). It returns
// true on hit.
func (c *Cache) Access(addr uint64) bool {
	c.Accesses++
	ln := c.line(addr)
	set := int(ln % uint64(c.sets))
	base := set * c.ways
	c.stamp++
	victim := base
	oldest := c.lru[base]
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == ln {
			c.lru[i] = c.stamp
			return true
		}
		if c.tags[i] == 0 {
			// Prefer invalid entries as victims immediately.
			victim = i
			oldest = 0
			continue
		}
		if c.lru[i] < oldest {
			victim, oldest = i, c.lru[i]
		}
	}
	c.Misses++
	c.tags[victim] = ln
	c.lru[victim] = c.stamp
	return false
}

// Probe reports whether addr is resident without updating state or
// counters.
func (c *Cache) Probe(addr uint64) bool {
	ln := c.line(addr)
	set := int(ln % uint64(c.sets))
	base := set * c.ways
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == ln {
			return true
		}
	}
	return false
}

// MissRatio returns Misses/Accesses.
func (c *Cache) MissRatio() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = 0
		c.lru[i] = 0
	}
	c.stamp = 0
	c.Accesses = 0
	c.Misses = 0
}
