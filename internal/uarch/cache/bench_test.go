package cache

import "testing"

func BenchmarkAccessHit(b *testing.B) {
	c := New("l1", 32<<10, 8, 64)
	c.Access(0x1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(0x1000)
	}
}

func BenchmarkAccessMissStream(b *testing.B) {
	c := New("l2", 256<<10, 8, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i) * 64)
	}
}

func BenchmarkAccessL3Geometry(b *testing.B) {
	// The paper's 12 MB 16-way L3 (12288 sets, non-power-of-two).
	c := New("l3", 12<<20, 16, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i*2654435761) & 0xFFFFFFF)
	}
}
