// Package mmu models the paper's two-level TLB hierarchy (Table III):
// 4-way 64-entry ITLB and DTLB backed by a 4-way 512-entry unified L2 TLB,
// with page walks on L2 misses. Completed page walks per kilo-instruction
// are the metrics of the paper's Figures 8 and 11.
package mmu

// PageShift is log2 of the 4 KB page size.
const PageShift = 12

// TLB is one set-associative translation buffer with LRU replacement.
type TLB struct {
	sets  int
	ways  int
	tags  []uint64
	lru   []uint32
	stamp uint32

	// Counters.
	Accesses int64
	Misses   int64
}

// NewTLB builds a TLB with the given entry count and associativity.
func NewTLB(entries, ways int) *TLB {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic("mmu: bad TLB geometry")
	}
	sets := entries / ways
	if sets&(sets-1) != 0 {
		panic("mmu: TLB set count must be a power of two")
	}
	return &TLB{
		sets: sets,
		ways: ways,
		tags: make([]uint64, entries),
		lru:  make([]uint32, entries),
	}
}

// vpn converts an address to a nonzero virtual page number.
func vpn(addr uint64) uint64 { return (addr >> PageShift) + 1 }

// Access looks up the page of addr, inserting it on miss. Returns hit.
func (t *TLB) Access(addr uint64) bool {
	t.Accesses++
	p := vpn(addr)
	set := int(p % uint64(t.sets))
	base := set * t.ways
	t.stamp++
	victim, oldest := base, t.lru[base]
	for i := base; i < base+t.ways; i++ {
		if t.tags[i] == p {
			t.lru[i] = t.stamp
			return true
		}
		if t.tags[i] == 0 {
			victim, oldest = i, 0
			continue
		}
		if t.lru[i] < oldest {
			victim, oldest = i, t.lru[i]
		}
	}
	t.Misses++
	t.tags[victim] = p
	t.lru[victim] = t.stamp
	return false
}

// Entries returns the TLB's total entry count.
func (t *TLB) Entries() int { return t.sets * t.ways }

// Reset clears contents and counters.
func (t *TLB) Reset() {
	clear(t.tags)
	clear(t.lru)
	t.stamp = 0
	t.Accesses = 0
	t.Misses = 0
}

// Hierarchy is an L1 TLB backed by a shared L2 TLB with a page walker.
type Hierarchy struct {
	L1 *TLB
	L2 *TLB // shared; may be aliased by the I- and D-side hierarchies

	// WalkLatency is the page walk cost in cycles.
	WalkLatency int
	// L2Latency is the extra cost of an L1-miss/L2-hit in cycles.
	L2Latency int

	// Walks counts completed page walks (L2 TLB misses).
	Walks int64
}

// Reset clears the private L1 TLB and the walk counter. The shared L2 is
// left alone: it may be aliased by the sibling hierarchy, so the owner of
// both hierarchies resets it exactly once.
func (h *Hierarchy) Reset() {
	h.L1.Reset()
	h.Walks = 0
}

// Translate looks up addr, returning the added latency in cycles (0 on an
// L1 hit) and whether a full page walk occurred.
func (h *Hierarchy) Translate(addr uint64) (latency int, walked bool) {
	if h.L1.Access(addr) {
		return 0, false
	}
	if h.L2.Access(addr) {
		return h.L2Latency, false
	}
	h.Walks++
	return h.L2Latency + h.WalkLatency, true
}
