package mmu

import (
	"testing"
	"testing/quick"
)

func TestTLBHitAfterMiss(t *testing.T) {
	tlb := NewTLB(64, 4)
	if tlb.Access(0x1000) {
		t.Fatal("cold hit")
	}
	if !tlb.Access(0x1FFF) { // same 4K page
		t.Fatal("same-page miss")
	}
	if tlb.Access(0x2000) { // next page
		t.Fatal("next-page hit")
	}
}

func TestTLBCoverage(t *testing.T) {
	// 64 entries cover 256 KB; a 128 KB loop fits, a 1 MB loop thrashes.
	tlb := NewTLB(64, 4)
	for pass := 0; pass < 2; pass++ {
		for a := uint64(0); a < 128<<10; a += 4096 {
			tlb.Access(a)
		}
	}
	if tlb.Misses != 32 {
		t.Fatalf("misses = %d, want 32 cold only", tlb.Misses)
	}
	tlb = NewTLB(64, 4)
	for pass := 0; pass < 3; pass++ {
		for a := uint64(0); a < 1<<20; a += 4096 {
			tlb.Access(a)
		}
	}
	if ratio := float64(tlb.Misses) / float64(tlb.Accesses); ratio < 0.9 {
		t.Fatalf("thrash miss ratio = %v, want >= 0.9", ratio)
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := &Hierarchy{
		L1:          NewTLB(64, 4),
		L2:          NewTLB(512, 4),
		WalkLatency: 120,
		L2Latency:   7,
	}
	// Cold: full walk.
	lat, walked := h.Translate(0x5000)
	if lat != 127 || !walked {
		t.Fatalf("cold translate = %d/%v, want 127/true", lat, walked)
	}
	// Warm L1.
	lat, walked = h.Translate(0x5abc)
	if lat != 0 || walked {
		t.Fatalf("warm translate = %d/%v, want 0/false", lat, walked)
	}
	if h.Walks != 1 {
		t.Fatalf("walks = %d, want 1", h.Walks)
	}
}

func TestHierarchyL2Catch(t *testing.T) {
	h := &Hierarchy{L1: NewTLB(4, 4), L2: NewTLB(512, 4), WalkLatency: 120, L2Latency: 7}
	// Touch 8 pages: L1 (4 entries) evicts, L2 holds all.
	for a := uint64(0); a < 8*4096; a += 4096 {
		h.Translate(a)
	}
	walksBefore := h.Walks
	// Revisit: L1 misses for evicted pages must hit L2 (no new walks).
	for a := uint64(0); a < 8*4096; a += 4096 {
		if _, walked := h.Translate(a); walked {
			t.Fatal("walk on an L2-resident page")
		}
	}
	if h.Walks != walksBefore {
		t.Fatal("walk count changed")
	}
}

func TestTLBPropertyRevisitHits(t *testing.T) {
	if err := quick.Check(func(addrs []uint64) bool {
		tlb := NewTLB(64, 4)
		for _, a := range addrs {
			tlb.Access(a)
			if !tlb.Access(a) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTLB(60, 4) // 15 sets, not a power of two
}
