package workloads

import (
	"fmt"
	"strconv"
	"strings"

	"dcbench/internal/datagen"
	"dcbench/internal/hive"
	"dcbench/internal/mapreduce"
	"dcbench/internal/sim"
)

const (
	hiveGrepRowsPerSplit  = 30
	hiveRankRowsPerSplit  = 40
	hiveVisitRowsPerSplit = 50
)

// hiveSizes carves the 156 GB Hive-bench input (Table I) into the three
// benchmark tables, mirroring Pavlo et al.'s proportions.
func hiveSizes(scale float64) (grepB, rankB, visitB int64) {
	return int64(60 * GB * scale), int64(16 * GB * scale), int64(80 * GB * scale)
}

// HiveBenchWorkload runs the Hive-bench query suite as MapReduce jobs:
// Q1 a LIKE-filter selection over the grep table, Q2 a group-by aggregation
// over UserVisits, and Q3 a repartition join of Rankings with UserVisits
// followed by per-IP aggregation (two jobs). Every query's distributed
// result is verified against the in-memory internal/hive engine executing
// the same plan over identical data.
func HiveBenchWorkload() *Workload {
	return &Workload{
		Name:      "Hive-bench",
		InputGB:   156,
		Domains:   []string{"search engine", "social network", "electronic commerce"},
		Scenarios: []string{"Data warehouse operations"},
		Run: func(env *Env) (*Stats, error) {
			st := env.newStats("Hive-bench")
			grepB, rankB, visitB := hiveSizes(env.Scale)
			grepFile := env.DFS.AddFile("hive-grep", grepB)
			env.DFS.AddFile("hive-rankings", rankB) // read without locality by the join
			visitFile := env.DFS.AddFile("hive-uservisits", visitB)

			rankSplits := Splits(rankB)
			pages := rankSplits * hiveRankRowsPerSplit

			grepGen := func(split int) []mapreduce.KV {
				c := datagen.NewCorpus(splitSeed(env.Seed, split), 3000)
				recs := make([]mapreduce.KV, hiveGrepRowsPerSplit)
				for i := range recs {
					recs[i] = mapreduce.KV{Key: fmt.Sprintf("g%d-%d", split, i), Value: c.Sentence(15)}
				}
				return recs
			}
			rankGen := func(split int) []mapreduce.KV {
				rng := sim.NewRNG(splitSeed(env.Seed+13, split))
				recs := make([]mapreduce.KV, hiveRankRowsPerSplit)
				for i := range recs {
					page := split*hiveRankRowsPerSplit + i
					recs[i] = mapreduce.KV{
						Key:   fmt.Sprintf("url-%06d", page),
						Value: strconv.Itoa(rng.Intn(100)),
					}
				}
				return recs
			}
			visitGen := func(split int) []mapreduce.KV {
				rng := sim.NewRNG(splitSeed(env.Seed+29, split))
				zipf := sim.NewZipf(rng, pages, 0.8)
				recs := make([]mapreduce.KV, hiveVisitRowsPerSplit)
				for i := range recs {
					recs[i] = mapreduce.KV{
						Key: fmt.Sprintf("10.%d.%d.%d", rng.Intn(4), rng.Intn(8), rng.Intn(8)),
						Value: fmt.Sprintf("url-%06d,%g", zipf.Next(),
							float64(rng.Intn(1000))/100),
					}
				}
				return recs
			}

			pattern := datagen.NewCorpus(env.Seed, 3000).WordAt(25)

			// --- Q1: SELECT * FROM grep WHERE field LIKE '%pattern%' ---
			q1 := &mapreduce.Job{
				Name:  "hive-q1-grep-select",
				Input: newGenInput(grepB, grepGen), InputFile: grepFile,
				Mapper: mapreduce.MapperFunc(func(kv mapreduce.KV, emit mapreduce.Emit) {
					if strings.Contains(kv.Value, pattern) {
						emit(kv.Key, kv.Value)
					}
				}),
				NumReducers: env.Reducers(),
				OutputFile:  "hive-q1-out",
				Cost:        mapreduce.CostModel{MapCPUPerByte: 0.8e-8, ReduceCPUPerByte: 1e-9},
			}
			q1Res, err := env.RT.Run(q1)
			if err != nil {
				return nil, err
			}

			// --- Q2: SELECT sourceip, SUM(adrevenue) FROM uservisits GROUP BY sourceip ---
			q2 := &mapreduce.Job{
				Name:  "hive-q2-aggregation",
				Input: newGenInput(visitB, visitGen), InputFile: visitFile,
				Mapper: mapreduce.MapperFunc(func(kv mapreduce.KV, emit mapreduce.Emit) {
					_, rev := splitVisit(kv.Value)
					emit(kv.Key, strconv.FormatFloat(rev, 'g', -1, 64))
				}),
				Combiner:    sumFloats,
				Reducer:     sumFloats,
				NumReducers: env.Reducers(),
				OutputFile:  "hive-q2-out",
				Cost:        mapreduce.CostModel{MapCPUPerByte: 1.2e-8, ReduceCPUPerByte: 2e-9},
			}
			q2Res, err := env.RT.Run(q2)
			if err != nil {
				return nil, err
			}

			// --- Q3a: repartition join rankings ⋈ uservisits ON url ---
			visitSplits := Splits(visitB)
			joinInput := &joinedInput{
				left:      newGenInput(rankB, rankGen),
				right:     newGenInput(visitB, visitGen),
				leftSize:  rankSplits,
				rightSize: visitSplits,
			}
			q3a := &mapreduce.Job{
				Name:  "hive-q3a-join",
				Input: joinInput,
				Mapper: mapreduce.MapperFunc(func(kv mapreduce.KV, emit mapreduce.Emit) {
					if strings.HasPrefix(kv.Key, "url-") && !strings.Contains(kv.Value, ",") {
						// Rankings row: key=url, value=pagerank.
						emit(kv.Key, "R|"+kv.Value)
					} else {
						// Visits row: key=ip, value="url,revenue".
						url, rev := splitVisit(kv.Value)
						emit(url, "V|"+kv.Key+"|"+strconv.FormatFloat(rev, 'g', -1, 64))
					}
				}),
				Reducer: mapreduce.ReducerFunc(func(url string, values []string, emit mapreduce.Emit) {
					rank := ""
					for _, v := range values {
						if strings.HasPrefix(v, "R|") {
							rank = v[2:]
							break
						}
					}
					if rank == "" {
						return
					}
					for _, v := range values {
						if strings.HasPrefix(v, "V|") {
							parts := strings.SplitN(v[2:], "|", 2)
							emit(parts[0], rank+","+parts[1]) // (ip, "rank,revenue")
						}
					}
				}),
				NumReducers: env.Reducers(),
				Cost:        mapreduce.CostModel{MapCPUPerByte: 1.4e-8, ReduceCPUPerByte: 1e-8},
			}
			q3aRes, err := env.RT.Run(q3a)
			if err != nil {
				return nil, err
			}

			// --- Q3b: SELECT ip, AVG(pagerank), SUM(adrevenue) GROUP BY ip ---
			q3b := &mapreduce.Job{
				Name:   "hive-q3b-aggregate",
				Input:  chainInput(q3aRes),
				Mapper: mapreduce.MapperFunc(func(kv mapreduce.KV, emit mapreduce.Emit) { emit(kv.Key, kv.Value) }),
				Reducer: mapreduce.ReducerFunc(func(ip string, values []string, emit mapreduce.Emit) {
					var rankSum, revSum float64
					for _, v := range values {
						sep := strings.IndexByte(v, ',')
						r, _ := strconv.ParseFloat(v[:sep], 64)
						rev, _ := strconv.ParseFloat(v[sep+1:], 64)
						rankSum += r
						revSum += rev
					}
					n := float64(len(values))
					emit(ip, strconv.FormatFloat(rankSum/n, 'g', -1, 64)+","+
						strconv.FormatFloat(revSum, 'g', -1, 64))
				}),
				NumReducers: env.Reducers(),
				OutputFile:  "hive-q3-out",
				Cost:        mapreduce.CostModel{MapCPUPerByte: 0.6e-8, ReduceCPUPerByte: 2e-9},
			}
			q3bRes, err := env.RT.Run(q3b)
			if err != nil {
				return nil, err
			}

			// --- Verify every query against the in-memory hive engine ---
			quality := verifyHive(env, q1Res, q2Res, q3bRes, grepGen, rankGen, visitGen,
				Splits(grepB), rankSplits, visitSplits, pattern)
			for k, v := range quality {
				st.Quality[k] = v
			}
			return env.finishStats(st, q1Res, q2Res, q3aRes, q3bRes), nil
		},
	}
}

// splitVisit parses "url,revenue".
func splitVisit(v string) (string, float64) {
	sep := strings.IndexByte(v, ',')
	rev, _ := strconv.ParseFloat(v[sep+1:], 64)
	return v[:sep], rev
}

// joinedInput concatenates two inputs' splits, as Hive's repartition join
// reads both tables in one map phase.
type joinedInput struct {
	left, right         mapreduce.InputFormat
	leftSize, rightSize int
}

// NumSplits implements mapreduce.InputFormat.
func (j *joinedInput) NumSplits() int { return j.leftSize + j.rightSize }

// Split implements mapreduce.InputFormat.
func (j *joinedInput) Split(i int) ([]mapreduce.KV, int64) {
	if i < j.leftSize {
		return j.left.Split(i)
	}
	return j.right.Split(i - j.leftSize)
}

// verifyHive executes the three queries on the in-memory engine and
// compares aggregates with the distributed results.
func verifyHive(env *Env, q1Res, q2Res, q3bRes *mapreduce.Result,
	grepGen, rankGen, visitGen func(int) []mapreduce.KV,
	grepSplits, rankSplits, visitSplits int, pattern string) map[string]float64 {

	grepTab := hive.NewTable("grep", hive.Schema{{Name: "key", Kind: hive.String}, {Name: "field", Kind: hive.String}})
	for s := 0; s < grepSplits; s++ {
		for _, kv := range grepGen(s) {
			grepTab.Append(kv.Key, kv.Value)
		}
	}
	rankTab := hive.NewTable("rankings", hive.Schema{{Name: "pageurl", Kind: hive.String}, {Name: "pagerank", Kind: hive.Int}})
	for s := 0; s < rankSplits; s++ {
		for _, kv := range rankGen(s) {
			pr, _ := strconv.ParseInt(kv.Value, 10, 64)
			rankTab.Append(kv.Key, pr)
		}
	}
	visitTab := hive.NewTable("uservisits", hive.Schema{
		{Name: "sourceip", Kind: hive.String}, {Name: "desturl", Kind: hive.String}, {Name: "adrevenue", Kind: hive.Float}})
	for s := 0; s < visitSplits; s++ {
		for _, kv := range visitGen(s) {
			url, rev := splitVisit(kv.Value)
			visitTab.Append(kv.Key, url, rev)
		}
	}
	q := map[string]float64{}

	// Q1: row counts must match.
	hq1 := grepTab.Scan().FilterLike("field", pattern)
	var mrQ1Rows int64
	for _, part := range q1Res.Output {
		mrQ1Rows += int64(len(part))
	}
	q["q1_rows_mr"] = float64(mrQ1Rows)
	q["q1_rows_hive"] = float64(len(hq1.Rows))
	q["q1_match"] = boolMetric(mrQ1Rows == int64(len(hq1.Rows)))

	// Q2: total revenue must match.
	hq2 := visitTab.Scan().GroupBy([]string{"sourceip"}, []hive.Agg{{Op: hive.Sum, Col: "adrevenue", As: "rev"}})
	var hiveRev float64
	for _, row := range hq2.Rows {
		hiveRev += row[1].(float64)
	}
	var mrRev float64
	for _, kv := range q2Res.Flat() {
		v, _ := strconv.ParseFloat(kv.Value, 64)
		mrRev += v
	}
	q["q2_groups_mr"] = float64(q2Res.Counters.OutputRecords)
	q["q2_groups_hive"] = float64(len(hq2.Rows))
	q["q2_revenue_match"] = boolMetric(approxEqual(hiveRev, mrRev, 1e-6))

	// Q3: joined group count and total joined revenue must match.
	hq3 := visitTab.Scan().
		Join(rankTab.Scan(), "desturl", "pageurl").
		GroupBy([]string{"sourceip"}, []hive.Agg{
			{Op: hive.Avg, Col: "pagerank", As: "avgrank"},
			{Op: hive.Sum, Col: "adrevenue", As: "rev"},
		})
	var hiveQ3Rev float64
	for _, row := range hq3.Rows {
		hiveQ3Rev += row[2].(float64)
	}
	var mrQ3Rev float64
	for _, kv := range q3bRes.Flat() {
		_, rev := splitVisit(kv.Value)
		mrQ3Rev += rev
	}
	q["q3_groups_mr"] = float64(q3bRes.Counters.OutputRecords)
	q["q3_groups_hive"] = float64(len(hq3.Rows))
	q["q3_revenue_match"] = boolMetric(approxEqual(hiveQ3Rev, mrQ3Rev, 1e-6))
	return q
}

func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func approxEqual(a, b, tol float64) bool {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	scale := a
	if scale < 0 {
		scale = -scale
	}
	if scale < 1 {
		scale = 1
	}
	return diff <= tol*scale
}
