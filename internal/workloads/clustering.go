package workloads

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"dcbench/internal/analysis"
	"dcbench/internal/datagen"
	"dcbench/internal/mapreduce"
)

const (
	kmeansK         = 4
	kmeansDim       = 8
	kmeansIters     = 5
	pointsPerSplit  = 40
	fuzzinessFactor = 2.0
)

// clusterShard deterministically generates one split's points.
func clusterShard(seed uint64, split int) [][]float64 {
	pts, _ := datagen.Vectors(splitSeed(seed, split), pointsPerSplit, kmeansDim, kmeansK)
	return pts
}

// allClusterPoints regenerates every split's points for serial verification.
func allClusterPoints(seed uint64, splits int) [][]float64 {
	var pts [][]float64
	for s := 0; s < splits; s++ {
		pts = append(pts, clusterShard(seed, s)...)
	}
	return pts
}

// KMeansWorkload is Mahout-style distributed K-means: each iteration is a
// MapReduce job whose map tasks assign their shard's points to the nearest
// broadcast centroid and emit partial sums, a combiner pre-aggregates, and
// the reduce side computes the new centroids. The driver verifies that the
// distributed iteration matches the serial Lloyd step bit-for-bit (up to
// floating-point summation order).
func KMeansWorkload() *Workload {
	return &Workload{
		Name:      "K-means",
		InputGB:   150,
		Domains:   []string{"search engine", "social network", "electronic commerce"},
		Scenarios: []string{"Image processing", "High-resolution landform classification"},
		Run: func(env *Env) (*Stats, error) {
			st := env.newStats("K-means")
			simBytes := int64(150 * GB * env.Scale)
			file := env.DFS.AddFile("kmeans-input", simBytes)
			input := newGenInput(simBytes, func(split int) []mapreduce.KV {
				return []mapreduce.KV{{Key: strconv.Itoa(split), Value: ""}}
			})
			// Initial centroids: the first k points of split 0.
			centroids := make([][]float64, kmeansK)
			for i, p := range clusterShard(env.Seed, 0)[:kmeansK] {
				centroids[i] = append([]float64(nil), p...)
			}

			var results []*mapreduce.Result
			for iter := 1; iter <= kmeansIters; iter++ {
				snap := make([][]float64, len(centroids))
				for i := range centroids {
					snap[i] = append([]float64(nil), centroids[i]...)
				}
				job := &mapreduce.Job{
					Name:  fmt.Sprintf("kmeans-iter-%d", iter),
					Input: input, InputFile: file,
					Mapper: mapreduce.MapperFunc(func(kv mapreduce.KV, emit mapreduce.Emit) {
						split, _ := strconv.Atoi(kv.Key)
						for _, p := range clusterShard(env.Seed, split) {
							c, _ := analysis.NearestCentroid(p, snap)
							emit("c|"+strconv.Itoa(c), "1|"+encodeVec(p))
						}
					}),
					Combiner:    vecSumReducer,
					Reducer:     vecSumReducer,
					NumReducers: env.Reducers(),
					Cost:        mapreduce.CostModel{MapCPUPerByte: 2.3e-9, ReduceCPUPerByte: 0.3e-9, OutputRatio: 0.001},
				}
				res, err := env.RT.Run(job)
				if err != nil {
					return nil, err
				}
				results = append(results, res)
				for _, kv := range res.Flat() {
					c, _ := strconv.Atoi(strings.TrimPrefix(kv.Key, "c|"))
					n, sum := decodeWeightedVec(kv.Value)
					for j := range sum {
						sum[j] /= n
					}
					centroids[c] = sum
				}
			}
			// Verify against the serial algorithm on identical data.
			pts := allClusterPoints(env.Seed, input.NumSplits())
			serial := make([][]float64, kmeansK)
			for i, p := range clusterShard(env.Seed, 0)[:kmeansK] {
				serial[i] = append([]float64(nil), p...)
			}
			for it := 0; it < kmeansIters; it++ {
				serial, _, _ = analysis.KMeansStep(pts, serial)
			}
			st.Quality["serial_divergence"] = maxCentroidDiff(centroids, serial)
			_, _, cost := analysis.KMeansStep(pts, centroids)
			st.Quality["objective"] = cost
			return env.finishStats(st, results...), nil
		},
	}
}

// FuzzyKMeansWorkload distributes fuzzy C-means the same way, with
// membership-weighted partial sums. Its per-byte CPU cost is ~5x K-means
// (Table I: 15470 vs 3227 billions of instructions on the same input size).
func FuzzyKMeansWorkload() *Workload {
	return &Workload{
		Name:      "Fuzzy K-means",
		InputGB:   150,
		Domains:   []string{"search engine", "social network", "electronic commerce"},
		Scenarios: []string{"Image processing", "Speech recognition"},
		Run: func(env *Env) (*Stats, error) {
			st := env.newStats("Fuzzy K-means")
			simBytes := int64(150 * GB * env.Scale)
			file := env.DFS.AddFile("fkm-input", simBytes)
			input := newGenInput(simBytes, func(split int) []mapreduce.KV {
				return []mapreduce.KV{{Key: strconv.Itoa(split), Value: ""}}
			})
			centroids := make([][]float64, kmeansK)
			for i, p := range clusterShard(env.Seed, 0)[:kmeansK] {
				centroids[i] = append([]float64(nil), p...)
			}
			var results []*mapreduce.Result
			for iter := 1; iter <= kmeansIters; iter++ {
				snap := make([][]float64, len(centroids))
				for i := range centroids {
					snap[i] = append([]float64(nil), centroids[i]...)
				}
				job := &mapreduce.Job{
					Name:  fmt.Sprintf("fkm-iter-%d", iter),
					Input: input, InputFile: file,
					Mapper: mapreduce.MapperFunc(func(kv mapreduce.KV, emit mapreduce.Emit) {
						split, _ := strconv.Atoi(kv.Key)
						pts := clusterShard(env.Seed, split)
						_, memb, _ := analysis.FuzzyKMeansStep(pts, snap, fuzzinessFactor)
						for i, p := range pts {
							for c := 0; c < kmeansK; c++ {
								w := math.Pow(memb[i][c], fuzzinessFactor)
								if w == 0 {
									continue
								}
								wp := make([]float64, len(p))
								for j := range p {
									wp[j] = w * p[j]
								}
								emit("c|"+strconv.Itoa(c),
									strconv.FormatFloat(w, 'g', -1, 64)+"|"+encodeVec(wp))
							}
						}
					}),
					Combiner:    vecSumReducer,
					Reducer:     vecSumReducer,
					NumReducers: env.Reducers(),
					Cost:        mapreduce.CostModel{MapCPUPerByte: 1.1e-8, ReduceCPUPerByte: 1e-9, OutputRatio: 0.001},
				}
				res, err := env.RT.Run(job)
				if err != nil {
					return nil, err
				}
				results = append(results, res)
				for _, kv := range res.Flat() {
					c, _ := strconv.Atoi(strings.TrimPrefix(kv.Key, "c|"))
					n, sum := decodeWeightedVec(kv.Value)
					for j := range sum {
						sum[j] /= n
					}
					centroids[c] = sum
				}
			}
			pts := allClusterPoints(env.Seed, input.NumSplits())
			serial := make([][]float64, kmeansK)
			for i, p := range clusterShard(env.Seed, 0)[:kmeansK] {
				serial[i] = append([]float64(nil), p...)
			}
			for it := 0; it < kmeansIters; it++ {
				serial, _, _ = analysis.FuzzyKMeansStep(pts, serial, fuzzinessFactor)
			}
			st.Quality["serial_divergence"] = maxCentroidDiff(centroids, serial)
			return env.finishStats(st, results...), nil
		},
	}
}

// vecSumReducer folds "weight|vector" values into their component-wise sum,
// serving as both combiner and reducer for the clustering jobs.
var vecSumReducer = mapreduce.ReducerFunc(func(key string, values []string, emit mapreduce.Emit) {
	var n float64
	var sum []float64
	for _, v := range values {
		w, vec := decodeWeightedVec(v)
		n += w
		if sum == nil {
			sum = make([]float64, len(vec))
		}
		for j := range vec {
			sum[j] += vec[j]
		}
	}
	emit(key, strconv.FormatFloat(n, 'g', -1, 64)+"|"+encodeVec(sum))
})

// decodeWeightedVec parses "weight|v1,v2,...".
func decodeWeightedVec(s string) (float64, []float64) {
	sep := strings.IndexByte(s, '|')
	w, err := strconv.ParseFloat(s[:sep], 64)
	if err != nil {
		panic(fmt.Sprintf("workloads: bad weighted vector %q", s))
	}
	return w, decodeVec(s[sep+1:])
}

// maxCentroidDiff returns the largest absolute coordinate difference
// between two centroid sets.
func maxCentroidDiff(a, b [][]float64) float64 {
	worst := 0.0
	for i := range a {
		for j := range a[i] {
			if d := math.Abs(a[i][j] - b[i][j]); d > worst {
				worst = d
			}
		}
	}
	return worst
}
