// Package workloads implements the paper's eleven representative data
// analysis workloads (Table I) as jobs on the simulated MapReduce cluster:
// Sort, WordCount, Grep, Naive Bayes, SVM, K-means, Fuzzy K-means, IBCF,
// HMM, PageRank and Hive-bench. Each workload runs its real algorithm (from
// internal/analysis and internal/hive) over generated data while the engine
// charges simulated time scaled to the paper's input sizes, reproducing the
// cluster-level results: speedup versus slave count (Figure 2) and disk
// writes per second (Figure 5).
//
// CPU cost rates are calibrated from the paper's own Table I: retired
// instructions divided by input bytes gives instructions/byte, and at the
// paper's mean data-analysis IPC of 0.78 on 2.4 GHz cores (Figure 3) a core
// retires about 1.87e9 instructions/second — so e.g. Naive Bayes
// (68131e9 instr / 147 GB ≈ 463 instr/B) costs ~2.5e-7 CPU-seconds/byte
// while Grep (1499e9 / 154 GB ≈ 10 instr/B) costs ~5e-9.
package workloads

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"dcbench/internal/cluster"
	"dcbench/internal/dfs"
	"dcbench/internal/mapreduce"
	"dcbench/internal/sweep"
)

// GB is 10^9 bytes, the unit of the paper's Table I input sizes.
const GB = 1e9

// BlockSize is the DFS block size (64 MB, the Hadoop 1.x default).
const BlockSize int64 = 64 << 20

// Env is one experiment environment: a fresh cluster, DFS and MapReduce
// runtime at a given slave count and input scale.
type Env struct {
	Cluster *cluster.Cluster
	DFS     *dfs.DFS
	RT      *mapreduce.Runtime
	// Scale multiplies the paper's input sizes (1.0 = the full 147-187 GB;
	// tests and benchmarks typically use 0.01-0.1). Ratios such as speedup
	// and per-second rates are scale-invariant in this model.
	Scale float64
	Seed  uint64
}

// NewEnv builds an environment with the paper's hardware and Hadoop
// configuration for the given number of slave nodes.
func NewEnv(slaves int, scale float64, seed uint64) *Env {
	c := cluster.New(cluster.DefaultConfig(slaves), seed)
	d := dfs.New(c, BlockSize, 3, seed+1)
	rt := mapreduce.NewRuntime(c, d, mapreduce.DefaultRuntimeConfig())
	return &Env{Cluster: c, DFS: d, RT: rt, Scale: scale, Seed: seed}
}

// Reducers returns the job-level reduce parallelism for this cluster size
// (Hadoop's rule of thumb: a small multiple of the slave count).
func (e *Env) Reducers() int { return 6 * len(e.Cluster.Nodes) }

// Splits converts a simulated input size to a split/block count.
func Splits(simBytes int64) int {
	n := int((simBytes + BlockSize - 1) / BlockSize)
	if n < 1 {
		n = 1
	}
	return n
}

// Stats summarises one workload run.
type Stats struct {
	Workload       string
	Slaves         int
	Makespan       float64 // simulated seconds for the whole workload
	Jobs           int
	InputSimBytes  int64
	DiskWriteOps   int64
	DiskWriteBytes int64
	NetBytes       int64
	CoreSeconds    float64 // total busy core-seconds across the cluster
	// Quality holds workload-specific correctness metrics (accuracy,
	// convergence error, agreement with the serial algorithm, ...).
	Quality map[string]float64
}

// DiskWritesPerSecond is Figure 5's metric: mean simulated disk write
// operations per second per slave node.
func (s *Stats) DiskWritesPerSecond() float64 {
	if s.Makespan <= 0 || s.Slaves == 0 {
		return 0
	}
	return float64(s.DiskWriteOps) / s.Makespan / float64(s.Slaves)
}

// Workload is one of the paper's eleven data analysis applications.
type Workload struct {
	Name    string
	InputGB float64 // Table I input size at Scale = 1
	// Domains and Scenarios reproduce Table II.
	Domains   []string
	Scenarios []string
	Run       func(env *Env) (*Stats, error)
}

// newStats starts a Stats capture; complete it with env.finishStats.
func (e *Env) newStats(name string) *Stats {
	return &Stats{
		Workload: name,
		Slaves:   len(e.Cluster.Nodes),
		Makespan: -e.Cluster.Eng.Now(),
		Quality:  map[string]float64{},
	}
}

func (e *Env) finishStats(s *Stats, results ...*mapreduce.Result) *Stats {
	s.Makespan += e.Cluster.Eng.Now()
	s.Jobs = len(results)
	for _, r := range results {
		s.InputSimBytes += r.Counters.InputSimBytes
	}
	s.DiskWriteOps = e.Cluster.TotalDiskWriteOps()
	s.DiskWriteBytes = e.Cluster.TotalDiskWriteBytes()
	s.NetBytes = e.Cluster.TotalNetBytes()
	for _, n := range e.Cluster.Nodes {
		s.CoreSeconds += n.Cores.BusySeconds()
	}
	return s
}

// --- small codec helpers shared by the numeric workloads ---

// encodeVec serialises a float vector for shuffling.
func encodeVec(v []float64) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = strconv.FormatFloat(x, 'g', -1, 64)
	}
	return strings.Join(parts, ",")
}

// decodeVec parses encodeVec output.
func decodeVec(s string) []float64 {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	v := make([]float64, len(parts))
	for i, p := range parts {
		f, err := strconv.ParseFloat(p, 64)
		if err != nil {
			panic(fmt.Sprintf("workloads: bad vector %q: %v", s, err))
		}
		v[i] = f
	}
	return v
}

// All returns the paper's eleven workloads in Table I order.
func All() []*Workload {
	return []*Workload{
		SortWorkload(),
		WordCountWorkload(),
		GrepWorkload(),
		NaiveBayesWorkload(),
		SVMWorkload(),
		KMeansWorkload(),
		FuzzyKMeansWorkload(),
		IBCFWorkload(),
		HMMWorkload(),
		PageRankWorkload(),
		HiveBenchWorkload(),
	}
}

// SlaveSweepAll runs every workload across every slave count — Figure 2's
// full experiment matrix — with each of the len(ws) x len(slaveCounts)
// independent cluster environments a separate unit of fan-out, so an
// 8-core host keeps 8 environments in flight rather than being capped at
// one workload's slave counts. Workers <= 0 means one per host core (the
// -j convention). Stats come back as [workload][slaveCount], both in input
// order; every environment is seeded identically, so results match the
// serial loops bit for bit. The first failed run's error (wrapped with its
// workload and slave count) is returned after all runs finish.
func SlaveSweepAll(ctx context.Context, ws []*Workload, slaveCounts []int, scale float64, seed uint64, workers int) ([][]*Stats, error) {
	return SlaveSweepMemo(ctx, nil, ws, slaveCounts, scale, seed, workers)
}

// SlaveSweepMemo is SlaveSweepAll with cluster-run memoization: each
// (workload, slave count) unit resolves through cache — an in-memory hit or
// a persistent-store hit skips the simulation entirely, and concurrent
// renders of figures sharing a run coalesce on its singleflight cell. A nil
// cache runs everything. Memoized Stats are shared across callers: treat
// them as read-only.
func SlaveSweepMemo(ctx context.Context, cache *StatsCache, ws []*Workload, slaveCounts []int, scale float64, seed uint64, workers int) ([][]*Stats, error) {
	n := len(ws) * len(slaveCounts)
	flat, err := sweep.Collect(ctx, workers, n, func(i int) (*Stats, error) {
		w, slaves := ws[i/len(slaveCounts)], slaveCounts[i%len(slaveCounts)]
		return cache.Do(ctx, StatsKey{Workload: w.Name, Slaves: slaves, Scale: scale, Seed: seed}, func() (*Stats, error) {
			env := NewEnv(slaves, scale, seed)
			st, err := w.Run(env)
			if err != nil {
				return nil, fmt.Errorf("%s on %d slaves: %w", w.Name, slaves, err)
			}
			return st, nil
		})
	})
	if err != nil {
		return nil, err
	}
	out := make([][]*Stats, len(ws))
	for i := range ws {
		out[i] = flat[i*len(slaveCounts) : (i+1)*len(slaveCounts)]
	}
	return out, nil
}

// SlaveSweep is SlaveSweepAll for a single workload.
func SlaveSweep(ctx context.Context, w *Workload, slaveCounts []int, scale float64, seed uint64, workers int) ([]*Stats, error) {
	all, err := SlaveSweepAll(ctx, []*Workload{w}, slaveCounts, scale, seed, workers)
	if err != nil {
		return nil, err
	}
	return all[0], nil
}

// ByName returns the named workload or nil.
func ByName(name string) *Workload {
	for _, w := range All() {
		if strings.EqualFold(w.Name, name) {
			return w
		}
	}
	return nil
}
