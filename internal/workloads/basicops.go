package workloads

import (
	"fmt"
	"strconv"
	"strings"

	"dcbench/internal/datagen"
	"dcbench/internal/mapreduce"
	"dcbench/internal/sim"
)

// SortWorkload is the Hadoop-example Sort: identity map, range
// partitioning for a global total order, identity reduce. Its defining
// properties in the paper are that output size equals input size and the
// computation is trivial, making it the most I/O- and OS-intensive workload
// (Figures 4 and 5).
func SortWorkload() *Workload {
	return &Workload{
		Name:      "Sort",
		InputGB:   150,
		Domains:   []string{"electronic commerce", "search engine", "social network"},
		Scenarios: []string{"Document sorting", "Pages sorting"},
		Run: func(env *Env) (*Stats, error) {
			st := env.newStats("Sort")
			simBytes := int64(150 * GB * env.Scale)
			file := env.DFS.AddFile("sort-input", simBytes)
			const recsPerSplit = 100
			input := newGenInput(simBytes, func(split int) []mapreduce.KV {
				rng := sim.NewRNG(splitSeed(env.Seed, split))
				recs := make([]mapreduce.KV, recsPerSplit)
				for i := range recs {
					key := make([]byte, 10)
					for j := range key {
						key[j] = byte('a' + rng.Intn(26))
					}
					val := make([]byte, 90)
					for j := range val {
						val[j] = byte('A' + rng.Intn(26))
					}
					recs[i] = mapreduce.KV{Key: string(key), Value: string(val)}
				}
				return recs
			})
			job := &mapreduce.Job{
				Name:      "sort",
				Input:     input,
				InputFile: file,
				Mapper: mapreduce.MapperFunc(func(kv mapreduce.KV, emit mapreduce.Emit) {
					emit(kv.Key, kv.Value)
				}),
				NumReducers: env.Reducers(),
				OutputFile:  "sort-output",
				// Range partitioner on the first key byte: a TeraSort-style
				// total order across reducers.
				Partition: func(key string, r int) int {
					if key == "" {
						return 0
					}
					p := int(key[0]-'a') * r / 26
					if p >= r {
						p = r - 1
					}
					return p
				},
				Cost: mapreduce.CostModel{MapCPUPerByte: 0.8e-8, ReduceCPUPerByte: 0.8e-8},
			}
			res, err := env.RT.Run(job)
			if err != nil {
				return nil, err
			}
			// Quality: global order must hold across reducer boundaries.
			sorted := 1.0
			var prev string
			for _, part := range res.Output {
				for _, kv := range part {
					if kv.Key < prev {
						sorted = 0
					}
					prev = kv.Key
				}
			}
			st.Quality["globally_sorted"] = sorted
			st.Quality["records"] = float64(res.Counters.OutputRecords)
			return env.finishStats(st, res), nil
		},
	}
}

// WordCountWorkload reads documents and counts word occurrences, with a
// combiner — the canonical aggregation-shaped MapReduce job.
func WordCountWorkload() *Workload {
	return &Workload{
		Name:      "WordCount",
		InputGB:   154,
		Domains:   []string{"search engine", "social network", "electronic commerce"},
		Scenarios: []string{"Word frequency count", "Calculating the TF-IDF value", "Obtaining the user operations count"},
		Run: func(env *Env) (*Stats, error) {
			st := env.newStats("WordCount")
			simBytes := int64(154 * GB * env.Scale)
			file := env.DFS.AddFile("wc-input", simBytes)
			input := newGenInput(simBytes, func(split int) []mapreduce.KV {
				c := datagen.NewCorpus(splitSeed(env.Seed, split), 5000)
				recs := make([]mapreduce.KV, 30)
				for i := range recs {
					recs[i] = mapreduce.KV{Key: fmt.Sprintf("line-%d-%d", split, i), Value: c.Sentence(20)}
				}
				return recs
			})
			sum := mapreduce.ReducerFunc(func(key string, values []string, emit mapreduce.Emit) {
				total := 0
				for _, v := range values {
					n, _ := strconv.Atoi(v)
					total += n
				}
				emit(key, strconv.Itoa(total))
			})
			job := &mapreduce.Job{
				Name:  "wordcount",
				Input: input, InputFile: file,
				Mapper: mapreduce.MapperFunc(func(kv mapreduce.KV, emit mapreduce.Emit) {
					for _, w := range strings.Fields(kv.Value) {
						emit(w, "1")
					}
				}),
				Combiner:    sum,
				Reducer:     sum,
				NumReducers: env.Reducers(),
				OutputFile:  "wc-output",
				Cost:        mapreduce.CostModel{MapCPUPerByte: 1.0e-8, ReduceCPUPerByte: 0.5e-8},
			}
			res, err := env.RT.Run(job)
			if err != nil {
				return nil, err
			}
			// Quality: counted words must equal the words actually generated.
			var counted int64
			for _, kv := range res.Flat() {
				n, _ := strconv.Atoi(kv.Value)
				counted += int64(n)
			}
			var generated int64
			for i := 0; i < input.NumSplits(); i++ {
				recs, _ := input.Split(i)
				for _, kv := range recs {
					generated += int64(len(strings.Fields(kv.Value)))
				}
			}
			st.Quality["counted_words"] = float64(counted)
			st.Quality["distinct_words"] = float64(res.Counters.OutputRecords)
			st.Quality["conservation"] = 0
			if counted == generated {
				st.Quality["conservation"] = 1
			}
			return env.finishStats(st, res), nil
		},
	}
}

// GrepWorkload extracts lines matching a pattern and counts matches, the
// third Hadoop-example basic operation.
func GrepWorkload() *Workload {
	return &Workload{
		Name:      "Grep",
		InputGB:   154,
		Domains:   []string{"search engine", "social network", "electronic commerce"},
		Scenarios: []string{"Log analysis", "Web information extraction", "Fuzzy search"},
		Run: func(env *Env) (*Stats, error) {
			st := env.newStats("Grep")
			simBytes := int64(154 * GB * env.Scale)
			file := env.DFS.AddFile("grep-input", simBytes)
			var pattern string
			{
				c := datagen.NewCorpus(env.Seed, 5000)
				pattern = c.WordAt(40) // a moderately common word
			}
			input := newGenInput(simBytes, func(split int) []mapreduce.KV {
				c := datagen.NewCorpus(splitSeed(env.Seed, split), 5000)
				recs := make([]mapreduce.KV, 30)
				for i := range recs {
					recs[i] = mapreduce.KV{Key: fmt.Sprintf("line-%d-%d", split, i), Value: c.Sentence(20)}
				}
				return recs
			})
			sum := mapreduce.ReducerFunc(func(key string, values []string, emit mapreduce.Emit) {
				total := 0
				for _, v := range values {
					n, _ := strconv.Atoi(v)
					total += n
				}
				emit(key, strconv.Itoa(total))
			})
			job := &mapreduce.Job{
				Name:  "grep",
				Input: input, InputFile: file,
				Mapper: mapreduce.MapperFunc(func(kv mapreduce.KV, emit mapreduce.Emit) {
					n := 0
					for _, w := range strings.Fields(kv.Value) {
						if w == pattern {
							n++
						}
					}
					if n > 0 {
						emit(pattern, strconv.Itoa(n))
					}
				}),
				Combiner:    sum,
				Reducer:     sum,
				NumReducers: 1, // grep output is tiny
				OutputFile:  "grep-output",
				Cost:        mapreduce.CostModel{MapCPUPerByte: 0.5e-8, ReduceCPUPerByte: 0.1e-8},
			}
			res, err := env.RT.Run(job)
			if err != nil {
				return nil, err
			}
			var matches int64
			for _, kv := range res.Flat() {
				n, _ := strconv.Atoi(kv.Value)
				matches += int64(n)
			}
			st.Quality["matches"] = float64(matches)
			return env.finishStats(st, res), nil
		},
	}
}
