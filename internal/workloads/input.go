package workloads

import "dcbench/internal/mapreduce"

// genInput is an InputFormat backed by a deterministic per-split generator.
// Every split stands for one DFS block (BlockSize simulated bytes, except a
// possibly short tail) realised by a small number of real records.
type genInput struct {
	splits   int
	simBytes int64 // total simulated bytes over all splits
	gen      func(split int) []mapreduce.KV
}

// newGenInput sizes an input at simBytes and realises each split with gen.
func newGenInput(simBytes int64, gen func(split int) []mapreduce.KV) *genInput {
	return &genInput{splits: Splits(simBytes), simBytes: simBytes, gen: gen}
}

// NumSplits implements mapreduce.InputFormat.
func (g *genInput) NumSplits() int { return g.splits }

// Split implements mapreduce.InputFormat.
func (g *genInput) Split(i int) ([]mapreduce.KV, int64) {
	sb := BlockSize
	if i == g.splits-1 {
		if tail := g.simBytes - int64(g.splits-1)*BlockSize; tail > 0 && tail < BlockSize {
			sb = tail
		}
	}
	return g.gen(i), sb
}

// splitSeed derives a per-split generator seed that is stable across runs
// and split counts.
func splitSeed(base uint64, split int) uint64 {
	return base ^ (uint64(split)+1)*0x9E3779B97F4A7C15
}
