package workloads

import (
	"fmt"
	"strconv"
	"strings"

	"dcbench/internal/analysis"
	"dcbench/internal/datagen"
	"dcbench/internal/mapreduce"
)

const bayesClasses = 5

// sumFloats is a reducer summing float-encoded values.
var sumFloats = mapreduce.ReducerFunc(func(key string, values []string, emit mapreduce.Emit) {
	total := 0.0
	for _, v := range values {
		f, _ := strconv.ParseFloat(v, 64)
		total += f
	}
	emit(key, strconv.FormatFloat(total, 'g', -1, 64))
})

// NaiveBayesWorkload trains a multinomial Naive Bayes text classifier the
// Mahout way: map tasks count (class, word) occurrences over their shard,
// the reduce side aggregates counts, and the driver assembles the model.
// Quality is held-out classification accuracy — a real learning outcome,
// not a smoke test.
func NaiveBayesWorkload() *Workload {
	return &Workload{
		Name:      "Naive Bayes",
		InputGB:   147,
		Domains:   []string{"social network", "electronic commerce"},
		Scenarios: []string{"Spam recognition", "Web page classification"},
		Run: func(env *Env) (*Stats, error) {
			st := env.newStats("Naive Bayes")
			simBytes := int64(147 * GB * env.Scale)
			file := env.DFS.AddFile("bayes-input", simBytes)
			const docsPerSplit = 20
			input := newGenInput(simBytes, func(split int) []mapreduce.KV {
				c := datagen.NewCorpus(splitSeed(env.Seed, split), 2000)
				recs := make([]mapreduce.KV, docsPerSplit)
				for i := range recs {
					class := (split*docsPerSplit + i) % bayesClasses
					recs[i] = mapreduce.KV{
						Key:   strconv.Itoa(class),
						Value: c.LabeledSentence(class, bayesClasses, 30),
					}
				}
				return recs
			})
			job := &mapreduce.Job{
				Name:  "bayes-train",
				Input: input, InputFile: file,
				Mapper: mapreduce.MapperFunc(func(kv mapreduce.KV, emit mapreduce.Emit) {
					class := kv.Key
					emit("doc|"+class, "1")
					for _, w := range analysis.Tokenize(kv.Value) {
						emit("cw|"+class+"|"+w, "1")
					}
				}),
				Combiner:    sumFloats,
				Reducer:     sumFloats,
				NumReducers: env.Reducers(),
				OutputFile:  "bayes-model",
				Cost:        mapreduce.CostModel{MapCPUPerByte: 2.2e-7, ReduceCPUPerByte: 3e-8, OutputRatio: 0.02},
			}
			res, err := env.RT.Run(job)
			if err != nil {
				return nil, err
			}
			// Assemble the model from the distributed counts.
			nb := analysis.NewNaiveBayes(bayesClasses)
			for _, kv := range res.Flat() {
				n, _ := strconv.ParseFloat(kv.Value, 64)
				switch {
				case strings.HasPrefix(kv.Key, "doc|"):
					class, _ := strconv.Atoi(kv.Key[len("doc|"):])
					nb.AddClassDocs(class, n)
				case strings.HasPrefix(kv.Key, "cw|"):
					rest := kv.Key[len("cw|"):]
					sep := strings.IndexByte(rest, '|')
					class, _ := strconv.Atoi(rest[:sep])
					nb.AddWordCount(class, rest[sep+1:], n)
				}
			}
			// Held-out evaluation on fresh documents.
			eval := datagen.NewCorpus(env.Seed+777, 2000)
			right := 0
			const evalDocs = 100
			for i := 0; i < evalDocs; i++ {
				class := i % bayesClasses
				if nb.Predict(analysis.Tokenize(eval.LabeledSentence(class, bayesClasses, 30))) == class {
					right++
				}
			}
			st.Quality["holdout_accuracy"] = float64(right) / evalDocs
			return env.finishStats(st, res), nil
		},
	}
}

const (
	svmDim   = 256
	svmIters = 8
)

// SVMWorkload trains a linear SVM on hashed HTML-page features with
// distributed batch sub-gradient descent: each iteration is one MapReduce
// job whose map tasks compute the Pegasos sub-gradient of their shard
// against the broadcast weights and whose reduce side sums them; the
// driver applies the averaged step. This is the standard way to run
// full-batch hinge-loss training on MapReduce.
func SVMWorkload() *Workload {
	return &Workload{
		Name:      "SVM",
		InputGB:   148,
		Domains:   []string{"social network", "electronic commerce"},
		Scenarios: []string{"Image Processing", "Data Mining", "Text Categorization"},
		Run: func(env *Env) (*Stats, error) {
			st := env.newStats("SVM")
			simBytes := int64(148 * GB * env.Scale)
			file := env.DFS.AddFile("svm-input", simBytes)
			const docsPerSplit = 20
			shard := func(split int) (x [][]float64, y []int) {
				c := datagen.NewCorpus(splitSeed(env.Seed, split), 2000)
				for i := 0; i < docsPerSplit; i++ {
					class := (split*docsPerSplit + i) % 2
					page := c.HTMLPage(1, 15)
					// Mix in the class-bearing words.
					page += " " + c.LabeledSentence(class, 2, 40)
					x = append(x, analysis.HashFeatures(analysis.Tokenize(page), svmDim))
					y = append(y, 2*class-1)
				}
				return x, y
			}
			input := newGenInput(simBytes, func(split int) []mapreduce.KV {
				return []mapreduce.KV{{Key: strconv.Itoa(split), Value: strconv.Itoa(docsPerSplit)}}
			})

			w := make([]float64, svmDim)
			bias := 0.0
			lambda := 0.001
			var results []*mapreduce.Result
			var lastViolations float64
			for iter := 1; iter <= svmIters; iter++ {
				wSnap := append([]float64(nil), w...)
				biasSnap := bias
				job := &mapreduce.Job{
					Name:  fmt.Sprintf("svm-iter-%d", iter),
					Input: input, InputFile: file,
					Mapper: mapreduce.MapperFunc(func(kv mapreduce.KV, emit mapreduce.Emit) {
						split, _ := strconv.Atoi(kv.Key)
						x, y := shard(split)
						dw, violations := analysis.SubGradient(wSnap, biasSnap, lambda, x, y)
						for j, g := range dw {
							if g != 0 {
								emit("g|"+strconv.Itoa(j), strconv.FormatFloat(g, 'g', -1, 64))
							}
						}
						emit("violations", strconv.Itoa(violations))
						emit("shards", "1")
					}),
					Combiner:    sumFloats,
					Reducer:     sumFloats,
					NumReducers: env.Reducers(),
					Cost:        mapreduce.CostModel{MapCPUPerByte: 0.8e-9, ReduceCPUPerByte: 0.2e-9, OutputRatio: 0.001},
				}
				res, err := env.RT.Run(job)
				if err != nil {
					return nil, err
				}
				results = append(results, res)
				grad := make([]float64, svmDim)
				var shards float64
				for _, kv := range res.Flat() {
					v, _ := strconv.ParseFloat(kv.Value, 64)
					switch {
					case strings.HasPrefix(kv.Key, "g|"):
						j, _ := strconv.Atoi(kv.Key[2:])
						grad[j] = v
					case kv.Key == "violations":
						lastViolations = v
					case kv.Key == "shards":
						shards = v
					}
				}
				if shards == 0 {
					shards = 1
				}
				eta := 2 / float64(iter)
				for j := range w {
					w[j] -= eta * grad[j] / shards
				}
			}
			// Quality: training accuracy of the distributed model over a
			// sample of shards.
			model := &analysis.SVM{W: w, Bias: bias, Lambda: lambda}
			var right, total int
			for split := 0; split < input.NumSplits(); split += 1 + input.NumSplits()/8 {
				x, y := shard(split)
				for i := range x {
					if model.Predict(x[i]) == y[i] {
						right++
					}
					total++
				}
			}
			st.Quality["train_accuracy"] = float64(right) / float64(total)
			st.Quality["final_violations"] = lastViolations
			return env.finishStats(st, results...), nil
		},
	}
}
