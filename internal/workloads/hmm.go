package workloads

import (
	"strconv"
	"strings"

	"dcbench/internal/analysis"
	"dcbench/internal/datagen"
	"dcbench/internal/mapreduce"
)

const (
	hmmStates      = 4
	hmmSymbols     = 40
	hmmSeqLen      = 200
	hmmSeqPerSplit = 2
)

// hmmShard generates one split's labelled training sequences.
func hmmShard(seed uint64, split int) (seqs, paths [][]int) {
	for i := 0; i < hmmSeqPerSplit; i++ {
		obs, hidden := datagen.ObservationSeq(splitSeed(seed, split)+uint64(i), hmmStates, hmmSymbols, hmmSeqLen)
		seqs = append(seqs, obs)
		paths = append(paths, hidden)
	}
	return seqs, paths
}

// encodeInts serialises an int sequence.
func encodeInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.Itoa(x)
	}
	return strings.Join(parts, ",")
}

// decodeInts parses encodeInts output.
func decodeInts(s string) []int {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	xs := make([]int, len(parts))
	for i, p := range parts {
		xs[i], _ = strconv.Atoi(p)
	}
	return xs
}

// HMMWorkload is the paper's segmentation application: supervised training
// of a hidden Markov model by distributed counting (job 1), then Viterbi
// decoding of fresh sequences with the trained model (job 2). Quality is
// decoding accuracy against the true hidden paths.
func HMMWorkload() *Workload {
	return &Workload{
		Name:      "HMM",
		InputGB:   147,
		Domains:   []string{"social network", "search engine"},
		Scenarios: []string{"Speech recognition", "Word Segmentation", "Handwriting recognition"},
		Run: func(env *Env) (*Stats, error) {
			st := env.newStats("HMM")
			simBytes := int64(147 * GB * env.Scale)
			trainFile := env.DFS.AddFile("hmm-train", simBytes/2)
			decodeFile := env.DFS.AddFile("hmm-decode", simBytes/2)

			trainInput := newGenInput(simBytes/2, func(split int) []mapreduce.KV {
				seqs, paths := hmmShard(env.Seed, split)
				recs := make([]mapreduce.KV, len(seqs))
				for i := range seqs {
					recs[i] = mapreduce.KV{Key: encodeInts(paths[i]), Value: encodeInts(seqs[i])}
				}
				return recs
			})
			// Job 1: count initial/transition/emission events.
			trainJob := &mapreduce.Job{
				Name:  "hmm-train",
				Input: trainInput, InputFile: trainFile,
				Mapper: mapreduce.MapperFunc(func(kv mapreduce.KV, emit mapreduce.Emit) {
					path := decodeInts(kv.Key)
					obs := decodeInts(kv.Value)
					emit("pi|"+strconv.Itoa(path[0]), "1")
					for t := range obs {
						emit("b|"+strconv.Itoa(path[t])+"|"+strconv.Itoa(obs[t]), "1")
						if t > 0 {
							emit("a|"+strconv.Itoa(path[t-1])+"|"+strconv.Itoa(path[t]), "1")
						}
					}
				}),
				Combiner:    sumFloats,
				Reducer:     sumFloats,
				NumReducers: env.Reducers(),
				Cost:        mapreduce.CostModel{MapCPUPerByte: 3e-9, ReduceCPUPerByte: 0.5e-9, OutputRatio: 0.01},
			}
			trainRes, err := env.RT.Run(trainJob)
			if err != nil {
				return nil, err
			}

			// Build the model from the distributed counts.
			pi := make([]float64, hmmStates)
			a := make([][]float64, hmmStates)
			b := make([][]float64, hmmStates)
			for s := range a {
				a[s] = make([]float64, hmmStates)
				b[s] = make([]float64, hmmSymbols)
			}
			for _, kv := range trainRes.Flat() {
				parts := strings.Split(kv.Key, "|")
				n, _ := strconv.ParseFloat(kv.Value, 64)
				switch parts[0] {
				case "pi":
					s, _ := strconv.Atoi(parts[1])
					pi[s] += n
				case "a":
					s, _ := strconv.Atoi(parts[1])
					t2, _ := strconv.Atoi(parts[2])
					a[s][t2] += n
				case "b":
					s, _ := strconv.Atoi(parts[1])
					o, _ := strconv.Atoi(parts[2])
					b[s][o] += n
				}
			}
			model := analysis.NewHMM(hmmStates, hmmSymbols)
			model.SetFromCounts(pi, a, b)

			// Job 2: Viterbi-decode fresh sequences with the trained model.
			decodeInput := newGenInput(simBytes/2, func(split int) []mapreduce.KV {
				seqs, paths := hmmShard(env.Seed+991, split)
				recs := make([]mapreduce.KV, len(seqs))
				for i := range seqs {
					recs[i] = mapreduce.KV{Key: encodeInts(paths[i]), Value: encodeInts(seqs[i])}
				}
				return recs
			})
			decodeJob := &mapreduce.Job{
				Name:  "hmm-decode",
				Input: decodeInput, InputFile: decodeFile,
				Mapper: mapreduce.MapperFunc(func(kv mapreduce.KV, emit mapreduce.Emit) {
					truth := decodeInts(kv.Key)
					obs := decodeInts(kv.Value)
					path, _ := model.Viterbi(obs)
					match := 0
					for t := range path {
						if path[t] == truth[t] {
							match++
						}
					}
					emit("match", strconv.Itoa(match))
					emit("total", strconv.Itoa(len(path)))
				}),
				Combiner:    sumFloats,
				Reducer:     sumFloats,
				NumReducers: 1,
				Cost:        mapreduce.CostModel{MapCPUPerByte: 4e-9, ReduceCPUPerByte: 0.5e-9, OutputRatio: 0.0001},
			}
			decodeRes, err := env.RT.Run(decodeJob)
			if err != nil {
				return nil, err
			}
			var match, total float64
			for _, kv := range decodeRes.Flat() {
				v, _ := strconv.ParseFloat(kv.Value, 64)
				if kv.Key == "match" {
					match = v
				} else if kv.Key == "total" {
					total = v
				}
			}
			if total > 0 {
				st.Quality["decode_accuracy"] = match / total
			}
			return env.finishStats(st, trainRes, decodeRes), nil
		},
	}
}
