package workloads

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"dcbench/internal/analysis"
	"dcbench/internal/datagen"
	"dcbench/internal/mapreduce"
)

const (
	ibcfUsersPerSplit  = 10
	ibcfItems          = 60
	ibcfRatingsPerUser = 12
)

// ibcfShard generates one split's ratings: a disjoint user range over a
// shared item space, so item-item similarities span splits.
func ibcfShard(seed uint64, split int) []datagen.Rating {
	rs := datagen.Ratings(splitSeed(seed, split), ibcfUsersPerSplit, ibcfItems, ibcfRatingsPerUser)
	for i := range rs {
		rs[i].User += split * ibcfUsersPerSplit
	}
	return rs
}

// IBCFWorkload is Mahout-style item-based collaborative filtering as a
// three-job pipeline: (1) per-item squared norms, (2) per-user co-rated
// item pair products, (3) pair-product aggregation. The driver combines the
// norms and pair sums into cosine similarities and checks them against the
// serial analysis.ItemCF on identical data. IBCF is the second most
// instruction-hungry workload in Table I, reflected in its CPU rates and
// pair-explosion shuffle ratio.
func IBCFWorkload() *Workload {
	return &Workload{
		Name:      "IBCF",
		InputGB:   147,
		Domains:   []string{"electronic commerce", "social network", "search engine"},
		Scenarios: []string{"Recommend goods", "Recommend friends", "Recommend key words"},
		Run: func(env *Env) (*Stats, error) {
			st := env.newStats("IBCF")
			simBytes := int64(147 * GB * env.Scale)
			file := env.DFS.AddFile("ibcf-input", simBytes)
			input := newGenInput(simBytes, func(split int) []mapreduce.KV {
				rs := ibcfShard(env.Seed, split)
				recs := make([]mapreduce.KV, len(rs))
				for i, r := range rs {
					recs[i] = mapreduce.KV{
						Key:   strconv.Itoa(r.User),
						Value: fmt.Sprintf("%d,%g", r.Item, r.Score),
					}
				}
				return recs
			})

			// Job 1: per-item squared norms.
			normsJob := &mapreduce.Job{
				Name:  "ibcf-norms",
				Input: input, InputFile: file,
				Mapper: mapreduce.MapperFunc(func(kv mapreduce.KV, emit mapreduce.Emit) {
					item, score := parseRating(kv.Value)
					emit("n|"+strconv.Itoa(item), strconv.FormatFloat(score*score, 'g', -1, 64))
				}),
				Combiner:    sumFloats,
				Reducer:     sumFloats,
				NumReducers: env.Reducers(),
				Cost:        mapreduce.CostModel{MapCPUPerByte: 1e-8, ReduceCPUPerByte: 1e-9},
			}
			normsRes, err := env.RT.Run(normsJob)
			if err != nil {
				return nil, err
			}

			// Job 2: co-rated pair products, grouped by user.
			pairsJob := &mapreduce.Job{
				Name:  "ibcf-pairs",
				Input: input, InputFile: file,
				Mapper: mapreduce.MapperFunc(func(kv mapreduce.KV, emit mapreduce.Emit) {
					emit(kv.Key, kv.Value) // group ratings by user
				}),
				Reducer: mapreduce.ReducerFunc(func(user string, values []string, emit mapreduce.Emit) {
					type ir struct {
						item  int
						score float64
					}
					rs := make([]ir, 0, len(values))
					for _, v := range values {
						item, score := parseRating(v)
						rs = append(rs, ir{item, score})
					}
					sort.Slice(rs, func(i, j int) bool { return rs[i].item < rs[j].item })
					for i := 0; i < len(rs); i++ {
						for j := i + 1; j < len(rs); j++ {
							emit(fmt.Sprintf("p|%d|%d", rs[i].item, rs[j].item),
								strconv.FormatFloat(rs[i].score*rs[j].score, 'g', -1, 64))
						}
					}
				}),
				NumReducers: env.Reducers(),
				// The pair cross-product inflates the data ~6x (C(12,2)=66
				// pairs from 12 ratings), making this the heavy shuffle.
				Cost: mapreduce.CostModel{MapCPUPerByte: 4e-8, ReduceCPUPerByte: 3e-8, OutputRatio: 4},
			}
			pairsRes, err := env.RT.Run(pairsJob)
			if err != nil {
				return nil, err
			}

			// Job 3: aggregate pair products.
			agg := &mapreduce.Job{
				Name:        "ibcf-aggregate",
				Input:       chainInput(pairsRes),
				Mapper:      mapreduce.MapperFunc(func(kv mapreduce.KV, emit mapreduce.Emit) { emit(kv.Key, kv.Value) }),
				Combiner:    sumFloats,
				Reducer:     sumFloats,
				NumReducers: env.Reducers(),
				Cost:        mapreduce.CostModel{MapCPUPerByte: 3e-8, ReduceCPUPerByte: 1e-8},
			}
			aggRes, err := env.RT.Run(agg)
			if err != nil {
				return nil, err
			}

			// Assemble cosine similarities from the distributed outputs.
			norms := map[int]float64{}
			for _, kv := range normsRes.Flat() {
				item, _ := strconv.Atoi(strings.TrimPrefix(kv.Key, "n|"))
				norms[item], _ = strconv.ParseFloat(kv.Value, 64)
			}
			type pair struct{ a, b int }
			sims := map[pair]float64{}
			for _, kv := range aggRes.Flat() {
				parts := strings.Split(kv.Key, "|")
				a, _ := strconv.Atoi(parts[1])
				b, _ := strconv.Atoi(parts[2])
				dot, _ := strconv.ParseFloat(kv.Value, 64)
				sims[pair{a, b}] = dot / math.Sqrt(norms[a]*norms[b])
			}

			// Verify against the serial recommender on the same ratings.
			cf := analysis.NewItemCF(ibcfItems)
			for split := 0; split < input.NumSplits(); split++ {
				for _, r := range ibcfShard(env.Seed, split) {
					cf.Add(r.User, r.Item, r.Score)
				}
			}
			worst := 0.0
			checked := 0
			for p, s := range sims {
				if want := cf.Cosine(p.a, p.b); math.Abs(want-s) > worst {
					worst = math.Abs(want - s)
				}
				checked++
				if checked >= 500 {
					break
				}
			}
			st.Quality["cosine_divergence"] = worst
			st.Quality["pairs"] = float64(len(sims))
			return env.finishStats(st, normsRes, pairsRes, aggRes), nil
		},
	}
}

// parseRating splits "item,score".
func parseRating(v string) (int, float64) {
	sep := strings.IndexByte(v, ',')
	item, _ := strconv.Atoi(v[:sep])
	score, err := strconv.ParseFloat(v[sep+1:], 64)
	if err != nil {
		panic(fmt.Sprintf("workloads: bad rating %q", v))
	}
	return item, score
}

// chainInput feeds a finished job's output to a follow-up job, carrying the
// simulated output size forward.
func chainInput(res *mapreduce.Result) *mapreduce.SliceInput {
	in := &mapreduce.SliceInput{}
	n := 0
	for _, part := range res.Output {
		if len(part) > 0 {
			n++
		}
	}
	if n == 0 {
		n = 1
	}
	per := res.Counters.OutputSimBytes / int64(n)
	for _, part := range res.Output {
		if len(part) == 0 {
			continue
		}
		in.Splits = append(in.Splits, part)
		in.SimBytes = append(in.SimBytes, per)
	}
	if len(in.Splits) == 0 {
		in.Splits = [][]mapreduce.KV{nil}
		in.SimBytes = []int64{0}
	}
	return in
}
