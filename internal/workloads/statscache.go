package workloads

import (
	"context"

	"dcbench/internal/memo"
	"dcbench/internal/obs"
)

// StatsKey identifies one cluster experiment run: a workload simulated on a
// cluster of Slaves nodes at a given input scale and seed. Those four
// inputs fully determine the resulting Stats (scheduling width does not
// affect results), so the key doubles as the address a StatsBackend
// persists them under.
type StatsKey struct {
	Workload string
	Slaves   int
	Scale    float64
	Seed     uint64
}

// StatsBackend is a second-level cluster-result cache behind a StatsCache's
// in-memory table — typically the same persistent store that backs the
// sweep engine, so restarts skip the cluster simulations too.
//
// The context carries request-scoped observability values (trace spans
// land in the requesting caller's timeline). Its cancellation is
// refcounted by the cache's singleflight: it fires only when every caller
// sharing the cell has left, so a backend seeing ctx.Done() may abort —
// nobody wants the result anymore.
//
// Backends swallow their own failures (a broken store must degrade to
// re-simulation, not break a figure render): LoadStats reports a miss,
// StoreStats drops the write. Stats handed to and from the backend are
// shared with the cache — treat them as read-only.
type StatsBackend interface {
	LoadStats(context.Context, StatsKey) (*Stats, bool)
	StoreStats(context.Context, StatsKey, *Stats)
}

// StatsCache memoizes cluster runs on the shared singleflight memo: an
// in-memory table where concurrent requests for the same run share one
// simulation, optionally backed by a persistent StatsBackend consulted on
// miss and written through after each successful run. It is safe for
// concurrent use. Cached Stats are shared across callers — read-only.
type StatsCache struct {
	memo    *memo.Memo[StatsKey, *Stats]
	backend StatsBackend
}

// NewStatsCache returns an empty cache over backend (nil for memory-only).
func NewStatsCache(backend StatsBackend) *StatsCache {
	m := memo.New[StatsKey, *Stats]()
	m.SetName("cluster")
	return &StatsCache{memo: m, backend: backend}
}

// Do returns the stats for key, calling run at most once per key even under
// concurrent callers; the backend (when present) is consulted first and
// filled after, both inside the key's singleflight cell. A failed run
// (cancellation included) is not cached, so a later call retries. The
// context carries trace values only — a caller's cancellation does not
// abort the shared run.
func (c *StatsCache) Do(ctx context.Context, key StatsKey, run func() (*Stats, error)) (*Stats, error) {
	if c == nil {
		return run()
	}
	return c.memo.DoCtx(ctx, key, c.fill(key, func(context.Context) (*Stats, error) { return run() }))
}

// DoShared is Do with refcounted caller cancellation (memo.DoShared
// semantics): a caller whose ctx is cancelled leaves the flight with
// ctx.Err() while other callers keep waiting, and run's context is
// cancelled only when the last caller has left. A cluster simulation
// cannot be stopped mid-run (workload Run takes no context), so run
// should check its ctx before starting; cancellation's win here is that
// waiters and their admission slots are released immediately.
func (c *StatsCache) DoShared(ctx context.Context, key StatsKey, run func(context.Context) (*Stats, error)) (*Stats, error) {
	if c == nil {
		return run(ctx)
	}
	return c.memo.DoShared(ctx, key, c.fill(key, run))
}

// Join waits for key's cached or in-flight stats without ever starting a
// run; ok is false when there is nothing to join (the admission layer's
// shed-or-join peek).
func (c *StatsCache) Join(ctx context.Context, key StatsKey) (st *Stats, err error, ok bool) {
	if c == nil {
		return nil, nil, false
	}
	return c.memo.Join(ctx, key)
}

// fill builds the inside-the-cell function shared by Do and DoShared:
// backend lookup, the run itself under a "cluster.run" span, write-through
// on success.
func (c *StatsCache) fill(key StatsKey, run func(context.Context) (*Stats, error)) func(context.Context) (*Stats, error) {
	return func(ctx context.Context) (*Stats, error) {
		if c.backend != nil {
			if st, ok := c.backend.LoadStats(ctx, key); ok {
				return st, nil
			}
		}
		sp := obs.Start(ctx, "cluster.run", "workload", key.Workload)
		st, err := run(ctx)
		sp.End()
		if err == nil && c.backend != nil {
			c.backend.StoreStats(ctx, key, st)
		}
		return st, err
	}
}
