package workloads

import "sync"

// StatsKey identifies one cluster experiment run: a workload simulated on a
// cluster of Slaves nodes at a given input scale and seed. Those four
// inputs fully determine the resulting Stats (scheduling width does not
// affect results), so the key doubles as the address a StatsBackend
// persists them under.
type StatsKey struct {
	Workload string
	Slaves   int
	Scale    float64
	Seed     uint64
}

// StatsBackend is a second-level cluster-result cache behind a StatsCache's
// in-memory table — typically the same persistent store that backs the
// sweep engine, so restarts skip the cluster simulations too.
//
// Backends swallow their own failures (a broken store must degrade to
// re-simulation, not break a figure render): LoadStats reports a miss,
// StoreStats drops the write. Stats handed to and from the backend are
// shared with the cache — treat them as read-only.
type StatsBackend interface {
	LoadStats(StatsKey) (*Stats, bool)
	StoreStats(StatsKey, *Stats)
}

// statsEntry is a singleflight cell: concurrent requests for the same run
// share one simulation.
type statsEntry struct {
	once  sync.Once
	stats *Stats
	err   error
}

// StatsCache memoizes cluster runs: an in-memory table with per-key
// singleflight, optionally backed by a persistent StatsBackend consulted on
// miss and written through after each successful run. It is safe for
// concurrent use. Cached Stats are shared across callers — read-only.
type StatsCache struct {
	mu      sync.Mutex
	entries map[StatsKey]*statsEntry
	backend StatsBackend
}

// NewStatsCache returns an empty cache over backend (nil for memory-only).
func NewStatsCache(backend StatsBackend) *StatsCache {
	return &StatsCache{entries: map[StatsKey]*statsEntry{}, backend: backend}
}

// Do returns the stats for key, calling run at most once per key even under
// concurrent callers; the backend (when present) is consulted first and
// filled after, both inside the key's singleflight cell. A failed run
// (cancellation included) is not cached, so a later call retries.
func (c *StatsCache) Do(key StatsKey, run func() (*Stats, error)) (*Stats, error) {
	if c == nil {
		return run()
	}
	c.mu.Lock()
	en, ok := c.entries[key]
	if !ok {
		en = &statsEntry{}
		c.entries[key] = en
	}
	c.mu.Unlock()
	en.once.Do(func() {
		if c.backend != nil {
			if st, ok := c.backend.LoadStats(key); ok {
				en.stats = st
				return
			}
		}
		en.stats, en.err = run()
		if en.err == nil && c.backend != nil {
			c.backend.StoreStats(key, en.stats)
		}
	})
	if en.err != nil {
		c.mu.Lock()
		if c.entries[key] == en {
			delete(c.entries, key)
		}
		c.mu.Unlock()
		return nil, en.err
	}
	return en.stats, nil
}
