package workloads

import (
	"context"
	"reflect"
	"testing"
)

const testScale = 0.01 // ~1.5 GB simulated inputs: fast but multi-split

func runWorkload(t *testing.T, w *Workload, slaves int) *Stats {
	t.Helper()
	env := NewEnv(slaves, testScale, 12345)
	st, err := w.Run(env)
	if err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	if st.Makespan <= 0 {
		t.Fatalf("%s: non-positive makespan %v", w.Name, st.Makespan)
	}
	if st.InputSimBytes == 0 {
		t.Fatalf("%s: no simulated input consumed", w.Name)
	}
	return st
}

func TestAllWorkloadsPresent(t *testing.T) {
	ws := All()
	if len(ws) != 11 {
		t.Fatalf("workload count = %d, want 11 (Table I)", len(ws))
	}
	seen := map[string]bool{}
	for _, w := range ws {
		if w.Name == "" || w.Run == nil || w.InputGB < 100 {
			t.Fatalf("malformed workload %+v", w)
		}
		if seen[w.Name] {
			t.Fatalf("duplicate workload %s", w.Name)
		}
		seen[w.Name] = true
	}
	if ByName("pagerank") == nil || ByName("Sort") == nil {
		t.Fatal("ByName lookup failed")
	}
	if ByName("nope") != nil {
		t.Fatal("ByName should return nil for unknown")
	}
}

func TestSortGlobalOrder(t *testing.T) {
	st := runWorkload(t, SortWorkload(), 4)
	if st.Quality["globally_sorted"] != 1 {
		t.Fatal("sort output not globally ordered")
	}
	if st.Quality["records"] == 0 {
		t.Fatal("sort produced no records")
	}
}

func TestWordCountConservation(t *testing.T) {
	st := runWorkload(t, WordCountWorkload(), 4)
	if st.Quality["conservation"] != 1 {
		t.Fatalf("word counts not conserved: %+v", st.Quality)
	}
	if st.Quality["distinct_words"] < 100 {
		t.Fatalf("suspiciously few distinct words: %v", st.Quality["distinct_words"])
	}
}

func TestGrepFindsMatches(t *testing.T) {
	st := runWorkload(t, GrepWorkload(), 4)
	if st.Quality["matches"] == 0 {
		t.Fatal("grep found no matches of a common word")
	}
}

func TestNaiveBayesAccuracy(t *testing.T) {
	st := runWorkload(t, NaiveBayesWorkload(), 4)
	if acc := st.Quality["holdout_accuracy"]; acc < 0.7 {
		t.Fatalf("held-out accuracy = %v, want >= 0.7", acc)
	}
}

func TestSVMAccuracy(t *testing.T) {
	st := runWorkload(t, SVMWorkload(), 4)
	if acc := st.Quality["train_accuracy"]; acc < 0.65 {
		t.Fatalf("train accuracy = %v, want >= 0.65", acc)
	}
}

func TestKMeansMatchesSerial(t *testing.T) {
	st := runWorkload(t, KMeansWorkload(), 4)
	if d := st.Quality["serial_divergence"]; d > 1e-6 {
		t.Fatalf("distributed K-means diverged from serial by %v", d)
	}
}

func TestFuzzyKMeansMatchesSerial(t *testing.T) {
	st := runWorkload(t, FuzzyKMeansWorkload(), 4)
	if d := st.Quality["serial_divergence"]; d > 1e-6 {
		t.Fatalf("distributed fuzzy K-means diverged from serial by %v", d)
	}
}

func TestIBCFSimilaritiesMatchSerial(t *testing.T) {
	st := runWorkload(t, IBCFWorkload(), 4)
	if d := st.Quality["cosine_divergence"]; d > 1e-9 {
		t.Fatalf("distributed cosine diverged from serial by %v", d)
	}
	if st.Quality["pairs"] == 0 {
		t.Fatal("no item pairs produced")
	}
}

func TestHMMDecodeAccuracy(t *testing.T) {
	st := runWorkload(t, HMMWorkload(), 4)
	if acc := st.Quality["decode_accuracy"]; acc < 0.5 {
		t.Fatalf("decode accuracy = %v, want >= 0.5 (4-state chance is 0.25)", acc)
	}
}

func TestPageRankMatchesSerial(t *testing.T) {
	st := runWorkload(t, PageRankWorkload(), 4)
	if l1 := st.Quality["serial_l1"]; l1 > 1e-9 {
		t.Fatalf("distributed PageRank diverged from serial by %v", l1)
	}
	if sum := st.Quality["rank_sum"]; sum < 0.99 || sum > 1.01 {
		t.Fatalf("rank sum = %v, want ~1", sum)
	}
}

func TestHiveBenchMatchesEngine(t *testing.T) {
	st := runWorkload(t, HiveBenchWorkload(), 4)
	for _, k := range []string{"q1_match", "q2_revenue_match", "q3_revenue_match"} {
		if st.Quality[k] != 1 {
			t.Fatalf("%s failed: %+v", k, st.Quality)
		}
	}
	if st.Quality["q2_groups_mr"] != st.Quality["q2_groups_hive"] {
		t.Fatalf("q2 group counts differ: %+v", st.Quality)
	}
	if st.Quality["q3_groups_mr"] != st.Quality["q3_groups_hive"] {
		t.Fatalf("q3 group counts differ: %+v", st.Quality)
	}
}

func TestSpeedupShape(t *testing.T) {
	// Figure 2's core claims at reduced scale: every workload speeds up
	// from 1 to 8 slaves; speedups are diverse; values stay in a sane band.
	if testing.Short() {
		t.Skip("multi-cluster sweep")
	}
	for _, w := range []*Workload{SortWorkload(), KMeansWorkload(), NaiveBayesWorkload()} {
		base := runWorkload(t, w, 1)
		big := runWorkload(t, w, 8)
		speedup := base.Makespan / big.Makespan
		if speedup < 1.5 || speedup > 9 {
			t.Fatalf("%s: speedup(8) = %v, want in (1.5, 9)", w.Name, speedup)
		}
	}
}

func TestSortIsMostDiskIntensive(t *testing.T) {
	// Figure 5: Sort has the highest disk writes/second of the eleven.
	if testing.Short() {
		t.Skip("full workload sweep")
	}
	sortRate := runWorkload(t, SortWorkload(), 4).DiskWritesPerSecond()
	for _, w := range []*Workload{GrepWorkload(), KMeansWorkload(), NaiveBayesWorkload()} {
		if r := runWorkload(t, w, 4).DiskWritesPerSecond(); r >= sortRate {
			t.Fatalf("%s disk writes/s %v >= Sort's %v", w.Name, r, sortRate)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := runWorkload(t, WordCountWorkload(), 3)
	b := runWorkload(t, WordCountWorkload(), 3)
	if a.Makespan != b.Makespan || a.DiskWriteOps != b.DiskWriteOps {
		t.Fatalf("nondeterministic run: %v/%v vs %v/%v",
			a.Makespan, a.DiskWriteOps, b.Makespan, b.DiskWriteOps)
	}
}

// TestSlaveSweepMatchesSerial: the concurrent slave-count sweep must
// reproduce the serial loop's stats exactly — every environment is
// independent and identically seeded.
func TestSlaveSweepMatchesSerial(t *testing.T) {
	w := WordCountWorkload()
	counts := []int{1, 4, 8}

	var serial []*Stats
	for _, slaves := range counts {
		env := NewEnv(slaves, testScale, 12345)
		st, err := w.Run(env)
		if err != nil {
			t.Fatal(err)
		}
		serial = append(serial, st)
	}

	concurrent, err := SlaveSweep(context.Background(), w, counts, testScale, 12345, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, slaves := range counts {
		if !reflect.DeepEqual(serial[i], concurrent[i]) {
			t.Errorf("%d slaves: concurrent stats diverge from serial\nserial:     %+v\nconcurrent: %+v",
				slaves, serial[i], concurrent[i])
		}
	}
}
