package workloads

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"dcbench/internal/analysis"
	"dcbench/internal/datagen"
	"dcbench/internal/mapreduce"
)

const (
	prNodesPerSplit = 8
	prEdgesPerNode  = 4
	prDamping       = 0.85
	prIters         = 5
)

// prGraph builds the workload's web graph, patched so every node has at
// least one outlink (the distributed job then needs no dangling-mass
// aggregation; the serial reference runs on the same patched graph).
func prGraph(seed uint64, splits int) [][]int {
	n := splits * prNodesPerSplit
	adj := datagen.WebGraph(seed, n, prEdgesPerNode)
	for i := range adj {
		if len(adj[i]) == 0 {
			adj[i] = []int{(i + 1) % n}
		}
	}
	return adj
}

// PageRankWorkload runs the classic two-output MapReduce PageRank: each
// iteration's map emits the node's link list and a rank share per outlink;
// the reduce side sums shares into the damped new rank and re-attaches the
// links. The driver checks the distributed ranks against serial power
// iteration on the same graph.
func PageRankWorkload() *Workload {
	return &Workload{
		Name:      "PageRank",
		InputGB:   187,
		Domains:   []string{"search engine"},
		Scenarios: []string{"Compute the page rank"},
		Run: func(env *Env) (*Stats, error) {
			st := env.newStats("PageRank")
			simBytes := int64(187 * GB * env.Scale)
			splits := Splits(simBytes)
			adj := prGraph(env.Seed, splits)
			n := len(adj)
			simPerSplit := simBytes / int64(splits)

			// State records: (node, "rank|t1,t2,...").
			makeInput := func(ranks []float64) *mapreduce.SliceInput {
				in := &mapreduce.SliceInput{}
				for s := 0; s < splits; s++ {
					var recs []mapreduce.KV
					for i := s * prNodesPerSplit; i < (s+1)*prNodesPerSplit && i < n; i++ {
						recs = append(recs, mapreduce.KV{
							Key:   strconv.Itoa(i),
							Value: strconv.FormatFloat(ranks[i], 'g', -1, 64) + "|" + encodeInts(adj[i]),
						})
					}
					in.Splits = append(in.Splits, recs)
					in.SimBytes = append(in.SimBytes, simPerSplit)
				}
				return in
			}

			ranks := make([]float64, n)
			for i := range ranks {
				ranks[i] = 1 / float64(n)
			}
			base := (1 - prDamping) / float64(n)

			var results []*mapreduce.Result
			for iter := 1; iter <= prIters; iter++ {
				job := &mapreduce.Job{
					Name:  fmt.Sprintf("pagerank-iter-%d", iter),
					Input: makeInput(ranks),
					Mapper: mapreduce.MapperFunc(func(kv mapreduce.KV, emit mapreduce.Emit) {
						sep := strings.IndexByte(kv.Value, '|')
						rank, _ := strconv.ParseFloat(kv.Value[:sep], 64)
						links := decodeInts(kv.Value[sep+1:])
						emit(kv.Key, "L|"+kv.Value[sep+1:])
						share := rank / float64(len(links))
						for _, t := range links {
							emit(strconv.Itoa(t), "S|"+strconv.FormatFloat(share, 'g', -1, 64))
						}
					}),
					Reducer: mapreduce.ReducerFunc(func(key string, values []string, emit mapreduce.Emit) {
						var links string
						sum := 0.0
						for _, v := range values {
							switch v[0] {
							case 'L':
								links = v[2:]
							case 'S':
								s, _ := strconv.ParseFloat(v[2:], 64)
								sum += s
							}
						}
						emit(key, strconv.FormatFloat(base+prDamping*sum, 'g', -1, 64)+"|"+links)
					}),
					NumReducers: env.Reducers(),
					Cost:        mapreduce.CostModel{MapCPUPerByte: 1.06e-8, ReduceCPUPerByte: 2e-9},
				}
				res, err := env.RT.Run(job)
				if err != nil {
					return nil, err
				}
				results = append(results, res)
				for _, kv := range res.Flat() {
					node, _ := strconv.Atoi(kv.Key)
					sep := strings.IndexByte(kv.Value, '|')
					ranks[node], _ = strconv.ParseFloat(kv.Value[:sep], 64)
				}
			}

			// Serial reference: the same number of power iterations.
			serial := make([]float64, n)
			for i := range serial {
				serial[i] = 1 / float64(n)
			}
			for it := 0; it < prIters; it++ {
				serial = analysis.PageRankStep(adj, serial, prDamping)
			}
			l1 := 0.0
			sum := 0.0
			for i := range ranks {
				l1 += math.Abs(ranks[i] - serial[i])
				sum += ranks[i]
			}
			st.Quality["serial_l1"] = l1
			st.Quality["rank_sum"] = sum
			return env.finishStats(st, results...), nil
		},
	}
}
