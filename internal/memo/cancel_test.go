package memo

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// These tests pin the refcounted-cancellation invariant: DoShared
// participants leave a flight when their own context dies, and only the
// LAST departure cancels the running function's context.

// TestDoSharedOneCancelOthersSurvive: N joiners share a flight, one
// cancels — it gets its ctx error immediately, the others get the result,
// and the function's context is never cancelled.
func TestDoSharedOneCancelOthersSurvive(t *testing.T) {
	m := New[string, int]()
	started := make(chan struct{})
	release := make(chan struct{})
	var fnCtxErr atomic.Value // error observed by fn at release time
	var calls atomic.Int64

	fn := func(ctx context.Context) (int, error) {
		calls.Add(1)
		close(started)
		<-release
		fnCtxErr.Store(ctx.Err() == nil) // true = still alive
		return 99, nil
	}
	mustNotRun := func(ctx context.Context) (int, error) {
		t.Error("joiner must share the leader's call")
		return 0, nil
	}

	leaderErr := make(chan error, 1)
	go func() {
		_, err := m.DoShared(context.Background(), "k", fn)
		leaderErr <- err
	}()
	<-started

	// Two joiners: one patient, one that cancels mid-wait.
	cancelCtx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	patient := make(chan struct{})
	go func() {
		defer wg.Done()
		v, err := m.DoShared(context.Background(), "k", mustNotRun)
		if v != 99 || err != nil {
			t.Errorf("patient joiner = %d, %v; want 99", v, err)
		}
		close(patient)
	}()
	// Give the patient joiner time to attach before the canceller departs.
	for m.Len() != 1 {
		time.Sleep(time.Millisecond)
	}

	cancelled := make(chan error, 1)
	go func() {
		_, err := m.DoShared(cancelCtx, "k", mustNotRun)
		cancelled <- err
	}()
	cancel()
	if err := <-cancelled; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled joiner err = %v, want context.Canceled", err)
	}
	select {
	case <-patient:
		t.Fatal("patient joiner returned before the fn finished")
	default:
	}

	close(release)
	wg.Wait()
	if err := <-leaderErr; err != nil {
		t.Fatalf("leader err = %v", err)
	}
	if alive, _ := fnCtxErr.Load().(bool); !alive {
		t.Fatal("fn's context was cancelled although two participants remained")
	}
	if calls.Load() != 1 {
		t.Fatalf("fn ran %d times, want 1", calls.Load())
	}
}

// TestDoSharedAllCancelStopsFn: when every participant leaves, the
// function's context is cancelled, its error is never cached, and the next
// caller starts a fresh run instead of joining the doomed one.
func TestDoSharedAllCancelStopsFn(t *testing.T) {
	m := New[string, int]()
	started := make(chan struct{})
	fnDone := make(chan error, 1)

	ctx, cancel := context.WithCancel(context.Background())
	callerDone := make(chan error, 1)
	go func() {
		_, err := m.DoShared(ctx, "k", func(runCtx context.Context) (int, error) {
			close(started)
			<-runCtx.Done() // the work observes cancellation...
			fnDone <- runCtx.Err()
			return 0, runCtx.Err() // ...and fails with it
		})
		callerDone <- err
	}()
	<-started
	cancel()
	if err := <-callerDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("caller err = %v, want context.Canceled", err)
	}
	select {
	case err := <-fnDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("fn ctx err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("fn never observed the cancellation")
	}

	// The failure must not be cached: a fresh caller re-runs and succeeds.
	deadline := time.Now().Add(5 * time.Second)
	for {
		v, err := m.DoShared(context.Background(), "k", func(context.Context) (int, error) {
			return 42, nil
		})
		if err == nil && v == 42 {
			break
		}
		// A retry may still join the abandoned cell settling; back off.
		if time.Now().After(deadline) {
			t.Fatalf("post-cancel call = %d, %v; want a fresh 42", v, err)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDoSharedAbandonedLateSuccess: a run abandoned by every caller that
// nevertheless completes successfully retains its value — cancellation is
// advisory, and throwing away a finished result helps nobody.
func TestDoSharedAbandonedLateSuccess(t *testing.T) {
	m := New[string, int]()
	started := make(chan struct{})
	release := make(chan struct{})

	ctx, cancel := context.WithCancel(context.Background())
	callerDone := make(chan struct{})
	go func() {
		m.DoShared(ctx, "k", func(context.Context) (int, error) {
			close(started)
			<-release // ignores its context: finishes anyway
			return 7, nil
		})
		close(callerDone)
	}()
	<-started
	cancel()
	<-callerDone
	close(release)

	// Wait for the late success to settle, then read the retained value.
	// Join (not DoShared): a fresh run would displace the abandoned cell,
	// and this test is about the cell settling, not being replaced.
	deadline := time.Now().Add(5 * time.Second)
	for {
		v, err, ok := m.Join(context.Background(), "k")
		if ok && err == nil && v == 7 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("retained read = %d, %v, %v; want the late 7", v, err, ok)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDoCtxPinsSharedCell: a blocking DoCtx joiner on a DoShared-started
// cell pins it — the DoShared starter cancelling out does NOT cancel the
// run, and the blocking caller gets the result.
func TestDoCtxPinsSharedCell(t *testing.T) {
	m := NewFlight[string, int]()
	started := make(chan struct{})
	release := make(chan struct{})
	var fnAlive atomic.Bool

	ctx, cancel := context.WithCancel(context.Background())
	starterDone := make(chan error, 1)
	go func() {
		_, err := m.DoShared(ctx, "k", func(runCtx context.Context) (int, error) {
			close(started)
			<-release
			fnAlive.Store(runCtx.Err() == nil)
			return 5, nil
		})
		starterDone <- err
	}()
	<-started

	joined := make(chan struct{})
	m.OnJoin(func() { close(joined) })
	pinnedDone := make(chan struct{})
	go func() {
		defer close(pinnedDone)
		v, err := m.DoCtx(context.Background(), "k", func(context.Context) (int, error) {
			t.Error("pinned joiner must not run fn")
			return 0, nil
		})
		if v != 5 || err != nil {
			t.Errorf("pinned joiner = %d, %v; want 5", v, err)
		}
	}()
	<-joined

	cancel()
	if err := <-starterDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("starter err = %v, want context.Canceled", err)
	}
	close(release)
	<-pinnedDone
	if !fnAlive.Load() {
		t.Fatal("fn's context was cancelled although a pinned DoCtx joiner remained")
	}
}

// TestJoinPeek: Join never starts a run (ok=false on a cold key), returns
// retained values immediately, and attaches to in-flight cells like a
// DoShared joiner — including cancellable waiting.
func TestJoinPeek(t *testing.T) {
	m := New[string, int]()
	if _, _, ok := m.Join(context.Background(), "cold"); ok {
		t.Fatal("Join on a cold key reported ok")
	}

	if _, err := m.Do("warm", func() (int, error) { return 3, nil }); err != nil {
		t.Fatal(err)
	}
	if v, err, ok := m.Join(context.Background(), "warm"); !ok || err != nil || v != 3 {
		t.Fatalf("Join on retained key = %d, %v, %v; want 3, nil, true", v, err, ok)
	}

	started := make(chan struct{})
	release := make(chan struct{})
	go m.DoShared(context.Background(), "hot", func(context.Context) (int, error) {
		close(started)
		<-release
		return 8, nil
	})
	<-started
	joinDone := make(chan int, 1)
	go func() {
		v, err, ok := m.Join(context.Background(), "hot")
		if !ok || err != nil {
			t.Errorf("Join on in-flight key = %v, %v", err, ok)
		}
		joinDone <- v
	}()
	// The join must be waiting, not failing fast.
	select {
	case v := <-joinDone:
		t.Fatalf("Join returned %d before the flight finished", v)
	case <-time.After(10 * time.Millisecond):
	}
	close(release)
	if v := <-joinDone; v != 8 {
		t.Fatalf("joined value = %d, want 8", v)
	}

	// A cancelled Join leaves without killing the flight for others... but
	// here it is the only cancellable participant besides the starter, so
	// the run keeps the starter's refcount and completes.
	if _, err, ok := m.Join(canceledCtx(), "warm"); !ok || err != nil {
		t.Fatalf("cancelled Join on retained key = %v, %v; the value is already done", err, ok)
	}
}

func canceledCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

// TestDoSharedCancelStress hammers one key with cancelling and patient
// callers under the race detector: no deadlocks, no cached errors, every
// non-cancelled caller gets a valid value.
func TestDoSharedCancelStress(t *testing.T) {
	m := NewFlight[int, int]()
	const (
		keys    = 4
		callers = 64
	)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := i % keys
			ctx := context.Background()
			if i%3 == 0 {
				c, cancel := context.WithCancel(ctx)
				// Cancel at a jittered point: before, during, after the call.
				go func() {
					time.Sleep(time.Duration(i%7) * 100 * time.Microsecond)
					cancel()
				}()
				defer cancel()
				ctx = c
			}
			v, err := m.DoShared(ctx, key, func(runCtx context.Context) (int, error) {
				select {
				case <-runCtx.Done():
					return 0, runCtx.Err()
				case <-time.After(200 * time.Microsecond):
					return key + 1, nil
				}
			})
			if err == nil && v != key+1 {
				t.Errorf("caller %d got %d, want %d", i, v, key+1)
			}
		}(i)
	}
	wg.Wait()
	if got := m.Len(); got != 0 {
		t.Fatalf("flight memo retained %d keys after the storm", got)
	}
}
