package memo

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestStressAgainstSerialOracle hammers a retaining memo from many
// goroutines (run under -race in CI) and checks every returned value
// against a serial oracle: key k's value is always base[k] stamped by the
// first successful run, fn runs at most once per key *between failures*,
// and injected failures never leak a cached error. The oracle is the
// deterministic function itself — any torn read, lost delete-on-error or
// double execution shows up as a mismatched value or an impossible count.
func TestStressAgainstSerialOracle(t *testing.T) {
	const (
		workers = 16
		keys    = 23
		rounds  = 400
	)
	m := New[int, int]()
	var succ [keys]atomic.Int64 // successful executions per key: must end at 1

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for r := 0; r < rounds; r++ {
				k := rng.Intn(keys)
				fail := rng.Intn(4) == 0 // a quarter of executions fail
				v, err := m.Do(k, func() (int, error) {
					if fail && succ[k].Load() == 0 {
						return 0, errors.New("injected")
					}
					succ[k].Add(1)
					return 1000 + k, nil
				})
				if err != nil {
					continue // failures are legal; they must just not stick
				}
				if v != 1000+k {
					t.Errorf("key %d returned %d, oracle says %d", k, v, 1000+k)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()

	// Drain: with no more injected failures every key must resolve to its
	// oracle value on a single (possibly first) successful execution.
	for k := 0; k < keys; k++ {
		v, err := m.Do(k, func() (int, error) { succ[k].Add(1); return 1000 + k, nil })
		if err != nil || v != 1000+k {
			t.Fatalf("drain key %d = %d, %v", k, v, err)
		}
		if n := succ[k].Load(); n != 1 {
			t.Errorf("key %d executed successfully %d times, want exactly 1 (singleflight + retention)", k, n)
		}
	}
	if m.Len() != keys {
		t.Errorf("Len = %d, want %d retained keys", m.Len(), keys)
	}
}
