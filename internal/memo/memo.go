// Package memo is the repo's one singleflight implementation: a generic
// per-key memo table where concurrent calls for the same key share a single
// execution, with an audited set of invariants every user inherits instead
// of hand-rolling.
//
// The invariants, in the order they bite:
//
//   - one flight per key: among concurrent Do calls for a key, exactly one
//     runs the function; the rest wait and share its result;
//   - panics become errors: a panicking function is converted to an error
//     delivered to every sharer, and the key is left usable — a render or
//     simulation that panics must not wedge its endpoint forever;
//   - errors are never cached: a failed call (cancellation included) is
//     forgotten the moment it completes, so the next caller retries instead
//     of replaying a stale failure;
//   - retention is the only knob: New keeps successful values for the
//     memo's lifetime (the sweep engine's and stats cache's semantics),
//     NewFlight drops them once the last sharer returns (the serve layer's
//     request coalescing, where the layer below is already a cache).
//
// The sweep engine, the serve layer's request coalescing, the cluster
// stats cache and the dispatch layer's remote fetches all run on this one
// type — a coalescing bug is fixed here or it is not fixed.
package memo

import (
	"context"
	"fmt"
	"sync"

	"dcbench/internal/obs"
)

// cell is one key's flight: done closes when the call completes, after
// which val/err are immutable.
type cell[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Memo is a per-key singleflight table. The zero value is NOT ready;
// create with New or NewFlight. Safe for concurrent use.
type Memo[K comparable, V any] struct {
	mu     sync.Mutex
	m      map[K]*cell[V]
	retain bool
	name   string
	onJoin func()
}

// New returns a retaining memo: successful values are cached for the
// memo's lifetime and later calls for the key return them without running
// the function again. Failures are never retained.
func New[K comparable, V any]() *Memo[K, V] {
	return &Memo[K, V]{m: make(map[K]*cell[V]), retain: true}
}

// NewFlight returns a non-retaining memo — a pure flight group: the key
// empties as soon as its call completes, so only genuinely concurrent
// callers share a result. Use it when the layer below is already a cache.
func NewFlight[K comparable, V any]() *Memo[K, V] {
	return &Memo[K, V]{m: make(map[K]*cell[V])}
}

// OnJoin registers a callback fired each time a caller joins a key's
// in-flight call instead of starting its own — at join time, not
// completion, so coalescing is observable while the shared call is still
// running. Returning a retained value does not fire it. Set before use;
// OnJoin is not synchronized against concurrent Do.
func (m *Memo[K, V]) OnJoin(fn func()) { m.onJoin = fn }

// SetName labels the memo for tracing: a caller that joins another
// caller's in-flight cell through DoCtx records a "<name>.join" span
// covering its wait. Set before use (like OnJoin, it is not synchronized
// against concurrent Do); the default name is "memo".
func (m *Memo[K, V]) SetName(name string) { m.name = name }

func (m *Memo[K, V]) spanName() string {
	if m.name == "" {
		return "memo.join"
	}
	return m.name + ".join"
}

// Len reports how many keys currently hold a cell (in-flight or retained).
func (m *Memo[K, V]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.m)
}

// Do returns the value for key, running fn at most once among concurrent
// callers. Sharers of one flight all receive its value and error; values
// may therefore be shared across goroutines — treat them as read-only.
func (m *Memo[K, V]) Do(key K, fn func() (V, error)) (V, error) {
	return m.DoCtx(context.Background(), key, func(context.Context) (V, error) { return fn() })
}

// DoCtx is Do with request-context plumbing for observability: fn runs
// with the executing caller's ctx (so spans it starts land in that
// caller's trace), and a caller that instead joins an in-flight cell
// records a "<name>.join" span on its own trace covering the wait —
// coalescing is visible in the timeline of the request that benefited
// from it. The context carries values only; like Do, a caller's
// cancellation does not abort the shared call.
func (m *Memo[K, V]) DoCtx(ctx context.Context, key K, fn func(context.Context) (V, error)) (V, error) {
	m.mu.Lock()
	if c, ok := m.m[key]; ok {
		m.mu.Unlock()
		select {
		case <-c.done: // retained value: no coalescing happened
		default:
			if m.onJoin != nil {
				m.onJoin()
			}
			sp := obs.Start(ctx, m.spanName())
			<-c.done
			sp.End()
		}
		return c.val, c.err
	}
	c := &cell[V]{done: make(chan struct{})}
	m.m[key] = c
	m.mu.Unlock()

	// Cleanup must survive a panicking fn (net/http recovers handler
	// panics): without the defer, every sharer — and all future callers of
	// the key — would block forever on a done channel nobody closes.
	func() {
		defer func() {
			if rec := recover(); rec != nil {
				c.err = fmt.Errorf("memo: call panicked: %v", rec)
			}
			close(c.done)
			m.mu.Lock()
			// Drop failures always (the next caller retries) and successes
			// in flight mode; the identity check keeps a concurrent
			// replacement cell, if one ever existed, intact.
			if (c.err != nil || !m.retain) && m.m[key] == c {
				delete(m.m, key)
			}
			m.mu.Unlock()
		}()
		c.val, c.err = fn(ctx)
	}()
	return c.val, c.err
}
