// Package memo is the repo's one singleflight implementation: a generic
// per-key memo table where concurrent calls for the same key share a single
// execution, with an audited set of invariants every user inherits instead
// of hand-rolling.
//
// The invariants, in the order they bite:
//
//   - one flight per key: among concurrent Do calls for a key, exactly one
//     runs the function; the rest wait and share its result;
//   - panics become errors: a panicking function is converted to an error
//     delivered to every sharer, and the key is left usable — a render or
//     simulation that panics must not wedge its endpoint forever;
//   - errors are never cached: a failed call (cancellation included) is
//     forgotten the moment it completes, so the next caller retries instead
//     of replaying a stale failure;
//   - retention is the only knob: New keeps successful values for the
//     memo's lifetime (the sweep engine's and stats cache's semantics),
//     NewFlight drops them once the last sharer returns (the serve layer's
//     request coalescing, where the layer below is already a cache);
//   - cancellation is refcounted: DoShared participants leave a flight when
//     their own context is cancelled, and only the LAST departure cancels
//     the running function's context — one impatient caller among N never
//     aborts work the other N-1 are waiting on. Do/DoCtx participants are
//     pinned (they never leave), so blocking callers keep their current
//     semantics even when sharing a cell with cancellable ones.
//
// The sweep engine, the serve layer's request coalescing, the cluster
// stats cache and the dispatch layer's remote fetches all run on this one
// type — a coalescing bug is fixed here or it is not fixed.
package memo

import (
	"context"
	"fmt"
	"sync"

	"dcbench/internal/obs"
)

// cell is one key's flight: done closes when the call completes, after
// which val/err are immutable.
//
// The remaining fields implement refcounted cancellation and are guarded
// by the memo's mu. joiners counts the participants whose result delivery
// is still pending; cancel (non-nil only for DoShared-started cells) stops
// the running function's context; abandoned flips when the last joiner
// leaves before completion, at which point the cell is dead to new
// callers — they start a replacement instead of joining a cancelled run.
type cell[V any] struct {
	done chan struct{}
	val  V
	err  error

	joiners   int
	cancel    context.CancelFunc
	abandoned bool
}

// Memo is a per-key singleflight table. The zero value is NOT ready;
// create with New or NewFlight. Safe for concurrent use.
type Memo[K comparable, V any] struct {
	mu     sync.Mutex
	m      map[K]*cell[V]
	retain bool
	name   string
	onJoin func()
}

// New returns a retaining memo: successful values are cached for the
// memo's lifetime and later calls for the key return them without running
// the function again. Failures are never retained.
func New[K comparable, V any]() *Memo[K, V] {
	return &Memo[K, V]{m: make(map[K]*cell[V]), retain: true}
}

// NewFlight returns a non-retaining memo — a pure flight group: the key
// empties as soon as its call completes, so only genuinely concurrent
// callers share a result. Use it when the layer below is already a cache.
func NewFlight[K comparable, V any]() *Memo[K, V] {
	return &Memo[K, V]{m: make(map[K]*cell[V])}
}

// OnJoin registers a callback fired each time a caller joins a key's
// in-flight call instead of starting its own — at join time, not
// completion, so coalescing is observable while the shared call is still
// running. Returning a retained value does not fire it. Set before use;
// OnJoin is not synchronized against concurrent Do.
func (m *Memo[K, V]) OnJoin(fn func()) { m.onJoin = fn }

// SetName labels the memo for tracing: a caller that joins another
// caller's in-flight cell through DoCtx records a "<name>.join" span
// covering its wait. Set before use (like OnJoin, it is not synchronized
// against concurrent Do); the default name is "memo".
func (m *Memo[K, V]) SetName(name string) { m.name = name }

func (m *Memo[K, V]) spanName() string {
	if m.name == "" {
		return "memo.join"
	}
	return m.name + ".join"
}

// Len reports how many keys currently hold a cell (in-flight or retained).
func (m *Memo[K, V]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.m)
}

// Do returns the value for key, running fn at most once among concurrent
// callers. Sharers of one flight all receive its value and error; values
// may therefore be shared across goroutines — treat them as read-only.
func (m *Memo[K, V]) Do(key K, fn func() (V, error)) (V, error) {
	return m.DoCtx(context.Background(), key, func(context.Context) (V, error) { return fn() })
}

// DoCtx is Do with request-context plumbing for observability: fn runs
// with the executing caller's ctx (so spans it starts land in that
// caller's trace), and a caller that instead joins an in-flight cell
// records a "<name>.join" span on its own trace covering the wait —
// coalescing is visible in the timeline of the request that benefited
// from it. The context carries values only; like Do, a caller's
// cancellation does not abort the shared call.
func (m *Memo[K, V]) DoCtx(ctx context.Context, key K, fn func(context.Context) (V, error)) (V, error) {
	m.mu.Lock()
	if c, ok := m.joinable(key); ok {
		// A DoCtx joiner is pinned: it increments the refcount and never
		// leaves, so a cell with a DoCtx participant can never be cancelled
		// out from under it by DoShared joiners departing.
		c.joiners++
		m.mu.Unlock()
		select {
		case <-c.done: // retained value: no coalescing happened
		default:
			if m.onJoin != nil {
				m.onJoin()
			}
			sp := obs.Start(ctx, m.spanName())
			<-c.done
			sp.End()
		}
		return c.val, c.err
	}
	c := &cell[V]{done: make(chan struct{}), joiners: 1}
	m.m[key] = c
	m.mu.Unlock()

	// Cleanup must survive a panicking fn (net/http recovers handler
	// panics): without the defer, every sharer — and all future callers of
	// the key — would block forever on a done channel nobody closes.
	func() {
		defer m.settle(key, c)()
		c.val, c.err = fn(ctx)
	}()
	return c.val, c.err
}

// DoShared is DoCtx with refcounted cancellation: fn runs on its own
// goroutine under a context derived from the starting caller's (values
// preserved, cancellation severed), and every participant — starter and
// joiners alike — waits under its own ctx. A caller whose ctx is cancelled
// leaves the flight with ctx.Err() while the others keep waiting; when the
// LAST participant leaves, the function's context is cancelled, so the
// underlying work observes cancellation exactly when nobody wants the
// result anymore. A cancelled-and-abandoned cell is dead: later callers
// start a fresh run rather than joining a doomed one.
//
// DoCtx/Do participants on the same key are pinned joiners (they never
// leave), so mixing the two is safe: a DoShared canceller cannot abort a
// run a blocking caller is still waiting on.
func (m *Memo[K, V]) DoShared(ctx context.Context, key K, fn func(context.Context) (V, error)) (V, error) {
	var zero V
	m.mu.Lock()
	if c, ok := m.joinable(key); ok {
		c.joiners++
		m.mu.Unlock()
		select {
		case <-c.done: // retained value: no coalescing happened
			return c.val, c.err
		default:
		}
		if m.onJoin != nil {
			m.onJoin()
		}
		sp := obs.Start(ctx, m.spanName())
		select {
		case <-c.done:
			sp.End()
			return c.val, c.err
		case <-ctx.Done():
			sp.End("cancelled", "true")
			m.leave(c)
			return zero, ctx.Err()
		}
	}
	c := &cell[V]{done: make(chan struct{}), joiners: 1}
	// The run's context outlives the starter: values (trace spans) come
	// from the starting caller, cancellation only from the refcount.
	runCtx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	c.cancel = cancel
	m.m[key] = c
	m.mu.Unlock()

	go func() {
		defer m.settle(key, c)()
		c.val, c.err = fn(runCtx)
	}()

	select {
	case <-c.done:
		return c.val, c.err
	case <-ctx.Done():
		m.leave(c)
		return zero, ctx.Err()
	}
}

// Join waits for key's retained or in-flight result without ever starting
// a run: ok is false (immediately) when there is nothing to join. It is
// the shed-or-join peek — a caller with no capacity to start work can
// still collect a result someone else is already computing. The wait is
// cancellable and refcounted exactly like a DoShared join.
func (m *Memo[K, V]) Join(ctx context.Context, key K) (val V, err error, ok bool) {
	var zero V
	m.mu.Lock()
	c, joinable := m.joinable(key)
	if !joinable {
		m.mu.Unlock()
		return zero, nil, false
	}
	c.joiners++
	m.mu.Unlock()
	select {
	case <-c.done: // retained value
		return c.val, c.err, true
	default:
	}
	if m.onJoin != nil {
		m.onJoin()
	}
	sp := obs.Start(ctx, m.spanName())
	select {
	case <-c.done:
		sp.End()
		return c.val, c.err, true
	case <-ctx.Done():
		sp.End("cancelled", "true")
		m.leave(c)
		return zero, ctx.Err(), true
	}
}

// joinable returns key's cell when a caller may attach to it. An abandoned
// cell (every joiner left before completion) is treated as absent: its run
// is cancelled and its error, if any, must not be shared with fresh
// callers. Callers must hold m.mu.
func (m *Memo[K, V]) joinable(key K) (*cell[V], bool) {
	c, ok := m.m[key]
	if !ok || c.abandoned {
		return nil, false
	}
	return c, true
}

// settle returns the deferred cleanup for a cell whose fn is about to run:
// panic conversion, completion signalling, and map maintenance. The
// identity check keeps a concurrent replacement cell (started after this
// one was abandoned) intact.
func (m *Memo[K, V]) settle(key K, c *cell[V]) func() {
	return func() {
		if rec := recover(); rec != nil {
			c.err = fmt.Errorf("memo: call panicked: %v", rec)
		}
		close(c.done)
		m.mu.Lock()
		if c.err == nil {
			// A run that completed successfully despite being abandoned
			// still yields a perfectly good value; un-abandon it so
			// retained-mode lookups serve it.
			c.abandoned = false
		}
		// Drop failures always (the next caller retries) and successes
		// in flight mode.
		if (c.err != nil || !m.retain) && m.m[key] == c {
			delete(m.m, key)
		}
		m.mu.Unlock()
		if c.cancel != nil {
			c.cancel() // release the run context's resources
		}
	}
}

// leave records one cancellable participant's departure from an unfinished
// cell; the last one out cancels the run's context and marks the cell
// abandoned. Departures from completed cells are moot.
func (m *Memo[K, V]) leave(c *cell[V]) {
	var cancel context.CancelFunc
	m.mu.Lock()
	c.joiners--
	select {
	case <-c.done: // completed concurrently: nothing to cancel
	default:
		if c.joiners == 0 && c.cancel != nil {
			c.abandoned = true
			cancel = c.cancel
		}
	}
	m.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}
