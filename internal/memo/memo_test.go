package memo

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"dcbench/internal/obs"
)

// TestRetainCachesSuccess: a retaining memo runs fn once per key and then
// serves the cached value — including the same pointer, which the sweep
// engine's memoized-counters sharing depends on.
func TestRetainCachesSuccess(t *testing.T) {
	m := New[string, *int]()
	var calls atomic.Int64
	mk := func() (*int, error) {
		calls.Add(1)
		v := 7
		return &v, nil
	}
	a, err := m.Do("k", mk)
	if err != nil || *a != 7 {
		t.Fatalf("first Do = %v, %v", a, err)
	}
	b, err := m.Do("k", mk)
	if err != nil || b != a {
		t.Fatalf("second Do returned a different pointer (%p vs %p) or err %v", b, a, err)
	}
	if calls.Load() != 1 {
		t.Fatalf("fn ran %d times, want 1", calls.Load())
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1 retained key", m.Len())
	}
}

// TestErrorsAreNeverCached: a failed call is forgotten on completion, so
// the next caller retries — in both retention modes.
func TestErrorsAreNeverCached(t *testing.T) {
	for name, m := range map[string]*Memo[string, int]{
		"retain": New[string, int](),
		"flight": NewFlight[string, int](),
	} {
		var calls int
		boom := errors.New("boom")
		if _, err := m.Do("k", func() (int, error) { calls++; return 0, boom }); err != boom {
			t.Fatalf("%s: first err = %v, want boom", name, err)
		}
		if m.Len() != 0 {
			t.Fatalf("%s: failed key retained (Len = %d)", name, m.Len())
		}
		v, err := m.Do("k", func() (int, error) { calls++; return 42, nil })
		if err != nil || v != 42 || calls != 2 {
			t.Fatalf("%s: retry = %d, %v after %d calls; want 42 on the 2nd", name, v, err, calls)
		}
	}
}

// TestFlightDropsSuccess: a non-retaining memo empties the key once the
// call completes; the next call re-runs.
func TestFlightDropsSuccess(t *testing.T) {
	m := NewFlight[string, int]()
	var calls int
	for i := 1; i <= 2; i++ {
		v, err := m.Do("k", func() (int, error) { calls++; return calls, nil })
		if err != nil || v != i {
			t.Fatalf("call %d = %d, %v", i, v, err)
		}
	}
	if m.Len() != 0 {
		t.Fatalf("flight memo retained a key (Len = %d)", m.Len())
	}
}

// TestConcurrentCallersShareOneFlight: the joiner waits on the leader's
// call (observable via OnJoin before completion) and shares its result.
func TestConcurrentCallersShareOneFlight(t *testing.T) {
	m := New[string, int]()
	started := make(chan struct{})
	release := make(chan struct{})
	joined := make(chan struct{})
	m.OnJoin(func() { close(joined) })

	var wg sync.WaitGroup
	wg.Add(2)
	vals := make([]int, 2)
	errs := make([]error, 2)
	go func() {
		defer wg.Done()
		vals[0], errs[0] = m.Do("k", func() (int, error) {
			close(started)
			<-release
			return 99, nil
		})
	}()
	<-started
	go func() {
		defer wg.Done()
		vals[1], errs[1] = m.Do("k", func() (int, error) {
			t.Error("joiner must share the leader's call, not start its own")
			return 0, nil
		})
	}()
	<-joined
	close(release)
	wg.Wait()
	for i := range vals {
		if errs[i] != nil || vals[i] != 99 {
			t.Fatalf("caller %d = %d, %v; want the shared 99", i, vals[i], errs[i])
		}
	}
}

// TestPanicDoesNotWedge: a panicking call surfaces as an error to every
// sharer and leaves the key usable — without cleanup under defer, one
// panic would hang the key forever.
func TestPanicDoesNotWedge(t *testing.T) {
	m := NewFlight[string, []byte]()
	started := make(chan struct{})
	release := make(chan struct{})
	joined := make(chan struct{})
	m.OnJoin(func() { close(joined) })

	var wg sync.WaitGroup
	wg.Add(2)
	errs := make([]error, 2)
	go func() {
		defer wg.Done()
		_, errs[0] = m.Do("k", func() ([]byte, error) {
			close(started)
			<-release
			panic("boom")
		})
	}()
	<-started
	go func() {
		defer wg.Done()
		_, errs[1] = m.Do("k", func() ([]byte, error) {
			t.Error("joiner must share the first call, not start its own")
			return nil, nil
		})
	}()
	<-joined
	close(release)
	wg.Wait()
	for i, err := range errs {
		if err == nil || !strings.Contains(err.Error(), "boom") {
			t.Fatalf("caller %d error = %v, want the converted panic", i, err)
		}
	}

	// The key must be free again.
	body, err := m.Do("k", func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || string(body) != "ok" {
		t.Fatalf("post-panic call = %q, %v; the key is wedged", body, err)
	}
}

// TestDoCtxJoinSpan pins the observability contract of DoCtx: the
// executing caller's fn receives a context carrying that caller's trace,
// and a caller that joins the in-flight cell records a "<name>.join" span
// on its own trace covering the wait — while the executor's trace gets no
// join span.
func TestDoCtxJoinSpan(t *testing.T) {
	m := NewFlight[string, int]()
	m.SetName("sweep")
	rec := obs.NewRecorder(8)

	execTr := rec.StartTrace("executor", "")
	joinTr := rec.StartTrace("joiner", "")
	started := make(chan struct{})
	release := make(chan struct{})
	joined := make(chan struct{})
	m.OnJoin(func() { close(joined) })

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		m.DoCtx(obs.With(context.Background(), execTr), "k", func(ctx context.Context) (int, error) {
			// Spans started inside fn land in the executing caller's trace.
			obs.Start(ctx, "simulate").End()
			close(started)
			<-release
			return 1, nil
		})
	}()
	go func() {
		defer wg.Done()
		<-started
		v, err := m.DoCtx(obs.With(context.Background(), joinTr), "k", func(context.Context) (int, error) {
			t.Error("joiner must not run fn")
			return 0, nil
		})
		if v != 1 || err != nil {
			t.Errorf("joiner got %d, %v", v, err)
		}
	}()
	<-joined
	close(release)
	wg.Wait()
	execTr.Finish()
	joinTr.Finish()

	spans := func(id string) []string {
		var names []string
		for _, td := range rec.Traces(0) {
			if td.ID == id {
				for _, sp := range td.Spans {
					names = append(names, sp.Name)
				}
			}
		}
		return names
	}
	if got := spans(execTr.ID()); len(got) != 1 || got[0] != "simulate" {
		t.Errorf("executor spans = %v, want [simulate]", got)
	}
	if got := spans(joinTr.ID()); len(got) != 1 || got[0] != "sweep.join" {
		t.Errorf("joiner spans = %v, want [sweep.join]", got)
	}
}

// TestDoCtxRetainedValueNoJoinSpan: returning an already-retained value is
// not coalescing — no join span is recorded for it.
func TestDoCtxRetainedValueNoJoinSpan(t *testing.T) {
	m := New[string, int]()
	rec := obs.NewRecorder(8)
	if _, err := m.Do("k", func() (int, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	tr := rec.StartTrace("warm", "")
	if v, err := m.DoCtx(obs.With(context.Background(), tr), "k", func(context.Context) (int, error) {
		return 0, errors.New("must not run")
	}); v != 1 || err != nil {
		t.Fatalf("retained read = %d, %v", v, err)
	}
	tr.Finish()
	if td := rec.Traces(0)[0]; len(td.Spans) != 0 {
		t.Errorf("warm read recorded spans %+v, want none", td.Spans)
	}
}
