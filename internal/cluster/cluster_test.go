package cluster

import (
	"testing"

	"dcbench/internal/sim"
)

func testConfig(nodes int) Config {
	cfg := DefaultConfig(nodes)
	cfg.CoresPerNode = 2
	return cfg
}

func TestComputeOccupiesCore(t *testing.T) {
	c := New(testConfig(1), 1)
	n := c.Node(0)
	// Three 1-second jobs on two cores: makespan 2 s.
	for i := 0; i < 3; i++ {
		c.Eng.Go(func(p *sim.Process) { n.Compute(p, 1) })
	}
	c.Eng.Run()
	if c.Eng.Now() != 2 {
		t.Fatalf("makespan = %v, want 2", c.Eng.Now())
	}
}

func TestDiskCounters(t *testing.T) {
	cfg := testConfig(1)
	cfg.IOSize = 1000
	c := New(cfg, 1)
	n := c.Node(0)
	c.Eng.Go(func(p *sim.Process) {
		n.WriteDisk(p, 2500) // 3 ops
		n.WriteDisk(p, 1000) // 1 op
		n.ReadDisk(p, 500)   // 1 op
	})
	c.Eng.Run()
	if n.DiskWriteOps != 4 {
		t.Fatalf("write ops = %d, want 4", n.DiskWriteOps)
	}
	if n.DiskWriteBytes != 3500 {
		t.Fatalf("write bytes = %d, want 3500", n.DiskWriteBytes)
	}
	if n.DiskReadOps != 1 || n.DiskReadBytes != 500 {
		t.Fatalf("read counters = %d ops %d bytes", n.DiskReadOps, n.DiskReadBytes)
	}
}

func TestDiskSerialises(t *testing.T) {
	cfg := testConfig(1)
	cfg.DiskWriteBW = 100
	cfg.DiskLatency = 0
	c := New(cfg, 1)
	n := c.Node(0)
	for i := 0; i < 2; i++ {
		c.Eng.Go(func(p *sim.Process) { n.WriteDisk(p, 100) })
	}
	c.Eng.Run()
	if c.Eng.Now() != 2 {
		t.Fatalf("two 1s writes on one disk took %v, want 2", c.Eng.Now())
	}
}

func TestSendChargesBothNICs(t *testing.T) {
	cfg := testConfig(2)
	cfg.NetBW = 100
	cfg.NetLatency = 0
	c := New(cfg, 1)
	var end float64
	c.Eng.Go(func(p *sim.Process) {
		c.Send(p, 0, 1, 100)
		end = p.Now()
	})
	c.Eng.Run()
	// Serialised through out-NIC then in-NIC: 1 s + 1 s.
	if end != 2 {
		t.Fatalf("end = %v, want 2", end)
	}
	if c.Node(0).NetOutBytes != 100 || c.Node(1).NetInBytes != 100 {
		t.Fatal("net counters not updated")
	}
}

func TestLocalSendFree(t *testing.T) {
	c := New(testConfig(2), 1)
	c.Eng.Go(func(p *sim.Process) {
		c.Send(p, 1, 1, 1<<30)
		if p.Now() != 0 {
			t.Errorf("loopback send took time: %v", p.Now())
		}
	})
	c.Eng.Run()
	if c.Node(1).NetOutBytes != 0 {
		t.Fatal("loopback send hit the NIC counter")
	}
}

func TestNetworkContention(t *testing.T) {
	// Two flows into the same receiver share its inbound NIC.
	cfg := testConfig(3)
	cfg.NetBW = 100
	cfg.NetLatency = 0
	c := New(cfg, 1)
	var ends []float64
	for src := 0; src < 2; src++ {
		src := src
		c.Eng.Go(func(p *sim.Process) {
			c.Send(p, src, 2, 100)
			ends = append(ends, p.Now())
		})
	}
	c.Eng.Run()
	if len(ends) != 2 {
		t.Fatal("flows did not finish")
	}
	last := ends[0]
	if ends[1] > last {
		last = ends[1]
	}
	if last < 3 { // 1s out (parallel) + 2x1s serialised at the receiver
		t.Fatalf("receiver NIC did not serialise: last end %v", last)
	}
}

func TestTotals(t *testing.T) {
	c := New(testConfig(2), 1)
	c.Eng.Go(func(p *sim.Process) {
		c.Node(0).WriteDisk(p, 1<<20)
		c.Node(1).WriteDisk(p, 1<<20)
		c.Send(p, 0, 1, 1<<20)
	})
	c.Eng.Run()
	if c.TotalDiskWriteBytes() != 2<<20 {
		t.Fatalf("total write bytes = %d", c.TotalDiskWriteBytes())
	}
	if c.TotalDiskWriteOps() != 8 { // 1 MiB / 256 KiB = 4 each
		t.Fatalf("total write ops = %d, want 8", c.TotalDiskWriteOps())
	}
	if c.TotalNetBytes() != 1<<20 {
		t.Fatalf("total net bytes = %d", c.TotalNetBytes())
	}
}
