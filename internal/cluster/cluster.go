// Package cluster models a small data-center cluster — nodes with cores,
// disks and NICs connected by a switch — on top of the discrete-event kernel
// in internal/sim. It reproduces the testbed of the paper (Section III-A):
// one master plus N slave nodes, two 6-core Xeon E5645 processors per node,
// 32 GB of memory and 1 GbE networking.
//
// The model charges virtual time for compute (core-seconds), disk transfers
// and network transfers, and accumulates the operation counters that the
// paper reads from /proc (notably disk writes per second, Figure 5).
package cluster

import (
	"fmt"

	"dcbench/internal/sim"
)

// Config describes the hardware of every node. The defaults (DefaultConfig)
// follow the paper's testbed.
type Config struct {
	Nodes        int     // number of slave nodes (the master is implicit)
	CoresPerNode int     // hardware threads usable by tasks
	DiskReadBW   float64 // bytes/second sequential read
	DiskWriteBW  float64 // bytes/second sequential write
	DiskLatency  float64 // seconds per disk operation
	NetBW        float64 // bytes/second per NIC direction
	NetLatency   float64 // seconds per message
	IOSize       int64   // bytes per accounted disk operation
}

// DefaultConfig mirrors the paper's 5-node testbed: four slaves, 12 hardware
// threads each, a single SATA-class disk and 1 GbE.
func DefaultConfig(slaves int) Config {
	return Config{
		Nodes:        slaves,
		CoresPerNode: 12,
		DiskReadBW:   120e6,
		DiskWriteBW:  90e6,
		DiskLatency:  0.004,
		NetBW:        125e6, // 1 Gb/s
		NetLatency:   0.0002,
		IOSize:       256 << 10,
	}
}

// Node is one slave machine.
type Node struct {
	ID    int
	Cores *sim.Resource

	diskRead  *sim.Pipe
	diskWrite *sim.Pipe
	nicIn     *sim.Pipe
	nicOut    *sim.Pipe

	ioSize int64

	// Counters (simulated bytes / operations).
	DiskReadBytes  int64
	DiskWriteBytes int64
	DiskReadOps    int64
	DiskWriteOps   int64
	NetInBytes     int64
	NetOutBytes    int64
}

// Cluster is a set of nodes plus the shared engine.
type Cluster struct {
	Eng   *sim.Engine
	Cfg   Config
	Nodes []*Node
	RNG   *sim.RNG
}

// New builds a cluster on a fresh engine.
func New(cfg Config, seed uint64) *Cluster {
	if cfg.Nodes <= 0 {
		panic("cluster: need at least one node")
	}
	if cfg.IOSize <= 0 {
		cfg.IOSize = 256 << 10
	}
	eng := sim.NewEngine()
	c := &Cluster{Eng: eng, Cfg: cfg, RNG: sim.NewRNG(seed)}
	for i := 0; i < cfg.Nodes; i++ {
		c.Nodes = append(c.Nodes, &Node{
			ID:        i,
			Cores:     sim.NewResource(eng, cfg.CoresPerNode),
			diskRead:  sim.NewPipe(eng, cfg.DiskReadBW, cfg.DiskLatency),
			diskWrite: sim.NewPipe(eng, cfg.DiskWriteBW, cfg.DiskLatency),
			nicIn:     sim.NewPipe(eng, cfg.NetBW, cfg.NetLatency),
			nicOut:    sim.NewPipe(eng, cfg.NetBW, cfg.NetLatency),
			ioSize:    cfg.IOSize,
		})
	}
	return c
}

// Node returns node id, panicking on a bad id (a model bug, not user error).
func (c *Cluster) Node(id int) *Node {
	if id < 0 || id >= len(c.Nodes) {
		panic(fmt.Sprintf("cluster: no node %d", id))
	}
	return c.Nodes[id]
}

// Compute occupies one core of the node for cpuSeconds of virtual time.
func (n *Node) Compute(p *sim.Process, cpuSeconds float64) {
	if cpuSeconds <= 0 {
		return
	}
	n.Cores.Acquire(p)
	p.Sleep(cpuSeconds)
	n.Cores.Release()
}

func (n *Node) countOps(bytes int64) int64 {
	ops := bytes / n.ioSize
	if bytes%n.ioSize != 0 || bytes == 0 {
		ops++
	}
	return ops
}

// ReadDisk charges a sequential read of the given size.
func (n *Node) ReadDisk(p *sim.Process, bytes int64) {
	n.DiskReadBytes += bytes
	n.DiskReadOps += n.countOps(bytes)
	n.diskRead.Transfer(p, bytes)
}

// WriteDisk charges a sequential write of the given size.
func (n *Node) WriteDisk(p *sim.Process, bytes int64) {
	n.DiskWriteBytes += bytes
	n.DiskWriteOps += n.countOps(bytes)
	n.diskWrite.Transfer(p, bytes)
}

// Send moves bytes from node `from` to node `to`, serialising through the
// sender's outbound NIC and the receiver's inbound NIC. Local transfers are
// free (loopback).
func (c *Cluster) Send(p *sim.Process, from, to int, bytes int64) {
	if from == to {
		return
	}
	src, dst := c.Node(from), c.Node(to)
	src.NetOutBytes += bytes
	dst.NetInBytes += bytes
	src.nicOut.Transfer(p, bytes)
	dst.nicIn.Transfer(p, bytes)
}

// TotalDiskWriteOps sums simulated write operations over all nodes.
func (c *Cluster) TotalDiskWriteOps() int64 {
	var t int64
	for _, n := range c.Nodes {
		t += n.DiskWriteOps
	}
	return t
}

// TotalDiskWriteBytes sums simulated written bytes over all nodes.
func (c *Cluster) TotalDiskWriteBytes() int64 {
	var t int64
	for _, n := range c.Nodes {
		t += n.DiskWriteBytes
	}
	return t
}

// TotalNetBytes sums bytes that crossed the network (counted once, at the
// sender).
func (c *Cluster) TotalNetBytes() int64 {
	var t int64
	for _, n := range c.Nodes {
		t += n.NetOutBytes
	}
	return t
}
