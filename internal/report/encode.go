package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// tableWire is the machine-readable form of a Table, shared by the CLI's
// JSON output and the dcserved HTTP service. Values carry full float64
// precision; Precision is the display hint the text renderers use.
type tableWire struct {
	Title     string    `json:"title"`
	Columns   []string  `json:"columns"`
	Precision int       `json:"precision"`
	Notes     []string  `json:"notes,omitempty"`
	Rows      []rowWire `json:"rows"`
}

type rowWire struct {
	Label  string    `json:"label"`
	Values []float64 `json:"values"`
}

// MarshalJSON encodes the table in its wire form, so json.Marshal and
// json.NewEncoder work on tables directly.
func (t *Table) MarshalJSON() ([]byte, error) {
	w := tableWire{
		Title:     t.Title,
		Columns:   t.Columns,
		Precision: t.prec(),
		Notes:     t.Notes,
		Rows:      make([]rowWire, len(t.Rows)),
	}
	if w.Columns == nil {
		w.Columns = []string{}
	}
	for i, r := range t.Rows {
		vs := r.Values
		if vs == nil {
			vs = []float64{}
		}
		w.Rows[i] = rowWire{Label: r.Label, Values: vs}
	}
	return json.Marshal(w)
}

// JSON renders the table as indented JSON ending in a newline — the CLI's
// and the service's shared JSON encoding.
func (t *Table) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WriteCSV streams the table as CSV: a "workload" header row, then one
// record per row with values printed at the table's precision (missing
// trailing values become empty fields). Both the CLI's -csv path and the
// service's text/csv responses are this encoder.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{"workload"}, t.Columns...)); err != nil {
		return err
	}
	rec := make([]string, 1+len(t.Columns))
	for _, r := range t.Rows {
		rec[0] = r.Label
		for j := range t.Columns {
			rec[1+j] = ""
			if j < len(r.Values) {
				rec[1+j] = fmt.Sprintf("%.*f", t.prec(), r.Values[j])
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	if err := t.WriteCSV(&b); err != nil {
		// strings.Builder cannot fail; csv.Writer only fails on I/O.
		panic(err)
	}
	return b.String()
}
