package report

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// goldenOptions fixes the run the golden files were cut at: the default
// seed with the reduced trace/cluster sizes the rest of this package's
// tests use (so the sweeps are shared through the memo tables).
func goldenOptions() Options {
	o := DefaultOptions()
	o.Scale = 0.01
	o.Instrs = 120_000
	o.Warmup = 60_000
	return o
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/report -run TestGolden -update` to cut golden files)", err)
	}
	if string(got) != string(want) {
		t.Errorf("%s drifted from its golden file; diff the encoder change or re-cut with -update\ngot:\n%s\nwant:\n%s",
			name, got, want)
	}
}

func encodeBoth(t *testing.T, tab *Table) (jsonB, csvB []byte) {
	t.Helper()
	j, err := tab.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return j, []byte(tab.CSV())
}

// TestGoldenEncoders pins the machine-readable encodings of Figure 1,
// Figure 2 and Table I at the default seed: these bytes are what both the
// CLI's -csv path and dcserved's /v1 responses serve, so any encoder or
// simulation drift must be a deliberate, reviewed change.
func TestGoldenEncoders(t *testing.T) {
	j, c := encodeBoth(t, Figure1())
	checkGolden(t, "figure1.json", j)
	checkGolden(t, "figure1.csv", c)

	if testing.Short() {
		t.Skip("cluster and characterization sweeps")
	}
	o := goldenOptions()
	ctx := context.Background()

	f2, err := Figure2(ctx, o)
	if err != nil {
		t.Fatal(err)
	}
	j, c = encodeBoth(t, f2)
	checkGolden(t, "figure2.json", j)
	checkGolden(t, "figure2.csv", c)

	t1, _, err := TableByNumber(ctx, o, 1)
	if err != nil {
		t.Fatal(err)
	}
	j, c = encodeBoth(t, t1)
	checkGolden(t, "table1.json", j)
	checkGolden(t, "table1.csv", c)
}
