package report

import (
	"context"
	"strings"
	"testing"
)

func sample() *Table {
	return &Table{
		Title:   "t",
		Columns: []string{"a", "b"},
		Rows: []Row{
			{Label: "x", Values: []float64{1.5, 2}},
			{Label: "longer-label", Values: []float64{3, 4.25}},
		},
	}
}

func TestTableString(t *testing.T) {
	s := sample().String()
	if !strings.Contains(s, "longer-label") || !strings.Contains(s, "1.500") {
		t.Fatalf("table render missing content:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("line count = %d:\n%s", len(lines), s)
	}
}

func TestTableCSV(t *testing.T) {
	csv := sample().CSV()
	if !strings.HasPrefix(csv, "workload,a,b\n") {
		t.Fatalf("csv header wrong: %q", csv)
	}
	if !strings.Contains(csv, "x,1.500,2.000") {
		t.Fatalf("csv body wrong: %q", csv)
	}
}

func TestCSVEscaping(t *testing.T) {
	tab := &Table{Title: "t", Columns: []string{"v"},
		Rows: []Row{{Label: `a,"b"`, Values: []float64{1}}}}
	if !strings.Contains(tab.CSV(), `"a,""b"""`) {
		t.Fatalf("escaping failed: %q", tab.CSV())
	}
}

func TestBarChartScales(t *testing.T) {
	chart := sample().BarChart(10)
	// The larger value (3) must have more #'s than 1.5.
	var bars []int
	for _, line := range strings.Split(chart, "\n") {
		if strings.Contains(line, "|") {
			bars = append(bars, strings.Count(line, "#"))
		}
	}
	if len(bars) != 2 || bars[1] <= bars[0] {
		t.Fatalf("bar lengths = %v", bars)
	}
}

func TestFigure1Static(t *testing.T) {
	f := Figure1()
	total := 0.0
	for _, r := range f.Rows {
		total += r.Values[0]
	}
	if total != 100 {
		t.Fatalf("domain shares sum to %v, want 100", total)
	}
}

func TestTable3MentionsGeometry(t *testing.T) {
	s := Table3()
	for _, want := range []string{"12 MB", "256 KB", "128-entry ROB", "tournament"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Table III missing %q:\n%s", want, s)
		}
	}
}

func TestFigure2SpeedupShape(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster sweep")
	}
	o := DefaultOptions()
	o.Scale = 0.01
	f, err := Figure2(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) != 11 {
		t.Fatalf("rows = %d, want 11", len(f.Rows))
	}
	for _, r := range f.Rows {
		if r.Values[0] != 1 {
			t.Fatalf("%s: 1-slave speedup = %v, want 1", r.Label, r.Values[0])
		}
		if r.Values[2] <= 1 || r.Values[2] > 9 {
			t.Fatalf("%s: 8-slave speedup = %v, want in (1, 9]", r.Label, r.Values[2])
		}
		if r.Values[1] > r.Values[2]*1.2 {
			t.Fatalf("%s: speedup not roughly monotone: %v", r.Label, r.Values)
		}
	}
}

func TestFigure5SortHighest(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster sweep")
	}
	o := DefaultOptions()
	o.Scale = 0.01
	f, err := Figure5(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	var sortRate, best float64
	var bestName string
	for _, r := range f.Rows {
		if r.Label == "Sort" {
			sortRate = r.Values[0]
		}
		if r.Values[0] > best {
			best, bestName = r.Values[0], r.Label
		}
	}
	if bestName != "Sort" {
		t.Fatalf("highest disk write rate is %s (%v), want Sort (%v)", bestName, best, sortRate)
	}
}

func TestMetricFiguresOverSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization sweep")
	}
	o := DefaultOptions()
	o.Instrs = 120_000
	o.Warmup = 60_000
	results := Characterized(o)
	for _, f := range []*Table{
		Figure3(results), Figure4(results), Figure6(results), Figure7(results),
		Figure8(results), Figure9(results), Figure10(results), Figure11(results),
		Figure12(results),
	} {
		if len(f.Rows) < 26 {
			t.Fatalf("%s: rows = %d", f.Title, len(f.Rows))
		}
		if f.String() == "" || f.CSV() == "" {
			t.Fatalf("%s: empty render", f.Title)
		}
	}
	// Figure 3 must include the avg bar right after HMM.
	f3 := Figure3(results)
	found := false
	for i, r := range f3.Rows {
		if r.Label == "HMM" && i+1 < len(f3.Rows) && f3.Rows[i+1].Label == "avg (data analysis)" {
			found = true
		}
	}
	if !found {
		t.Fatal("Figure 3 missing the data-analysis avg bar")
	}
}
