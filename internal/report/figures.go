package report

import (
	"context"
	"flag"
	"fmt"

	"dcbench/internal/core"
	"dcbench/internal/sweep"
	"dcbench/internal/uarch"
	"dcbench/internal/workloads"
)

// Options parameterises a figure regeneration run.
type Options struct {
	// Scale multiplies the paper's input sizes for the cluster-level
	// experiments (Figures 2 and 5, Table I).
	Scale float64
	// Seed drives all generators.
	Seed uint64
	// Instrs is the measured trace length per workload for the
	// counter-level experiments (Figures 3-12); Warmup precedes it.
	Instrs int64
	Warmup int64
	// Jobs is the sweep parallelism (the CLI's -j flag); <= 0 means one
	// worker per host core. Results are independent of Jobs: the sweeps are
	// deterministic at any width.
	Jobs int
	// Engine, when non-nil, runs the characterization sweeps instead of the
	// process-wide default — the dcserved service sets this so its memo
	// table (and persistent backend) are its own rather than shared process
	// state, and so tests can model a cold restart with a fresh engine.
	Engine *sweep.Engine
	// Cluster, when non-nil, memoizes the cluster-level experiments
	// (Figures 2 and 5, Table I) instead of the process-wide default cache —
	// dcserved and dcbench -store point it at a store-backed cache so
	// restarts skip the cluster simulations too.
	Cluster *workloads.StatsCache
}

// defaultClusterCache memoizes cluster runs for callers that don't bring
// their own cache — `dcbench all` simulates the cluster once, not three
// times, across Figure 2, Figure 5 and Table I.
var defaultClusterCache = workloads.NewStatsCache(nil)

// clusterCache resolves the cluster memo for this run.
func (o Options) clusterCache() *workloads.StatsCache {
	if o.Cluster != nil {
		return o.Cluster
	}
	return defaultClusterCache
}

// DefaultOptions balances fidelity against runtime (a full `dcbench all`
// takes tens of seconds serially; the parallel sweep divides that by the
// host core count).
func DefaultOptions() Options {
	return Options{Scale: 0.05, Seed: 42, Instrs: 650_000, Warmup: 250_000}
}

// RegisterFlags declares the run-parameter flags on fs, defaulted from *o
// and written back on Parse. It is the single definition of these flags
// for every binary (dcbench, dcserved), so their names, help text and
// defaults cannot drift apart — the usage-pinning tests in cmd/dcbench
// guard the defaults once, for all users.
func RegisterFlags(fs *flag.FlagSet, o *Options) {
	fs.Float64Var(&o.Scale, "scale", o.Scale, "fraction of the paper's input sizes")
	fs.Uint64Var(&o.Seed, "seed", o.Seed, "generator seed")
	fs.Int64Var(&o.Instrs, "instrs", o.Instrs, "measured instructions per trace")
	fs.Int64Var(&o.Warmup, "warmup", o.Warmup, "ramp-up instructions excluded from counters")
	fs.IntVar(&o.Jobs, "j", o.Jobs, "sweep parallelism; 0 = one worker per host core")
}

// CoreConfig is the simulated machine for this run: the paper's Table III
// box with the run's warmup applied. The service derives sweep keys and
// cache validators from its fingerprint.
func (o Options) CoreConfig() uarch.Config {
	cfg := uarch.DefaultConfig()
	cfg.Warmup = o.Warmup
	return cfg
}

// Characterized runs the full 26-workload registry once through the sweep
// engine (Figures 3-12 all read from the same sweep). Repeated calls with
// the same options reuse the engine's memoized counters instead of
// re-simulating.
func Characterized(o Options) []*core.Result {
	rs, err := CharacterizedCtx(context.Background(), o)
	if err != nil {
		panic(err) // background context: only a broken generator lands here
	}
	return rs
}

// CharacterizedCtx is Characterized with cancellation (per-workload
// granularity) and error reporting.
func CharacterizedCtx(ctx context.Context, o Options) ([]*core.Result, error) {
	return core.CharacterizeSweepOn(ctx, o.Engine, o.CoreConfig(), o.Warmup+o.Instrs,
		sweep.RunOptions{Workers: o.Jobs})
}

// FigureByNumber renders figure n (1..12) — the dispatch shared by the CLI
// and the dcserved service. Figures 3-12 run (or reuse) the
// characterization sweep; 2 and 5 run the cluster experiments.
func FigureByNumber(ctx context.Context, o Options, n int) (*Table, error) {
	switch n {
	case 1:
		return Figure1(), nil
	case 2:
		return Figure2(ctx, o)
	case 5:
		return Figure5(ctx, o)
	case 3, 4, 6, 7, 8, 9, 10, 11, 12:
		results, err := CharacterizedCtx(ctx, o)
		if err != nil {
			return nil, err
		}
		builders := map[int]func([]*core.Result) *Table{
			3: Figure3, 4: Figure4, 6: Figure6, 7: Figure7, 8: Figure8,
			9: Figure9, 10: Figure10, 11: Figure11, 12: Figure12,
		}
		return builders[n](results), nil
	default:
		return nil, fmt.Errorf("figure number must be 1..12, got %d", n)
	}
}

// TableByNumber renders table n (1..3). Table I comes back as a *Table;
// Tables II and III are prose, returned as text with a nil *Table.
func TableByNumber(ctx context.Context, o Options, n int) (*Table, string, error) {
	switch n {
	case 1:
		results, err := CharacterizedCtx(ctx, o)
		if err != nil {
			return nil, "", err
		}
		t, err := Table1(ctx, o, results)
		return t, "", err
	case 2:
		return nil, Table2(), nil
	case 3:
		return nil, Table3(), nil
	default:
		return nil, "", fmt.Errorf("table number must be 1..3, got %d", n)
	}
}

// Figure1 reproduces the top-sites domain share survey (static data from
// the paper's Alexa snapshot, Figure 1).
func Figure1() *Table {
	return &Table{
		Title:     "Figure 1: top sites in the web by application domain (Alexa, Feb 2013)",
		Columns:   []string{"share_pct"},
		Precision: 1,
		Rows: []Row{
			{Label: "Search Engine", Values: []float64{40}},
			{Label: "Social Network", Values: []float64{25}},
			{Label: "Electronic Commerce", Values: []float64{15}},
			{Label: "Media Streaming", Values: []float64{5}},
			{Label: "Others", Values: []float64{15}},
		},
		Notes: []string{"survey data reproduced from the paper; motivates the three chosen domains"},
	}
}

// Figure2 reruns the speedup experiment: all eleven workloads on simulated
// clusters of 1, 4 and 8 slaves, normalised to the 1-slave makespan.
func Figure2(ctx context.Context, o Options) (*Table, error) {
	slaveCounts := []int{1, 4, 8}
	t := &Table{
		Title:     fmt.Sprintf("Figure 2: speedup vs slave count (scale=%.3f of paper input sizes)", o.Scale),
		Columns:   []string{"1 slave", "4 slaves", "8 slaves"},
		Precision: 2,
		Notes:     []string{"paper: 8-slave speedups range 3.3-8.2; Naive Bayes 6.6"},
	}
	all, err := workloads.SlaveSweepMemo(ctx, o.clusterCache(), workloads.All(), slaveCounts, o.Scale, o.Seed, o.Jobs)
	if err != nil {
		return nil, fmt.Errorf("figure 2: %w", err)
	}
	for i, w := range workloads.All() {
		row := Row{Label: w.Name}
		base := all[i][0].Makespan // slaveCounts[0] == 1 normalises the row
		for _, st := range all[i] {
			row.Values = append(row.Values, base/st.Makespan)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Figure5 reruns the disk-write-rate experiment on the 4-slave cluster.
func Figure5(ctx context.Context, o Options) (*Table, error) {
	t := &Table{
		Title:     fmt.Sprintf("Figure 5: disk writes per second per slave (4 slaves, scale=%.3f)", o.Scale),
		Columns:   []string{"writes_per_sec"},
		Precision: 1,
		Notes:     []string{"paper: Sort has by far the highest write rate of the eleven"},
	}
	stats, err := clusterStats(ctx, o)
	if err != nil {
		return nil, fmt.Errorf("figure 5: %w", err)
	}
	for i, w := range workloads.All() {
		t.Rows = append(t.Rows, Row{Label: w.Name, Values: []float64{stats[i].DiskWritesPerSecond()}})
	}
	return t, nil
}

// clusterStats runs every cluster workload on its own 4-slave environment
// concurrently (one worker per host core at Jobs <= 0), returning stats in
// workloads.All order — the shared experiment behind Figure 5 and Table I.
// Results are memoized per (workload, slaves, Scale, Seed) through the
// run's cluster cache (and its persistent backend, when one is wired in)
// and shared with Figure 2's 4-slave column: treat them as read-only. A
// failed attempt (cancellation included) is not cached, so a later call
// retries.
func clusterStats(ctx context.Context, o Options) ([]*workloads.Stats, error) {
	all, err := workloads.SlaveSweepMemo(ctx, o.clusterCache(), workloads.All(), []int{4}, o.Scale, o.Seed, o.Jobs)
	if err != nil {
		return nil, err
	}
	stats := make([]*workloads.Stats, len(all))
	for i, row := range all {
		stats[i] = row[0]
	}
	return stats, nil
}

// Table1 reproduces Table I: input sizes and estimated retired
// instructions per workload, extrapolated from the simulated run's busy
// core-seconds at the paper's clock rate and the workload's simulated IPC.
func Table1(ctx context.Context, o Options, results []*core.Result) (*Table, error) {
	t := &Table{
		Title:     fmt.Sprintf("Table I: workloads, input sizes and estimated retired instructions (scale=%.3f run, extrapolated to scale 1)", o.Scale),
		Columns:   []string{"input_GB", "instr_1e9_est", "instr_1e9_paper"},
		Precision: 0,
	}
	paperInstr := map[string]float64{
		"Sort": 4578, "WordCount": 3533, "Grep": 1499, "Naive Bayes": 68131,
		"SVM": 2051, "K-means": 3227, "Fuzzy K-means": 15470, "IBCF": 32340,
		"HMM": 1841, "PageRank": 18470, "Hive-bench": 3659,
	}
	stats, err := clusterStats(ctx, o)
	if err != nil {
		return nil, fmt.Errorf("table 1: %w", err)
	}
	for i, w := range workloads.All() {
		ipc := 0.78 // class average fallback
		for _, r := range results {
			if r.Workload.Name == w.Name {
				ipc = r.Counters.IPC()
			}
		}
		// busy core-seconds x 2.4 GHz x IPC, rescaled to the full input.
		est := stats[i].CoreSeconds / o.Scale * 2.4 * ipc
		t.Rows = append(t.Rows, Row{Label: w.Name,
			Values: []float64{w.InputGB, est, paperInstr[w.Name]}})
	}
	return t, nil
}

// Table2 reproduces Table II: application domains and scenarios.
func Table2() string {
	s := "Table II: scenarios of data analysis\n"
	for _, w := range workloads.All() {
		s += fmt.Sprintf("%-14s domains: %v\n%-14s scenarios: %v\n", w.Name, w.Domains, "", w.Scenarios)
	}
	return s
}

// Table3 dumps the simulated machine, the reproduction's Table III.
func Table3() string {
	c := uarch.DefaultConfig()
	return fmt.Sprintf(`Table III: simulated hardware configuration (Xeon E5645 class)
CPU model          4-wide out-of-order, %d-entry ROB, %d-entry RS
Load/store buffers %d / %d entries
L1 ICache          %d KB, %d-way, 64 B lines
L1 DCache          %d KB, %d-way, 64 B lines
L2 Cache           %d KB, %d-way, 64 B lines (private)
L3 Cache           %d MB, %d-way, 64 B lines (shared)
ITLB / DTLB        %d / %d entries, %d-way
L2 TLB             %d entries, %d-way; page walk %d cycles
Latencies          L1D %d, L2 %d, L3 %d, memory %d cycles
MSHRs / DRAM gap   %d / %d cycles
Branch predictor   14-bit tournament (bimodal + gshare), %d-entry BTB
`,
		c.ROB, c.RS, c.LQ, c.SQ,
		c.L1ISize>>10, c.L1IWays, c.L1DSize>>10, c.L1DWays,
		c.L2Size>>10, c.L2Ways, c.L3Size>>20, c.L3Ways,
		c.ITLBEntries, c.DTLBEntries, c.TLBWays,
		c.L2TLBEntries, c.TLBWays, c.WalkLat,
		c.L1DLat, c.L2Lat, c.L3Lat, c.MemLat,
		c.MSHRs, c.MemGap, 1<<c.BTBBits)
}

// MetricFigure builds one of the counter figures (3, 4, 7, 8, 9, 10, 11,
// 12) over a characterization sweep, with the paper's approximate values
// alongside and the data-analysis class average appended as the paper's
// "avg" bar.
func MetricFigure(results []*core.Result, title string, measured func(*uarch.Counters) float64, paper func(core.PaperRef) float64) *Table {
	t := &Table{
		Title:   title,
		Columns: []string{"measured", "paper_approx"},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, Row{
			Label:  r.Workload.Name,
			Values: []float64{measured(r.Counters), paper(r.Workload.Paper)},
		})
		if r.Workload.Name == "HMM" { // end of the data analysis block
			t.Rows = append(t.Rows, Row{
				Label:  "avg (data analysis)",
				Values: []float64{core.DataAnalysisAverage(results, measured), 0},
			})
		}
	}
	return t
}

// Figure3 is IPC per workload.
func Figure3(results []*core.Result) *Table {
	return MetricFigure(results, "Figure 3: instructions per cycle",
		func(c *uarch.Counters) float64 { return c.IPC() },
		func(p core.PaperRef) float64 { return p.IPC })
}

// Figure4 is the kernel-mode instruction share.
func Figure4(results []*core.Result) *Table {
	return MetricFigure(results, "Figure 4: kernel instruction share (%)",
		func(c *uarch.Counters) float64 { return 100 * c.KernelShare() },
		func(p core.PaperRef) float64 { return p.KernelPct })
}

// Figure6 is the six-way pipeline stall breakdown.
func Figure6(results []*core.Result) *Table {
	t := &Table{
		Title:   "Figure 6: pipeline stall breakdown (shares of total stall cycles)",
		Columns: []string{"ifetch", "RAT", "load_buf", "RS", "store_buf", "ROB"},
		Notes: []string{
			"paper: data analysis stalls concentrate in the OoO part (RS ~37%, ROB ~20%);",
			"service workloads stall before it (RAT ~60%, ifetch ~13%)",
		},
	}
	for _, r := range results {
		b := r.Counters.StallBreakdown()
		t.Rows = append(t.Rows, Row{Label: r.Workload.Name, Values: b[:]})
	}
	return t
}

// Figure7 is L1I misses per kilo-instruction.
func Figure7(results []*core.Result) *Table {
	return MetricFigure(results, "Figure 7: L1 instruction cache misses per k-instruction",
		func(c *uarch.Counters) float64 { return c.L1IMPKI() },
		func(p core.PaperRef) float64 { return p.L1IMPKI })
}

// Figure8 is ITLB-miss page walks per kilo-instruction.
func Figure8(results []*core.Result) *Table {
	return MetricFigure(results, "Figure 8: ITLB-miss page walks per k-instruction",
		func(c *uarch.Counters) float64 { return c.ITLBWalksPKI() },
		func(p core.PaperRef) float64 { return p.ITLBWalksPKI })
}

// Figure9 is L2 misses per kilo-instruction.
func Figure9(results []*core.Result) *Table {
	return MetricFigure(results, "Figure 9: L2 cache misses per k-instruction",
		func(c *uarch.Counters) float64 { return c.L2MPKI() },
		func(p core.PaperRef) float64 { return p.L2MPKI })
}

// Figure10 is the share of L2 misses satisfied by L3.
func Figure10(results []*core.Result) *Table {
	return MetricFigure(results, "Figure 10: L3 hit ratio of L2 misses (%)",
		func(c *uarch.Counters) float64 { return 100 * c.L3HitRatio() },
		func(p core.PaperRef) float64 { return p.L3HitPct })
}

// Figure11 is DTLB-miss page walks per kilo-instruction.
func Figure11(results []*core.Result) *Table {
	return MetricFigure(results, "Figure 11: DTLB-miss page walks per k-instruction",
		func(c *uarch.Counters) float64 { return c.DTLBWalksPKI() },
		func(p core.PaperRef) float64 { return p.DTLBWalksPKI })
}

// Figure12 is the branch misprediction ratio.
func Figure12(results []*core.Result) *Table {
	return MetricFigure(results, "Figure 12: branch misprediction ratio (%)",
		func(c *uarch.Counters) float64 { return 100 * c.BranchMispredictRatio() },
		func(p core.PaperRef) float64 { return p.BranchMispPct })
}
