// Package report renders experiment results as aligned ASCII tables, bar
// charts, CSV and JSON — the output layer shared by the dcbench CLI, the
// dcserved HTTP service and the benchmark harness.
package report

import (
	"fmt"
	"strings"
)

// Row is one labelled series of values.
type Row struct {
	Label  string
	Values []float64
}

// Table is a titled result grid.
type Table struct {
	Title   string
	Columns []string
	Rows    []Row
	// Precision is the number of decimals to print (default 3).
	Precision int
	// Notes are printed under the table.
	Notes []string
}

func (t *Table) prec() int {
	if t.Precision == 0 {
		return 3
	}
	return t.Precision
}

// String renders an aligned ASCII table.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	labelW := len("workload")
	for _, r := range t.Rows {
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	colW := make([]int, len(t.Columns))
	cells := make([][]string, len(t.Rows))
	for i, r := range t.Rows {
		cells[i] = make([]string, len(t.Columns))
		for j := range t.Columns {
			v := ""
			if j < len(r.Values) {
				v = fmt.Sprintf("%.*f", t.prec(), r.Values[j])
			}
			cells[i][j] = v
		}
	}
	for j, c := range t.Columns {
		colW[j] = len(c)
		for i := range cells {
			if len(cells[i][j]) > colW[j] {
				colW[j] = len(cells[i][j])
			}
		}
	}
	fmt.Fprintf(&b, "%-*s", labelW, "workload")
	for j, c := range t.Columns {
		fmt.Fprintf(&b, "  %*s", colW[j], c)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", labelW+sum(colW)+2*len(colW)))
	for i, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", labelW, r.Label)
		for j := range t.Columns {
			fmt.Fprintf(&b, "  %*s", colW[j], cells[i][j])
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// BarChart renders a horizontal ASCII bar chart of the first value column.
func (t *Table) BarChart(width int) string {
	if width <= 0 {
		width = 50
	}
	max := 0.0
	for _, r := range t.Rows {
		if len(r.Values) > 0 && r.Values[0] > max {
			max = r.Values[0]
		}
	}
	if max == 0 {
		max = 1
	}
	labelW := 0
	for _, r := range t.Rows {
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	for _, r := range t.Rows {
		v := 0.0
		if len(r.Values) > 0 {
			v = r.Values[0]
		}
		n := int(v / max * float64(width))
		fmt.Fprintf(&b, "%-*s |%s %.*f\n", labelW, r.Label,
			strings.Repeat("#", n), t.prec(), v)
	}
	return b.String()
}

func sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}
