// Package memtrace defines the instruction trace that couples workload
// models to the out-of-order core simulator, and the Tracer that workload
// adapters drive while running their real algorithms.
//
// The Tracer owns three models the paper's analysis hinges on:
//
//   - a code layout model: instructions walk basic blocks inside an
//     application code region whose footprint is a per-workload parameter —
//     small for SPEC/HPCC kernels, hundreds of KBs to MBs for JVM/Hadoop
//     data analysis stacks and service stacks, which is what drives the L1I
//     and ITLB behaviour of Figures 7 and 8;
//   - a framework/GC overhead model: periodic excursions into the cold part
//     of the code region (the "big binary from high-level languages and
//     third-party libraries" of Section IV-C) plus heap-sweeping bursts;
//   - a kernel model: Syscall emits kernel-mode instruction blocks with
//     their own code region and buffer-copy memory traffic, producing the
//     user/kernel split of Figure 4.
//
// Memory addresses come from a virtual allocator; adapters express their
// algorithm's genuine access pattern (sequential scans, pointer chases,
// working-set reuse) against those addresses while the actual computation
// runs alongside to supply data-dependent branch outcomes.
package memtrace

// Op is an instruction class.
type Op uint8

// Instruction classes.
const (
	OpALU Op = iota
	OpFPU
	OpLoad
	OpStore
	OpBranch
)

// String returns the op mnemonic.
func (o Op) String() string {
	switch o {
	case OpALU:
		return "alu"
	case OpFPU:
		return "fpu"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpBranch:
		return "branch"
	default:
		return "?"
	}
}

// Inst is one dynamic instruction.
type Inst struct {
	PC     uint64 // virtual instruction address
	Addr   uint64 // memory address (loads/stores)
	Target uint64 // branch target (branches)
	Dep1   uint16 // distance back to the first producer; 0 = none
	Dep2   uint16 // distance back to the second producer; 0 = none
	Op     Op
	Taken  bool // branch outcome
	Kernel bool // kernel-mode instruction
	NSrc   uint8
}

// Reader streams instructions in batches.
type Reader interface {
	// Read fills buf, returning the number of instructions produced;
	// 0 means end of trace.
	Read(buf []Inst) int
}

// sliceReader replays an in-memory trace (used by tests).
type sliceReader struct {
	insts []Inst
	pos   int
}

// NewSliceReader wraps a materialised trace in a Reader.
func NewSliceReader(insts []Inst) Reader { return &sliceReader{insts: insts} }

// Read implements Reader.
func (r *sliceReader) Read(buf []Inst) int {
	n := copy(buf, r.insts[r.pos:])
	r.pos += n
	return n
}

// Collect drains a reader into memory (tests and small traces only). The
// output is allocated at max up front and the reader decodes directly into
// it — no intermediate batch, no append re-copies.
func Collect(r Reader, max int) []Inst {
	out := make([]Inst, max)
	n := 0
	for n < max {
		m := r.Read(out[n:])
		if m == 0 {
			break
		}
		n += m
	}
	return out[:n]
}
