package memtrace

import "testing"

func collect(p Profile, gen func(t *Tracer)) []Inst {
	return Collect(NewReader(p, gen), int(p.Normalize().MaxInstrs))
}

func TestTraceCapAndLooping(t *testing.T) {
	insts := collect(Profile{MaxInstrs: 10000}, func(tr *Tracer) {
		for { // infinite: the cap must stop us
			tr.ALU(100)
		}
	})
	if len(insts) != 10000 {
		t.Fatalf("trace length = %d, want 10000", len(insts))
	}
}

func TestDeterministicTraces(t *testing.T) {
	gen := func(tr *Tracer) {
		a := tr.Alloc(1 << 20)
		for {
			for i := uint64(0); i < 1000; i++ {
				tr.Load(a + i*64)
				tr.Branch(i%3 == 0)
			}
		}
	}
	p := Profile{Seed: 7, MaxInstrs: 20000}
	x, y := collect(p, gen), collect(p, gen)
	if len(x) != len(y) {
		t.Fatal("lengths differ")
	}
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("instruction %d differs: %+v vs %+v", i, x[i], y[i])
		}
	}
}

func TestMemoryOpsCarryAddresses(t *testing.T) {
	insts := collect(Profile{MaxInstrs: 5000}, func(tr *Tracer) {
		a := tr.Alloc(4096)
		for {
			tr.Load(a)
			tr.Store(a + 64)
		}
	})
	loads, stores := 0, 0
	for _, in := range insts {
		switch in.Op {
		case OpLoad:
			loads++
			if in.Addr == 0 {
				t.Fatal("load without address")
			}
		case OpStore:
			stores++
			if in.Addr == 0 {
				t.Fatal("store without address")
			}
		}
	}
	if loads == 0 || stores == 0 {
		t.Fatal("no memory operations emitted")
	}
}

func TestKernelShareFromSyscalls(t *testing.T) {
	insts := collect(Profile{MaxInstrs: 50000}, func(tr *Tracer) {
		for {
			tr.ALU(100)
			tr.Syscall(100, 4096)
		}
	})
	kernel := 0
	for _, in := range insts {
		if in.Kernel {
			kernel++
		}
	}
	frac := float64(kernel) / float64(len(insts))
	if frac < 0.2 || frac > 0.7 {
		t.Fatalf("kernel share = %v, want roughly half", frac)
	}
}

func TestNoSyscallsNoKernel(t *testing.T) {
	insts := collect(Profile{MaxInstrs: 10000}, func(tr *Tracer) {
		for {
			tr.ALU(10)
		}
	})
	for _, in := range insts {
		if in.Kernel {
			t.Fatal("kernel instruction without syscalls")
		}
	}
}

func TestCodeFootprintBoundsPCs(t *testing.T) {
	p := Profile{MaxInstrs: 30000, CodeKB: 128, HotCodeKB: 4}
	insts := collect(p, func(tr *Tracer) {
		for {
			tr.ALU(50)
		}
	})
	lo, hi := uint64(1<<63), uint64(0)
	for _, in := range insts {
		if in.Kernel {
			continue
		}
		if in.PC < lo {
			lo = in.PC
		}
		if in.PC > hi {
			hi = in.PC
		}
	}
	if span := hi - lo; span > 200<<10 {
		t.Fatalf("code span %d exceeds footprint 128KB", span)
	}
}

func TestFrameworkInflatesFootprintUsage(t *testing.T) {
	// With framework bursts the cold code region gets visited far more.
	count := func(every int) int {
		p := Profile{MaxInstrs: 40000, CodeKB: 512, HotCodeKB: 4,
			FrameworkEvery: every, FrameworkInstrs: 200, HeapMB: 4}
		insts := collect(p, func(tr *Tracer) {
			for {
				tr.ALU(50)
			}
		})
		pages := map[uint64]bool{}
		for _, in := range insts {
			pages[in.PC>>12] = true
		}
		return len(pages)
	}
	with := count(300)
	without := count(0)
	if with <= without {
		t.Fatalf("framework bursts did not widen code usage: %d vs %d", with, without)
	}
}

func TestBranchOutcomesPreserved(t *testing.T) {
	insts := collect(Profile{MaxInstrs: 3000, BlockLen: 1000000}, func(tr *Tracer) {
		for i := 0; ; i++ {
			tr.Branch(i%2 == 0)
		}
	})
	// Data-dependent branches (Dep1 == 1, unlike block-end jumps) must
	// alternate exactly as the adapter emitted them.
	want := true
	for _, in := range insts {
		if in.Op != OpBranch || in.Dep1 != 1 {
			continue
		}
		if in.Taken != want {
			t.Fatal("branch outcome sequence corrupted")
		}
		want = !want
	}
}

func TestAllocDisjoint(t *testing.T) {
	var a, b uint64
	collect(Profile{MaxInstrs: 100}, func(tr *Tracer) {
		a = tr.Alloc(1 << 20)
		b = tr.Alloc(1 << 20)
		for {
			tr.ALU(10)
		}
	})
	if b < a+(1<<20) {
		t.Fatalf("allocations overlap: %x %x", a, b)
	}
}

func TestSliceReader(t *testing.T) {
	src := []Inst{{PC: 1}, {PC: 2}, {PC: 3}}
	r := NewSliceReader(src)
	buf := make([]Inst, 2)
	if n := r.Read(buf); n != 2 || buf[0].PC != 1 {
		t.Fatalf("first read = %d", n)
	}
	if n := r.Read(buf); n != 1 || buf[0].PC != 3 {
		t.Fatalf("second read = %d", n)
	}
	if n := r.Read(buf); n != 0 {
		t.Fatalf("EOF read = %d", n)
	}
}
