package memtrace

import "testing"

// TestSyscallBufferPoolBounded: repeated syscalls must reuse a bounded
// buffer pool rather than touching fresh memory forever (real I/O paths
// recycle page-cache pages).
func TestSyscallBufferPoolBounded(t *testing.T) {
	insts := collect(Profile{MaxInstrs: 60000}, func(tr *Tracer) {
		for {
			tr.ALU(10)
			tr.Syscall(200, 4096)
		}
	})
	pages := map[uint64]bool{}
	for _, in := range insts {
		if in.Kernel && (in.Op == OpLoad || in.Op == OpStore) {
			pages[in.Addr>>12] = true
		}
	}
	// 8 x 8 KB user buffers + 4 x 64 KB kernel windows = at most ~90 pages.
	if len(pages) > 120 {
		t.Fatalf("syscall path touched %d pages, want a bounded pool", len(pages))
	}
	if len(pages) < 4 {
		t.Fatalf("syscall path touched only %d pages", len(pages))
	}
}

// TestBranchSiteStablePCs: the same site always produces the same PC and
// target; distinct sites differ.
func TestBranchSiteStablePCs(t *testing.T) {
	insts := collect(Profile{MaxInstrs: 5000}, func(tr *Tracer) {
		for i := 0; ; i++ {
			tr.BranchSite(1, i%2 == 0)
			tr.BranchSite(2, true)
		}
	})
	pcs := map[uint64]int{}
	for _, in := range insts {
		if in.Op == OpBranch && in.Dep1 == 1 {
			pcs[in.PC]++
		}
	}
	if len(pcs) != 2 {
		t.Fatalf("distinct data-branch PCs = %d, want 2 (sites are stable)", len(pcs))
	}
}

// TestProfileNormalizeDefaults: zero values are filled, nonzero preserved.
func TestProfileNormalizeDefaults(t *testing.T) {
	p := Profile{}.Normalize()
	if p.MaxInstrs == 0 || p.CodeKB == 0 || p.BlockLen == 0 || p.FrameworkJump == 0 {
		t.Fatalf("defaults not filled: %+v", p)
	}
	q := Profile{CodeKB: 7, HotCodeKB: 100}.Normalize()
	if q.CodeKB != 7 {
		t.Fatal("explicit CodeKB overwritten")
	}
	if q.HotCodeKB > q.CodeKB {
		t.Fatal("hot footprint must be capped at the total footprint")
	}
}

// TestColdExcursionsReturn: after a cold-code excursion the walk resumes in
// hot code — hot PCs dominate the trace even with excursions enabled.
func TestColdExcursionsReturn(t *testing.T) {
	p := Profile{MaxInstrs: 60000, CodeKB: 1024, HotCodeKB: 16, ColdJumpP: 0.3}
	insts := collect(p, func(tr *Tracer) {
		for {
			tr.ALU(50)
		}
	})
	hotLimit := uint64(16 << 10)
	hot := 0
	total := 0
	for _, in := range insts {
		if in.Kernel || in.Op == OpBranch {
			continue
		}
		total++
		if in.PC-userCodeBase < hotLimit {
			hot++
		}
	}
	if frac := float64(hot) / float64(total); frac < 0.5 {
		t.Fatalf("hot-code fraction = %v, want majority", frac)
	}
}

// TestLoopBranchPattern: block-walk loop branches at one PC follow the
// taken...taken/not-taken pattern (loopTarget backward branches then exit),
// which is what makes them predictable.
func TestLoopBranchPattern(t *testing.T) {
	p := Profile{MaxInstrs: 50000, CodeKB: 8, HotCodeKB: 8}
	insts := collect(p, func(tr *Tracer) {
		for {
			tr.ALU(50)
		}
	})
	// Collect outcome sequences per branch PC from the code walk
	// (Dep1 == 0 distinguishes them from adapter branches).
	seqs := map[uint64][]bool{}
	for _, in := range insts {
		if in.Op == OpBranch && in.Dep1 == 0 {
			seqs[in.PC] = append(seqs[in.PC], in.Taken)
		}
	}
	if len(seqs) == 0 {
		t.Fatal("no loop branches emitted")
	}
	for pc, seq := range seqs {
		if len(seq) < 10 {
			continue
		}
		takenRuns := 0
		for _, taken := range seq {
			if taken {
				takenRuns++
			}
		}
		frac := float64(takenRuns) / float64(len(seq))
		// loopTarget taken per 1 not-taken: 4/5 = 0.8.
		if frac < 0.7 || frac > 0.9 {
			t.Fatalf("loop branch %x taken fraction = %v, want ~0.8", pc, frac)
		}
	}
}

// TestGCBurstSweepsHeap: GC bursts touch the heap region sequentially.
func TestGCBurstSweepsHeap(t *testing.T) {
	p := Profile{MaxInstrs: 120000, HeapMB: 2, GCEvery: 20000, GCInstrs: 3000}
	insts := collect(p, func(tr *Tracer) {
		for {
			tr.ALU(50)
		}
	})
	heapLoads := 0
	for _, in := range insts {
		if in.Op == OpLoad && in.Addr >= heapBase && in.Addr < heapBase+(2<<20) {
			heapLoads++
		}
	}
	if heapLoads < 1000 {
		t.Fatalf("GC heap loads = %d, want sweeping activity", heapLoads)
	}
}

// TestEmittedCounter tracks generation progress.
func TestEmittedCounter(t *testing.T) {
	var seen int64
	r := NewReader(Profile{MaxInstrs: 1000}, func(tr *Tracer) {
		tr.ALU(100)
		seen = tr.Emitted()
		for {
			tr.ALU(100)
		}
	})
	Collect(r, 1000)
	if seen < 100 || seen > 200 {
		t.Fatalf("Emitted() after 100 ALU = %d", seen)
	}
}
