// Package tracecache materialises workload instruction traces once and
// replays them across every machine configuration of a sweep.
//
// The paper's characterization (Section III-D) runs one fixed instruction
// stream per workload through many machine configurations, but the live
// trace path regenerates the stream — the real PageRank/k-means/HMM
// algorithm plus the Zipf code-layout, GC and kernel models — for every
// (workload, config) point, and pays a generator goroutine, a channel hop
// and a batch copy per 8192 instructions on top. This package removes all
// of that for every config after the first:
//
//   - a columnar segment encoding stores the trace struct-of-arrays with
//     delta-encoded PC/Addr/Target streams and varint dependency distances,
//     so a cached trace costs a fraction of []memtrace.Inst's ~40 B per
//     instruction;
//   - a byte-budgeted LRU keyed by (generator identity, profile
//     fingerprint, trace length) bounds resident trace bytes, with
//     singleflight capture via memo.Memo so concurrent configs of one
//     workload share a single generation;
//   - SegmentReader implements memtrace.Reader by decoding straight into
//     the caller's buffer — no goroutine, no channel, no intermediate
//     batch;
//   - traces that exceed the budget, or instructions outside the encodable
//     envelope, degrade to counted live generation instead of failing.
//
// Replayed runs are bit-identical to generated runs: the encoding is
// lossless for every instruction the tracer emits, pinned by the
// round-trip tests here and the sweep-level determinism tests.
package tracecache

import (
	"container/list"
	"context"
	"errors"
	"flag"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"dcbench/internal/memo"
	"dcbench/internal/memtrace"
	"dcbench/internal/obs"
)

// Key identifies one generated trace: the workload name (the generator
// closure's identity, per sweep.Job's uniqueness contract) and its full
// normalized profile — which embeds the seed and the effective MaxInstrs,
// so two trace lengths never share an entry. The machine configuration is
// deliberately absent: that is the whole point of the cache.
type Key struct {
	Name    string
	Profile memtrace.Profile
}

// Stats is a point-in-time snapshot of the cache's counters. Hits replay
// without generation; Misses triggered a capture (or joined one in
// flight); Captures counts actual generations, so a sweep over N configs
// of one workload shows Captures == 1 and Hits == N-1. Fallbacks counts
// live generations forced by over-budget or unencodable traces.
type Stats struct {
	Traces    int64 `json:"traces"`
	Bytes     int64 `json:"bytes"`
	MaxBytes  int64 `json:"max_bytes"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Captures  int64 `json:"captures"`
	Evictions int64 `json:"evictions"`
	Fallbacks int64 `json:"fallbacks"`
}

// Options carries the cache's flag-configurable tuning.
type Options struct {
	// MaxBytes is the LRU byte budget; 0 disables the cache entirely.
	MaxBytes int64
}

// DefaultMaxBytes is the default -trace-cache-bytes budget: enough for the
// full 26-workload registry at the default trace length several times
// over, small next to the simulated cache state the core pools already
// hold.
const DefaultMaxBytes int64 = 256 << 20

// RegisterFlags declares the trace-cache flags on fs, defaulted from *o
// (zero MaxBytes is replaced by DefaultMaxBytes first) and written back on
// Parse — one definition shared by dcbench and dcserved, like the store
// and dispatch flag sets.
func RegisterFlags(fs *flag.FlagSet, o *Options) {
	if o.MaxBytes == 0 {
		o.MaxBytes = DefaultMaxBytes
	}
	fs.Int64Var(&o.MaxBytes, "trace-cache-bytes", o.MaxBytes,
		"byte budget for captured instruction traces replayed across sweep configs; 0 disables")
}

// Sentinel reasons a trace stays uncacheable; both degrade to live
// generation, counted in Stats.Fallbacks.
var (
	errTooLarge    = errors.New("tracecache: trace exceeds the cache byte budget")
	errUnencodable = errors.New("tracecache: instruction outside the encodable envelope")
)

// Cache is a byte-budgeted LRU of captured traces. Safe for concurrent
// use. Create with New.
type Cache struct {
	max    int64
	flight *memo.Memo[Key, *Trace] // non-retaining: the LRU below is the cache

	mu          sync.Mutex
	entries     map[Key]*list.Element
	lru         *list.List // front = most recently used; values are *entry
	uncacheable map[Key]struct{}
	bytes       int64
	evictions   int64

	hits, misses, captures, fallbacks atomic.Int64
}

// entry is one LRU element.
type entry struct {
	key Key
	t   *Trace
}

// New returns a cache bounded to maxBytes of encoded trace data, or nil
// when maxBytes <= 0 (the disabled configuration: callers treat a nil
// cache as absent).
func New(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		return nil
	}
	c := &Cache{
		max:         maxBytes,
		flight:      memo.NewFlight[Key, *Trace](),
		entries:     make(map[Key]*list.Element),
		lru:         list.New(),
		uncacheable: make(map[Key]struct{}),
	}
	c.flight.SetName("trace.capture")
	return c
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	traces := int64(len(c.entries))
	bytes := c.bytes
	evictions := c.evictions
	c.mu.Unlock()
	return Stats{
		Traces:    traces,
		Bytes:     bytes,
		MaxBytes:  c.max,
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Captures:  c.captures.Load(),
		Evictions: evictions,
		Fallbacks: c.fallbacks.Load(),
	}
}

// Reader returns an instruction stream for the (name, profile) trace:
// a zero-copy replay of the cached encoding on a hit, a capture-then-
// replay on the first miss (concurrent callers for one key share a single
// capture), and a live generator stream — replay == false — when the
// trace cannot be cached (over budget or unencodable). A non-nil error is
// a generator failure: the trace blew up during capture, exactly as it
// would have mid-simulation on the live path.
//
// The context carries the requesting trace (obs): the caller that pays
// for a capture records a "trace.capture" span, a budget fallback records
// a "trace.fallback" event, and callers that merely join an in-flight
// capture record the singleflight's join span. Cancellation is ignored —
// a captured trace is shared state, not one request's work.
func (c *Cache) Reader(ctx context.Context, name string, p memtrace.Profile, gen func(*memtrace.Tracer)) (r memtrace.Reader, replay bool, err error) {
	p = p.Normalize()
	key := Key{Name: name, Profile: p}

	c.mu.Lock()
	if _, bad := c.uncacheable[key]; bad {
		c.mu.Unlock()
		c.fallbacks.Add(1)
		obs.Event(ctx, "trace.fallback", "workload", name)
		return memtrace.NewReader(p, gen), false, nil
	}
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		t := el.Value.(*entry).t
		c.mu.Unlock()
		c.hits.Add(1)
		return t.NewReader(), true, nil
	}
	c.mu.Unlock()

	c.misses.Add(1)
	t, err := c.flight.DoCtx(ctx, key, func(ctx context.Context) (*Trace, error) {
		c.captures.Add(1)
		sp := obs.Start(ctx, "trace.capture", "workload", name)
		t, err := capture(p, gen, c.max)
		switch {
		case err == nil:
			c.insert(key, t)
			sp.End("bytes", strconv.FormatInt(t.bytes, 10), "instrs", strconv.FormatInt(t.n, 10))
		case errors.Is(err, errTooLarge) || errors.Is(err, errUnencodable):
			// Deterministic per key: remember, so later sweeps skip the
			// doomed capture instead of re-paying it per config.
			c.mu.Lock()
			c.uncacheable[key] = struct{}{}
			c.mu.Unlock()
			sp.End("uncacheable", "true")
		default:
			sp.End("err", err.Error())
		}
		return t, err
	})
	if err != nil {
		if errors.Is(err, errTooLarge) || errors.Is(err, errUnencodable) {
			c.fallbacks.Add(1)
			obs.Event(ctx, "trace.fallback", "workload", name)
			return memtrace.NewReader(p, gen), false, nil
		}
		return nil, false, err
	}
	return t.NewReader(), true, nil
}

// insert adds a freshly captured trace and evicts least-recently-used
// entries until the byte budget holds again. Evicted traces stay valid
// for readers already replaying them — segments are immutable.
func (c *Cache) insert(key Key, t *Trace) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return // a racing second capture (flight restarted) lost; keep the first
	}
	c.entries[key] = c.lru.PushFront(&entry{key: key, t: t})
	c.bytes += t.bytes
	for c.bytes > c.max && c.lru.Len() > 1 {
		back := c.lru.Back()
		e := back.Value.(*entry)
		c.lru.Remove(back)
		delete(c.entries, e.key)
		c.bytes -= e.t.bytes
		c.evictions++
	}
}

// Trace is one captured, immutable instruction stream in columnar
// segments.
type Trace struct {
	segs  []*segment
	n     int64 // total instructions
	bytes int64 // encoded size
}

// Len returns the instruction count.
func (t *Trace) Len() int64 { return t.n }

// Bytes returns the encoded size.
func (t *Trace) Bytes() int64 { return t.bytes }

// NewReader returns a fresh replay of the trace. Readers are independent;
// each decodes the shared segments into the caller's buffers.
func (t *Trace) NewReader() memtrace.Reader { return &SegmentReader{t: t} }

// segInstrs caps a segment's instruction count. Delta state resets per
// segment, so segments decode independently — the shape an on-disk spill
// layer would stream back one at a time.
const segInstrs = 1 << 16

// segment holds one run of instructions struct-of-arrays:
//
//	flags  — 1 byte per instruction: op(3) | taken(1) | kernel(1) |
//	         nsrc(2) | has-dep2(1)
//	pc     — zigzag-varint delta from the previous instruction's PC
//	deps   — Dep1 varint, then Dep2 varint when the flag bit is set
//	addr   — loads/stores only: zigzag-varint delta from the previous
//	         memory address in the segment
//	target — branches only: zigzag-varint delta from the branch's own PC
//
// PC deltas are almost always +4 (one byte); dependency distances are
// almost always < 47 (one byte); non-memory instructions pay no address
// byte and non-branches no target, so a mixed trace encodes in ~4-6 bytes
// per instruction against 40 for the struct form.
type segment struct {
	n      int
	flags  []byte
	pc     []byte
	deps   []byte
	addr   []byte
	target []byte
}

func (s *segment) size() int64 {
	return int64(len(s.flags) + len(s.pc) + len(s.deps) + len(s.addr) + len(s.target))
}

// flag-byte layout.
const (
	flagOpMask    = 0b0000_0111
	flagTaken     = 0b0000_1000
	flagKernel    = 0b0001_0000
	flagNSrcShift = 5
	flagNSrcMask  = 0b0110_0000
	flagDep2      = 0b1000_0000
)

// opBranchAddr is a spare opcode (real ops stop at OpBranch == 4) encoding
// a branch that also carries a memory address — the tracer's framework
// burst emits these when one slot is both its periodic load and its
// periodic branch. Such instructions read the addr stream and the target
// stream.
const opBranchAddr = byte(memtrace.OpBranch) + 1

// zigzag encodes a signed delta into an unsigned varint payload.
func zigzag(d int64) uint64 { return uint64(d<<1) ^ uint64(d>>63) }

// unzigzag inverts zigzag.
func unzigzag(v uint64) int64 { return int64(v>>1) ^ -int64(v&1) }

// putUvarint appends v to b in LEB128.
func putUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

// uvarint decodes the varint at b[pos:], returning the value and the next
// position. Inputs come only from putUvarint, so truncation cannot occur.
func uvarint(b []byte, pos int) (uint64, int) {
	var v uint64
	var s uint
	for {
		x := b[pos]
		pos++
		v |= uint64(x&0x7f) << s
		if x < 0x80 {
			return v, pos
		}
		s += 7
	}
}

// encoder builds segments incrementally during capture.
type encoder struct {
	segs     []*segment
	cur      *segment
	prevPC   uint64
	prevAddr uint64
	n        int64
	closed   int64 // bytes in finalized segments
}

// add encodes one instruction, or reports errUnencodable for instructions
// outside the envelope the format can represent losslessly (the tracer
// never emits them; hand-built readers might).
func (e *encoder) add(in *memtrace.Inst) error {
	if in.Op > memtrace.OpBranch || in.NSrc > 3 {
		return errUnencodable
	}
	isMem := in.Op == memtrace.OpLoad || in.Op == memtrace.OpStore
	isBranch := in.Op == memtrace.OpBranch
	code := byte(in.Op)
	if isBranch && in.Addr != 0 {
		code = opBranchAddr
	}
	hasAddr := isMem || code == opBranchAddr
	if (!hasAddr && in.Addr != 0) || (!isBranch && in.Target != 0) {
		return errUnencodable
	}
	if e.cur == nil {
		e.cur = &segment{}
		e.segs = append(e.segs, e.cur)
		e.prevPC, e.prevAddr = 0, 0
	}
	s := e.cur

	f := code | in.NSrc<<flagNSrcShift
	if in.Taken {
		f |= flagTaken
	}
	if in.Kernel {
		f |= flagKernel
	}
	if in.Dep2 != 0 {
		f |= flagDep2
	}
	s.flags = append(s.flags, f)

	s.pc = putUvarint(s.pc, zigzag(int64(in.PC-e.prevPC)))
	e.prevPC = in.PC

	s.deps = putUvarint(s.deps, uint64(in.Dep1))
	if in.Dep2 != 0 {
		s.deps = putUvarint(s.deps, uint64(in.Dep2))
	}
	if hasAddr {
		s.addr = putUvarint(s.addr, zigzag(int64(in.Addr-e.prevAddr)))
		e.prevAddr = in.Addr
	}
	if isBranch {
		s.target = putUvarint(s.target, zigzag(int64(in.Target-in.PC)))
	}

	s.n++
	e.n++
	if s.n == segInstrs {
		e.closed += s.size()
		e.cur = nil
	}
	return nil
}

// size returns the bytes encoded so far.
func (e *encoder) size() int64 {
	if e.cur != nil {
		return e.closed + e.cur.size()
	}
	return e.closed
}

// trace finalizes the encoder into an immutable Trace.
func (e *encoder) trace() *Trace {
	return &Trace{segs: e.segs, n: e.n, bytes: e.size()}
}

// capture generates the full trace for p once and encodes it, aborting
// with errTooLarge as soon as the encoding crosses limit. A generator
// panic comes back as an error, exactly like the live path's TracePanic.
func capture(p memtrace.Profile, gen func(*memtrace.Tracer), limit int64) (t *Trace, err error) {
	r := memtrace.NewReader(p, gen)
	enc := &encoder{}
	buf := make([]memtrace.Inst, 8192)
	abort := false
	func() {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if tp, ok := rec.(memtrace.TracePanic); ok {
				// The generator goroutine has already exited; nothing to drain.
				err = fmt.Errorf("trace generation panicked: %v", tp.Val)
				return
			}
			panic(rec) // an encoder bug, not a trace condition: stay loud
		}()
		for {
			n := r.Read(buf)
			if n == 0 {
				return
			}
			for i := 0; i < n; i++ {
				if aerr := enc.add(&buf[i]); aerr != nil {
					err = aerr
					abort = true
					return
				}
			}
			if limit > 0 && enc.size() > limit {
				err = errTooLarge
				abort = true
				return
			}
		}
	}()
	if abort {
		// The generator goroutine is still producing; drain it in the
		// background so it can finish and be collected.
		go drain(r)
	}
	if err != nil {
		return nil, err
	}
	return enc.trace(), nil
}

// drain consumes an abandoned live trace to completion (bounded by the
// profile's MaxInstrs cap) so its generator goroutine can exit.
func drain(r memtrace.Reader) {
	defer func() { recover() }() // the generator may itself panic at the end
	var buf [512]memtrace.Inst
	for r.Read(buf[:]) != 0 {
	}
}

// SegmentReader replays a Trace, implementing memtrace.Reader by decoding
// the columnar streams directly into the caller's buffer — no generator
// goroutine, no channel hop, no intermediate batch copy. Not safe for
// concurrent use; create one per replay with Trace.NewReader.
type SegmentReader struct {
	t   *Trace
	seg int // current segment index
	i   int // instructions decoded from the current segment

	pcPos, depPos, addrPos, targetPos int
	prevPC, prevAddr                  uint64
}

// Read implements memtrace.Reader.
func (r *SegmentReader) Read(buf []memtrace.Inst) int {
	total := 0
	for total < len(buf) && r.seg < len(r.t.segs) {
		s := r.t.segs[r.seg]
		for total < len(buf) && r.i < s.n {
			f := s.flags[r.i]
			in := &buf[total]

			var v uint64
			v, r.pcPos = uvarint(s.pc, r.pcPos)
			pc := r.prevPC + uint64(unzigzag(v))
			r.prevPC = pc

			var d1, d2 uint64
			d1, r.depPos = uvarint(s.deps, r.depPos)
			if f&flagDep2 != 0 {
				d2, r.depPos = uvarint(s.deps, r.depPos)
			}

			code := f & flagOpMask
			op := memtrace.Op(code)
			if code == opBranchAddr {
				op = memtrace.OpBranch
			}
			var addr, target uint64
			if op == memtrace.OpLoad || op == memtrace.OpStore || code == opBranchAddr {
				v, r.addrPos = uvarint(s.addr, r.addrPos)
				addr = r.prevAddr + uint64(unzigzag(v))
				r.prevAddr = addr
			}
			if op == memtrace.OpBranch {
				v, r.targetPos = uvarint(s.target, r.targetPos)
				target = pc + uint64(unzigzag(v))
			}

			*in = memtrace.Inst{
				PC:     pc,
				Addr:   addr,
				Target: target,
				Dep1:   uint16(d1),
				Dep2:   uint16(d2),
				Op:     op,
				Taken:  f&flagTaken != 0,
				Kernel: f&flagKernel != 0,
				NSrc:   f >> flagNSrcShift & 3,
			}
			total++
			r.i++
		}
		if r.i == s.n {
			r.seg++
			r.i = 0
			r.pcPos, r.depPos, r.addrPos, r.targetPos = 0, 0, 0, 0
			r.prevPC, r.prevAddr = 0, 0
		}
	}
	return total
}
