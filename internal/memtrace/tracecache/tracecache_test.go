package tracecache

import (
	"context"
	"reflect"
	"strings"
	"sync"
	"testing"

	"dcbench/internal/memtrace"
)

// testGen is a generator that exercises every field the encoding must
// round-trip: loads, stores, per-site branches, FPU mix, kernel-mode
// syscall excursions, framework bursts (cold-code branches with targets)
// and GC sweeps.
func testGen(t *memtrace.Tracer) {
	base := t.Alloc(1 << 20)
	for {
		for off := uint64(0); off < 1<<18; off += 64 {
			t.Load(base + off)
			if off%512 == 0 {
				t.Store(base + off)
			}
			t.BranchSite(int(off>>6)%7, off%192 == 0)
		}
		t.Syscall(400, 4096)
	}
}

func testProfile(maxInstrs int64) memtrace.Profile {
	return memtrace.Profile{
		Seed:            42,
		MaxInstrs:       maxInstrs,
		CodeKB:          128,
		HotCodeKB:       16,
		ColdJumpP:       0.1,
		FrameworkEvery:  3000,
		FrameworkInstrs: 200,
		GCEvery:         20_000,
		GCInstrs:        500,
		HeapMB:          4,
		FPUShare:        0.2,
	}
}

// collectLive drains a fresh live generator stream for p.
func collectLive(p memtrace.Profile, maxInstrs int64) []memtrace.Inst {
	return memtrace.Collect(memtrace.NewReader(p, testGen), int(maxInstrs)+16)
}

// TestRoundTrip: a replayed trace is bit-identical to the live stream,
// instruction by instruction, and the cache counts one capture plus hits.
func TestRoundTrip(t *testing.T) {
	const n = 50_000
	p := testProfile(n)
	live := collectLive(p, n)
	if int64(len(live)) != n {
		t.Fatalf("live trace length = %d, want %d", len(live), n)
	}

	c := New(DefaultMaxBytes)
	r, replay, err := c.Reader(context.Background(), "w", p, testGen)
	if err != nil {
		t.Fatal(err)
	}
	if !replay {
		t.Fatal("first Reader call did not capture+replay")
	}
	got := memtrace.Collect(r, n+16)
	if !reflect.DeepEqual(live, got) {
		for i := range live {
			if live[i] != got[i] {
				t.Fatalf("replay diverges at instruction %d:\nlive:   %+v\nreplay: %+v", i, live[i], got[i])
			}
		}
		t.Fatalf("replay length %d != live length %d", len(got), len(live))
	}

	// Second reader: pure LRU hit, no capture.
	r2, replay, err := c.Reader(context.Background(), "w", p, testGen)
	if err != nil || !replay {
		t.Fatalf("second Reader: replay=%v err=%v", replay, err)
	}
	if got2 := memtrace.Collect(r2, n+16); !reflect.DeepEqual(live, got2) {
		t.Fatal("second replay diverges")
	}
	s := c.Stats()
	if s.Captures != 1 || s.Hits != 1 || s.Misses != 1 || s.Traces != 1 || s.Fallbacks != 0 {
		t.Fatalf("stats = %+v, want captures=1 hits=1 misses=1 traces=1 fallbacks=0", s)
	}
	if s.Bytes <= 0 || s.Bytes >= n*8 {
		t.Fatalf("encoded bytes = %d for %d instrs; expected compact (<8 B/instr) and non-zero", s.Bytes, n)
	}
}

// TestMultiSegmentSmallReads: traces longer than one segment replay
// correctly across segment boundaries, including under adversarially
// small and uneven read buffer sizes.
func TestMultiSegmentSmallReads(t *testing.T) {
	const n = 3*segInstrs + 1234 // four segments, last one partial
	p := testProfile(n)
	live := collectLive(p, n)

	tr, err := capture(p, testGen, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.segs) != 4 {
		t.Fatalf("segments = %d, want 4", len(tr.segs))
	}
	if tr.Len() != n {
		t.Fatalf("trace length = %d, want %d", tr.Len(), n)
	}

	r := tr.NewReader()
	var got []memtrace.Inst
	sizes := []int{1, 3, 7, 1000, segInstrs} // straddle boundaries every way
	for i := 0; ; i++ {
		buf := make([]memtrace.Inst, sizes[i%len(sizes)])
		m := r.Read(buf)
		if m == 0 {
			break
		}
		got = append(got, buf[:m]...)
	}
	if !reflect.DeepEqual(live, got) {
		t.Fatal("multi-segment small-buffer replay diverges from live stream")
	}
}

// TestBudgetFallback: a trace that would exceed the byte budget falls back
// to live generation — counted, cache bytes unchanged — and later requests
// for the same key skip the doomed capture entirely.
func TestBudgetFallback(t *testing.T) {
	const n = 40_000
	p := testProfile(n)
	live := collectLive(p, n)

	c := New(1024) // far below the ~4 B/instr encoding
	r, replay, err := c.Reader(context.Background(), "w", p, testGen)
	if err != nil {
		t.Fatal(err)
	}
	if replay {
		t.Fatal("over-budget trace claimed to replay")
	}
	if got := memtrace.Collect(r, n+16); !reflect.DeepEqual(live, got) {
		t.Fatal("fallback stream diverges from plain live stream")
	}
	s := c.Stats()
	if s.Fallbacks != 1 || s.Captures != 1 || s.Traces != 0 || s.Bytes != 0 {
		t.Fatalf("stats after fallback = %+v, want fallbacks=1 captures=1 traces=0 bytes=0", s)
	}

	// The key is remembered as uncacheable: no second capture.
	if _, replay, err = c.Reader(context.Background(), "w", p, testGen); err != nil || replay {
		t.Fatalf("second Reader: replay=%v err=%v", replay, err)
	}
	s = c.Stats()
	if s.Fallbacks != 2 || s.Captures != 1 || s.Bytes != 0 {
		t.Fatalf("stats after second fallback = %+v, want fallbacks=2 captures=1 bytes=0", s)
	}
}

// TestEviction: inserting past the budget evicts the least-recently-used
// trace and keeps the byte count within budget.
func TestEviction(t *testing.T) {
	const n = 20_000
	pA := testProfile(n)
	pB := testProfile(n)
	pB.Seed = 7

	tA, err := capture(pA.Normalize(), testGen, 0)
	if err != nil {
		t.Fatal(err)
	}
	tB, err := capture(pB.Normalize(), testGen, 0)
	if err != nil {
		t.Fatal(err)
	}

	c := New(tA.Bytes() + tB.Bytes() - 1) // each fits; both together do not
	if _, _, err := c.Reader(context.Background(), "a", pA, testGen); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Reader(context.Background(), "b", pB, testGen); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.Traces != 1 || s.Evictions != 1 || s.Bytes != tB.Bytes() {
		t.Fatalf("stats = %+v, want traces=1 evictions=1 bytes=%d", s, tB.Bytes())
	}

	// The survivor is B; A re-captures on its next request.
	if _, replay, err := c.Reader(context.Background(), "b", pB, testGen); err != nil || !replay {
		t.Fatalf("evicting insert displaced the wrong entry: replay=%v err=%v", replay, err)
	}
	if got := c.Stats(); got.Captures != 2 || got.Hits != 1 {
		t.Fatalf("stats = %+v, want captures=2 hits=1", got)
	}
}

// TestCapturePanic: a generator panic during capture surfaces as an error
// (matching the live path's TracePanic semantics) and is not cached — the
// next request attempts a fresh capture.
func TestCapturePanic(t *testing.T) {
	p := memtrace.Profile{Seed: 1, MaxInstrs: 10_000}
	boom := func(tr *memtrace.Tracer) {
		tr.ALU(100)
		panic("boom")
	}
	c := New(DefaultMaxBytes)
	if _, _, err := c.Reader(context.Background(), "bad", p, boom); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want generator panic", err)
	}
	if _, _, err := c.Reader(context.Background(), "bad", p, boom); err == nil {
		t.Fatal("second request silently succeeded")
	}
	if s := c.Stats(); s.Captures != 2 || s.Traces != 0 {
		t.Fatalf("stats = %+v, want captures=2 traces=0 (errors never cached)", s)
	}
}

// TestUnencodable: instructions outside the format's envelope (never
// emitted by the Tracer, but possible from hand-built readers) are
// rejected by the encoder rather than silently corrupted.
func TestUnencodable(t *testing.T) {
	cases := []memtrace.Inst{
		{Op: memtrace.Op(9)},                  // op beyond 3 bits
		{Op: memtrace.OpALU, NSrc: 4},         // nsrc beyond 2 bits
		{Op: memtrace.OpALU, Addr: 0x1000},    // address on a non-memory op
		{Op: memtrace.OpLoad, Target: 0x1000}, // target on a non-branch
	}
	for i, in := range cases {
		e := &encoder{}
		if err := e.add(&in); err != errUnencodable {
			t.Errorf("case %d (%+v): err = %v, want errUnencodable", i, in, err)
		}
	}
}

// TestConcurrentSingleflight: many goroutines requesting one key share a
// single capture and all replay identical streams.
func TestConcurrentSingleflight(t *testing.T) {
	const n = 30_000
	p := testProfile(n)
	live := collectLive(p, n)
	c := New(DefaultMaxBytes)

	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	streams := make([][]memtrace.Inst, workers)
	for i := 0; i < workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, replay, err := c.Reader(context.Background(), "w", p, testGen)
			if err != nil {
				errs[i] = err
				return
			}
			if !replay {
				t.Errorf("worker %d: fell back to live generation", i)
				return
			}
			streams[i] = memtrace.Collect(r, n+16)
		}()
	}
	wg.Wait()
	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(live, streams[i]) {
			t.Fatalf("worker %d: replay diverges from live stream", i)
		}
	}
	if s := c.Stats(); s.Captures != 1 {
		t.Fatalf("captures = %d, want 1 (singleflight)", s.Captures)
	}
}
