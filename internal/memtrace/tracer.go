package memtrace

import (
	"sync"

	"dcbench/internal/sim"
)

// Profile parameterises the Tracer's code, framework and instruction-mix
// models for one workload class. Zero values get sensible defaults from
// Normalize.
type Profile struct {
	Seed      uint64
	MaxInstrs int64 // trace length cap; generation stops here

	// Code model.
	CodeKB    int     // application code footprint (incl. libraries)
	HotCodeKB int     // hot loop footprint the algorithm itself runs in
	KernelKB  int     // kernel code footprint touched by syscalls
	BlockLen  int     // average basic block length in instructions
	ColdJumpP float64 // probability a block-end jump leaves the hot set

	// Framework / managed-runtime overhead model.
	FrameworkEvery  int // app instructions between framework excursions (0 = none)
	FrameworkInstrs int // instructions per excursion
	FrameworkJump   int // instructions between cold-code jumps inside an excursion
	GCEvery         int64
	GCInstrs        int
	HeapMB          int

	// Instruction mix.
	ALUPerMem int     // ALU instructions surrounding each memory access
	FPUShare  float64 // fraction of compute ops that are FPU
	NSrc2P    float64 // probability an op reads 2 sources
	NSrc3P    float64 // probability an op reads 3 sources (register pressure)
	ChainProb float64 // probability an op depends on the previous one
}

// Normalize fills defaults for unset fields.
func (p Profile) Normalize() Profile {
	if p.MaxInstrs == 0 {
		p.MaxInstrs = 2_000_000
	}
	if p.CodeKB == 0 {
		p.CodeKB = 64
	}
	if p.HotCodeKB == 0 {
		p.HotCodeKB = 8
	}
	if p.HotCodeKB > p.CodeKB {
		p.HotCodeKB = p.CodeKB
	}
	if p.KernelKB == 0 {
		p.KernelKB = 192
	}
	if p.BlockLen == 0 {
		p.BlockLen = 6
	}
	if p.ALUPerMem == 0 {
		p.ALUPerMem = 2
	}
	if p.FrameworkJump == 0 {
		p.FrameworkJump = 8
	}
	if p.ChainProb == 0 {
		p.ChainProb = 0.4
	}
	if p.NSrc2P == 0 {
		p.NSrc2P = 0.35
	}
	return p
}

// Address-space layout of the trace model.
const (
	userCodeBase   = 0x0000_0000_0040_0000
	kernelCodeBase = 0x0000_7000_0000_0000
	heapBase       = 0x0000_2000_0000_0000
	kernelDataBase = 0x0000_7100_0000_0000
	blockBytes     = 64 // bytes of code per basic block
)

// Tracer generates the instruction stream while a workload adapter runs.
type Tracer struct {
	prof Profile
	rng  *sim.RNG

	out     chan []Inst
	buf     []Inst
	stopped bool

	emitted    int64
	appSinceFW int
	sinceGC    int64
	heapBytes  int64
	heapGCPos  int64
	allocNext  uint64
	kernelBufs uint64
	userBufs   uint64
	bufTurn    int

	// Code walk state.
	nBlocks    int // total app blocks
	nHot       int
	curBlock   int
	blockOff   int
	funcBase   int
	funcOff    int
	loopsDone  int
	inCold     bool
	inKernel   bool
	kernBlocks int
	curKBlock  int
	kBlockOff  int

	// coldZipf picks cold code blocks with realistic popularity skew:
	// library/framework paths are revisited, not uniformly random, which
	// is what lets the BTB and branch predictor stay warm while the
	// footprint tail still pressures the L1I.
	coldZipf *sim.Zipf
	kernZipf *sim.Zipf
}

type abortTrace struct{}

// TracePanic wraps a panic that escaped a trace generator. The generator
// runs in its own goroutine, so the panic is re-raised inside the consuming
// goroutine's Read call once the trace ends; the wrapper lets consumers
// distinguish "the generator blew up" (its goroutine has already exited)
// from a panic in their own simulation code (the generator may still be
// producing).
type TracePanic struct{ Val any }

const batchSize = 8192

// batchPool recycles instruction batches between the generator goroutine
// and the consuming reader. A full characterization sweep moves hundreds of
// millions of instructions through these batches; pooling takes the
// per-batch allocation (and the GC churn it feeds) off the trace hot path.
// Batches return to the pool in (*chanReader).Read once fully consumed.
var batchPool = sync.Pool{
	New: func() any { return make([]Inst, 0, batchSize) },
}

func newBatch() []Inst { return batchPool.Get().([]Inst)[:0] }

func recycleBatch(b []Inst) {
	if cap(b) == batchSize {
		batchPool.Put(b[:0])
	}
}

// NewReader runs gen(t) in a generator goroutine and returns the resulting
// instruction stream. Generation ends when gen returns or the profile's
// MaxInstrs cap is reached; adapters may therefore loop indefinitely.
func NewReader(p Profile, gen func(t *Tracer)) Reader {
	p = p.Normalize()
	t := &Tracer{
		prof:      p,
		rng:       sim.NewRNG(p.Seed),
		out:       make(chan []Inst, 4),
		buf:       newBatch(),
		heapBytes: int64(p.HeapMB) << 20,
		allocNext: heapBase,
	}
	t.nBlocks = p.CodeKB * 1024 / blockBytes
	t.nHot = p.HotCodeKB * 1024 / blockBytes
	if t.nHot < 1 {
		t.nHot = 1
	}
	t.kernBlocks = p.KernelKB * 1024 / blockBytes
	if t.kernBlocks < 1 {
		t.kernBlocks = 1
	}
	t.coldZipf = sim.NewZipf(t.rng, t.nBlocks, 1.05)
	t.kernZipf = sim.NewZipf(t.rng, t.kernBlocks, 1.4)
	t.kernelBufs = kernelDataBase
	r := &chanReader{ch: t.out}
	go func() {
		defer func() {
			if rec := recover(); rec != nil {
				if _, ok := rec.(abortTrace); !ok {
					// Hand the panic to the consuming goroutine: the write
					// happens before close(t.out), which happens before the
					// reader observes the closed channel. Re-panicking on
					// the consumer side keeps adapter bugs loud while
					// letting sweep workers recover them as per-workload
					// errors instead of killing the whole process.
					r.genPanic = rec
				}
			}
			if len(t.buf) > 0 {
				t.out <- t.buf
			}
			close(t.out)
		}()
		gen(t)
	}()
	return r
}

type chanReader struct {
	ch       chan []Inst
	batch    []Inst // current batch, recycled once pending drains
	pending  []Inst
	genPanic any // generator panic, re-raised at end of trace
}

// Read implements Reader. Instructions are copied into buf, so the batch
// they arrived in can go back to the pool as soon as it is drained.
func (r *chanReader) Read(buf []Inst) int {
	for len(r.pending) == 0 {
		if r.batch != nil {
			recycleBatch(r.batch)
			r.batch = nil
		}
		batch, ok := <-r.ch
		if !ok {
			if r.genPanic != nil {
				panic(TracePanic{r.genPanic})
			}
			return 0
		}
		r.batch = batch
		r.pending = batch
	}
	n := copy(buf, r.pending)
	r.pending = r.pending[n:]
	return n
}

// Emitted returns the number of instructions generated so far.
func (t *Tracer) Emitted() int64 { return t.emitted }

// RNG exposes the tracer's deterministic generator so adapters can derive
// data values without extra seeds.
func (t *Tracer) RNG() *sim.RNG { return t.rng }

// Alloc reserves a page-aligned virtual region of the given size and
// returns its base address.
func (t *Tracer) Alloc(bytes int64) uint64 {
	base := (t.allocNext + 4095) &^ 4095
	t.allocNext = base + uint64(bytes)
	return base
}

// push emits one instruction, flushing batches and enforcing the cap.
func (t *Tracer) push(i Inst) {
	t.buf = append(t.buf, i)
	if len(t.buf) >= batchSize {
		t.out <- t.buf
		t.buf = newBatch()
	}
	t.emitted++
	if t.emitted >= t.prof.MaxInstrs {
		panic(abortTrace{})
	}
}

// The code walk models structured control flow rather than a random block
// graph: hot code is a sequence of "functions" of funcBlocks straight-line
// basic blocks; each function body loops loopTarget times (a predictable
// taken-taken-...-not-taken backward branch), then control falls through to
// the next hot function or makes a Zipf-popular excursion into cold
// library code that returns. Fall-throughs between blocks emit no branch —
// only real jumps do — so the predictor and BTB see learnable, repeating
// patterns, like compiled code and unlike a random walk.
const (
	funcBlocks = 8
	loopTarget = 4
)

// pc returns the current instruction address and advances the code walk;
// at basic-block boundaries it advances the block graph.
func (t *Tracer) pc() uint64 {
	if t.inKernel {
		addr := kernelCodeBase + uint64(t.curKBlock)*blockBytes + uint64(t.kBlockOff)*4
		t.kBlockOff++
		if t.kBlockOff*4 >= blockBytes {
			t.kBlockOff = 0
			// Kernel paths are hot: syscall entry/copy loops dominate.
			t.curKBlock = t.kernZipf.Next()
		}
		return addr
	}
	addr := userCodeBase + uint64(t.curBlock)*blockBytes + uint64(t.blockOff)*4
	t.blockOff++
	if t.blockOff >= t.prof.BlockLen {
		t.blockOff = 0
		t.advanceBlock(addr)
	}
	return addr
}

// advanceBlock moves to the next basic block, emitting jump instructions
// only for real control transfers.
func (t *Tracer) advanceBlock(lastAddr uint64) {
	jmpPC := lastAddr + 4
	jump := func(taken bool, target int) {
		t.push(Inst{PC: jmpPC, Op: OpBranch, Taken: taken,
			Target: userCodeBase + uint64(target)*blockBytes, NSrc: 1})
	}
	if t.inCold {
		t.funcOff++
		if t.funcOff < funcBlocks {
			t.curBlock++ // fall through within the cold function
			return
		}
		// Return to the hot caller.
		t.inCold = false
		t.funcOff = 0
		t.curBlock = t.funcBase
		jump(true, t.curBlock)
		return
	}
	t.funcOff++
	if t.funcOff < funcBlocks {
		t.curBlock++ // fall through
		return
	}
	t.funcOff = 0
	if t.loopsDone < loopTarget {
		// Backward loop branch: taken.
		t.loopsDone++
		t.curBlock = t.funcBase
		jump(true, t.curBlock)
		return
	}
	// Loop exit: the same backward branch, not taken.
	jump(false, t.funcBase)
	t.loopsDone = 0
	if t.nBlocks-t.nHot >= funcBlocks && t.rng.Float64() < t.prof.ColdJumpP {
		cold := t.coldZipf.Next()
		if cold+funcBlocks > t.nBlocks {
			cold = t.nBlocks - funcBlocks
		}
		if cold < t.nHot {
			cold = t.nHot // excursions go to cold code by definition
		}
		t.inCold = true
		t.curBlock = cold
		jump(true, cold)
		return
	}
	// Fall through to the next hot function (wrapping).
	t.funcBase += funcBlocks
	if t.funcBase+funcBlocks > t.nHot {
		t.funcBase = 0
	}
	t.curBlock = t.funcBase
}

// deps draws producer distances and source counts per the mix profile.
func (t *Tracer) deps() (d1, d2 uint16, nsrc uint8) {
	nsrc = 1
	r := t.rng.Float64()
	if r < t.prof.NSrc3P {
		nsrc = 3
	} else if r < t.prof.NSrc3P+t.prof.NSrc2P {
		nsrc = 2
	}
	if t.rng.Float64() < t.prof.ChainProb {
		d1 = 1
	} else {
		d1 = uint16(2 + t.rng.Intn(44))
	}
	if nsrc >= 2 {
		d2 = uint16(1 + t.rng.Intn(44))
	}
	return
}

// compute emits one ALU or FPU instruction.
func (t *Tracer) compute() {
	op := OpALU
	if t.prof.FPUShare > 0 && t.rng.Float64() < t.prof.FPUShare {
		op = OpFPU
	}
	d1, d2, nsrc := t.deps()
	t.push(Inst{PC: t.pc(), Op: op, Dep1: d1, Dep2: d2, NSrc: nsrc, Kernel: t.inKernel})
	t.overheads(1)
}

// ALU emits n ALU/FPU instructions.
func (t *Tracer) ALU(n int) {
	for i := 0; i < n; i++ {
		t.compute()
	}
}

// FPU emits n floating-point instructions regardless of FPUShare.
func (t *Tracer) FPU(n int) {
	for i := 0; i < n; i++ {
		d1, d2, nsrc := t.deps()
		t.push(Inst{PC: t.pc(), Op: OpFPU, Dep1: d1, Dep2: d2, NSrc: nsrc, Kernel: t.inKernel})
		t.overheads(1)
	}
}

// memOp emits a load or store plus the surrounding ALU work.
func (t *Tracer) memOp(op Op, addr uint64) {
	for i := 0; i < t.prof.ALUPerMem; i++ {
		t.compute()
	}
	d1, d2, nsrc := t.deps()
	t.push(Inst{PC: t.pc(), Op: op, Addr: addr, Dep1: d1, Dep2: d2, NSrc: nsrc, Kernel: t.inKernel})
	t.overheads(1)
}

// Load emits a load of addr (plus mix overhead).
func (t *Tracer) Load(addr uint64) { t.memOp(OpLoad, addr) }

// Store emits a store to addr (plus mix overhead).
func (t *Tracer) Store(addr uint64) { t.memOp(OpStore, addr) }

// Branch emits a data-dependent conditional branch with the given real
// outcome at the default site (0). Prefer BranchSite: a static branch
// instruction lives at one PC, and predictors only learn per-site history.
func (t *Tracer) Branch(taken bool) { t.BranchSite(0, taken) }

// BranchSite emits a conditional branch belonging to the logical source
// site `site`: every call with the same site uses the same instruction
// address (within the hot code region) and the same target, as a compiled
// branch would.
func (t *Tracer) BranchSite(site int, taken bool) {
	block := site
	if t.nHot > 0 {
		block = site % t.nHot
	}
	pcv := userCodeBase + uint64(block)*blockBytes + 56
	t.push(Inst{PC: pcv, Op: OpBranch, Taken: taken, Target: pcv + 64,
		Dep1: 1, NSrc: 1, Kernel: t.inKernel})
	t.overheads(1)
}

// Syscall emits a kernel-mode excursion of roughly instrs instructions
// that copies touchBytes between recycled user I/O buffers and the kernel's
// buffer window — the read/write/send path that dominates OS time in the
// I/O-heavy workloads. Buffers are drawn from a fixed pool, as real I/O
// paths reuse page-cache and socket buffers rather than touching fresh
// memory on every call.
func (t *Tracer) Syscall(instrs int, touchBytes int64) {
	if t.inKernel {
		return // no nested syscalls in the model
	}
	if t.userBufs == 0 {
		t.userBufs = t.Alloc(userBufCount * userBufBytes)
		t.kernelBufs = kernelDataBase
	}
	t.inKernel = true
	t.curKBlock = t.kernZipf.Next()
	userBuf := t.userBufs + uint64(t.bufTurn%userBufCount)*userBufBytes
	kernBuf := t.kernelBufs + uint64(t.bufTurn%4)*kernBufBytes
	t.bufTurn++
	// Entry/exit path: mode switch, argument checks, fd lookup.
	for i := 0; i < 40 && i < instrs; i++ {
		t.compute()
	}
	emitted := 40
	// Copy loop: load user, store kernel, stride one cache line.
	var off int64
	for emitted < instrs {
		if touchBytes > 0 {
			t.memOp(OpLoad, userBuf+uint64(off)%userBufBytes)
			t.memOp(OpStore, kernBuf+uint64(off)%kernBufBytes)
			off += 64
			if off >= touchBytes {
				off = 0
			}
			emitted += 2 * (t.prof.ALUPerMem + 1)
		} else {
			t.compute()
			emitted++
		}
	}
	t.inKernel = false
}

// I/O buffer pool geometry: small and recycled, like real page-cache and
// socket-buffer pages, so the copy path stays cache-warm instead of
// inventing an unbounded cold footprint.
const (
	userBufCount = 8
	userBufBytes = 8 << 10
	kernBufBytes = 64 << 10
)

// overheads injects the framework and GC excursions after app instructions.
func (t *Tracer) overheads(n int) {
	if t.inKernel {
		return
	}
	if t.prof.GCEvery > 0 {
		t.sinceGC += int64(n)
	}
	if t.prof.FrameworkEvery > 0 {
		t.appSinceFW += n
		if t.appSinceFW >= t.prof.FrameworkEvery {
			t.appSinceFW = 0
			t.frameworkBurst()
		}
	}
	if t.prof.GCEvery > 0 && t.sinceGC >= t.prof.GCEvery {
		t.sinceGC = 0
		t.gcBurst()
	}
}

// frameworkBurst walks cold code (virtual dispatch, serialisation, task
// bookkeeping) touching scattered heap metadata.
func (t *Tracer) frameworkBurst() {
	saveBlock, saveOff := t.curBlock, t.blockOff
	// Framework metadata (task state, serialisers, object headers) is a
	// small hot window of the heap; only a sliver of touches hit the tail.
	hotWindow := t.heapBytes
	if hotWindow > 64<<10 {
		hotWindow = 64 << 10
	}
	for i := 0; i < t.prof.FrameworkInstrs; i++ {
		// Cold code walk: jump blocks every FrameworkJump instructions,
		// with Zipf-popular targets.
		if i%t.prof.FrameworkJump == 0 {
			t.curBlock = t.coldZipf.Next()
			t.blockOff = 0
		}
		d1, d2, nsrc := t.deps()
		in := Inst{PC: t.pcRaw(), Op: OpALU, Dep1: d1, Dep2: d2, NSrc: nsrc}
		if i%6 == 5 && t.heapBytes > 0 {
			in.Op = OpLoad
			if t.rng.Float64() < 0.92 {
				in.Addr = heapBase + t.rng.Uint64()%uint64(hotWindow)
			} else {
				in.Addr = heapBase + t.rng.Uint64()%uint64(t.heapBytes)
			}
		}
		if i%13 == 12 {
			in.Op = OpBranch
			// Structured: the same call sites take the same paths.
			in.Taken = i%26 == 12
			in.Target = userCodeBase + uint64(t.coldZipf.Next())*blockBytes
		}
		t.push(in)
	}
	t.curBlock, t.blockOff = saveBlock, saveOff
}

// gcBurst sweeps the heap sequentially, the stop-the-world mark/sweep
// phases of a managed runtime.
func (t *Tracer) gcBurst() {
	for i := 0; i < t.prof.GCInstrs; i++ {
		in := Inst{PC: t.pcRaw(), Op: OpALU, Dep1: 1, NSrc: 1}
		if i%2 != 0 && t.heapBytes > 0 {
			in.Op = OpLoad
			in.Addr = heapBase + uint64(t.heapGCPos)
			t.heapGCPos += 64
			if t.heapGCPos >= t.heapBytes {
				t.heapGCPos = 0
			}
		}
		t.push(in)
		if i%8 == 7 {
			t.curBlock = t.coldZipf.Next()
			t.blockOff = 0
		}
	}
}

// pcRaw advances the PC without recursing into overheads (used inside
// bursts).
func (t *Tracer) pcRaw() uint64 {
	addr := userCodeBase + uint64(t.curBlock)*blockBytes + uint64(t.blockOff)*4
	t.blockOff++
	if t.blockOff >= t.prof.BlockLen {
		t.blockOff = 0
	}
	return addr
}
