// Package serve is dcserved's HTTP layer: it exposes the paper's figures,
// tables and per-workload counter files over a versioned JSON/CSV API,
// backed by the concurrent sweep engine and (optionally) the persistent
// result store.
//
// Design points, in the order requests meet them:
//
//   - structured slog request logging around every handler;
//   - ETag/Cache-Control validators derived from the run parameters
//     (seed, scale, instrs, warmup, config fingerprint), so a client or
//     proxy revalidating an unchanged deployment never triggers a render;
//   - singleflight coalescing per (endpoint, format), so a thundering herd
//     on a cold figure runs exactly one render — and the engine's memo
//     coalesces the underlying sweep a second time below that;
//   - renders run under the server's base context, not the request's: a
//     coalesced sweep must not die with whichever client happened to start
//     it, and shutdown (Close) cancels the base context to stop in-flight
//     sweeps once the grace period expires.
package serve

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dcbench/internal/core"
	"dcbench/internal/jobs"
	"dcbench/internal/memo"
	"dcbench/internal/memtrace/tracecache"
	"dcbench/internal/obs"
	"dcbench/internal/report"
	"dcbench/internal/store"
	"dcbench/internal/sweep"
	"dcbench/internal/tenant"
	"dcbench/internal/workloads"
)

// Config assembles a Server.
type Config struct {
	// Options are the run parameters every response is computed under; the
	// zero value means report.DefaultOptions(). Options.Engine and
	// Options.Cluster are ignored — the server always runs its own engine
	// and cluster cache (wired to Store/Backend/Cluster below), so its
	// caches have the server's lifetime and restart semantics.
	Options report.Options
	// Store, when non-nil, persists sweep results across restarts and
	// processes.
	Store *store.Store
	// Backend overrides Store as the engine's memo backend (tests wrap the
	// store in counting shims through this).
	Backend sweep.MemoBackend
	// Cluster overrides Store as the cluster memo's persistent backend
	// (tests wrap the store in counting shims through this).
	Cluster workloads.StatsBackend
	// TraceCacheBytes, when positive, installs a trace capture/replay
	// cache of that byte budget on the server's engine: each workload's
	// instruction stream is generated once and replayed for every other
	// machine configuration it is swept under. 0 runs without one.
	TraceCacheBytes int64
	// MaxInflight, when positive, bounds concurrent compute jobs
	// (POST /v1/jobs and the /v1/sweep alias): excess requests are shed
	// with 429 + Retry-After instead of queued without bound, so one
	// worker under many front-ends degrades loudly rather than drowning.
	// 0 admits everything.
	MaxInflight int
	// Tenants is the identity layer: a registry opened from a keys file
	// makes every non-probe request authenticate (401 unauthorized
	// without a valid key) and enforces per-tenant rate limits and
	// quotas (429 quota_exceeded — distinguishable on the wire from the
	// admission layer's 429 overloaded). Nil (or a registry without a
	// keys file) leaves auth off — today's anonymous behavior — while
	// still attributing dispatched work labelled with X-Dcs-Tenant to
	// its originating tenant.
	Tenants *tenant.Registry
	// Logger defaults to slog.Default().
	Logger *slog.Logger
}

// Stats are the server's monotonic request counters.
type Stats struct {
	Requests  int64 `json:"requests"`
	Coalesced int64 `json:"coalesced"`
	Errors    int64 `json:"errors"`
	// Deprecated counts requests to deprecated endpoints (today: the
	// /v1/sweep alias) — the migration-progress gauge for retiring them.
	Deprecated int64 `json:"deprecated"`
}

// JobStats is the compute-endpoint admission state: how many jobs are
// running now, the -max-inflight bound (0 = unlimited), how many requests
// have been shed with a 429 since boot, how many async jobs are waiting
// for a slot, how many shed-time requests instead joined an in-flight
// computation, and how many jobs have been cancelled.
type JobStats struct {
	InFlight    int64 `json:"in_flight"`
	MaxInflight int64 `json:"max_inflight"`
	Shed        int64 `json:"shed"`
	Queued      int64 `json:"queued"`
	Joined      int64 `json:"joined"`
	Cancelled   int64 `json:"cancelled"`
}

// Server is the dcserved HTTP service. Create with New, expose with
// Handler or Run, stop with Close.
type Server struct {
	opts    report.Options
	engine  *sweep.Engine
	store   *store.Store
	backend sweep.MemoBackend
	log     *slog.Logger
	mux     *http.ServeMux
	flight  *memo.Memo[string, []byte] // non-retaining: the engine memo below is the cache
	baseCtx context.Context
	cancel  context.CancelFunc
	started time.Time

	// Observability (see internal/obs): the trace ring /debug/traces
	// serves, and the latency histograms /metrics exports per endpoint
	// and per job kind.
	recorder *obs.Recorder
	reqHist  *obs.HistogramSet
	jobHist  *obs.HistogramSet

	requests   atomic.Int64
	coalesced  atomic.Int64
	errors     atomic.Int64
	deprecated atomic.Int64 // hits on deprecated endpoints (/v1/sweep)

	// Identity layer (see tenant.go in this package for the middleware).
	tenants *tenant.Registry

	// Compute-job admission control (see worker.go).
	jobSem       chan struct{} // nil = unlimited
	maxInflight  int
	jobsInFlight atomic.Int64
	shed         atomic.Int64
	queuedJobs   atomic.Int64 // async jobs waiting for a slot
	joined       atomic.Int64 // shed-time requests answered from an in-flight cell
	cancelled    atomic.Int64 // jobs cancelled via DELETE /v1/jobs/{id}

	// Async job lifecycle (see async.go) and the per-kind service-time
	// moving average feeding the adaptive Retry-After hint.
	registry *jobs.Registry
	svcMu    sync.Mutex
	svcSecs  map[string]float64
}

// New builds a Server with its own sweep engine (plus the configured memo
// backend) wired into every render.
func New(cfg Config) *Server {
	opts := cfg.Options
	if opts == (report.Options{}) {
		opts = report.DefaultOptions()
	}
	log := cfg.Logger
	if log == nil {
		log = slog.Default()
	}
	engine := sweep.NewEngine()
	backend := cfg.Backend
	if backend == nil && cfg.Store != nil {
		backend = cfg.Store.Backend(log)
	}
	if backend != nil {
		engine.SetMemoBackend(backend)
	}
	if cfg.TraceCacheBytes > 0 {
		engine.SetTraceCache(tracecache.New(cfg.TraceCacheBytes))
	}
	opts.Engine = engine
	// The cluster memo is the server's own (not the process-wide default),
	// so its persistent backend — and its restart semantics — match the
	// engine's.
	clusterBackend := cfg.Cluster
	if clusterBackend == nil && cfg.Store != nil {
		clusterBackend = cfg.Store.StatsBackend(log)
	}
	opts.Cluster = workloads.NewStatsCache(clusterBackend)
	tenants := cfg.Tenants
	if tenants == nil {
		tenants = tenant.NewRegistry(log)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:    opts,
		engine:  engine,
		store:   cfg.Store,
		backend: backend,
		log:     log,
		mux:     http.NewServeMux(),
		flight:  memo.NewFlight[string, []byte](),
		baseCtx: ctx,
		cancel:  cancel,
		started: time.Now(),
		tenants: tenants,

		recorder: obs.NewRecorder(0),
		reqHist:  obs.NewHistogramSet(nil),
		jobHist:  obs.NewHistogramSet(nil),

		registry: jobs.NewRegistry(0),
		svcSecs:  make(map[string]float64),
	}
	if cfg.MaxInflight > 0 {
		s.maxInflight = cfg.MaxInflight
		s.jobSem = make(chan struct{}, cfg.MaxInflight)
	}
	s.flight.OnJoin(func() { s.coalesced.Add(1) })
	s.flight.SetName("render")
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	s.mux.HandleFunc("GET /v1/workloads/{name}/counters", s.handleCounters)
	s.mux.HandleFunc("GET /v1/figures/{n}", s.handleFigure)
	s.mux.HandleFunc("GET /v1/tables/{n}", s.handleTable)
	s.mux.HandleFunc("POST /v1/jobs", s.handleJobs)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep) // deprecated alias: a counters job
	// Async job lifecycle (async.go): list, poll/stream, fetch result,
	// cancel. Job IDs double as trace IDs, so a job's timeline is at
	// /debug/traces under the same identifier.
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	// Store replication plane (replica.go in this package): push ingest,
	// digest export, record export. Authenticated like any /v1 route.
	s.registerReplicaRoutes()
	// The trace ring is also on the service port (not only -debug-addr):
	// correlating a front-end's trace with a worker's means asking every
	// node, and workers are addressed by their service port.
	s.mux.Handle("GET /debug/traces", obs.TracesHandler(s.recorder))
	return s
}

// Recorder exposes the server's trace ring — what a -debug-addr listener
// serves alongside pprof.
func (s *Server) Recorder() *obs.Recorder { return s.recorder }

// Close cancels the server's base context, aborting in-flight sweeps.
// Call it after (not instead of) http.Server.Shutdown: Shutdown drains
// politely, Close is the hard stop for whatever outlived the grace period.
func (s *Server) Close() { s.cancel() }

// Stats snapshots the request counters.
func (s *Server) Stats() Stats {
	return Stats{
		Requests:   s.requests.Load(),
		Coalesced:  s.coalesced.Load(),
		Errors:     s.errors.Load(),
		Deprecated: s.deprecated.Load(),
	}
}

// JobStats snapshots the compute-endpoint admission state.
func (s *Server) JobStats() JobStats {
	return JobStats{
		InFlight:    s.jobsInFlight.Load(),
		MaxInflight: int64(s.maxInflight),
		Shed:        s.shed.Load(),
		Queued:      s.queuedJobs.Load(),
		Joined:      s.joined.Load(),
		Cancelled:   s.cancelled.Load(),
	}
}

// Handler returns the service's root handler: the v1 mux wrapped in
// request logging, tracing, latency measurement and — when a keys file
// is loaded — tenant authentication and rate limiting. Every non-probe
// request gets a trace — adopted from the X-Dcs-Trace header when the
// caller sent a valid ID (a front-end dispatching a job), fresh
// otherwise — echoed in the response header, recorded into the ring on
// completion, and stamped as trace=<id> on the request log line.
// Probes (/healthz, /metrics, /debug/*) get neither traces nor
// histogram samples — a scrape every few seconds would wash both the
// ring and the latency distribution out with noise — and bypass auth,
// so load balancers and Prometheus need no credentials.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		probe := r.URL.Path == "/healthz" || r.URL.Path == "/metrics" ||
			strings.HasPrefix(r.URL.Path, "/debug/")
		var tr *obs.Trace
		var deny *apiError
		if !probe {
			tr = s.recorder.StartTrace(r.Method+" "+r.URL.Path, r.Header.Get(obs.TraceHeader))
			w.Header().Set(obs.TraceHeader, tr.ID())
			r = r.WithContext(obs.With(r.Context(), tr))
			// Identity before dispatch: the denial is traced and logged
			// like any response, but the mux never sees the request.
			var tn *tenant.Tenant
			tn, deny = s.admitTenant(rec, r)
			if tn != nil {
				r = r.WithContext(tenant.With(r.Context(), tn))
				tr.SetAttr("tenant", tn.ID())
			}
		}
		start := time.Now()
		if deny != nil {
			writeAPIError(rec, r, deny)
		} else {
			s.mux.ServeHTTP(rec, r)
		}
		dur := time.Since(start)
		if rec.status >= 500 {
			s.errors.Add(1)
		}
		if !probe {
			// Label by the mux pattern, not the raw path: every workload's
			// counters URL is one endpoint, not a cardinality explosion.
			_, pattern := s.mux.Handler(r)
			if pattern == "" {
				pattern = "unmatched"
			}
			s.reqHist.Observe(pattern, dur)
			tr.SetAttr("status", strconv.Itoa(rec.status))
			tr.Finish()
		}
		lvl := slog.LevelInfo
		if probe {
			lvl = slog.LevelDebug // probes and scrapes would drown real traffic
		}
		args := []any{
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"bytes", rec.bytes,
			"dur", dur.Round(time.Microsecond),
			"remote", r.RemoteAddr,
		}
		if id := tr.ID(); id != "" {
			args = append(args, "trace", id)
		}
		s.log.Log(r.Context(), lvl, "request", args...)
	})
}

// Run serves on addr until ctx is cancelled, then shuts down: new
// connections stop immediately, in-flight requests get grace to finish,
// and after that the base context is cancelled so remaining sweeps abort
// with 503s. Run returns once the listener is fully drained or torn down.
func (s *Server) Run(ctx context.Context, addr string, grace time.Duration) error {
	hs := &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	s.log.Info("dcserved listening", "addr", addr,
		"scale", s.opts.Scale, "seed", s.opts.Seed,
		"instrs", s.opts.Instrs, "warmup", s.opts.Warmup,
		"store", s.store != nil)
	select {
	case err := <-errc:
		return err // listener died before shutdown was asked for
	case <-ctx.Done():
	}
	s.log.Info("shutting down", "grace", grace)
	shctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	err := hs.Shutdown(shctx)
	s.Close() // hard-stop sweeps that outlived the grace period
	if errors.Is(err, context.DeadlineExceeded) {
		err = hs.Close()
	}
	return err
}

// statusRecorder captures what the handler wrote for the request log.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	n, err := r.ResponseWriter.Write(p)
	r.bytes += n
	return n, err
}

// Flush forwards to the underlying writer so SSE streams (GET
// /v1/jobs/{id} with Accept: text/event-stream) survive the logging
// wrapper.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// wantCSV is the content negotiation rule: ?format=csv|json wins, then an
// Accept header naming text/csv; JSON is the default.
func wantCSV(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "csv":
		return true
	case "json":
		return false
	}
	return strings.Contains(r.Header.Get("Accept"), "text/csv")
}

// etag derives the entity validator for an endpoint: every response is a
// pure function of the run parameters (seed, scale, instrs, warmup, config
// fingerprint — the warmup rides inside the fingerprint too) and the
// endpoint identity, so that tuple is the entity.
func (s *Server) etag(key string) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%g|%d|%d|%d|%s",
		s.opts.Seed, s.opts.Scale, s.opts.Instrs, s.opts.Warmup,
		s.opts.CoreConfig().Fingerprint(), key)
	return fmt.Sprintf(`"%016x"`, h.Sum64())
}

// serveBody runs render (coalesced per key), and writes it with cache
// validators. A request bearing a matching If-None-Match never renders.
// The validators go out only on 304 and 200 — a failed render must not
// hand a shared cache a storable error.
func (s *Server) serveBody(w http.ResponseWriter, r *http.Request, key, contentType string, render func(ctx context.Context) ([]byte, error)) {
	tag := s.etag(key)
	setValidators := func() {
		w.Header().Set("Cache-Control", "public, max-age=86400")
		w.Header().Set("Etag", tag)
		// One URL serves two representations (wantCSV honours Accept), so
		// a shared cache must key on the Accept header too.
		w.Header().Set("Vary", "Accept")
	}
	if match := r.Header.Get("If-None-Match"); match != "" && strings.Contains(match, tag) {
		setValidators()
		w.WriteHeader(http.StatusNotModified)
		return
	}
	body, err := s.flight.DoCtx(r.Context(), key, func(ctx context.Context) ([]byte, error) {
		// Base context, not r.Context(): a coalesced render must survive
		// the starting client's disconnect, and shutdown cancels it. The
		// executing request's trace rides along so the render's spans land
		// in the timeline of the request that paid for it.
		return render(obs.With(s.baseCtx, obs.From(ctx)))
	})
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			writeError(w, r, http.StatusServiceUnavailable, codeShuttingDown, "server shutting down")
			return
		}
		// The store/sweep internals behind a render are not the client's
		// business (and may name paths); the log keeps the detail, keyed
		// by the trace id the generic envelope hands the client.
		s.internalError(w, r, "render failed", err, "key", key)
		return
	}
	setValidators()
	w.Header().Set("Content-Type", contentType)
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.Write(body)
}

// serveTable negotiates a table's encoding and serves it.
func (s *Server) serveTable(w http.ResponseWriter, r *http.Request, key string, build func(ctx context.Context) (*report.Table, error)) {
	if wantCSV(r) {
		s.serveBody(w, r, key+"?csv", "text/csv; charset=utf-8", func(ctx context.Context) ([]byte, error) {
			t, err := build(ctx)
			if err != nil {
				return nil, err
			}
			return []byte(t.CSV()), nil
		})
		return
	}
	s.serveBody(w, r, key+"?json", "application/json", func(ctx context.Context) ([]byte, error) {
		t, err := build(ctx)
		if err != nil {
			return nil, err
		}
		return t.JSON()
	})
}

// backendStats resolves the store-level counters for /healthz and
// /metrics: the engine's memo backend when it reports them (the store's
// does, and wrappers may forward), else the configured store directly.
// The engine's trace-cache counters, when a cache is installed, ride in
// the same block — even on storeless servers, so a worker's replay
// savings are visible wherever it runs.
func (s *Server) backendStats() (sweep.BackendStats, bool) {
	var bs sweep.BackendStats
	ok := false
	if sr, isReporter := s.backend.(sweep.StatsReporter); isReporter {
		bs, ok = sr.BackendStats(), true
	} else if s.store != nil {
		bs, ok = s.store.BackendStats(), true
	}
	if ts, on := s.engine.TraceCacheStats(); on {
		bs.TraceCache = &ts
		ok = true
	}
	return bs, ok
}

// tenantReport is the /healthz "tenants" block: whether auth is on, and
// every tenant's limits + usage, sorted by id. Omitted entirely on a
// server that has never seen an identified request, so pre-multi-tenant
// healthz consumers see the same shape as before.
type tenantReport struct {
	Auth      bool              `json:"auth"`
	PerTenant []tenant.Snapshot `json:"per_tenant,omitempty"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	h := struct {
		Status        string  `json:"status"`
		UptimeSeconds float64 `json:"uptime_seconds"`
		// ConfigFP is the default machine's fingerprint at this server's
		// warmup — exactly what a counters job key's ConfigFP must be, so
		// a client can build valid keys from /healthz alone.
		ConfigFP string              `json:"config_fp"`
		Stats    Stats               `json:"stats"`
		Jobs     JobStats            `json:"jobs"`
		Tenants  *tenantReport       `json:"tenants,omitempty"`
		Store    *sweep.BackendStats `json:"store,omitempty"`
	}{Status: "ok", UptimeSeconds: time.Since(s.started).Seconds(),
		ConfigFP: fmt.Sprintf("%016x", s.opts.CoreConfig().Fingerprint()),
		Stats:    s.Stats(), Jobs: s.JobStats()}
	if snaps := s.tenants.Snapshots(); s.tenants.Enabled() || len(snaps) > 0 {
		h.Tenants = &tenantReport{Auth: s.tenants.Enabled(), PerTenant: snaps}
	}
	if bs, ok := s.backendStats(); ok {
		h.Store = &bs
	}
	writeJSON(w, h)
}

// workloadInfo is one row of the /v1/workloads listing. Cluster-capable
// workloads (the eleven Table I apps) carry their input size and Table II
// domains/scenarios.
type workloadInfo struct {
	Name      string   `json:"name"`
	Suite     string   `json:"suite"`
	Class     string   `json:"class"`
	InputGB   float64  `json:"input_gb,omitempty"`
	Domains   []string `json:"domains,omitempty"`
	Scenarios []string `json:"scenarios,omitempty"`
}

func workloadList() []workloadInfo {
	cluster := make(map[string]*workloads.Workload)
	for _, w := range workloads.All() {
		cluster[w.Name] = w
	}
	var out []workloadInfo
	for _, w := range core.Registry() {
		info := workloadInfo{Name: w.Name, Suite: w.Suite, Class: w.Class.String()}
		if cw, ok := cluster[w.Name]; ok {
			info.InputGB = cw.InputGB
			info.Domains = cw.Domains
			info.Scenarios = cw.Scenarios
		}
		out = append(out, info)
	}
	return out
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	if wantCSV(r) {
		s.serveBody(w, r, "workloads?csv", "text/csv; charset=utf-8", func(context.Context) ([]byte, error) {
			var b strings.Builder
			cw := csv.NewWriter(&b)
			cw.Write([]string{"workload", "suite", "class", "input_gb"})
			for _, info := range workloadList() {
				gb := ""
				if info.InputGB > 0 {
					gb = strconv.FormatFloat(info.InputGB, 'f', -1, 64)
				}
				cw.Write([]string{info.Name, info.Suite, info.Class, gb})
			}
			cw.Flush()
			return []byte(b.String()), cw.Error()
		})
		return
	}
	s.serveBody(w, r, "workloads?json", "application/json", func(context.Context) ([]byte, error) {
		data, err := json.MarshalIndent(struct {
			Workloads []workloadInfo `json:"workloads"`
		}{workloadList()}, "", "  ")
		if err != nil {
			return nil, err
		}
		return append(data, '\n'), nil
	})
}

func (s *Server) handleCounters(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	wl, err := core.ByName(name)
	if err != nil {
		writeError(w, r, http.StatusNotFound, codeNotFound, err.Error())
		return
	}
	key := "workloads/" + name + "/counters"
	build := func(ctx context.Context) (*core.Result, error) {
		jobs := []sweep.Job{{Name: wl.Name, Profile: wl.Profile, Gen: wl.Gen}}
		cs, err := s.engine.Run(ctx, jobs, s.opts.CoreConfig(),
			s.opts.Warmup+s.opts.Instrs, sweep.RunOptions{Workers: 1})
		if err != nil {
			return nil, err
		}
		return &core.Result{Workload: wl, Counters: cs[0]}, nil
	}
	if wantCSV(r) {
		s.serveBody(w, r, key+"?csv", "text/csv; charset=utf-8", func(ctx context.Context) ([]byte, error) {
			res, err := build(ctx)
			if err != nil {
				return nil, err
			}
			return []byte(metricsTable(res).CSV()), nil
		})
		return
	}
	s.serveBody(w, r, key+"?json", "application/json", func(ctx context.Context) ([]byte, error) {
		res, err := build(ctx)
		if err != nil {
			return nil, err
		}
		data, err := json.MarshalIndent(res.ToRecord(), "", "  ")
		if err != nil {
			return nil, err
		}
		return append(data, '\n'), nil
	})
}

// metricsTable flattens one result into a single-row table of the derived
// Figure 3-12 metrics — the CSV shape of the counters endpoint.
func metricsTable(res *core.Result) *report.Table {
	c := res.Counters
	return &report.Table{
		Title: res.Workload.Name + " derived metrics",
		Columns: []string{"ipc", "kernel_share", "l1i_mpki", "itlb_walks_pki",
			"l2_mpki", "l3_hit_ratio", "dtlb_walks_pki", "branch_misp_ratio"},
		Precision: 6,
		Rows: []report.Row{{Label: res.Workload.Name, Values: []float64{
			c.IPC(), c.KernelShare(), c.L1IMPKI(), c.ITLBWalksPKI(),
			c.L2MPKI(), c.L3HitRatio(), c.DTLBWalksPKI(), c.BranchMispredictRatio(),
		}}},
	}
}

func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	n, err := strconv.Atoi(r.PathValue("n"))
	if err != nil || n < 1 || n > 12 {
		writeError(w, r, http.StatusBadRequest, codeBadRequest, "figure number must be 1..12")
		return
	}
	s.serveTable(w, r, fmt.Sprintf("figures/%d", n), func(ctx context.Context) (*report.Table, error) {
		return report.FigureByNumber(ctx, s.opts, n)
	})
}

func (s *Server) handleTable(w http.ResponseWriter, r *http.Request) {
	n, err := strconv.Atoi(r.PathValue("n"))
	if err != nil || n < 1 || n > 3 {
		writeError(w, r, http.StatusBadRequest, codeBadRequest, "table number must be 1..3")
		return
	}
	if n == 1 {
		s.serveTable(w, r, "tables/1", func(ctx context.Context) (*report.Table, error) {
			t, _, err := report.TableByNumber(ctx, s.opts, 1)
			return t, err
		})
		return
	}
	// Tables II and III are prose: JSON wraps the text, CSV has no natural
	// shape and is refused rather than faked.
	if wantCSV(r) {
		writeError(w, r, http.StatusNotAcceptable, codeNotAcceptable,
			fmt.Sprintf("table %d is prose; request JSON or text", n))
		return
	}
	s.serveBody(w, r, fmt.Sprintf("tables/%d?json", n), "application/json", func(ctx context.Context) ([]byte, error) {
		_, text, err := report.TableByNumber(ctx, s.opts, n)
		if err != nil {
			return nil, err
		}
		data, err := json.MarshalIndent(struct {
			Title string `json:"title"`
			Text  string `json:"text"`
		}{strings.SplitN(text, "\n", 2)[0], text}, "", "  ")
		if err != nil {
			return nil, err
		}
		return append(data, '\n'), nil
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
