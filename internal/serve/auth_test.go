package serve_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"dcbench/internal/serve"
	"dcbench/internal/store"
	"dcbench/internal/tenant"
)

// writeKeysFile writes a tenant keys file and returns its path.
func writeKeysFile(t *testing.T, cfgs ...tenant.KeyConfig) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "keys.json")
	data, err := json.Marshal(struct {
		Keys []tenant.KeyConfig `json:"keys"`
	}{cfgs})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

// openRegistry loads a registry from the given key configs.
func openRegistry(t *testing.T, cfgs ...tenant.KeyConfig) *tenant.Registry {
	t.Helper()
	reg, err := tenant.Open(writeKeysFile(t, cfgs...), quietLog)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

// doJSON issues one request with arbitrary method, JSON body and headers.
func doJSON(t *testing.T, ts *httptest.Server, method, path string, body any, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	out := readAll(t, resp)
	return resp, out
}

// errEnvelope mirrors the v1 error body.
type errEnvelope struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
		TraceID string `json:"trace_id"`
	} `json:"error"`
}

// errCode decodes the envelope and returns its code, cross-checking the
// X-Dcs-Error-Code header agrees.
func errCode(t *testing.T, resp *http.Response, body []byte) string {
	t.Helper()
	var env errEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("unreadable error envelope %q: %v", body, err)
	}
	if h := resp.Header.Get("X-Dcs-Error-Code"); h != env.Error.Code {
		t.Fatalf("X-Dcs-Error-Code = %q, envelope code = %q", h, env.Error.Code)
	}
	return env.Error.Code
}

func bearer(key string) map[string]string {
	return map[string]string{"Authorization": "Bearer " + key}
}

// TestAuthRequired: with a keys file loaded, unkeyed and wrong-keyed
// requests answer 401 with the unauthorized envelope, both key-carrying
// headers work, and the probe endpoints stay open so load balancers and
// Prometheus need no credentials.
func TestAuthRequired(t *testing.T) {
	reg := openRegistry(t, tenant.KeyConfig{ID: "alice", Secret: "alice-key"})
	srv := serve.New(serve.Config{Options: testOptions(), Tenants: reg, Logger: quietLog})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, tc := range []struct {
		name string
		hdr  map[string]string
		want int
	}{
		{"no key", nil, http.StatusUnauthorized},
		{"wrong key", bearer("nope"), http.StatusUnauthorized},
		{"revoked-format scheme", map[string]string{"Authorization": "Basic alice-key"}, http.StatusUnauthorized},
		{"bearer", bearer("alice-key"), http.StatusOK},
		{"api key header", map[string]string{"X-Dcs-Api-Key": "alice-key"}, http.StatusOK},
	} {
		resp, body := get(t, ts, "/v1/workloads", tc.hdr)
		if resp.StatusCode != tc.want {
			t.Fatalf("%s: GET /v1/workloads = %d, want %d: %s", tc.name, resp.StatusCode, tc.want, body)
		}
		if tc.want == http.StatusUnauthorized {
			if code := errCode(t, resp, body); code != "unauthorized" {
				t.Fatalf("%s: error code = %q, want unauthorized", tc.name, code)
			}
		}
	}

	// The envelope names the request's trace.
	resp, body := get(t, ts, "/v1/workloads", nil)
	var env errEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.TraceID == "" || env.Error.TraceID != resp.Header.Get("X-Dcs-Trace") {
		t.Fatalf("envelope trace_id %q does not match X-Dcs-Trace %q",
			env.Error.TraceID, resp.Header.Get("X-Dcs-Trace"))
	}

	// A text/plain client gets the bare message, not JSON.
	resp, body = get(t, ts, "/v1/workloads", map[string]string{"Accept": "text/plain"})
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("text client got Content-Type %q", ct)
	}
	if strings.Contains(string(body), `"error"`) {
		t.Fatalf("text client got JSON: %s", body)
	}
	if resp.Header.Get("X-Dcs-Error-Code") != "unauthorized" {
		t.Fatal("text fallback lost the code header")
	}

	// Probes bypass auth entirely.
	for _, path := range []string{"/healthz", "/metrics"} {
		if resp, body := get(t, ts, path, nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("unkeyed probe %s = %d: %s", path, resp.StatusCode, body)
		}
	}

	// /healthz reports the auth state and per-tenant usage.
	_, hbody := get(t, ts, "/healthz", nil)
	var health struct {
		Tenants struct {
			Auth      bool              `json:"auth"`
			PerTenant []tenant.Snapshot `json:"per_tenant"`
		} `json:"tenants"`
	}
	if err := json.Unmarshal(hbody, &health); err != nil {
		t.Fatal(err)
	}
	if !health.Tenants.Auth || len(health.Tenants.PerTenant) != 1 || health.Tenants.PerTenant[0].ID != "alice" {
		t.Fatalf("healthz tenants = %s", hbody)
	}
	if health.Tenants.PerTenant[0].Usage.Requests < 2 {
		t.Fatalf("alice's admitted requests = %d, want >= 2", health.Tenants.PerTenant[0].Usage.Requests)
	}
}

// TestAuthOffUnchanged: without a keys file nothing requires a key and
// /healthz carries no tenant report — the pre-tenancy surface — while a
// forwarded X-Dcs-Tenant header is still attributed for accounting.
func TestAuthOffUnchanged(t *testing.T) {
	srv := serve.New(serve.Config{Options: testOptions(), Logger: quietLog})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if resp, body := get(t, ts, "/v1/workloads", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("anonymous GET = %d: %s", resp.StatusCode, body)
	}
	_, hbody := get(t, ts, "/healthz", nil)
	if strings.Contains(string(hbody), `"tenants"`) {
		t.Fatalf("auth-off healthz grew a tenants report: %s", hbody)
	}
	_, mbody := get(t, ts, "/metrics", nil)
	if strings.Contains(string(mbody), "dcserved_tenant_") {
		t.Fatal("auth-off metrics grew tenant families")
	}

	// Attribution without enforcement: the dispatch hop's header works
	// even with auth off, so a keyed front-end over unkeyed workers still
	// yields cluster-wide per-tenant accounting.
	if resp, _ := get(t, ts, "/v1/workloads", map[string]string{tenant.Header: "carol"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("attributed GET = %d", resp.StatusCode)
	}
	_, mbody = get(t, ts, "/metrics", nil)
	if !strings.Contains(string(mbody), `dcserved_tenant_requests_total{tenant="carol"} 1`) {
		t.Fatalf("metrics lack carol's attribution:\n%s", mbody)
	}
}

// TestTenantRateLimit: a tenant with a 1-request burst and a crawling
// refill gets exactly one request through; the second answers 429
// quota_exceeded with a Retry-After hint (a bucket refills on a known
// schedule), and the denial is visible per-tenant in /metrics.
func TestTenantRateLimit(t *testing.T) {
	reg := openRegistry(t, tenant.KeyConfig{
		ID: "bob", Secret: "bob-key",
		Limits: tenant.Limits{RatePerSec: 0.01, Burst: 1},
	})
	srv := serve.New(serve.Config{Options: testOptions(), Tenants: reg, Logger: quietLog})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if resp, body := get(t, ts, "/v1/workloads", bearer("bob-key")); resp.StatusCode != http.StatusOK {
		t.Fatalf("first request = %d: %s", resp.StatusCode, body)
	}
	resp, body := get(t, ts, "/v1/workloads", bearer("bob-key"))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request = %d, want 429", resp.StatusCode)
	}
	if code := errCode(t, resp, body); code != "quota_exceeded" {
		t.Fatalf("rate-limit code = %q, want quota_exceeded", code)
	}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want >= 1s", resp.Header.Get("Retry-After"))
	}
	_, mbody := get(t, ts, "/metrics", nil)
	if !strings.Contains(string(mbody), `dcserved_tenant_rate_limited_total{tenant="bob"} 1`) {
		t.Fatalf("metrics lack bob's rate-limit denial:\n%s", mbody)
	}
}

// Test429Disambiguation is the contract the two 429 codes exist for: a
// tenant hitting its own job quota reads quota_exceeded while a tenant
// refused by a saturated worker's admission control reads overloaded —
// same status, different reaction (give up vs retry elsewhere), finally
// distinguishable without parsing prose.
func Test429Disambiguation(t *testing.T) {
	reg := openRegistry(t,
		tenant.KeyConfig{ID: "alice", Secret: "alice-key"},
		tenant.KeyConfig{ID: "broke", Secret: "broke-key",
			Limits: tenant.Limits{MaxInstructions: 1}},
	)
	opts := testOptions()
	gate := make(chan struct{})
	backend := &countingBackend{inner: newMemoryBackend(), gate: gate}
	srv := serve.New(serve.Config{Options: opts, Backend: backend, MaxInflight: 1, Tenants: reg, Logger: quietLog})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer close(gate)
	fp := opts.CoreConfig().Fingerprint()

	// Alice's gated job saturates the single admission slot.
	slow, err := json.Marshal(jobRequest(t, store.KindCounters, testCounterKey(t, "Sort", opts.Warmup, opts.Instrs, fp), opts.Warmup))
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(slow))
		req.Header.Set("Authorization", "Bearer alice-key")
		resp, err := ts.Client().Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for srv.JobStats().InFlight != 1 {
		if time.Now().After(deadline) {
			t.Fatal("gated job never occupied the slot")
		}
		time.Sleep(time.Millisecond)
	}

	// Alice again, different key: the worker is full — overloaded.
	probe := jobRequest(t, store.KindCounters, testCounterKey(t, "Grep", opts.Warmup, opts.Instrs, fp), opts.Warmup)
	resp, body := doJSON(t, ts, http.MethodPost, "/v1/jobs", probe, bearer("alice-key"))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submit = %d, want 429: %s", resp.StatusCode, body)
	}
	if code := errCode(t, resp, body); code != "overloaded" {
		t.Fatalf("saturated-worker code = %q, want overloaded", code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("overloaded 429 lost its Retry-After hint")
	}

	// Broke's job quota is zero: refused for its budget, not the
	// worker's capacity — and before any admission decision.
	resp, body = doJSON(t, ts, http.MethodPost, "/v1/jobs", probe, bearer("broke-key"))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit = %d, want 429: %s", resp.StatusCode, body)
	}
	if code := errCode(t, resp, body); code != "quota_exceeded" {
		t.Fatalf("over-quota code = %q, want quota_exceeded", code)
	}
}

// TestCrossTenantJobIsolation: async jobs are scoped to the tenant that
// submitted them. Another tenant polling, fetching or cancelling the job
// gets the same 404 an unknown id gets — existence itself is private —
// and the job list only shows the caller's own jobs.
func TestCrossTenantJobIsolation(t *testing.T) {
	reg := openRegistry(t,
		tenant.KeyConfig{ID: "alice", Secret: "alice-key"},
		tenant.KeyConfig{ID: "bob", Secret: "bob-key"},
	)
	opts := testOptions()
	gate := make(chan struct{})
	backend := &countingBackend{inner: newMemoryBackend(), gate: gate}
	srv := serve.New(serve.Config{Options: opts, Backend: backend, Tenants: reg, Logger: quietLog})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer close(gate)
	key := testCounterKey(t, "Sort", opts.Warmup, opts.Instrs, opts.CoreConfig().Fingerprint())

	req := jobRequest(t, store.KindCounters, key, opts.Warmup)
	req.Async = true
	resp, body := doJSON(t, ts, http.MethodPost, "/v1/jobs", req, bearer("alice-key"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var snap struct {
		ID     string `json:"id"`
		Tenant string `json:"tenant"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Tenant != "alice" {
		t.Fatalf("job tenant = %q, want alice", snap.Tenant)
	}

	// Bob sees nothing: not by GET, not by DELETE, not in the list.
	for _, tc := range []struct{ method, path string }{
		{http.MethodGet, "/v1/jobs/" + snap.ID},
		{http.MethodGet, "/v1/jobs/" + snap.ID + "/result"},
		{http.MethodDelete, "/v1/jobs/" + snap.ID},
	} {
		resp, body := doJSON(t, ts, tc.method, tc.path, nil, bearer("bob-key"))
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("bob %s %s = %d, want 404: %s", tc.method, tc.path, resp.StatusCode, body)
		}
		if code := errCode(t, resp, body); code != "not_found" {
			t.Fatalf("bob's code = %q, want not_found (indistinguishable from unknown)", code)
		}
	}
	if _, lbody := get(t, ts, "/v1/jobs", bearer("bob-key")); strings.Contains(string(lbody), snap.ID) {
		t.Fatalf("bob's job list leaks alice's job: %s", lbody)
	}

	// Alice keeps full access.
	if resp, _ := get(t, ts, "/v1/jobs/"+snap.ID, bearer("alice-key")); resp.StatusCode != http.StatusOK {
		t.Fatalf("alice GET own job = %d", resp.StatusCode)
	}
	if _, lbody := get(t, ts, "/v1/jobs", bearer("alice-key")); !strings.Contains(string(lbody), snap.ID) {
		t.Fatalf("alice's job list lacks her job: %s", lbody)
	}
	if resp, _ := doJSON(t, ts, http.MethodDelete, "/v1/jobs/"+snap.ID, nil, bearer("alice-key")); resp.StatusCode != http.StatusOK {
		t.Fatalf("alice DELETE own job = %d", resp.StatusCode)
	}
}

// TestJobQuotaExhaustion: completed jobs charge the tenant's cumulative
// job quota — a budget of one counters job lets the first through
// (async, charged at completion, visible in /metrics) and refuses the
// second with quota_exceeded.
func TestJobQuotaExhaustion(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a single-workload sweep")
	}
	reg := openRegistry(t, tenant.KeyConfig{
		ID: "capped", Secret: "capped-key",
		Limits: tenant.Limits{MaxJobs: map[string]int64{store.KindCounters: 1}},
	})
	opts := testOptions()
	srv := serve.New(serve.Config{Options: opts, Tenants: reg, Logger: quietLog})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fp := opts.CoreConfig().Fingerprint()

	req := jobRequest(t, store.KindCounters, testCounterKey(t, "Sort", opts.Warmup, opts.Instrs, fp), opts.Warmup)
	req.Async = true
	resp, body := doJSON(t, ts, http.MethodPost, "/v1/jobs", req, bearer("capped-key"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first job = %d: %s", resp.StatusCode, body)
	}
	var snap struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, jbody := get(t, ts, "/v1/jobs/"+snap.ID, bearer("capped-key"))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll = %d: %s", resp.StatusCode, jbody)
		}
		if strings.Contains(string(jbody), `"state": "done"`) || strings.Contains(string(jbody), `"state":"done"`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished: %s", jbody)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The completed async job spent the whole budget.
	second := jobRequest(t, store.KindCounters, testCounterKey(t, "Grep", opts.Warmup, opts.Instrs, fp), opts.Warmup)
	resp, body = doJSON(t, ts, http.MethodPost, "/v1/jobs", second, bearer("capped-key"))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota job = %d, want 429: %s", resp.StatusCode, body)
	}
	if code := errCode(t, resp, body); code != "quota_exceeded" {
		t.Fatalf("code = %q, want quota_exceeded", code)
	}
	_, mbody := get(t, ts, "/metrics", nil)
	for _, want := range []string{
		`dcserved_tenant_jobs_total{tenant="capped",kind="counters"} 1`,
		`dcserved_tenant_instructions_total{tenant="capped"} ` + strconv.FormatInt(opts.Warmup+opts.Instrs, 10),
	} {
		if !strings.Contains(string(mbody), want) {
			t.Fatalf("metrics lack %q:\n%s", want, mbody)
		}
	}
}

// TestSweepDeprecationHeaders: the /v1/sweep alias advertises its
// retirement on every response and counts its callers, so an operator
// can find fleets still speaking it before the sunset.
func TestSweepDeprecationHeaders(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a single-workload sweep")
	}
	opts := testOptions()
	srv := serve.New(serve.Config{Options: opts, Logger: quietLog})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	key := testCounterKey(t, "Sort", opts.Warmup, opts.Instrs, opts.CoreConfig().Fingerprint())

	resp, body := postJSON(t, ts, "/v1/sweep", serve.SweepRequest{Key: key, Warmup: opts.Warmup})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep = %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Deprecation") != "true" {
		t.Fatal("sweep response lacks the Deprecation header")
	}
	if sun := resp.Header.Get("Sunset"); !strings.Contains(sun, "2027") {
		t.Fatalf("Sunset = %q", sun)
	}
	if _, _, err := store.DecodeCounters(body); err != nil {
		t.Fatalf("deprecated alias broke the record contract: %v", err)
	}
	_, mbody := get(t, ts, "/metrics", nil)
	if !strings.Contains(string(mbody), "dcserved_deprecated_requests_total 1") {
		t.Fatalf("metrics lack the deprecated-requests counter:\n%s", mbody)
	}
}
