package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"dcbench/internal/core"
	"dcbench/internal/replica"
	"dcbench/internal/serve"
	"dcbench/internal/store"
	"dcbench/internal/sweep"
	"dcbench/internal/tenant"
	"dcbench/internal/uarch"
)

// storeWithOneRecord opens a store in a temp dir and puts one record,
// returning the store and the record's bytes + address.
func storeWithOneRecord(t *testing.T) (*store.Store, string, []byte) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	opts := testOptions()
	wl, err := core.ByName("Sort")
	if err != nil {
		t.Fatal(err)
	}
	k := sweep.Key{Name: wl.Name, Profile: wl.Profile,
		ConfigFP: opts.CoreConfig().Fingerprint(), MaxInstrs: opts.Warmup + opts.Instrs}
	if err := st.Put(k, &uarch.Counters{Cycles: 42, Instructions: 1000}); err != nil {
		t.Fatal(err)
	}
	var addr string
	for i := 0; i < st.ShardCount(); i++ {
		addrs, err := st.ShardAddrs(i)
		if err != nil {
			t.Fatal(err)
		}
		if len(addrs) > 0 {
			addr = addrs[0]
		}
	}
	data, ok, err := st.GetRecord(addr)
	if err != nil || !ok {
		t.Fatalf("GetRecord: ok=%v err=%v", ok, err)
	}
	return st, addr, data
}

// TestReplicaEndpoints drives the full peer protocol over HTTP: digest,
// per-shard address list, record export, and push ingest with its
// idempotency and verification rules.
func TestReplicaEndpoints(t *testing.T) {
	st, addr, data := storeWithOneRecord(t)
	srv := serve.New(serve.Config{Options: testOptions(), Store: st, Logger: quietLog})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Digest: one record's worth of shards, totals matching the store.
	resp, body := get(t, ts, "/v1/replica/digest", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("digest status = %d: %s", resp.StatusCode, body)
	}
	var dr replica.DigestResponse
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.Records != 1 || dr.Bytes != st.Bytes() || len(dr.Shards) != st.ShardCount() {
		t.Fatalf("digest = %+v, want 1 record / %d bytes / %d shards", dr, st.Bytes(), st.ShardCount())
	}

	// The populated shard's address list names the record.
	var shard int
	for _, d := range dr.Shards {
		if d.Count > 0 {
			shard = d.Shard
		}
	}
	resp, body = get(t, ts, "/v1/replica/digest?shard="+itoa(shard), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("addrs status = %d: %s", resp.StatusCode, body)
	}
	var ar replica.AddrsResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if len(ar.Addrs) != 1 || ar.Addrs[0] != addr {
		t.Fatalf("addrs = %+v, want [%s]", ar, addr)
	}
	if resp, _ := get(t, ts, "/v1/replica/digest?shard=banana", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad shard query status = %d, want 400", resp.StatusCode)
	}
	if resp, _ := get(t, ts, "/v1/replica/digest?shard=9999", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range shard status = %d, want 400", resp.StatusCode)
	}

	// Record export serves the persisted bytes verbatim.
	resp, body = get(t, ts, "/v1/replica/records/"+addr, nil)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body, data) {
		t.Fatalf("record export status = %d, bytes equal = %v", resp.StatusCode, bytes.Equal(body, data))
	}
	if resp, _ := get(t, ts, "/v1/replica/records/0000000000000000", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("absent record status = %d, want 404", resp.StatusCode)
	}

	// Push ingest into a second, empty node: 204, idempotent 204 again,
	// and garbage is a 400 that stores nothing.
	st2, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	srv2 := serve.New(serve.Config{Options: testOptions(), Store: st2, Logger: quietLog})
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	resp, _ = postJSON(t, ts2, "/v1/replica/records", data)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("push status = %d, want 204", resp.StatusCode)
	}
	if st2.Len() != 1 {
		t.Fatalf("push landed %d records, want 1", st2.Len())
	}
	got, ok, err := st2.GetRecord(addr)
	if err != nil || !ok || !bytes.Equal(got, data) {
		t.Fatal("pushed record is not byte-identical on the receiver")
	}
	resp, _ = postJSON(t, ts2, "/v1/replica/records", data)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("repeated push status = %d, want 204 (idempotent)", resp.StatusCode)
	}
	if st2.Stats().Adopted != 1 {
		t.Fatalf("adopted = %d after duplicate push, want 1", st2.Stats().Adopted)
	}
	resp, _ = postJSON(t, ts2, "/v1/replica/records", []byte(`{"schema":2,"kind":"counters"`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage push status = %d, want 400", resp.StatusCode)
	}
	if st2.Len() != 1 {
		t.Fatal("garbage push changed the store")
	}
}

// TestReplicaEndpointsStoreless pins the storeless answer: a node with no
// -store has nothing to replicate and says so with 404s, which a peer's
// anti-entropy treats as an empty peer.
func TestReplicaEndpointsStoreless(t *testing.T) {
	srv := serve.New(serve.Config{Options: testOptions(), Logger: quietLog})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, path := range []string{"/v1/replica/digest", "/v1/replica/records/0123456789abcdef"} {
		if resp, _ := get(t, ts, path, nil); resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s status = %d, want 404", path, resp.StatusCode)
		}
	}
	if resp, _ := postJSON(t, ts, "/v1/replica/records", []byte(`{}`)); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("storeless push status = %d, want 404", resp.StatusCode)
	}
}

// TestReplicaEndpointsAuthenticated pins the auth contract: with a keys
// file loaded, the replica plane requires the same service key dispatch
// presents — an unkeyed peer gets 401, a keyed one works.
func TestReplicaEndpointsAuthenticated(t *testing.T) {
	st, addr, data := storeWithOneRecord(t)
	reg := openRegistry(t, tenant.KeyConfig{ID: "svc", Secret: "dck_service"})
	srv := serve.New(serve.Config{Options: testOptions(), Store: st, Tenants: reg, Logger: quietLog})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := get(t, ts, "/v1/replica/digest", nil)
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unkeyed digest status = %d, want 401", resp.StatusCode)
	}
	var env errEnvelope
	if err := json.Unmarshal(body, &env); err != nil || env.Error.Code != "unauthorized" {
		t.Fatalf("unkeyed digest error = %s (err %v), want unauthorized envelope", body, err)
	}
	auth := map[string]string{"Authorization": "Bearer dck_service"}
	if resp, _ := get(t, ts, "/v1/replica/digest", auth); resp.StatusCode != http.StatusOK {
		t.Fatalf("keyed digest status = %d, want 200", resp.StatusCode)
	}

	// The replicator's own client presents the key the same way: an empty
	// peer pointed at the keyed node pulls the record via anti-entropy.
	st2, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	r, err := replica.New(replica.Options{
		Peers: []string{ts.Listener.Addr().String()}, Interval: -1, APIKey: "dck_service",
	}, st2, quietLog)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.RunAntiEntropy(context.Background())
	if st2.Len() != 1 {
		t.Fatalf("keyed anti-entropy pulled %d records, want 1", st2.Len())
	}
	if got, ok, _ := st2.GetRecord(addr); !ok || !bytes.Equal(got, data) {
		t.Fatal("pulled record is not byte-identical through the authenticated plane")
	}
}

// itoa avoids importing strconv for one call site.
func itoa(n int) string {
	b, _ := json.Marshal(n)
	return string(b)
}
