package serve_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"dcbench/internal/core"
	"dcbench/internal/jobs"
	"dcbench/internal/serve"
	"dcbench/internal/store"
	"dcbench/internal/sweep"
)

// del issues one DELETE and returns the response.
func del(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	return resp, body
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return buf.Bytes()
}

// testCounterKey builds a valid counters key for the named workload.
func testCounterKey(t *testing.T, name string, warmup, instrs int64, fp uint64) sweep.Key {
	t.Helper()
	wl, err := core.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return sweep.Key{Name: wl.Name, Profile: wl.Profile, ConfigFP: fp, MaxInstrs: warmup + instrs}
}

// pollJob polls GET /v1/jobs/{id} until the job reaches a terminal state,
// returning the final snapshot.
func pollJob(t *testing.T, ts *httptest.Server, id string) jobs.Snapshot {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, body := get(t, ts, "/v1/jobs/"+id, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET job = %d: %s", resp.StatusCode, body)
		}
		var snap jobs.Snapshot
		if err := json.Unmarshal(body, &snap); err != nil {
			t.Fatalf("unreadable snapshot %q: %v", body, err)
		}
		if snap.State.Terminal() {
			return snap
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %q", id, snap.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestAsyncJobLifecycle: an async submission answers 202 with a job id
// immediately, the job walks through ≥3 observable states to done, and its
// result record is byte-identical to the blocking endpoint's answer for
// the same key — the async path changes delivery, not content.
func TestAsyncJobLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a single-workload sweep")
	}
	opts := testOptions()
	srv := serve.New(serve.Config{Options: opts, Logger: quietLog})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	key := testCounterKey(t, "Sort", opts.Warmup, opts.Instrs, opts.CoreConfig().Fingerprint())

	resp, body := postJSON(t, ts, "/v1/jobs?wait=false", jobRequest(t, store.KindCounters, key, opts.Warmup))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit = %d, want 202: %s", resp.StatusCode, body)
	}
	var snap jobs.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("unreadable 202 body %q: %v", body, err)
	}
	if snap.ID == "" || snap.Kind != store.KindCounters {
		t.Fatalf("202 snapshot = %+v, want an id and the counters kind", snap)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+snap.ID {
		t.Fatalf("Location = %q, want /v1/jobs/%s", loc, snap.ID)
	}

	final := pollJob(t, ts, snap.ID)
	if final.State != jobs.StateDone {
		t.Fatalf("job finished %q (error %q), want done", final.State, final.Error)
	}
	distinct := map[jobs.State]bool{}
	for _, tr := range final.History {
		distinct[tr.State] = true
	}
	if len(distinct) < 3 {
		t.Fatalf("history %+v shows %d distinct states, want >= 3", final.History, len(distinct))
	}

	// The result endpoint serves the record; a blocking request for the
	// same key answers the same bytes (it rides the memo).
	rresp, record := get(t, ts, "/v1/jobs/"+snap.ID+"/result", nil)
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("result = %d: %s", rresp.StatusCode, record)
	}
	if _, _, err := store.DecodeCounters(record); err != nil {
		t.Fatalf("result record does not verify: %v", err)
	}
	bresp, blocking := postJSON(t, ts, "/v1/jobs", jobRequest(t, store.KindCounters, key, opts.Warmup))
	if bresp.StatusCode != http.StatusOK {
		t.Fatalf("blocking request = %d", bresp.StatusCode)
	}
	if !bytes.Equal(record, blocking) {
		t.Fatal("async result bytes differ from the blocking endpoint's")
	}

	// The job is listed.
	_, lbody := get(t, ts, "/v1/jobs", nil)
	if !strings.Contains(string(lbody), snap.ID) {
		t.Fatalf("job list %s lacks job %s", lbody, snap.ID)
	}
}

// TestAsyncCancelFreesSlotAndStoresNothing: DELETE on a running job latches
// cancelled, releases the admission slot while the simulation is still
// parked, and no partial record reaches the store.
func TestAsyncCancelFreesSlotAndStoresNothing(t *testing.T) {
	opts := testOptions()
	gate := make(chan struct{})
	backend := &countingBackend{inner: newMemoryBackend(), gate: gate}
	srv := serve.New(serve.Config{Options: opts, Backend: backend, MaxInflight: 1, Logger: quietLog})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer close(gate) // let the parked Load goroutine exit after the test
	key := testCounterKey(t, "Sort", opts.Warmup, opts.Instrs, opts.CoreConfig().Fingerprint())

	req := jobRequest(t, store.KindCounters, key, opts.Warmup)
	req.Async = true // the body spelling of ?wait=false
	resp, body := postJSON(t, ts, "/v1/jobs", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit = %d: %s", resp.StatusCode, body)
	}
	var snap jobs.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}

	// The job takes the only slot and parks on the gated backend.
	deadline := time.Now().Add(10 * time.Second)
	for srv.JobStats().InFlight != 1 {
		if time.Now().After(deadline) {
			t.Fatal("async job never occupied the slot")
		}
		time.Sleep(time.Millisecond)
	}

	dresp, dbody := del(t, ts, "/v1/jobs/"+snap.ID)
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE = %d: %s", dresp.StatusCode, dbody)
	}
	var after jobs.Snapshot
	if err := json.Unmarshal(dbody, &after); err != nil {
		t.Fatal(err)
	}
	if after.State != jobs.StateCancelled {
		t.Fatalf("post-DELETE state = %q, want cancelled", after.State)
	}

	// The slot frees with the gate still closed: cancellation, not
	// completion, released it.
	for srv.JobStats().InFlight != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("slot still held after cancel: %+v", srv.JobStats())
		}
		time.Sleep(time.Millisecond)
	}
	if js := srv.JobStats(); js.Cancelled != 1 {
		t.Fatalf("JobStats.Cancelled = %d, want 1", js.Cancelled)
	}
	if _, sims := backend.counts(); sims != 0 {
		t.Fatalf("cancelled job stored %d records, want 0", sims)
	}
	if rresp, _ := get(t, ts, "/v1/jobs/"+snap.ID+"/result", nil); rresp.StatusCode != http.StatusGone {
		t.Fatalf("result of cancelled job = %d, want 410", rresp.StatusCode)
	}

	// A second DELETE reports the already-terminal state without
	// double-counting.
	del(t, ts, "/v1/jobs/"+snap.ID)
	if js := srv.JobStats(); js.Cancelled != 1 {
		t.Fatalf("repeat DELETE double-counted: Cancelled = %d", js.Cancelled)
	}
}

// TestShedOrJoin: a saturated worker answers a request for the key it is
// already computing by joining the in-flight simulation — one simulation,
// two identical records, no 429.
func TestShedOrJoin(t *testing.T) {
	opts := testOptions()
	gate := make(chan struct{})
	backend := &countingBackend{inner: newMemoryBackend(), gate: gate}
	srv := serve.New(serve.Config{Options: opts, Backend: backend, MaxInflight: 1, Logger: quietLog})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	key := testCounterKey(t, "Sort", opts.Warmup, opts.Instrs, opts.CoreConfig().Fingerprint())
	body, err := json.Marshal(jobRequest(t, store.KindCounters, key, opts.Warmup))
	if err != nil {
		t.Fatal(err)
	}

	// Two concurrent same-key requests against one slot: the first holds
	// the slot parked on the gate, the second has no slot and joins.
	results := make(chan []byte, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				results <- nil
				return
			}
			data := readAll(t, resp)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("same-key request under saturation = %d (%s), want 200 via join", resp.StatusCode, data)
				results <- nil
				return
			}
			results <- data
		}()
		if i == 0 {
			deadline := time.Now().Add(10 * time.Second)
			for srv.JobStats().InFlight != 1 {
				if time.Now().After(deadline) {
					t.Fatal("first request never occupied the slot")
				}
				time.Sleep(time.Millisecond)
			}
		}
	}
	// Let the second request reach the join, then run the simulation.
	time.Sleep(20 * time.Millisecond)
	close(gate)
	a, b := <-results, <-results
	if a == nil || b == nil {
		t.Fatal("a request failed")
	}
	if !bytes.Equal(a, b) {
		t.Fatal("joined request returned different bytes than the simulating one")
	}
	if _, sims := backend.counts(); sims != 1 {
		t.Fatalf("backend stored %d simulations, want exactly 1 (zero duplicates)", sims)
	}
	js := srv.JobStats()
	if js.Joined < 1 {
		t.Fatalf("JobStats.Joined = %d, want >= 1", js.Joined)
	}
	if js.Shed != 0 {
		t.Fatalf("JobStats.Shed = %d, want 0 — the same-key request must join, not shed", js.Shed)
	}
}

// TestAdaptiveRetryAfter: the shed hint grows with queue depth and the
// per-kind service-time estimate instead of always answering 1s, and stays
// clamped to the dispatch layer's 1s..1m window.
func TestAdaptiveRetryAfter(t *testing.T) {
	opts := testOptions()
	gate := make(chan struct{})
	backend := &countingBackend{inner: newMemoryBackend(), gate: gate}
	srv := serve.New(serve.Config{Options: opts, Backend: backend, MaxInflight: 1, Logger: quietLog})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer close(gate)
	fp := opts.CoreConfig().Fingerprint()
	slow := testCounterKey(t, "Sort", opts.Warmup, opts.Instrs, fp)
	probe := testCounterKey(t, "Grep", opts.Warmup, opts.Instrs, fp)

	// Saturate: one gated blocking job holds the only slot.
	slowBody, err := json.Marshal(jobRequest(t, store.KindCounters, slow, opts.Warmup))
	if err != nil {
		t.Fatal(err)
	}
	go ts.Client().Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(slowBody))
	deadline := time.Now().Add(10 * time.Second)
	for srv.JobStats().InFlight != 1 {
		if time.Now().After(deadline) {
			t.Fatal("gated job never occupied the slot")
		}
		time.Sleep(time.Millisecond)
	}

	retryAfter := func() int {
		resp, _ := postJSON(t, ts, "/v1/jobs", jobRequest(t, store.KindCounters, probe, opts.Warmup))
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("probe = %d, want 429", resp.StatusCode)
		}
		secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
		if err != nil {
			t.Fatalf("unreadable Retry-After %q", resp.Header.Get("Retry-After"))
		}
		return secs
	}

	// No service history, depth 1: the old fixed hint.
	if got := retryAfter(); got != 1 {
		t.Fatalf("baseline hint = %d, want 1", got)
	}

	// Queue two async jobs behind the slot: depth 3 at a 1s default
	// estimate → a 3s hint. The hint grew with real saturation.
	for i := 0; i < 2; i++ {
		k := testCounterKey(t, "PageRank", opts.Warmup, opts.Instrs+int64(i+1), fp)
		req := jobRequest(t, store.KindCounters, k, opts.Warmup)
		req.Async = true
		if resp, body := postJSON(t, ts, "/v1/jobs", req); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("async submit %d = %d: %s", i, resp.StatusCode, body)
		}
	}
	for srv.JobStats().Queued != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never built: %+v", srv.JobStats())
		}
		time.Sleep(time.Millisecond)
	}
	if got := retryAfter(); got != 3 {
		t.Fatalf("hint at depth 3 = %d, want 3", got)
	}

	// A slower measured service time scales it further; the clamp caps it.
	srv.SetServiceTimeForTest(store.KindCounters, 10)
	if got := retryAfter(); got != 30 {
		t.Fatalf("hint at depth 3 x 10s = %d, want 30", got)
	}
	srv.SetServiceTimeForTest(store.KindCounters, 1000)
	if got := retryAfter(); got != 60 {
		t.Fatalf("clamped hint = %d, want 60", got)
	}
}

// TestJobEventStream: GET /v1/jobs/{id} with Accept: text/event-stream
// replays the job's transitions as SSE and closes after the terminal one.
func TestJobEventStream(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a single-workload sweep")
	}
	opts := testOptions()
	srv := serve.New(serve.Config{Options: opts, Logger: quietLog})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	key := testCounterKey(t, "Sort", opts.Warmup, opts.Instrs, opts.CoreConfig().Fingerprint())

	resp, body := postJSON(t, ts, "/v1/jobs?wait=false", jobRequest(t, store.KindCounters, key, opts.Warmup))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	var snap jobs.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}

	// The stream closes itself at the terminal transition, so a plain read
	// to EOF terminates.
	sresp, stream := get(t, ts, "/v1/jobs/"+snap.ID, map[string]string{"Accept": "text/event-stream"})
	if ct := sresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	events := 0
	var states []jobs.State
	for _, line := range strings.Split(string(stream), "\n") {
		if strings.HasPrefix(line, "event: state") {
			events++
		}
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			var tr jobs.Transition
			if err := json.Unmarshal([]byte(data), &tr); err != nil {
				t.Fatalf("unreadable SSE data %q: %v", data, err)
			}
			states = append(states, tr.State)
		}
	}
	if events < 3 || len(states) != events {
		t.Fatalf("stream delivered %d events / %d states:\n%s", events, len(states), stream)
	}
	if states[0] != jobs.StateQueued {
		t.Fatalf("first streamed state = %q, want queued", states[0])
	}
	if last := states[len(states)-1]; !last.Terminal() {
		t.Fatalf("stream ended on non-terminal state %q", last)
	}
}
