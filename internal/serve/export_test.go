package serve

// SetServiceTimeForTest seeds the per-kind service-time estimate feeding
// the adaptive Retry-After hint, so tests can exercise the hint's scaling
// without running multi-second jobs.
func (s *Server) SetServiceTimeForTest(kind string, secs float64) {
	s.svcMu.Lock()
	s.svcSecs[kind] = secs
	s.svcMu.Unlock()
}
