package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"dcbench/internal/core"
	"dcbench/internal/serve"
	"dcbench/internal/store"
	"dcbench/internal/sweep"
	"dcbench/internal/workloads"
)

// postJSON sends one POST and returns the response.
func postJSON(t *testing.T, ts *httptest.Server, path string, body any) (*http.Response, []byte) {
	t.Helper()
	var data []byte
	switch b := body.(type) {
	case []byte:
		data = b
	default:
		var err error
		data, err = json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// jobRequest builds a kind-tagged /v1/jobs body.
func jobRequest(t *testing.T, kind string, key any, warmup int64) serve.JobRequest {
	t.Helper()
	raw, err := json.Marshal(key)
	if err != nil {
		t.Fatal(err)
	}
	return serve.JobRequest{Kind: kind, Key: raw, Warmup: warmup}
}

// TestJobsCountersEndpoint: the unified compute endpoint runs a counters
// job and answers with a verifiable record holding exactly the counters a
// local engine produces for it — the bit-parity the dispatch layer's
// byte-identical responses are built on.
func TestJobsCountersEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a single-workload sweep")
	}
	opts := testOptions()
	srv := serve.New(serve.Config{Options: opts, Logger: quietLog})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	wl, err := core.ByName("Sort")
	if err != nil {
		t.Fatal(err)
	}
	cfg := opts.CoreConfig()
	key := sweep.Key{
		Name:      wl.Name,
		Profile:   wl.Profile,
		ConfigFP:  cfg.Fingerprint(),
		MaxInstrs: opts.Warmup + opts.Instrs,
	}
	resp, body := postJSON(t, ts, "/v1/jobs", jobRequest(t, store.KindCounters, key, opts.Warmup))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("jobs status = %d: %s", resp.StatusCode, body)
	}
	gotKey, gotC, err := store.DecodeCounters(body)
	if err != nil {
		t.Fatalf("response does not verify: %v", err)
	}
	if gotKey != key {
		t.Fatalf("response key = %+v, want the requested key", gotKey)
	}

	// Local oracle: the same job on a fresh engine.
	jobs := []sweep.Job{{Name: wl.Name, Profile: wl.Profile, Gen: wl.Gen}}
	want, err := sweep.NewEngine().Run(context.Background(), jobs, cfg, key.MaxInstrs, sweep.RunOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotC, want[0]) {
		t.Fatal("worker counters diverge from a local simulation of the same key")
	}

	// A second request for the same key rides the worker's memo: same bytes.
	_, body2 := postJSON(t, ts, "/v1/jobs", jobRequest(t, store.KindCounters, key, opts.Warmup))
	if !bytes.Equal(body, body2) {
		t.Fatal("repeated counters job returned different bytes")
	}
}

// TestJobsClusterEndpoint: a cluster job runs one Figure 2/5 cell and
// answers with a verifiable cluster record matching a local simulation of
// the same key, memoized across requests.
func TestJobsClusterEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a cluster experiment")
	}
	opts := testOptions()
	srv := serve.New(serve.Config{Options: opts, Logger: quietLog})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	key := workloads.StatsKey{Workload: "Sort", Slaves: 4, Scale: opts.Scale, Seed: opts.Seed}
	resp, body := postJSON(t, ts, "/v1/jobs", jobRequest(t, store.KindCluster, key, 0))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster job status = %d: %s", resp.StatusCode, body)
	}
	gotKey, gotSt, err := store.DecodeStats(body)
	if err != nil {
		t.Fatalf("response does not verify: %v", err)
	}
	if gotKey != key {
		t.Fatalf("response key = %+v, want %+v", gotKey, key)
	}

	// Local oracle: the same cell simulated directly.
	w := workloads.ByName(key.Workload)
	want, err := w.Run(workloads.NewEnv(key.Slaves, key.Scale, key.Seed))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotSt, want) {
		t.Fatalf("worker cluster stats diverge from a local run\ngot:  %+v\nwant: %+v", gotSt, want)
	}

	// Memoized: the repeat answers identical bytes.
	_, body2 := postJSON(t, ts, "/v1/jobs", jobRequest(t, store.KindCluster, key, 0))
	if !bytes.Equal(body, body2) {
		t.Fatal("repeated cluster job returned different bytes")
	}
}

// TestSweepAliasByteCompatible pins the deprecated /v1/sweep alias to the
// PR 4 contract: the old request shape (raw JSON, exactly as an old
// front-end serialises it) still works, and its response is byte-identical
// to the same key submitted as a kind-tagged counters job — so old and new
// nodes interoperate during a rollout.
func TestSweepAliasByteCompatible(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a single-workload sweep")
	}
	opts := testOptions()
	srv := serve.New(serve.Config{Options: opts, Logger: quietLog})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	wl, err := core.ByName("Grep")
	if err != nil {
		t.Fatal(err)
	}
	key := sweep.Key{
		Name:      wl.Name,
		Profile:   wl.Profile,
		ConfigFP:  opts.CoreConfig().Fingerprint(),
		MaxInstrs: opts.Warmup + opts.Instrs,
	}

	// The PR 4 wire shape, built exactly as the old dispatch layer did:
	// json.Marshal of an anonymous {Key, Warmup} struct.
	oldBody, err := json.Marshal(struct {
		Key    sweep.Key `json:"key"`
		Warmup int64     `json:"warmup"`
	}{key, opts.Warmup})
	if err != nil {
		t.Fatal(err)
	}
	aliasResp, aliasBytes := postJSON(t, ts, "/v1/sweep", oldBody)
	if aliasResp.StatusCode != http.StatusOK {
		t.Fatalf("alias status = %d: %s", aliasResp.StatusCode, aliasBytes)
	}
	jobsResp, jobsBytes := postJSON(t, ts, "/v1/jobs", jobRequest(t, store.KindCounters, key, opts.Warmup))
	if jobsResp.StatusCode != http.StatusOK {
		t.Fatalf("jobs status = %d: %s", jobsResp.StatusCode, jobsBytes)
	}
	if !bytes.Equal(aliasBytes, jobsBytes) {
		t.Fatal("/v1/sweep alias bytes diverge from the equivalent /v1/jobs counters job")
	}
	if _, _, err := store.DecodeCounters(aliasBytes); err != nil {
		t.Fatalf("alias response does not verify with the store codec: %v", err)
	}
}

// TestJobsRejections pins the endpoint's refusals: unknown kinds, unknown
// workloads, a config fingerprint the worker cannot rebuild, absurd
// cluster keys and garbage bodies must all fail loudly — never simulate
// the wrong thing.
func TestJobsRejections(t *testing.T) {
	opts := testOptions()
	srv := serve.New(serve.Config{Options: opts, Logger: quietLog})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cfg := opts.CoreConfig()
	wl, err := core.ByName("Sort")
	if err != nil {
		t.Fatal(err)
	}

	resp, _ := postJSON(t, ts, "/v1/jobs", jobRequest(t, "warp-drive", struct{}{}, 0))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown kind status = %d, want 400", resp.StatusCode)
	}

	resp, _ = postJSON(t, ts, "/v1/jobs",
		jobRequest(t, store.KindCounters, sweep.Key{Name: "NoSuchWorkload", ConfigFP: cfg.Fingerprint()}, opts.Warmup))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown workload status = %d, want 404", resp.StatusCode)
	}

	resp, _ = postJSON(t, ts, "/v1/jobs",
		jobRequest(t, store.KindCounters,
			sweep.Key{Name: wl.Name, Profile: wl.Profile, ConfigFP: 0xdead, MaxInstrs: opts.Warmup + opts.Instrs},
			opts.Warmup))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("fingerprint mismatch status = %d, want 409", resp.StatusCode)
	}

	// An absurd trace length must be refused, not simulated for hours
	// while it pins an admission slot — whether it rides MaxInstrs or the
	// profile's own cap. (Zero-everywhere keys stay legal: the tracer
	// defaults them to a bounded 2M-instruction trace.)
	absurdProfile := wl.Profile
	absurdProfile.MaxInstrs = 1 << 59
	for _, key := range []sweep.Key{
		{Name: wl.Name, Profile: wl.Profile, ConfigFP: cfg.Fingerprint(), MaxInstrs: 1 << 60},
		{Name: wl.Name, Profile: absurdProfile, ConfigFP: cfg.Fingerprint()},
	} {
		resp, _ = postJSON(t, ts, "/v1/jobs", jobRequest(t, store.KindCounters, key, opts.Warmup))
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("absurd counters key %+v status = %d, want 400", key, resp.StatusCode)
		}
	}

	resp, _ = postJSON(t, ts, "/v1/jobs",
		jobRequest(t, store.KindCluster, workloads.StatsKey{Workload: "NoSuchWorkload", Slaves: 4, Scale: 0.01}, 0))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown cluster workload status = %d, want 404", resp.StatusCode)
	}

	for _, key := range []workloads.StatsKey{
		{Workload: "Sort", Slaves: 0, Scale: 0.01},
		{Workload: "Sort", Slaves: 1 << 20, Scale: 0.01},
		{Workload: "Sort", Slaves: 4, Scale: 0},
		{Workload: "Sort", Slaves: 4, Scale: 1e9},
	} {
		resp, _ = postJSON(t, ts, "/v1/jobs", jobRequest(t, store.KindCluster, key, 0))
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("absurd cluster key %+v status = %d, want 400", key, resp.StatusCode)
		}
	}

	resp, _ = postJSON(t, ts, "/v1/jobs", []byte("not json"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body status = %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts, "/v1/sweep", []byte("not json"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage alias body status = %d, want 400", resp.StatusCode)
	}
}

// TestJobsPersist: a store-backed worker writes both job kinds' results
// into its own store under the requested keys, so the worker's restarts
// are warm too.
func TestJobsPersist(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a sweep and a cluster experiment")
	}
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	opts := testOptions()
	srv := serve.New(serve.Config{Options: opts, Store: st, Logger: quietLog})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	wl, err := core.ByName("Grep")
	if err != nil {
		t.Fatal(err)
	}
	key := sweep.Key{Name: wl.Name, Profile: wl.Profile, ConfigFP: opts.CoreConfig().Fingerprint(), MaxInstrs: opts.Warmup + opts.Instrs}
	resp, body := postJSON(t, ts, "/v1/jobs", jobRequest(t, store.KindCounters, key, opts.Warmup))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("counters job status = %d: %s", resp.StatusCode, body)
	}
	stored, ok, err := st.Get(key)
	if err != nil || !ok {
		t.Fatalf("worker store has no record for the served key (ok=%v err=%v)", ok, err)
	}
	_, served, err := store.DecodeCounters(body)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stored, served) {
		t.Fatal("stored counters diverge from the served record")
	}

	skey := workloads.StatsKey{Workload: "Grep", Slaves: 4, Scale: opts.Scale, Seed: opts.Seed}
	resp, body = postJSON(t, ts, "/v1/jobs", jobRequest(t, store.KindCluster, skey, 0))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster job status = %d: %s", resp.StatusCode, body)
	}
	storedSt, ok, err := st.GetClusterStats(skey)
	if err != nil || !ok {
		t.Fatalf("worker store has no cluster record for the served key (ok=%v err=%v)", ok, err)
	}
	_, servedSt, err := store.DecodeStats(body)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(storedSt, servedSt) {
		t.Fatal("stored cluster stats diverge from the served record")
	}
}

// TestAdmissionControl: a worker with -max-inflight 1 sheds the second
// concurrent job with 429 + Retry-After while the first holds the slot,
// keeps read endpoints unthrottled, frees the slot when the job finishes,
// and counts the shed in /healthz and /metrics.
func TestAdmissionControl(t *testing.T) {
	opts := testOptions()
	gate := make(chan struct{})
	backend := &countingBackend{inner: newMemoryBackend(), gate: gate}
	srv := serve.New(serve.Config{Options: opts, Backend: backend, MaxInflight: 1, Logger: quietLog})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	wl, err := core.ByName("Sort")
	if err != nil {
		t.Fatal(err)
	}
	key := sweep.Key{Name: wl.Name, Profile: wl.Profile, ConfigFP: opts.CoreConfig().Fingerprint(), MaxInstrs: opts.Warmup + opts.Instrs}
	// The shed probes use a different workload: a same-key request would
	// join the gated in-flight cell instead of shedding (see
	// TestShedOrJoin), and this test is about the 429 path.
	probeWl, err := core.ByName("Grep")
	if err != nil {
		t.Fatal(err)
	}
	probeKey := sweep.Key{Name: probeWl.Name, Profile: probeWl.Profile, ConfigFP: opts.CoreConfig().Fingerprint(), MaxInstrs: opts.Warmup + opts.Instrs}

	// First job: parks on the gated backend Load, holding the only slot.
	// (Raw http in the goroutine: t.Fatal must stay on the test goroutine.)
	firstBody, err := json.Marshal(jobRequest(t, store.KindCounters, key, opts.Warmup))
	if err != nil {
		t.Fatal(err)
	}
	firstDone := make(chan int, 1)
	go func() {
		resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(firstBody))
		if err != nil {
			firstDone <- 0
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		firstDone <- resp.StatusCode
	}()
	deadline := time.Now().Add(10 * time.Second)
	for srv.JobStats().InFlight != 1 {
		if time.Now().After(deadline) {
			t.Fatal("first job never occupied the slot")
		}
		time.Sleep(time.Millisecond)
	}

	// Second job — and the old-shape alias — are shed with the hint.
	resp, body := postJSON(t, ts, "/v1/jobs", jobRequest(t, store.KindCounters, probeKey, opts.Warmup))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated worker answered %d, want 429: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", got)
	}
	resp, _ = postJSON(t, ts, "/v1/sweep", serve.SweepRequest{Key: probeKey, Warmup: opts.Warmup})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated alias answered %d, want 429", resp.StatusCode)
	}

	// Read endpoints stay admitted: admission bounds compute, not serving.
	if hresp, _ := get(t, ts, "/healthz", nil); hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz under saturation = %d, want 200", hresp.StatusCode)
	}

	// Release the gate: the first job completes and the slot frees.
	close(gate)
	select {
	case code := <-firstDone:
		if code != http.StatusOK {
			t.Fatalf("gated job finished with %d, want 200", code)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("gated job never finished")
	}
	resp, _ = postJSON(t, ts, "/v1/jobs", jobRequest(t, store.KindCounters, key, opts.Warmup))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release job answered %d, want 200 (slot must free)", resp.StatusCode)
	}

	// The sheds are on the books.
	js := srv.JobStats()
	if js.Shed != 2 || js.MaxInflight != 1 || js.InFlight != 0 {
		t.Fatalf("JobStats = %+v, want 2 shed, bound 1, 0 in flight", js)
	}
	_, hbody := get(t, ts, "/healthz", nil)
	var h struct {
		Jobs serve.JobStats `json:"jobs"`
	}
	if err := json.Unmarshal(hbody, &h); err != nil {
		t.Fatal(err)
	}
	if h.Jobs.Shed != 2 || h.Jobs.MaxInflight != 1 {
		t.Fatalf("healthz jobs block = %+v, want the shed count", h.Jobs)
	}
	_, mbody := get(t, ts, "/metrics", nil)
	for _, want := range []string{
		"dcserved_jobs_shed_total 2",
		"dcserved_jobs_max_inflight 1",
	} {
		if !strings.Contains(string(mbody), want) {
			t.Errorf("metrics lack %q:\n%s", want, mbody)
		}
	}
}
