package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"dcbench/internal/core"
	"dcbench/internal/serve"
	"dcbench/internal/store"
	"dcbench/internal/sweep"
)

// postSweep sends one /v1/sweep request and returns the response.
func postSweep(t *testing.T, ts *httptest.Server, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestWorkerSweepEndpoint: the compute endpoint simulates the requested
// key and answers with a verifiable record holding exactly the counters a
// local engine produces for it — the bit-parity the dispatch layer's
// byte-identical responses are built on.
func TestWorkerSweepEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a single-workload sweep")
	}
	opts := testOptions()
	srv := serve.New(serve.Config{Options: opts, Logger: quietLog})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	wl, err := core.ByName("Sort")
	if err != nil {
		t.Fatal(err)
	}
	cfg := opts.CoreConfig()
	key := sweep.Key{
		Name:      wl.Name,
		Profile:   wl.Profile,
		ConfigFP:  cfg.Fingerprint(),
		MaxInstrs: opts.Warmup + opts.Instrs,
	}
	resp, body := postSweep(t, ts, serve.SweepRequest{Key: key, Warmup: opts.Warmup})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status = %d: %s", resp.StatusCode, body)
	}
	gotKey, gotC, err := store.DecodeCounters(body)
	if err != nil {
		t.Fatalf("response does not verify: %v", err)
	}
	if gotKey != key {
		t.Fatalf("response key = %+v, want the requested key", gotKey)
	}

	// Local oracle: the same job on a fresh engine.
	jobs := []sweep.Job{{Name: wl.Name, Profile: wl.Profile, Gen: wl.Gen}}
	want, err := sweep.NewEngine().Run(context.Background(), jobs, cfg, key.MaxInstrs, sweep.RunOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotC, want[0]) {
		t.Fatal("worker counters diverge from a local simulation of the same key")
	}

	// A second request for the same key rides the worker's memo: same bytes.
	_, body2 := postSweep(t, ts, serve.SweepRequest{Key: key, Warmup: opts.Warmup})
	if !bytes.Equal(body, body2) {
		t.Fatal("repeated sweep request returned different bytes")
	}
}

// TestWorkerSweepRejections pins the endpoint's refusals: unknown
// workloads, a config fingerprint the worker cannot rebuild, and garbage
// bodies must all fail loudly — never simulate the wrong thing.
func TestWorkerSweepRejections(t *testing.T) {
	opts := testOptions()
	srv := serve.New(serve.Config{Options: opts, Logger: quietLog})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cfg := opts.CoreConfig()
	wl, err := core.ByName("Sort")
	if err != nil {
		t.Fatal(err)
	}

	resp, _ := postSweep(t, ts, serve.SweepRequest{
		Key:    sweep.Key{Name: "NoSuchWorkload", ConfigFP: cfg.Fingerprint()},
		Warmup: opts.Warmup,
	})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown workload status = %d, want 404", resp.StatusCode)
	}

	resp, _ = postSweep(t, ts, serve.SweepRequest{
		Key:    sweep.Key{Name: wl.Name, Profile: wl.Profile, ConfigFP: 0xdead},
		Warmup: opts.Warmup,
	})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("fingerprint mismatch status = %d, want 409", resp.StatusCode)
	}

	req, err := http.NewRequest("POST", ts.URL+"/v1/sweep", bytes.NewReader([]byte("not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body status = %d, want 400", resp.StatusCode)
	}
}

// TestWorkerSweepPersists: a store-backed worker writes the computed
// counters into its own store under the requested key, so the worker's
// restarts are warm too.
func TestWorkerSweepPersists(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a single-workload sweep")
	}
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	opts := testOptions()
	srv := serve.New(serve.Config{Options: opts, Store: st, Logger: quietLog})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	wl, err := core.ByName("Grep")
	if err != nil {
		t.Fatal(err)
	}
	cfg := opts.CoreConfig()
	key := sweep.Key{Name: wl.Name, Profile: wl.Profile, ConfigFP: cfg.Fingerprint(), MaxInstrs: opts.Warmup + opts.Instrs}
	resp, body := postSweep(t, ts, serve.SweepRequest{Key: key, Warmup: opts.Warmup})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status = %d: %s", resp.StatusCode, body)
	}
	stored, ok, err := st.Get(key)
	if err != nil || !ok {
		t.Fatalf("worker store has no record for the served key (ok=%v err=%v)", ok, err)
	}
	_, served, err := store.DecodeCounters(body)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stored, served) {
		t.Fatal("stored counters diverge from the served record")
	}
}
