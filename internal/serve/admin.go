package serve

import (
	"crypto/sha256"
	"crypto/subtle"
	"encoding/json"
	"log/slog"
	"net/http"
	"strings"

	"dcbench/internal/tenant"
)

// This file is the admin plane: the operator's API for minting, revoking
// and re-budgeting tenant keys, and for reading the cluster's per-tenant
// usage, without editing the keys file by hand or restarting the server.
// It is deliberately NOT part of the v1 surface — AdminHandler mounts on
// the -admin-addr (or -debug-addr) listener, which an operator binds to
// localhost or an internal network, never the serving address — and it
// authenticates with its own bootstrap bearer token (-admin-token), so a
// tenant key never grants admin rights and the admin token never grants
// data-plane access.
//
//	GET    /admin/v1/keys           list key configs (secrets redacted) + usage
//	POST   /admin/v1/keys           create a key (body: tenant.KeyConfig; secret minted if empty)
//	DELETE /admin/v1/keys/{id}      revoke a key (usage is retained)
//	PUT    /admin/v1/keys/{id}/limits  replace a key's limits (body: tenant.Limits)
//	GET    /admin/v1/usage          per-tenant usage report
//
// Mutations persist to the keys file atomically, so an admin-created key
// survives a restart and a SIGHUP reload never resurrects a revoked one.
// Errors speak the same envelope as the v1 API.

// adminPlane is the admin API over one tenant registry.
type adminPlane struct {
	reg    *tenant.Registry
	digest [sha256.Size]byte
	log    *slog.Logger
}

// AdminHandler returns the /admin/v1 handler for reg, guarded by the
// bootstrap bearer token. An empty token disables the plane entirely
// (every request answers 401): an unauthenticated admin API is worse
// than none.
func AdminHandler(reg *tenant.Registry, token string, log *slog.Logger) http.Handler {
	if log == nil {
		log = slog.Default()
	}
	a := &adminPlane{reg: reg, log: log}
	if token != "" {
		a.digest = sha256.Sum256([]byte(token))
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /admin/v1/keys", a.handleKeyList)
	mux.HandleFunc("POST /admin/v1/keys", a.handleKeyCreate)
	mux.HandleFunc("DELETE /admin/v1/keys/{id}", a.handleKeyRevoke)
	mux.HandleFunc("PUT /admin/v1/keys/{id}/limits", a.handleKeyLimits)
	mux.HandleFunc("GET /admin/v1/usage", a.handleUsage)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !a.authorized(r) {
			writeError(w, r, http.StatusUnauthorized, codeUnauthorized, "admin token required")
			return
		}
		mux.ServeHTTP(w, r)
	})
}

// authorized checks the bootstrap token: constant-time over the sha256
// digests, like the data plane's key check.
func (a *adminPlane) authorized(r *http.Request) bool {
	var zero [sha256.Size]byte
	if a.digest == zero {
		return false // no token configured: the plane is disabled
	}
	tok, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
	if !ok {
		return false
	}
	got := sha256.Sum256([]byte(strings.TrimSpace(tok)))
	return subtle.ConstantTimeCompare(got[:], a.digest[:]) == 1
}

// adminKey is one key's externally visible config: the tenant snapshot
// (limits + usage) without the secret, which is shown exactly once, at
// creation.
type adminKey struct {
	tenant.Snapshot
}

func (a *adminPlane) handleKeyList(w http.ResponseWriter, r *http.Request) {
	keys := []adminKey{}
	for _, s := range a.reg.Snapshots() {
		if s.Keyed {
			keys = append(keys, adminKey{s})
		}
	}
	writeJSON(w, struct {
		Keys []adminKey `json:"keys"`
	}{keys})
}

func (a *adminPlane) handleKeyCreate(w http.ResponseWriter, r *http.Request) {
	var cfg tenant.KeyConfig
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJobRequest)).Decode(&cfg); err != nil {
		writeError(w, r, http.StatusBadRequest, codeBadRequest, "unreadable key config: "+err.Error())
		return
	}
	created, err := a.reg.CreateKey(cfg)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, codeBadRequest, err.Error())
		return
	}
	a.log.Info("admin created key", "tenant", created.ID)
	// The one response that carries a secret: the caller must store it,
	// the server keeps only the digest-bearing keys file.
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(created)
}

func (a *adminPlane) handleKeyRevoke(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := a.reg.RevokeKey(id); err != nil {
		writeError(w, r, http.StatusNotFound, codeNotFound, err.Error())
		return
	}
	a.log.Info("admin revoked key", "tenant", id)
	w.WriteHeader(http.StatusNoContent)
}

func (a *adminPlane) handleKeyLimits(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var l tenant.Limits
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJobRequest)).Decode(&l); err != nil {
		writeError(w, r, http.StatusBadRequest, codeBadRequest, "unreadable limits: "+err.Error())
		return
	}
	if err := a.reg.SetKeyLimits(id, l); err != nil {
		writeError(w, r, http.StatusNotFound, codeNotFound, err.Error())
		return
	}
	a.log.Info("admin set limits", "tenant", id)
	t, _ := a.reg.Lookup(id)
	writeJSON(w, t.Snapshot())
}

func (a *adminPlane) handleUsage(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, struct {
		Tenants []tenant.Snapshot `json:"tenants"`
	}{a.reg.Snapshots()})
}
