package serve_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"dcbench/internal/serve"
	"dcbench/internal/tenant"
)

// hotGet drives one in-process GET /v1/workloads through the full
// middleware stack (trace, auth, rate limit, mux) without a network in
// the way, so the measured cost is the handler's own.
func hotGet(h http.Handler, key string) int {
	req := httptest.NewRequest(http.MethodGet, "/v1/workloads", nil)
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code
}

// BenchmarkAuthOverhead measures what the tenant front door costs a hot
// request: the same GET /v1/workloads with auth off and with a loaded
// keys file (sha256 + constant-time walk + token bucket). The delta is
// the per-request price of multi-tenancy.
func BenchmarkAuthOverhead(b *testing.B) {
	b.Run("off", func(b *testing.B) {
		srv := serve.New(serve.Config{Options: testOptions(), Logger: quietLog})
		defer srv.Close()
		h := srv.Handler()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if hotGet(h, "") != http.StatusOK {
				b.Fatal("request failed")
			}
		}
	})
	b.Run("keyed", func(b *testing.B) {
		reg, err := tenant.Open(writeKeysFileB(b), quietLog)
		if err != nil {
			b.Fatal(err)
		}
		srv := serve.New(serve.Config{Options: testOptions(), Tenants: reg, Logger: quietLog})
		defer srv.Close()
		h := srv.Handler()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if hotGet(h, "bench-key") != http.StatusOK {
				b.Fatal("request failed")
			}
		}
	})
}

// writeKeysFileB is writeKeysFile for benchmarks (testing.B has no
// shared helper interface with testing.T here).
func writeKeysFileB(b *testing.B) string {
	b.Helper()
	path := b.TempDir() + "/keys.json"
	data, err := json.Marshal(struct {
		Keys []tenant.KeyConfig `json:"keys"`
	}{[]tenant.KeyConfig{{ID: "bench", Secret: "bench-key"}}})
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o600); err != nil {
		b.Fatal(err)
	}
	return path
}

// TestAuthBenchArtifact writes the CI perf artifact (BENCH_auth.json):
// mean hot-request latency with auth off and on, and the per-request
// overhead the front door adds — the number the "under 2µs" budget is
// checked against per commit. Gated on BENCH_AUTH_OUT so ordinary test
// runs skip it.
func TestAuthBenchArtifact(t *testing.T) {
	out := os.Getenv("BENCH_AUTH_OUT")
	if out == "" {
		t.Skip("set BENCH_AUTH_OUT=<path> to write the perf artifact")
	}
	const reqs = 20_000

	measure := func(h http.Handler, key string) float64 {
		for i := 0; i < 200; i++ {
			hotGet(h, key) // warm the render memo and the caches
		}
		start := time.Now()
		for i := 0; i < reqs; i++ {
			if hotGet(h, key) != http.StatusOK {
				t.Fatal("request failed")
			}
		}
		return float64(time.Since(start).Microseconds()) / reqs
	}

	off := serve.New(serve.Config{Options: testOptions(), Logger: quietLog})
	defer off.Close()
	offUS := measure(off.Handler(), "")

	path := writeKeysFile(t, tenant.KeyConfig{ID: "bench", Secret: "bench-key"})
	reg, err := tenant.Open(path, quietLog)
	if err != nil {
		t.Fatal(err)
	}
	keyed := serve.New(serve.Config{Options: testOptions(), Tenants: reg, Logger: quietLog})
	defer keyed.Close()
	onUS := measure(keyed.Handler(), "bench-key")

	artifact := map[string]any{
		"schema":           1,
		"requests":         reqs,
		"endpoint":         "/v1/workloads",
		"auth_off_mean_us": offUS,
		"auth_on_mean_us":  onUS,
		"overhead_us":      onUS - offUS,
		"budget_us":        2.0,
	}
	data, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("wrote %s: %s\n", out, data)
	if over := onUS - offUS; over > 2.0 {
		t.Logf("auth overhead %.2fµs exceeds the 2µs budget (advisory)", over)
	}
}
