package serve_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dcbench/internal/serve"
	"dcbench/internal/tenant"
)

func adminAuth(token string) map[string]string {
	return map[string]string{"Authorization": "Bearer " + token}
}

// TestAdminPlane walks the key lifecycle through /admin/v1: create a key
// (secret minted and shown once), use it on the data plane, tighten its
// limits, read the usage report, revoke it — and verify the bootstrap
// token guards every step.
func TestAdminPlane(t *testing.T) {
	reg := openRegistry(t, tenant.KeyConfig{ID: "alice", Secret: "alice-key"})
	admin := httptest.NewServer(serve.AdminHandler(reg, "boot-token", quietLog))
	defer admin.Close()
	srv := serve.New(serve.Config{Options: testOptions(), Tenants: reg, Logger: quietLog})
	defer srv.Close()
	data := httptest.NewServer(srv.Handler())
	defer data.Close()

	// No token, wrong token, tenant key as token: all 401.
	for _, hdr := range []map[string]string{nil, adminAuth("wrong"), adminAuth("alice-key")} {
		resp, body := doJSON(t, admin, http.MethodGet, "/admin/v1/keys", nil, hdr)
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("admin with %v = %d, want 401: %s", hdr, resp.StatusCode, body)
		}
		if code := errCode(t, resp, body); code != "unauthorized" {
			t.Fatalf("admin code = %q", code)
		}
	}

	// Create a key for bob; the secret is minted and returned once.
	resp, body := doJSON(t, admin, http.MethodPost, "/admin/v1/keys",
		tenant.KeyConfig{ID: "bob"}, adminAuth("boot-token"))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create = %d: %s", resp.StatusCode, body)
	}
	var created tenant.KeyConfig
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(created.Secret, "dck_") {
		t.Fatalf("minted secret = %q, want a dck_ prefix", created.Secret)
	}

	// The minted key works on the data plane immediately.
	if resp, body := get(t, data, "/v1/workloads", bearer(created.Secret)); resp.StatusCode != http.StatusOK {
		t.Fatalf("minted key = %d: %s", resp.StatusCode, body)
	}

	// The key list shows both tenants and never a secret.
	_, body = doJSON(t, admin, http.MethodGet, "/admin/v1/keys", nil, adminAuth("boot-token"))
	for _, want := range []string{`"alice"`, `"bob"`} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("key list lacks %s: %s", want, body)
		}
	}
	for _, leak := range []string{"alice-key", created.Secret, "secret"} {
		if strings.Contains(string(body), leak) {
			t.Fatalf("key list leaks %q: %s", leak, body)
		}
	}

	// Creating over an existing key is refused — revoke-and-create is
	// the rotation story, silent replacement is not.
	if resp, _ := doJSON(t, admin, http.MethodPost, "/admin/v1/keys",
		tenant.KeyConfig{ID: "bob"}, adminAuth("boot-token")); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("re-create = %d, want 400", resp.StatusCode)
	}

	// Tighten bob's limits; the snapshot echoes them.
	resp, body = doJSON(t, admin, http.MethodPut, "/admin/v1/keys/bob/limits",
		tenant.Limits{RatePerSec: 5, Burst: 10}, adminAuth("boot-token"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("set limits = %d: %s", resp.StatusCode, body)
	}
	var snap tenant.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Limits.RatePerSec != 5 || snap.Limits.Burst != 10 {
		t.Fatalf("limits after PUT = %+v", snap.Limits)
	}
	if resp, _ := doJSON(t, admin, http.MethodPut, "/admin/v1/keys/ghost/limits",
		tenant.Limits{}, adminAuth("boot-token")); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("limits on unknown key = %d, want 404", resp.StatusCode)
	}

	// The usage report attributes bob's data-plane request.
	_, body = doJSON(t, admin, http.MethodGet, "/admin/v1/usage", nil, adminAuth("boot-token"))
	var usage struct {
		Tenants []tenant.Snapshot `json:"tenants"`
	}
	if err := json.Unmarshal(body, &usage); err != nil {
		t.Fatal(err)
	}
	var bobSeen bool
	for _, s := range usage.Tenants {
		if s.ID == "bob" {
			bobSeen = true
			if s.Usage.Requests != 1 {
				t.Fatalf("bob's usage = %+v, want 1 request", s.Usage)
			}
		}
	}
	if !bobSeen {
		t.Fatalf("usage report lacks bob: %s", body)
	}

	// Revoke bob: the data plane refuses the key on the next request.
	if resp, _ := doJSON(t, admin, http.MethodDelete, "/admin/v1/keys/bob", nil, adminAuth("boot-token")); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("revoke = %d, want 204", resp.StatusCode)
	}
	resp, body = get(t, data, "/v1/workloads", bearer(created.Secret))
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("revoked key = %d, want 401: %s", resp.StatusCode, body)
	}
	if resp, _ := doJSON(t, admin, http.MethodDelete, "/admin/v1/keys/ghost", nil, adminAuth("boot-token")); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("revoke unknown = %d, want 404", resp.StatusCode)
	}
}

// TestAdminPlaneDisabled: an empty bootstrap token disables the plane —
// an unauthenticated admin API is worse than none.
func TestAdminPlaneDisabled(t *testing.T) {
	reg := openRegistry(t, tenant.KeyConfig{ID: "alice", Secret: "alice-key"})
	admin := httptest.NewServer(serve.AdminHandler(reg, "", quietLog))
	defer admin.Close()
	for _, hdr := range []map[string]string{nil, adminAuth(""), adminAuth("anything")} {
		if resp, _ := doJSON(t, admin, http.MethodGet, "/admin/v1/usage", nil, hdr); resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("disabled plane with %v = %d, want 401", hdr, resp.StatusCode)
		}
	}
}
