package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"dcbench/internal/jobs"
	"dcbench/internal/obs"
	"dcbench/internal/tenant"
)

// This file is the async half of the job lifecycle: POST /v1/jobs with
// ?wait=false (or "async": true) detaches the job from the submitting
// request and answers 202 with a job id; the job then moves through the
// internal/jobs state machine
//
//	queued → admitted → capturing/replaying → simulating → stored
//	       → done | failed | cancelled
//
// with the middle states derived from the job's own obs trace: the job id
// IS a trace id, the runner attaches the job's ObserveSpan hook to that
// trace, and the spans the engine/store/trace-cache already record double
// as progress events. GET /v1/jobs/{id} polls the state (or streams it as
// SSE under Accept: text/event-stream), GET /v1/jobs/{id}/result fetches
// the finished record, DELETE /v1/jobs/{id} cancels — releasing the
// admission slot and, through the memo's refcounted cancellation,
// stopping the underlying simulation once no other caller shares it.

// submitAsync accepts one validated job for background execution. The
// submitting tenant owns the job: its id scopes every lifecycle endpoint
// and the detached run context carries the tenant, so the quota charge
// lands on completion exactly as it does for a blocking job.
func (s *Server) submitAsync(w http.ResponseWriter, r *http.Request, run *jobRunner) {
	if s.registry.Active() >= maxActiveJobs {
		s.shedJob(w, r, run.kind)
		return
	}
	// The job's own trace outlives the submit request and carries the
	// job's id, so /v1/jobs/{id} and /debug/traces name the same thing;
	// its span stream drives the state machine.
	id := obs.NewID()
	tr := s.recorder.StartTrace("job "+run.kind, id)
	ctx, cancel := context.WithCancel(s.baseCtx)
	ctx = obs.With(ctx, tr)
	tn := tenant.From(r.Context())
	ctx = tenant.With(ctx, tn)
	job := s.registry.New(id, run.kind, tn.ID(), cancel)
	tr.OnSpan(job.ObserveSpan)
	s.queuedJobs.Add(1)
	go s.runAsync(ctx, job, tr, run)

	w.Header().Set("Location", "/v1/jobs/"+id)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	encodeSnapshot(w, job.Snapshot())
}

// runAsync drives one detached job: wait for a slot (cancellable — a job
// DELETEd while queued never runs), execute, settle the terminal state.
func (s *Server) runAsync(ctx context.Context, job *jobs.Job, tr *obs.Trace, run *jobRunner) {
	defer tr.Finish()
	sp := obs.Start(ctx, "admission")
	release, err := s.acquireWait(ctx)
	s.queuedJobs.Add(-1)
	if err != nil {
		sp.End("shed", "false", "cancelled", "true")
		s.settleCancelled(job)
		return
	}
	sp.End("shed", "false") // the span observer flips the job to admitted
	defer release()
	start := time.Now()
	body, je := run.exec(ctx)
	dur := time.Since(start)
	s.jobHist.Observe(run.kind, dur)
	switch {
	case ctx.Err() != nil:
		// Cancelled (or shut down) mid-run; a DELETE has usually latched
		// the state already and this is a no-op.
		s.settleCancelled(job)
	case je != nil:
		job.Fail(je.msg)
	default:
		tenant.From(ctx).ChargeJob(run.kind, run.instrs)
		s.observeService(run.kind, dur)
		job.Complete(body)
	}
}

// settleCancelled records why a job's context died: a server shutdown is
// a failure (the client may retry elsewhere), anything else is the job's
// own cancellation.
func (s *Server) settleCancelled(job *jobs.Job) {
	if s.baseCtx.Err() != nil {
		job.Fail("worker shutting down")
		return
	}
	job.Cancel()
}

// jobForRequest resolves the path's job id within the requesting
// tenant's scope. A job owned by a different tenant answers exactly like
// a job that does not exist — same 404, same message — so a tenant
// cannot probe for other tenants' job ids. Anonymous jobs (owner "")
// stay visible to everyone, which keeps the auth-off behavior identical
// to before tenancy existed.
func (s *Server) jobForRequest(r *http.Request) (*jobs.Job, bool) {
	job, ok := s.registry.Get(r.PathValue("id"))
	if !ok {
		return nil, false
	}
	if owner := job.Tenant(); owner != "" && owner != tenant.IDFrom(r.Context()) {
		return nil, false
	}
	return job, true
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	caller := tenant.IDFrom(r.Context())
	snaps := []jobs.Snapshot{}
	for _, j := range s.registry.Jobs() {
		if owner := j.Tenant(); owner != "" && owner != caller {
			continue
		}
		snaps = append(snaps, j.Snapshot())
	}
	writeJSON(w, struct {
		Jobs []jobs.Snapshot `json:"jobs"`
	}{snaps})
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobForRequest(r)
	if !ok {
		writeError(w, r, http.StatusNotFound, codeNotFound, "unknown job")
		return
	}
	if strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
		s.streamJob(w, r, job)
		return
	}
	writeJSON(w, job.Snapshot())
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobForRequest(r)
	if !ok {
		writeError(w, r, http.StatusNotFound, codeNotFound, "unknown job")
		return
	}
	if body, done := job.Result(); done {
		writeRecord(w, body)
		return
	}
	snap := job.Snapshot()
	switch snap.State {
	case jobs.StateFailed:
		// snap.Error is already client-safe: internal failures were
		// sanitized to a generic trace-naming message at jobError
		// construction, before the registry stored them.
		writeError(w, r, http.StatusInternalServerError, codeInternal, snap.Error)
	case jobs.StateCancelled:
		writeError(w, r, http.StatusGone, codeGone, "job cancelled")
	default:
		writeError(w, r, http.StatusConflict, codeConflict, fmt.Sprintf("job not finished (state %q)", snap.State))
	}
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobForRequest(r)
	if !ok {
		writeError(w, r, http.StatusNotFound, codeNotFound, "unknown job")
		return
	}
	// Cancel latches the terminal state first (span-derived progress can
	// no longer change it) and then cancels the job's context, which
	// unwinds the runner: the admission wait aborts, or the memo joiner
	// leaves and — when it was the last — the simulation itself stops.
	if job.Cancel() {
		s.cancelled.Add(1)
	}
	writeJSON(w, job.Snapshot())
}

// streamJob serves one job's transitions as Server-Sent Events: every
// state change already recorded, then each new one as it lands, one
// `event: state` per transition, closing after the terminal state.
func (s *Server) streamJob(w http.ResponseWriter, r *http.Request, job *jobs.Job) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, r, http.StatusNotImplemented, codeNotImplemented, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	snap, wake, stop := job.Subscribe()
	defer stop()
	sent := 0
	emit := func(snap jobs.Snapshot) bool {
		for _, t := range snap.History[sent:] {
			data, err := json.Marshal(t)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "event: state\ndata: %s\n\n", data)
			sent++
		}
		fl.Flush()
		return snap.State.Terminal()
	}
	if emit(snap) {
		return
	}
	for {
		select {
		case <-wake:
			if emit(job.Snapshot()) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// encodeSnapshot writes one job snapshot as indented JSON (after the
// status line has gone out, so no http.Error on failure).
func encodeSnapshot(w http.ResponseWriter, snap jobs.Snapshot) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(snap)
}
