package serve

import (
	"net/http"
	"strconv"

	"dcbench/internal/tenant"
)

// This file is the serve-side of the identity layer: resolving each
// request to a tenant (API-key authentication when a keys file is
// loaded, X-Dcs-Tenant attribution for work arriving over the dispatch
// hop) and spending that tenant's rate and quota budget before the mux
// sees the request. The tenant then rides the request context — through
// jobCtx into the engine's memo and the dispatch layer (which forwards
// its id to workers), and into the async job registry (which scopes job
// visibility to the owning tenant).

// admitTenant resolves the request's tenant and spends one request of
// its budget. Three outcomes:
//
//   - (tenant, nil): admitted; the tenant (possibly nil for anonymous
//     traffic with auth off) should ride the request context.
//   - (nil, 401 unauthorized): a keys file is loaded and the request
//     presented no usable key.
//   - (tenant, 429 quota_exceeded): the tenant's own rate or quota
//     budget is spent — with Retry-After when the denial is rate-based,
//     since a bucket refills on a known schedule. Deliberately a
//     different code from the admission layer's 429 overloaded: "slow
//     yourself down" and "this worker is drowning" demand different
//     reactions.
//
// Enforcement binds to the authenticated key; attribution follows the
// originating tenant. They differ on exactly one path: a keyed
// front-end forwarding a tenant's job to a keyed worker authenticates
// with its own service key while X-Dcs-Tenant names the origin — the
// worker enforces the service key's limits but attributes the work (and
// the usage) to the origin, so per-tenant accounting is cluster-wide
// coherent. With auth off the forwarded id alone identifies the tenant
// (zero limits, pure accounting), and with no header either, everything
// stays anonymous and free — the auth-off request path is unchanged.
func (s *Server) admitTenant(w http.ResponseWriter, r *http.Request) (*tenant.Tenant, *apiError) {
	var auth *tenant.Tenant
	if s.tenants.Enabled() {
		var err error
		auth, err = s.tenants.Authenticate(r)
		if err != nil {
			return nil, &apiError{http.StatusUnauthorized, codeUnauthorized, err.Error()}
		}
	}
	attributed := auth
	if id := r.Header.Get(tenant.Header); id != "" {
		if t := s.tenants.Attribute(id); t != nil {
			attributed = t
		}
	}
	enforce := auth
	if enforce == nil {
		enforce = attributed
	}
	if ok, retry := s.tenants.Allow(enforce); !ok {
		if retry > 0 {
			secs := int(retry.Seconds() + 0.999)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
		}
		return enforce, &apiError{http.StatusTooManyRequests, codeQuotaExceeded,
			"tenant " + strconv.Quote(enforce.ID()) + " is over its request budget"}
	}
	if attributed != enforce {
		// The origin's usage must show this request even though the
		// budget came off the service key.
		attributed.ChargeRequest()
	}
	return attributed, nil
}
