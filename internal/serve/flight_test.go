package serve

import (
	"strings"
	"sync"
	"testing"
)

// TestFlightPanicDoesNotWedge: a panicking render must surface as an error
// to every sharer and leave the key usable — without the cleanup running
// under defer, one panic would hang the endpoint forever.
func TestFlightPanicDoesNotWedge(t *testing.T) {
	var g flightGroup
	started := make(chan struct{})
	release := make(chan struct{})
	joined := make(chan struct{})
	g.onJoin = func() { close(joined) }

	var wg sync.WaitGroup
	wg.Add(2)
	errs := make([]error, 2)
	go func() {
		defer wg.Done()
		_, errs[0] = g.do("k", func() ([]byte, error) {
			close(started)
			<-release
			panic("boom")
		})
	}()
	<-started
	go func() {
		defer wg.Done()
		_, errs[1] = g.do("k", func() ([]byte, error) {
			t.Error("joiner must share the first call, not start its own")
			return nil, nil
		})
	}()
	<-joined
	close(release)
	wg.Wait()
	for i, err := range errs {
		if err == nil || !strings.Contains(err.Error(), "boom") {
			t.Fatalf("caller %d error = %v, want the converted panic", i, err)
		}
	}

	// The key must be free again.
	body, err := g.do("k", func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || string(body) != "ok" {
		t.Fatalf("post-panic call = %q, %v; the key is wedged", body, err)
	}
}
