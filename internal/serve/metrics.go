package serve

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// handleMetrics renders the Prometheus text exposition (version 0.0.4) of
// the server's request counters and, when a result store is wired in, its
// store-level counters. The format is hand-rolled on purpose: four gauge/
// counter families do not justify a client-library dependency, and the
// golden test pins the output so the surface cannot drift silently.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	st := s.Stats()
	writeMetric(&b, "dcserved_requests_total", "counter",
		"HTTP requests handled.", float64(st.Requests))
	writeMetric(&b, "dcserved_coalesced_total", "counter",
		"Requests that joined an in-flight render instead of starting one.", float64(st.Coalesced))
	writeMetric(&b, "dcserved_errors_total", "counter",
		"Requests answered with a 5xx status.", float64(st.Errors))
	writeMetric(&b, "dcserved_uptime_seconds", "gauge",
		"Seconds since the server started.", time.Since(s.started).Seconds())
	if bs, ok := s.backendStats(); ok {
		writeMetric(&b, "dcserved_store_records", "gauge",
			"Records currently in the result store.", float64(bs.Records))
		writeMetric(&b, "dcserved_store_shards", "gauge",
			"Hash shards in the result store.", float64(bs.Shards))
		writeMetric(&b, "dcserved_store_hits_total", "counter",
			"Store reads that returned a valid record.", float64(bs.Hits))
		writeMetric(&b, "dcserved_store_misses_total", "counter",
			"Store reads that found no usable record.", float64(bs.Misses))
		writeMetric(&b, "dcserved_store_writes_total", "counter",
			"Records written to the store.", float64(bs.Writes))
		writeMetric(&b, "dcserved_store_evictions_total", "counter",
			"Records removed by the eviction policy.", float64(bs.Evictions))
		writeMetric(&b, "dcserved_store_corrupt_total", "counter",
			"Corrupt records detected and skipped.", float64(bs.Corrupt))
		if d := bs.Dispatch; d != nil {
			writeMetric(&b, "dcserved_dispatch_workers", "gauge",
				"Configured sweep workers.", float64(d.Workers))
			writeMetric(&b, "dcserved_dispatch_healthy_workers", "gauge",
				"Workers whose circuit is currently closed.", float64(d.Healthy))
			writeMetric(&b, "dcserved_dispatch_in_flight", "gauge",
				"Dispatched sweeps currently awaiting a worker.", float64(d.InFlight))
			writeMetric(&b, "dcserved_dispatch_dispatched_total", "counter",
				"Sweep misses forwarded to the worker set.", float64(d.Dispatched))
			writeMetric(&b, "dcserved_dispatch_remote_hits_total", "counter",
				"Dispatched sweeps answered by a worker.", float64(d.RemoteHits))
			writeMetric(&b, "dcserved_dispatch_fallbacks_total", "counter",
				"Dispatched sweeps that fell back to local simulation.", float64(d.Fallbacks))
			writeMetric(&b, "dcserved_dispatch_errors_total", "counter",
				"Failed worker attempts (a fetch may retry past these).", float64(d.Errors))
		}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Header().Set("Content-Length", strconv.Itoa(b.Len()))
	w.Write([]byte(b.String()))
}

// writeMetric emits one single-sample metric family.
func writeMetric(b *strings.Builder, name, typ, help string, v float64) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n%s %s\n",
		name, help, name, typ, name, strconv.FormatFloat(v, 'g', -1, 64))
}
