package serve

import (
	"fmt"
	"net/http"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"dcbench/internal/sweep"
	"dcbench/internal/tenant"
)

// buildInfo resolves the dcserved_build_info labels once: the Go
// toolchain version and the VCS revision baked in by `go build` (or
// "unknown" outside a checkout, e.g. a test binary).
var buildInfo = sync.OnceValue(func() (bi struct{ GoVersion, Revision string }) {
	bi.GoVersion, bi.Revision = "unknown", "unknown"
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return bi
	}
	bi.GoVersion = info.GoVersion
	for _, s := range info.Settings {
		if s.Key == "vcs.revision" {
			bi.Revision = s.Value
		}
	}
	return bi
})

// handleMetrics renders the Prometheus text exposition (version 0.0.4) of
// the server's request counters and, when a result store is wired in, its
// store-level counters. The format is hand-rolled on purpose: four gauge/
// counter families do not justify a client-library dependency, and the
// golden test pins the output so the surface cannot drift silently.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	bi := buildInfo()
	fmt.Fprintf(&b, "# HELP dcserved_build_info Build metadata; the value is always 1.\n"+
		"# TYPE dcserved_build_info gauge\ndcserved_build_info{goversion=%q,revision=%q} 1\n",
		bi.GoVersion, bi.Revision)
	st := s.Stats()
	writeMetric(&b, "dcserved_requests_total", "counter",
		"HTTP requests handled.", float64(st.Requests))
	writeMetric(&b, "dcserved_coalesced_total", "counter",
		"Requests that joined an in-flight render instead of starting one.", float64(st.Coalesced))
	writeMetric(&b, "dcserved_errors_total", "counter",
		"Requests answered with a 5xx status.", float64(st.Errors))
	writeMetric(&b, "dcserved_deprecated_requests_total", "counter",
		"Requests to deprecated endpoints (POST /v1/sweep; migrate to POST /v1/jobs).", float64(st.Deprecated))
	writeMetric(&b, "dcserved_uptime_seconds", "gauge",
		"Seconds since the server started.", time.Since(s.started).Seconds())
	js := s.JobStats()
	writeMetric(&b, "dcserved_jobs_in_flight", "gauge",
		"Compute jobs (counters + cluster) currently running.", float64(js.InFlight))
	writeMetric(&b, "dcserved_jobs_max_inflight", "gauge",
		"Admission-control bound on concurrent compute jobs; 0 = unlimited.", float64(js.MaxInflight))
	writeMetric(&b, "dcserved_jobs_shed_total", "counter",
		"Compute jobs shed with 429 because the worker was saturated.", float64(js.Shed))
	writeMetric(&b, "dcserved_jobs_queued", "gauge",
		"Async jobs accepted and waiting for an admission slot.", float64(js.Queued))
	writeMetric(&b, "dcserved_jobs_joined_total", "counter",
		"Saturated requests that joined an in-flight job instead of shedding.", float64(js.Joined))
	writeMetric(&b, "dcserved_jobs_cancelled_total", "counter",
		"Jobs cancelled by DELETE /v1/jobs/{id}.", float64(js.Cancelled))
	s.reqHist.WriteProm(&b, "dcserved_request_duration_seconds", "endpoint",
		"HTTP request latency by mux pattern; probe endpoints are not sampled.")
	s.jobHist.WriteProm(&b, "dcserved_job_duration_seconds", "kind",
		"Compute job latency by job kind, admission to response.")
	if bs, ok := s.backendStats(); ok {
		writeMetric(&b, "dcserved_store_records", "gauge",
			"Records currently in the result store.", float64(bs.Records))
		writeMetric(&b, "dcserved_store_bytes", "gauge",
			"Total record bytes in the result store.", float64(bs.Bytes))
		writeMetric(&b, "dcserved_store_shards", "gauge",
			"Hash shards in the result store.", float64(bs.Shards))
		writeMetric(&b, "dcserved_store_hits_total", "counter",
			"Store reads that returned a valid record.", float64(bs.Hits))
		writeMetric(&b, "dcserved_store_misses_total", "counter",
			"Store reads that found no usable record.", float64(bs.Misses))
		writeMetric(&b, "dcserved_store_writes_total", "counter",
			"Records written to the store.", float64(bs.Writes))
		writeMetric(&b, "dcserved_store_evictions_total", "counter",
			"Records removed by the eviction policy.", float64(bs.Evictions))
		writeMetric(&b, "dcserved_store_corrupt_total", "counter",
			"Corrupt records detected and skipped.", float64(bs.Corrupt))
		if d := bs.Dispatch; d != nil {
			writeMetric(&b, "dcserved_dispatch_workers", "gauge",
				"Configured sweep workers.", float64(d.Workers))
			writeMetric(&b, "dcserved_dispatch_healthy_workers", "gauge",
				"Workers whose circuit is currently closed.", float64(d.Healthy))
			writeMetric(&b, "dcserved_dispatch_in_flight", "gauge",
				"Dispatched jobs currently awaiting a worker (all kinds).", float64(d.InFlight))
			writeMetric(&b, "dcserved_dispatch_dispatched_total", "counter",
				"Job misses forwarded to the worker set (all kinds).", float64(d.Dispatched))
			writeMetric(&b, "dcserved_dispatch_remote_hits_total", "counter",
				"Dispatched jobs answered by a worker (all kinds).", float64(d.RemoteHits))
			writeMetric(&b, "dcserved_dispatch_fallbacks_total", "counter",
				"Dispatched jobs that fell back to local simulation (all kinds).", float64(d.Fallbacks))
			writeMetric(&b, "dcserved_dispatch_errors_total", "counter",
				"Failed worker attempts (a fetch may retry past these).", float64(d.Errors))
			writeMetric(&b, "dcserved_dispatch_shed_total", "counter",
				"Dispatch attempts answered 429 by a saturated worker.", float64(d.Shed))
			writeKindMetric(&b, "dcserved_dispatch_kind_dispatched_total", "counter",
				"Job misses forwarded to the worker set, by job kind.", d.PerKind,
				func(k sweep.DispatchKindStats) int64 { return k.Dispatched })
			writeKindMetric(&b, "dcserved_dispatch_kind_remote_hits_total", "counter",
				"Dispatched jobs answered by a worker, by job kind.", d.PerKind,
				func(k sweep.DispatchKindStats) int64 { return k.RemoteHits })
			writeKindMetric(&b, "dcserved_dispatch_kind_fallbacks_total", "counter",
				"Dispatched jobs that fell back to local simulation, by job kind.", d.PerKind,
				func(k sweep.DispatchKindStats) int64 { return k.Fallbacks })
			writeKindMetric(&b, "dcserved_dispatch_kind_errors_total", "counter",
				"Failed worker attempts, by job kind.", d.PerKind,
				func(k sweep.DispatchKindStats) int64 { return k.Errors })
			writeKindMetric(&b, "dcserved_dispatch_kind_shed_total", "counter",
				"Dispatch attempts answered 429, by job kind.", d.PerKind,
				func(k sweep.DispatchKindStats) int64 { return k.Shed })
		}
		if tc := bs.TraceCache; tc != nil {
			writeMetric(&b, "dcserved_trace_cache_traces", "gauge",
				"Captured instruction traces resident in the trace cache.", float64(tc.Traces))
			writeMetric(&b, "dcserved_trace_cache_bytes", "gauge",
				"Encoded bytes resident in the trace cache.", float64(tc.Bytes))
			writeMetric(&b, "dcserved_trace_cache_max_bytes", "gauge",
				"Trace cache byte budget (-trace-cache-bytes).", float64(tc.MaxBytes))
			writeMetric(&b, "dcserved_trace_cache_hits_total", "counter",
				"Simulations that replayed a cached trace instead of regenerating it.", float64(tc.Hits))
			writeMetric(&b, "dcserved_trace_cache_misses_total", "counter",
				"Trace requests that had to capture (or join a capture in flight).", float64(tc.Misses))
			writeMetric(&b, "dcserved_trace_cache_captures_total", "counter",
				"Actual trace generations performed by the cache.", float64(tc.Captures))
			writeMetric(&b, "dcserved_trace_cache_evictions_total", "counter",
				"Traces evicted to stay within the byte budget.", float64(tc.Evictions))
			writeMetric(&b, "dcserved_trace_cache_fallbacks_total", "counter",
				"Simulations that generated live because the trace exceeds the budget.", float64(tc.Fallbacks))
		}
		// Replication families (and the adopted counter that only moves
		// with replication on) appear only when a replicator is wired in,
		// so the single-node exposition — and its golden test — is
		// byte-identical to before replication existed.
		if rp := bs.Replication; rp != nil {
			writeMetric(&b, "dcserved_store_adopted_total", "counter",
				"Records adopted verbatim from replica peers (push or anti-entropy).", float64(bs.Adopted))
			writeMetric(&b, "dcserved_replica_peers", "gauge",
				"Configured replica peers (-replicas).", float64(rp.Peers))
			writeMetric(&b, "dcserved_replica_factor", "gauge",
				"Total copies of each fresh record, this node included (-replication-factor).", float64(rp.Factor))
			writeMetric(&b, "dcserved_replica_pushed_total", "counter",
				"Fresh records delivered to a peer by write-through fan-out.", float64(rp.Pushed))
			writeMetric(&b, "dcserved_replica_push_errors_total", "counter",
				"Fan-out pushes that exhausted their retries.", float64(rp.PushErrors))
			writeMetric(&b, "dcserved_replica_dropped_total", "counter",
				"Fan-out pushes dropped on queue overflow or shutdown (anti-entropy repairs them).", float64(rp.Dropped))
			writeMetric(&b, "dcserved_replica_queue_depth", "gauge",
				"Fan-out pushes currently queued.", float64(rp.QueueDepth))
			writeMetric(&b, "dcserved_replica_digest_rounds_total", "counter",
				"Anti-entropy digest exchanges run.", float64(rp.DigestRounds))
			writeMetric(&b, "dcserved_replica_pulled_total", "counter",
				"Records fetched from peers during anti-entropy.", float64(rp.Pulled))
			writeMetric(&b, "dcserved_replica_pull_errors_total", "counter",
				"Failed peer digest/record fetches.", float64(rp.PullErrors))
			writeMetric(&b, "dcserved_replica_repaired_total", "counter",
				"Divergent records adopted during anti-entropy.", float64(rp.Repaired))
			writeMetric(&b, "dcserved_replica_cluster_records", "gauge",
				"Records across the cluster at the last digest round (sum over peers, copies counted).", float64(rp.ClusterRecords))
			writeMetric(&b, "dcserved_replica_cluster_bytes", "gauge",
				"Record bytes across the cluster at the last digest round.", float64(rp.ClusterBytes))
		}
	}
	s.writeTenantMetrics(&b)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Header().Set("Content-Length", strconv.Itoa(b.Len()))
	w.Write([]byte(b.String()))
}

// writeTenantMetrics emits the per-tenant accounting families. The
// families only appear once at least one tenant is known (a key loaded
// or an X-Dcs-Tenant attribution seen), so the auth-off exposition —
// and its golden test — is byte-identical to before tenancy existed.
func (s *Server) writeTenantMetrics(b *strings.Builder) {
	snaps := s.tenants.Snapshots()
	if len(snaps) == 0 {
		return
	}
	writeTenantMetric(b, "dcserved_tenant_requests_total", "counter",
		"Requests admitted, by tenant.", snaps,
		func(t tenant.Snapshot) float64 { return float64(t.Usage.Requests) })
	writeTenantMetric(b, "dcserved_tenant_rate_limited_total", "counter",
		"Requests refused 429 quota_exceeded by the tenant's rate limit.", snaps,
		func(t tenant.Snapshot) float64 { return float64(t.Usage.RateLimited) })
	writeTenantMetric(b, "dcserved_tenant_quota_denied_total", "counter",
		"Requests and jobs refused 429 quota_exceeded by a cumulative quota.", snaps,
		func(t tenant.Snapshot) float64 { return float64(t.Usage.QuotaDenied) })
	writeTenantMetric(b, "dcserved_tenant_instructions_total", "counter",
		"Simulated instructions charged to each tenant's completed jobs.", snaps,
		func(t tenant.Snapshot) float64 { return float64(t.Usage.Instructions) })
	fmt.Fprintf(b, "# HELP %[1]s Completed compute jobs, by tenant and job kind.\n# TYPE %[1]s counter\n",
		"dcserved_tenant_jobs_total")
	for _, t := range snaps {
		for _, kind := range sortedKinds(t.Usage.Jobs) {
			fmt.Fprintf(b, "dcserved_tenant_jobs_total{tenant=%q,kind=%q} %s\n", t.ID, kind,
				strconv.FormatFloat(float64(t.Usage.Jobs[kind]), 'g', -1, 64))
		}
	}
}

// sortedKinds returns the map's keys in stable order for the exposition.
func sortedKinds(m map[string]int64) []string {
	kinds := make([]string, 0, len(m))
	for k := range m {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

// writeTenantMetric emits one family with a tenant="..." sample per
// known tenant.
func writeTenantMetric(b *strings.Builder, name, typ, help string, snaps []tenant.Snapshot, get func(tenant.Snapshot) float64) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	for _, t := range snaps {
		fmt.Fprintf(b, "%s{tenant=%q} %s\n", name, t.ID,
			strconv.FormatFloat(get(t), 'g', -1, 64))
	}
}

// writeMetric emits one single-sample metric family.
func writeMetric(b *strings.Builder, name, typ, help string, v float64) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n%s %s\n",
		name, help, name, typ, name, strconv.FormatFloat(v, 'g', -1, 64))
}

// writeKindMetric emits one metric family with a kind="..." sample per job
// kind.
func writeKindMetric(b *strings.Builder, name, typ, help string, kinds []sweep.DispatchKindStats, get func(sweep.DispatchKindStats) int64) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	for _, k := range kinds {
		fmt.Fprintf(b, "%s{kind=%q} %s\n", name, k.Kind,
			strconv.FormatFloat(float64(get(k)), 'g', -1, 64))
	}
}
