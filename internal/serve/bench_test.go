package serve_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"dcbench/internal/core"
	"dcbench/internal/serve"
	"dcbench/internal/sweep"
)

// BenchmarkColdSweep is the service's dominant cost: one full-registry
// characterization sweep with the memo bypassed, at the test trace length.
func BenchmarkColdSweep(b *testing.B) {
	o := testOptions()
	e := sweep.NewEngine()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(context.Background(), core.RegistryJobs(), o.CoreConfig(),
			o.Warmup+o.Instrs, sweep.RunOptions{NoMemo: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWarmFigureEndpoint is the steady-state serving cost: a figure
// request answered from the warm memo (render + encode + HTTP).
func BenchmarkWarmFigureEndpoint(b *testing.B) {
	srv := serve.New(serve.Config{Options: testOptions(), Logger: quietLog})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if _, err := ts.Client().Get(ts.URL + "/v1/figures/3"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := ts.Client().Get(ts.URL + "/v1/figures/3")
		if err != nil || resp.StatusCode != http.StatusOK {
			b.Fatalf("status=%v err=%v", resp.StatusCode, err)
		}
		resp.Body.Close()
	}
}

// TestBenchArtifact writes the CI perf artifact (BENCH_serve.json): cold
// sweep wall time plus warm endpoint latency, so the perf trajectory of
// the serving path is recorded per commit. Gated on BENCH_SERVE_OUT so
// ordinary test runs skip it.
func TestBenchArtifact(t *testing.T) {
	out := os.Getenv("BENCH_SERVE_OUT")
	if out == "" {
		t.Skip("set BENCH_SERVE_OUT=<path> to write the perf artifact")
	}
	o := testOptions()

	start := time.Now()
	e := sweep.NewEngine()
	if _, err := e.Run(context.Background(), core.RegistryJobs(), o.CoreConfig(),
		o.Warmup+o.Instrs, sweep.RunOptions{NoMemo: true}); err != nil {
		t.Fatal(err)
	}
	sweepMS := float64(time.Since(start).Microseconds()) / 1e3

	srv := serve.New(serve.Config{Options: o, Logger: quietLog})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if _, err := ts.Client().Get(ts.URL + "/v1/figures/3"); err != nil {
		t.Fatal(err) // warm the memo before timing
	}
	const reqs = 50
	var total, worst time.Duration
	for i := 0; i < reqs; i++ {
		s := time.Now()
		resp, err := ts.Client().Get(ts.URL + "/v1/figures/3")
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("status=%v err=%v", resp.StatusCode, err)
		}
		resp.Body.Close()
		d := time.Since(s)
		total += d
		if d > worst {
			worst = d
		}
	}
	artifact := map[string]any{
		"schema":                 1,
		"workloads":              len(core.Registry()),
		"instrs_per_workload":    o.Warmup + o.Instrs,
		"sweep_cold_ms":          sweepMS,
		"endpoint_warm_mean_us":  float64(total.Microseconds()) / reqs,
		"endpoint_warm_worst_us": float64(worst.Microseconds()),
	}
	data, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("wrote %s: %s\n", out, data)
}
