package serve

import (
	"fmt"
	"sync"
)

// flightGroup is a minimal singleflight: concurrent calls for the same key
// share one execution and its result. Unlike a cache, nothing is retained —
// once the last sharer returns, the key is gone and the next request
// re-renders (cheaply, against the engine's warm memo).
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
	// onJoin fires when a caller is about to wait on an in-flight call —
	// at join time, not completion, so coalescing is observable while the
	// shared render is still running.
	onJoin func()
}

type flightCall struct {
	done chan struct{}
	body []byte
	err  error
}

// do runs fn once per key among concurrent callers.
func (g *flightGroup) do(key string, fn func() ([]byte, error)) ([]byte, error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		if g.onJoin != nil {
			g.onJoin()
		}
		<-c.done
		return c.body, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	// Cleanup must survive a panicking fn: net/http recovers handler
	// panics, so without this every sharer (and all future callers of the
	// key) would block forever on a done channel nobody closes.
	func() {
		defer func() {
			if rec := recover(); rec != nil {
				c.err = fmt.Errorf("render panicked: %v", rec)
			}
			close(c.done)
			g.mu.Lock()
			delete(g.m, key)
			g.mu.Unlock()
		}()
		c.body, c.err = fn()
	}()
	return c.body, c.err
}
