package serve_test

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"dcbench/internal/core"
	"dcbench/internal/memtrace"
	"dcbench/internal/serve"
	"dcbench/internal/store"
	"dcbench/internal/sweep"
	"dcbench/internal/uarch"
	"dcbench/internal/workloads"
)

// countingStatsBackend wraps a workloads.StatsBackend and counts traffic —
// the cluster-side sibling of countingBackend. Its runs counter is the
// number of StoreStats calls, i.e. real cluster simulations.
type countingStatsBackend struct {
	inner workloads.StatsBackend
	mu    sync.Mutex
	hits  int
	runs  int
}

func (b *countingStatsBackend) LoadStats(ctx context.Context, k workloads.StatsKey) (*workloads.Stats, bool) {
	st, ok := b.inner.LoadStats(ctx, k)
	if ok {
		b.mu.Lock()
		b.hits++
		b.mu.Unlock()
	}
	return st, ok
}

func (b *countingStatsBackend) StoreStats(ctx context.Context, k workloads.StatsKey, st *workloads.Stats) {
	b.mu.Lock()
	b.runs++
	b.mu.Unlock()
	b.inner.StoreStats(ctx, k, st)
}

func (b *countingStatsBackend) counts() (hits, runs int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.hits, b.runs
}

// writeV1Store lays keyed counters down in the PR 2 flat v1 store format —
// SCHEMA marker "1\n", records under v1/<first hash byte>/<fnv64a of the
// canonical key JSON>.json — replicated here byte for byte so the test
// exercises a genuine historical layout rather than anything the current
// store writes.
func writeV1Store(t *testing.T, dir string, records map[sweep.Key]*uarch.Counters) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, "SCHEMA"), []byte("1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for k, c := range records {
		canon, err := json.Marshal(struct {
			Name      string           `json:"name"`
			Profile   memtrace.Profile `json:"profile"`
			ConfigFP  uint64           `json:"config_fp"`
			MaxInstrs int64            `json:"max_instrs"`
		}{k.Name, k.Profile, k.ConfigFP, k.MaxInstrs})
		if err != nil {
			t.Fatal(err)
		}
		h := fnv.New64a()
		h.Write(canon)
		addr := fmt.Sprintf("%016x", h.Sum64())
		rec, err := json.Marshal(struct {
			Schema   int             `json:"schema"`
			Key      json.RawMessage `json:"key"`
			Counters uarch.Counters  `json:"counters"`
		}{1, canon, *c})
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(dir, "v1", addr[:2], addr+".json")
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, append(rec, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestV1StoreMigratesAndServes is the migration acceptance criterion: a
// warm PR 2 v1 store opened by this build is migrated in place and serves
// byte-identical /v1/* responses with zero re-simulation, and a second
// restart over the migrated store also skips the cluster experiments
// (persisted on the first warm run) — zero simulations of either kind.
func TestV1StoreMigratesAndServes(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization + cluster sweeps")
	}
	opts := testOptions()

	// Reference run: a storeless server renders Figure 3, and its memory
	// backend captures exactly the key->counters records a PR 2 server
	// would have persisted.
	mem := newMemoryBackend()
	srv0 := serve.New(serve.Config{Options: opts, Backend: mem, Logger: quietLog})
	ts0 := httptest.NewServer(srv0.Handler())
	resp0, wantFig3 := get(t, ts0, "/v1/figures/3", nil)
	ts0.Close()
	srv0.Close()
	if resp0.StatusCode != 200 {
		t.Fatalf("reference render status = %d", resp0.StatusCode)
	}
	if len(mem.m) != len(core.Registry()) {
		t.Fatalf("reference run captured %d records, want %d", len(mem.m), len(core.Registry()))
	}

	// Lay those records down as a PR 2 v1 store and open it: Open migrates.
	dir := t.TempDir()
	writeV1Store(t, dir, mem.m)
	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(filepath.Join(dir, "SCHEMA")); string(got) != "2\n" {
		t.Fatalf("SCHEMA after migrating open = %q", got)
	}
	if n := st1.Len(); n != len(core.Registry()) {
		t.Fatalf("migrated store Len = %d, want %d", n, len(core.Registry()))
	}

	warm := &countingBackend{inner: st1.Backend(quietLog)}
	cluster1 := &countingStatsBackend{inner: st1.StatsBackend(quietLog)}
	srv1 := serve.New(serve.Config{Options: opts, Store: st1, Backend: warm, Cluster: cluster1, Logger: quietLog})
	ts1 := httptest.NewServer(srv1.Handler())
	resp1, gotFig3 := get(t, ts1, "/v1/figures/3", nil)
	if resp1.StatusCode != 200 || string(gotFig3) != string(wantFig3) {
		t.Fatalf("migrated store served different bytes (status %d)", resp1.StatusCode)
	}
	if hits, sims := warm.counts(); sims != 0 || hits != len(core.Registry()) {
		t.Fatalf("migrated store: sims=%d hits=%d, want 0 simulations and %d hits", sims, hits, len(core.Registry()))
	}
	// First cluster render over the migrated store: simulated once, then
	// persisted through the same store.
	resp5, fig5 := get(t, ts1, "/v1/figures/5", nil)
	if resp5.StatusCode != 200 {
		t.Fatalf("figure 5 status = %d", resp5.StatusCode)
	}
	if hits, runs := cluster1.counts(); hits != 0 || runs != len(workloads.All()) {
		t.Fatalf("cold cluster render: hits=%d runs=%d, want 0 hits and %d runs", hits, runs, len(workloads.All()))
	}
	ts1.Close()
	srv1.Close()
	st1.Close()

	// The restart: a fresh process over the migrated store re-simulates
	// nothing — counters or cluster — and serves identical bytes.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	warm2 := &countingBackend{inner: st2.Backend(quietLog)}
	cluster2 := &countingStatsBackend{inner: st2.StatsBackend(quietLog)}
	srv2 := serve.New(serve.Config{Options: opts, Store: st2, Backend: warm2, Cluster: cluster2, Logger: quietLog})
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	_, gotFig3b := get(t, ts2, "/v1/figures/3", nil)
	if string(gotFig3b) != string(wantFig3) {
		t.Fatal("restart over migrated store served different figure 3 bytes")
	}
	_, gotFig5b := get(t, ts2, "/v1/figures/5", nil)
	if string(gotFig5b) != string(fig5) {
		t.Fatal("restart served different figure 5 bytes")
	}
	if hits, sims := warm2.counts(); sims != 0 || hits != len(core.Registry()) {
		t.Fatalf("restart: sims=%d hits=%d, want zero re-simulation", sims, hits)
	}
	if hits, runs := cluster2.counts(); runs != 0 || hits != len(workloads.All()) {
		t.Fatalf("restart cluster: hits=%d runs=%d, want %d store hits and zero cluster runs", hits, runs, len(workloads.All()))
	}
}
