package serve_test

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"dcbench/internal/dispatch"
	"dcbench/internal/obs"
	"dcbench/internal/serve"
	"dcbench/internal/store"
)

var update = flag.Bool("update", false, "rewrite the golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/serve -run %s -update` to cut golden files)", err, t.Name())
	}
	if string(got) != string(want) {
		t.Errorf("%s drifted from its golden file; this is the observability surface operators scrape — diff deliberately or re-cut with -update\ngot:\n%s\nwant:\n%s",
			name, got, want)
	}
}

// storeBackedServer builds a server over a fresh store, with the trace
// cache on, so every observability field is populated — the goldens pin
// the trace_cache block through this server. dispatchBackedServer runs
// without one and pins that the block is genuinely omitempty.
func storeBackedServer(t *testing.T) (*serve.Server, *httptest.Server) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	srv := serve.New(serve.Config{Options: testOptions(), Store: st,
		TraceCacheBytes: 64 << 20, Logger: quietLog})
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// dispatchBackedServer builds a front-end over a store plus a (never
// contacted) worker set, so the dispatch observability block is populated.
func dispatchBackedServer(t *testing.T) *httptest.Server {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	remote, err := dispatch.New(dispatch.Options{Workers: []string{"w1:8337", "w2:8337"}},
		testOptions().Warmup, st.Backend(quietLog), st.StatsBackend(quietLog), quietLog)
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New(serve.Config{Options: testOptions(), Store: st, Backend: remote, Cluster: remote, Logger: quietLog})
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// jsonSchema flattens a decoded JSON value into sorted "path: type" lines —
// the shape of the document with the volatile values erased.
func jsonSchema(v any) []string {
	var out []string
	var walk func(path string, v any)
	walk = func(path string, v any) {
		switch x := v.(type) {
		case map[string]any:
			if len(x) == 0 {
				out = append(out, path+": object")
				return
			}
			for k, child := range x {
				walk(path+"."+k, child)
			}
		case []any:
			if len(x) == 0 {
				out = append(out, path+": array")
				return
			}
			walk(path+"[]", x[0])
		case string:
			out = append(out, path+": string")
		case float64:
			out = append(out, path+": number")
		case bool:
			out = append(out, path+": bool")
		case nil:
			out = append(out, path+": null")
		default:
			out = append(out, fmt.Sprintf("%s: %T", path, v))
		}
	}
	walk("", v)
	sort.Strings(out)
	return out
}

// TestHealthzSchemaGolden pins the /healthz JSON shape — every field path
// and its type, including the store counter block — so the surface a
// monitoring stack depends on cannot drift silently.
func TestHealthzSchemaGolden(t *testing.T) {
	_, ts := storeBackedServer(t)
	resp, body := get(t, ts, "/healthz", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	var doc any
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("healthz is not JSON: %v\n%s", err, body)
	}
	checkGolden(t, "healthz_schema.golden", []byte(strings.Join(jsonSchema(doc), "\n")+"\n"))
}

// TestHealthzDispatchSchemaGolden pins the /healthz shape of a front-end
// with a dispatch backend: the store block grows a dispatch sub-block with
// per-worker state. Plain servers must not regress either (the golden
// above has no dispatch paths).
func TestHealthzDispatchSchemaGolden(t *testing.T) {
	ts := dispatchBackedServer(t)
	resp, body := get(t, ts, "/healthz", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	var doc any
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("healthz is not JSON: %v\n%s", err, body)
	}
	checkGolden(t, "healthz_dispatch_schema.golden", []byte(strings.Join(jsonSchema(doc), "\n")+"\n"))
}

// metricValue matches the sample line of a metric family, labeled
// (kind="...") or not.
var metricValue = regexp.MustCompile(`^([a-z_]+(?:\{[^}]*\})?) [0-9][0-9.e+-]*$`)

// buildInfoLine matches the dcserved_build_info sample, whose label
// values (Go version, VCS revision) legitimately differ per build and
// must be normalised away along with the value.
var buildInfoLine = regexp.MustCompile(`^dcserved_build_info\{[^}]*\} 1$`)

// normalizeMetrics erases the volatile parts of a /metrics body — sample
// values and the build_info labels — leaving the family names, label
// shapes and HELP/TYPE lines the goldens pin.
func normalizeMetrics(body []byte) []byte {
	var norm []string
	for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		if buildInfoLine.MatchString(line) {
			line = `dcserved_build_info{goversion="X",revision="X"} X`
		} else if m := metricValue.FindStringSubmatch(line); m != nil {
			line = m[1] + " X"
		}
		norm = append(norm, line)
	}
	return []byte(strings.Join(norm, "\n") + "\n")
}

// TestMetricsGolden pins the /metrics exposition format with sample values
// normalised: family names, HELP/TYPE lines and their order are the
// contract a Prometheus scrape config is written against.
func TestMetricsGolden(t *testing.T) {
	_, ts := storeBackedServer(t)
	resp, body := get(t, ts, "/metrics", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("metrics Content-Type = %q", ct)
	}
	checkGolden(t, "metrics.golden", normalizeMetrics(body))
}

// TestMetricsDispatchGolden pins the extra metric families a front-end
// with a dispatch backend exposes, with the same value normalisation.
func TestMetricsDispatchGolden(t *testing.T) {
	ts := dispatchBackedServer(t)
	resp, body := get(t, ts, "/metrics", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	checkGolden(t, "metrics_dispatch.golden", normalizeMetrics(body))
}

// TestMetricsHistogramGolden pins the latency-histogram exposition once
// traffic has populated a label: the full bucket ladder (every le bound
// plus +Inf), _sum and _count under an endpoint label, with values
// normalised — the shape a Prometheus histogram_quantile query is
// written against.
func TestMetricsHistogramGolden(t *testing.T) {
	_, ts := storeBackedServer(t)
	get(t, ts, "/v1/workloads", nil)
	get(t, ts, "/v1/workloads", nil)
	_, body := get(t, ts, "/metrics", nil)
	var hist []string
	for _, line := range strings.Split(string(normalizeMetrics(body)), "\n") {
		if strings.Contains(line, "dcserved_request_duration_seconds") ||
			strings.Contains(line, "dcserved_job_duration_seconds") {
			hist = append(hist, line)
		}
	}
	checkGolden(t, "metrics_histogram.golden", []byte(strings.Join(hist, "\n")+"\n"))
}

// TestMetricsCounts spot-checks live semantics behind the golden shape:
// request traffic and store writes must actually move the gauges.
func TestMetricsCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a single-workload sweep")
	}
	_, ts := storeBackedServer(t)
	get(t, ts, "/v1/workloads/Sort/counters", nil)
	_, body := get(t, ts, "/metrics", nil)
	for _, want := range []string{
		"dcserved_store_writes_total 1",
		"dcserved_store_records 1",
		"dcserved_requests_total 2",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics after a stored sweep lack %q:\n%s", want, body)
		}
	}
}

// findTrace returns the recorder's trace with the given ID, if any.
func findTrace(rec *obs.Recorder, id string) (obs.TraceData, bool) {
	for _, td := range rec.Traces(0) {
		if td.ID == id {
			return td, true
		}
	}
	return obs.TraceData{}, false
}

// spanNames returns the distinct span names of a trace.
func spanNames(td obs.TraceData) map[string]bool {
	names := map[string]bool{}
	for _, sp := range td.Spans {
		names[sp.Name] = true
	}
	return names
}

// TestTracePropagationAcrossDispatch is the tentpole's acceptance test: a
// cold counters request dispatched front-end → worker produces one trace
// visible in BOTH processes' /debug/traces rings under the SAME ID (the
// client-chosen one, echoed back in the response header), and between them
// the spans cover at least five distinct phases of the job's life.
func TestTracePropagationAcrossDispatch(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a dispatched sweep")
	}
	wst, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { wst.Close() })
	worker := serve.New(serve.Config{Options: testOptions(), Store: wst, Logger: quietLog})
	t.Cleanup(worker.Close)
	wts := httptest.NewServer(worker.Handler())
	t.Cleanup(wts.Close)

	fst, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fst.Close() })
	remote, err := dispatch.New(dispatch.Options{Workers: []string{strings.TrimPrefix(wts.URL, "http://")}},
		testOptions().Warmup, fst.Backend(quietLog), fst.StatsBackend(quietLog), quietLog)
	if err != nil {
		t.Fatal(err)
	}
	front := serve.New(serve.Config{Options: testOptions(), Store: fst, Backend: remote, Cluster: remote, Logger: quietLog})
	t.Cleanup(front.Close)
	fts := httptest.NewServer(front.Handler())
	t.Cleanup(fts.Close)

	const id = "e2e0123456789abc"
	resp, body := get(t, fts, "/v1/workloads/Sort/counters", map[string]string{obs.TraceHeader: id})
	if resp.StatusCode != 200 {
		t.Fatalf("counters status = %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(obs.TraceHeader); got != id {
		t.Errorf("response %s = %q, want the inbound ID %q echoed", obs.TraceHeader, got, id)
	}

	frontTd, ok := findTrace(front.Recorder(), id)
	if !ok {
		t.Fatalf("front-end ring has no trace %s", id)
	}
	workerTd, ok := findTrace(worker.Recorder(), id)
	if !ok {
		t.Fatalf("worker ring has no trace %s — the dispatch hop dropped the ID", id)
	}

	frontSpans, workerSpans := spanNames(frontTd), spanNames(workerTd)
	for _, want := range []string{"store.read", "dispatch", "store.write"} {
		if !frontSpans[want] {
			t.Errorf("front-end trace lacks %q span; has %v", want, frontSpans)
		}
	}
	for _, want := range []string{"admission", "simulate", "store.write"} {
		if !workerSpans[want] {
			t.Errorf("worker trace lacks %q span; has %v", want, workerSpans)
		}
	}
	all := map[string]bool{}
	for n := range frontSpans {
		all[n] = true
	}
	for n := range workerSpans {
		all[n] = true
	}
	if len(all) < 5 {
		t.Errorf("cross-process trace covers %d distinct phases (%v), want >= 5", len(all), all)
	}

	// The dispatch attempt span names the worker it went to and how it ended.
	for _, sp := range frontTd.Spans {
		if sp.Name == "dispatch" {
			if sp.Attrs["outcome"] != "ok" || sp.Attrs["worker"] == "" {
				t.Errorf("dispatch span attrs = %v, want outcome=ok and a worker", sp.Attrs)
			}
		}
	}

	// A warm repeat stays local: traced, but with no dispatch span.
	const warmID = "e2ewarm123456789"
	get(t, fts, "/v1/workloads/Sort/counters", map[string]string{obs.TraceHeader: warmID})
	warmTd, ok := findTrace(front.Recorder(), warmID)
	if !ok {
		t.Fatalf("front-end ring has no trace %s for the warm read", warmID)
	}
	if spanNames(warmTd)["dispatch"] {
		t.Errorf("warm read dispatched; spans = %v", spanNames(warmTd))
	}
}
