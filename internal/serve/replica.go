package serve

import (
	"io"
	"net/http"
	"strconv"

	"dcbench/internal/replica"
)

// This file is the peer-facing side of store replication (see
// internal/replica): ingest of fan-out pushes, digest export for
// anti-entropy, and raw record export. The endpoints live on the service
// port under /v1/replica/* — not probes, so the tenant middleware
// authenticates them like any API call; a keyed cluster admits peers by
// the same service key the dispatch layer presents (-dispatch-api-key).

// maxReplicaRecord bounds a pushed record body — the same cap the
// dispatch layer puts on a worker response.
const maxReplicaRecord = 8 << 20

// registerReplicaRoutes mounts the replication endpoints. They are
// registered unconditionally (the route table should not depend on
// wiring) and answer 404 not_found on a storeless node, which is also
// what a replicator treats a non-replicating peer as: nothing to pull.
func (s *Server) registerReplicaRoutes() {
	s.mux.HandleFunc("POST /v1/replica/records", s.handleReplicaPush)
	s.mux.HandleFunc("GET /v1/replica/records/{addr}", s.handleReplicaRecord)
	s.mux.HandleFunc("GET /v1/replica/digest", s.handleReplicaDigest)
}

// handleReplicaPush adopts one pushed record. The store verifies the
// embedded checksum and re-derives the content address from the record's
// own kind and key, so a mangled or misdirected push is a 400, never a
// stored record; adoption is idempotent, so a retried push that already
// landed is the same 204 as the first.
func (s *Server) handleReplicaPush(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		writeError(w, r, http.StatusNotFound, codeNotFound, "this node has no result store")
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxReplicaRecord))
	if err != nil {
		writeError(w, r, http.StatusBadRequest, codeBadRequest, "unreadable record body")
		return
	}
	if _, err := s.store.AdoptRecord(data); err != nil {
		writeError(w, r, http.StatusBadRequest, codeBadRequest, "record failed verification")
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleReplicaRecord serves one record's persisted bytes verbatim — what
// a peer adopts after a digest mismatch.
func (s *Server) handleReplicaRecord(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		writeError(w, r, http.StatusNotFound, codeNotFound, "this node has no result store")
		return
	}
	addr := r.PathValue("addr")
	data, ok, err := s.store.GetRecord(addr)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, codeBadRequest, err.Error())
		return
	}
	if !ok {
		writeError(w, r, http.StatusNotFound, codeNotFound, "no record at "+addr)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.Write(data)
}

// handleReplicaDigest serves the anti-entropy view: without a query, every
// shard's digest plus the store totals; with ?shard=n, that shard's
// sorted record addresses for set differencing.
func (s *Server) handleReplicaDigest(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		writeError(w, r, http.StatusNotFound, codeNotFound, "this node has no result store")
		return
	}
	if q := r.URL.Query().Get("shard"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil {
			writeError(w, r, http.StatusBadRequest, codeBadRequest, "shard must be an integer")
			return
		}
		addrs, err := s.store.ShardAddrs(n)
		if err != nil {
			writeError(w, r, http.StatusBadRequest, codeBadRequest, err.Error())
			return
		}
		writeJSON(w, replica.AddrsResponse{Shard: n, Addrs: addrs})
		return
	}
	writeJSON(w, replica.DigestResponse{
		Shards:  s.store.ShardDigests(),
		Records: int64(s.store.Len()),
		Bytes:   s.store.Bytes(),
	})
}
